(* Tests for Jitise_cad: the tool-flow simulator's calibration against
   the paper's Table III and Section V-C, and its determinism. *)

module Ir = Jitise_ir
module F = Jitise_frontend
module Ise = Jitise_ise
module Pp = Jitise_pivpav
module Hw = Jitise_hwgen
module Cad = Jitise_cad

let db = Pp.Database.create ()

(* A corpus of candidates of varying sizes from several kernels. *)
let projects =
  lazy
    (let srcs =
       [
         "double g; int main(int n) { double x = n * 1.0; g = x * 2.5 + 1.5; return 0; }";
         "double g; int main(int n) { double x = n * 1.0; g = (x * 2.5 + 1.5) * (x - 0.5) + x / 3.0; return 0; }";
         "int g; int main(int n) { g = ((n * 19 + 7) ^ (n >> 3)) * (n + 11); return 0; }";
         "double g; int main(int n) { double x = n * 1.0; double y = x * 0.5; g = (x / y + y / x) * (x + y) - (x - y) / (x * y + 1.0); return 0; }";
       ]
     in
     List.concat_map
       (fun src ->
         let m = (F.Compiler.compile_string ~name:"t" src).F.Compiler.modul in
         List.filter_map
           (fun (c : Ise.Candidate.t) ->
             let f = Option.get (Ir.Irmod.find_func m c.Ise.Candidate.func) in
             let dfg = Ir.Dfg.of_block f (Ir.Func.block f c.Ise.Candidate.block) in
             Some (Hw.Project.create db dfg c))
           (Ise.Maxmiso.of_module m))
       srcs)

let implement ?cache ?app ?tracer ?config p =
  Cad.Flow.implement ?cache ?app ?tracer ?config db p

let test_flow_runs_all_stages () =
  let p = List.hd (Lazy.force projects) in
  let run = implement p in
  let stages = List.map (fun s -> s.Cad.Flow.stage) run.Cad.Flow.stages in
  List.iter
    (fun st ->
      Alcotest.(check bool)
        (Cad.Flow.stage_name st ^ " present")
        true (List.mem st stages))
    [ Cad.Flow.Check_syntax; Cad.Flow.Synthesis; Cad.Flow.Translate;
      Cad.Flow.Map; Cad.Flow.Place_and_route; Cad.Flow.Bitgen ];
  Alcotest.(check bool) "total is the sum" true
    (abs_float
       (run.Cad.Flow.total_seconds
       -. List.fold_left (fun a s -> a +. s.Cad.Flow.seconds) 0.0 run.Cad.Flow.stages)
    < 1e-9)

let test_flow_constants_match_table3 () =
  let runs = List.map implement (Lazy.force projects) in
  let mean get =
    Jitise_util.Stats.mean (List.map get runs)
  in
  let syn = mean (fun r -> Cad.Flow.stage_seconds r Cad.Flow.Check_syntax) in
  let xst = mean (fun r -> Cad.Flow.stage_seconds r Cad.Flow.Synthesis) in
  let tra = mean (fun r -> Cad.Flow.stage_seconds r Cad.Flow.Translate) in
  let bitgen = mean (fun r -> Cad.Flow.stage_seconds r Cad.Flow.Bitgen) in
  Alcotest.(check bool) "syn ~ 4.22 s" true (abs_float (syn -. 4.22) < 0.5);
  Alcotest.(check bool) "xst ~ 10.60 s" true (abs_float (xst -. 10.60) < 1.0);
  Alcotest.(check bool) "tra ~ 8.99 s" true (abs_float (tra -. 8.99) < 2.0);
  Alcotest.(check bool) "bitgen ~ 151 s" true (abs_float (bitgen -. 151.0) < 6.0)

let test_flow_map_par_ranges () =
  List.iter
    (fun p ->
      let run = implement p in
      let map = Cad.Flow.stage_seconds run Cad.Flow.Map in
      let par = Cad.Flow.stage_seconds run Cad.Flow.Place_and_route in
      Alcotest.(check bool) "map in 30..456 s" true (map >= 30.0 && map <= 456.0);
      Alcotest.(check bool) "par in 40..728 s" true (par >= 40.0 && par <= 728.0);
      let ratio = par /. map in
      Alcotest.(check bool) "par/map in 1.2..2.6" true
        (ratio >= 1.2 && ratio <= 2.6))
    (Lazy.force projects)

let test_flow_bigger_candidates_take_longer () =
  let ps = Lazy.force projects in
  let area p = let l, _, _ = Hw.Project.area db p in l in
  let small = List.fold_left (fun a p -> if area p < area a then p else a) (List.hd ps) ps in
  let big = List.fold_left (fun a p -> if area p > area a then p else a) (List.hd ps) ps in
  if area big > 2 * area small then begin
    let rs = implement small and rb = implement big in
    Alcotest.(check bool) "bigger data path maps longer" true
      (Cad.Flow.stage_seconds rb Cad.Flow.Map
      > Cad.Flow.stage_seconds rs Cad.Flow.Map)
  end

let test_flow_deterministic () =
  let p = List.hd (Lazy.force projects) in
  let a = implement p and b = implement p in
  Alcotest.(check (float 1e-9)) "same total" a.Cad.Flow.total_seconds
    b.Cad.Flow.total_seconds

let test_flow_speedup_factor () =
  let p = List.hd (Lazy.force projects) in
  let full = implement p in
  let fast =
    implement ~config:{ Cad.Flow.default_config with Cad.Flow.speedup_factor = 0.3 } p
  in
  Alcotest.(check (float 1e-6)) "30 % faster flow"
    (0.7 *. full.Cad.Flow.total_seconds)
    fast.Cad.Flow.total_seconds

let test_flow_eapr_vs_regular_bitgen () =
  let p = List.hd (Lazy.force projects) in
  let eapr = implement p in
  let regular =
    implement ~config:{ Cad.Flow.default_config with Cad.Flow.eapr = false } p
  in
  let b r = Cad.Flow.stage_seconds r Cad.Flow.Bitgen in
  (* the paper: EAPR bitgen ~151 s vs ~41 s for the regular flow *)
  Alcotest.(check bool) "EAPR bitgen is ~3.7x slower" true
    (b eapr /. b regular > 3.0);
  Alcotest.(check bool) "regular ~41 s" true (abs_float (b regular -. 41.0) < 5.0)

let test_flow_constant_seconds () =
  let p = List.hd (Lazy.force projects) in
  let run = implement p in
  let expected =
    Cad.Flow.stage_seconds run Cad.Flow.Check_syntax
    +. Cad.Flow.stage_seconds run Cad.Flow.Synthesis
    +. Cad.Flow.stage_seconds run Cad.Flow.Translate
    +. Cad.Flow.stage_seconds run Cad.Flow.Bitgen
  in
  Alcotest.(check (float 1e-9)) "const excludes map/par" expected
    (Cad.Flow.constant_seconds run)

let test_flow_bitgen_dominates_constants () =
  (* the paper: Bitgen is ~85 % of the constant overhead *)
  let p = List.hd (Lazy.force projects) in
  let run = implement p in
  let share =
    Cad.Flow.stage_seconds run Cad.Flow.Bitgen /. Cad.Flow.constant_seconds run
  in
  Alcotest.(check bool) "bitgen share in 80..90 %" true
    (share > 0.80 && share < 0.90)

let test_flow_c2v () =
  let p = List.hd (Lazy.force projects) in
  let c2v = Cad.Flow.c2v_seconds p in
  Alcotest.(check bool) "~3.22 s" true (abs_float (c2v -. 3.22) < 0.8)

let test_bitstream_properties () =
  List.iter
    (fun p ->
      let run = implement p in
      let b = run.Cad.Flow.bitstream in
      Alcotest.(check string) "keyed by signature" p.Hw.Project.name
        b.Cad.Bitstream.signature;
      Alcotest.(check bool) "has frames" true (b.Cad.Bitstream.frames > 0);
      Alcotest.(check int) "size = frames x frame bytes"
        (b.Cad.Bitstream.frames
        * p.Hw.Project.device.Hw.Project.reconfig_frame_bytes)
        b.Cad.Bitstream.size_bytes)
    (Lazy.force projects)

let test_flow_small_device () =
  (* Section VI-B: a smaller device shrinks the constant stages but not
     map/PAR *)
  let p = List.hd (Lazy.force projects) in
  let full = implement p in
  let small = implement ~config:Cad.Flow.small_device_config p in
  Alcotest.(check bool) "constants shrink" true
    (Cad.Flow.constant_seconds small < 0.7 *. Cad.Flow.constant_seconds full);
  Alcotest.(check (float 1e-9)) "map unchanged"
    (Cad.Flow.stage_seconds full Cad.Flow.Map)
    (Cad.Flow.stage_seconds small Cad.Flow.Map);
  Alcotest.(check bool) "bad scale rejected" true
    (try
       ignore
         (implement
            ~config:{ Cad.Flow.default_config with Cad.Flow.device_scale = 0.0 }
            p);
       false
     with Invalid_argument _ -> true)

let test_flow_syntax_error_raises () =
  let p = List.hd (Lazy.force projects) in
  let broken =
    { p with Hw.Project.vhdl = { p.Hw.Project.vhdl with Hw.Vhdl.source = "x" } }
  in
  Alcotest.(check bool) "syntax error raised" true
    (try
       ignore (implement broken);
       false
     with Cad.Flow.Syntax_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let hit_opt : Cad.Cache.hit option Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | None -> Format.fprintf ppf "miss"
      | Some k -> Format.fprintf ppf "hit(%s)" (Cad.Cache.hit_name k))
    ( = )

let test_cache_local_vs_shared () =
  let cache = Cad.Cache.create () in
  let p = List.hd (Lazy.force projects) in
  let b = (implement p).Cad.Flow.bitstream in
  let note app =
    Cad.Cache.note cache ~app ~signature:p.Hw.Project.name ~bitstream:b
  in
  Alcotest.check hit_opt "first request misses" None (note "alpha");
  Alcotest.check hit_opt "same app reuses locally" (Some Cad.Cache.Local)
    (note "alpha");
  Alcotest.check hit_opt "other app hits the shared entry"
    (Some Cad.Cache.Shared) (note "beta");
  Alcotest.check
    Alcotest.(option string)
    "find returns the stored bitstream" (Some p.Hw.Project.name)
    (Option.map
       (fun (b : Cad.Bitstream.t) -> b.Cad.Bitstream.signature)
       (Cad.Cache.find cache p.Hw.Project.name));
  Alcotest.check Alcotest.(option string) "unknown signature" None
    (Option.map
       (fun (b : Cad.Bitstream.t) -> b.Cad.Bitstream.signature)
       (Cad.Cache.find cache "no-such-data-path"))

let test_cache_stats () =
  let cache = Cad.Cache.create () in
  let ps = Lazy.force projects in
  let p1 = List.nth ps 0 and p2 = List.nth ps 1 in
  let note app (p : Hw.Project.t) =
    ignore
      (Cad.Cache.note cache ~app ~signature:p.Hw.Project.name
         ~bitstream:(implement p).Cad.Flow.bitstream)
  in
  note "alpha" p1;      (* miss: builds the entry *)
  note "alpha" p1;      (* local hit *)
  note "beta" p1;       (* shared hit *)
  note "beta" p1;       (* shared hit *)
  note "beta" p2;       (* miss: second entry *)
  let s = Cad.Cache.stats cache in
  Alcotest.(check int) "entries" 2 s.Cad.Cache.entries;
  Alcotest.(check int) "local hits" 1 s.Cad.Cache.local_hits;
  Alcotest.(check int) "shared hits" 2 s.Cad.Cache.shared_hits;
  Alcotest.(check (list (pair string int))) "per-app hit counts"
    [ ("alpha", 1); ("beta", 2) ]
    s.Cad.Cache.by_app;
  Alcotest.(check bool) "cached payload accounted" true (s.Cad.Cache.bytes > 0);
  Alcotest.(check bool) "saved CAD time accounted" true
    (s.Cad.Cache.saved_seconds > 0.0)

let test_flow_cache_integration () =
  (* the flow's own cache plumbing classifies hits the same way *)
  let cache = Cad.Cache.create () in
  let p = List.hd (Lazy.force projects) in
  let hit app = (implement ~cache ~app p).Cad.Flow.cache_hit in
  Alcotest.check hit_opt "first build misses" None (hit "alpha");
  Alcotest.check hit_opt "rebuild is a local hit" (Some Cad.Cache.Local)
    (hit "alpha");
  Alcotest.check hit_opt "other app is a shared hit" (Some Cad.Cache.Shared)
    (hit "beta");
  Alcotest.check hit_opt "no cache, no classification" None
    (implement p).Cad.Flow.cache_hit

let test_flow_tracer_spans () =
  (* one synthetic span per CAD stage, modelled durations *)
  let tracer = Jitise_util.Trace.create () in
  let p = List.hd (Lazy.force projects) in
  let run = implement ~tracer p in
  let spans = Jitise_util.Trace.events tracer in
  Alcotest.(check int) "one span per stage"
    (List.length run.Cad.Flow.stages)
    (List.length spans);
  List.iter
    (fun (s : Cad.Flow.stage_report) ->
      let name = "cad:" ^ Cad.Flow.stage_name s.Cad.Flow.stage in
      match
        List.find_opt (fun e -> e.Jitise_util.Trace.name = name) spans
      with
      | Some e ->
          Alcotest.(check (float 1e-9))
            (name ^ " carries the modelled duration")
            s.Cad.Flow.seconds e.Jitise_util.Trace.dur
      | None -> Alcotest.failf "no span named %s" name)
    run.Cad.Flow.stages

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

(* Every stage crashes: the very first attempt fails at Check_syntax. *)
let always_crash = { (Cad.Faults.defaults ~seed:0) with Cad.Faults.crash_rate = 1.0 }

let only_timing ~seed =
  {
    (Cad.Faults.defaults ~seed) with
    Cad.Faults.crash_rate = 0.0;
    congestion_rate = 0.0;
    timing_rate = 1.0;
    corruption_rate = 0.0;
  }

let test_faults_disabled_is_noop () =
  let p = List.hd (Lazy.force projects) in
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        ("no roll at " ^ stage) true
        (Cad.Faults.roll Cad.Faults.none ~signature:"s" ~stage ~attempt:1
           ~relaxed:false ~complexity:1.0
        = None))
    [ "syn"; "xst"; "tra"; "map"; "par"; "bitgen" ];
  match Cad.Flow.implement_result ~faults:Cad.Faults.none db p with
  | Ok run ->
      Alcotest.(check (float 1e-9)) "same run as implement"
        (implement p).Cad.Flow.total_seconds run.Cad.Flow.total_seconds
  | Error _ -> Alcotest.fail "faults disabled must not fail"

let test_faults_roll_deterministic () =
  let c = Cad.Faults.defaults ~seed:42 in
  let roll () =
    List.map
      (fun (stage, attempt) ->
        Cad.Faults.roll c ~signature:"ci_abc" ~stage ~attempt ~relaxed:false
          ~complexity:0.8)
      [ ("syn", 1); ("map", 1); ("par", 1); ("bitgen", 1); ("par", 2) ]
  in
  Alcotest.(check bool) "same tuple, same outcome" true (roll () = roll ());
  (* With defaults, a large population of signatures must show both
     outcomes: some failing rolls and mostly clean ones. *)
  let outcomes =
    List.init 400 (fun i ->
        Cad.Faults.roll c
          ~signature:(Printf.sprintf "ci_%d" i)
          ~stage:"par" ~attempt:1 ~relaxed:false ~complexity:0.8)
  in
  let failures = List.length (List.filter (( <> ) None) outcomes) in
  Alcotest.(check bool) "some failures injected" true (failures > 10);
  Alcotest.(check bool) "most runs clean" true (failures < 200)

let test_faults_relaxed_skips_timing () =
  (* Find a seed whose timing roll fails PAR, then check the relaxed
     resynthesis of the same attempt cannot fail that way. *)
  let seed =
    let rec find s =
      if s > 500 then Alcotest.fail "no timing failure in 500 seeds"
      else
        match
          Cad.Faults.roll (only_timing ~seed:s) ~signature:"ci_t" ~stage:"par"
            ~attempt:1 ~relaxed:false ~complexity:1.0
        with
        | Some Cad.Faults.Timing_failure -> s
        | _ -> find (s + 1)
    in
    find 0
  in
  Alcotest.(check bool) "relaxed attempt skips the timing roll" true
    (Cad.Faults.roll (only_timing ~seed) ~signature:"ci_t" ~stage:"par"
       ~attempt:1 ~relaxed:true ~complexity:1.0
    = None)

let test_validation_before_syntax_check () =
  (* Config validation must run before the VHDL syntax check, and both
     speedup_factor and device_scale are validated. *)
  let p = List.hd (Lazy.force projects) in
  let broken =
    { p with Hw.Project.vhdl = { p.Hw.Project.vhdl with Hw.Vhdl.source = "x" } }
  in
  let rejected config =
    try
      ignore (implement ~config broken);
      `No_error
    with
    | Invalid_argument _ -> `Invalid_argument
    | Cad.Flow.Syntax_error _ -> `Syntax_error
  in
  Alcotest.(check bool) "bad device_scale beats syntax error" true
    (rejected { Cad.Flow.default_config with Cad.Flow.device_scale = 0.0 }
    = `Invalid_argument);
  Alcotest.(check bool) "bad speedup_factor beats syntax error" true
    (rejected { Cad.Flow.default_config with Cad.Flow.speedup_factor = 1.0 }
    = `Invalid_argument);
  Alcotest.(check bool) "negative speedup_factor rejected" true
    (rejected { Cad.Flow.default_config with Cad.Flow.speedup_factor = -0.1 }
    = `Invalid_argument);
  (* the documented top of the range is accepted *)
  ignore
    (implement
       ~config:{ Cad.Flow.default_config with Cad.Flow.speedup_factor = 0.99 }
       p)

let test_implement_result_failure () =
  let p = List.hd (Lazy.force projects) in
  match Cad.Flow.implement_result ~faults:always_crash db p with
  | Ok _ -> Alcotest.fail "crash_rate 1.0 must fail"
  | Error f ->
      Alcotest.(check bool) "fails at the first stage" true
        (f.Cad.Flow.failed_stage = Cad.Flow.Check_syntax);
      Alcotest.(check bool) "transient kind" true
        (Cad.Faults.is_transient f.Cad.Flow.fault);
      Alcotest.(check int) "attempt recorded" 1 f.Cad.Flow.failed_attempt;
      let clean = implement p in
      Alcotest.(check bool) "waste is positive and partial" true
        (f.Cad.Flow.wasted_seconds > 0.0
        && f.Cad.Flow.wasted_seconds < clean.Cad.Flow.total_seconds)

(* Regression: the never-failing [implement] used to hit [assert false]
   if the flow ever returned [Error] with faults disabled.  The branch
   now raises a named {!Cad.Flow.Internal_error}; feed the extractor a
   synthetic failure and check the error names the stage. *)
let test_run_of_result_internal_error () =
  let p = List.hd (Lazy.force projects) in
  (match Cad.Flow.implement_result ~faults:Cad.Faults.none db p with
  | Ok run ->
      let again = Cad.Flow.run_of_result (Ok run) in
      Alcotest.(check (float 1e-9)) "Ok passes through" run.Cad.Flow.total_seconds
        again.Cad.Flow.total_seconds
  | Error _ -> Alcotest.fail "faultless flow must not fail");
  let synthetic =
    match Cad.Flow.implement_result ~faults:always_crash db p with
    | Error f -> f
    | Ok _ -> Alcotest.fail "crash_rate 1.0 must fail"
  in
  match Cad.Flow.run_of_result (Error synthetic) with
  | (_ : Cad.Flow.run) -> Alcotest.fail "expected Internal_error"
  | exception Cad.Flow.Internal_error m ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "message names the stage" true
        (contains m (Cad.Flow.stage_name synthetic.Cad.Flow.failed_stage))

let test_relaxed_run_costs_more () =
  let p = List.hd (Lazy.force projects) in
  let plain = implement p in
  match Cad.Flow.implement_result ~relaxed:true db p with
  | Error _ -> Alcotest.fail "no faults, no failure"
  | Ok relaxed ->
      let s r stage = Cad.Flow.stage_seconds r stage in
      Alcotest.(check (float 1e-6)) "map costs 15 % extra"
        (1.15 *. s plain Cad.Flow.Map)
        (s relaxed Cad.Flow.Map);
      Alcotest.(check (float 1e-6)) "par costs 15 % extra"
        (1.15 *. s plain Cad.Flow.Place_and_route)
        (s relaxed Cad.Flow.Place_and_route);
      Alcotest.(check (float 1e-9)) "constants unchanged"
        (Cad.Flow.constant_seconds plain)
        (Cad.Flow.constant_seconds relaxed);
      Alcotest.(check bool) "flagged as relaxed" true relaxed.Cad.Flow.relaxed

let test_bitstream_integrity () =
  let p = List.hd (Lazy.force projects) in
  let b = (implement p).Cad.Flow.bitstream in
  Alcotest.(check bool) "generated bitstreams are well-formed" true
    (Cad.Bitstream.well_formed b);
  Alcotest.(check bool) "corruption detected" false
    (Cad.Bitstream.well_formed (Cad.Bitstream.corrupt b));
  Alcotest.(check bool) "pp marks corruption" true
    (let s =
       Format.asprintf "%a" Cad.Bitstream.pp (Cad.Bitstream.corrupt b)
     in
     String.length s >= 9 && String.sub s (String.length s - 9) 9 = "[CORRUPT]")

let test_cache_find_hit_probe () =
  let cache = Cad.Cache.create () in
  let p = List.hd (Lazy.force projects) in
  let signature = p.Hw.Project.name in
  let b = (implement p).Cad.Flow.bitstream in
  Alcotest.check hit_opt "probe misses on empty cache" None
    (Cad.Cache.find_hit cache ~app:"alpha" ~signature);
  (* crucially, the probe did NOT insert: a subsequent note still
     reports a miss and becomes the builder *)
  Alcotest.check hit_opt "note after probe is still a miss" None
    (Cad.Cache.note cache ~app:"alpha" ~signature ~bitstream:b);
  Alcotest.check hit_opt "probe hits locally" (Some Cad.Cache.Local)
    (Cad.Cache.find_hit cache ~app:"alpha" ~signature);
  Alcotest.check hit_opt "probe hits shared" (Some Cad.Cache.Shared)
    (Cad.Cache.find_hit cache ~app:"beta" ~signature);
  let s = Cad.Cache.stats cache in
  Alcotest.(check int) "probe hits counted" 1 s.Cad.Cache.local_hits;
  Alcotest.(check int) "probe hits attributed" 1 s.Cad.Cache.shared_hits

let test_cache_not_poisoned_by_failure () =
  let cache = Cad.Cache.create () in
  let p = List.hd (Lazy.force projects) in
  (match Cad.Flow.implement_result ~cache ~app:"alpha" ~faults:always_crash db p with
  | Ok _ -> Alcotest.fail "crash_rate 1.0 must fail"
  | Error _ -> ());
  Alcotest.(check int) "failed run not recorded" 0
    (Cad.Cache.stats cache).Cad.Cache.entries;
  Alcotest.check
    Alcotest.(option string)
    "failed signature not served" None
    (Option.map
       (fun (b : Cad.Bitstream.t) -> b.Cad.Bitstream.signature)
       (Cad.Cache.find cache p.Hw.Project.name));
  (* a later clean build does get recorded *)
  ignore (implement ~cache ~app:"beta" p);
  Alcotest.(check int) "clean run recorded" 1
    (Cad.Cache.stats cache).Cad.Cache.entries

let () =
  Alcotest.run "cad"
    [
      ( "flow",
        [
          Alcotest.test_case "all stages" `Quick test_flow_runs_all_stages;
          Alcotest.test_case "table III constants" `Quick
            test_flow_constants_match_table3;
          Alcotest.test_case "map/par ranges" `Quick test_flow_map_par_ranges;
          Alcotest.test_case "size scaling" `Quick
            test_flow_bigger_candidates_take_longer;
          Alcotest.test_case "deterministic" `Quick test_flow_deterministic;
          Alcotest.test_case "speedup factor" `Quick test_flow_speedup_factor;
          Alcotest.test_case "eapr bitgen" `Quick test_flow_eapr_vs_regular_bitgen;
          Alcotest.test_case "constant seconds" `Quick test_flow_constant_seconds;
          Alcotest.test_case "bitgen dominates" `Quick
            test_flow_bitgen_dominates_constants;
          Alcotest.test_case "c2v" `Quick test_flow_c2v;
          Alcotest.test_case "bitstream" `Quick test_bitstream_properties;
          Alcotest.test_case "small device" `Quick test_flow_small_device;
          Alcotest.test_case "syntax error" `Quick test_flow_syntax_error_raises;
        ] );
      ( "cache",
        [
          Alcotest.test_case "local vs shared" `Quick test_cache_local_vs_shared;
          Alcotest.test_case "stats" `Quick test_cache_stats;
          Alcotest.test_case "flow integration" `Quick
            test_flow_cache_integration;
          Alcotest.test_case "tracer spans" `Quick test_flow_tracer_spans;
          Alcotest.test_case "find_hit probe" `Quick test_cache_find_hit_probe;
          Alcotest.test_case "never poisoned by failure" `Quick
            test_cache_not_poisoned_by_failure;
        ] );
      ( "faults",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_faults_disabled_is_noop;
          Alcotest.test_case "rolls deterministic" `Quick
            test_faults_roll_deterministic;
          Alcotest.test_case "relaxed skips timing" `Quick
            test_faults_relaxed_skips_timing;
          Alcotest.test_case "validation before syntax check" `Quick
            test_validation_before_syntax_check;
          Alcotest.test_case "internal error names stage" `Quick
            test_run_of_result_internal_error;
          Alcotest.test_case "implement_result failure" `Quick
            test_implement_result_failure;
          Alcotest.test_case "relaxed run costs more" `Quick
            test_relaxed_run_costs_more;
          Alcotest.test_case "bitstream integrity" `Quick
            test_bitstream_integrity;
        ] );
    ]
