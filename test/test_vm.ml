(* Tests for Jitise_vm: memory, profile, JIT cost model, interpreter. *)

module Ir = Jitise_ir
module Vm = Jitise_vm
module F = Jitise_frontend

let compile src = (F.Compiler.compile_string ~name:"t" src).F.Compiler.modul

let run ?fuel ?jit ?cis ?(n = 0) m =
  Vm.Machine.run ?fuel ?jit ?cis m ~entry:"main"
    ~args:[ Ir.Eval.VInt (Int64.of_int n) ]

let ret_int out =
  match out.Vm.Machine.ret with
  | Some (Ir.Eval.VInt v) -> Int64.to_int v
  | _ -> Alcotest.fail "expected int"

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let test_memory_alloc_store_load () =
  let m = Vm.Memory.create () in
  let base = Vm.Memory.alloc m 4 in
  Vm.Memory.store m (base + 2) (Ir.Eval.VInt 42L);
  (match Vm.Memory.load m (base + 2) with
  | Ir.Eval.VInt 42L -> ()
  | _ -> Alcotest.fail "roundtrip");
  Alcotest.(check bool) "fresh cells are zero" true
    (match Vm.Memory.load m base with Ir.Eval.VInt 0L -> true | _ -> false)

let test_memory_bad_address () =
  let m = Vm.Memory.create () in
  let _ = Vm.Memory.alloc m 2 in
  Alcotest.(check bool) "null deref" true
    (try
       ignore (Vm.Memory.load m 0);
       false
     with Vm.Memory.Bad_address 0 -> true);
  Alcotest.(check bool) "past the stack" true
    (try
       ignore (Vm.Memory.load m 1000);
       false
     with Vm.Memory.Bad_address _ -> true)

let test_memory_frames () =
  let m = Vm.Memory.create () in
  let mark = Vm.Memory.mark m in
  let base = Vm.Memory.alloc m 8 in
  Vm.Memory.release m mark;
  Alcotest.(check bool) "released frame unreadable" true
    (try
       ignore (Vm.Memory.load m base);
       false
     with Vm.Memory.Bad_address _ -> true)

let test_memory_globals () =
  let modul = Ir.Irmod.create ~name:"g" in
  Ir.Irmod.add_global modul
    { Ir.Irmod.gname = "ints"; gty = Ir.Ty.I32; gsize = 3;
      ginit = Ir.Irmod.Ints [| 1L; 2L; 3L |] };
  Ir.Irmod.add_global modul
    { Ir.Irmod.gname = "floats"; gty = Ir.Ty.F64; gsize = 2;
      ginit = Ir.Irmod.Floats [| 1.5; -2.5 |] };
  Ir.Irmod.add_global modul
    { Ir.Irmod.gname = "zeros"; gty = Ir.Ty.F32; gsize = 2; ginit = Ir.Irmod.Zero };
  let m = Vm.Memory.create () in
  Vm.Memory.load_globals m modul;
  Alcotest.(check (array int64)) "ints" [| 1L; 2L; 3L |]
    (Vm.Memory.read_global_ints m "ints" 3);
  Alcotest.(check (array (float 1e-9))) "floats" [| 1.5; -2.5 |]
    (Vm.Memory.read_global_floats m "floats" 2);
  Alcotest.(check (array (float 1e-9))) "zeros" [| 0.0; 0.0 |]
    (Vm.Memory.read_global_floats m "zeros" 2);
  Vm.Memory.write_global_ints m "ints" [| 9L; 8L; 7L |];
  Alcotest.(check (array int64)) "overwritten" [| 9L; 8L; 7L |]
    (Vm.Memory.read_global_ints m "ints" 3);
  Alcotest.(check bool) "unknown global" true
    (try
       ignore (Vm.Memory.global_base m "nope");
       false
     with Invalid_argument _ -> true)

let test_memory_limit () =
  let m = Vm.Memory.create ~limit:128 () in
  Alcotest.(check bool) "out of memory" true
    (try
       ignore (Vm.Memory.alloc m 1024);
       false
     with Vm.Memory.Out_of_memory -> true)

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

let test_profile_counts () =
  let p = Vm.Profile.create () in
  Vm.Profile.bump p ~func:"f" ~label:0 ~instrs:3;
  Vm.Profile.bump p ~func:"f" ~label:0 ~instrs:3;
  Vm.Profile.record p ~func:"f" ~label:1 ~count:5L ~instrs:2;
  Alcotest.(check int64) "bumped twice" 2L (Vm.Profile.count p ~func:"f" ~label:0);
  Alcotest.(check int64) "recorded" 5L (Vm.Profile.count p ~func:"f" ~label:1);
  Alcotest.(check int64) "missing is zero" 0L (Vm.Profile.count p ~func:"g" ~label:0);
  Alcotest.(check int64) "instr total" 16L p.Vm.Profile.executed_instrs

let test_profile_merge () =
  let a = Vm.Profile.create () and b = Vm.Profile.create () in
  Vm.Profile.record a ~func:"f" ~label:0 ~count:2L ~instrs:1;
  Vm.Profile.record b ~func:"f" ~label:0 ~count:3L ~instrs:1;
  Vm.Profile.merge ~into:a b;
  Alcotest.(check int64) "merged" 5L (Vm.Profile.count a ~func:"f" ~label:0)

let test_profile_block_costs_ordering () =
  let m =
    compile
      "int main(int n) { int s = 0; int i; for (i = 0; i < n; i = i + 1) { s = s + i; } return s; }"
  in
  let out = run ~n:50 m in
  let costs = Vm.Profile.block_costs out.Vm.Machine.profile m in
  Alcotest.(check bool) "non-empty" true (costs <> []);
  let rec descending = function
    | a :: b :: rest -> snd a >= snd b && descending (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "sorted by cost" true (descending costs)

(* ------------------------------------------------------------------ *)
(* Machine                                                             *)
(* ------------------------------------------------------------------ *)

let test_machine_phi_swap () =
  (* Parallel phi semantics: swapping two values through a loop must not
     serialize.  After n iterations of (a, b) <- (b, a), with n even the
     original order is restored. *)
  let m =
    compile
      "int main(int n) { int a = 1; int b = 2; int i; for (i = 0; i < n; i = i + 1) { int t = a; a = b; b = t; } return a * 10 + b; }"
  in
  Alcotest.(check int) "even swaps" 12 (ret_int (run ~n:4 m));
  Alcotest.(check int) "odd swaps" 21 (ret_int (run ~n:5 m))

let test_machine_faults () =
  let m = compile "int main(int n) { return 10 / n; }" in
  Alcotest.(check bool) "division fault" true
    (try
       ignore (run ~n:0 m);
       false
     with Vm.Machine.Fault _ -> true);
  let m = compile "int a[4]; int main(int n) { return a[n]; }" in
  Alcotest.(check bool) "wild index" true
    (try
       ignore (run ~n:5000 m);
       false
     with Vm.Machine.Fault _ -> true)

let test_machine_missing_entry () =
  let m = compile "int main(int n) { return 0; }" in
  Alcotest.(check bool) "unknown entry" true
    (try
       ignore (Vm.Machine.run m ~entry:"nope" ~args:[]);
       false
     with Vm.Machine.Fault _ -> true)

let test_machine_fuel () =
  let m = compile "int main(int n) { while (1 == 1) { n = n + 1; } return n; }" in
  Alcotest.(check bool) "infinite loop stopped" true
    (try
       ignore (run ~fuel:10_000L m);
       false
     with Vm.Machine.Fault _ -> true)

let test_machine_clocks () =
  let m =
    compile
      "double v[64]; int main(int n) { int i; double s = 0.0; for (i = 0; i < 64; i = i + 1) { v[i] = i * 0.5; } for (i = 0; i < n; i = i + 1) { s = s + v[i & 63] * v[(i + 1) & 63]; } return s; }"
  in
  let out = run ~n:5000 m in
  Alcotest.(check bool) "native positive" true (out.Vm.Machine.native_cycles > 0.0);
  Alcotest.(check bool) "vm >= 0" true (out.Vm.Machine.vm_cycles > 0.0);
  (* native-model run reports identical clocks *)
  let native = run ~n:5000 ~jit:Vm.Jit_model.native m in
  Alcotest.(check (float 1e-6)) "native model has no overhead"
    native.Vm.Machine.native_cycles native.Vm.Machine.vm_cycles

let test_machine_hot_loop_amortizes () =
  let src =
    "int main(int n) { int s = 0; int i; for (i = 0; i < n; i = i + 1) { s = s + i * 3; } return s; }"
  in
  let m = compile src in
  let small = run ~n:50 m in
  let large = run ~n:1_000_000 m in
  let ratio o = o.Vm.Machine.vm_cycles /. o.Vm.Machine.native_cycles in
  Alcotest.(check bool) "warm-up dominates small runs" true
    (ratio small > ratio large);
  Alcotest.(check bool) "hot loop converges near 1" true (ratio large < 1.05)

let test_machine_deterministic () =
  let m = compile "int main(int n) { return n * 3 + 1; }" in
  let a = run ~n:4 m and b = run ~n:4 m in
  Alcotest.(check int) "same result" (ret_int a) (ret_int b);
  Alcotest.(check (float 1e-9)) "same cycles" a.Vm.Machine.native_cycles
    b.Vm.Machine.native_cycles

(* Hand-build a module with a Ci_call: main(n) = ci0(n, 7).  Shared
   with the engine-differential suite below. *)
let ci_module () =
  let f = Ir.Func.create ~name:"main" ~params:[ (0, Ir.Ty.I32) ] ~ret_ty:Ir.Ty.I32 in
  let b = Ir.Builder.create f in
  let bb = Ir.Builder.new_block b ~name:"entry" in
  Ir.Builder.position_at b bb;
  let r =
    Ir.Builder.add b Ir.Ty.I32
      (Ir.Instr.Ci_call (0, [ Ir.Builder.reg 0; Ir.Builder.ci32 7 ]))
  in
  Ir.Builder.ret b (Some (Ir.Builder.reg r));
  let f = Ir.Builder.finish b in
  let m = Ir.Irmod.create ~name:"ci" in
  Ir.Irmod.add_func m f;
  m

let mul_ci_registry () =
  let cis = Vm.Machine.empty_cis () in
  Hashtbl.replace cis 0
    {
      Vm.Machine.ci_eval =
        (fun args ->
          Ir.Eval.VInt
            (Int64.mul (Ir.Eval.as_int args.(0)) (Ir.Eval.as_int args.(1))));
      ci_cycles = 2;
      (* a distinguishable native impl would break the differential
         suite: the knob must be unobservable in outcomes *)
      ci_native =
        Some
          (fun args ->
            Ir.Eval.VInt
              (Int64.mul (Ir.Eval.as_int args.(0)) (Ir.Eval.as_int args.(1))));
    };
  cis

let test_machine_ci_call () =
  (* The registry path: ci0(a, b) = a * b, at 2 cycles. *)
  let m = ci_module () in
  let cis = mul_ci_registry () in
  Alcotest.(check int) "ci computes" 42 (ret_int (run ~cis ~n:6 m));
  (* without the registry the call faults *)
  Alcotest.(check bool) "unconfigured ci faults" true
    (try
       ignore (run ~n:6 m);
       false
     with Vm.Machine.Fault _ -> true)

let test_jit_model_translation () =
  Alcotest.(check (float 1e-9)) "native model translates for free" 0.0
    (Vm.Jit_model.module_translation_cycles Vm.Jit_model.native
       ~module_instrs:1000);
  Alcotest.(check bool) "default model charges translation" true
    (Vm.Jit_model.module_translation_cycles Vm.Jit_model.default
       ~module_instrs:1000
    > 0.0)

let test_jit_model_block_cycles () =
  let jit = Vm.Jit_model.default in
  let cold =
    Vm.Jit_model.block_execution_cycles jit ~prior:0L ~ninstrs:10
      ~native_cycles:20
  in
  let hot =
    Vm.Jit_model.block_execution_cycles jit ~prior:1_000L ~ninstrs:10
      ~native_cycles:20
  in
  Alcotest.(check bool) "cold interp is slower" true (cold > 20.0);
  Alcotest.(check bool) "hot is native-or-better" true (hot <= 20.0)

let test_dispatch_accounting () =
  (* The dispatch charge is per executed IR instruction, independent of
     how the host engine batches the work (DESIGN.md §13): a block of
     [ninstrs] instructions always charges exactly
     [vm_dispatch_cycles * ninstrs] while interpreted. *)
  Alcotest.(check int)
    "block charge is per-instruction" 20
    (Ir.Cost.block_dispatch_cycles ~ninstrs:10);
  Alcotest.(check int)
    "empty block charges nothing" 0
    (Ir.Cost.block_dispatch_cycles ~ninstrs:0);
  let cold =
    Vm.Jit_model.block_execution_cycles Vm.Jit_model.default ~prior:0L
      ~ninstrs:10 ~native_cycles:25
  in
  Alcotest.(check (float 0.0))
    "cold = native + dispatch"
    (float_of_int (25 + Ir.Cost.block_dispatch_cycles ~ninstrs:10))
    cold

let test_seconds_of_cycles () =
  Alcotest.(check (float 1e-12)) "300 MHz" 1.0
    (Vm.Machine.seconds_of_cycles Ir.Cost.clock_hz)

(* ------------------------------------------------------------------ *)
(* Engine differential: Reference vs Threaded                          *)
(* ------------------------------------------------------------------ *)

(* The threaded engine's whole contract is "byte-identical outcomes".
   These tests run the same module under both engines and require equal
   return values, EXACT clock equality (same float-addition order, so
   0.0 tolerance), equal executed-instruction counts and equal
   block-frequency profiles. *)

module W = Jitise_workloads
module Core = Jitise_core
module Pp = Jitise_pivpav
module Cad = Jitise_cad
module An = Jitise_analysis
module Ise = Jitise_ise
module U = Jitise_util

let check_outcomes_equal what (a : Vm.Machine.outcome) (b : Vm.Machine.outcome)
    =
  (match (a.ret, b.ret) with
  | None, None -> ()
  | Some x, Some y when Ir.Eval.equal_value x y -> ()
  | _ -> Alcotest.fail (what ^ ": return values differ"));
  Alcotest.(check (float 0.0))
    (what ^ ": native cycles") a.native_cycles b.native_cycles;
  Alcotest.(check (float 0.0)) (what ^ ": vm cycles") a.vm_cycles b.vm_cycles;
  Alcotest.(check int64)
    (what ^ ": executed instrs") a.profile.Vm.Profile.executed_instrs
    b.profile.Vm.Profile.executed_instrs;
  Alcotest.(check bool)
    (what ^ ": profiles equal") true
    (Vm.Profile.to_list a.profile = Vm.Profile.to_list b.profile)

(* Run [m] under both engines and return (reference, threaded) after
   checking the outcomes are identical. *)
let diff ?fuel ?cis ?(entry = "main") ~args what m =
  let go engine = Vm.Machine.run ?fuel ?cis ~engine m ~entry ~args in
  let r = go Vm.Machine.Reference and t = go Vm.Machine.Threaded in
  check_outcomes_equal what r t;
  (r, t)

let diff_n ?fuel ?cis ~n what m =
  diff ?fuel ?cis ~args:[ Ir.Eval.VInt (Int64.of_int n) ] what m

(* Compare [len] cells of global [name] across the two outcomes. *)
let check_global_equal what name len (a : Vm.Machine.outcome)
    (b : Vm.Machine.outcome) =
  let base_a = Vm.Memory.global_base a.memory name
  and base_b = Vm.Memory.global_base b.memory name in
  for i = 0 to len - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "%s: %s[%d]" what name i)
      true
      (Ir.Eval.equal_value
         (Vm.Memory.load a.memory (base_a + i))
         (Vm.Memory.load b.memory (base_b + i)))
  done

let test_diff_mode_family () =
  (* Generated SPEC-shaped program: cold config code, a live dispatcher,
     dead modes — lots of branchy integer control flow. *)
  let src =
    W.Gen.mode_family ~app:"dx" ~live:6 ~cfg:5 ~dead:4
    ^ "int main(int n) {\n\
      \  int acc = dx_startup();\n\
      \  int t;\n\
      \  for (t = 0; t < n; t = t + 1) { acc = acc + dx_step(t); }\n\
      \  return acc;\n\
       }\n"
  in
  let m = compile src in
  List.iter
    (fun n -> ignore (diff_n ~n (Printf.sprintf "mode n=%d" n) m))
    [ 0; 1; 37; 500 ]

let test_diff_phase_family () =
  (* Float kernel with global arrays: checks the float fast paths and
     that memory ends up identical, not just the return value. *)
  let src =
    W.Gen.phase_family ~prefix:"px" ~phases:3 ~width:24 ~float_ops:true
    ^ W.Gen.float_helper_family ~prefix:"fh" ~count:4
    ^ "int main(int n) {\n\
      \  px_seed(n);\n\
      \  int r;\n\
      \  for (r = 0; r < 5; r = r + 1) { px_run(); }\n\
      \  double v = fh_eval(n - (n / 4) * 4, px_a[0] + px_b[23]);\n\
      \  if (v > 0.5) { return 1; }\n\
      \  return 0;\n\
       }\n"
  in
  let m = compile src in
  List.iter
    (fun n ->
      let r, t = diff_n ~n (Printf.sprintf "phase n=%d" n) m in
      check_global_equal "phase" "px_a" 24 r t;
      check_global_equal "phase" "px_b" 24 r t)
    [ 0; 3; 11 ]

let test_diff_intrinsics () =
  (* Every MiniC-reachable intrinsic, plus implicit int->double
     promotion on the way in. *)
  let src =
    "int main(int n) {\n\
    \  double x = 0.5 + n;\n\
    \  double s = sqrt(x) + sin(x) * cos(x) + atan(x) + exp(0.1 * x)\n\
    \    + log(x + 1.0) + fabs(0.0 - x) + floor(x) + pow(x, 2.0);\n\
    \  int i = abs(0 - n) + min(n, 3) + max(n, 7);\n\
    \  if (s > 100.0) { return i + 1000; }\n\
    \  return i;\n\
     }\n"
  in
  let m = compile src in
  List.iter
    (fun n -> ignore (diff_n ~n (Printf.sprintf "intrinsics n=%d" n) m))
    [ 0; 4; 50 ]

let test_diff_recursion () =
  let m =
    compile
      "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - \
       2); }\n\
       int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; \
       } return a; }\n\
       int main(int n) { return fib(n) * 100 + gcd(n * 12, 18); }\n"
  in
  List.iter
    (fun n -> ignore (diff_n ~n (Printf.sprintf "recursion n=%d" n) m))
    [ 0; 1; 10; 15 ]

(* Hand-built Switch with a duplicate case value: both engines must
   honor first-match-wins on the textual case order. *)
let switch_module () =
  let f =
    Ir.Func.create ~name:"main" ~params:[ (0, Ir.Ty.I32) ] ~ret_ty:Ir.Ty.I32
  in
  let b = Ir.Builder.create f in
  let entry = Ir.Builder.new_block b ~name:"entry" in
  let bb1 = Ir.Builder.new_block b ~name:"one" in
  let bb2 = Ir.Builder.new_block b ~name:"one_dup" in
  let bb3 = Ir.Builder.new_block b ~name:"two" in
  let bbd = Ir.Builder.new_block b ~name:"default" in
  Ir.Builder.position_at b entry;
  Ir.Builder.set_term b
    (Ir.Instr.Switch
       ( Ir.Builder.reg 0,
         bbd.Ir.Block.label,
         [
           (1L, bb1.Ir.Block.label);
           (1L, bb2.Ir.Block.label);
           (2L, bb3.Ir.Block.label);
         ] ));
  let ret_const bb v =
    Ir.Builder.position_at b bb;
    Ir.Builder.ret b (Some (Ir.Builder.ci32 v))
  in
  ret_const bb1 10;
  ret_const bb2 20;
  ret_const bb3 30;
  ret_const bbd 99;
  let m = Ir.Irmod.create ~name:"sw" in
  Ir.Irmod.add_func m (Ir.Builder.finish b);
  m

let test_diff_switch () =
  let m = switch_module () in
  List.iter
    (fun (n, expect) ->
      let r, _ = diff_n ~n (Printf.sprintf "switch n=%d" n) m in
      Alcotest.(check int) (Printf.sprintf "switch %d -> %d" n expect) expect
        (Int64.to_int
           (match r.Vm.Machine.ret with
           | Some (Ir.Eval.VInt v) -> v
           | _ -> Alcotest.fail "int expected")))
    [ (1, 10); (2, 30); (7, 99); (0, 99) ]

let test_diff_ci_call () =
  let m = ci_module () in
  let cis = mul_ci_registry () in
  ignore (diff_n ~cis ~n:6 "ci" m);
  ignore (diff_n ~cis ~n:(-3) "ci negative" m)

(* Fault parity: both engines must fault on the same inputs with the
   SAME message (messages embed block names and budgets, so this pins
   the threaded engine's error paths, not just its happy path). *)
let fault_msg ?fuel ?cis ~engine ~n m =
  try
    ignore
      (Vm.Machine.run ?fuel ?cis ~engine m ~entry:"main"
         ~args:[ Ir.Eval.VInt (Int64.of_int n) ]);
    None
  with Vm.Machine.Fault msg -> Some msg

let check_fault_parity ?fuel ?cis what ~n m =
  let r = fault_msg ?fuel ?cis ~engine:Vm.Machine.Reference ~n m
  and t = fault_msg ?fuel ?cis ~engine:Vm.Machine.Threaded ~n m in
  Alcotest.(check bool) (what ^ ": faulted") true (r <> None);
  Alcotest.(check (option string)) (what ^ ": same message") r t

let unknown_callee_module () =
  let f =
    Ir.Func.create ~name:"main" ~params:[ (0, Ir.Ty.I32) ] ~ret_ty:Ir.Ty.I32
  in
  let b = Ir.Builder.create f in
  let bb = Ir.Builder.new_block b ~name:"entry" in
  Ir.Builder.position_at b bb;
  let r = Ir.Builder.call b Ir.Ty.I32 "nope" [ Ir.Builder.reg 0 ] in
  Ir.Builder.ret b (Some (Ir.Builder.reg r));
  let m = Ir.Irmod.create ~name:"unk" in
  Ir.Irmod.add_func m (Ir.Builder.finish b);
  m

let test_diff_fault_parity () =
  check_fault_parity "div by zero" ~n:0
    (compile "int main(int n) { return 10 / n; }");
  check_fault_parity "wild index" ~n:5000
    (compile "int a[4]; int main(int n) { return a[n]; }");
  check_fault_parity "fuel" ~fuel:10_000L ~n:0
    (compile
       "int main(int n) { while (1 == 1) { n = n + 1; } return n; }");
  check_fault_parity "unknown callee" ~n:1 (unknown_callee_module ());
  check_fault_parity "unconfigured ci" ~n:6 (ci_module ())

(* ------------------------------------------------------------------ *)
(* Tuning-knob differential: all (link, fuse, ci_native) combinations  *)
(* ------------------------------------------------------------------ *)

(* The sixteen (link, fuse, ci_native, regalloc) knob combinations
   under a deliberately tiny linking budget (so the escape hatch fires
   inside short loops), plus the two budget extremes under full
   tuning. *)
let all_tunings =
  List.concat_map
    (fun link ->
      List.concat_map
        (fun fuse ->
          List.concat_map
            (fun ci_native ->
              List.map
                (fun regalloc ->
                  {
                    Vm.Machine.link;
                    fuse;
                    ci_native;
                    regalloc;
                    max_linked_blocks = 3;
                  })
                [ false; true ])
            [ false; true ])
        [ false; true ])
    [ false; true ]
  @ [
      {
        Vm.Machine.link = true;
        fuse = true;
        ci_native = true;
        regalloc = true;
        max_linked_blocks = 1;
      };
      {
        Vm.Machine.link = true;
        fuse = true;
        ci_native = true;
        regalloc = true;
        max_linked_blocks = 1024;
      };
    ]

let tuning_tag (t : Vm.Machine.tuning) =
  Printf.sprintf "link=%b fuse=%b ci=%b regalloc=%b budget=%d" t.Vm.Machine.link
    t.Vm.Machine.fuse t.Vm.Machine.ci_native t.Vm.Machine.regalloc
    t.Vm.Machine.max_linked_blocks

(* One Reference run, then every tuned Threaded variant against it. *)
let diff_all_tunings ?fuel ?cis ?(entry = "main") ~args what m =
  let ref_out =
    Vm.Machine.run ?fuel ?cis ~engine:Vm.Machine.Reference m ~entry ~args
  in
  List.iter
    (fun tuning ->
      let t =
        Vm.Machine.run ?fuel ?cis ~engine:Vm.Machine.Threaded ~tuning m ~entry
          ~args
      in
      check_outcomes_equal (what ^ " [" ^ tuning_tag tuning ^ "]") ref_out t)
    all_tunings;
  ref_out

let diff_all_n ?fuel ?cis ~n what m =
  diff_all_tunings ?fuel ?cis ~args:[ Ir.Eval.VInt (Int64.of_int n) ] what m

let check_fault_parity_tunings ?fuel ?cis what ~n m =
  let r = fault_msg ?fuel ?cis ~engine:Vm.Machine.Reference ~n m in
  Alcotest.(check bool) (what ^ ": faulted") true (r <> None);
  List.iter
    (fun tuning ->
      let t =
        try
          ignore
            (Vm.Machine.run ?fuel ?cis ~engine:Vm.Machine.Threaded ~tuning m
               ~entry:"main"
               ~args:[ Ir.Eval.VInt (Int64.of_int n) ]);
          None
        with Vm.Machine.Fault msg -> Some msg
      in
      Alcotest.(check (option string))
        (what ^ " [" ^ tuning_tag tuning ^ "]")
        r t)
    all_tunings

let test_tuning_self_loop () =
  (* A single self-looping block: a linked chain repeatedly re-enters
     the same compiled block and trips the budget escape hatch. *)
  let m =
    compile
      "int main(int n) {\n\
      \  int i = 0; int acc = 0;\n\
      \  while (i < n) { acc = acc + i * 3 - 1; i = i + 1; }\n\
      \  return acc;\n\
       }\n"
  in
  List.iter
    (fun n -> ignore (diff_all_n ~n (Printf.sprintf "self loop n=%d" n) m))
    [ 0; 1; 2; 3; 4; 100 ]

let test_tuning_block_cycle () =
  (* Two alternating loop-body blocks (a mutual cycle through the loop
     header): linking follows the cycle across distinct blocks. *)
  let m =
    compile
      "int main(int n) {\n\
      \  int a = 0; int b = 1; int i = 0;\n\
      \  while (i < n) {\n\
      \    if (i - (i / 2) * 2 == 0) { a = a + b; } else { b = a + b; }\n\
      \    i = i + 1;\n\
      \  }\n\
      \  return a * 1000 + b;\n\
       }\n"
  in
  List.iter
    (fun n -> ignore (diff_all_n ~n (Printf.sprintf "block cycle n=%d" n) m))
    [ 0; 1; 2; 3; 7; 64 ]

let test_tuning_switch_heavy () =
  (* First-match-wins duplicate-case switch under every combination. *)
  let m = switch_module () in
  List.iter
    (fun n -> ignore (diff_all_n ~n (Printf.sprintf "tuned switch n=%d" n) m))
    [ 0; 1; 2; 7 ];
  (* and a dispatch-table-shaped loop: a mode dispatcher driven round
     the table, so every arm's block chain gets linked and fused *)
  let src =
    W.Gen.mode_family ~app:"tx" ~live:5 ~cfg:3 ~dead:2
    ^ "int main(int n) {\n\
      \  int acc = tx_startup();\n\
      \  int t;\n\
      \  for (t = 0; t < n; t = t + 1) { acc = acc + tx_step(t); }\n\
      \  return acc;\n\
       }\n"
  in
  let dm = compile src in
  List.iter
    (fun n -> ignore (diff_all_n ~n (Printf.sprintf "dispatch n=%d" n) dm))
    [ 0; 5; 83 ]

let test_tuning_fuel_mid_chain () =
  (* Fuel runs out in the middle of a linked chain: the fault must name
     the same function and remaining budget under every combination,
     i.e. linking must not batch fuel across block boundaries. *)
  let m =
    compile "int main(int n) { while (1 == 1) { n = n + 3; } return n; }"
  in
  List.iter
    (fun fuel ->
      check_fault_parity_tunings
        (Printf.sprintf "fuel=%Ld mid-chain" fuel)
        ~fuel ~n:0 m)
    [ 7L; 100L; 10_001L ]

let test_tuning_ci_call () =
  (* Exercises the ci_native knob on both the hit and the miss path. *)
  let m = ci_module () in
  let cis = mul_ci_registry () in
  ignore (diff_all_n ~cis ~n:6 "tuned ci" m);
  ignore (diff_all_n ~cis ~n:(-3) "tuned ci negative" m)

let test_tuning_load_sink_faults () =
  (* A fusable single-use load with a wild computed index: the sunk
     load's fault must carry the same block-level message. *)
  check_fault_parity_tunings "sunk load wild index" ~n:5000
    (compile "int a[4]; int main(int n) { return a[n * 3 + 1] + 1; }");
  check_fault_parity_tunings "sunk load null" ~n:(-1000)
    (compile "int a[4]; int main(int n) { return a[n] * 2; }");
  (* two single-use loads feeding one add: each is a barrier inside the
     other's sink window, so at most one sinks; the reported address
     must stay the textually first load's under every combination *)
  check_fault_parity_tunings "two-load barrier" ~n:5000
    (compile "int a[4]; int b[4]; int main(int n) { return a[n] + b[0]; }");
  (* a store between a load and its consumer is a barrier too *)
  check_fault_parity_tunings "store barrier" ~n:5000
    (compile
       "int a[4]; int b[4];\n\
        int main(int n) { int x = a[n]; b[0] = 7; return x + 1; }\n")

let test_fusion_stats () =
  let m =
    compile
      "int a[8];\n\
       int main(int n) {\n\
      \  int i = 0;\n\
      \  while (i < n) { a[i - (i / 8) * 8] = i * 2 + 1; i = i + 1; }\n\
      \  return a[0];\n\
       }\n"
  in
  let go tuning =
    ignore
      (Vm.Machine.run ~engine:Vm.Machine.Threaded ~tuning m ~entry:"main"
         ~args:[ Ir.Eval.VInt 7L ])
  in
  Vm.Machine.reset_fusion_stats ();
  go Vm.Machine.untuned;
  Alcotest.(check (list (pair string int)))
    "untuned compiles no fused window" []
    (Vm.Machine.fusion_stats ());
  go Vm.Machine.default_tuning;
  let stats = Vm.Machine.fusion_stats () in
  Alcotest.(check bool)
    "fused patterns counted" true
    (stats <> [] && List.for_all (fun (_, c) -> c > 0) stats);
  Alcotest.(check (list string))
    "sorted by pattern name"
    (List.sort compare (List.map fst stats))
    (List.map fst stats);
  Vm.Machine.reset_fusion_stats ();
  Alcotest.(check (list (pair string int)))
    "reset clears" []
    (Vm.Machine.fusion_stats ())

let test_diff_registry_workloads () =
  (* Full differential over real workloads from the registry, every
     dataset each. *)
  List.iter
    (fun name ->
      let w = Option.get (W.Registry.find name) in
      let compiled = W.Workload.compile w in
      let outs engine = W.Workload.run_all ~engine compiled w in
      List.iter2
        (fun (d, r) (_, t) ->
          check_outcomes_equal
            (Printf.sprintf "%s/%s" name d.W.Workload.label)
            r t)
        (outs Vm.Machine.Reference)
        (outs Vm.Machine.Threaded))
    [ "fft"; "sor"; "whetstone"; "adpcm" ]

let qcheck_diff_generated =
  let open QCheck in
  let gen =
    Gen.(
      quad (1 -- 4) (4 -- 24) bool (0 -- 30))
  in
  Test.make ~name:"random phase kernels: engines agree" ~count:10 (make gen)
    (fun (phases, width, float_ops, n) ->
      let prefix = "qx" in
      let src =
        W.Gen.phase_family ~prefix ~phases ~width ~float_ops
        ^ Printf.sprintf
            "int main(int n) {\n\
            \  %s_seed(n);\n\
            \  int r;\n\
            \  for (r = 0; r < 3; r = r + 1) { %s_run(); }\n\
            \  return n;\n\
             }\n"
            prefix prefix
      in
      let m = compile src in
      let r, t =
        diff_n ~n
          (Printf.sprintf "qcheck p=%d w=%d f=%b n=%d" phases width float_ops
             n)
          m
      in
      check_global_equal "qcheck" (prefix ^ "_a") width r t;
      check_global_equal "qcheck" (prefix ^ "_b") width r t;
      true)

(* ------------------------------------------------------------------ *)
(* Adversarial scalars: NaN, signed zero, Int64.min_int, renorm edges  *)
(* ------------------------------------------------------------------ *)

(* The typed register files specialize comparisons, arithmetic and
   casts per operand shape, so the edge cases where IEEE or two's
   complement semantics get interesting — NaN through every fcmp
   predicate, -0.0 vs 0.0, Int64.min_int wrap-around, float->int casts
   of NaN/infinity — must agree bit-for-bit across Reference, untuned
   Threaded and every tuned variant (all 16 knob combinations include
   regalloc on and off). *)

let adversarial_floats =
  [
    Float.nan;
    Float.infinity;
    Float.neg_infinity;
    -0.0;
    0.0;
    1.0;
    -1.0;
    0.5;
    -2.5;
    Float.epsilon;
    Float.max_float;
    -.Float.max_float;
    Float.min_float;
    9.3e18 (* above Int64.max_int: fptosi saturates/wraps, must agree *);
    -9.3e18;
    4503599627370497.0 (* 2^52 + 1: float->int->float not identity *);
  ]

let adversarial_ints =
  [
    Int64.min_int;
    Int64.max_int;
    Int64.add Int64.min_int 1L;
    Int64.sub Int64.max_int 1L;
    -1L;
    0L;
    1L;
    0x7FFF_FFFFL (* I32 sign boundary *);
    0x8000_0000L;
    0xFFFF_FFFFL;
    0x1_0000_0000L;
    -2147483648L;
    -2147483649L;
  ]

(* Every fcmp predicate on (x, y), float arithmetic (including IEEE
   division: inf/NaN, never a fault), and fptosi of values that may be
   NaN or out of int range.  The result packs all comparison bits so a
   single-predicate divergence flips the return value. *)
let adversarial_fcmp_src =
  "int main(double x, double y) {\n\
  \  int r = 0;\n\
  \  if (x < y)  { r = r + 1; }\n\
  \  if (x <= y) { r = r + 2; }\n\
  \  if (x > y)  { r = r + 4; }\n\
  \  if (x >= y) { r = r + 8; }\n\
  \  if (x == y) { r = r + 16; }\n\
  \  if (x != y) { r = r + 32; }\n\
  \  double s = x + y;\n\
  \  double d = x - y;\n\
  \  double p = x * y;\n\
  \  double q = x / y;\n\
  \  if (p == p) { r = r + 64; }\n\
  \  if (q != q) { r = r + 128; }\n\
  \  int ci = s;\n\
  \  int cd = d;\n\
  \  return r + ci - (ci / 1000) * 1000 + cd - (cd / 1000) * 1000;\n\
   }\n"

(* Renorm boundaries: arithmetic around Int64.min_int/max_int and the
   I32 boundaries, int->float->int round trips, signed comparisons on
   un-normalized inputs. *)
let adversarial_int_src =
  "int main(int n) {\n\
  \  int a = n + 1;\n\
  \  int b = n - 1;\n\
  \  int c = n * 3;\n\
  \  int d = n / 5;\n\
  \  int e = n - (n / 7) * 7;\n\
  \  double f = n;\n\
  \  int g = f;\n\
  \  int s = 0;\n\
  \  if (n < a)  { s = s + 1; }\n\
  \  if (n <= b) { s = s + 2; }\n\
  \  if (n > c)  { s = s + 4; }\n\
  \  if (n >= d) { s = s + 8; }\n\
  \  if (n == e) { s = s + 16; }\n\
  \  if (n != g) { s = s + 32; }\n\
  \  if (f < 0.0) { s = s + 64; }\n\
  \  return a + b + c + d + e + g + s;\n\
   }\n"

let adversarial_fcmp_mod = lazy (compile adversarial_fcmp_src)
let adversarial_int_mod = lazy (compile adversarial_int_src)

let test_adversarial_scalars () =
  let fm = Lazy.force adversarial_fcmp_mod in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          ignore
            (diff_all_tunings
               ~args:[ Ir.Eval.VFloat x; Ir.Eval.VFloat y ]
               (Printf.sprintf "fcmp x=%h y=%h" x y)
               fm))
        adversarial_floats)
    adversarial_floats;
  let im = Lazy.force adversarial_int_mod in
  List.iter
    (fun n ->
      ignore
        (diff_all_tunings ~args:[ Ir.Eval.VInt n ]
           (Printf.sprintf "intedge n=%Ld" n)
           im))
    adversarial_ints

(* [check_fault_parity_tunings] over arbitrary entry args, so the
   faulting input can be an adversarial float. *)
let fault_msg_args ?fuel ~engine ?tuning ~args m =
  try
    ignore (Vm.Machine.run ?fuel ~engine ?tuning m ~entry:"main" ~args);
    None
  with Vm.Machine.Fault msg -> Some msg

let check_fault_parity_tunings_args ?fuel what ~args m =
  let r = fault_msg_args ?fuel ~engine:Vm.Machine.Reference ~args m in
  Alcotest.(check bool) (what ^ ": faulted") true (r <> None);
  List.iter
    (fun tuning ->
      let t =
        fault_msg_args ?fuel ~engine:Vm.Machine.Threaded ~tuning ~args m
      in
      Alcotest.(check (option string))
        (what ^ " [" ^ tuning_tag tuning ^ "]")
        r t)
    all_tunings

let test_adversarial_fault_parity () =
  (* A NaN/huge float cast to an array index: NaN casts to 0 (in
     bounds, engines must agree on the value), while an out-of-range
     double must produce the same wild-index fault message under every
     tuning, regalloc included. *)
  let m =
    compile
      "int a[8];\n\
       int main(double x) { int i = x; a[2] = 9; return a[i] + 1; }\n"
  in
  ignore
    (diff_all_tunings ~args:[ Ir.Eval.VFloat Float.nan ] "nan index" m);
  check_fault_parity_tunings_args "huge index"
    ~args:[ Ir.Eval.VFloat 1e18 ]
    m;
  check_fault_parity_tunings_args "negative index"
    ~args:[ Ir.Eval.VFloat (-3.0) ]
    m;
  (* -inf casts to Int64.min_int, whose low 63 bits make the address
     wrap back in bounds: no fault, but every engine must wrap the same
     way. *)
  ignore
    (diff_all_tunings
       ~args:[ Ir.Eval.VFloat Float.neg_infinity ]
       "neg-inf index" m)

let qcheck_adversarial_floats =
  let open QCheck in
  let special = Gen.oneofl adversarial_floats in
  let gen = Gen.(pair (oneof [ special; float ]) (oneof [ special; float ])) in
  Test.make ~name:"adversarial float pairs: all tunings agree" ~count:40
    (make gen) (fun (x, y) ->
      ignore
        (diff_all_tunings
           ~args:[ Ir.Eval.VFloat x; Ir.Eval.VFloat y ]
           (Printf.sprintf "qfcmp x=%h y=%h" x y)
           (Lazy.force adversarial_fcmp_mod));
      true)

let qcheck_adversarial_ints =
  let open QCheck in
  let special = Gen.oneofl adversarial_ints in
  let gen = Gen.(oneof [ special; map Int64.of_int int ]) in
  Test.make ~name:"adversarial ints: all tunings agree" ~count:40 (make gen)
    (fun n ->
      ignore
        (diff_all_tunings ~args:[ Ir.Eval.VInt n ]
           (Printf.sprintf "qint n=%Ld" n)
           (Lazy.force adversarial_int_mod));
      true)

(* ------------------------------------------------------------------ *)
(* Allocation probe: typed register files must not allocate more       *)
(* ------------------------------------------------------------------ *)

(* The whole point of the typed slot arrays is that hot paths stop
   boxing scalars.  Measure minor-heap words per executed dynamic
   instruction on a real registry workload, tuned with regalloc on vs
   off; the unboxed engine must not allocate more.  Gc.minor_words is
   an exact allocation counter, not a timing, so this is deterministic
   enough for CI. *)
let test_regalloc_allocation_probe () =
  let w = Option.get (W.Registry.find "sor") in
  let compiled = W.Workload.compile w in
  let per_instr tuning =
    (* Warm-up run: module-level lazies and shared caches settle. *)
    ignore (W.Workload.run_all ~engine:Vm.Machine.Threaded ~tuning compiled w);
    let before = Gc.minor_words () in
    let outs =
      W.Workload.run_all ~engine:Vm.Machine.Threaded ~tuning compiled w
    in
    let after = Gc.minor_words () in
    let instrs =
      List.fold_left
        (fun acc (_, (o : Vm.Machine.outcome)) ->
          Int64.add acc o.profile.Vm.Profile.executed_instrs)
        0L outs
    in
    (after -. before) /. Int64.to_float instrs
  in
  let off = per_instr { Vm.Machine.default_tuning with regalloc = false } in
  let on = per_instr Vm.Machine.default_tuning in
  Alcotest.(check bool)
    (Printf.sprintf
       "regalloc allocates no more per dynamic instr (on=%.3f off=%.3f \
        words/instr)"
       on off)
    true
    (on <= off +. 0.01)

(* ------------------------------------------------------------------ *)
(* Engine golden: full Experiment reports are engine-invariant         *)
(* ------------------------------------------------------------------ *)

(* Same projection idea as test_pipeline: the report minus measured
   wall clocks and the stage-record log. *)
type app_projection = {
  p_app : string;
  p_selection : string list;
  p_candidates : (string * float * float * int * float) list;
  p_dropped : int;
  p_const : float;
  p_map : float;
  p_par : float;
  p_sum : float;
  p_attempts_total : int;
  p_failed : int;
  p_degraded : int;
  p_ratio : float;
  p_ratio_max : float;
  p_break_even : An.Breakeven.result;
}

let project (r : Core.Experiment.app_result) : app_projection =
  let rep = r.Core.Experiment.report in
  let signature (s : Ise.Select.scored) =
    s.Ise.Select.candidate.Ise.Candidate.signature
  in
  {
    p_app = r.Core.Experiment.workload.W.Workload.name;
    p_selection = List.map signature rep.Core.Asip_sp.selection;
    p_candidates =
      List.map
        (fun (c : Core.Asip_sp.candidate_result) ->
          ( signature c.Core.Asip_sp.scored,
            c.Core.Asip_sp.c2v_seconds,
            c.Core.Asip_sp.total_seconds,
            c.Core.Asip_sp.attempts,
            c.Core.Asip_sp.wasted_seconds ))
        rep.Core.Asip_sp.candidates;
    p_dropped = List.length rep.Core.Asip_sp.dropped;
    p_const = rep.Core.Asip_sp.const_seconds;
    p_map = rep.Core.Asip_sp.map_seconds;
    p_par = rep.Core.Asip_sp.par_seconds;
    p_sum = rep.Core.Asip_sp.sum_seconds;
    p_attempts_total = rep.Core.Asip_sp.total_attempts;
    p_failed = rep.Core.Asip_sp.failed_attempts;
    p_degraded = rep.Core.Asip_sp.degraded;
    p_ratio = rep.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio;
    p_ratio_max = rep.Core.Asip_sp.asip_ratio_max.Ise.Speedup.ratio;
    p_break_even = r.Core.Experiment.break_even;
  }

let golden_apps = [ "sor"; "fft" ]

let eval_apps ~spec db =
  List.map
    (fun n ->
      Core.Experiment.evaluate ~spec db (Option.get (W.Registry.find n)))
    golden_apps

let check_reports_identical what a b =
  List.iter2
    (fun x y ->
      let x = project x and y = project y in
      Alcotest.(check bool) (x.p_app ^ " " ^ what) true (x = y))
    a b

let with_engine engine spec = Core.Spec.with_vm_engine engine spec

let fault_seed =
  match Sys.getenv_opt "JITISE_FAULT_SEED" with
  | Some s -> int_of_string s
  | None -> 20110516

let test_golden_engine_serial () =
  let db = Pp.Database.create () in
  let threaded =
    eval_apps ~spec:(with_engine Vm.Machine.Threaded Core.Spec.default) db
  in
  let reference =
    eval_apps ~spec:(with_engine Vm.Machine.Reference Core.Spec.default) db
  in
  check_reports_identical "report engine-invariant (serial)" threaded
    reference

let test_golden_engine_jobs4 () =
  let db = Pp.Database.create () in
  let spec = Core.Spec.with_jobs 4 Core.Spec.default in
  let threaded = eval_apps ~spec:(with_engine Vm.Machine.Threaded spec) db in
  let reference = eval_apps ~spec:(with_engine Vm.Machine.Reference spec) db in
  check_reports_identical "report engine-invariant (jobs:4)" threaded
    reference

let test_golden_engine_faults () =
  let db = Pp.Database.create () in
  let spec =
    Core.Spec.default
    |> Core.Spec.with_faults (Cad.Faults.defaults ~seed:fault_seed)
    |> Core.Spec.with_retry (U.Retry.with_max_attempts 3 U.Retry.default)
  in
  let threaded = eval_apps ~spec:(with_engine Vm.Machine.Threaded spec) db in
  let reference = eval_apps ~spec:(with_engine Vm.Machine.Reference spec) db in
  check_reports_identical "report engine-invariant (faults on)" threaded
    reference

let test_golden_engine_digests () =
  (* Stage digests exclude the engine knob, so a store warmed under one
     engine serves the other: re-evaluating under Reference against a
     Threaded-warmed store recomputes NO profile stage. *)
  let db = Pp.Database.create () in
  let store = U.Artifact.create () in
  let warm_spec =
    Core.Spec.default
    |> Core.Spec.with_stage_cache store
    |> with_engine Vm.Machine.Threaded
  in
  let warm = eval_apps ~spec:warm_spec db in
  let cold_spec =
    Core.Spec.default
    |> Core.Spec.with_stage_cache store
    |> with_engine Vm.Machine.Reference
  in
  let again = eval_apps ~spec:cold_spec db in
  check_reports_identical "warm-store report engine-invariant" warm again;
  List.iter
    (fun r ->
      let records = r.Core.Experiment.report.Core.Asip_sp.stage_records in
      List.iter
        (fun (s : Core.Pipeline.summary) ->
          if s.Core.Pipeline.sum_stage = "profile" then
            Alcotest.(check int)
              ((project r).p_app
             ^ ": profile served from the other engine's store")
              0 s.Core.Pipeline.sum_computed)
        (Core.Pipeline.summarize records))
    again

let () =
  Alcotest.run "vm"
    [
      ( "memory",
        [
          Alcotest.test_case "alloc/store/load" `Quick test_memory_alloc_store_load;
          Alcotest.test_case "bad address" `Quick test_memory_bad_address;
          Alcotest.test_case "frames" `Quick test_memory_frames;
          Alcotest.test_case "globals" `Quick test_memory_globals;
          Alcotest.test_case "limit" `Quick test_memory_limit;
        ] );
      ( "profile",
        [
          Alcotest.test_case "counts" `Quick test_profile_counts;
          Alcotest.test_case "merge" `Quick test_profile_merge;
          Alcotest.test_case "block costs" `Quick test_profile_block_costs_ordering;
        ] );
      ( "machine",
        [
          Alcotest.test_case "phi swap" `Quick test_machine_phi_swap;
          Alcotest.test_case "faults" `Quick test_machine_faults;
          Alcotest.test_case "missing entry" `Quick test_machine_missing_entry;
          Alcotest.test_case "fuel" `Quick test_machine_fuel;
          Alcotest.test_case "clocks" `Quick test_machine_clocks;
          Alcotest.test_case "hot loop amortizes" `Quick test_machine_hot_loop_amortizes;
          Alcotest.test_case "deterministic" `Quick test_machine_deterministic;
          Alcotest.test_case "ci call" `Quick test_machine_ci_call;
        ] );
      ( "jit model",
        [
          Alcotest.test_case "translation" `Quick test_jit_model_translation;
          Alcotest.test_case "block cycles" `Quick test_jit_model_block_cycles;
          Alcotest.test_case "dispatch accounting" `Quick
            test_dispatch_accounting;
          Alcotest.test_case "clock" `Quick test_seconds_of_cycles;
        ] );
      ( "engine differential",
        [
          Alcotest.test_case "mode family" `Quick test_diff_mode_family;
          Alcotest.test_case "phase family" `Quick test_diff_phase_family;
          Alcotest.test_case "intrinsics" `Quick test_diff_intrinsics;
          Alcotest.test_case "recursion" `Quick test_diff_recursion;
          Alcotest.test_case "switch first-match" `Quick test_diff_switch;
          Alcotest.test_case "ci call" `Quick test_diff_ci_call;
          Alcotest.test_case "fault parity" `Quick test_diff_fault_parity;
          Alcotest.test_case "registry workloads" `Slow
            test_diff_registry_workloads;
          QCheck_alcotest.to_alcotest qcheck_diff_generated;
        ] );
      ( "tuning differential",
        [
          Alcotest.test_case "self loop" `Quick test_tuning_self_loop;
          Alcotest.test_case "block cycle" `Quick test_tuning_block_cycle;
          Alcotest.test_case "switch heavy" `Quick test_tuning_switch_heavy;
          Alcotest.test_case "fuel mid-chain" `Quick
            test_tuning_fuel_mid_chain;
          Alcotest.test_case "ci call" `Quick test_tuning_ci_call;
          Alcotest.test_case "load-sink faults" `Quick
            test_tuning_load_sink_faults;
          Alcotest.test_case "fusion stats" `Quick test_fusion_stats;
        ] );
      ( "adversarial scalars",
        [
          Alcotest.test_case "fcmp/cast/renorm sweep" `Quick
            test_adversarial_scalars;
          Alcotest.test_case "fault parity" `Quick
            test_adversarial_fault_parity;
          QCheck_alcotest.to_alcotest qcheck_adversarial_floats;
          QCheck_alcotest.to_alcotest qcheck_adversarial_ints;
          Alcotest.test_case "allocation probe" `Slow
            test_regalloc_allocation_probe;
        ] );
      ( "engine golden",
        [
          Alcotest.test_case "serial" `Slow test_golden_engine_serial;
          Alcotest.test_case "jobs:4" `Slow test_golden_engine_jobs4;
          Alcotest.test_case "faults on" `Slow test_golden_engine_faults;
          Alcotest.test_case "digest invariance" `Slow
            test_golden_engine_digests;
        ] );
    ]
