(* Tests for Jitise_util: PRNG, statistics, durations, text tables. *)

module U = Jitise_util

let check_float = Alcotest.(check (float 1e-9))
let check_floatish msg = Alcotest.(check (float 1e-6)) msg

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = U.Prng.create ~seed:42 and b = U.Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (U.Prng.int64 a) (U.Prng.int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = U.Prng.create ~seed:1 and b = U.Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false
    (U.Prng.int64 a = U.Prng.int64 b)

let test_prng_copy () =
  let a = U.Prng.create ~seed:7 in
  ignore (U.Prng.int64 a);
  let b = U.Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (U.Prng.int64 a)
    (U.Prng.int64 b)

let test_prng_split_independent () =
  let a = U.Prng.create ~seed:7 in
  let b = U.Prng.split a in
  Alcotest.(check bool) "split differs from parent continuation" false
    (U.Prng.int64 a = U.Prng.int64 b)

let test_prng_int_bounds () =
  let t = U.Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = U.Prng.int t 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_prng_int_invalid () =
  let t = U.Prng.create ~seed:3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (U.Prng.int t 0))

let test_prng_float_bounds () =
  let t = U.Prng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = U.Prng.float t 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of bounds: %f" v
  done

let test_prng_gaussian_moments () =
  let t = U.Prng.create ~seed:11 in
  let n = 20_000 in
  let samples = List.init n (fun _ -> U.Prng.gaussian t ~mu:3.0 ~sigma:2.0) in
  let mean = U.Stats.mean samples in
  let sd = U.Stats.stdev samples in
  Alcotest.(check bool) "mean near 3" true (abs_float (mean -. 3.0) < 0.1);
  Alcotest.(check bool) "stdev near 2" true (abs_float (sd -. 2.0) < 0.1)

let test_prng_pick () =
  let t = U.Prng.create ~seed:9 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    let v = U.Prng.pick t arr in
    Alcotest.(check bool) "picked element" true (Array.mem v arr)
  done

let test_prng_hash_string_stable () =
  Alcotest.(check int) "stable hash" (U.Prng.hash_string "abc")
    (U.Prng.hash_string "abc");
  Alcotest.(check bool) "different strings differ" true
    (U.Prng.hash_string "abc" <> U.Prng.hash_string "abd");
  Alcotest.(check bool) "non-negative" true (U.Prng.hash_string "xyz" >= 0)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      let t = U.Prng.create ~seed in
      U.Prng.shuffle t arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_mean () =
  check_float "empty" 0.0 (U.Stats.mean []);
  check_float "single" 5.0 (U.Stats.mean [ 5.0 ]);
  check_float "several" 2.0 (U.Stats.mean [ 1.0; 2.0; 3.0 ])

let test_stats_stdev () =
  check_float "too few" 0.0 (U.Stats.stdev [ 1.0 ]);
  check_floatish "known sample" 1.0 (U.Stats.stdev [ 1.0; 2.0; 3.0 ])

let test_stats_geomean () =
  check_floatish "geometric" 2.0 (U.Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (U.Stats.geomean [ 1.0; 0.0 ]))

let test_stats_median () =
  check_float "odd" 2.0 (U.Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "even" 2.5 (U.Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50.0 (U.Stats.percentile 50.0 xs);
  check_float "p100" 100.0 (U.Stats.percentile 100.0 xs);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (U.Stats.percentile 101.0 xs))

let test_stats_minmax_sum () =
  check_float "min" 1.0 (U.Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (U.Stats.maximum [ 3.0; 1.0; 2.0 ]);
  check_float "sum" 6.0 (U.Stats.sum [ 3.0; 1.0; 2.0 ])

let test_stats_weighted_mean () =
  check_float "weights" 2.75 (U.Stats.weighted_mean [ (1.0, 2.0); (3.0, 3.0) ]);
  check_float "zero weight" 0.0 (U.Stats.weighted_mean [ (0.0, 9.0) ])

let test_stats_summarize () =
  let s = U.Stats.summarize [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "n" 3 s.U.Stats.n;
  check_float "mean" 2.0 s.U.Stats.mean;
  check_float "min" 1.0 s.U.Stats.min;
  check_float "max" 3.0 s.U.Stats.max;
  let empty = U.Stats.summarize [] in
  Alcotest.(check int) "empty n" 0 empty.U.Stats.n

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within min/max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = U.Stats.mean xs in
      m >= U.Stats.minimum xs -. 1e-9 && m <= U.Stats.maximum xs +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Duration                                                            *)
(* ------------------------------------------------------------------ *)

let test_duration_formats () =
  Alcotest.(check string) "min:sec" "56:22" (U.Duration.to_min_sec 3382.0);
  Alcotest.(check string) "hms" "01:59:55" (U.Duration.to_hms 7195.0);
  Alcotest.(check string) "dhms" "206:22:15:50"
    (U.Duration.to_dhms ((206.0 *. 86400.0) +. (22.0 *. 3600.0) +. (15.0 *. 60.0) +. 50.0));
  Alcotest.(check string) "ms" "1.44" (U.Duration.to_ms_string 0.00144)

let test_duration_rounding () =
  Alcotest.(check string) "rounds up" "1:00" (U.Duration.to_min_sec 59.7)

let test_duration_negative () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Duration.to_min_sec: negative duration") (fun () ->
      ignore (U.Duration.to_min_sec (-1.0)))

let test_duration_parse () =
  check_float "of_min_sec" 3382.0 (U.Duration.of_min_sec "56:22");
  check_float "of_hms" 7195.0 (U.Duration.of_hms "01:59:55");
  check_float "of_dhms" 93307.0 (U.Duration.of_dhms "1:01:55:07");
  Alcotest.(check bool) "malformed raises" true
    (try
       ignore (U.Duration.of_hms "nope");
       false
     with Invalid_argument _ -> true)

let test_duration_constructors () =
  check_float "minutes" 90.0 (U.Duration.minutes 1.5);
  check_float "hours" 5400.0 (U.Duration.hours 1.5);
  check_float "days" 86400.0 (U.Duration.days 1.0);
  check_float "seconds" 3.0 (U.Duration.seconds 3.0)

let prop_duration_roundtrip =
  QCheck.Test.make ~name:"min:sec round trip" ~count:500
    QCheck.(int_bound 10_000_000)
    (fun secs ->
      let s = float_of_int secs in
      U.Duration.of_min_sec (U.Duration.to_min_sec s) = s)

let prop_duration_dhms_roundtrip =
  QCheck.Test.make ~name:"d:h:m:s round trip" ~count:500
    QCheck.(int_bound 100_000_000)
    (fun secs ->
      let s = float_of_int secs in
      U.Duration.of_dhms (U.Duration.to_dhms s) = s)

(* ------------------------------------------------------------------ *)
(* Texttable                                                           *)
(* ------------------------------------------------------------------ *)

let test_texttable_render () =
  let t = U.Texttable.create ~headers:[ "a"; "bb" ] in
  U.Texttable.add_row t [ "x"; "1" ];
  U.Texttable.add_separator t;
  U.Texttable.add_row t [ "longer"; "22" ];
  let s = U.Texttable.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  (* every line has the same width *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_texttable_mismatch () =
  let t = U.Texttable.create ~headers:[ "a"; "b" ] in
  Alcotest.(check bool) "row arity enforced" true
    (try
       U.Texttable.add_row t [ "only one" ];
       false
     with Invalid_argument _ -> true)

let test_texttable_alignment () =
  let t = U.Texttable.create ~headers:[ "name"; "val" ] in
  U.Texttable.set_aligns t [ U.Texttable.Left; U.Texttable.Right ];
  U.Texttable.add_row t [ "a"; "1" ];
  let s = U.Texttable.render t in
  Alcotest.(check bool) "right aligned number" true
    (let lines = String.split_on_char '\n' s in
     match List.filteri (fun i _ -> i = 2) lines with
     | [ row ] -> String.length row > 0 && row.[String.length row - 1] = '1'
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_ordering () =
  (* the parallel map must return results in input order, whatever the
     scheduling *)
  let xs = List.init 100 (fun i -> i) in
  let f i = (i * i) + 1 in
  Alcotest.(check (list int)) "jobs:4 equals List.map" (List.map f xs)
    (U.Pool.map ~jobs:4 f xs)

let test_pool_jobs_one_degenerate () =
  let xs = [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "jobs:1 inline" (List.map succ xs)
    (U.Pool.map ~jobs:1 succ xs);
  Alcotest.(check (list int)) "empty list" [] (U.Pool.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (U.Pool.map ~jobs:4 succ [ 1 ])

let test_pool_exception_propagation () =
  (* any failure surfaces; with several failures the lowest-indexed one
     wins, so parallel failures are deterministic *)
  let f i = if i = 3 || i = 7 then failwith (Printf.sprintf "boom %d" i) else i in
  Alcotest.check_raises "lowest-indexed failure" (Failure "boom 3") (fun () ->
      ignore (U.Pool.map ~jobs:4 f (List.init 10 (fun i -> i))))

let test_pool_all_elements_visited () =
  let counter = Atomic.make 0 in
  U.Pool.iter ~jobs:4 (fun _ -> Atomic.incr counter) (List.init 50 (fun i -> i));
  Alcotest.(check int) "every element visited once" 50 (Atomic.get counter)

let test_pool_default_jobs () =
  Alcotest.(check bool) "default_jobs >= 1" true (U.Pool.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_span_records () =
  let t = U.Trace.create () in
  let r = U.Trace.span (Some t) ~cat:"test" "work" (fun () -> 42) in
  Alcotest.(check int) "span is transparent" 42 r;
  match U.Trace.events t with
  | [ e ] ->
      Alcotest.(check string) "name" "work" e.U.Trace.name;
      Alcotest.(check string) "cat" "test" e.U.Trace.cat;
      Alcotest.(check bool) "non-negative duration" true (e.U.Trace.dur >= 0.0)
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es)

let test_trace_span_none_is_free () =
  Alcotest.(check int) "no tracer, plain call" 7
    (U.Trace.span None "ignored" (fun () -> 7))

let test_trace_span_records_on_raise () =
  let t = U.Trace.create () in
  (try U.Trace.span (Some t) "failing" (fun () -> failwith "x")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (U.Trace.events t))

let test_trace_synthetic_events_sorted () =
  let t = U.Trace.create () in
  U.Trace.add t ~tid:9 ~name:"late" ~ts:2.0 ~dur:0.5 ();
  U.Trace.add t ~tid:9 ~name:"early" ~ts:1.0 ~dur:0.25 ();
  match U.Trace.events t with
  | [ a; b ] ->
      Alcotest.(check string) "oldest first" "early" a.U.Trace.name;
      Alcotest.(check string) "then the later one" "late" b.U.Trace.name;
      Alcotest.(check int) "explicit tid kept" 9 a.U.Trace.tid
  | es -> Alcotest.failf "expected 2 events, got %d" (List.length es)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_trace_json_export () =
  let t = U.Trace.create () in
  U.Trace.add t ~cat:"cad-sim" ~args:[ ("app", "sor") ] ~tid:1 ~name:"cad:\"map\""
    ~ts:1.0 ~dur:2.0 ();
  let json = U.Trace.to_json t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains ~needle json))
    [
      "\"traceEvents\"";
      "\"ph\":\"X\"";
      "\"cat\":\"cad-sim\"";
      "\"name\":\"cad:\\\"map\\\"\"";  (* quotes escaped *)
      "\"ts\":1000000.0";              (* seconds -> microseconds *)
      "\"dur\":2000000.0";
      "\"args\":{\"app\":\"sor\"}";
    ]

let test_trace_write () =
  let t = U.Trace.create () in
  U.Trace.span (Some t) "stage" (fun () -> ());
  let path = Filename.temp_file "jitise-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      U.Trace.write t path;
      let written = In_channel.with_open_text path In_channel.input_all in
      Alcotest.(check string) "file holds the export" (U.Trace.to_json t) written;
      Alcotest.(check bool) "looks like a chrome trace" true
        (contains ~needle:"\"traceEvents\"" written))

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)
(* ------------------------------------------------------------------ *)

let test_retry_backoff_exponential () =
  (* With jitter off the schedule is exactly base * mult^(attempt-1). *)
  let p = { U.Retry.default with U.Retry.jitter = 0.0 } in
  let b attempt = U.Retry.backoff_seconds p ~key:"ci_x" ~attempt in
  Alcotest.(check (float 1e-9)) "attempt 1" 30.0 (b 1);
  Alcotest.(check (float 1e-9)) "attempt 2" 60.0 (b 2);
  Alcotest.(check (float 1e-9)) "attempt 3" 120.0 (b 3)

let test_retry_backoff_deterministic_jitter () =
  let p = U.Retry.default in
  let b key attempt = U.Retry.backoff_seconds p ~key ~attempt in
  Alcotest.(check (float 0.0)) "same key/attempt, same backoff"
    (b "ci_a" 2) (b "ci_a" 2);
  (* jittered value stays within [base, base * (1 + jitter)) *)
  List.iter
    (fun attempt ->
      let base = 30.0 *. (2.0 ** float_of_int (attempt - 1)) in
      let v = b "ci_a" attempt in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in jitter band" attempt)
        true
        (v >= base && v < base *. 1.25))
    [ 1; 2; 3; 4 ];
  (* different keys decorrelate (desynchronized retry storm) *)
  Alcotest.(check bool) "keys decorrelate" true (b "ci_a" 1 <> b "ci_b" 1)

let test_retry_validate () =
  let invalid name mk =
    Alcotest.(check bool) name true
      (try
         U.Retry.validate (mk ());
         false
       with Invalid_argument _ -> true)
  in
  U.Retry.validate U.Retry.default;
  (* the builders validate eagerly too *)
  invalid "zero attempts" (fun () ->
      U.Retry.with_max_attempts 0 U.Retry.default);
  invalid "negative backoff" (fun () ->
      { U.Retry.default with U.Retry.backoff_seconds = -1.0 });
  invalid "jitter >= 1" (fun () ->
      { U.Retry.default with U.Retry.jitter = 1.0 });
  invalid "non-positive deadline" (fun () ->
      U.Retry.with_specialization_deadline (Some 0.0) U.Retry.default)

let test_retry_budget () =
  let b = U.Retry.budget (Some 100.0) in
  Alcotest.(check bool) "fresh budget not exhausted" false (U.Retry.exhausted b);
  U.Retry.spend b 60.0;
  Alcotest.(check (option (float 1e-9))) "remaining tracked" (Some 40.0)
    (U.Retry.remaining b);
  U.Retry.spend b 75.0;
  Alcotest.(check (option (float 1e-9))) "clamps at zero" (Some 0.0)
    (U.Retry.remaining b);
  Alcotest.(check bool) "exhausted after overspend" true (U.Retry.exhausted b);
  let unbounded = U.Retry.budget None in
  U.Retry.spend unbounded 1e12;
  Alcotest.(check bool) "unbounded never exhausts" false
    (U.Retry.exhausted unbounded);
  Alcotest.(check (option (float 0.0))) "unbounded has no remaining" None
    (U.Retry.remaining unbounded)

(* ------------------------------------------------------------------ *)
(* Digest                                                              *)
(* ------------------------------------------------------------------ *)

let test_digest_pinned () =
  (* Pins the algorithm (FNV-1a/64, tagged + length-prefixed): a change
     to the encoding silently invalidates every stored artifact, so it
     must show up here first. *)
  Alcotest.(check string) "of_string" "f748aa8bb2994bea"
    (U.Digest.to_hex (U.Digest.of_string "jitise"));
  let c = U.Digest.create () in
  U.Digest.add_int c 42;
  U.Digest.add_string c "x";
  Alcotest.(check string) "int + string" "662becd93e401b9a"
    (U.Digest.to_hex (U.Digest.finish c))

let test_digest_stable_across_runs () =
  let build () =
    let c = U.Digest.create () in
    U.Digest.add_string c "module";
    U.Digest.add_int c 7;
    U.Digest.add_int64 c 123456789012345L;
    U.Digest.add_float c 3.25;
    U.Digest.add_bool c true;
    U.Digest.add_option c (U.Digest.add_int c) (Some 9);
    U.Digest.add_option c (U.Digest.add_int c) None;
    U.Digest.add_list c (U.Digest.add_string c) [ "a"; "bc" ];
    U.Digest.finish c
  in
  Alcotest.(check bool) "identical inputs, identical digest" true
    (U.Digest.equal (build ()) (build ()));
  Alcotest.(check string) "hex is 16 chars" "16"
    (string_of_int (String.length (U.Digest.to_hex (build ()))))

let test_digest_distinguishes () =
  let d f =
    let c = U.Digest.create () in
    f c;
    U.Digest.finish c
  in
  let ne msg a b =
    Alcotest.(check bool) msg false (U.Digest.equal a b)
  in
  ne "field boundaries"
    (d (fun c ->
         U.Digest.add_string c "ab";
         U.Digest.add_string c ""))
    (d (fun c ->
         U.Digest.add_string c "a";
         U.Digest.add_string c "b"));
  ne "list structure"
    (d (fun c -> U.Digest.add_list c (U.Digest.add_string c) [ "ab" ]))
    (d (fun c -> U.Digest.add_list c (U.Digest.add_string c) [ "a"; "b" ]));
  ne "None vs Some"
    (d (fun c -> U.Digest.add_option c (U.Digest.add_int c) None))
    (d (fun c -> U.Digest.add_option c (U.Digest.add_int c) (Some 0)));
  ne "float sign of zero"
    (d (fun c -> U.Digest.add_float c 0.0))
    (d (fun c -> U.Digest.add_float c (-0.0)));
  ne "int vs int64 tags"
    (d (fun c -> U.Digest.add_int c 5))
    (d (fun c -> U.Digest.add_int64 c 5L));
  ne "composition"
    (d (fun c -> U.Digest.add_digest c (U.Digest.of_string "a")))
    (d (fun c -> U.Digest.add_string c "a"))

let test_digest_finish_nondestructive () =
  let c = U.Digest.create () in
  U.Digest.add_string c "prefix";
  let snap = U.Digest.finish c in
  U.Digest.add_int c 1;
  let extended = U.Digest.finish c in
  Alcotest.(check bool) "snapshot unchanged by extension" true
    (U.Digest.equal snap (U.Digest.of_string "prefix"));
  Alcotest.(check bool) "extension differs" false (U.Digest.equal snap extended)

(* ------------------------------------------------------------------ *)
(* Artifact store                                                      *)
(* ------------------------------------------------------------------ *)

let akey_int : int U.Artifact.key = U.Artifact.key "test-int"
let akey_str : string U.Artifact.key = U.Artifact.key "test-str"

let test_artifact_put_find () =
  let t = U.Artifact.create () in
  let d = U.Digest.of_string "d1" in
  Alcotest.(check bool) "miss before put" true
    (U.Artifact.find t akey_int ~app:"a" ~digest:d = None);
  U.Artifact.put t akey_int ~app:"a" ~digest:d 42;
  (match U.Artifact.find t akey_int ~app:"a" ~digest:d with
  | Some (42, U.Artifact.Local) -> ()
  | Some (v, h) ->
      Alcotest.failf "wrong hit: %d / %s" v (U.Artifact.hit_name h)
  | None -> Alcotest.fail "expected a hit");
  (* Same digest under a different stage key stays independent. *)
  Alcotest.(check bool) "keys are independent slots" true
    (U.Artifact.find t akey_str ~app:"a" ~digest:d = None)

let test_artifact_hit_attribution () =
  let t = U.Artifact.create () in
  let d = U.Digest.of_string "shared-digest" in
  U.Artifact.put t akey_str ~app:"fft" ~digest:d "payload";
  (match U.Artifact.find t akey_str ~app:"fft" ~digest:d with
  | Some (_, U.Artifact.Local) -> ()
  | _ -> Alcotest.fail "builder app must get a Local hit");
  (match U.Artifact.find t akey_str ~app:"sor" ~digest:d with
  | Some ("payload", U.Artifact.Shared) -> ()
  | _ -> Alcotest.fail "other app must get a Shared hit");
  let s = U.Artifact.stats t in
  Alcotest.(check int) "one entry" 1 s.U.Artifact.total_entries;
  Alcotest.(check int) "one computed" 1 s.U.Artifact.total_computed;
  Alcotest.(check int) "one local hit" 1 s.U.Artifact.total_local_hits;
  Alcotest.(check int) "one shared hit" 1 s.U.Artifact.total_shared_hits

let test_artifact_first_put_wins () =
  let t = U.Artifact.create () in
  let d = U.Digest.of_string "dup" in
  U.Artifact.put t akey_int ~app:"a" ~digest:d 1;
  U.Artifact.put t akey_int ~app:"b" ~digest:d 2;
  (match U.Artifact.find t akey_int ~app:"c" ~digest:d with
  | Some (1, U.Artifact.Shared) -> ()
  | _ -> Alcotest.fail "first writer's value must survive");
  let s = U.Artifact.stats t in
  Alcotest.(check int) "duplicate put still counted as computed" 2
    s.U.Artifact.total_computed;
  Alcotest.(check int) "but only one entry stored" 1 s.U.Artifact.total_entries

let test_artifact_stage_stats () =
  let t = U.Artifact.create () in
  let d1 = U.Digest.of_string "1" and d2 = U.Digest.of_string "2" in
  U.Artifact.put t akey_int ~app:"a" ~digest:d1 1;
  U.Artifact.put t akey_int ~app:"a" ~digest:d2 2;
  U.Artifact.put t akey_str ~app:"a" ~digest:d1 "s";
  ignore (U.Artifact.find t akey_int ~app:"a" ~digest:d1);
  ignore (U.Artifact.find t akey_str ~app:"b" ~digest:d1);
  ignore (U.Artifact.find t akey_str ~app:"b" ~digest:d2) (* miss *);
  let s = U.Artifact.stats t in
  let by name =
    List.find (fun st -> st.U.Artifact.stage = name) s.U.Artifact.by_stage
  in
  Alcotest.(check int) "int entries" 2 (by "test-int").U.Artifact.entries;
  Alcotest.(check int) "int local" 1 (by "test-int").U.Artifact.local_hits;
  Alcotest.(check int) "str shared" 1 (by "test-str").U.Artifact.shared_hits;
  Alcotest.(check bool) "stats render" true
    (String.length (Format.asprintf "%a" U.Artifact.pp_stats s) > 0);
  (* Stage list is sorted by name. *)
  Alcotest.(check (list string)) "sorted stages" [ "test-int"; "test-str" ]
    (List.map (fun st -> st.U.Artifact.stage) s.U.Artifact.by_stage)

let test_artifact_parallel_consistency () =
  (* Many domains hammering one (key, digest): every reader must
     observe the first-stored value, whatever the interleaving. *)
  let t = U.Artifact.create () in
  let d = U.Digest.of_string "contended" in
  let results =
    U.Pool.map ~jobs:4
      (fun i ->
        match U.Artifact.find t akey_int ~app:"a" ~digest:d with
        | Some (v, _) -> v
        | None ->
            U.Artifact.put t akey_int ~app:"a" ~digest:d 7;
            ignore i;
            7)
      (List.init 64 Fun.id)
  in
  Alcotest.(check bool) "all observe the stored value" true
    (List.for_all (fun v -> v = 7) results)

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

exception Boom

let test_sup_success_passthrough () =
  let sup = U.Supervisor.create () in
  let v = U.Supervisor.supervise sup ~site:"s" (fun ~attempt ~stall:_ -> attempt * 10) in
  Alcotest.(check int) "first attempt's value" 10 v;
  let st = U.Supervisor.stats sup in
  Alcotest.(check int) "one execution" 1 st.U.Supervisor.sup_executions;
  Alcotest.(check int) "no retries" 0 st.U.Supervisor.sup_retries;
  Alcotest.(check int) "no failures" 0 st.U.Supervisor.sup_failures

let test_sup_transient_retry () =
  let sup = U.Supervisor.create () in
  let m = U.Supervisor.meter () in
  let v =
    U.Supervisor.supervise sup ~site:"s" ~transient:(( = ) Boom) ~meter:m
      (fun ~attempt ~stall:_ -> if attempt < 3 then raise Boom else attempt)
  in
  Alcotest.(check int) "succeeded on the third attempt" 3 v;
  let st = U.Supervisor.stats sup in
  Alcotest.(check int) "two retries" 2 st.U.Supervisor.sup_retries;
  Alcotest.(check bool) "backoffs were billed on the meter" true
    (U.Supervisor.spent m > 0.0)

let test_sup_exhaustion () =
  let sup = U.Supervisor.create () in
  match
    U.Supervisor.supervise sup ~site:"s" ~transient:(( = ) Boom)
      (fun ~attempt:_ ~stall:_ -> raise Boom)
  with
  | (_ : unit) -> Alcotest.fail "expected Stage_failed"
  | exception U.Supervisor.Stage_failed f ->
      Alcotest.(check int) "all attempts run" 3 f.U.Supervisor.f_attempts;
      (match f.U.Supervisor.f_error with
      | U.Supervisor.Crash _ -> ()
      | e -> Alcotest.failf "expected Crash, got %s" (U.Supervisor.error_name e));
      Alcotest.(check bool) "backoff waste accounted" true
        (f.U.Supervisor.f_wasted_seconds > 0.0);
      Alcotest.(check int) "one terminal failure" 1
        (U.Supervisor.stats sup).U.Supervisor.sup_failures

let test_sup_nontransient_propagates () =
  let sup = U.Supervisor.create () in
  (match
     U.Supervisor.supervise sup ~site:"s" (fun ~attempt:_ ~stall:_ -> raise Boom)
   with
  | (_ : unit) -> Alcotest.fail "expected the exception to escape"
  | exception Boom -> ()
  | exception e -> Alcotest.failf "expected Boom, got %s" (Printexc.to_string e));
  Alcotest.(check int) "bugs are not supervised failures" 0
    (U.Supervisor.stats sup).U.Supervisor.sup_failures

let test_sup_stage_deadline () =
  let policy =
    { U.Supervisor.default_policy with
      U.Supervisor.stage_deadline_seconds = Some 10.0 }
  in
  let sup = U.Supervisor.create ~policy () in
  match
    U.Supervisor.supervise sup ~site:"s" (fun ~attempt:_ ~stall -> stall 25.0)
  with
  | () -> Alcotest.fail "expected Stage_failed"
  | exception U.Supervisor.Stage_failed f ->
      (match f.U.Supervisor.f_error with
      | U.Supervisor.Stage_deadline d -> check_floatish "deadline" 10.0 d
      | e -> Alcotest.failf "expected Stage_deadline, got %s" (U.Supervisor.error_name e));
      Alcotest.(check int) "every attempt was killed" 3
        (U.Supervisor.stats sup).U.Supervisor.sup_deadline_kills;
      Alcotest.(check bool) "each kill cost the full deadline" true
        (f.U.Supervisor.f_wasted_seconds >= 30.0)

(* Regression: a stage body that captures the [stall] hook of a
   deadline-bearing supervisor can leak its internal timeout exception
   into a site whose own policy has no stage deadline.  That used to
   die on [Option.get]; it must be handled as a crash of the attempt. *)
let test_sup_timeout_leak_without_deadline () =
  let donor_policy =
    { U.Supervisor.default_policy with
      U.Supervisor.stage_deadline_seconds = Some 1.0 }
  in
  let donor = U.Supervisor.create ~policy:donor_policy () in
  let leaked = ref (fun (_ : float) -> ()) in
  U.Supervisor.supervise donor ~site:"donor" (fun ~attempt:_ ~stall ->
      leaked := stall);
  let sup = U.Supervisor.create () in
  match
    U.Supervisor.supervise sup ~site:"s" (fun ~attempt:_ ~stall:_ ->
        !leaked 5.0)
  with
  | () -> Alcotest.fail "expected Stage_failed"
  | exception U.Supervisor.Stage_failed f -> (
      match f.U.Supervisor.f_error with
      | U.Supervisor.Crash m ->
          Alcotest.(check bool) "crash names the leak" true
            (String.length m > 0)
      | e ->
          Alcotest.failf "expected Crash, got %s" (U.Supervisor.error_name e))

let test_sup_run_deadline () =
  let policy =
    { U.Supervisor.default_policy with
      U.Supervisor.run_deadline_seconds = Some 5.0 }
  in
  let sup = U.Supervisor.create ~policy () in
  (* A sequential (meter-less) site bills its stalls against the run
     budget... *)
  U.Supervisor.supervise sup ~site:"a" (fun ~attempt:_ ~stall -> stall 7.0);
  (* ...after which further sequential sites are refused outright. *)
  match U.Supervisor.supervise sup ~site:"b" (fun ~attempt:_ ~stall:_ -> ()) with
  | () -> Alcotest.fail "expected Run_deadline"
  | exception U.Supervisor.Stage_failed f ->
      Alcotest.(check int) "refused before any attempt" 0
        f.U.Supervisor.f_attempts;
      (match f.U.Supervisor.f_error with
      | U.Supervisor.Run_deadline -> ()
      | e -> Alcotest.failf "expected Run_deadline, got %s" (U.Supervisor.error_name e))

let test_sup_meter_spares_run_budget () =
  let policy =
    { U.Supervisor.default_policy with
      U.Supervisor.run_deadline_seconds = Some 5.0 }
  in
  let sup = U.Supervisor.create ~policy () in
  let m = U.Supervisor.meter () in
  U.Supervisor.supervise sup ~site:"a" ~meter:m (fun ~attempt:_ ~stall ->
      stall 100.0);
  check_floatish "stall collected on the meter" 100.0 (U.Supervisor.spent m);
  Alcotest.(check (option (float 1e-6))) "run budget untouched" (Some 5.0)
    (U.Supervisor.run_remaining sup)

let test_sup_cancellation () =
  let sup = U.Supervisor.create () in
  U.Supervisor.cancel_run ~reason:"shutdown" sup;
  match U.Supervisor.supervise sup ~site:"s" (fun ~attempt:_ ~stall:_ -> ()) with
  | () -> Alcotest.fail "expected Cancel"
  | exception U.Supervisor.Stage_failed f -> (
      match f.U.Supervisor.f_error with
      | U.Supervisor.Cancel "shutdown" -> ()
      | e -> Alcotest.failf "expected Cancel, got %s" (U.Supervisor.error_name e))

let test_sup_token_tree () =
  let parent = U.Supervisor.token () in
  let child = U.Supervisor.token ~parent () in
  Alcotest.(check bool) "fresh child not cancelled" false
    (U.Supervisor.cancelled child);
  U.Supervisor.cancel ~reason:"first" parent;
  U.Supervisor.cancel ~reason:"second" parent;
  Alcotest.(check bool) "child observes parent" true
    (U.Supervisor.cancelled child);
  Alcotest.(check (option string)) "first cancellation wins" (Some "first")
    (U.Supervisor.cancel_reason child)

let test_sup_backoff_deterministic () =
  let waste () =
    let sup = U.Supervisor.create () in
    let m = U.Supervisor.meter () in
    (try
       U.Supervisor.supervise sup ~site:"site-x" ~transient:(( = ) Boom)
         ~meter:m (fun ~attempt:_ ~stall:_ -> raise Boom)
     with U.Supervisor.Stage_failed _ -> ());
    U.Supervisor.spent m
  in
  check_float "same site, same backoff schedule" (waste ()) (waste ())

let test_sup_validate () =
  Alcotest.check_raises "attempts >= 1"
    (Invalid_argument "Supervisor: max_attempts must be >= 1 (got 0)")
    (fun () ->
      U.Supervisor.validate_policy
        { U.Supervisor.default_policy with U.Supervisor.max_attempts = 0 });
  Alcotest.check_raises "positive stage deadline"
    (Invalid_argument "Supervisor: stage deadline must be positive") (fun () ->
      U.Supervisor.validate_policy
        { U.Supervisor.default_policy with
          U.Supervisor.stage_deadline_seconds = Some 0.0 })

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

let test_chaos_key_prng_deterministic () =
  let a = U.Chaos.key_prng ~seed:9 "chaos:test:site"
  and b = U.Chaos.key_prng ~seed:9 "chaos:test:site" in
  for _ = 1 to 20 do
    Alcotest.(check int64) "same stream" (U.Prng.int64 a) (U.Prng.int64 b)
  done;
  let c = U.Chaos.key_prng ~seed:9 "chaos:test:other" in
  Alcotest.(check bool) "keys decorrelate" false
    (U.Prng.int64 (U.Chaos.key_prng ~seed:9 "chaos:test:site") = U.Prng.int64 c)

let test_chaos_bernoulli_edges () =
  let p = U.Chaos.key_prng ~seed:1 "edge" in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p = 0 never fires" false (U.Chaos.bernoulli p 0.0);
    Alcotest.(check bool) "p = 1 always fires" true (U.Chaos.bernoulli p 1.0)
  done

let test_chaos_storm_valid_and_deterministic () =
  for seed = 0 to 30 do
    let c = U.Chaos.storm ~seed in
    U.Chaos.validate c;
    Alcotest.(check bool) "storm is enabled" true c.U.Chaos.enabled
  done;
  let a = U.Chaos.storm ~seed:5 and b = U.Chaos.storm ~seed:5 in
  Alcotest.(check bool) "same seed, same mix" true (a = b);
  Alcotest.(check bool) "different seeds differ" true
    (U.Chaos.storm ~seed:5 <> U.Chaos.storm ~seed:6)

let test_chaos_rolls_site_stable () =
  let c = { (U.Chaos.storm ~seed:3) with U.Chaos.store_read_error_rate = 0.5 } in
  let roll () = U.Chaos.store_read_error c ~site:"xst/abcd" in
  let first = roll () in
  for _ = 1 to 10 do
    Alcotest.(check bool) "per-site roll is call-count independent" first
      (roll ())
  done

let test_chaos_torn_length_bounds () =
  let c = U.Chaos.storm ~seed:11 in
  List.iter
    (fun len ->
      let t = U.Chaos.torn_length c ~site:"s/d" ~len in
      Alcotest.(check bool)
        (Printf.sprintf "1 <= torn < %d" len)
        true
        (t >= 1 && t < len))
    [ 2; 3; 10; 4096 ]

let test_chaos_disabled_is_identity () =
  let b = U.Artifact.memory_backend () in
  Alcotest.(check bool) "chaos off returns the backend physically unchanged"
    true
    (U.Chaos.wrap_backend U.Chaos.none b == b)

let test_chaos_wrap_backend_planes () =
  let tbl : (string, string * string) Hashtbl.t = Hashtbl.create 8 in
  let base =
    {
      U.Artifact.backend_kind = "test";
      backend_get = (fun ~stage ~digest -> Hashtbl.find_opt tbl (stage ^ digest));
      backend_put =
        (fun ~stage ~digest ~builder ~payload ->
          Hashtbl.replace tbl (stage ^ digest) (builder, payload));
      backend_entries = (fun () -> []);
    }
  in
  let all_errors =
    { U.Chaos.none with
      U.Chaos.enabled = true;
      seed = 1;
      store_read_error_rate = 1.0;
      store_write_drop_rate = 1.0 }
  in
  let wrapped = U.Chaos.wrap_backend all_errors base in
  wrapped.U.Artifact.backend_put ~stage:"s" ~digest:"d" ~builder:"b"
    ~payload:"p";
  Alcotest.(check bool) "writes are dropped" true (Hashtbl.length tbl = 0);
  base.U.Artifact.backend_put ~stage:"s" ~digest:"d" ~builder:"b" ~payload:"p";
  Alcotest.(check (option (pair string string)))
    "reads error into misses" None
    (wrapped.U.Artifact.backend_get ~stage:"s" ~digest:"d");
  Alcotest.(check (option (pair string string)))
    "the underlying entry is intact"
    (Some ("b", "p"))
    (base.U.Artifact.backend_get ~stage:"s" ~digest:"d")

let test_chaos_validate () =
  Alcotest.(check bool) "storm rates validate" true
    (try
       U.Chaos.validate (U.Chaos.defaults ~seed:1);
       true
     with Invalid_argument _ -> false);
  match
    U.Chaos.validate
      { (U.Chaos.defaults ~seed:1) with U.Chaos.stage_crash_rate = 1.5 }
  with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Pool.map_result                                                     *)
(* ------------------------------------------------------------------ *)

let test_pool_map_result_ok () =
  let xs = List.init 20 Fun.id in
  let rs = U.Pool.map_result ~jobs:4 (fun x -> x * x) xs in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * x) xs)
    (List.map (function Ok v -> v | Error _ -> -1) rs)

let test_pool_map_result_isolates_failures () =
  let xs = List.init 10 Fun.id in
  let rs =
    U.Pool.map_result ~jobs:4 (fun x -> if x mod 3 = 0 then raise Boom else x) xs
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "survivor keeps its value" i v
      | Error (Boom, _) ->
          Alcotest.(check bool) "only multiples of 3 fail" true (i mod 3 = 0)
      | Error (e, _) -> Alcotest.failf "unexpected %s" (Printexc.to_string e))
    rs

let test_pool_map_result_cancelled () =
  let tok = U.Supervisor.token () in
  U.Supervisor.cancel ~reason:"stop" tok;
  let rs = U.Pool.map_result ~token:tok ~jobs:4 (fun x -> x) [ 1; 2; 3 ] in
  Alcotest.(check int) "no item ran" 3
    (List.length
       (List.filter
          (function Error (U.Supervisor.Cancelled "stop", _) -> true | _ -> false)
          rs))

let test_pool_map_result_inline () =
  let rs = U.Pool.map_result (fun x -> x + 1) [ 1; 2 ] in
  Alcotest.(check (list int)) "inline path" [ 2; 3 ]
    (List.map (function Ok v -> v | Error _ -> -1) rs)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          Alcotest.test_case "pick" `Quick test_prng_pick;
          Alcotest.test_case "hash stable" `Quick test_prng_hash_string_stable;
        ]
        @ qsuite [ prop_shuffle_is_permutation ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stdev" `Quick test_stats_stdev;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "min/max/sum" `Quick test_stats_minmax_sum;
          Alcotest.test_case "weighted mean" `Quick test_stats_weighted_mean;
          Alcotest.test_case "summarize" `Quick test_stats_summarize;
        ]
        @ qsuite [ prop_mean_bounded ] );
      ( "duration",
        [
          Alcotest.test_case "formats" `Quick test_duration_formats;
          Alcotest.test_case "rounding" `Quick test_duration_rounding;
          Alcotest.test_case "negative" `Quick test_duration_negative;
          Alcotest.test_case "parse" `Quick test_duration_parse;
          Alcotest.test_case "constructors" `Quick test_duration_constructors;
        ]
        @ qsuite [ prop_duration_roundtrip; prop_duration_dhms_roundtrip ] );
      ( "texttable",
        [
          Alcotest.test_case "render" `Quick test_texttable_render;
          Alcotest.test_case "arity" `Quick test_texttable_mismatch;
          Alcotest.test_case "alignment" `Quick test_texttable_alignment;
        ] );
      ( "pool",
        [
          Alcotest.test_case "ordering" `Quick test_pool_ordering;
          Alcotest.test_case "jobs=1 degenerate" `Quick
            test_pool_jobs_one_degenerate;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "iter visits all" `Quick
            test_pool_all_elements_visited;
          Alcotest.test_case "default jobs" `Quick test_pool_default_jobs;
          Alcotest.test_case "map_result ok" `Quick test_pool_map_result_ok;
          Alcotest.test_case "map_result isolation" `Quick
            test_pool_map_result_isolates_failures;
          Alcotest.test_case "map_result cancelled" `Quick
            test_pool_map_result_cancelled;
          Alcotest.test_case "map_result inline" `Quick
            test_pool_map_result_inline;
        ] );
      ( "retry",
        [
          Alcotest.test_case "exponential backoff" `Quick
            test_retry_backoff_exponential;
          Alcotest.test_case "deterministic jitter" `Quick
            test_retry_backoff_deterministic_jitter;
          Alcotest.test_case "validation" `Quick test_retry_validate;
          Alcotest.test_case "budget" `Quick test_retry_budget;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "success" `Quick test_sup_success_passthrough;
          Alcotest.test_case "transient retry" `Quick test_sup_transient_retry;
          Alcotest.test_case "exhaustion" `Quick test_sup_exhaustion;
          Alcotest.test_case "non-transient propagates" `Quick
            test_sup_nontransient_propagates;
          Alcotest.test_case "stage deadline" `Quick test_sup_stage_deadline;
          Alcotest.test_case "timeout leak without deadline" `Quick
            test_sup_timeout_leak_without_deadline;
          Alcotest.test_case "run deadline" `Quick test_sup_run_deadline;
          Alcotest.test_case "meter spares run budget" `Quick
            test_sup_meter_spares_run_budget;
          Alcotest.test_case "cancellation" `Quick test_sup_cancellation;
          Alcotest.test_case "token tree" `Quick test_sup_token_tree;
          Alcotest.test_case "deterministic backoff" `Quick
            test_sup_backoff_deterministic;
          Alcotest.test_case "policy validation" `Quick test_sup_validate;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "key prng" `Quick test_chaos_key_prng_deterministic;
          Alcotest.test_case "bernoulli edges" `Quick test_chaos_bernoulli_edges;
          Alcotest.test_case "storm" `Quick
            test_chaos_storm_valid_and_deterministic;
          Alcotest.test_case "site-stable rolls" `Quick
            test_chaos_rolls_site_stable;
          Alcotest.test_case "torn length bounds" `Quick
            test_chaos_torn_length_bounds;
          Alcotest.test_case "disabled is identity" `Quick
            test_chaos_disabled_is_identity;
          Alcotest.test_case "store planes" `Quick
            test_chaos_wrap_backend_planes;
          Alcotest.test_case "validation" `Quick test_chaos_validate;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span records" `Quick test_trace_span_records;
          Alcotest.test_case "span without tracer" `Quick
            test_trace_span_none_is_free;
          Alcotest.test_case "span on raise" `Quick
            test_trace_span_records_on_raise;
          Alcotest.test_case "events sorted" `Quick
            test_trace_synthetic_events_sorted;
          Alcotest.test_case "chrome json" `Quick test_trace_json_export;
          Alcotest.test_case "write" `Quick test_trace_write;
        ] );
      ( "digest",
        [
          Alcotest.test_case "pinned values" `Quick test_digest_pinned;
          Alcotest.test_case "stable across runs" `Quick
            test_digest_stable_across_runs;
          Alcotest.test_case "distinguishes inputs" `Quick
            test_digest_distinguishes;
          Alcotest.test_case "finish non-destructive" `Quick
            test_digest_finish_nondestructive;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "put/find" `Quick test_artifact_put_find;
          Alcotest.test_case "hit attribution" `Quick
            test_artifact_hit_attribution;
          Alcotest.test_case "first put wins" `Quick
            test_artifact_first_put_wins;
          Alcotest.test_case "stage stats" `Quick test_artifact_stage_stats;
          Alcotest.test_case "parallel consistency" `Quick
            test_artifact_parallel_consistency;
        ] );
    ]
