(* The persistence layer of the artifact store: Binio wire format,
   domain codecs, the on-disk backend, and the store front-end over it.

   Three law families, per the redesign's acceptance bar:
   - every codec round-trips (qcheck for the combinators, encode/
     decode/encode stability for the domain codecs over real pipeline
     values);
   - the disk backend is crash-safe and first-put-wins, and ANY defect
     in a stored file — truncation, bad magic, bad version, a flipped
     payload byte — reads as a miss, never an error;
   - a fresh store front-end over a warm root serves every persistent
     key (the warm-restart contract), with correct Local/Shared
     attribution carried through the envelope's builder field. *)

module Ir = Jitise_ir
module F = Jitise_frontend
module Vm = Jitise_vm
module W = Jitise_workloads
module Ise = Jitise_ise
module Pp = Jitise_pivpav
module Hw = Jitise_hwgen
module Cad = Jitise_cad
module Core = Jitise_core
module U = Jitise_util
module B = U.Binio

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let tmp_root () =
  let path = Filename.temp_file "jitise-store-test" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun name ->
        let p = Filename.concat dir name in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_root f =
  let root = tmp_root () in
  Fun.protect ~finally:(fun () -> rm_rf root) (fun () -> f root)

let rt codec v = B.decode codec (B.encode codec v)

(* The universal codec law usable for values containing hashtables or
   arrays (where [=] is unreliable): encoding is a fixpoint of one
   decode/encode cycle. *)
let stable name codec v =
  let bytes = B.encode codec v in
  Alcotest.(check string)
    (name ^ " encode/decode/encode stable")
    bytes
    (B.encode codec (B.decode codec bytes))

let raises_corrupt name f =
  match f () with
  | exception B.Corrupt _ -> ()
  | _ -> Alcotest.failf "%s: expected Binio.Corrupt" name

(* ------------------------------------------------------------------ *)
(* Binio: qcheck round-trip laws for every combinator                  *)
(* ------------------------------------------------------------------ *)

let prop_int_roundtrip =
  QCheck.Test.make ~name:"binio int round trip" ~count:1000 QCheck.int (fun v ->
      rt B.int v = v)

let prop_int64_roundtrip =
  QCheck.Test.make ~name:"binio int64 round trip" ~count:1000 QCheck.int64
    (fun v -> rt B.int64 v = v)

(* Bit-level comparison so NaN payloads and signed zeros count too. *)
let prop_float_roundtrip =
  QCheck.Test.make ~name:"binio float round trip" ~count:1000 QCheck.float
    (fun v -> Int64.bits_of_float (rt B.float v) = Int64.bits_of_float v)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"binio string round trip" ~count:1000
    QCheck.(string_gen Gen.char)
    (fun v -> rt B.string v = v)

let prop_bool_roundtrip =
  QCheck.Test.make ~name:"binio bool round trip" ~count:20 QCheck.bool (fun v ->
      rt B.bool v = v)

let prop_option_roundtrip =
  QCheck.Test.make ~name:"binio option round trip" ~count:500
    QCheck.(option int)
    (fun v -> rt (B.option B.int) v = v)

let prop_list_roundtrip =
  QCheck.Test.make ~name:"binio list round trip" ~count:500
    QCheck.(list (pair string int))
    (fun v -> rt (B.list (B.pair B.string B.int)) v = v)

let prop_nested_roundtrip =
  QCheck.Test.make ~name:"binio nested round trip" ~count:300
    QCheck.(list (triple (option string) (list int) bool))
    (fun v ->
      let c = B.list (B.triple (B.option B.string) (B.list B.int) B.bool) in
      rt c v = v)

let prop_varint_compact =
  QCheck.Test.make ~name:"binio small ints are one byte" ~count:200
    QCheck.(int_range (-64) 63)
    (fun v -> String.length (B.encode B.int v) = 1)

let test_int_boundaries () =
  List.iter
    (fun v -> Alcotest.(check int) (string_of_int v) v (rt B.int v))
    [ 0; 1; -1; 63; 64; -64; -65; max_int; min_int ];
  List.iter
    (fun v ->
      Alcotest.(check int64) (Int64.to_string v) v (rt B.int64 v))
    [ 0L; Int64.max_int; Int64.min_int; -1L ]

let test_enum_roundtrip () =
  let c = B.enum ~name:"abc" [ `A; `B; `C ] in
  List.iter (fun v -> assert (rt c v = v)) [ `A; `B; `C ];
  (* Out-of-range index is corrupt, not a crash. *)
  raises_corrupt "enum index 3" (fun () ->
      B.decode c (B.encode B.int 3));
  (* A value outside the enumeration cannot be encoded (a programming
     error, not a data defect: Invalid_argument, not Corrupt). *)
  match B.encode c `D with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encoding an unknown enum value must raise"

let test_corrupt_inputs () =
  raises_corrupt "trailing bytes" (fun () ->
      B.decode B.int (B.encode B.int 7 ^ "x"));
  raises_corrupt "truncated string" (fun () ->
      let s = B.encode B.string "hello world" in
      B.decode B.string (String.sub s 0 (String.length s - 3)));
  raises_corrupt "truncated int64" (fun () -> B.decode B.int64 "abc");
  raises_corrupt "bad bool tag" (fun () -> B.decode B.bool "\x07");
  raises_corrupt "bad option tag" (fun () ->
      B.decode (B.option B.int) "\x09");
  raises_corrupt "length past end" (fun () ->
      (* a length prefix claiming more bytes than remain *)
      B.decode B.string (B.encode B.int 1000));
  raises_corrupt "unterminated varint" (fun () ->
      B.decode B.int "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff");
  Alcotest.(check (option int)) "decode_opt maps Corrupt to None" None
    (B.decode_opt B.int "\xff");
  Alcotest.(check (option int)) "decode_opt passes valid input" (Some 42)
    (B.decode_opt B.int (B.encode B.int 42))

(* ------------------------------------------------------------------ *)
(* Domain codecs over real pipeline values                             *)
(* ------------------------------------------------------------------ *)

let db = Pp.Database.create ()
let sor = Option.get (W.Registry.find "sor")
let compiled = lazy (W.Workload.compile sor)

let profiled =
  lazy
    (let r = Lazy.force compiled in
     (r.F.Compiler.modul, W.Workload.run r { label = "t"; n = 12 }))

let report =
  lazy
    (let m, out = Lazy.force profiled in
     Core.Asip_sp.run_spec db m out.Vm.Machine.profile
       ~total_cycles:out.Vm.Machine.native_cycles)

let flow_run =
  lazy
    (let m, _ = Lazy.force profiled in
     let r = Lazy.force report in
     let s = List.hd r.Core.Asip_sp.selection in
     let c = s.Ise.Select.candidate in
     let f = Option.get (Ir.Irmod.find_func m c.Ise.Candidate.func) in
     let dfg = Ir.Dfg.of_block f (Ir.Func.block f c.Ise.Candidate.block) in
     let p = Hw.Project.create db dfg c in
     (p, Cad.Flow.implement db p))

let test_codec_compiler_result () =
  let r = Lazy.force compiled in
  stable "compiler_result" Core.Codecs.compiler_result r;
  let r' = rt Core.Codecs.compiler_result r in
  (* The module survives as re-parsed text... *)
  Alcotest.(check string) "module text survives"
    (Ir.Printer.module_to_string r.F.Compiler.modul)
    (Ir.Printer.module_to_string r'.F.Compiler.modul);
  (* ...and the stats (including the measured compile time, which is
     part of the artifact, not of the record log) survive exactly. *)
  Alcotest.(check bool) "stats survive" true
    (r.F.Compiler.stats = r'.F.Compiler.stats)

let test_codec_profile_outcomes () =
  let r = Lazy.force compiled in
  let outcomes = W.Workload.run_all r sor in
  stable "profile_outcomes" Core.Codecs.profile_outcomes outcomes;
  let outcomes' = rt Core.Codecs.profile_outcomes outcomes in
  List.iter2
    (fun (d, (o : Vm.Machine.outcome)) (d', (o' : Vm.Machine.outcome)) ->
      Alcotest.(check string) "dataset label" d.W.Workload.label
        d'.W.Workload.label;
      Alcotest.(check (float 0.0)) "native cycles" o.Vm.Machine.native_cycles
        o'.Vm.Machine.native_cycles;
      Alcotest.(check (float 0.0)) "vm cycles" o.Vm.Machine.vm_cycles
        o'.Vm.Machine.vm_cycles;
      Alcotest.(check bool) "profile entries" true
        (Vm.Profile.to_list o.Vm.Machine.profile
        = Vm.Profile.to_list o'.Vm.Machine.profile);
      Alcotest.(check int64) "executed instrs"
        o.Vm.Machine.profile.Vm.Profile.executed_instrs
        o'.Vm.Machine.profile.Vm.Profile.executed_instrs)
    outcomes outcomes'

let test_codec_analyses () =
  let m, out = Lazy.force profiled in
  let out2 = W.Workload.run (Lazy.force compiled) { label = "t2"; n = 8 } in
  let cov =
    Jitise_analysis.Coverage.classify m
      [ out.Vm.Machine.profile; out2.Vm.Machine.profile ]
  in
  stable "coverage" Core.Codecs.coverage cov;
  let k = Jitise_analysis.Kernel.compute m out.Vm.Machine.profile in
  stable "kernel" Core.Codecs.kernel k

let test_codec_search_artifacts () =
  let m, out = Lazy.force profiled in
  let pruning =
    Ise.Prune.apply Ise.Prune.at_50p_s3l m out.Vm.Machine.profile
  in
  stable "prune_selection" Core.Codecs.prune_selection pruning;
  let cands =
    List.concat_map
      (fun (fname, label) ->
        match Ir.Irmod.find_func m fname with
        | None -> []
        | Some f ->
            let dfg = Ir.Dfg.of_block f (Ir.Func.block f label) in
            Ise.Maxmiso.of_block dfg ~func:fname)
      pruning.Ise.Prune.blocks
  in
  stable "candidates" Core.Codecs.candidates cands;
  let r = Lazy.force report in
  stable "scored_list" Core.Codecs.scored_list r.Core.Asip_sp.selection

let test_codec_hw_and_cad () =
  let p, run = Lazy.force flow_run in
  stable "project" Core.Codecs.project p;
  stable "flow_run" Core.Codecs.flow_run run;
  (* The bitstream checksum is carried verbatim: a well-formed one stays
     well-formed, and a corrupted one must NOT be healed by the codec. *)
  let bs = run.Cad.Flow.bitstream in
  Alcotest.(check bool) "round-tripped bitstream well-formed" true
    (Cad.Bitstream.well_formed (rt Core.Codecs.bitstream bs));
  let bad = { bs with Cad.Bitstream.checksum = bs.Cad.Bitstream.checksum + 1 } in
  Alcotest.(check bool) "corrupt bitstream stays corrupt" false
    (Cad.Bitstream.well_formed (rt Core.Codecs.bitstream bad))

(* ------------------------------------------------------------------ *)
(* Store_disk: envelope, crash-safety, defect tolerance                *)
(* ------------------------------------------------------------------ *)

let digest_hex s = U.Digest.to_hex (U.Digest.of_string s)

let test_disk_put_get () =
  with_root (fun root ->
      let digest = digest_hex "a" in
      Alcotest.(check (option (pair string string)))
        "absent entry" None
        (U.Store_disk.get ~root ~stage:"compile" ~digest);
      U.Store_disk.put ~root ~stage:"compile" ~digest ~builder:"sor"
        ~payload:"PAYLOAD\x00\xff bytes" ();
      Alcotest.(check (option (pair string string)))
        "round trip"
        (Some ("sor", "PAYLOAD\x00\xff bytes"))
        (U.Store_disk.get ~root ~stage:"compile" ~digest))

let test_disk_first_put_wins () =
  with_root (fun root ->
      let digest = digest_hex "b" in
      U.Store_disk.put ~root ~stage:"s" ~digest ~builder:"first" ~payload:"one" ();
      U.Store_disk.put ~root ~stage:"s" ~digest ~builder:"second"
        ~payload:"two" ();
      Alcotest.(check (option (pair string string)))
        "first write wins"
        (Some ("first", "one"))
        (U.Store_disk.get ~root ~stage:"s" ~digest))

let test_disk_defects_read_as_misses () =
  with_root (fun root ->
      let stage = "s" in
      let write_entry name payload =
        let digest = digest_hex name in
        U.Store_disk.put ~root ~stage ~digest ~builder:"app" ~payload ();
        (digest, U.Store_disk.entry_path ~root ~stage ~digest)
      in
      let mutate path f =
        let s = In_channel.with_open_bin path In_channel.input_all in
        let b = Bytes.of_string s in
        f b;
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_bytes oc b)
      in
      let check_miss what digest =
        Alcotest.(check (option (pair string string)))
          (what ^ " reads as a miss") None
          (U.Store_disk.get ~root ~stage ~digest)
      in
      (* Truncation: a crash mid-write would leave a short file only if
         rename were not atomic; readers must still survive one. *)
      let d, path = write_entry "trunc" "some payload" in
      let len = (Unix.stat path).Unix.st_size in
      Unix.truncate path (len / 2);
      check_miss "truncated entry" d;
      (* Empty file. *)
      let d, path = write_entry "empty" "x" in
      Unix.truncate path 0;
      check_miss "empty entry" d;
      (* Bad magic. *)
      let d, path = write_entry "magic" "payload" in
      mutate path (fun b -> Bytes.set b 0 'X');
      check_miss "bad magic" d;
      (* Unknown format version. *)
      let d, path = write_entry "version" "payload" in
      mutate path (fun b -> Bytes.set b 4 '\xf7');
      check_miss "bad version" d;
      (* A flipped payload byte fails the checksum. *)
      let d, path = write_entry "flip" "payload-payload-payload" in
      mutate path (fun b ->
          let i = Bytes.length b - 3 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41)));
      check_miss "flipped payload byte" d;
      (* Trailing garbage after the envelope. *)
      let d, path = write_entry "trail" "payload" in
      let s = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (s ^ "garbage"));
      check_miss "trailing bytes" d;
      (* And an intact neighbour is still served. *)
      let d, _ = write_entry "intact" "good" in
      Alcotest.(check (option (pair string string)))
        "intact entry unaffected"
        (Some ("app", "good"))
        (U.Store_disk.get ~root ~stage ~digest:d))

let test_disk_orphan_sweep () =
  with_root (fun root ->
      let digest = digest_hex "kept" in
      U.Store_disk.put ~root ~stage:"s" ~digest ~builder:"app" ~payload:"v" ();
      let dir = Filename.concat root "s" in
      let orphan name = Out_channel.with_open_bin
          (Filename.concat dir name)
          (fun oc -> Out_channel.output_string oc "partial")
      in
      orphan (digest ^ ".tmp.12345.0");
      orphan (digest ^ ".tmp.12345.1");
      (* Opening the backend sweeps the orphans and keeps real entries. *)
      let b = U.Store_disk.backend ~root () in
      Alcotest.(check int) "no tmp files survive" 0
        (Array.length
           (Array.of_list
              (List.filter
                 (fun n ->
                   String.length n > String.length digest)
                 (Array.to_list (Sys.readdir dir)))));
      Alcotest.(check (option (pair string string)))
        "the committed entry survives the sweep"
        (Some ("app", "v"))
        (b.U.Artifact.backend_get ~stage:"s" ~digest);
      Alcotest.(check int) "nothing left for a second sweep" 0
        (U.Store_disk.sweep_orphans ~root))

let test_disk_concurrent_first_put_wins () =
  with_root (fun root ->
      let digest = digest_hex "race" in
      (* Two writers race the same (stage, digest) with different
         payloads, many rounds: exactly one valid envelope must land and
         no temp residue may survive. *)
      let barrier = Atomic.make 0 in
      let writer payload () =
        Atomic.incr barrier;
        while Atomic.get barrier < 2 do Domain.cpu_relax () done;
        for _ = 1 to 50 do
          U.Store_disk.put ~root ~stage:"s" ~digest ~builder:payload
            ~payload ()
        done
      in
      let a = Domain.spawn (writer "one") in
      let b = Domain.spawn (writer "two") in
      Domain.join a;
      Domain.join b;
      (match U.Store_disk.get ~root ~stage:"s" ~digest with
      | Some (b, p) ->
          Alcotest.(check bool) "a complete write won" true
            ((b, p) = ("one", "one") || (b, p) = ("two", "two"))
      | None -> Alcotest.fail "no valid envelope after the race");
      let residue =
        Array.to_list (Sys.readdir (Filename.concat root "s"))
        |> List.filter (fun n -> n <> digest)
      in
      Alcotest.(check (list string)) "no temp residue" [] residue)

let test_disk_torn_write_reads_as_miss () =
  with_root (fun root ->
      let digest = digest_hex "torn" in
      let always_torn =
        { U.Chaos.none with
          U.Chaos.enabled = true;
          seed = 1;
          store_torn_rate = 1.0 }
      in
      U.Store_disk.put ~chaos:always_torn ~root ~stage:"s" ~digest
        ~builder:"app" ~payload:"value" ();
      Alcotest.(check bool) "the torn entry exists on disk" true
        (Sys.file_exists (U.Store_disk.entry_path ~root ~stage:"s" ~digest));
      Alcotest.(check (option (pair string string)))
        "a torn envelope reads as a miss" None
        (U.Store_disk.get ~root ~stage:"s" ~digest);
      (* First-put-wins means the torn entry occupies the slot: the
         site stays a permanent miss and the pipeline recomputes. *)
      U.Store_disk.put ~root ~stage:"s" ~digest ~builder:"app"
        ~payload:"value" ();
      Alcotest.(check (option (pair string string)))
        "the tear is permanent under first-put-wins" None
        (U.Store_disk.get ~root ~stage:"s" ~digest))

let test_disk_entries () =
  with_root (fun root ->
      U.Store_disk.put ~root ~stage:"a" ~digest:(digest_hex "1")
        ~builder:"x" ~payload:"12345" ();
      U.Store_disk.put ~root ~stage:"a" ~digest:(digest_hex "2")
        ~builder:"x" ~payload:"12345" ();
      U.Store_disk.put ~root ~stage:"b" ~digest:(digest_hex "3")
        ~builder:"x" ~payload:"1" ();
      let entries = (U.Store_disk.backend ~root ()).U.Artifact.backend_entries () in
      Alcotest.(check int) "two stages" 2 (List.length entries);
      let a_stage, a_count, a_bytes = List.hd entries in
      Alcotest.(check string) "sorted by stage" "a" a_stage;
      Alcotest.(check int) "entry count" 2 a_count;
      Alcotest.(check bool) "bytes include the envelope" true
        (a_bytes > 2 * 5))

(* ------------------------------------------------------------------ *)
(* Artifact front-end over the disk backend                            *)
(* ------------------------------------------------------------------ *)

let test_artifact_warm_restart () =
  with_root (fun root ->
      let key = U.Artifact.key ~codec:B.string "warm-stage" in
      let digest = U.Digest.of_string "input" in
      let store = U.Artifact.create ~backend:(U.Store_disk.backend ~root ()) () in
      U.Artifact.put store key ~app:"sor" ~digest "the artifact";
      (* A NEW front-end over the same root: a simulated restart, so the
         hit must cross serialization and still attribute correctly. *)
      let fresh () =
        U.Artifact.create ~backend:(U.Store_disk.backend ~root ()) ()
      in
      (match U.Artifact.find (fresh ()) key ~app:"sor" ~digest with
      | Some (v, U.Artifact.Local) ->
          Alcotest.(check string) "value survives restart" "the artifact" v
      | Some (_, U.Artifact.Shared) -> Alcotest.fail "expected Local"
      | None -> Alcotest.fail "expected a warm hit");
      (match U.Artifact.find (fresh ()) key ~app:"fft" ~digest with
      | Some (_, U.Artifact.Shared) -> ()
      | Some (_, U.Artifact.Local) ->
          Alcotest.fail "another app must see Shared"
      | None -> Alcotest.fail "expected a warm hit");
      (* Backend hits are promoted to L1: the second probe through ONE
         front-end must not re-read the disk (observable via stats — the
         promoted entry counts as an in-process entry). *)
      let store2 = fresh () in
      ignore (U.Artifact.find store2 key ~app:"sor" ~digest);
      let stats = U.Artifact.stats store2 in
      Alcotest.(check int) "promoted into L1" 1 stats.U.Artifact.total_entries)

let test_artifact_codecless_key_stays_local () =
  with_root (fun root ->
      let key = U.Artifact.key "ephemeral-stage" in
      Alcotest.(check bool) "no codec, not persistent" false
        (U.Artifact.key_persistent key);
      let digest = U.Digest.of_string "input" in
      let store = U.Artifact.create ~backend:(U.Store_disk.backend ~root ()) () in
      U.Artifact.put store key ~app:"a" ~digest 42;
      Alcotest.(check bool) "nothing persisted" true
        (U.Artifact.backend_entries store = []);
      let fresh = U.Artifact.create ~backend:(U.Store_disk.backend ~root ()) () in
      Alcotest.(check bool) "miss after restart" true
        (U.Artifact.find fresh key ~app:"a" ~digest = None))

let test_artifact_undecodable_payload_is_a_miss () =
  with_root (fun root ->
      let key = U.Artifact.key ~codec:(B.pair B.int B.string) "typed-stage" in
      let digest = U.Digest.of_string "input" in
      (* A valid envelope whose payload the codec rejects: must degrade
         to a miss at the front-end, not raise. *)
      U.Store_disk.put ~root ~stage:"typed-stage"
        ~digest:(U.Digest.to_hex digest) ~builder:"a" ~payload:"not binio" ();
      let store = U.Artifact.create ~backend:(U.Store_disk.backend ~root ()) () in
      Alcotest.(check bool) "undecodable payload misses" true
        (U.Artifact.find store key ~app:"a" ~digest = None);
      (* The recompute then overwrites nothing (first put wins at the
         byte layer) but L1 serves the fresh value from now on. *)
      U.Artifact.put store key ~app:"a" ~digest (7, "fresh");
      match U.Artifact.find store key ~app:"a" ~digest with
      | Some ((7, "fresh"), _) -> ()
      | _ -> Alcotest.fail "recomputed value must be served")

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "store"
    [
      ( "binio",
        [
          Alcotest.test_case "int boundaries" `Quick test_int_boundaries;
          Alcotest.test_case "enum" `Quick test_enum_roundtrip;
          Alcotest.test_case "corrupt inputs" `Quick test_corrupt_inputs;
        ]
        @ qsuite
            [
              prop_int_roundtrip; prop_int64_roundtrip; prop_float_roundtrip;
              prop_string_roundtrip; prop_bool_roundtrip;
              prop_option_roundtrip; prop_list_roundtrip;
              prop_nested_roundtrip; prop_varint_compact;
            ] );
      ( "codecs",
        [
          Alcotest.test_case "compiler_result" `Quick
            test_codec_compiler_result;
          Alcotest.test_case "profile_outcomes" `Quick
            test_codec_profile_outcomes;
          Alcotest.test_case "coverage/kernel" `Quick test_codec_analyses;
          Alcotest.test_case "search artifacts" `Quick
            test_codec_search_artifacts;
          Alcotest.test_case "project/flow_run/bitstream" `Quick
            test_codec_hw_and_cad;
        ] );
      ( "disk",
        [
          Alcotest.test_case "put/get" `Quick test_disk_put_get;
          Alcotest.test_case "first put wins" `Quick test_disk_first_put_wins;
          Alcotest.test_case "defects read as misses" `Quick
            test_disk_defects_read_as_misses;
          Alcotest.test_case "entries walk" `Quick test_disk_entries;
          Alcotest.test_case "orphan sweep" `Quick test_disk_orphan_sweep;
          Alcotest.test_case "concurrent first put wins" `Quick
            test_disk_concurrent_first_put_wins;
          Alcotest.test_case "torn write reads as miss" `Quick
            test_disk_torn_write_reads_as_miss;
        ] );
      ( "front-end",
        [
          Alcotest.test_case "warm restart" `Quick test_artifact_warm_restart;
          Alcotest.test_case "codec-less key stays local" `Quick
            test_artifact_codecless_key_stays_local;
          Alcotest.test_case "undecodable payload is a miss" `Quick
            test_artifact_undecodable_payload_is_a_miss;
        ] );
    ]
