(* Supervised stage execution under the cross-layer chaos model.

   The robustness contract, verified end to end through
   Experiment/Asip_sp/Pipeline:

   - chaos off reproduces the chaos-free pipeline byte for byte (the
     supervisor with the default policy is a pass-through);
   - a chaotic run is deterministic: serial and jobs:4 evaluations of
     the same seed produce identical reports, and a warm replay over
     the same (possibly torn) store root changes nothing;
   - degradation is per-candidate: a poisoned fan-out slot drops that
     one candidate to software, flagged [Stage_failure] and
     waste-billed, while the sweep completes;
   - a poisoned sequential stage fails the run with
     [Supervisor.Stage_failed] after bounded retries — never a hang,
     never a silent wrong answer. *)

module W = Jitise_workloads
module Ise = Jitise_ise
module Pp = Jitise_pivpav
module Cad = Jitise_cad
module Core = Jitise_core
module U = Jitise_util

let find_workload name = Option.get (W.Registry.find name)
let db = Pp.Database.create ()

(* Everything deterministic a chaotic run decides — the report minus
   measured wall clocks and the stage-record log. *)
let project (r : Core.Experiment.app_result) =
  let rep = r.Core.Experiment.report in
  let signature (s : Ise.Select.scored) =
    s.Ise.Select.candidate.Ise.Candidate.signature
  in
  ( List.map signature rep.Core.Asip_sp.selection,
    List.map
      (fun (c : Core.Asip_sp.candidate_result) ->
        ( signature c.Core.Asip_sp.scored,
          c.Core.Asip_sp.total_seconds,
          c.Core.Asip_sp.attempts,
          c.Core.Asip_sp.failed_attempts,
          c.Core.Asip_sp.wasted_seconds ))
      rep.Core.Asip_sp.candidates,
    List.map
      (fun (d : Core.Asip_sp.dropped) ->
        ( signature d.Core.Asip_sp.drop_scored,
          Core.Asip_sp.drop_reason_name d.Core.Asip_sp.drop_reason,
          d.Core.Asip_sp.drop_attempts,
          d.Core.Asip_sp.drop_wasted_seconds ))
      rep.Core.Asip_sp.dropped,
    ( rep.Core.Asip_sp.sum_seconds,
      rep.Core.Asip_sp.wasted_seconds,
      rep.Core.Asip_sp.stage_failures,
      rep.Core.Asip_sp.degraded,
      rep.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio ) )

let evaluate ?(jobs = 1) ?(chaos = U.Chaos.none)
    ?(policy = U.Supervisor.default_policy) name =
  let spec =
    Core.Spec.default |> Core.Spec.with_jobs jobs
    |> Core.Spec.with_supervisor policy
    |> Core.Spec.with_chaos chaos
  in
  Core.Experiment.evaluate ~spec db (find_workload name)

(* CI pins the chaos seed via JITISE_CHAOS_SEED; every assertion holds
   for any seed. *)
let chaos_seed =
  match Sys.getenv_opt "JITISE_CHAOS_SEED" with
  | Some s -> int_of_string s
  | None -> 4207

let test_chaos_off_is_golden () =
  let plain = Core.Experiment.evaluate ~spec:Core.Spec.default db
      (find_workload "sor")
  in
  let supervised = evaluate "sor" in
  Alcotest.(check bool) "chaos-off run is byte-identical" true
    (project plain = project supervised)

let test_chaos_deterministic_across_jobs () =
  let chaos = U.Chaos.storm ~seed:chaos_seed in
  let policy =
    { U.Supervisor.default_policy with
      U.Supervisor.stage_deadline_seconds = Some 60.0 }
  in
  let serial = evaluate ~chaos ~policy "fft" in
  let parallel = evaluate ~jobs:4 ~chaos ~policy "fft" in
  Alcotest.(check bool) "serial and jobs:4 agree" true
    (project serial = project parallel)

let test_pool_crash_degrades_per_candidate () =
  (* Every fan-out worker crashes: each selected candidate degrades to
     software — flagged and billed — and the sweep still completes. *)
  let chaos =
    { U.Chaos.none with U.Chaos.enabled = true; seed = 1; pool_crash_rate = 1.0 }
  in
  let r = evaluate ~jobs:4 ~chaos "sor" in
  let rep = r.Core.Experiment.report in
  let n_sel = List.length rep.Core.Asip_sp.selection in
  Alcotest.(check bool) "candidates were selected" true (n_sel > 0);
  Alcotest.(check int) "no candidate reached hardware" 0
    (List.length rep.Core.Asip_sp.candidates);
  Alcotest.(check int) "every slot dropped" n_sel
    (List.length rep.Core.Asip_sp.dropped);
  Alcotest.(check int) "every drop flagged as a stage failure" n_sel
    rep.Core.Asip_sp.stage_failures;
  List.iter
    (fun (d : Core.Asip_sp.dropped) ->
      Alcotest.(check bool) "flagged" true
        (d.Core.Asip_sp.drop_reason = Core.Asip_sp.Stage_failure);
      Alcotest.(check (option Alcotest.reject)) "no CAD failure attached" None
        d.Core.Asip_sp.drop_failure)
    rep.Core.Asip_sp.dropped

let test_stage_crash_fails_run_after_retries () =
  (* Every stage execution crashes on every attempt: the first
     sequential stage exhausts its supervised attempts and the run
     fails loudly with Stage_failed — bounded, not hung. *)
  let chaos =
    { U.Chaos.none with
      U.Chaos.enabled = true;
      seed = 1;
      stage_crash_rate = 1.0 }
  in
  match evaluate ~chaos "sor" with
  | (_ : Core.Experiment.app_result) ->
      Alcotest.fail "expected Supervisor.Stage_failed"
  | exception U.Supervisor.Stage_failed f ->
      Alcotest.(check int) "all supervised attempts ran" 3
        f.U.Supervisor.f_attempts;
      (match f.U.Supervisor.f_error with
      | U.Supervisor.Crash _ -> ()
      | e ->
          Alcotest.failf "expected Crash, got %s" (U.Supervisor.error_name e));
      Alcotest.(check bool) "backoff waste accounted" true
        (f.U.Supervisor.f_wasted_seconds > 0.0)

let test_stage_stall_hits_deadline () =
  (* Every attempt stalls far past the per-stage deadline: each one is
     killed at the deadline and billed exactly the deadline. *)
  let chaos =
    { U.Chaos.none with
      U.Chaos.enabled = true;
      seed = 1;
      stage_stall_rate = 1.0;
      stage_stall_seconds = 1000.0 }
  in
  let policy =
    { U.Supervisor.default_policy with
      U.Supervisor.stage_deadline_seconds = Some 30.0 }
  in
  match evaluate ~chaos ~policy "sor" with
  | (_ : Core.Experiment.app_result) ->
      Alcotest.fail "expected Supervisor.Stage_failed"
  | exception U.Supervisor.Stage_failed f ->
      (match f.U.Supervisor.f_error with
      | U.Supervisor.Stage_deadline d ->
          Alcotest.(check (float 1e-9)) "killed at the deadline" 30.0 d
      | e ->
          Alcotest.failf "expected Stage_deadline, got %s"
            (U.Supervisor.error_name e));
      Alcotest.(check bool) "each kill billed the full deadline" true
        (f.U.Supervisor.f_wasted_seconds >= 90.0)

let test_chaotic_store_run_is_exact () =
  (* All store planes at once over a real disk root: reads error, writes
     drop, envelopes tear — the run must still produce exactly the
     store-less report (the store is an optimization, never an input),
     and a warm replay over the damaged root must agree too. *)
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jitise-chaos-test-%d" (Unix.getpid ()))
  in
  let rec rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun name ->
          let p = Filename.concat dir name in
          if Sys.is_directory p then rm_rf p else Sys.remove p)
        (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  rm_rf root;
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let chaos =
    { U.Chaos.none with
      U.Chaos.enabled = true;
      seed = chaos_seed;
      store_read_error_rate = 0.4;
      store_write_drop_rate = 0.4;
      store_torn_rate = 0.4 }
  in
  let eval_store () =
    let spec =
      Core.Spec.default |> Core.Spec.with_chaos chaos
      |> Core.Spec.with_store_dir root
    in
    Core.Experiment.evaluate ~spec db (find_workload "fft")
  in
  let baseline = Core.Experiment.evaluate ~spec:Core.Spec.default db
      (find_workload "fft")
  in
  let cold = eval_store () in
  let warm = eval_store () in
  Alcotest.(check bool) "chaotic store changes nothing" true
    (project baseline = project cold);
  Alcotest.(check bool) "warm replay over the damaged root agrees" true
    (project cold = project warm)

let () =
  Alcotest.run "chaos"
    [
      ( "pipeline",
        [
          Alcotest.test_case "chaos off is golden" `Quick
            test_chaos_off_is_golden;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_chaos_deterministic_across_jobs;
          Alcotest.test_case "pool crash degrades per candidate" `Quick
            test_pool_crash_degrades_per_candidate;
          Alcotest.test_case "stage crash fails the run" `Quick
            test_stage_crash_fails_run_after_retries;
          Alcotest.test_case "stage stall hits the deadline" `Quick
            test_stage_stall_hits_deadline;
          Alcotest.test_case "chaotic store is exact" `Quick
            test_chaotic_store_run_is_exact;
        ] );
    ]
