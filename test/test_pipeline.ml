(* The staged pipeline engine: content-addressed artifact store wired
   through the whole Experiment/Asip_sp chain.

   The acceptance bar of the refactor, verified here:

   - golden: with a stage cache, reports are identical (up to the
     measured wall-clock fields) to the store-less engine — in serial,
     jobs:4 and faults-on modes, on pinned seeds;
   - incremental: a sweep that varies only the selection knobs
     re-executes ZERO compile/profile/prune/MAXMISO stages — everything
     upstream of the changed knob is served from the store;
   - eviction-free determinism: re-evaluating against a warm store
     computes nothing and reproduces the same report. *)

module Vm = Jitise_vm
module W = Jitise_workloads
module Ise = Jitise_ise
module Pp = Jitise_pivpav
module Cad = Jitise_cad
module An = Jitise_analysis
module Core = Jitise_core
module U = Jitise_util

let find_workload name = Option.get (W.Registry.find name)

(* Two small embedded workloads that share a candidate signature, so
   the bitstream cache's cross-app path stays exercised alongside the
   stage cache. *)
let apps = [ "fft"; "sor" ]

let eval_apps ~spec db =
  List.map (fun n -> Core.Experiment.evaluate ~spec db (find_workload n)) apps

(* Same projection idea as test_integration: everything deterministic
   by construction, i.e. the report minus measured wall clocks and
   minus the stage-record log itself. *)
type candidate_projection = {
  p_signature : string;
  p_c2v : float;
  p_total : float;
  p_cache_hit : Cad.Cache.hit option;
  p_attempts : int;
  p_wasted : float;
}

type app_projection = {
  p_app : string;
  p_selection : string list;
  p_candidates : candidate_projection list;
  p_dropped : int;
  p_const : float;
  p_map : float;
  p_par : float;
  p_sum : float;
  p_attempts_total : int;
  p_failed : int;
  p_degraded : int;
  p_ratio : float;
  p_ratio_max : float;
  p_break_even : An.Breakeven.result;
}

let project (r : Core.Experiment.app_result) : app_projection =
  let rep = r.Core.Experiment.report in
  let signature (s : Ise.Select.scored) =
    s.Ise.Select.candidate.Ise.Candidate.signature
  in
  {
    p_app = r.Core.Experiment.workload.W.Workload.name;
    p_selection = List.map signature rep.Core.Asip_sp.selection;
    p_candidates =
      List.map
        (fun (c : Core.Asip_sp.candidate_result) ->
          {
            p_signature = signature c.Core.Asip_sp.scored;
            p_c2v = c.Core.Asip_sp.c2v_seconds;
            p_total = c.Core.Asip_sp.total_seconds;
            p_cache_hit = c.Core.Asip_sp.cache_hit;
            p_attempts = c.Core.Asip_sp.attempts;
            p_wasted = c.Core.Asip_sp.wasted_seconds;
          })
        rep.Core.Asip_sp.candidates;
    p_dropped = List.length rep.Core.Asip_sp.dropped;
    p_const = rep.Core.Asip_sp.const_seconds;
    p_map = rep.Core.Asip_sp.map_seconds;
    p_par = rep.Core.Asip_sp.par_seconds;
    p_sum = rep.Core.Asip_sp.sum_seconds;
    p_attempts_total = rep.Core.Asip_sp.total_attempts;
    p_failed = rep.Core.Asip_sp.failed_attempts;
    p_degraded = rep.Core.Asip_sp.degraded;
    p_ratio = rep.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio;
    p_ratio_max = rep.Core.Asip_sp.asip_ratio_max.Ise.Speedup.ratio;
    p_break_even = r.Core.Experiment.break_even;
  }

let check_identical what a b =
  List.iter2
    (fun x y ->
      let x = project x and y = project y in
      Alcotest.(check bool) (x.p_app ^ " " ^ what) true (x = y))
    a b

let records (r : Core.Experiment.app_result) =
  r.Core.Experiment.report.Core.Asip_sp.stage_records

(* CI pins the fault seed via JITISE_FAULT_SEED (same convention as
   test_integration); the assertions hold for any seed. *)
let fault_seed =
  match Sys.getenv_opt "JITISE_FAULT_SEED" with
  | Some s -> int_of_string s
  | None -> 20110516

(* ------------------------------------------------------------------ *)
(* Golden: staged engine = store-less engine, three modes              *)
(* ------------------------------------------------------------------ *)

let test_golden_serial () =
  let db = Pp.Database.create () in
  let plain = eval_apps ~spec:Core.Spec.default db in
  let store = U.Artifact.create () in
  let spec = Core.Spec.with_stage_cache store Core.Spec.default in
  let staged = eval_apps ~spec db in
  check_identical "report identical with stage cache (serial)" plain staged;
  (* Eviction-free determinism: a warm store recomputes nothing and
     changes nothing. *)
  let again = eval_apps ~spec db in
  check_identical "report identical against a warm store" staged again;
  List.iter
    (fun r ->
      List.iter
        (fun (s : Core.Pipeline.summary) ->
          Alcotest.(check int)
            ((project r).p_app ^ ": warm " ^ s.Core.Pipeline.sum_stage
           ^ " computes nothing")
            0 s.Core.Pipeline.sum_computed)
        (Core.Pipeline.summarize (records r)))
    again

let test_golden_jobs4 () =
  let db = Pp.Database.create () in
  let plain = eval_apps ~spec:Core.Spec.default db in
  let spec =
    Core.Spec.default |> Core.Spec.with_jobs 4
    |> Core.Spec.with_stage_cache (U.Artifact.create ())
  in
  let staged = eval_apps ~spec db in
  check_identical "report identical with stage cache (jobs:4)" plain staged

let test_golden_faults () =
  let with_faults spec =
    spec
    |> Core.Spec.with_faults (Cad.Faults.defaults ~seed:fault_seed)
    |> Core.Spec.with_retry
         (U.Retry.with_max_attempts 3 U.Retry.default)
  in
  let db = Pp.Database.create () in
  let plain = eval_apps ~spec:(with_faults Core.Spec.default) db in
  let serial_spec =
    with_faults
      (Core.Spec.with_stage_cache (U.Artifact.create ()) Core.Spec.default)
  in
  let staged = eval_apps ~spec:serial_spec db in
  check_identical "faulted report identical with stage cache" plain staged;
  let parallel_spec =
    with_faults
      (Core.Spec.default |> Core.Spec.with_jobs 4
      |> Core.Spec.with_stage_cache (U.Artifact.create ()))
  in
  let parallel = eval_apps ~spec:parallel_spec db in
  check_identical "faulted report identical with stage cache (jobs:4)" plain
    parallel

(* ------------------------------------------------------------------ *)
(* Golden: the disk backend changes nothing but persistence            *)
(* ------------------------------------------------------------------ *)

let tmp_root () =
  let path = Filename.temp_file "jitise-pipeline-store" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun name ->
        let p = Filename.concat dir name in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_root f =
  let root = tmp_root () in
  Fun.protect ~finally:(fun () -> rm_rf root) (fun () -> f root)

let total_computed rs =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc (s : Core.Pipeline.summary) ->
          acc + s.Core.Pipeline.sum_computed)
        acc
        (Core.Pipeline.summarize (records r)))
    0 rs

let test_golden_disk_serial () =
  with_root (fun root ->
      let db = Pp.Database.create () in
      let plain = eval_apps ~spec:Core.Spec.default db in
      let cold = eval_apps ~spec:(Core.Spec.with_store_dir root Core.Spec.default) db in
      check_identical "report identical with disk store (cold)" plain cold;
      (* The warm-restart contract: a NEW spec over the same root is a
         fresh process as far as the store is concerned — every hit
         crosses the serialization boundary — and must recompute ZERO
         stages while reproducing the report. *)
      let warm = eval_apps ~spec:(Core.Spec.with_store_dir root Core.Spec.default) db in
      check_identical "report identical after warm restart" cold warm;
      Alcotest.(check int) "warm restart computes nothing" 0
        (total_computed warm))

let test_golden_disk_jobs4 () =
  with_root (fun root ->
      let db = Pp.Database.create () in
      let plain = eval_apps ~spec:Core.Spec.default db in
      let spec dir =
        Core.Spec.default |> Core.Spec.with_jobs 4
        |> Core.Spec.with_store_dir dir
      in
      let cold = eval_apps ~spec:(spec root) db in
      check_identical "report identical with disk store (jobs:4)" plain cold;
      let warm = eval_apps ~spec:(spec root) db in
      check_identical "report identical after warm restart (jobs:4)" plain
        warm)

let test_golden_disk_faults () =
  with_root (fun root ->
      let with_faults spec =
        spec
        |> Core.Spec.with_faults (Cad.Faults.defaults ~seed:fault_seed)
        |> Core.Spec.with_retry (U.Retry.with_max_attempts 3 U.Retry.default)
      in
      let db = Pp.Database.create () in
      let plain = eval_apps ~spec:(with_faults Core.Spec.default) db in
      let spec () = with_faults (Core.Spec.with_store_dir root Core.Spec.default) in
      let cold = eval_apps ~spec:(spec ()) db in
      check_identical "faulted report identical with disk store" plain cold;
      let warm = eval_apps ~spec:(spec ()) db in
      check_identical "faulted report identical after warm restart" plain warm;
      Alcotest.(check int) "faulted warm restart computes nothing" 0
        (total_computed warm))

(* Corrupt and truncate store files under a warm root: the affected
   stages silently recompute, the report does not change, and the
   defective entries are the only extra computes. *)
let test_disk_corruption_degrades_to_recompute () =
  with_root (fun root ->
      let db = Pp.Database.create () in
      let spec () = Core.Spec.with_store_dir root Core.Spec.default in
      let cold = eval_apps ~spec:(spec ()) db in
      (* Damage every entry of two stages, differently. *)
      let damage stage f =
        let dir = Filename.concat root stage in
        Array.iter (fun name -> f (Filename.concat dir name)) (Sys.readdir dir)
      in
      damage "compile" (fun path ->
          let len = (Unix.stat path).Unix.st_size in
          Unix.truncate path (len / 3));
      damage "coverage" (fun path ->
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc "JTSEgarbage that is no envelope"));
      let warm = eval_apps ~spec:(spec ()) db in
      check_identical "report identical despite corrupt entries" cold warm;
      List.iter
        (fun r ->
          let app = (project r).p_app in
          List.iter
            (fun stage ->
              Alcotest.(check int)
                (Printf.sprintf "%s recomputes damaged %s" app stage)
                1
                (Core.Pipeline.computed_of (records r) stage))
            [ "compile"; "coverage" ];
          List.iter
            (fun stage ->
              Alcotest.(check int)
                (Printf.sprintf "%s still hits intact %s" app stage)
                0
                (Core.Pipeline.computed_of (records r) stage))
            [ "profile"; "kernel"; "prune"; "maxmiso"; "select" ])
        warm;
      (* The recomputed artifacts do not replace the damaged files (first
         put wins only for *valid* entries — the byte layer sees the
         corrupt file as present), so a THIRD run must behave like the
         second: recompute the damaged stages, hit everything else,
         report unchanged. *)
      let third = eval_apps ~spec:(spec ()) db in
      check_identical "third run still identical" cold third)

(* ------------------------------------------------------------------ *)
(* Incremental recomputation                                           *)
(* ------------------------------------------------------------------ *)

(* The headline acceptance criterion: across sweep points that vary
   only the selection knobs, the stages upstream of selection are never
   re-executed — every one is a stage-cache hit.  Serial on purpose:
   hit/miss *counters* are scheduling-dependent under jobs > 1 (values
   are not), so exact-count assertions need the deterministic
   schedule. *)
let test_selection_sweep_zero_recompute () =
  let db = Pp.Database.create () in
  let store = U.Artifact.create () in
  let select_variants =
    [
      Ise.Select.default_config;
      { Ise.Select.default_config with Ise.Select.max_candidates = Some 2 };
      { Ise.Select.default_config with Ise.Select.max_candidates = Some 1 };
    ]
  in
  let upstream =
    [ "compile"; "profile"; "coverage"; "kernel"; "search-reference";
      "prune"; "maxmiso" ]
  in
  let runs =
    List.map
      (fun sel ->
        let spec =
          Core.Spec.default |> Core.Spec.with_select sel
          |> Core.Spec.with_stage_cache store
        in
        eval_apps ~spec db)
      select_variants
  in
  (* Sweep point 1 computes everything... *)
  List.iter
    (fun r ->
      List.iter
        (fun stage ->
          Alcotest.(check int)
            ((project r).p_app ^ " point 1 computes " ^ stage)
            1
            (Core.Pipeline.computed_of (records r) stage))
        upstream)
    (List.hd runs);
  (* ...and every later point re-executes ZERO upstream stages. *)
  List.iteri
    (fun i point ->
      List.iter
        (fun r ->
          let app = (project r).p_app in
          let recs = records r in
          List.iter
            (fun stage ->
              Alcotest.(check int)
                (Printf.sprintf "%s point %d recomputes no %s" app (i + 2)
                   stage)
                0
                (Core.Pipeline.computed_of recs stage);
              Alcotest.(check int)
                (Printf.sprintf "%s point %d hits %s" app (i + 2) stage)
                1
                (Core.Pipeline.hits_of recs stage))
            upstream;
          (* The changed knob is downstream: selection DOES recompute. *)
          Alcotest.(check int)
            (Printf.sprintf "%s point %d recomputes select" app (i + 2))
            1
            (Core.Pipeline.computed_of recs "select"))
        point)
    (List.tl runs);
  (* The store agrees: one computation per app for each upstream stage
     over the whole sweep, the rest hits. *)
  let stats = U.Artifact.stats store in
  let by name =
    List.find (fun s -> s.U.Artifact.stage = name) stats.U.Artifact.by_stage
  in
  List.iter
    (fun stage ->
      Alcotest.(check int)
        (stage ^ " computed once per app over the sweep")
        (List.length apps)
        (by stage).U.Artifact.computed;
      Alcotest.(check int)
        (stage ^ " hit on every later point")
        (List.length apps * (List.length select_variants - 1))
        (by stage).U.Artifact.local_hits)
    upstream;
  Alcotest.(check bool) "the sweep saved stage executions" true
    (stats.U.Artifact.total_local_hits > 0)

(* ------------------------------------------------------------------ *)
(* Stage records as a consumable surface                               *)
(* ------------------------------------------------------------------ *)

let test_stage_records_cover_the_chain () =
  let db = Pp.Database.create () in
  let r =
    Core.Experiment.evaluate ~spec:Core.Spec.default db (find_workload "sor")
  in
  let stages =
    List.sort_uniq compare
      (List.map (fun x -> x.Core.Pipeline.rec_stage) (records r))
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("records include " ^ s) true (List.mem s stages))
    [ "compile"; "profile"; "coverage"; "kernel"; "search-reference";
      "prune"; "maxmiso"; "select"; "alternates"; "vhdl"; "implement" ];
  (* Without a store everything is computed, and the implemented
     candidates each ran vhdl + implement. *)
  let ncand =
    List.length r.Core.Experiment.report.Core.Asip_sp.selection
  in
  Alcotest.(check int) "one vhdl execution per selected candidate" ncand
    (Core.Pipeline.computed_of (records r) "vhdl");
  Alcotest.(check int) "no hits without a store" 0
    (List.length (records r)
    - List.fold_left
        (fun acc (s : Core.Pipeline.summary) ->
          acc + s.Core.Pipeline.sum_computed)
        0
        (Core.Pipeline.summarize (records r)));
  (* The timeline surfaces the per-stage search events. *)
  let t = Core.Jit_manager.timeline r.Core.Experiment.report in
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        ("timeline has a search-stage event for " ^ stage)
        true
        (List.exists
           (fun (e : Core.Jit_manager.event) ->
             contains e.Core.Jit_manager.what ("search stage " ^ stage))
           t.Core.Jit_manager.events))
    [ "prune"; "maxmiso"; "select" ]

let () =
  Alcotest.run "pipeline-engine"
    [
      ( "golden",
        [
          Alcotest.test_case "serial" `Slow test_golden_serial;
          Alcotest.test_case "jobs:4" `Slow test_golden_jobs4;
          Alcotest.test_case "faults on" `Slow test_golden_faults;
        ] );
      ( "disk backend",
        [
          Alcotest.test_case "serial + warm restart" `Slow
            test_golden_disk_serial;
          Alcotest.test_case "jobs:4 + warm restart" `Slow
            test_golden_disk_jobs4;
          Alcotest.test_case "faults + warm restart" `Slow
            test_golden_disk_faults;
          Alcotest.test_case "corruption degrades to recompute" `Slow
            test_disk_corruption_degrades_to_recompute;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "selection sweep recomputes nothing upstream"
            `Slow test_selection_sweep_zero_recompute;
        ] );
      ( "records",
        [
          Alcotest.test_case "cover the chain" `Slow
            test_stage_records_cover_the_chain;
        ] );
    ]
