(* End-to-end integration: the full just-in-time ISE pipeline of
   Figure 1, from MiniC source to an adapted binary running on the
   modelled Woolcano ASIP, plus cross-checks between the analyses. *)

module Ir = Jitise_ir
module F = Jitise_frontend
module Vm = Jitise_vm
module W = Jitise_workloads
module Ise = Jitise_ise
module Pp = Jitise_pivpav
module Cad = Jitise_cad
module Wool = Jitise_woolcano
module An = Jitise_analysis
module Core = Jitise_core

let db = Pp.Database.create ()

(* The complete flow on one embedded workload, small dataset. *)
let test_full_pipeline_fft () =
  let w = Option.get (W.Registry.find "fft") in
  (* 1. compile to bitcode *)
  let r = W.Workload.compile w in
  Alcotest.(check (list string)) "bitcode verifies" []
    (List.map
       (Format.asprintf "%a" Ir.Verifier.pp_error)
       (Ir.Verifier.check_module r.F.Compiler.modul));
  (* 2. profiled VM execution *)
  let d = { (List.hd w.W.Workload.datasets) with W.Workload.n = 12 } in
  let out = W.Workload.run r d in
  Alcotest.(check bool) "profile collected" true
    (Vm.Profile.to_list out.Vm.Machine.profile <> []);
  (* 3. ASIP specialization *)
  let report =
    Core.Asip_sp.run_spec db r.F.Compiler.modul out.Vm.Machine.profile
      ~total_cycles:out.Vm.Machine.native_cycles
  in
  Alcotest.(check bool) "candidates implemented" true
    (report.Core.Asip_sp.candidates <> []);
  (* 4. every bitstream loads into the modelled Woolcano ASIP *)
  let asip = Wool.Asip.create () in
  List.iter
    (fun (c : Core.Asip_sp.candidate_result) ->
      ignore (Wool.Asip.load asip c.Core.Asip_sp.run.Cad.Flow.bitstream))
    report.Core.Asip_sp.candidates;
  Alcotest.(check bool) "reconfiguration time accounted" true
    (asip.Wool.Asip.reconfig_seconds > 0.0);
  (* 5. binary adaptation, re-run, identical results, faster clock *)
  let adapted = Core.Adapt.apply r.F.Compiler.modul report.Core.Asip_sp.selection in
  let out2 =
    Vm.Machine.run adapted.Core.Adapt.modul ~entry:"main"
      ~cis:adapted.Core.Adapt.registry
      ~args:[ Ir.Eval.VInt (Int64.of_int d.W.Workload.n) ]
  in
  Alcotest.(check bool) "adapted result identical" true
    (out.Vm.Machine.ret = out2.Vm.Machine.ret);
  Alcotest.(check bool) "adapted binary is faster" true
    (out2.Vm.Machine.native_cycles < out.Vm.Machine.native_cycles);
  (* 6. the speedup the VM measures equals the report's prediction *)
  let measured = out.Vm.Machine.native_cycles /. out2.Vm.Machine.native_cycles in
  Alcotest.(check bool) "prediction within 2%" true
    (abs_float (measured -. report.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio)
     /. measured
    < 0.02)

(* Adapted-binary equivalence across a sweep of workloads. *)
let test_adaptation_equivalence_sweep () =
  List.iter
    (fun name ->
      let w = Option.get (W.Registry.find name) in
      let r = W.Workload.compile w in
      let d0 = List.hd w.W.Workload.datasets in
      let d = { d0 with W.Workload.n = max 1 (d0.W.Workload.n / 20) } in
      let out = W.Workload.run r d in
      let report =
        Core.Asip_sp.run_spec db r.F.Compiler.modul out.Vm.Machine.profile
          ~total_cycles:out.Vm.Machine.native_cycles
      in
      let adapted =
        Core.Adapt.apply r.F.Compiler.modul report.Core.Asip_sp.selection
      in
      let out2 =
        Vm.Machine.run adapted.Core.Adapt.modul ~entry:"main"
          ~cis:adapted.Core.Adapt.registry
          ~args:[ Ir.Eval.VInt (Int64.of_int d.W.Workload.n) ]
      in
      Alcotest.(check bool) (name ^ " equivalent after adaptation") true
        (out.Vm.Machine.ret = out2.Vm.Machine.ret))
    [ "sor"; "whetstone"; "adpcm"; "433.milc"; "458.sjeng"; "470.lbm" ]

(* The three analyses agree with each other on a full app result. *)
let test_cross_analysis_consistency () =
  let w = Option.get (W.Registry.find "whetstone") in
  let r = Core.Experiment.evaluate db w in
  (* kernel time coverage >= 90 *)
  Alcotest.(check bool) "kernel covers 90%" true
    (r.Core.Experiment.kernel.An.Kernel.time_percent >= 90.0);
  (* coverage percentages sum to 100 *)
  let live, dead, const = An.Coverage.percentages r.Core.Experiment.coverage in
  Alcotest.(check (float 1e-6)) "coverage sums" 100.0 (live +. dead +. const);
  (* the break-even recomputed from the split matches the report *)
  let be =
    An.Breakeven.of_split r.Core.Experiment.split
      ~overhead_seconds:r.Core.Experiment.report.Core.Asip_sp.sum_seconds
  in
  Alcotest.(check bool) "break-even reproducible" true
    (be = r.Core.Experiment.break_even);
  (* Table IV's zero-cache, zero-speedup cell equals the plain
     break-even when no duplicate signatures exist; with duplicates it
     can only be earlier *)
  let costs = Core.Asip_sp.candidate_costs r.Core.Experiment.report in
  let residual =
    An.Cache_model.residual_overhead ~hit_rate:0.0 ~cad_speedup:0.0 costs
  in
  Alcotest.(check bool) "cache(0) <= raw overhead" true
    (residual <= r.Core.Experiment.report.Core.Asip_sp.sum_seconds +. 1e-6)

(* The headline claim of the paper, on our substrate: embedded
   applications reach break-even, and pruning pays for itself. *)
let test_embedded_break_even_exists () =
  let w = Option.get (W.Registry.find "sor") in
  let r = Core.Experiment.evaluate db w in
  (match r.Core.Experiment.break_even with
  | An.Breakeven.After t ->
      Alcotest.(check bool) "sor amortizes within a day" true (t < 86_400.0)
  | An.Breakeven.Never -> Alcotest.fail "sor must reach break-even");
  Alcotest.(check bool) "sor speedup > 2" true
    (r.Core.Experiment.report.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio > 2.0)

let test_pruning_efficiency_worthwhile () =
  (* identification over the pruned blocks must be faster than over the
     whole program *)
  let w = Option.get (W.Registry.find "458.sjeng") in
  let r = Core.Experiment.evaluate db w in
  let rep = r.Core.Experiment.report in
  Alcotest.(check bool) "pruned search faster than full search" true
    (rep.Core.Asip_sp.search_wall_seconds
    < rep.Core.Asip_sp.search_wall_seconds_nopruning)

(* ------------------------------------------------------------------ *)
(* The parallel sweep engine                                           *)
(* ------------------------------------------------------------------ *)

(* Everything in an app_result that is deterministic by construction —
   i.e. all of it except the measured wall-clock fields
   (search_wall_seconds and friends), which can never be bit-equal
   between two runs. *)
type candidate_projection = {
  p_signature : string;
  p_c2v : float;
  p_total : float;
  p_cache_hit : Cad.Cache.hit option;
}

type app_projection = {
  p_app : string;
  p_selection : string list;
  p_candidates : candidate_projection list;
  p_const : float;
  p_map : float;
  p_par : float;
  p_sum : float;
  p_ratio : float;
  p_ratio_max : float;
  p_break_even : An.Breakeven.result;
}

let project (r : Core.Experiment.app_result) : app_projection =
  let rep = r.Core.Experiment.report in
  let signature (s : Ise.Select.scored) =
    s.Ise.Select.candidate.Ise.Candidate.signature
  in
  {
    p_app = r.Core.Experiment.workload.W.Workload.name;
    p_selection = List.map signature rep.Core.Asip_sp.selection;
    p_candidates =
      List.map
        (fun (c : Core.Asip_sp.candidate_result) ->
          {
            p_signature = signature c.Core.Asip_sp.scored;
            p_c2v = c.Core.Asip_sp.c2v_seconds;
            p_total = c.Core.Asip_sp.total_seconds;
            p_cache_hit = c.Core.Asip_sp.cache_hit;
          })
        rep.Core.Asip_sp.candidates;
    p_const = rep.Core.Asip_sp.const_seconds;
    p_map = rep.Core.Asip_sp.map_seconds;
    p_par = rep.Core.Asip_sp.par_seconds;
    p_sum = rep.Core.Asip_sp.sum_seconds;
    p_ratio = rep.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio;
    p_ratio_max = rep.Core.Asip_sp.asip_ratio_max.Ise.Speedup.ratio;
    p_break_even = r.Core.Experiment.break_even;
  }

(* ISSUE acceptance: a parallel sweep with a shared cache is
   report-identical to a serial one, and the full sweep crosses
   application boundaries in the cache at least once. *)
let test_parallel_sweep_deterministic () =
  let sweep jobs cache =
    let spec =
      Core.Spec.default |> Core.Spec.with_jobs jobs
      |> Core.Spec.with_cache cache
    in
    Core.Experiment.sweep ~spec (Pp.Database.create ())
  in
  let c_serial = Cad.Cache.create () and c_parallel = Cad.Cache.create () in
  let serial = sweep 1 c_serial and parallel = sweep 4 c_parallel in
  Alcotest.(check int) "same number of applications" (List.length serial)
    (List.length parallel);
  List.iter2
    (fun s p ->
      let s = project s and p = project p in
      Alcotest.(check bool)
        (s.p_app ^ " report identical under jobs:4")
        true (s = p))
    serial parallel;
  let ss = Cad.Cache.stats c_serial and ps = Cad.Cache.stats c_parallel in
  Alcotest.(check int) "same cache entries" ss.Cad.Cache.entries
    ps.Cad.Cache.entries;
  Alcotest.(check int) "same local hits" ss.Cad.Cache.local_hits
    ps.Cad.Cache.local_hits;
  Alcotest.(check int) "same shared hits" ss.Cad.Cache.shared_hits
    ps.Cad.Cache.shared_hits;
  Alcotest.(check (list (pair string int))) "same per-app attribution"
    ss.Cad.Cache.by_app ps.Cad.Cache.by_app;
  Alcotest.(check bool) "at least one cross-application hit" true
    (ss.Cad.Cache.shared_hits >= 1)

(* Fault injection composes with the parallel sweep engine: rolls are
   keyed by candidate signature and attempt, never by scheduling, so a
   faulted jobs:4 sweep reproduces the serial reports exactly.  The
   assertions hold for any seed; CI pins one via JITISE_FAULT_SEED so
   every push exercises the same recovery paths. *)
let fault_seed =
  match Sys.getenv_opt "JITISE_FAULT_SEED" with
  | Some s -> int_of_string s
  | None -> 20110516

let test_faulted_parallel_sweep_deterministic () =
  let sweep jobs cache =
    let spec =
      Core.Spec.default |> Core.Spec.with_jobs jobs
      |> Core.Spec.with_cache cache
      |> Core.Spec.with_faults (Cad.Faults.defaults ~seed:fault_seed)
      |> Core.Spec.with_retry
           (Jitise_util.Retry.with_max_attempts 3 Jitise_util.Retry.default)
    in
    Core.Experiment.sweep ~spec (Pp.Database.create ())
  in
  let serial = sweep 1 (Cad.Cache.create ())
  and parallel = sweep 4 (Cad.Cache.create ()) in
  let fault_stats (r : Core.Experiment.app_result) =
    let rep = r.Core.Experiment.report in
    ( rep.Core.Asip_sp.total_attempts,
      rep.Core.Asip_sp.failed_attempts,
      rep.Core.Asip_sp.degraded,
      List.length rep.Core.Asip_sp.dropped,
      rep.Core.Asip_sp.wasted_seconds )
  in
  List.iter2
    (fun s p ->
      Alcotest.(check bool)
        ((project s).p_app ^ " faulted report identical under jobs:4")
        true
        (project s = project p);
      Alcotest.(check bool)
        ((project s).p_app ^ " fault accounting identical")
        true
        (fault_stats s = fault_stats p))
    serial parallel;
  let failed =
    List.fold_left
      (fun a (r : Core.Experiment.app_result) ->
        a + r.Core.Experiment.report.Core.Asip_sp.failed_attempts)
      0 serial
  in
  Alcotest.(check bool) "the sweep exercised the fault path" true (failed > 0)

(* Two workloads with a common candidate signature share bitstreams. *)
let test_shared_cache_across_two_workloads () =
  let cache = Cad.Cache.create () in
  let spec = Core.Spec.with_cache cache Core.Spec.default in
  let db = Pp.Database.create () in
  let eval name = Core.Experiment.evaluate ~spec db (Option.get (W.Registry.find name)) in
  let _first = eval "fft" in
  let second = eval "sor" in
  let local, shared =
    Core.Asip_sp.cache_hit_counts second.Core.Experiment.report
  in
  Alcotest.(check bool) "second app hits the first app's bitstreams" true
    (shared >= 1);
  let s = Cad.Cache.stats cache in
  Alcotest.(check int) "report and cache agree on shared hits"
    s.Cad.Cache.shared_hits shared;
  Alcotest.(check bool) "local reuse still detected" true (local >= 0);
  (* every hit zeroes the candidate's accounted cost *)
  List.iter
    (fun (c : Core.Asip_sp.candidate_result) ->
      match c.Core.Asip_sp.cache_hit with
      | Some _ ->
          Alcotest.(check (float 1e-9)) "hit costs nothing" 0.0
            c.Core.Asip_sp.total_seconds
      | None ->
          Alcotest.(check bool) "miss pays the CAD bill" true
            (c.Core.Asip_sp.total_seconds > 0.0))
    second.Core.Experiment.report.Core.Asip_sp.candidates

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "fft end-to-end" `Slow test_full_pipeline_fft;
          Alcotest.test_case "equivalence sweep" `Slow
            test_adaptation_equivalence_sweep;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "cross analysis" `Slow test_cross_analysis_consistency;
          Alcotest.test_case "embedded break-even" `Slow
            test_embedded_break_even_exists;
          Alcotest.test_case "pruning worthwhile" `Slow
            test_pruning_efficiency_worthwhile;
        ] );
      ( "sweep engine",
        [
          Alcotest.test_case "parallel determinism" `Slow
            test_parallel_sweep_deterministic;
          Alcotest.test_case "faulted parallel determinism" `Slow
            test_faulted_parallel_sweep_deterministic;
          Alcotest.test_case "shared cache across apps" `Slow
            test_shared_cache_across_two_workloads;
        ] );
    ]
