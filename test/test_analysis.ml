(* Tests for Jitise_analysis: coverage classification, kernel size,
   break-even model, bitstream cache extrapolation. *)

module Ir = Jitise_ir
module Vm = Jitise_vm
module F = Jitise_frontend
module Ise = Jitise_ise
module An = Jitise_analysis

let compile src = (F.Compiler.compile_string ~name:"t" src).F.Compiler.modul

let run m n =
  Vm.Machine.run m ~entry:"main" ~args:[ Ir.Eval.VInt (Int64.of_int n) ]

(* A program with all three coverage classes: a fixed-trip init loop
   (constant), an n-dependent loop (live), and a guarded branch that
   never runs (dead). *)
let coverage_src =
  "int tbl[16];\n\
   int never(int x) { return x * 99; }\n\
   int main(int n) {\n\
  \  int i;\n\
  \  int s = 0;\n\
  \  for (i = 0; i < 16; i = i + 1) { tbl[i] = i * 3; }\n\
  \  for (i = 0; i < n; i = i + 1) { s = s + tbl[i & 15]; }\n\
  \  if (s < -1000000) { s = never(s); }\n\
  \  return s;\n\
   }"

let classify () =
  let m = compile coverage_src in
  let o1 = run m 100 and o2 = run m 200 in
  (m, An.Coverage.classify m [ o1.Vm.Machine.profile; o2.Vm.Machine.profile ])

let test_coverage_classes () =
  let m, cov = classify () in
  ignore m;
  Alcotest.(check bool) "live code found" true (cov.An.Coverage.live_instrs > 0);
  Alcotest.(check bool) "const code found" true (cov.An.Coverage.const_instrs > 0);
  Alcotest.(check bool) "dead code found" true (cov.An.Coverage.dead_instrs > 0);
  let live, dead, const = An.Coverage.percentages cov in
  Alcotest.(check (float 1e-6)) "percentages sum to 100" 100.0
    (live +. dead +. const);
  (* the never() function is entirely dead *)
  Alcotest.(check bool) "never() is dead" true
    (An.Coverage.class_of cov ~func:"never" ~label:0 = An.Coverage.Dead)

let test_coverage_requires_two_profiles () =
  let m = compile coverage_src in
  let o = run m 50 in
  Alcotest.(check bool) "one profile rejected" true
    (try
       ignore (An.Coverage.classify m [ o.Vm.Machine.profile ]);
       false
     with Invalid_argument _ -> true)

let test_coverage_live_blocks_vary () =
  let m, cov = classify () in
  ignore m;
  List.iter
    (fun (b : An.Coverage.block_class) ->
      match b.An.Coverage.classification with
      | An.Coverage.Live -> (
          match b.An.Coverage.frequencies with
          | a :: rest ->
              Alcotest.(check bool) "live varies" true
                (List.exists (fun c -> c <> a) rest)
          | [] -> ())
      | An.Coverage.Constant -> (
          match b.An.Coverage.frequencies with
          | a :: rest ->
              Alcotest.(check bool) "const stable nonzero" true
                (a > 0L && List.for_all (fun c -> c = a) rest)
          | [] -> ())
      | An.Coverage.Dead ->
          Alcotest.(check bool) "dead never runs" true
            (List.for_all (fun c -> c = 0L) b.An.Coverage.frequencies))
    cov.An.Coverage.blocks

(* ------------------------------------------------------------------ *)
(* Kernel                                                              *)
(* ------------------------------------------------------------------ *)

let test_kernel_computation () =
  let m = compile coverage_src in
  let o = run m 10_000 in
  let k = An.Kernel.compute m o.Vm.Machine.profile in
  Alcotest.(check bool) "kernel covers >= 90% of time" true
    (k.An.Kernel.time_percent >= 90.0);
  Alcotest.(check bool) "kernel is a strict subset" true
    (k.An.Kernel.kernel_instrs < k.An.Kernel.total_instrs);
  Alcotest.(check bool) "size percent consistent" true
    (abs_float
       (k.An.Kernel.size_percent
       -. 100.0
          *. float_of_int k.An.Kernel.kernel_instrs
          /. float_of_int k.An.Kernel.total_instrs)
    < 1e-6)

let test_kernel_threshold () =
  let m = compile coverage_src in
  let o = run m 10_000 in
  let k50 = An.Kernel.compute ~threshold_percent:50.0 m o.Vm.Machine.profile in
  let k95 = An.Kernel.compute ~threshold_percent:95.0 m o.Vm.Machine.profile in
  Alcotest.(check bool) "higher threshold, bigger kernel" true
    (List.length k95.An.Kernel.blocks >= List.length k50.An.Kernel.blocks)

(* ------------------------------------------------------------------ *)
(* Break-even                                                          *)
(* ------------------------------------------------------------------ *)

let split ~live_cycles ~const_cycles ~live_saved ~const_saved =
  { An.Breakeven.live_cycles; const_cycles; live_saved; const_saved }

let after = function
  | An.Breakeven.After s -> s
  | An.Breakeven.Never -> Alcotest.fail "expected finite break-even"

let test_breakeven_never () =
  let s = split ~live_cycles:1e6 ~const_cycles:1e5 ~live_saved:0.0 ~const_saved:0.0 in
  Alcotest.(check bool) "no savings, never" true
    (An.Breakeven.of_split s ~overhead_seconds:100.0 = An.Breakeven.Never);
  (* only one-time savings cannot amortize a larger overhead *)
  let s = split ~live_cycles:1e6 ~const_cycles:1e5 ~live_saved:0.0 ~const_saved:100.0 in
  Alcotest.(check bool) "const-only savings too small" true
    (An.Breakeven.of_split s ~overhead_seconds:100.0 = An.Breakeven.Never)

let test_breakeven_within_first_run () =
  let ct = Ir.Cost.cycle_time in
  (* the app saves 1e6 cycles per run; overhead worth 5e5 cycles *)
  let s = split ~live_cycles:2e6 ~const_cycles:0.0 ~live_saved:1e6 ~const_saved:0.0 in
  let t = after (An.Breakeven.of_split s ~overhead_seconds:(5e5 *. ct)) in
  (* half the run: (2e6 - 1e6)/2 cycles of adapted time *)
  Alcotest.(check (float 1e-9)) "half the adapted run" (5e5 *. ct) t

let test_breakeven_scaling_run () =
  let ct = Ir.Cost.cycle_time in
  (* needs x4 the baseline input: overhead = 4e6 saved cycles, run saves
     1e6 per baseline unit *)
  let s = split ~live_cycles:2e6 ~const_cycles:0.0 ~live_saved:1e6 ~const_saved:0.0 in
  let t = after (An.Breakeven.of_split s ~overhead_seconds:(4e6 *. ct)) in
  Alcotest.(check (float 1e-6)) "x4 scaled adapted time" (4.0 *. (2e6 -. 1e6) *. ct) t

let test_breakeven_monotone_in_overhead () =
  let s = split ~live_cycles:5e6 ~const_cycles:1e6 ~live_saved:2e6 ~const_saved:1e5 in
  let t1 = after (An.Breakeven.of_split s ~overhead_seconds:1.0) in
  let t2 = after (An.Breakeven.of_split s ~overhead_seconds:10.0) in
  Alcotest.(check bool) "more overhead, later break-even" true (t2 > t1)

let test_breakeven_const_savings_help () =
  let base = split ~live_cycles:5e6 ~const_cycles:1e6 ~live_saved:1e5 ~const_saved:0.0 in
  let boosted = { base with An.Breakeven.const_saved = 5e4 } in
  let t_base = after (An.Breakeven.of_split base ~overhead_seconds:10.0) in
  let t_boost = after (An.Breakeven.of_split boosted ~overhead_seconds:10.0) in
  Alcotest.(check bool) "one-time savings shorten break-even" true
    (t_boost < t_base)

let test_breakeven_split_costs () =
  let m = compile coverage_src in
  let o1 = run m 2000 and o2 = run m 4000 in
  let cov = An.Coverage.classify m [ o1.Vm.Machine.profile; o2.Vm.Machine.profile ] in
  let db = Jitise_pivpav.Database.create () in
  let cands = Ise.Maxmiso.of_module m in
  let sel = Ise.Select.select db m o1.Vm.Machine.profile cands in
  let s = An.Breakeven.split_costs m o1.Vm.Machine.profile cov sel in
  Alcotest.(check bool) "live cycles dominate this program" true
    (s.An.Breakeven.live_cycles > s.An.Breakeven.const_cycles);
  Alcotest.(check bool) "savings split consistent" true
    (s.An.Breakeven.live_saved +. s.An.Breakeven.const_saved
    <= List.fold_left (fun a x -> a +. x.Ise.Select.saved_cycles) 0.0 sel +. 1e-9)

(* Epsilon-aware comparisons: the boundary cases that used to fall to
   raw float equality. *)

let test_breakeven_epsilon_helpers () =
  Alcotest.(check bool) "equal is approx_le" true
    (An.Breakeven.approx_le 1.0 1.0);
  Alcotest.(check bool) "within one ulp-ish is approx_le" true
    (An.Breakeven.approx_le (0.1 +. 0.2) 0.3);
  Alcotest.(check bool) "clearly greater is not" false
    (An.Breakeven.approx_le 1.0001 1.0);
  Alcotest.(check bool) "approx_ge mirrors" true
    (An.Breakeven.approx_ge 0.3 (0.1 +. 0.2));
  (* relative scaling: a billion-cycle total tolerates a billion-scaled
     epsilon, not an absolute 1e-9 *)
  Alcotest.(check bool) "relative epsilon at large magnitudes" true
    (An.Breakeven.approx_le (1e12 +. 1e-3) 1e12);
  Alcotest.(check bool) "zero is not definitely positive" false
    (An.Breakeven.definitely_pos 0.0);
  Alcotest.(check bool) "sub-epsilon is not definitely positive" false
    (An.Breakeven.definitely_pos 1e-12);
  Alcotest.(check bool) "real value is definitely positive" true
    (An.Breakeven.definitely_pos 1e-3)

let test_breakeven_worthwhile_boundary () =
  Alcotest.(check bool) "foregone beyond overhead" true
    (An.Breakeven.worthwhile ~overhead_seconds:1.0 ~foregone_seconds:2.0);
  Alcotest.(check bool) "exact equality counts (ski rental)" true
    (An.Breakeven.worthwhile ~overhead_seconds:1.0 ~foregone_seconds:1.0);
  Alcotest.(check bool) "float-noise equality counts" true
    (An.Breakeven.worthwhile ~overhead_seconds:0.3
       ~foregone_seconds:(0.1 +. 0.2));
  Alcotest.(check bool) "below overhead is not worthwhile" false
    (An.Breakeven.worthwhile ~overhead_seconds:1.0 ~foregone_seconds:0.5);
  Alcotest.(check bool) "zero foregone never invests" false
    (An.Breakeven.worthwhile ~overhead_seconds:0.0 ~foregone_seconds:0.0)

let test_breakeven_of_split_boundary () =
  let ct = Ir.Cost.cycle_time in
  (* overhead exactly equal to one run's savings: the boundary must land
     in the within-first-run branch, not fall through to scale-out. *)
  let s =
    split ~live_cycles:2e6 ~const_cycles:0.0 ~live_saved:1e6 ~const_saved:0.0
  in
  let t = after (An.Breakeven.of_split s ~overhead_seconds:(1e6 *. ct)) in
  Alcotest.(check (float 1e-9)) "boundary amortizes within the run"
    (1e6 *. ct) t;
  (* infinitesimal savings are Never, not a near-infinite After *)
  let s =
    split ~live_cycles:2e6 ~const_cycles:0.0 ~live_saved:1e-12
      ~const_saved:0.0
  in
  Alcotest.(check bool) "sub-epsilon savings are Never" true
    (An.Breakeven.of_split s ~overhead_seconds:1.0 = An.Breakeven.Never)

(* ------------------------------------------------------------------ *)
(* Cache model                                                         *)
(* ------------------------------------------------------------------ *)

let costs =
  [
    { An.Cache_model.signature = "a"; generation_seconds = 100.0 };
    { An.Cache_model.signature = "b"; generation_seconds = 200.0 };
    { An.Cache_model.signature = "c"; generation_seconds = 300.0 };
    { An.Cache_model.signature = "d"; generation_seconds = 400.0 };
  ]

let test_cache_zero_rate_pays_everything () =
  Alcotest.(check (float 1e-6)) "no cache, full cost" 1000.0
    (An.Cache_model.residual_overhead ~hit_rate:0.0 ~cad_speedup:0.0 costs)

let test_cache_full_rate_pays_nothing () =
  (* 100 % hit rate rounds to all four unique bitstreams cached *)
  Alcotest.(check bool) "full cache nearly free" true
    (An.Cache_model.residual_overhead ~hit_rate:0.9999 ~cad_speedup:0.0 costs
    < 1e-6)

let test_cache_monotone () =
  let rates = [ 0.0; 0.25; 0.5; 0.75 ] in
  let overheads =
    List.map
      (fun h -> An.Cache_model.residual_overhead ~hit_rate:h ~cad_speedup:0.0 costs)
      rates
  in
  let rec non_increasing = function
    | a :: b :: r -> a >= b -. 1e-9 && non_increasing (b :: r)
    | _ -> true
  in
  Alcotest.(check bool) "monotone in hit rate" true (non_increasing overheads)

let test_cache_speedup_scales () =
  let full = An.Cache_model.residual_overhead ~hit_rate:0.0 ~cad_speedup:0.0 costs in
  let fast = An.Cache_model.residual_overhead ~hit_rate:0.0 ~cad_speedup:0.3 costs in
  Alcotest.(check (float 1e-6)) "linear CAD scaling" (0.7 *. full) fast

let test_cache_dedups_signatures () =
  let dup =
    costs
    @ [ { An.Cache_model.signature = "a"; generation_seconds = 100.0 } ]
  in
  Alcotest.(check (float 1e-6)) "duplicate signature is a natural hit" 1000.0
    (An.Cache_model.residual_overhead ~hit_rate:0.0 ~cad_speedup:0.0 dup)

let test_cache_validates_inputs () =
  Alcotest.(check bool) "bad hit rate" true
    (try
       ignore (An.Cache_model.residual_overhead ~hit_rate:1.5 ~cad_speedup:0.0 costs);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad speedup" true
    (try
       ignore (An.Cache_model.residual_overhead ~hit_rate:0.0 ~cad_speedup:1.0 costs);
       false
     with Invalid_argument _ -> true)

let test_cache_grid () =
  let s =
    split ~live_cycles:1e8 ~const_cycles:1e6 ~live_saved:5e7 ~const_saved:0.0
  in
  let grid = An.Cache_model.grid ~split:s costs in
  Alcotest.(check int) "full grid" 40 (List.length grid);
  (* corner cells: (0,0) worst, (0.9, 0.9) best *)
  let be h c =
    match
      List.find_opt
        (fun g -> g.An.Cache_model.hit_rate = h && g.An.Cache_model.cad_speedup = c)
        grid
    with
    | Some { An.Cache_model.break_even = An.Breakeven.After t; _ } -> t
    | _ -> Alcotest.fail "missing cell"
  in
  Alcotest.(check bool) "best corner beats worst" true (be 0.9 0.9 < be 0.0 0.0)

let () =
  Alcotest.run "analysis"
    [
      ( "coverage",
        [
          Alcotest.test_case "classes" `Quick test_coverage_classes;
          Alcotest.test_case "two profiles" `Quick test_coverage_requires_two_profiles;
          Alcotest.test_case "frequency patterns" `Quick test_coverage_live_blocks_vary;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "computation" `Quick test_kernel_computation;
          Alcotest.test_case "threshold" `Quick test_kernel_threshold;
        ] );
      ( "breakeven",
        [
          Alcotest.test_case "never" `Quick test_breakeven_never;
          Alcotest.test_case "within first run" `Quick test_breakeven_within_first_run;
          Alcotest.test_case "scaling run" `Quick test_breakeven_scaling_run;
          Alcotest.test_case "monotone" `Quick test_breakeven_monotone_in_overhead;
          Alcotest.test_case "const savings" `Quick test_breakeven_const_savings_help;
          Alcotest.test_case "split costs" `Quick test_breakeven_split_costs;
          Alcotest.test_case "epsilon helpers" `Quick
            test_breakeven_epsilon_helpers;
          Alcotest.test_case "worthwhile boundary" `Quick
            test_breakeven_worthwhile_boundary;
          Alcotest.test_case "of_split boundary" `Quick
            test_breakeven_of_split_boundary;
        ] );
      ( "cache",
        [
          Alcotest.test_case "zero rate" `Quick test_cache_zero_rate_pays_everything;
          Alcotest.test_case "full rate" `Quick test_cache_full_rate_pays_nothing;
          Alcotest.test_case "monotone" `Quick test_cache_monotone;
          Alcotest.test_case "cad speedup" `Quick test_cache_speedup_scales;
          Alcotest.test_case "dedup" `Quick test_cache_dedups_signatures;
          Alcotest.test_case "validation" `Quick test_cache_validates_inputs;
          Alcotest.test_case "grid" `Quick test_cache_grid;
        ] );
    ]
