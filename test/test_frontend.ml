(* Tests for Jitise_frontend: lexer, parser, typechecker, lowering,
   mem2reg, optimizer, unroller, and compile-and-run semantics. *)

module F = Jitise_frontend
module Ir = Jitise_ir
module Vm = Jitise_vm

(* Compile a source and run main(n); return the integer result. *)
let run_main ?(optimize = true) ?(unroll_factor = 4) ?(n = 0) src =
  let r =
    F.Compiler.compile ~optimize ~unroll_factor ~module_name:"t"
      [ ("t.c", src) ]
  in
  let out =
    Vm.Machine.run r.F.Compiler.modul ~entry:"main"
      ~args:[ Ir.Eval.VInt (Int64.of_int n) ]
  in
  match out.Vm.Machine.ret with
  | Some (Ir.Eval.VInt v) -> Int64.to_int v
  | _ -> Alcotest.fail "expected integer result"

let expect ?n src expected =
  Alcotest.(check int) "result" expected (run_main ?n src)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let kinds src = List.map (fun t -> t.F.Token.kind) (F.Lexer.tokenize src)

let test_lexer_basic () =
  Alcotest.(check int) "token count" 6 (List.length (kinds "int x = 42;"));
  match kinds "int x = 42;" with
  | [ F.Token.Kw_int; F.Token.Ident "x"; F.Token.Assign; F.Token.Int_lit 42L;
      F.Token.Semi; F.Token.Eof ] ->
      ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_numbers () =
  (match kinds "0x1F 3.5 1e3 2.5e-2" with
  | [ F.Token.Int_lit 31L; F.Token.Float_lit 3.5; F.Token.Float_lit 1000.0;
      F.Token.Float_lit 0.025; F.Token.Eof ] ->
      ()
  | _ -> Alcotest.fail "number lexing");
  match kinds "5000000000" with
  | [ F.Token.Int_lit 5000000000L; F.Token.Eof ] -> ()
  | _ -> Alcotest.fail "wide literal"

let test_lexer_operators () =
  match kinds "<< >> <= >= == != && || & |" with
  | [ F.Token.Shl; F.Token.Shr; F.Token.Le; F.Token.Ge; F.Token.Eq;
      F.Token.Ne; F.Token.Andand; F.Token.Oror; F.Token.Amp; F.Token.Pipe;
      F.Token.Eof ] ->
      ()
  | _ -> Alcotest.fail "operator lexing"

let test_lexer_comments () =
  Alcotest.(check int) "comments skipped" 2
    (List.length (kinds "// line\n/* block\nmore */ x"))

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (try
       ignore (F.Lexer.tokenize "int $;");
       false
     with F.Lexer.Error _ -> true);
  Alcotest.(check bool) "unterminated comment" true
    (try
       ignore (F.Lexer.tokenize "/* never closed");
       false
     with F.Lexer.Error _ -> true)

let test_lexer_loc () =
  Alcotest.(check int) "loc counts code lines" 2
    (F.Lexer.count_loc "int x;\n// comment only\n\ny = 2;\n");
  Alcotest.(check int) "block comments excluded" 1
    (F.Lexer.count_loc "/* a\nb\nc */ int x;\n")

(* ------------------------------------------------------------------ *)
(* Parser / typechecker errors                                         *)
(* ------------------------------------------------------------------ *)

let compile_error src =
  try
    ignore (F.Compiler.compile_string ~name:"t" src);
    None
  with F.Compiler.Error m -> Some m

let test_parser_errors () =
  Alcotest.(check bool) "missing semicolon" true
    (compile_error "int main(int n) { return 1 }" <> None);
  Alcotest.(check bool) "bad dimension count" true
    (compile_error "int a[2][2][2]; int main(int n) { return 0; }" <> None);
  Alcotest.(check bool) "void variable" true
    (compile_error "void x; int main(int n) { return 0; }" <> None)

let test_type_errors () =
  Alcotest.(check bool) "unknown variable" true
    (compile_error "int main(int n) { return zz; }" <> None);
  Alcotest.(check bool) "unknown function" true
    (compile_error "int main(int n) { return f(n); }" <> None);
  Alcotest.(check bool) "arity" true
    (compile_error
       "int f(int a, int b) { return a; } int main(int n) { return f(1); }"
    <> None);
  Alcotest.(check bool) "float modulo" true
    (compile_error "int main(int n) { double d = 1.5; return d % 2; }" <> None);
  Alcotest.(check bool) "break outside loop" true
    (compile_error "int main(int n) { break; return 0; }" <> None);
  Alcotest.(check bool) "return value from void" true
    (compile_error "void f() { return 3; } int main(int n) { return 0; }"
    <> None);
  Alcotest.(check bool) "duplicate function" true
    (compile_error
       "int f() { return 0; } int f() { return 1; } int main(int n) { return 0; }"
    <> None)

(* ------------------------------------------------------------------ *)
(* Compile-and-run semantics                                           *)
(* ------------------------------------------------------------------ *)

let test_arithmetic () =
  expect "int main(int n) { return 2 + 3 * 4; }" 14;
  expect "int main(int n) { return (2 + 3) * 4; }" 20;
  expect "int main(int n) { return 17 / 5; }" 3;
  expect "int main(int n) { return 17 % 5; }" 2;
  expect "int main(int n) { return -7 / 2; }" (-3);
  expect "int main(int n) { return 1 << 10; }" 1024;
  expect "int main(int n) { return -16 >> 2; }" (-4);
  expect "int main(int n) { return (12 & 10) | (1 ^ 3); }" 10;
  expect "int main(int n) { return ~5; }" (-6)

let test_comparisons_and_logic () =
  expect "int main(int n) { return (3 < 5) + (5 <= 5) + (6 > 7) + (2 >= 2); }" 3;
  expect "int main(int n) { return (1 == 1) + (1 != 1); }" 1;
  expect "int main(int n) { return !0 + !7; }" 1;
  expect ~n:5
    "int main(int n) { if (n > 0 && 100 / n > 10) { return 1; } return 0; }" 1;
  (* short circuit: the division by zero must not be evaluated *)
  expect ~n:0
    "int main(int n) { if (n != 0 && 100 / n > 10) { return 1; } return 0; }" 0;
  expect ~n:0
    "int main(int n) { if (n == 0 || 100 / n > 10) { return 1; } return 0; }" 1;
  expect ~n:1
    "int main(int n) { int v = (n == 1) && (n < 5); return v * 10; }" 10

let test_control_flow () =
  expect ~n:10
    "int main(int n) { int s = 0; int i; for (i = 1; i <= n; i = i + 1) { s = s + i; } return s; }"
    55;
  expect ~n:10
    "int main(int n) { int s = 0; int i = 0; while (i < n) { i = i + 1; if (i == 5) { continue; } s = s + i; } return s; }"
    50;
  expect ~n:100
    "int main(int n) { int i; int s = 0; for (i = 0; i < n; i = i + 1) { if (i == 7) { break; } s = s + 1; } return s; }"
    7;
  expect ~n:3
    "int main(int n) { if (n == 1) { return 10; } else { if (n == 2) { return 20; } else { return 30; } } }"
    30

let test_functions_and_recursion () =
  expect ~n:10
    "int fib(int k) { if (k < 2) { return k; } return fib(k-1) + fib(k-2); } int main(int n) { return fib(n); }"
    55;
  expect ~n:48
    "int gcd(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; } int main(int n) { return gcd(n, 36); }"
    12;
  expect "void twice() { } int main(int n) { twice(); return 4; }" 4

let test_globals_and_arrays () =
  expect "int g = 7; int main(int n) { g = g + 1; return g; }" 8;
  expect
    "int a[10]; int main(int n) { int i; for (i = 0; i < 10; i = i + 1) { a[i] = i * i; } return a[7]; }"
    49;
  expect
    "int m[3][4]; int main(int n) { m[2][3] = 42; m[0][0] = 1; return m[2][3] + m[0][0]; }"
    43;
  expect "int t[4] = {10, 20, 30, 40}; int main(int n) { return t[1] + t[3]; }"
    60;
  expect
    "double d[2] = {1.5, 2.25}; int main(int n) { return (d[0] + d[1]) * 4.0; }"
    15

let test_floats_and_casts () =
  expect "int main(int n) { double d = 7.9; return d; }" 7;
  expect "int main(int n) { float f = 2.5; double d = f; return d * 2.0; }" 5;
  expect "int main(int n) { int i = 3; double d = i / 2.0; return d * 10.0; }" 15;
  expect
    "long wide() { return 5000000000; } int main(int n) { return wide() / 2000000000; }"
    2;
  expect "int main(int n) { long a = 1; a = a << 40; return a >> 35; }" 32

let test_intrinsics () =
  expect "int main(int n) { return sqrt(144.0); }" 12;
  expect "int main(int n) { return fabs(-3.5) * 2.0; }" 7;
  expect "int main(int n) { return abs(-9) + min(2, 3) + max(2, 3); }" 14;
  expect "int main(int n) { return floor(3.9); }" 3;
  expect "int main(int n) { return pow(2.0, 10.0); }" 1024;
  expect "int main(int n) { return exp(log(5.0)) + 0.5; }" 5

let test_param_assignment () =
  expect ~n:99 "int main(int n) { n = n + 1; return n; }" 100

let test_shadowing_scopes () =
  expect ~n:5
    "int main(int n) { int x = 1; if (n > 0) { int x = 2; n = n + x; } return n * 10 + x; }"
    71

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let corpus =
  [
    ( "sum of squares",
      "int main(int n) { int s = 0; int i; for (i = 0; i < n; i = i + 1) { s = s + i * i; } return s; }",
      20 );
    ( "nested loops",
      "int a[64]; int main(int n) { int i; int j; int s = 0; for (i = 0; i < 8; i = i + 1) { for (j = 0; j < 8; j = j + 1) { a[i * 8 + j] = i * j; } } for (i = 0; i < 64; i = i + 1) { s = s + a[i]; } return s; }",
      5 );
    ( "float reduce",
      "double v[32]; int main(int n) { int i; double s = 0.0; for (i = 0; i < 32; i = i + 1) { v[i] = i * 0.5; } for (i = 0; i < 32; i = i + 1) { s = s + v[i] * v[i]; } return s; }",
      3 );
    ( "branchy",
      "int main(int n) { int s = 0; int i; for (i = 0; i < n; i = i + 1) { if ((i & 1) == 0) { s = s + i; } else { s = s - 1; } } return s; }",
      33 );
    ( "recursion+loop",
      "int f(int k) { int s = 0; int i; for (i = 0; i < k; i = i + 1) { s = s + i; } return s; } int main(int n) { return f(n) + f(n / 2); }",
      19 );
  ]

let test_optimize_preserves_semantics () =
  List.iter
    (fun (name, src, n) ->
      let a = run_main ~optimize:false ~n src in
      let b = run_main ~optimize:true ~n src in
      Alcotest.(check int) (name ^ ": -O0 = -O3") a b)
    corpus

let test_unroll_preserves_semantics () =
  List.iter
    (fun (name, src, n) ->
      let a = run_main ~unroll_factor:1 ~n src in
      List.iter
        (fun factor ->
          let b = run_main ~unroll_factor:factor ~n src in
          Alcotest.(check int) (Printf.sprintf "%s: unroll %d" name factor) a b)
        [ 2; 3; 4; 8 ])
    corpus

let test_unroll_grows_blocks () =
  let src =
    "int a[256]; int main(int n) { int i; for (i = 0; i < 256; i = i + 1) { a[i] = i * 3 + 1; } return a[200]; }"
  in
  let r1 = F.Compiler.compile_string ~unroll_factor:1 ~name:"t" src in
  let r4 = F.Compiler.compile_string ~unroll_factor:4 ~name:"t" src in
  Alcotest.(check bool) "unrolled has more instrs" true
    (r4.F.Compiler.stats.F.Compiler.instrs
    > r1.F.Compiler.stats.F.Compiler.instrs)

let test_unroll_skips_loop_carried_bounds () =
  (* the loop bound changes inside the body: unrolling must not fire or
     must stay correct *)
  let src =
    "int main(int n) { int i; int s = 0; int lim = 10; for (i = 0; i < lim; i = i + 1) { if (i == 5) { lim = 7; } s = s + 1; } return s; }"
  in
  Alcotest.(check int) "dynamic bound respected"
    (run_main ~unroll_factor:1 src)
    (run_main ~unroll_factor:4 src)

let test_mem2reg_removes_scalar_traffic () =
  let src =
    "int main(int n) { int x = 1; int y = 2; int i; for (i = 0; i < n; i = i + 1) { x = x + y; y = y + 1; } return x; }"
  in
  let r = F.Compiler.compile_string ~name:"t" src in
  let main = Option.get (Ir.Irmod.find_func r.F.Compiler.modul "main") in
  let has_alloca = ref false in
  Ir.Func.iter_instrs
    (fun _ (i : Ir.Instr.t) ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Alloca _ -> has_alloca := true
      | _ -> ())
    main;
  Alcotest.(check bool) "no allocas" false !has_alloca;
  Alcotest.(check bool) "phis present" true
    (Ir.Func.fold_blocks (fun acc b -> acc || Ir.Block.phis b <> []) false main)

let test_constant_folding () =
  let src = "int main(int n) { return 2 * 3 + 4 * 5 - 1; }" in
  let r = F.Compiler.compile_string ~name:"t" src in
  let main = Option.get (Ir.Irmod.find_func r.F.Compiler.modul "main") in
  Alcotest.(check int) "all folded away" 0 (Ir.Func.num_instrs main);
  Alcotest.(check int) "result" 25 (run_main src)

let test_dead_branch_elimination () =
  let src = "int main(int n) { if (1 < 0) { return 111; } return 7; }" in
  let r = F.Compiler.compile_string ~name:"t" src in
  let main = Option.get (Ir.Irmod.find_func r.F.Compiler.modul "main") in
  Alcotest.(check int) "dead branch removed" 1 (Ir.Func.num_blocks main);
  Alcotest.(check int) "result" 7 (run_main src)

let test_cse () =
  let src =
    "int g; int main(int n) { int a = n * 17 + 3; int b = n * 17 + 3; g = a; return a + b; }"
  in
  let r = F.Compiler.compile_string ~name:"t" src in
  let main = Option.get (Ir.Irmod.find_func r.F.Compiler.modul "main") in
  let muls = ref 0 in
  Ir.Func.iter_instrs
    (fun _ (i : Ir.Instr.t) ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Binop (Ir.Instr.Mul, _, _) -> incr muls
      | _ -> ())
    main;
  Alcotest.(check int) "one multiply after CSE" 1 !muls;
  Alcotest.(check int) "result" 74 (run_main ~n:2 src)

let test_algebraic_simplify () =
  (* x*1 + 0 collapses; x*8 becomes a shift *)
  let src = "int g; int main(int n) { g = n * 1 + 0; return n * 8; }" in
  let r = F.Compiler.compile_string ~name:"t" src in
  let main = Option.get (Ir.Irmod.find_func r.F.Compiler.modul "main") in
  let muls = ref 0 and shls = ref 0 in
  Ir.Func.iter_instrs
    (fun _ (i : Ir.Instr.t) ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Binop (Ir.Instr.Mul, _, _) -> incr muls
      | Ir.Instr.Binop (Ir.Instr.Shl, _, _) -> incr shls
      | _ -> ())
    main;
  Alcotest.(check int) "no multiplies left" 0 !muls;
  Alcotest.(check int) "strength-reduced shift" 1 !shls;
  Alcotest.(check int) "result" 24 (run_main ~n:3 src);
  (* identities on self *)
  Alcotest.(check int) "x-x and x^x fold" 5
    (run_main ~n:5 "int main(int n) { return (n - n) + (n ^ n) + (n & n); }")

(* Regression: a multiply by a non-power-of-two constant must survive
   strength reduction as a multiply — the rewrite used to test
   [log2_opt] in the guard and [Option.get] a second call in the body,
   a split that a refactor could desynchronize into a crash. *)
let test_strength_reduction_non_power_of_two () =
  let src = "int main(int n) { return n * 6; }" in
  let r = F.Compiler.compile_string ~name:"t" src in
  let main = Option.get (Ir.Irmod.find_func r.F.Compiler.modul "main") in
  let muls = ref 0 and shls = ref 0 in
  Ir.Func.iter_instrs
    (fun _ (i : Ir.Instr.t) ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Binop (Ir.Instr.Mul, _, _) -> incr muls
      | Ir.Instr.Binop (Ir.Instr.Shl, _, _) -> incr shls
      | _ -> ())
    main;
  Alcotest.(check int) "multiply by 6 stays a multiply" 1 !muls;
  Alcotest.(check int) "no bogus shift" 0 !shls;
  Alcotest.(check int) "result" 42 (run_main ~n:7 src)

let test_load_forwarding () =
  (* three reads of a[i] in one statement keep a single load *)
  let src =
    "double a[8]; double g; int main(int n) { a[1] = 2.5; g = a[1] * a[1] + a[1]; return g; }"
  in
  let r = F.Compiler.compile_string ~name:"t" src in
  let main = Option.get (Ir.Irmod.find_func r.F.Compiler.modul "main") in
  let loads = ref 0 in
  Ir.Func.iter_instrs
    (fun _ (i : Ir.Instr.t) ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Load _ -> incr loads
      | _ -> ())
    main;
  (* the store to a[1] is forwarded, so no load of a[1] remains at all *)
  Alcotest.(check int) "loads forwarded" 0 !loads;
  Alcotest.(check int) "result" 8 (run_main src)

let test_load_forwarding_invalidation () =
  (* a store to another (potentially aliasing) address must invalidate *)
  let src =
    "int a[8]; int main(int n) { a[n] = 1; int x = a[0]; a[n + 1] = 9; return x + a[0]; }"
  in
  (* with n = -1... out of bounds; use n=0: a[0]=1; x=1; a[1]=9; a[0] still 1 -> 2.
     with n=1: a[1]=1; x=a[0]=0; a[2]=9; 0+0=0. *)
  Alcotest.(check int) "n=0" 2 (run_main ~n:0 src);
  Alcotest.(check int) "n=1" 0 (run_main ~n:1 src)

let test_block_merging () =
  (* a chain of straight-line statements across if-joins merges into few
     blocks *)
  let src =
    "int main(int n) { int a = n + 1; int b = a * 2; int c = b - 3; return c; }"
  in
  let r = F.Compiler.compile_string ~name:"t" src in
  let main = Option.get (Ir.Irmod.find_func r.F.Compiler.modul "main") in
  Alcotest.(check int) "single block" 1 (Ir.Func.num_blocks main)

let test_verifier_accepts_all_output () =
  List.iter
    (fun (name, src, _) ->
      let r = F.Compiler.compile_string ~name:"t" src in
      Alcotest.(check bool) (name ^ " verifies") true
        (Ir.Verifier.check_module r.F.Compiler.modul = []))
    corpus

let test_compiler_stats () =
  let r =
    F.Compiler.compile ~module_name:"two"
      [
        ("a.c", "int f() { return 1; }");
        ("b.c", "int main(int n) { return f(); }");
      ]
  in
  Alcotest.(check int) "files" 2 r.F.Compiler.stats.F.Compiler.files;
  Alcotest.(check int) "loc" 2 r.F.Compiler.stats.F.Compiler.loc;
  Alcotest.(check bool) "blocks > 0" true
    (r.F.Compiler.stats.F.Compiler.blocks > 0)

(* Randomized differential testing: random integer expressions compiled
   at -O0 and -O3 (with unrolling) must agree. *)
let gen_expr =
  let open QCheck.Gen in
  sized_size (int_range 1 6) (fun size ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map string_of_int (int_range 0 50); return "n"; return "i";
              ]
          else
            let sub = self (n / 2) in
            oneof
              [
                map2 (fun a b -> Printf.sprintf "(%s + %s)" a b) sub sub;
                map2 (fun a b -> Printf.sprintf "(%s - %s)" a b) sub sub;
                map2 (fun a b -> Printf.sprintf "(%s * %s)" a b) sub sub;
                map2 (fun a b -> Printf.sprintf "(%s ^ %s)" a b) sub sub;
                map2 (fun a b -> Printf.sprintf "(%s & %s)" a b) sub sub;
                map (fun a -> Printf.sprintf "(0 - %s)" a) sub;
              ])
        size)

let prop_parser_roundtrip_random =
  QCheck.Test.make ~name:"random program: print/parse fixpoint" ~count:40
    (QCheck.make gen_expr)
    (fun expr ->
      let src =
        Printf.sprintf
          "int main(int n) { int s = 0; int i; for (i = 0; i < 5; i = i + 1) { s = s + %s; } return s; }"
          expr
      in
      let m = (F.Compiler.compile_string ~name:"t" src).F.Compiler.modul in
      let printed = Ir.Printer.module_to_string m in
      let reparsed = Ir.Parser.parse_module printed in
      Ir.Printer.module_to_string reparsed = printed)

let prop_opt_equivalence =
  QCheck.Test.make ~name:"random expr: -O0 = -O3 (incl. unrolling)" ~count:60
    (QCheck.make gen_expr)
    (fun expr ->
      let src =
        Printf.sprintf
          "int main(int n) { int s = 0; int i; for (i = 0; i < 9; i = i + 1) { s = s + %s; } return s; }"
          expr
      in
      run_main ~optimize:false ~n:3 src = run_main ~optimize:true ~n:3 src)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "loc counting" `Quick test_lexer_loc;
        ] );
      ( "errors",
        [
          Alcotest.test_case "parser" `Quick test_parser_errors;
          Alcotest.test_case "types" `Quick test_type_errors;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "comparisons and logic" `Quick
            test_comparisons_and_logic;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "functions" `Quick test_functions_and_recursion;
          Alcotest.test_case "globals and arrays" `Quick test_globals_and_arrays;
          Alcotest.test_case "floats and casts" `Quick test_floats_and_casts;
          Alcotest.test_case "intrinsics" `Quick test_intrinsics;
          Alcotest.test_case "param assignment" `Quick test_param_assignment;
          Alcotest.test_case "shadowing" `Quick test_shadowing_scopes;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "semantics preserved" `Quick
            test_optimize_preserves_semantics;
          Alcotest.test_case "unroll preserves semantics" `Quick
            test_unroll_preserves_semantics;
          Alcotest.test_case "unroll grows blocks" `Quick test_unroll_grows_blocks;
          Alcotest.test_case "unroll dynamic bound" `Quick
            test_unroll_skips_loop_carried_bounds;
          Alcotest.test_case "mem2reg" `Quick test_mem2reg_removes_scalar_traffic;
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "dead branches" `Quick test_dead_branch_elimination;
          Alcotest.test_case "cse" `Quick test_cse;
          Alcotest.test_case "algebraic simplify" `Quick test_algebraic_simplify;
          Alcotest.test_case "non-power-of-two multiplier" `Quick
            test_strength_reduction_non_power_of_two;
          Alcotest.test_case "load forwarding" `Quick test_load_forwarding;
          Alcotest.test_case "load invalidation" `Quick
            test_load_forwarding_invalidation;
          Alcotest.test_case "block merging" `Quick test_block_merging;
          Alcotest.test_case "verifier clean" `Quick
            test_verifier_accepts_all_output;
          Alcotest.test_case "stats" `Quick test_compiler_stats;
        ]
        @ qsuite [ prop_opt_equivalence; prop_parser_roundtrip_random ] );
    ]
