(* Tests for Jitise_core: binary adaptation, the ASIP specialization
   process, experiment plumbing, tables, diagrams. *)

module Ir = Jitise_ir
module F = Jitise_frontend
module Vm = Jitise_vm
module W = Jitise_workloads
module Ise = Jitise_ise
module Pp = Jitise_pivpav
module An = Jitise_analysis
module Core = Jitise_core

let db = Pp.Database.create ()

let compile src = (F.Compiler.compile_string ~name:"t" src).F.Compiler.modul

let run ?cis m n =
  Vm.Machine.run ?cis m ~entry:"main" ~args:[ Ir.Eval.VInt (Int64.of_int n) ]

let float_kernel_src =
  "double a[64]; double b[64]; double out[64];\n\
   int main(int n) {\n\
  \  int i;\n\
  \  for (i = 0; i < 64; i = i + 1) { a[i] = i * 0.5 + 1.0; b[i] = i * 0.25 + 2.0; }\n\
  \  int t;\n\
  \  for (t = 0; t < n; t = t + 1) {\n\
  \    for (i = 0; i < 64; i = i + 1) {\n\
  \      out[i] = (a[i] * 1.5 + b[i] * 2.5) * (a[i] - b[i]) + out[i] * 0.5;\n\
  \    }\n\
  \  }\n\
  \  double s = 0.0;\n\
  \  for (i = 0; i < 64; i = i + 1) { s = s + out[i]; }\n\
  \  return s;\n\
   }"

let specialize ?prune src n =
  let m = compile src in
  let out = run m n in
  let spec =
    match prune with
    | None -> Core.Spec.default
    | Some p -> Core.Spec.with_prune p Core.Spec.default
  in
  let report =
    Core.Asip_sp.run_spec ~spec db m out.Vm.Machine.profile
      ~total_cycles:out.Vm.Machine.native_cycles
  in
  (m, out, report)

(* ------------------------------------------------------------------ *)
(* Adapt                                                               *)
(* ------------------------------------------------------------------ *)

let test_adapt_preserves_results () =
  let m, out, report = specialize float_kernel_src 200 in
  let adapted = Core.Adapt.apply m report.Core.Asip_sp.selection in
  let out2 = run ~cis:adapted.Core.Adapt.registry adapted.Core.Adapt.modul 200 in
  Alcotest.(check bool) "selection non-empty" true
    (report.Core.Asip_sp.selection <> []);
  Alcotest.(check bool) "same checksum" true (out.Vm.Machine.ret = out2.Vm.Machine.ret);
  Alcotest.(check bool) "instructions replaced" true
    (adapted.Core.Adapt.replaced_instrs > 0)

let test_adapt_measured_speedup_matches_estimate () =
  let m, out, report = specialize float_kernel_src 200 in
  let adapted = Core.Adapt.apply m report.Core.Asip_sp.selection in
  let out2 = run ~cis:adapted.Core.Adapt.registry adapted.Core.Adapt.modul 200 in
  let measured = out.Vm.Machine.native_cycles /. out2.Vm.Machine.native_cycles in
  let predicted = report.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f within 2%% of predicted %.3f" measured predicted)
    true
    (abs_float (measured -. predicted) /. predicted < 0.02);
  Alcotest.(check bool) "actually faster" true (measured > 1.2)

let test_adapt_module_is_a_copy () =
  let m, _, report = specialize float_kernel_src 50 in
  let before = Ir.Irmod.num_instrs m in
  let adapted = Core.Adapt.apply m report.Core.Asip_sp.selection in
  Alcotest.(check int) "original untouched" before (Ir.Irmod.num_instrs m);
  Alcotest.(check bool) "adapted is smaller" true
    (Ir.Irmod.num_instrs adapted.Core.Adapt.modul < before)

let test_adapt_on_workload () =
  let w = Option.get (W.Registry.find "sor") in
  let r = W.Workload.compile w in
  let d = { (List.hd w.W.Workload.datasets) with W.Workload.n = 10 } in
  let out = W.Workload.run r d in
  let report =
    Core.Asip_sp.run_spec db r.F.Compiler.modul out.Vm.Machine.profile
      ~total_cycles:out.Vm.Machine.native_cycles
  in
  let adapted = Core.Adapt.apply r.F.Compiler.modul report.Core.Asip_sp.selection in
  let out2 =
    Vm.Machine.run adapted.Core.Adapt.modul ~entry:"main"
      ~cis:adapted.Core.Adapt.registry
      ~args:[ Ir.Eval.VInt (Int64.of_int d.W.Workload.n) ]
  in
  Alcotest.(check bool) "sor adapted run agrees" true
    (out.Vm.Machine.ret = out2.Vm.Machine.ret)

(* ------------------------------------------------------------------ *)
(* Asip_sp                                                             *)
(* ------------------------------------------------------------------ *)

let test_asip_sp_report_invariants () =
  let _, _, r = specialize float_kernel_src 200 in
  Alcotest.(check bool) "search wall positive" true
    (r.Core.Asip_sp.search_wall_seconds > 0.0);
  Alcotest.(check bool) "pruning kept <= 3 blocks" true
    (r.Core.Asip_sp.searched_blocks <= 3);
  Alcotest.(check (float 1e-6)) "sum = const + map + par"
    r.Core.Asip_sp.sum_seconds
    (r.Core.Asip_sp.const_seconds +. r.Core.Asip_sp.map_seconds
    +. r.Core.Asip_sp.par_seconds);
  Alcotest.(check int) "one report per selected candidate"
    (List.length r.Core.Asip_sp.selection)
    (List.length r.Core.Asip_sp.candidates);
  Alcotest.(check bool) "pruned ratio <= max ratio" true
    (r.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio
    <= r.Core.Asip_sp.asip_ratio_max.Ise.Speedup.ratio +. 1e-9);
  Alcotest.(check bool) "efficiency positive" true
    (r.Core.Asip_sp.pruning_efficiency > 0.0);
  List.iter
    (fun (c : Core.Asip_sp.candidate_result) ->
      match c.Core.Asip_sp.cache_hit with
      | Some _ ->
          Alcotest.(check (float 1e-9)) "cache hits are free" 0.0
            c.Core.Asip_sp.total_seconds
      | None ->
          Alcotest.(check bool) "misses pay C2V + CAD" true
            (c.Core.Asip_sp.total_seconds > c.Core.Asip_sp.c2v_seconds))
    r.Core.Asip_sp.candidates

let test_asip_sp_cache_dedups_unrolled_copies () =
  (* unrolling produces 4 copies of the loop-body data path; only the
     first builds a bitstream *)
  let _, _, r = specialize float_kernel_src 200 in
  let hits =
    List.length
      (List.filter
         (fun (c : Core.Asip_sp.candidate_result) ->
           c.Core.Asip_sp.cache_hit = Some Jitise_cad.Cache.Local)
         r.Core.Asip_sp.candidates)
  in
  Alcotest.(check bool) "duplicated data paths hit the run cache" true (hits > 0)

let test_asip_sp_no_pruning () =
  let _, _, pruned = specialize float_kernel_src 200 in
  let _, _, full = specialize ~prune:Ise.Prune.none float_kernel_src 200 in
  Alcotest.(check bool) "no filter sees at least as many blocks" true
    (full.Core.Asip_sp.searched_blocks >= pruned.Core.Asip_sp.searched_blocks);
  Alcotest.(check bool) "no filter at least as fast an app" true
    (full.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio
    >= pruned.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio -. 1e-9)

let test_asip_sp_cad_speedup_config () =
  let m = compile float_kernel_src in
  let out = run m 200 in
  let slow =
    Core.Asip_sp.run_spec db m out.Vm.Machine.profile
      ~total_cycles:out.Vm.Machine.native_cycles
  in
  let fast_spec =
    Core.Spec.with_cad
      { Jitise_cad.Flow.default_config with Jitise_cad.Flow.speedup_factor = 0.5 }
      Core.Spec.default
  in
  let fast =
    Core.Asip_sp.run_spec ~spec:fast_spec db m out.Vm.Machine.profile
      ~total_cycles:out.Vm.Machine.native_cycles
  in
  Alcotest.(check bool) "half the CAD time" true
    (abs_float ((fast.Core.Asip_sp.sum_seconds /. slow.Core.Asip_sp.sum_seconds) -. 0.5)
    < 0.02)

let test_candidate_costs_export () =
  let _, _, r = specialize float_kernel_src 200 in
  let costs = Core.Asip_sp.candidate_costs r in
  Alcotest.(check int) "one cost per candidate"
    (List.length r.Core.Asip_sp.candidates)
    (List.length costs);
  let total =
    List.fold_left
      (fun a (c : An.Cache_model.candidate_cost) -> a +. c.An.Cache_model.generation_seconds)
      0.0 costs
  in
  Alcotest.(check (float 1e-6)) "costs sum to the overhead"
    r.Core.Asip_sp.sum_seconds total

(* ------------------------------------------------------------------ *)
(* Experiment + tables                                                 *)
(* ------------------------------------------------------------------ *)

let sor_result =
  lazy
    (let w = Option.get (W.Registry.find "sor") in
     Core.Experiment.evaluate db w)

let test_experiment_structure () =
  let r = Lazy.force sor_result in
  Alcotest.(check int) "one outcome per dataset"
    (List.length r.Core.Experiment.workload.W.Workload.datasets)
    (List.length r.Core.Experiment.outcomes);
  Alcotest.(check bool) "is embedded" true (Core.Experiment.is_embedded r);
  Alcotest.(check bool) "not scientific" false (Core.Experiment.is_scientific r);
  Alcotest.(check bool) "break-even computed" true
    (match r.Core.Experiment.break_even with
    | An.Breakeven.After t -> t > 0.0
    | An.Breakeven.Never -> true)

let test_table_rows () =
  let r = Lazy.force sor_result in
  let t1 = Core.Tables.table1_row r in
  Alcotest.(check string) "name" "sor" t1.Core.Tables.name;
  Alcotest.(check bool) "vm ratio near 1" true
    (t1.Core.Tables.vm_ratio > 0.9 && t1.Core.Tables.vm_ratio < 1.2);
  Alcotest.(check bool) "speedup > 2 for sor" true (t1.Core.Tables.asip_ratio > 2.0);
  let t2 = Core.Tables.table2_row r in
  Alcotest.(check bool) "overhead positive" true (t2.Core.Tables.sum_seconds > 0.0);
  Alcotest.(check bool) "candidates found" true (t2.Core.Tables.candidates > 0)

let test_table_renderers () =
  let r = Lazy.force sor_result in
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  let s1 = Core.Tables.render_table1 (Core.Tables.table1 [ r ]) in
  Alcotest.(check bool) "table1 row" true (contains s1 "sor");
  Alcotest.(check bool) "table1 summary rows" true (contains s1 "AVG-E");
  let s2 = Core.Tables.render_table2 (Core.Tables.table2 [ r ]) in
  Alcotest.(check bool) "table2 break even column" true (contains s2 "break even");
  let s3 = Core.Tables.render_table3 (Core.Tables.table3 [ r ]) in
  Alcotest.(check bool) "table3 columns" true (contains s3 "Bitgen[s]");
  let s4 = Core.Tables.render_table4 (Core.Tables.table4 [ r ]) in
  Alcotest.(check bool) "table4 grid" true (contains s4 "Cache hit[%]")

let test_table3_statistics () =
  let r = Lazy.force sor_result in
  let t3 = Core.Tables.table3 [ r ] in
  Alcotest.(check bool) "bitgen mean ~151" true
    (abs_float (t3.Core.Tables.bitgen.Jitise_util.Stats.mean -. 151.0) < 8.0);
  Alcotest.(check bool) "total is the sum of stage means" true
    (t3.Core.Tables.total_mean > 170.0 && t3.Core.Tables.total_mean < 190.0)

let test_table4_monotone () =
  let r = Lazy.force sor_result in
  let cells = Core.Tables.table4 [ r ] in
  let be h c =
    match
      List.find_opt
        (fun x -> x.Core.Tables.hit_rate = h && x.Core.Tables.cad_speedup = c)
        cells
    with
    | Some x -> x.Core.Tables.avg_break_even_seconds
    | None -> Alcotest.fail "missing cell"
  in
  Alcotest.(check bool) "faster CAD shortens break-even" true
    (be 0.0 0.9 < be 0.0 0.0 +. 1e-9);
  Alcotest.(check bool) "cache shortens break-even" true
    (be 0.9 0.0 < be 0.0 0.0 +. 1e-9)

let test_jit_manager_timeline () =
  let _, _, report = specialize float_kernel_src 200 in
  let t = Core.Jit_manager.timeline report in
  Alcotest.(check bool) "events chronological" true
    (let rec mono = function
       | a :: b :: r ->
           a.Core.Jit_manager.at_seconds <= b.Core.Jit_manager.at_seconds
           && mono (b :: r)
       | _ -> true
     in
     mono t.Core.Jit_manager.events);
  Alcotest.(check bool) "specialization time matches report" true
    (abs_float
       (t.Core.Jit_manager.specialization_seconds
       -. (report.Core.Asip_sp.sum_seconds
          +. report.Core.Asip_sp.search_wall_seconds))
    < 1.0);
  Alcotest.(check bool) "reconfiguration in milliseconds" true
    (t.Core.Jit_manager.reconfiguration_seconds > 0.0
    && t.Core.Jit_manager.reconfiguration_seconds < 1.0);
  (match t.Core.Jit_manager.overtake_seconds with
  | Some ot ->
      Alcotest.(check bool) "overtake after readiness" true
        (ot
        >= t.Core.Jit_manager.specialization_seconds
           +. t.Core.Jit_manager.reconfiguration_seconds -. 1e-6)
  | None -> Alcotest.fail "a >1.2x speedup must overtake");
  (* rendering works *)
  let s = Format.asprintf "%a" Core.Jit_manager.pp_timeline t in
  Alcotest.(check bool) "rendered" true (String.length s > 100)

let test_jit_manager_overtake_math () =
  (* with speedup s and readiness T, overtake satisfies
     spec + s (T* - T) = T* *)
  let _, _, report = specialize float_kernel_src 200 in
  let t = Core.Jit_manager.timeline report in
  match t.Core.Jit_manager.overtake_seconds with
  | Some t_star ->
      let t_ready =
        t.Core.Jit_manager.specialization_seconds
        +. t.Core.Jit_manager.reconfiguration_seconds
      in
      let work_jit =
        t.Core.Jit_manager.specialization_seconds
        +. (t.Core.Jit_manager.speedup *. (t_star -. t_ready))
      in
      Alcotest.(check bool) "work parity at overtake" true
        (abs_float (work_jit -. t_star) /. t_star < 1e-6)
  | None -> Alcotest.fail "expected overtake"

let test_diagrams () =
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  let f1 = Core.Diagrams.figure1 () in
  List.iter
    (fun stage -> Alcotest.(check bool) stage true (contains f1 stage))
    [ "source code"; "bitcode (IR)"; "virtual machine"; "ASIP specialization" ];
  let f2 = Core.Diagrams.figure2 () in
  List.iter
    (fun step -> Alcotest.(check bool) step true (contains f2 step))
    [ "Candidate Search"; "Netlist Generation"; "Instruction Implementation";
      "MAXMISO"; "@50pS3L" ]

let test_spec_builders () =
  let spec =
    Core.Spec.default |> Core.Spec.with_jobs 4
    |> Core.Spec.with_cache (Jitise_cad.Cache.create ())
    |> Core.Spec.with_stage_cache (Jitise_util.Artifact.create ())
    |> Core.Spec.with_tracer (Jitise_util.Trace.create ())
  in
  Alcotest.(check int) "jobs set" 4 spec.Core.Spec.jobs;
  Alcotest.(check bool) "cache set" true (spec.Core.Spec.cache <> None);
  Alcotest.(check bool) "stage cache set" true
    (spec.Core.Spec.stage_cache <> None);
  Alcotest.(check bool) "stage cache off by default" true
    (Core.Spec.default.Core.Spec.stage_cache = None);
  Alcotest.(check bool) "tracer set" true (spec.Core.Spec.tracer <> None);
  Alcotest.(check int) "default is serial" 1 Core.Spec.default.Core.Spec.jobs;
  Alcotest.(check bool) "default has no cache" true
    (Core.Spec.default.Core.Spec.cache = None);
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Spec.with_jobs: jobs must be >= 1 (got 0)") (fun () ->
      ignore (Core.Spec.with_jobs 0 Core.Spec.default))

(* ------------------------------------------------------------------ *)
(* Fault injection and recovery                                        *)
(* ------------------------------------------------------------------ *)

module Cad = Jitise_cad
module U = Jitise_util

let float_kernel = lazy (
  let m = compile float_kernel_src in
  let out = run m 200 in
  (m, out))

(* Two structurally different hot loops: the selection contains two
   distinct data-path signatures, so a permanent CAD failure on one has
   a next-ranked alternate to promote. *)
let two_kernel_src =
  "double a[64]; double b[64]; double out[64]; double out2[64];\n\
   int main(int n) {\n\
  \  int i;\n\
  \  for (i = 0; i < 64; i = i + 1) { a[i] = i * 0.5 + 1.0; b[i] = i * 0.25 + 2.0; }\n\
  \  int t;\n\
  \  for (t = 0; t < n; t = t + 1) {\n\
  \    for (i = 0; i < 64; i = i + 1) {\n\
  \      out[i] = (a[i] * 1.5 + b[i] * 2.5) * (a[i] - b[i]) + out[i] * 0.5;\n\
  \    }\n\
  \    for (i = 0; i < 64; i = i + 1) {\n\
  \      out2[i] = a[i] * b[i] * 0.75 + (b[i] - a[i] * 0.125) + out2[i] * 0.25;\n\
  \    }\n\
  \  }\n\
  \  double s = 0.0;\n\
  \  for (i = 0; i < 64; i = i + 1) { s = s + out[i] + out2[i]; }\n\
  \  return s;\n\
   }"

let two_kernel = lazy (
  let m = compile two_kernel_src in
  let out = run m 200 in
  (m, out))

let faulted_report ?(kernel = float_kernel) ?(rates = fun c -> c)
    ?(retries = 3) ?deadline ?select ~seed () =
  let m, out = Lazy.force kernel in
  let spec =
    Core.Spec.default
    |> Core.Spec.with_faults (rates (Cad.Faults.defaults ~seed))
    |> Core.Spec.with_retry
         (U.Retry.default
         |> U.Retry.with_max_attempts retries
         |> U.Retry.with_specialization_deadline deadline)
  in
  let spec =
    match select with None -> spec | Some s -> Core.Spec.with_select s spec
  in
  Core.Asip_sp.run_spec ~spec db m out.Vm.Machine.profile
    ~total_cycles:out.Vm.Machine.native_cycles

let signature_of (s : Ise.Select.scored) =
  s.Ise.Select.candidate.Ise.Candidate.signature

(* Bounded deterministic seed scans: the fault model is a pure function
   of (seed, signature, ...), so these always land on the same seed. *)
let scan_seeds ~what p =
  let rec go seed =
    if seed > 80 then Alcotest.fail ("no seed produced " ^ what)
    else match p seed with Some x -> x | None -> go (seed + 1)
  in
  go 0

let test_faults_retry_then_success () =
  let r =
    scan_seeds ~what:"a retry-then-success" (fun seed ->
        let r = faulted_report ~seed () in
        if
          r.Core.Asip_sp.failed_attempts > 0
          && r.Core.Asip_sp.dropped = []
          && r.Core.Asip_sp.degraded = 0
        then Some r
        else None)
  in
  let recovered =
    List.filter
      (fun (c : Core.Asip_sp.candidate_result) ->
        c.Core.Asip_sp.failed_attempts > 0)
      r.Core.Asip_sp.candidates
  in
  Alcotest.(check bool) "a candidate recovered" true (recovered <> []);
  List.iter
    (fun (c : Core.Asip_sp.candidate_result) ->
      Alcotest.(check bool) "still implemented, not promoted" true
        (c.Core.Asip_sp.outcome = Core.Asip_sp.Implemented);
      Alcotest.(check bool) "retries counted" true
        (c.Core.Asip_sp.attempts = c.Core.Asip_sp.failed_attempts + 1);
      Alcotest.(check bool) "failed attempts cost simulated time" true
        (c.Core.Asip_sp.wasted_seconds > 0.0))
    recovered;
  Alcotest.(check (float 1e-6)) "sum = const + map + par + wasted"
    r.Core.Asip_sp.sum_seconds
    (r.Core.Asip_sp.const_seconds +. r.Core.Asip_sp.map_seconds
    +. r.Core.Asip_sp.par_seconds +. r.Core.Asip_sp.wasted_seconds);
  Alcotest.(check bool) "report-level waste" true
    (r.Core.Asip_sp.wasted_seconds > 0.0)

let test_faults_deterministic () =
  let seed = 20110516 in
  let a = faulted_report ~seed () and b = faulted_report ~seed () in
  Alcotest.(check (float 0.0)) "same total" a.Core.Asip_sp.sum_seconds
    b.Core.Asip_sp.sum_seconds;
  Alcotest.(check int) "same attempts" a.Core.Asip_sp.total_attempts
    b.Core.Asip_sp.total_attempts;
  Alcotest.(check (float 0.0)) "same waste" a.Core.Asip_sp.wasted_seconds
    b.Core.Asip_sp.wasted_seconds

let test_faults_off_report_is_clean () =
  let m, out = Lazy.force float_kernel in
  let r =
    Core.Asip_sp.run_spec db m out.Vm.Machine.profile
      ~total_cycles:out.Vm.Machine.native_cycles
  in
  Alcotest.(check int) "no failures" 0 r.Core.Asip_sp.failed_attempts;
  Alcotest.(check (float 0.0)) "no waste" 0.0 r.Core.Asip_sp.wasted_seconds;
  Alcotest.(check int) "nothing degraded" 0 r.Core.Asip_sp.degraded;
  Alcotest.(check bool) "nothing dropped" true (r.Core.Asip_sp.dropped = []);
  Alcotest.(check bool) "no deadline pressure" false
    r.Core.Asip_sp.deadline_exceeded

let cap1 =
  { Ise.Select.default_config with Ise.Select.max_candidates = Some 1 }

let harsh c = { c with Cad.Faults.crash_rate = 0.5 }

let test_faults_promotion () =
  let r =
    scan_seeds ~what:"a promotion" (fun seed ->
        let r =
          faulted_report ~kernel:two_kernel ~rates:harsh ~retries:1
            ~select:cap1 ~seed ()
        in
        if r.Core.Asip_sp.degraded >= 1 then Some r else None)
  in
  Alcotest.(check int) "exactly the capped slot degraded" 1
    r.Core.Asip_sp.degraded;
  Alcotest.(check bool) "nothing dropped" true (r.Core.Asip_sp.dropped = []);
  match r.Core.Asip_sp.candidates with
  | [ c ] -> (
      match c.Core.Asip_sp.outcome with
      | Core.Asip_sp.Promoted { from; from_failure } ->
          Alcotest.(check bool) "promoted a different data path" true
            (signature_of c.Core.Asip_sp.scored <> signature_of from);
          Alcotest.(check bool) "failure evidence kept" true
            (from_failure.Cad.Flow.wasted_seconds > 0.0);
          Alcotest.(check bool) "all prior attempts accounted" true
            (c.Core.Asip_sp.attempts = c.Core.Asip_sp.failed_attempts + 1
            && c.Core.Asip_sp.failed_attempts >= 1)
      | Core.Asip_sp.Implemented -> Alcotest.fail "expected a promotion")
  | cs -> Alcotest.fail (Printf.sprintf "expected 1 slot, got %d" (List.length cs))

let test_faults_retries_exhausted_drops () =
  (* every stage crashes: no retry budget can save any slot *)
  let always c = { c with Cad.Faults.crash_rate = 1.0 } in
  let r = faulted_report ~rates:always ~retries:2 ~seed:0 () in
  Alcotest.(check bool) "nothing implemented" true
    (r.Core.Asip_sp.candidates = []);
  Alcotest.(check bool) "every slot dropped" true (r.Core.Asip_sp.dropped <> []);
  List.iter
    (fun (d : Core.Asip_sp.dropped) ->
      Alcotest.(check bool) "dropped for exhausted retries" true
        (d.Core.Asip_sp.drop_reason = Core.Asip_sp.Retries_exhausted);
      Alcotest.(check bool) "failure recorded" true
        (d.Core.Asip_sp.drop_failure <> None);
      Alcotest.(check bool) "waste recorded" true
        (d.Core.Asip_sp.drop_wasted_seconds > 0.0))
    r.Core.Asip_sp.dropped;
  Alcotest.(check bool) "software fallback has no hardware speedup" true
    (r.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio <= 1.0 +. 1e-9)

let test_faults_specialization_deadline () =
  (* find a fault-free seed, then give the whole specialization a budget
     that only covers the first bitstream *)
  let seed =
    scan_seeds ~what:"a fault-free run" (fun seed ->
        let r = faulted_report ~kernel:two_kernel ~seed () in
        if r.Core.Asip_sp.failed_attempts = 0 && r.Core.Asip_sp.dropped = []
        then Some seed
        else None)
  in
  let r =
    faulted_report ~kernel:two_kernel ~deadline:1.0 ~seed ()
  in
  Alcotest.(check bool) "deadline reported" true
    r.Core.Asip_sp.deadline_exceeded;
  Alcotest.(check bool) "some slots still made it (first build + hits)" true
    (r.Core.Asip_sp.candidates <> []);
  Alcotest.(check bool) "later slots dropped" true
    (r.Core.Asip_sp.dropped <> []);
  List.iter
    (fun (d : Core.Asip_sp.dropped) ->
      Alcotest.(check bool) "dropped by the deadline, not by a fault" true
        (d.Core.Asip_sp.drop_reason = Core.Asip_sp.Specialization_deadline
        && d.Core.Asip_sp.drop_failure = None))
    r.Core.Asip_sp.dropped;
  Alcotest.(check int) "slots partition the selection"
    (List.length r.Core.Asip_sp.selection)
    (List.length r.Core.Asip_sp.candidates
    + List.length r.Core.Asip_sp.dropped)

let test_spec_fault_builders () =
  let spec =
    Core.Spec.default
    |> Core.Spec.with_faults (Cad.Faults.defaults ~seed:7)
    |> Core.Spec.with_retry (U.Retry.with_max_attempts 5 U.Retry.default)
  in
  Alcotest.(check bool) "faults stored" true
    spec.Core.Spec.faults.Cad.Faults.enabled;
  Alcotest.(check int) "retry stored" 5
    spec.Core.Spec.retry.U.Retry.max_attempts;
  Alcotest.(check bool) "default has faults off" false
    Core.Spec.default.Core.Spec.faults.Cad.Faults.enabled;
  let invalid name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  invalid "bad fault rate rejected" (fun () ->
      Core.Spec.with_faults
        { (Cad.Faults.defaults ~seed:0) with Cad.Faults.crash_rate = 1.5 }
        Core.Spec.default);
  invalid "bad retry policy rejected" (fun () ->
      Core.Spec.with_retry
        { U.Retry.default with U.Retry.max_attempts = 0 }
        Core.Spec.default)

let test_timeline_jobs () =
  let _, _, report = specialize float_kernel_src 200 in
  let serial = Core.Jit_manager.timeline report in
  let j1 = Core.Jit_manager.timeline ~jobs:1 report in
  Alcotest.(check (float 1e-9)) "jobs:1 is the sequential schedule"
    serial.Core.Jit_manager.specialization_seconds
    j1.Core.Jit_manager.specialization_seconds;
  let j4 = Core.Jit_manager.timeline ~jobs:4 report in
  Alcotest.(check bool) "more lanes never slow the makespan" true
    (j4.Core.Jit_manager.specialization_seconds
    <= serial.Core.Jit_manager.specialization_seconds +. 1e-9);
  Alcotest.(check bool) "makespan covers the search phase" true
    (j4.Core.Jit_manager.specialization_seconds
    >= report.Core.Asip_sp.search_wall_seconds);
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Jit_manager.timeline: jobs must be >= 1 (got 0)")
    (fun () -> ignore (Core.Jit_manager.timeline ~jobs:0 report))

let test_timeline_faulted_events () =
  let r =
    scan_seeds ~what:"a retry-then-success" (fun seed ->
        let r = faulted_report ~seed () in
        if
          r.Core.Asip_sp.failed_attempts > 0
          && r.Core.Asip_sp.dropped = []
          && r.Core.Asip_sp.degraded = 0
        then Some r
        else None)
  in
  let t = Core.Jit_manager.timeline ~jobs:2 r in
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "recovery surfaces in the timeline" true
    (List.exists
       (fun (e : Core.Jit_manager.event) ->
         contains e.Core.Jit_manager.what "recovered after")
       t.Core.Jit_manager.events);
  Alcotest.(check bool) "waste delays readiness" true
    (t.Core.Jit_manager.specialization_seconds
    > r.Core.Asip_sp.search_wall_seconds)

(* ------------------------------------------------------------------ *)
(* Online closed-loop controller                                       *)
(* ------------------------------------------------------------------ *)

module JM = Core.Jit_manager

(* No pruning for the online runs: the phase kernels must all reach the
   candidate stage or a phase shift has nothing to swap to. *)
let online_spec = Core.Spec.default |> Core.Spec.with_prune Ise.Prune.none

let online_sweep =
  lazy
    (let w = Option.get (W.Registry.find "phased.sweep") in
     (w, JM.online ~spec:online_spec db w))

let test_online_report_structure () =
  let _, r = Lazy.force online_sweep in
  Alcotest.(check string) "app" "phased.sweep" r.JM.o_app;
  Alcotest.(check bool) "windows observed" true (r.JM.o_windows > 0);
  Alcotest.(check bool) "ci groups found" true (r.JM.o_cis > 0);
  Alcotest.(check bool) "cad accounting" true
    (r.JM.o_cad_completed + r.JM.o_cad_cancelled <= r.JM.o_cad_launched);
  (* all three runs execute the same adapted module on the same input *)
  let same a b =
    match (a, b) with
    | Some a, Some b -> Ir.Eval.equal_value a b
    | None, None -> true
    | _ -> false
  in
  Alcotest.(check bool) "same result in all three runs" true
    (same r.JM.o_adaptive.JM.run_ret r.JM.o_oracle.JM.run_ret
    && same r.JM.o_adaptive.JM.run_ret r.JM.o_nospec.JM.run_ret);
  (* the no-specialization baseline never touches the fabric *)
  Alcotest.(check int) "nospec reconfigures nothing" 0
    r.JM.o_nospec.JM.run_reconfigurations;
  Alcotest.(check (float 0.0)) "nospec never stalls" 0.0
    r.JM.o_nospec.JM.run_stall_cycles;
  Alcotest.(check bool) "events chronological" true
    (let rec mono = function
       | a :: b :: rest -> a.JM.at_seconds <= b.JM.at_seconds && mono (b :: rest)
       | _ -> true
     in
     mono r.JM.o_events)

let test_online_adaptive_pays_off () =
  let _, r = Lazy.force online_sweep in
  Alcotest.(check bool) "adaptive beats the static oracle" true
    (r.JM.o_adaptive.JM.run_cycles < r.JM.o_oracle.JM.run_cycles);
  Alcotest.(check bool) "adaptive beats no specialization" true
    (r.JM.o_adaptive.JM.run_cycles < r.JM.o_nospec.JM.run_cycles);
  Alcotest.(check bool) "the controller actually adapted" true
    (r.JM.o_adaptive.JM.run_swaps > 0
    && r.JM.o_adaptive.JM.run_reconfigurations > 0)

let test_online_replay_is_jobs_invariant () =
  (* the controller runs on simulated time, so the domain count used for
     the CAD evaluation must not leak into the replay *)
  let w, serial = Lazy.force online_sweep in
  let par = JM.online ~spec:(Core.Spec.with_jobs 4 online_spec) db w in
  let render r = Format.asprintf "%a" JM.pp_online r in
  Alcotest.(check string) "jobs:4 replays byte-identically" (render serial)
    (render par)

let test_online_knobs_do_not_touch_the_sweep () =
  (* loop-off guarantee: the [online] record is consulted only by the
     online controller, so no setting of it may perturb the batch
     pipeline's reports or the timeline rendering *)
  let m, out = Lazy.force float_kernel in
  let base =
    Core.Asip_sp.run_spec db m out.Vm.Machine.profile
      ~total_cycles:out.Vm.Machine.native_cycles
  in
  let tweaked_spec =
    Core.Spec.with_online
      {
        Core.Spec.default_online with
        Core.Spec.slots = 7;
        Core.Spec.window = 64;
        Core.Spec.evict = Jitise_woolcano.Asip.Beneficial;
      }
      Core.Spec.default
  in
  let tweaked =
    Core.Asip_sp.run_spec ~spec:tweaked_spec db m out.Vm.Machine.profile
      ~total_cycles:out.Vm.Machine.native_cycles
  in
  (* compare the simulated-time quantities: host-measured search wall
     time is the only run-to-run variation allowed *)
  Alcotest.(check (float 0.0)) "same overhead" base.Core.Asip_sp.sum_seconds
    tweaked.Core.Asip_sp.sum_seconds;
  Alcotest.(check (list string)) "same selection"
    (List.map signature_of base.Core.Asip_sp.selection)
    (List.map signature_of tweaked.Core.Asip_sp.selection);
  Alcotest.(check (float 0.0)) "same speedup"
    base.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio
    tweaked.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio;
  let sim_timeline r =
    let t = JM.timeline r in
    (t.JM.reconfiguration_seconds, List.length t.JM.events)
  in
  Alcotest.(check bool) "same simulated timeline shape" true
    (sim_timeline base = sim_timeline tweaked)

let test_online_spec_validation () =
  Alcotest.check_raises "slots must be >= 1"
    (Invalid_argument "Spec.with_online: slots must be >= 1 (got 0)")
    (fun () ->
      ignore
        (Core.Spec.with_online
           { Core.Spec.default_online with Core.Spec.slots = 0 }
           Core.Spec.default));
  Alcotest.check_raises "decay must stay below 1"
    (Invalid_argument "Spec.with_online: decay must be in [0, 1) (got 1)")
    (fun () ->
      ignore
        (Core.Spec.with_online
           { Core.Spec.default_online with Core.Spec.decay = 1.0 }
           Core.Spec.default))

let () =
  Alcotest.run "core"
    [
      ( "adapt",
        [
          Alcotest.test_case "preserves results" `Quick test_adapt_preserves_results;
          Alcotest.test_case "speedup matches estimate" `Quick
            test_adapt_measured_speedup_matches_estimate;
          Alcotest.test_case "copies the module" `Quick test_adapt_module_is_a_copy;
          Alcotest.test_case "sor workload" `Slow test_adapt_on_workload;
        ] );
      ( "asip-sp",
        [
          Alcotest.test_case "report invariants" `Quick test_asip_sp_report_invariants;
          Alcotest.test_case "run cache dedup" `Quick
            test_asip_sp_cache_dedups_unrolled_copies;
          Alcotest.test_case "no pruning" `Quick test_asip_sp_no_pruning;
          Alcotest.test_case "cad speedup" `Quick test_asip_sp_cad_speedup_config;
          Alcotest.test_case "candidate costs" `Quick test_candidate_costs_export;
          Alcotest.test_case "spec builders" `Quick test_spec_builders;
        ] );
      ( "faults",
        [
          Alcotest.test_case "retry then success" `Quick
            test_faults_retry_then_success;
          Alcotest.test_case "deterministic" `Quick test_faults_deterministic;
          Alcotest.test_case "faults off is clean" `Quick
            test_faults_off_report_is_clean;
          Alcotest.test_case "promotion" `Quick test_faults_promotion;
          Alcotest.test_case "retries exhausted drops" `Quick
            test_faults_retries_exhausted_drops;
          Alcotest.test_case "specialization deadline" `Quick
            test_faults_specialization_deadline;
          Alcotest.test_case "spec fault builders" `Quick
            test_spec_fault_builders;
          Alcotest.test_case "timeline jobs" `Quick test_timeline_jobs;
          Alcotest.test_case "timeline faulted events" `Quick
            test_timeline_faulted_events;
        ] );
      ( "experiment-tables",
        [
          Alcotest.test_case "experiment structure" `Slow test_experiment_structure;
          Alcotest.test_case "table rows" `Slow test_table_rows;
          Alcotest.test_case "table renderers" `Slow test_table_renderers;
          Alcotest.test_case "table3 statistics" `Slow test_table3_statistics;
          Alcotest.test_case "table4 monotone" `Slow test_table4_monotone;
          Alcotest.test_case "diagrams" `Quick test_diagrams;
          Alcotest.test_case "jit manager timeline" `Quick
            test_jit_manager_timeline;
          Alcotest.test_case "jit manager overtake" `Quick
            test_jit_manager_overtake_math;
        ] );
      ( "online",
        [
          Alcotest.test_case "report structure" `Slow
            test_online_report_structure;
          Alcotest.test_case "adaptive pays off" `Slow
            test_online_adaptive_pays_off;
          Alcotest.test_case "jobs-invariant replay" `Slow
            test_online_replay_is_jobs_invariant;
          Alcotest.test_case "loop off leaves the sweep alone" `Quick
            test_online_knobs_do_not_touch_the_sweep;
          Alcotest.test_case "spec validation" `Quick
            test_online_spec_validation;
        ] );
    ]
