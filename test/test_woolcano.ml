(* Tests for Jitise_woolcano: architecture constants, the UDI slot
   manager with LRU partial reconfiguration. *)

module Cad = Jitise_cad
module W = Jitise_woolcano

let bitstream ?(luts = 500) signature =
  Cad.Bitstream.make ~signature ~size_bytes:40_000 ~frames:60 ~luts
    ~generation_seconds:200.0

let test_arch_reconfiguration_time () =
  let b = bitstream "x" in
  let t = W.Arch.reconfiguration_seconds W.Arch.default b in
  (* 40 kB over a 66 MB/s ICAP plus 2 ms setup: ~2.6 ms *)
  Alcotest.(check bool) "milliseconds scale" true (t > 0.002 && t < 0.01)

let test_asip_load_and_hit () =
  let asip = W.Asip.create () in
  let b = bitstream "a" in
  let _, reconfigured = W.Asip.load asip b in
  Alcotest.(check bool) "first load reconfigures" true reconfigured;
  let _, again = W.Asip.load asip b in
  Alcotest.(check bool) "resident CI does not reconfigure" false again;
  Alcotest.(check int) "one reconfiguration" 1 asip.W.Asip.reconfigurations;
  Alcotest.(check int) "occupancy" 1 (W.Asip.occupancy asip);
  Alcotest.(check bool) "time accounted" true (asip.W.Asip.reconfig_seconds > 0.0)

let test_asip_rejects_corrupt_bitstream () =
  let asip = W.Asip.create () in
  let b = Cad.Bitstream.corrupt (bitstream "a") in
  Alcotest.check_raises "checksum check guards the slot"
    (W.Asip.Corrupt_bitstream "a") (fun () -> ignore (W.Asip.load asip b));
  (* the failed load must leave the fabric untouched *)
  Alcotest.(check int) "no slot occupied" 0 (W.Asip.occupancy asip);
  Alcotest.(check int) "no reconfiguration" 0 asip.W.Asip.reconfigurations

let test_asip_lru_eviction () =
  let arch = { W.Arch.default with W.Arch.udi_slots = 2 } in
  let asip = W.Asip.create ~arch () in
  ignore (W.Asip.load asip (bitstream "a"));
  ignore (W.Asip.load asip (bitstream "b"));
  (* touch a so that b is the LRU victim *)
  ignore (W.Asip.load asip (bitstream "a"));
  ignore (W.Asip.load asip (bitstream "c"));
  Alcotest.(check int) "one eviction" 1 asip.W.Asip.evictions;
  let resident = List.sort compare (W.Asip.resident asip) in
  Alcotest.(check (list string)) "b evicted" [ "a"; "c" ] resident;
  Alcotest.(check bool) "find resident" true (W.Asip.find asip "a" <> None);
  Alcotest.(check bool) "find evicted" true (W.Asip.find asip "b" = None)

let test_asip_capacity_guard () =
  let asip = W.Asip.create () in
  Alcotest.(check bool) "oversized CI rejected" true
    (try
       ignore (W.Asip.load asip (bitstream ~luts:1_000_000 "huge"));
       false
     with Invalid_argument _ -> true)

let test_asip_slot_count () =
  let asip = W.Asip.create () in
  for i = 1 to W.Arch.default.W.Arch.udi_slots do
    ignore (W.Asip.load asip (bitstream (string_of_int i)))
  done;
  Alcotest.(check int) "all slots used"
    W.Arch.default.W.Arch.udi_slots
    (W.Asip.occupancy asip);
  Alcotest.(check int) "no eviction yet" 0 asip.W.Asip.evictions;
  ignore (W.Asip.load asip (bitstream "overflow"));
  Alcotest.(check int) "eviction on overflow" 1 asip.W.Asip.evictions

(* ------------------------------------------------------------------ *)
(* Online mode: begin_load deadlines and the CI state machine          *)
(* ------------------------------------------------------------------ *)

let test_begin_load_state_machine () =
  let asip = W.Asip.create ~slots:2 () in
  let b = bitstream "a" in
  Alcotest.(check bool) "absent before load" true
    (W.Asip.state_of asip ~now_seconds:0.0 "a" = W.Asip.Absent);
  let _, reconfigured, ready_at = W.Asip.begin_load asip ~now_seconds:1.0 b in
  Alcotest.(check bool) "first begin_load reconfigures" true reconfigured;
  Alcotest.(check bool) "deadline past start" true (ready_at > 1.0);
  Alcotest.(check bool) "loading mid-reconfiguration" true
    (W.Asip.state_of asip ~now_seconds:(ready_at -. 1e-6) "a"
    = W.Asip.Loading ready_at);
  Alcotest.(check bool) "dispatch refused mid-reconfiguration" false
    (W.Asip.dispatch_ready asip ~now_seconds:(ready_at -. 1e-6) "a");
  Alcotest.(check bool) "loaded after the deadline" true
    (W.Asip.state_of asip ~now_seconds:ready_at "a" = W.Asip.Loaded);
  Alcotest.(check bool) "dispatch ready after the deadline" true
    (W.Asip.dispatch_ready asip ~now_seconds:ready_at "a")

let test_begin_load_resident_keeps_deadline () =
  let asip = W.Asip.create ~slots:2 () in
  let b = bitstream "a" in
  let _, _, ready1 = W.Asip.begin_load asip ~now_seconds:0.0 b in
  let _, again, ready2 = W.Asip.begin_load asip ~now_seconds:0.5 b in
  Alcotest.(check bool) "resident image is left alone" false again;
  Alcotest.(check (float 1e-12)) "existing deadline reported" ready1 ready2;
  Alcotest.(check int) "one reconfiguration" 1 asip.W.Asip.reconfigurations

let test_batch_load_is_immediately_ready () =
  let asip = W.Asip.create ~slots:2 () in
  ignore (W.Asip.load asip (bitstream "a"));
  Alcotest.(check bool) "batch mode has no deadline" true
    (W.Asip.dispatch_ready asip ~now_seconds:0.0 "a")

let test_peek_victim_and_benefit () =
  let asip = W.Asip.create ~slots:2 ~policy:W.Asip.Beneficial () in
  Alcotest.(check bool) "no victim while a slot is free" true
    (W.Asip.peek_victim asip = None);
  ignore (W.Asip.load asip (bitstream "a"));
  Alcotest.(check bool) "still a free slot" true
    (W.Asip.peek_victim asip = None);
  ignore (W.Asip.load asip (bitstream "b"));
  W.Asip.set_benefit asip "a" 10.0;
  W.Asip.set_benefit asip "b" 1.0;
  Alcotest.(check (option string)) "lowest benefit is the victim" (Some "b")
    (W.Asip.peek_victim asip);
  ignore (W.Asip.load asip (bitstream "c"));
  let resident = List.sort compare (W.Asip.resident asip) in
  Alcotest.(check (list string)) "b evicted" [ "a"; "c" ] resident

(* ------------------------------------------------------------------ *)
(* Eviction-policy laws                                                *)
(* ------------------------------------------------------------------ *)

let sig_of_int i = Printf.sprintf "s%d" i

let qcheck_lru_never_evicts_just_loaded =
  QCheck.Test.make ~name:"lru never evicts the just-loaded signature"
    ~count:300
    QCheck.(pair (int_range 1 4) (small_list (int_range 0 9)))
    (fun (slots, ops) ->
      let asip = W.Asip.create ~slots ~policy:W.Asip.Lru () in
      List.for_all
        (fun i ->
          let s = sig_of_int i in
          ignore (W.Asip.load asip (bitstream s));
          W.Asip.find asip s <> None)
        ops)

let qcheck_beneficial_permutation_invariant =
  (* Fill a fabric with occupants drawn from a tiny benefit range (so
     ties are common), in two different load orders: the victim of the
     next load must not depend on the order the occupants arrived. *)
  QCheck.Test.make
    ~name:"beneficial victim is invariant under occupant load order"
    ~count:300
    QCheck.(
      pair (int_range 2 4)
        (small_list (pair (int_range 0 9) (int_range 0 2))))
    (fun (slots, pairs) ->
      (* Distinct signatures, keeping the first benefit seen for each. *)
      let seen = Hashtbl.create 8 in
      let occupants =
        List.filter
          (fun (i, _) ->
            if Hashtbl.mem seen i then false
            else begin
              Hashtbl.add seen i ();
              true
            end)
          pairs
      in
      let fill order =
        let asip = W.Asip.create ~slots ~policy:W.Asip.Beneficial () in
        List.iter
          (fun (i, _) -> ignore (W.Asip.load asip (bitstream (sig_of_int i))))
          order;
        List.iter
          (fun (i, b) ->
            W.Asip.set_benefit asip (sig_of_int i) (float_of_int b))
          order;
        W.Asip.peek_victim asip
      in
      (* Only meaningful when the fabric is exactly full: otherwise a
         free slot short-circuits the victim scan in both runs. *)
      List.length occupants <> slots
      || fill occupants = fill (List.rev occupants))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "woolcano"
    [
      ( "arch",
        [ Alcotest.test_case "reconfiguration time" `Quick test_arch_reconfiguration_time ] );
      ( "asip",
        [
          Alcotest.test_case "load and hit" `Quick test_asip_load_and_hit;
          Alcotest.test_case "rejects corrupt bitstream" `Quick
            test_asip_rejects_corrupt_bitstream;
          Alcotest.test_case "lru eviction" `Quick test_asip_lru_eviction;
          Alcotest.test_case "capacity guard" `Quick test_asip_capacity_guard;
          Alcotest.test_case "slot count" `Quick test_asip_slot_count;
        ] );
      ( "online",
        [
          Alcotest.test_case "begin_load state machine" `Quick
            test_begin_load_state_machine;
          Alcotest.test_case "resident begin_load keeps its deadline" `Quick
            test_begin_load_resident_keeps_deadline;
          Alcotest.test_case "batch load immediately ready" `Quick
            test_batch_load_is_immediately_ready;
          Alcotest.test_case "peek_victim and benefits" `Quick
            test_peek_victim_and_benefit;
        ] );
      ( "laws",
        qsuite
          [
            qcheck_lru_never_evicts_just_loaded;
            qcheck_beneficial_permutation_invariant;
          ] );
    ]
