(* Tests for Jitise_woolcano: architecture constants, the UDI slot
   manager with LRU partial reconfiguration. *)

module Cad = Jitise_cad
module W = Jitise_woolcano

let bitstream ?(luts = 500) signature =
  Cad.Bitstream.make ~signature ~size_bytes:40_000 ~frames:60 ~luts
    ~generation_seconds:200.0

let test_arch_reconfiguration_time () =
  let b = bitstream "x" in
  let t = W.Arch.reconfiguration_seconds W.Arch.default b in
  (* 40 kB over a 66 MB/s ICAP plus 2 ms setup: ~2.6 ms *)
  Alcotest.(check bool) "milliseconds scale" true (t > 0.002 && t < 0.01)

let test_asip_load_and_hit () =
  let asip = W.Asip.create () in
  let b = bitstream "a" in
  let _, reconfigured = W.Asip.load asip b in
  Alcotest.(check bool) "first load reconfigures" true reconfigured;
  let _, again = W.Asip.load asip b in
  Alcotest.(check bool) "resident CI does not reconfigure" false again;
  Alcotest.(check int) "one reconfiguration" 1 asip.W.Asip.reconfigurations;
  Alcotest.(check int) "occupancy" 1 (W.Asip.occupancy asip);
  Alcotest.(check bool) "time accounted" true (asip.W.Asip.reconfig_seconds > 0.0)

let test_asip_rejects_corrupt_bitstream () =
  let asip = W.Asip.create () in
  let b = Cad.Bitstream.corrupt (bitstream "a") in
  Alcotest.check_raises "checksum check guards the slot"
    (W.Asip.Corrupt_bitstream "a") (fun () -> ignore (W.Asip.load asip b));
  (* the failed load must leave the fabric untouched *)
  Alcotest.(check int) "no slot occupied" 0 (W.Asip.occupancy asip);
  Alcotest.(check int) "no reconfiguration" 0 asip.W.Asip.reconfigurations

let test_asip_lru_eviction () =
  let arch = { W.Arch.default with W.Arch.udi_slots = 2 } in
  let asip = W.Asip.create ~arch () in
  ignore (W.Asip.load asip (bitstream "a"));
  ignore (W.Asip.load asip (bitstream "b"));
  (* touch a so that b is the LRU victim *)
  ignore (W.Asip.load asip (bitstream "a"));
  ignore (W.Asip.load asip (bitstream "c"));
  Alcotest.(check int) "one eviction" 1 asip.W.Asip.evictions;
  let resident = List.sort compare (W.Asip.resident asip) in
  Alcotest.(check (list string)) "b evicted" [ "a"; "c" ] resident;
  Alcotest.(check bool) "find resident" true (W.Asip.find asip "a" <> None);
  Alcotest.(check bool) "find evicted" true (W.Asip.find asip "b" = None)

let test_asip_capacity_guard () =
  let asip = W.Asip.create () in
  Alcotest.(check bool) "oversized CI rejected" true
    (try
       ignore (W.Asip.load asip (bitstream ~luts:1_000_000 "huge"));
       false
     with Invalid_argument _ -> true)

let test_asip_slot_count () =
  let asip = W.Asip.create () in
  for i = 1 to W.Arch.default.W.Arch.udi_slots do
    ignore (W.Asip.load asip (bitstream (string_of_int i)))
  done;
  Alcotest.(check int) "all slots used"
    W.Arch.default.W.Arch.udi_slots
    (W.Asip.occupancy asip);
  Alcotest.(check int) "no eviction yet" 0 asip.W.Asip.evictions;
  ignore (W.Asip.load asip (bitstream "overflow"));
  Alcotest.(check int) "eviction on overflow" 1 asip.W.Asip.evictions

let () =
  Alcotest.run "woolcano"
    [
      ( "arch",
        [ Alcotest.test_case "reconfiguration time" `Quick test_arch_reconfiguration_time ] );
      ( "asip",
        [
          Alcotest.test_case "load and hit" `Quick test_asip_load_and_hit;
          Alcotest.test_case "rejects corrupt bitstream" `Quick
            test_asip_rejects_corrupt_bitstream;
          Alcotest.test_case "lru eviction" `Quick test_asip_lru_eviction;
          Alcotest.test_case "capacity guard" `Quick test_asip_capacity_guard;
          Alcotest.test_case "slot count" `Quick test_asip_slot_count;
        ] );
    ]
