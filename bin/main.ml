(** The [jitise] command-line tool.

    Subcommands regenerate every table and figure of the paper's
    evaluation ([table1] .. [table4], [figure1], [figure2], [all]),
    inspect workloads ([list], [inspect]), and expose the compiler and
    VM for ad-hoc MiniC programs ([compile], [run], [specialize]). *)

module Ir = Jitise_ir
module F = Jitise_frontend
module Vm = Jitise_vm
module W = Jitise_workloads
module Ise = Jitise_ise
module Pp = Jitise_pivpav
module Cad = Jitise_cad
module Core = Jitise_core
module U = Jitise_util
module Wool = Jitise_woolcano

open Cmdliner

let db = lazy (Pp.Database.create ())

(* ------------------------------------------------------------------ *)
(* Sweep-engine configuration shared by the table/specialize commands  *)
(* ------------------------------------------------------------------ *)

(* Everything the [--faults]/[--fault-seed]/[--retries]/[--deadline]
   and [--chaos]/[--chaos-seed]/[--stage-*]/[--run-deadline] flags
   decide, bundled so every command threads one value. *)
type fault_options = {
  faults : bool;
  fault_seed : int;
  retries : int;
  deadline : float option;  (** whole-specialization budget, seconds *)
  chaos : bool;
  chaos_seed : int;
  stage_attempts : int;  (** supervised attempts per stage execution *)
  stage_deadline : float option;  (** simulated stall budget per attempt *)
  run_deadline : float option;  (** simulated supervision budget per run *)
}

let mk_spec ~trace ~jobs ~shared_cache ~stage_cache ~store_dir ~vm_engine
    ~vm_tuning ~fault_options:fo =
  (* Fail before the sweep, not after: a full run takes minutes and an
     unwritable trace path would otherwise only surface at the end. *)
  Option.iter
    (fun path ->
      try Out_channel.with_open_text path (fun _ -> ())
      with Sys_error msg ->
        Printf.eprintf "jitise: cannot write trace file: %s\n" msg;
        exit 1)
    trace;
  let supervisor =
    {
      U.Supervisor.default_policy with
      U.Supervisor.max_attempts = fo.stage_attempts;
      stage_deadline_seconds = fo.stage_deadline;
      run_deadline_seconds = fo.run_deadline;
    }
  in
  let spec =
    Core.Spec.default |> Core.Spec.with_jobs jobs
    |> Core.Spec.with_vm_engine vm_engine
    |> Core.Spec.with_vm_tuning vm_tuning
    |> Core.Spec.with_supervisor supervisor
  in
  (* Chaos before the store: {!Core.Spec.with_store_dir} wires the
     store fault planes from the spec's chaos config. *)
  let spec =
    if fo.chaos then
      Core.Spec.with_chaos (U.Chaos.defaults ~seed:fo.chaos_seed) spec
    else spec
  in
  let spec =
    if trace <> None then Core.Spec.with_tracer (U.Trace.create ()) spec
    else spec
  in
  let spec =
    if shared_cache then Core.Spec.with_cache (Cad.Cache.create ()) spec
    else spec
  in
  let spec =
    match store_dir with
    | Some dir -> Core.Spec.with_store_dir dir spec
    | None ->
        if stage_cache then
          Core.Spec.with_stage_cache (U.Artifact.create ()) spec
        else spec
  in
  if not fo.faults then spec
  else
    spec
    |> Core.Spec.with_faults (Cad.Faults.defaults ~seed:fo.fault_seed)
    |> Core.Spec.with_retry
         (U.Retry.default
         |> U.Retry.with_max_attempts fo.retries
         |> U.Retry.with_specialization_deadline fo.deadline)

(* Write the trace and report cache statistics once the work is done. *)
let finish_spec ?(stage_stats = false) (spec : Core.Spec.t) trace =
  (match (spec.Core.Spec.tracer, trace) with
  | Some t, Some path ->
      U.Trace.write t path;
      Printf.eprintf "[trace] wrote %s (%d spans)\n%!" path
        (List.length (U.Trace.events t))
  | _ -> ());
  (match spec.Core.Spec.cache with
  | Some c ->
      Format.eprintf "[cache] %a@." Cad.Cache.pp_stats (Cad.Cache.stats c)
  | None -> ());
  (match spec.Core.Spec.stage_cache with
  | Some store when stage_stats ->
      Format.eprintf "[stage-cache] %a@." U.Artifact.pp_stats
        (U.Artifact.stats store)
  | Some _ | None -> ());
  if stage_stats then
    match Vm.Machine.fusion_stats () with
    | [] -> ()
    | stats ->
        Printf.eprintf "[vm-fusion] %s\n%!"
          (String.concat ", "
             (List.map (fun (name, n) -> Printf.sprintf "%s=%d" name n) stats))

let render_table1 ~faults:_ results =
  print_string (Core.Tables.render_table1 (Core.Tables.table1 results))

let render_table2 ~faults results =
  print_string (Core.Tables.render_table2 ~faults (Core.Tables.table2 results))

let render_table3 ~faults:_ results =
  print_string (Core.Tables.render_table3 (Core.Tables.table3 results))

let render_table4 ~faults:_ results =
  print_string (Core.Tables.render_table4 (Core.Tables.table4 results))

let run_figure1 () = print_string (Core.Diagrams.figure1 ())
let run_figure2 () = print_string (Core.Diagrams.figure2 ())

let render_all ~faults results =
  print_endline "=== Table I ===";
  render_table1 ~faults results;
  print_endline "\n=== Table II ===";
  render_table2 ~faults results;
  print_endline "\n=== Table III ===";
  render_table3 ~faults results;
  print_endline "\n=== Table IV ===";
  render_table4 ~faults results;
  print_endline "\n=== Figure 1 ===";
  run_figure1 ();
  print_endline "\n=== Figure 2 ===";
  run_figure2 ()

let run_list () =
  let line (w : W.Workload.t) =
    Printf.printf "%-12s %-10s %s\n" w.W.Workload.name
      (W.Workload.domain_to_string w.W.Workload.domain)
      w.W.Workload.description
  in
  List.iter line W.Registry.all;
  print_endline "\nphase-shifting (for the `online' command):";
  List.iter line W.Registry.phased

let load_workload name =
  match W.Registry.find name with
  | Some w -> w
  | None ->
      Printf.eprintf "unknown workload %s (try `jitise list`)\n" name;
      exit 1

let run_inspect name =
  let w = load_workload name in
  let r = W.Workload.compile w in
  print_string (Ir.Printer.module_to_string r.F.Compiler.modul)

let run_specialize name trace jobs shared_cache stage_cache stage_stats
    store_dir vm_engine vm_tuning fault_options =
  let w = load_workload name in
  let db = Lazy.force db in
  let spec =
    mk_spec ~trace ~jobs ~shared_cache
      ~stage_cache:(stage_cache || stage_stats)
      ~store_dir ~vm_engine ~vm_tuning ~fault_options
  in
  let r = Core.Experiment.evaluate ~spec db w in
  let rep = r.Core.Experiment.report in
  Printf.printf "%s: %d candidate(s) selected, ASIP ratio %.2fx (max %.2fx)\n"
    name
    (List.length rep.Core.Asip_sp.selection)
    rep.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio
    rep.Core.Asip_sp.asip_ratio_max.Ise.Speedup.ratio;
  List.iter
    (fun (c : Core.Asip_sp.candidate_result) ->
      let cand = c.Core.Asip_sp.scored.Ise.Select.candidate in
      let est = c.Core.Asip_sp.scored.Ise.Select.estimate in
      Printf.printf
        "  %s  %s/bb%d  %d instrs, %d inputs, sw %d cyc -> hw %d cyc, %s CAD%s%s\n"
        cand.Ise.Candidate.signature cand.Ise.Candidate.func
        cand.Ise.Candidate.block cand.Ise.Candidate.size
        cand.Ise.Candidate.num_inputs est.Pp.Estimator.sw_cycles
        est.Pp.Estimator.hw_cycles
        (U.Duration.to_min_sec c.Core.Asip_sp.total_seconds)
        (match c.Core.Asip_sp.cache_hit with
        | Some kind ->
            Printf.sprintf " (%s cache hit)" (Cad.Cache.hit_name kind)
        | None -> "")
        (if not fault_options.faults then ""
         else
           let retry =
             if c.Core.Asip_sp.failed_attempts = 0 then ""
             else
               Printf.sprintf ", %d attempt(s), %d failed (%s wasted)"
                 c.Core.Asip_sp.attempts c.Core.Asip_sp.failed_attempts
                 (U.Duration.to_min_sec c.Core.Asip_sp.wasted_seconds)
           in
           match c.Core.Asip_sp.outcome with
           | Core.Asip_sp.Promoted { from; _ } ->
               Printf.sprintf "%s [promoted; %s failed]" retry
                 from.Ise.Select.candidate.Ise.Candidate.signature
           | Core.Asip_sp.Implemented -> retry))
    rep.Core.Asip_sp.candidates;
  if fault_options.faults || fault_options.chaos then begin
    List.iter
      (fun (d : Core.Asip_sp.dropped) ->
        Printf.printf "  %s  abandoned: %s, %d failed attempt(s), %s wasted\n"
          d.Core.Asip_sp.drop_scored.Ise.Select.candidate
            .Ise.Candidate.signature
          (Core.Asip_sp.drop_reason_name d.Core.Asip_sp.drop_reason)
          d.Core.Asip_sp.drop_attempts
          (U.Duration.to_min_sec d.Core.Asip_sp.drop_wasted_seconds))
      rep.Core.Asip_sp.dropped;
    Printf.printf
      "faults: %d CAD attempt(s), %d failed, %s wasted; %d promoted, %d \
       dropped%s\n"
      rep.Core.Asip_sp.total_attempts rep.Core.Asip_sp.failed_attempts
      (U.Duration.to_min_sec rep.Core.Asip_sp.wasted_seconds)
      rep.Core.Asip_sp.degraded
      (List.length rep.Core.Asip_sp.dropped)
      ((if rep.Core.Asip_sp.stage_failures > 0 then
          Printf.sprintf "; %d stage-failed" rep.Core.Asip_sp.stage_failures
        else "")
      ^
      if rep.Core.Asip_sp.deadline_exceeded then "; deadline exceeded" else "")
  end;
  Printf.printf "total ASIP-SP overhead: %s (const %s, map %s, par %s)\n"
    (U.Duration.to_min_sec rep.Core.Asip_sp.sum_seconds)
    (U.Duration.to_min_sec rep.Core.Asip_sp.const_seconds)
    (U.Duration.to_min_sec rep.Core.Asip_sp.map_seconds)
    (U.Duration.to_min_sec rep.Core.Asip_sp.par_seconds);
  Printf.printf "break-even: %s\n"
    (match r.Core.Experiment.break_even with
    | Jitise_analysis.Breakeven.Never -> "never"
    | Jitise_analysis.Breakeven.After s -> U.Duration.to_dhms s);
  finish_spec ~stage_stats spec trace

let run_timeline name jobs fault_options =
  let w = load_workload name in
  let db = Lazy.force db in
  let spec =
    mk_spec ~trace:None ~jobs:1 ~shared_cache:false ~stage_cache:false
      ~store_dir:None ~vm_engine:Vm.Machine.default_engine
      ~vm_tuning:Vm.Machine.default_tuning ~fault_options
  in
  let r = Core.Experiment.evaluate ~spec db w in
  let t = Core.Jit_manager.timeline ~jobs r.Core.Experiment.report in
  Format.printf "%a" Core.Jit_manager.pp_timeline t;
  Printf.printf
    "\nspeedup %.2fx; specialization %s; reconfiguration %.1f ms\n"
    t.Core.Jit_manager.speedup
    (U.Duration.to_min_sec t.Core.Jit_manager.specialization_seconds)
    (1000.0 *. t.Core.Jit_manager.reconfiguration_seconds)

(* The online loop wants one candidate per phase kernel, so it disables
   the batch sweep's pruning filter: the controller itself decides what
   is worth implementing, using live evidence instead of a whole-run
   profile. *)
let run_online name slots evict window decay latency_scale jobs =
  let w = load_workload name in
  let db = Lazy.force db in
  let online = { Core.Spec.slots; evict; window; decay; latency_scale } in
  let spec =
    Core.Spec.default
    |> Core.Spec.with_prune Ise.Prune.none
    |> Core.Spec.with_jobs jobs
    |> Core.Spec.with_online online
  in
  let o = Core.Jit_manager.online ~spec db w in
  Format.printf "%a" Core.Jit_manager.pp_online o

let run_ablation name =
  let w = load_workload name in
  let db = Lazy.force db in
  let r = W.Workload.compile w in
  let d = List.hd w.W.Workload.datasets in
  let out = W.Workload.run r d in
  let filters =
    [
      Ise.Prune.of_name "@25pS1L"; Ise.Prune.of_name "@50pS3L";
      Ise.Prune.of_name "@75pS5L"; Ise.Prune.of_name "@90pS8L";
      Ise.Prune.none;
    ]
  in
  let t =
    U.Texttable.create
      ~headers:[ "filter"; "search[ms]"; "blk"; "ins"; "can"; "ratio"; "sum" ]
  in
  List.iter
    (fun prune ->
      let rep =
        Core.Asip_sp.run_spec
          ~spec:(Core.Spec.with_prune prune Core.Spec.default)
          ~app:name db r.Jitise_frontend.Compiler.modul
          out.Vm.Machine.profile ~total_cycles:out.Vm.Machine.native_cycles
      in
      U.Texttable.add_row t
        [
          Ise.Prune.name prune;
          Printf.sprintf "%.2f" (1000.0 *. rep.Core.Asip_sp.search_wall_seconds);
          string_of_int rep.Core.Asip_sp.searched_blocks;
          string_of_int rep.Core.Asip_sp.searched_instrs;
          string_of_int (List.length rep.Core.Asip_sp.selection);
          Printf.sprintf "%.2f" rep.Core.Asip_sp.asip_ratio.Ise.Speedup.ratio;
          U.Duration.to_min_sec rep.Core.Asip_sp.sum_seconds;
        ])
    filters;
  Printf.printf "pruning-filter ablation for %s (train dataset):\n" name;
  U.Texttable.print t

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_compile path no_opt =
  let src = read_file path in
  match
    F.Compiler.compile ~optimize:(not no_opt) ~module_name:path
      [ (path, src) ]
  with
  | r ->
      Printf.printf "; %d blocks, %d instructions, compiled in %.3f s\n"
        r.F.Compiler.stats.F.Compiler.blocks r.F.Compiler.stats.F.Compiler.instrs
        r.F.Compiler.stats.F.Compiler.compile_seconds;
      print_string (Ir.Printer.module_to_string r.F.Compiler.modul)
  | exception F.Compiler.Error m ->
      Printf.eprintf "%s\n" m;
      exit 1

let run_run path n engine tuning =
  let src = read_file path in
  match F.Compiler.compile ~module_name:path [ (path, src) ] with
  | exception F.Compiler.Error m ->
      Printf.eprintf "%s\n" m;
      exit 1
  | r -> (
      match
        Vm.Machine.run ~engine ~tuning r.F.Compiler.modul ~entry:"main"
          ~args:[ Ir.Eval.VInt (Int64.of_int n) ]
      with
      | exception Vm.Machine.Fault m ->
          Printf.eprintf "runtime fault: %s\n" m;
          exit 1
      | out ->
          (match out.Vm.Machine.ret with
          | Some v -> Format.printf "result: %a@." Ir.Eval.pp_value v
          | None -> print_endline "result: (void)");
          Printf.printf "native: %.0f cycles (%.4f s at 300 MHz), VM: %.0f cycles (ratio %.3f)\n"
            out.Vm.Machine.native_cycles
            (Vm.Machine.seconds_of_cycles out.Vm.Machine.native_cycles)
            out.Vm.Machine.vm_cycles
            (out.Vm.Machine.vm_cycles /. out.Vm.Machine.native_cycles))

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let unit_cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record one span per pipeline stage per workload and write a \
           Chrome-trace JSON to $(docv) (open in chrome://tracing or \
           Perfetto).")

let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "expected a count >= 1, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value & opt positive_int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Evaluate workloads (and candidates) on $(docv) domains.  The \
           reports are identical to a serial run.")

let shared_cache_arg =
  Arg.(
    value & flag
    & info [ "shared-cache" ]
        ~doc:
          "Share the bitstream cache across applications (the Section VI-A \
           proposal) and report its local/shared hit statistics on stderr.")

let stage_cache_arg =
  Arg.(
    value & flag
    & info [ "stage-cache" ]
        ~doc:
          "Keep a content-addressed store of every pipeline stage's output \
           (keyed on the stage's input digest), so sweep points that only \
           change downstream knobs reuse upstream artifacts instead of \
           recomputing them.")

let stage_stats_arg =
  Arg.(
    value & flag
    & info [ "stage-stats" ]
        ~doc:
          "Report per-stage artifact-store statistics (entries, computed, \
           local/shared hits) on stderr after the run.  Implies \
           $(b,--stage-cache).")

let store_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the stage artifact store to a content-addressed on-disk \
           layout rooted at $(docv) (created if missing), and warm-start \
           from whatever a previous run left there.  A second run against \
           the same $(docv) re-executes zero cacheable stages.  Implies \
           $(b,--stage-cache).")

let vm_engine_conv =
  let parse s =
    match Vm.Machine.engine_of_string s with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
             (Printf.sprintf "expected one of %s, got %S"
                (String.concat ", "
                   (List.map Vm.Machine.engine_name Vm.Machine.engines))
                s))
  in
  Arg.conv
    (parse, fun ppf e -> Format.pp_print_string ppf (Vm.Machine.engine_name e))

let vm_engine_arg =
  Arg.(
    value
    & opt vm_engine_conv Vm.Machine.default_engine
    & info [ "vm-engine" ] ~docv:"ENGINE"
        ~doc:
          "VM execution engine: $(b,threaded) (the default; per-block closure \
           compilation with pre-decoded operands) or $(b,reference) (the \
           AST-walking baseline).  Profiles, reports and stage digests are \
           identical either way.")

let vm_link_arg =
  Arg.(
    value
    & opt bool Vm.Machine.default_tuning.Vm.Machine.link
    & info [ "vm-link" ] ~docv:"BOOL"
        ~doc:
          "Threaded-engine block linking: terminators transfer to the \
           successor's compiled block directly instead of returning to the \
           indexed dispatch loop.  Semantics-preserving; on by default.")

let vm_fuse_arg =
  Arg.(
    value
    & opt bool Vm.Machine.default_tuning.Vm.Machine.fuse
    & info [ "vm-fuse" ] ~docv:"BOOL"
        ~doc:
          "Threaded-engine superinstructions: peephole-fuse hot multi-op \
           sequences (address computation, binop chains, compare-and-branch) \
           into single closures.  Semantics-preserving; on by default.  \
           Per-pattern hit counts print under $(b,--stage-stats).")

let vm_ci_native_arg =
  Arg.(
    value
    & opt bool Vm.Machine.default_tuning.Vm.Machine.ci_native
    & info [ "vm-ci-native" ] ~docv:"BOOL"
        ~doc:
          "Execute loaded custom instructions as one fused native closure \
           compiled from the MISO subgraph instead of interpreting the \
           constituent ops.  Semantics-preserving; on by default.")

let vm_regalloc_arg =
  Arg.(
    value
    & opt bool Vm.Machine.default_tuning.Vm.Machine.regalloc
    & info [ "vm-regalloc" ] ~docv:"BOOL"
        ~doc:
          "Threaded-engine typed register files: partition each function's \
           virtual registers by declared type into unboxed \
           int64/float/address slot arrays, boxing only at call/return, \
           intrinsic, custom-instruction and memory seams — hot int/float \
           paths allocate nothing.  Semantics-preserving; on by default.")

let vm_link_budget_arg =
  Arg.(
    value
    & opt positive_int Vm.Machine.default_tuning.Vm.Machine.max_linked_blocks
    & info [ "vm-link-budget" ] ~docv:"N"
        ~doc:
          "Consecutive direct block-to-block transfers before the linked \
           engine takes one trip through the indexed dispatch path.")

let vm_tuning_term =
  Term.(
    const (fun link fuse ci_native regalloc max_linked_blocks ->
        { Vm.Machine.link; fuse; ci_native; regalloc; max_linked_blocks })
    $ vm_link_arg $ vm_fuse_arg $ vm_ci_native_arg $ vm_regalloc_arg
    $ vm_link_budget_arg)

let evict_conv =
  let parse s =
    match Wool.Asip.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "expected lru or beneficial, got %S" s))
  in
  Arg.conv
    (parse, fun ppf p -> Format.pp_print_string ppf (Wool.Asip.policy_name p))

let slots_arg =
  Arg.(
    value
    & opt positive_int Core.Spec.default_online.Core.Spec.slots
    & info [ "slots" ] ~docv:"N"
        ~doc:
          "Partial-reconfiguration slots on the modeled fabric.  Fewer \
           slots than program phases is the regime the adaptive \
           controller is built for.")

let evict_arg =
  Arg.(
    value
    & opt evict_conv Core.Spec.default_online.Core.Spec.evict
    & info [ "evict" ] ~docv:"POLICY"
        ~doc:
          "Slot eviction policy when the fabric is full: $(b,lru) \
           (least-recently-dispatched occupant) or $(b,beneficial) \
           (lowest recorded benefit, ties on signature).")

let window_arg =
  Arg.(
    value
    & opt positive_int Core.Spec.default_online.Core.Spec.window
    & info [ "window" ] ~docv:"N"
        ~doc:
          "Block executions per phase-profile window.  Smaller windows \
           react faster but see noisier rates.")

let nonneg_float_below_one =
  let parse s =
    match float_of_string_opt s with
    | Some d when d >= 0.0 && d < 1.0 -> Ok d
    | Some d -> Error (`Msg (Printf.sprintf "expected 0 <= decay < 1, got %g" d))
    | None -> Error (`Msg (Printf.sprintf "expected a float, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let decay_arg =
  Arg.(
    value
    & opt nonneg_float_below_one Core.Spec.default_online.Core.Spec.decay
    & info [ "decay" ] ~docv:"D"
        ~doc:"History weight when a profile window closes, in [0, 1).")

let positive_float =
  let parse s =
    match float_of_string_opt s with
    | Some f when f > 0.0 -> Ok f
    | Some f -> Error (`Msg (Printf.sprintf "expected a value > 0, got %g" f))
    | None -> Error (`Msg (Printf.sprintf "expected a float, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let latency_scale_arg =
  Arg.(
    value
    & opt positive_float Core.Spec.default_online.Core.Spec.latency_scale
    & info [ "latency-scale" ] ~docv:"F"
        ~doc:
          "Divide simulated CAD seconds by $(docv); values > 1 model a \
           pre-generated bitstream library or a CAD farm (DESIGN.md \
           §12).")

let faults_arg =
  Arg.(
    value & flag
    & info [ "faults" ]
        ~doc:
          "Inject deterministic CAD tool-flow failures (crashes, congestion, \
           timing misses, corrupt bitstreams) and recover with the retry \
           policy.  Off by default, which reproduces the failure-free flow \
           exactly.")

let fault_seed_arg =
  Arg.(
    value & opt int 20110516
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the fault-injection model.  The same seed produces the \
           same failures, whatever $(b,--jobs) is.")

let retries_arg =
  Arg.(
    value & opt positive_int 3
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "CAD attempts per candidate before it degrades to the next-ranked \
           candidate or to software (with $(b,--faults)).")

let deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Simulated-time budget for a whole specialization run (with \
           $(b,--faults)); candidates past it are left in software.")

let chaos_arg =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:
          "Inject deterministic cross-layer chaos (stage crashes and \
           stalls, pool worker crashes, store read/write errors, torn \
           envelopes, latency spikes) with the default fault mix; the \
           supervisor degrades affected candidates to software instead \
           of aborting the sweep.  Off by default, which reproduces the \
           chaos-free pipeline byte for byte.")

let chaos_seed_arg =
  Arg.(
    value & opt int 4207
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the chaos model.  The same seed replays the same \
           faults on every plane, whatever $(b,--jobs) is.")

let stage_attempts_arg =
  Arg.(
    value & opt positive_int 3
    & info [ "stage-attempts" ] ~docv:"N"
        ~doc:
          "Supervised attempts per pipeline-stage execution before the \
           candidate degrades to software (transient chaos crashes are \
           retried with deterministic backoff).")

let stage_deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "stage-deadline" ] ~docv:"SECONDS"
        ~doc:
          "Simulated stall budget per stage attempt; an attempt whose \
           injected stalls overrun it is killed and retried (the killed \
           attempt billed at the full deadline).")

let run_deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "run-deadline" ] ~docv:"SECONDS"
        ~doc:
          "Simulated supervision budget (stalls + backoffs) for all \
           sequential stage executions of one run; past it, further \
           stages are refused and their candidates stay in software.")

let fault_options_term =
  Term.(
    const
      (fun faults fault_seed retries deadline chaos chaos_seed stage_attempts
           stage_deadline run_deadline ->
        {
          faults;
          fault_seed;
          retries;
          deadline;
          chaos;
          chaos_seed;
          stage_attempts;
          stage_deadline;
          run_deadline;
        })
    $ faults_arg $ fault_seed_arg $ retries_arg $ deadline_arg $ chaos_arg
    $ chaos_seed_arg $ stage_attempts_arg $ stage_deadline_arg
    $ run_deadline_arg)

(* A command that runs the full sweep once and renders from it. *)
let sweep_cmd name doc render =
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const
        (fun trace jobs shared_cache stage_cache stage_stats store_dir
             vm_engine vm_tuning fault_options ->
          let spec =
            mk_spec ~trace ~jobs ~shared_cache
              ~stage_cache:(stage_cache || stage_stats)
              ~store_dir ~vm_engine ~vm_tuning ~fault_options
          in
          let results =
            Core.Experiment.sweep ~verbose:true ~spec (Lazy.force db)
          in
          render ~faults:fault_options.faults results;
          finish_spec ~stage_stats spec trace)
      $ trace_arg $ jobs_arg $ shared_cache_arg $ stage_cache_arg
      $ stage_stats_arg $ store_dir_arg $ vm_engine_arg $ vm_tuning_term
      $ fault_options_term)

let cmds =
  [
    sweep_cmd "table1" "Reproduce Table I (application characterization)"
      render_table1;
    sweep_cmd "table2" "Reproduce Table II (ASIP-SP runtime overheads)"
      render_table2;
    sweep_cmd "table3" "Reproduce Table III (constant CAD overheads)"
      render_table3;
    sweep_cmd "table4" "Reproduce Table IV (cache / faster-CAD break-even)"
      render_table4;
    unit_cmd "figure1" "Render Figure 1 (tool-flow overview)" run_figure1;
    unit_cmd "figure2" "Render Figure 2 (ASIP specialization process)"
      run_figure2;
    sweep_cmd "all" "Reproduce every table and figure" render_all;
    unit_cmd "list" "List the benchmark workloads" run_list;
    Cmd.v
      (Cmd.info "inspect" ~doc:"Dump a workload's optimized bitcode")
      Term.(const run_inspect $ workload_arg);
    Cmd.v
      (Cmd.info "specialize"
         ~doc:"Run the ASIP specialization process on a workload")
      Term.(
        const run_specialize $ workload_arg $ trace_arg $ jobs_arg
        $ shared_cache_arg $ stage_cache_arg $ stage_stats_arg $ store_dir_arg
        $ vm_engine_arg $ vm_tuning_term $ fault_options_term);
    Cmd.v
      (Cmd.info "timeline"
         ~doc:
           "Simulate the concurrent JIT-customization timeline of a \
            workload (--jobs models concurrent CAD flows on the host)")
      Term.(const run_timeline $ workload_arg $ jobs_arg $ fault_options_term);
    Cmd.v
      (Cmd.info "online"
         ~doc:
           "Run a workload under the closed-loop adaptive-specialization \
            controller and compare it against oracle-offline and \
            no-specialization baselines (try the phase-shifting \
            phased.* workloads)")
      Term.(
        const run_online $ workload_arg $ slots_arg $ evict_arg $ window_arg
        $ decay_arg $ latency_scale_arg $ jobs_arg);
    Cmd.v
      (Cmd.info "ablation"
         ~doc:"Sweep pruning filters over a workload (search time vs speedup)")
      Term.(const run_ablation $ workload_arg);
    Cmd.v
      (Cmd.info "compile" ~doc:"Compile a MiniC file and print its bitcode")
      Term.(
        const run_compile $ path_arg
        $ Arg.(value & flag & info [ "no-opt" ] ~doc:"Disable -O3 pipeline"));
    Cmd.v
      (Cmd.info "run" ~doc:"Compile and execute a MiniC file's main(n)")
      Term.(
        const run_run $ path_arg
        $ Arg.(
            value & opt int 10
            & info [ "n" ] ~docv:"N" ~doc:"Argument passed to main")
        $ vm_engine_arg $ vm_tuning_term);
  ]

let () =
  let info =
    Cmd.info "jitise" ~version:"1.0.0"
      ~doc:"Just-in-time instruction set extension: feasibility study tooling"
  in
  exit (Cmd.eval (Cmd.group info cmds))
