examples/adpcm_accel.mli:
