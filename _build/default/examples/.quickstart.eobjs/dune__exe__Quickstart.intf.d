examples/quickstart.mli:
