examples/custom_kernel.ml: Array Int64 Jitise_frontend Jitise_hwgen Jitise_ir Jitise_ise Jitise_pivpav Jitise_vm List Option Printf Sys Unix
