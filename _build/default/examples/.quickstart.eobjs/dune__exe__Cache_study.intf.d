examples/cache_study.mli:
