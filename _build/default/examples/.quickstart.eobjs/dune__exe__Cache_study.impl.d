examples/cache_study.ml: Array Jitise_analysis Jitise_core Jitise_frontend Jitise_pivpav Jitise_util Jitise_vm Jitise_workloads List Printf Sys
