examples/quickstart.ml: Format Int64 Jitise_core Jitise_frontend Jitise_ir Jitise_ise Jitise_pivpav Jitise_util Jitise_vm List Printf String
