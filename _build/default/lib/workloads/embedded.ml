(** The four embedded workloads (MiBench / SciMark2 rows of Table I):
    adpcm, fft, sor, whetstone.  Small programs with pronounced
    floating-point or bit-manipulation kernels — the domain where the
    paper finds JIT ISE profitable. *)

open Workload

(* ------------------------------------------------------------------ *)
(* adpcm: IMA ADPCM encode/decode round trip (MiBench).  Integer       *)
(* quantization with step tables; the encode loop is the kernel.       *)
(* ------------------------------------------------------------------ *)

let adpcm_source =
  {|
int step_table[89];
int index_table[16] = {-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};
int pcm[4096];
int code_buf[4096];
int out_pcm[4096];

void init_steps() {
  int i;
  int s = 7;
  for (i = 0; i < 89; i = i + 1) {
    step_table[i] = s;
    s = s + (s >> 2) + 1;
    if (s > 32767) { s = 32767; }
  }
}

void make_signal(int len) {
  int i;
  int acc = 12345;
  for (i = 0; i < len; i = i + 1) {
    acc = acc * 1103515245 + 12345;
    pcm[i] = ((acc >> 16) & 16383) - 8192 + ((i & 31) << 6);
  }
}

int clamp_index(int v) {
  if (v < 0) { return 0; }
  if (v > 88) { return 88; }
  return v;
}

void encode(int len) {
  int i;
  int pred = 0;
  int idx = 0;
  for (i = 0; i < len; i = i + 1) {
    int step = step_table[idx];
    int diff = pcm[i] - pred;
    int sign = 0;
    if (diff < 0) { sign = 8; diff = 0 - diff; }
    int code = (diff << 2) / step;
    if (code > 7) { code = 7; }
    int delta = ((code * step) >> 2) + (step >> 3);
    if (sign != 0) { pred = pred - delta; } else { pred = pred + delta; }
    if (pred > 32767) { pred = 32767; }
    if (pred < -32768) { pred = -32768; }
    code_buf[i] = code | sign;
    idx = clamp_index(idx + index_table[code | sign]);
  }
}

void decode(int len) {
  int i;
  int pred = 0;
  int idx = 0;
  for (i = 0; i < len; i = i + 1) {
    int step = step_table[idx];
    int code = code_buf[i];
    int diff = ((code & 7) * step >> 2) + (step >> 3);
    if ((code & 8) != 0) { pred = pred - diff; } else { pred = pred + diff; }
    if (pred > 32767) { pred = 32767; }
    if (pred < -32768) { pred = -32768; }
    out_pcm[i] = pred;
    idx = clamp_index(idx + index_table[code]);
  }
}

// Never exercised: 8-bit companding fallback for legacy streams.
int mulaw_byte(int sample) {
  int sign = 0;
  if (sample < 0) { sign = 128; sample = 0 - sample; }
  int exp = 0;
  int tmp = sample >> 6;
  while (tmp != 0 && exp < 7) { exp = exp + 1; tmp = tmp >> 1; }
  return sign | (exp << 4) | ((sample >> (exp + 2)) & 15);
}

int main(int n) {
  int len = n;
  int block = 0;
  int err = 0;
  if (len > 4096) { len = 4096; }
  init_steps();
  while (block * len < n * 4) {
    make_signal(len);
    encode(len);
    decode(len);
    block = block + 1;
  }
  int i;
  for (i = 0; i < len; i = i + 1) {
    int d = pcm[i] - out_pcm[i];
    if (d < 0) { d = 0 - d; }
    err = err + d;
  }
  if (err < 0) { return mulaw_byte(err); }
  return err / len;
}
|}

let adpcm =
  {
    name = "adpcm";
    domain = Embedded;
    sources = [ ("adpcm.c", adpcm_source) ];
    datasets =
      [ { label = "train"; n = 50000 }; { label = "large"; n = 110000 } ];
    description = "IMA ADPCM speech codec round trip (MiBench)";
  }

(* ------------------------------------------------------------------ *)
(* fft: iterative radix-2 FFT over a fixed 256-point buffer, repeated  *)
(* over the input stream (SciMark2).                                   *)
(* ------------------------------------------------------------------ *)

let fft_source =
  {|
double re[256];
double im[256];
double twid_r[128];
double twid_c[128];

void init_twiddles() {
  int k;
  for (k = 0; k < 128; k = k + 1) {
    double ang = -3.14159265358979 * k / 128.0;
    twid_r[k] = cos(ang);
    twid_c[k] = sin(ang);
  }
}

void load_block(int seed) {
  int i;
  int acc = seed * 2654435761 + 1013904223;
  for (i = 0; i < 256; i = i + 1) {
    acc = acc * 1103515245 + 12345;
    re[i] = ((acc >> 8) & 65535) / 32768.0 - 1.0;
    im[i] = 0.0;
  }
}

void bit_reverse() {
  int i;
  int j = 0;
  for (i = 0; i < 255; i = i + 1) {
    if (i < j) {
      double tr = re[i]; re[i] = re[j]; re[j] = tr;
      double ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
    int m = 128;
    while (m >= 1 && j >= m) { j = j - m; m = m >> 1; }
    j = j + m;
  }
}

void fft_pass() {
  int len = 2;
  while (len <= 256) {
    int half = len >> 1;
    int step = 256 / len;
    int i = 0;
    while (i < 256) {
      int k;
      for (k = 0; k < half; k = k + 1) {
        int tw = k * step;
        double wr = twid_r[tw];
        double wi = twid_c[tw];
        int a = i + k;
        int b = i + k + half;
        double xr = re[b] * wr - im[b] * wi;
        double xi = re[b] * wi + im[b] * wr;
        re[b] = re[a] - xr;
        im[b] = im[a] - xi;
        re[a] = re[a] + xr;
        im[a] = im[a] + xi;
      }
      i = i + len;
    }
    len = len << 1;
  }
}

// Inverse transform: present for API completeness, never called here.
void ifft_scale() {
  int i;
  for (i = 0; i < 256; i = i + 1) {
    re[i] = re[i] / 256.0;
    im[i] = 0.0 - im[i] / 256.0;
  }
}

int main(int n) {
  int block;
  double energy = 0.0;
  init_twiddles();
  for (block = 0; block < n; block = block + 1) {
    load_block(block);
    bit_reverse();
    fft_pass();
    energy = energy + re[1] * re[1] + im[1] * im[1];
  }
  if (energy < 0.0) { ifft_scale(); }
  return energy * 1000.0;
}
|}

let fft =
  {
    name = "fft";
    domain = Embedded;
    sources = [ ("fft.c", fft_source) ];
    datasets = [ { label = "train"; n = 160 }; { label = "large"; n = 340 } ];
    description = "256-point radix-2 FFT over an input stream (SciMark2)";
  }

(* ------------------------------------------------------------------ *)
(* sor: Jacobi successive over-relaxation on a 64x64 grid (SciMark2).  *)
(* ------------------------------------------------------------------ *)

let sor_source =
  {|
double grid[64][64];

void init_grid() {
  int i;
  int j;
  for (i = 0; i < 64; i = i + 1) {
    for (j = 0; j < 64; j = j + 1) {
      grid[i][j] = 0.0;
    }
    grid[i][0] = 1.0;
    grid[i][63] = -1.0;
  }
}

void sweep(double omega) {
  int i;
  int j;
  double one_minus = 1.0 - omega;
  for (i = 1; i < 63; i = i + 1) {
    for (j = 1; j < 63; j = j + 1) {
      double avg = 0.25 * (grid[i-1][j] + grid[i+1][j] + grid[i][j-1] + grid[i][j+1]);
      grid[i][j] = omega * avg + one_minus * grid[i][j];
    }
  }
}

int main(int n) {
  int sweeps;
  init_grid();
  for (sweeps = 0; sweeps < n; sweeps = sweeps + 1) {
    sweep(1.25);
  }
  double sum = 0.0;
  int i;
  for (i = 1; i < 63; i = i + 1) {
    sum = sum + grid[i][32];
  }
  return sum * 100000.0;
}
|}

let sor =
  {
    name = "sor";
    domain = Embedded;
    sources = [ ("sor.c", sor_source) ];
    datasets = [ { label = "train"; n = 130 }; { label = "large"; n = 280 } ];
    description = "successive over-relaxation on a 64x64 grid (SciMark2)";
  }

(* ------------------------------------------------------------------ *)
(* whetstone: the classic synthetic float benchmark: tight loops over  *)
(* transcendental and polynomial kernels.                              *)
(* ------------------------------------------------------------------ *)

let whetstone_source =
  {|
double e1[4];

// Software math library, compiled to bitcode like the rest of the
// program (the 405 has no FPU, so these Horner chains ARE the sin/cos
// the program executes — and they are exactly where the ISE algorithms
// find the long float data paths that give whetstone its big speedup).
double poly_sin(double x) {
  double x2 = x * x;
  return x * (1.0 + x2 * (-0.166666667 + x2 * (0.008333333
         + x2 * (-0.000198413 + x2 * 0.0000027557))));
}

double poly_cos(double x) {
  double x2 = x * x;
  return 1.0 + x2 * (-0.5 + x2 * (0.041666667
         + x2 * (-0.001388889 + x2 * 0.0000248016)));
}

double poly_atan(double x) {
  double x2 = x * x;
  return x * (1.0 + x2 * (-0.3333314 + x2 * (0.1999355
         + x2 * (-0.1420890 + x2 * (0.1065626 + x2 * (-0.0752896
         + x2 * 0.0429096))))));
}

double poly_exp(double x) {
  return 1.0 + x * (1.0 + x * (0.5 + x * (0.166666667
         + x * (0.041666667 + x * (0.008333333 + x * 0.001388889)))));
}

double poly_log(double x) {
  double y = (x - 1.0) / (x + 1.0);
  double y2 = y * y;
  return 2.0 * y * (1.0 + y2 * (0.333333333 + y2 * (0.2
         + y2 * (0.142857143 + y2 * 0.111111111))));
}

double soft_sqrt(double x) {
  double g = x * 0.5 + 0.5;
  g = 0.5 * (g + x / g);
  g = 0.5 * (g + x / g);
  g = 0.5 * (g + x / g);
  return g;
}

double pa(double x, double t, double t2) {
  int j;
  double y = x;
  for (j = 0; j < 6; j = j + 1) {
    y = (y + y + y + y) * t / t2;
  }
  return y;
}

void p3(double x, double y, double t, double t2) {
  double xt = t * (x + y);
  double yt = t * (xt + y);
  e1[2] = (xt + yt) / t2;
}

int main(int n) {
  double t = 0.499975;
  double t1 = 0.50025;
  double t2 = 2.0;
  double x = 1.0;
  double y = 1.0;
  double z = 1.0;
  int i;
  int loops = n;

  // Module 2: array elements
  e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
  for (i = 0; i < loops * 12; i = i + 1) {
    e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
    e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
    e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
    e1[3] = (0.0 - e1[0] + e1[1] + e1[2] + e1[3]) * t;
  }

  // Module 7: trig
  x = 0.5; y = 0.5;
  for (i = 0; i < loops * 4; i = i + 1) {
    double s1 = poly_sin(x);
    double c1 = poly_cos(x);
    double s2 = poly_sin(y);
    double cxy = poly_cos(x + y);
    double cxmy = poly_cos(x - y);
    x = t2 * poly_atan(t2 * s1 * c1 / (cxy + cxmy - 1.0));
    y = t2 * poly_atan(t2 * s2 * poly_cos(y) / (cxy + cxmy - 1.0));
  }

  // Module 8: procedure calls
  x = 1.0; y = 1.0; z = 1.0;
  for (i = 0; i < loops * 10; i = i + 1) {
    z = pa(x + y, t, t2) * t1;
  }

  // Module 11: standard functions
  x = 0.75;
  for (i = 0; i < loops * 9; i = i + 1) {
    x = soft_sqrt(poly_exp(poly_log(x + 1.0) / t1)) - 0.49;
  }

  // Module 6-ish: integer arithmetic feeding the float state
  int j = 1;
  int k = 2;
  int l = 3;
  for (i = 0; i < loops * 14; i = i + 1) {
    j = j * (k - j) * (l - k);
    k = l * k - (l - j) * k;
    l = (l - k) * (k + j);
    e1[(l & 1)] = j + k + l;
    e1[((k > 0) & 1)] = j * k * l;
    j = j & 1023;
    k = (k & 2047) + 1;
    l = (l & 511) + 2;
  }

  p3(x, y, t, t2);
  double check = x + y + z + e1[0] + e1[1] + e1[2] + e1[3];
  return check * 1000.0;
}
|}

let whetstone =
  {
    name = "whetstone";
    domain = Embedded;
    sources = [ ("whetstone.c", whetstone_source) ];
    datasets = [ { label = "train"; n = 900 }; { label = "large"; n = 1900 } ];
    description = "classic Whetstone synthetic floating-point benchmark";
  }

let all = [ adpcm; fft; sor; whetstone ]
