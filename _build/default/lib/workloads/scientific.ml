(** The ten scientific workloads (SPEC2000/2006 rows of Table I).

    Each program couples a faithful hot kernel (the loop nest the
    original benchmark spends its time in) with a large cold remainder
    produced by {!Gen} — dispatch-guarded helper families and fixed-size
    initialization — reproducing the scale contrast the paper measures:
    scientific codes are much larger than the embedded kernels, their
    basic blocks are colder on average, their relative kernel size is
    smaller, and most of their code is dead or constant under any one
    dataset. *)

open Workload

(* ------------------------------------------------------------------ *)
(* 164.gzip: LZ77 longest-match over a synthetic window (integer).     *)
(* ------------------------------------------------------------------ *)

let gzip_kernel =
  {|
int window[8192];
int hash_head[1024];
int match_len_hist[64];

int crc_byte(int crc, int byte) {
  // CRC-32 bit loop, unrolled as gzip's table generator does.
  int c = crc ^ byte;
  c = (c >> 1) ^ ((0 - (c & 1)) & 0x6DB88320);
  c = (c >> 1) ^ ((0 - (c & 1)) & 0x6DB88320);
  c = (c >> 1) ^ ((0 - (c & 1)) & 0x6DB88320);
  c = (c >> 1) ^ ((0 - (c & 1)) & 0x6DB88320);
  c = (c >> 1) ^ ((0 - (c & 1)) & 0x6DB88320);
  c = (c >> 1) ^ ((0 - (c & 1)) & 0x6DB88320);
  c = (c >> 1) ^ ((0 - (c & 1)) & 0x6DB88320);
  c = (c >> 1) ^ ((0 - (c & 1)) & 0x6DB88320);
  return c;
}

int window_crc;

void fill_window(int seed, int len) {
  int i;
  int acc = seed;
  int crc = -1;
  for (i = 0; i < len; i = i + 1) {
    acc = acc * 1103515245 + 12345;
    window[i] = (acc >> 16) & 255;
    crc = crc_byte(crc, (acc >> 16) & 255);
  }
  window_crc = crc;
}

int hash3(int pos) {
  int h = window[pos] * 33 + window[pos + 1];
  h = h * 33 + window[pos + 2];
  return h & 1023;
}

int longest_match(int pos, int limit) {
  int best = 2;
  int chain = hash_head[hash3(pos)];
  int tries = 64;
  while (chain > 0 && tries > 0) {
    int len = 0;
    while (len < 128 && pos + len < limit
           && window[chain + len] == window[pos + len]) {
      len = len + 1;
    }
    if (len > best) { best = len; }
    chain = chain - (1 + (chain & 7));
    tries = tries - 1;
  }
  return best;
}

int deflate_block(int len) {
  int pos = 0;
  int emitted = 0;
  int i;
  for (i = 0; i < 1024; i = i + 1) { hash_head[i] = 0; }
  while (pos < len - 130) {
    int h = hash3(pos);
    int m = longest_match(pos, len);
    hash_head[h] = pos;
    if (m > 2) {
      match_len_hist[m & 63] = match_len_hist[m & 63] + 1;
      pos = pos + m;
      emitted = emitted + 2;
    } else {
      pos = pos + 1;
      emitted = emitted + 1;
    }
  }
  return emitted + (window_crc & 7);
}

int main(int n) {
  int block;
  int out = 0;
  int i;
  int live_acc = gz_startup();
  for (i = 0; i < 64; i = i + 1) { match_len_hist[i] = 0; }
  gz_ph_seed(2);
  for (block = 0; block < n; block = block + 1) {
    fill_window(block * 7919 + 13, 8192);
    out = out + deflate_block(8192);
    gz_ph_run();
    live_acc = live_acc + gz_step(block);
  }
  if (out < 0) { return gz_cold_dispatch(3, out); }
  return (out & 1048575) + (live_acc & 7);
}
|}

let gzip =
  {
    name = "164.gzip";
    domain = Scientific;
    sources =
      [
        ("deflate.c", gzip_kernel);
        ("trees.c", Gen.int_helper_family ~prefix:"gz_cold" ~count:60);
        ("modes.c", Gen.mode_family ~app:"gz" ~live:60 ~cfg:20 ~dead:40);
        ( "inflate.c",
          Gen.phase_family ~prefix:"gz_ph" ~phases:14 ~width:512
            ~float_ops:false );
      ];
    datasets = [ { label = "train"; n = 2 }; { label = "large"; n = 4 } ];
    description = "LZ77 longest-match deflate kernel (SPEC 164.gzip)";
  }

(* ------------------------------------------------------------------ *)
(* 179.art: adaptive resonance neural network (f64 vector matching).   *)
(* ------------------------------------------------------------------ *)

let art_kernel =
  {|
double f1_layer[64];
double weights[32][64];
double activation[32];

void init_weights() {
  int i;
  int j;
  for (i = 0; i < 32; i = i + 1) {
    for (j = 0; j < 64; j = j + 1) {
      weights[i][j] = 1.0 / (1.0 + i + j);
    }
    activation[i] = 0.0;
  }
}

void present_input(int seed) {
  int j;
  int acc = seed;
  for (j = 0; j < 64; j = j + 1) {
    acc = acc * 1103515245 + 12345;
    f1_layer[j] = ((acc >> 12) & 1023) / 1024.0;
  }
}

int resonate() {
  int i;
  int j;
  int winner = 0;
  double best = -1.0;
  for (i = 0; i < 32; i = i + 1) {
    double num = 0.0;
    double den = 0.5;
    for (j = 0; j < 64; j = j + 1) {
      double w = weights[i][j];
      double x = f1_layer[j];
      double m = w * x;
      num = num + m;
      den = den + w;
    }
    activation[i] = num / den;
    if (activation[i] > best) { best = activation[i]; winner = i; }
  }
  return winner;
}

void learn(int winner) {
  int j;
  for (j = 0; j < 64; j = j + 1) {
    double w = weights[winner][j];
    weights[winner][j] = 0.7 * w + 0.3 * f1_layer[j] * w;
  }
}

int main(int n) {
  int t;
  int hits = 0;
  int live_acc = art_startup();
  init_weights();
  art_ph_seed(3);
  for (t = 0; t < n; t = t + 1) {
    present_input(t * 31 + 7);
    int w = resonate();
    learn(w);
    art_ph_run();
    hits = hits + w;
    live_acc = live_acc + art_step(t);
  }
  if (hits < 0) { return art_report_eval(1, 0.5) * 10.0; }
  return hits + (live_acc & 7);
}
|}

let art =
  {
    name = "179.art";
    domain = Scientific;
    sources =
      [
        ("scanner.c", art_kernel);
        ("report.c", Gen.float_helper_family ~prefix:"art_report" ~count:30);
        ("modes.c", Gen.mode_family ~app:"art" ~live:40 ~cfg:14 ~dead:26);
        ( "match.c",
          Gen.phase_family ~prefix:"art_ph" ~phases:14 ~width:64
            ~float_ops:true );
      ];
    datasets = [ { label = "train"; n = 60 }; { label = "large"; n = 130 } ];
    description = "adaptive-resonance image matcher (SPEC 179.art)";
  }

(* ------------------------------------------------------------------ *)
(* 183.equake: sparse matrix-vector product + explicit time stepping.  *)
(* ------------------------------------------------------------------ *)

let equake_kernel =
  {|
double matval[4096];
int matcol[4096];
int rowptr[513];
double disp[512];
double vel[512];
double force[512];

void build_mesh() {
  int i;
  int k = 0;
  for (i = 0; i < 512; i = i + 1) {
    rowptr[i] = k;
    int nnz = 3 + (i & 3);
    int j;
    for (j = 0; j < nnz; j = j + 1) {
      matcol[k] = (i + j * 17) & 511;
      matval[k] = 0.01 * (1 + ((i * 31 + j) & 63));
      k = k + 1;
    }
    disp[i] = 0.0;
    vel[i] = 0.001 * (i & 15);
  }
  rowptr[512] = k;
}

void smvp() {
  int i;
  for (i = 0; i < 512; i = i + 1) {
    double sum = 0.0;
    int p = rowptr[i];
    int e = rowptr[i + 1];
    while (p < e) {
      sum = sum + matval[p] * disp[matcol[p]];
      p = p + 1;
    }
    force[i] = sum;
  }
}

void time_step(double dt) {
  int i;
  for (i = 0; i < 512; i = i + 1) {
    vel[i] = vel[i] + dt * (force[i] - 0.02 * vel[i]);
    disp[i] = disp[i] + dt * vel[i];
  }
}

int main(int n) {
  int t;
  int live_acc = eq_startup();
  build_mesh();
  eq_ph_seed(7);
  for (t = 0; t < n; t = t + 1) {
    smvp();
    time_step(0.0008);
    eq_ph_run();
    live_acc = live_acc + eq_step(t);
  }
  double sum = 0.0;
  int i;
  for (i = 0; i < 512; i = i + 1) { sum = sum + disp[i] * disp[i]; }
  if (sum < 0.0) { return eq_cold_dispatch(2, 9); }
  return sum * 1000.0 + (live_acc & 7);
}
|}

let equake =
  {
    name = "183.equake";
    domain = Scientific;
    sources =
      [
        ("quake.c", equake_kernel);
        ("phi.c", Gen.int_helper_family ~prefix:"eq_cold" ~count:26);
        ("modes.c", Gen.mode_family ~app:"eq" ~live:36 ~cfg:12 ~dead:22);
        ( "solver.c",
          Gen.phase_family ~prefix:"eq_ph" ~phases:14 ~width:64
            ~float_ops:true );
      ];
    datasets = [ { label = "train"; n = 130 }; { label = "large"; n = 280 } ];
    description = "seismic wave propagation: sparse matvec kernel (183.equake)";
  }

(* ------------------------------------------------------------------ *)
(* 188.ammp: molecular dynamics nonbond force loop.  The original is   *)
(* the largest program of the set; most of it is setup and analysis.   *)
(* ------------------------------------------------------------------ *)

let ammp_kernel =
  {|
double atom_x[256];
double atom_y[256];
double atom_z[256];
double force_x[256];
double force_y[256];
double force_z[256];

void place_atoms(int seed) {
  int i;
  int acc = seed;
  for (i = 0; i < 256; i = i + 1) {
    acc = acc * 1103515245 + 12345;
    atom_x[i] = ((acc >> 8) & 1023) / 64.0;
    acc = acc * 1103515245 + 12345;
    atom_y[i] = ((acc >> 8) & 1023) / 64.0;
    acc = acc * 1103515245 + 12345;
    atom_z[i] = ((acc >> 8) & 1023) / 64.0;
    force_x[i] = 0.0;
    force_y[i] = 0.0;
    force_z[i] = 0.0;
  }
}

void nonbond_forces() {
  int i;
  int j;
  for (i = 0; i < 256; i = i + 1) {
    for (j = i + 1; j < 256; j = j + 1) {
      double dx = atom_x[i] - atom_x[j];
      double dy = atom_y[i] - atom_y[j];
      double dz = atom_z[i] - atom_z[j];
      double r2 = dx * dx + dy * dy + dz * dz + 0.01;
      if (r2 < 36.0) {
        double inv2 = 1.0 / r2;
        double inv6 = inv2 * inv2 * inv2;
        double coef = inv6 * (inv6 - 0.5) * inv2;
        force_x[i] = force_x[i] + coef * dx;
        force_y[i] = force_y[i] + coef * dy;
        force_z[i] = force_z[i] + coef * dz;
        force_x[j] = force_x[j] - coef * dx;
        force_y[j] = force_y[j] - coef * dy;
        force_z[j] = force_z[j] - coef * dz;
      }
    }
  }
}

int main(int n) {
  int t;
  double virial = 0.0;
  int live_acc = am_startup();
  for (t = 0; t < n; t = t + 1) {
    place_atoms(t * 97 + 5);
    nonbond_forces();
    live_acc = live_acc + am_step(t);
    int i;
    for (i = 0; i < 256; i = i + 1) {
      virial = virial + force_x[i] * force_x[i] + force_y[i] * force_z[i];
    }
  }
  if (virial < -1.0e18) { return am_cold_dispatch(5, 1); }
  return virial + (live_acc & 7);
}
|}

let ammp =
  {
    name = "188.ammp";
    domain = Scientific;
    sources =
      [
        ("nonbon.c", ammp_kernel);
        ("eval.c", Gen.float_helper_family ~prefix:"am_eval" ~count:60);
        ("parse.c", Gen.int_helper_family ~prefix:"am_cold" ~count:70);
        ("modes.c", Gen.mode_family ~app:"am" ~live:95 ~cfg:30 ~dead:60);
      ];
    datasets = [ { label = "train"; n = 10 }; { label = "large"; n = 22 } ];
    description = "molecular-dynamics nonbond force kernel (188.ammp)";
  }

(* ------------------------------------------------------------------ *)
(* 429.mcf: network-simplex pricing sweep (pure integer).              *)
(* ------------------------------------------------------------------ *)

let mcf_kernel =
  {|
int arc_cost[4096];
int arc_tail[4096];
int arc_head[4096];
int node_potential[512];
int arc_flow[4096];

void build_network(int seed) {
  int i;
  int acc = seed;
  for (i = 0; i < 512; i = i + 1) {
    node_potential[i] = (i * 37) & 1023;
  }
  for (i = 0; i < 4096; i = i + 1) {
    acc = acc * 1103515245 + 12345;
    arc_tail[i] = (acc >> 8) & 511;
    arc_head[i] = (acc >> 20) & 511;
    arc_cost[i] = (acc >> 4) & 255;
    arc_flow[i] = 0;
  }
}

int price_arcs() {
  int i;
  int best = 0;
  int best_red = 0;
  for (i = 0; i < 4096; i = i + 1) {
    int red = (arc_cost[i] * 5 - node_potential[arc_tail[i]] * 4
               + node_potential[arc_head[i]] * 4 + 2) >> 2;
    if (red < best_red) { best_red = red; best = i; }
  }
  return best;
}

void augment(int arc) {
  int t = arc_tail[arc];
  int h = arc_head[arc];
  arc_flow[arc] = arc_flow[arc] + 1;
  node_potential[t] = node_potential[t] + 1;
  node_potential[h] = node_potential[h] - 1;
}

int main(int n) {
  int round;
  int pushes = 0;
  int live_acc = mcf_startup();
  build_network(4242);
  mcf_ph_seed(11);
  for (round = 0; round < n; round = round + 1) {
    int arc = price_arcs();
    augment(arc);
    mcf_ph_run();
    pushes = pushes + arc_flow[arc];
    live_acc = live_acc + mcf_step(round);
  }
  if (pushes < 0) { return mcf_cold_dispatch(1, pushes); }
  return pushes + (live_acc & 7);
}
|}

let mcf =
  {
    name = "429.mcf";
    domain = Scientific;
    sources =
      [
        ("pbeampp.c", mcf_kernel);
        ("implicit.c", Gen.int_helper_family ~prefix:"mcf_cold" ~count:28);
        ("modes.c", Gen.mode_family ~app:"mcf" ~live:40 ~cfg:14 ~dead:24);
        ( "treeup.c",
          Gen.phase_family ~prefix:"mcf_ph" ~phases:14 ~width:512
            ~float_ops:false );
      ];
    datasets = [ { label = "train"; n = 110 }; { label = "large"; n = 240 } ];
    description = "network-simplex arc pricing (429.mcf)";
  }

(* ------------------------------------------------------------------ *)
(* 433.milc: SU(3) complex 3x3 matrix products, fully unrolled — the   *)
(* biggest straight-line float blocks of the suite.                    *)
(* ------------------------------------------------------------------ *)

let milc_kernel =
  {|
double ar[9];
double ai[9];
double br[9];
double bi[9];
double cr[9];
double ci[9];
double link_acc;

void load_links(int seed) {
  int k;
  int acc = seed;
  for (k = 0; k < 9; k = k + 1) {
    acc = acc * 1103515245 + 12345;
    ar[k] = ((acc >> 10) & 255) / 256.0;
    acc = acc * 1103515245 + 12345;
    ai[k] = ((acc >> 10) & 255) / 256.0 - 0.5;
    acc = acc * 1103515245 + 12345;
    br[k] = ((acc >> 10) & 255) / 256.0;
    acc = acc * 1103515245 + 12345;
    bi[k] = ((acc >> 10) & 255) / 256.0 - 0.5;
  }
}

void su3_mult() {
  int i;
  int j;
  for (i = 0; i < 3; i = i + 1) {
    for (j = 0; j < 3; j = j + 1) {
      double rr = ar[i*3+0] * br[0*3+j] - ai[i*3+0] * bi[0*3+j]
                + ar[i*3+1] * br[1*3+j] - ai[i*3+1] * bi[1*3+j]
                + ar[i*3+2] * br[2*3+j] - ai[i*3+2] * bi[2*3+j];
      double ii = ar[i*3+0] * bi[0*3+j] + ai[i*3+0] * br[0*3+j]
                + ar[i*3+1] * bi[1*3+j] + ai[i*3+1] * br[1*3+j]
                + ar[i*3+2] * bi[2*3+j] + ai[i*3+2] * br[2*3+j];
      cr[i*3+j] = rr;
      ci[i*3+j] = ii;
    }
  }
}

double re_trace() {
  return cr[0] + cr[4] + cr[8];
}

int main(int n) {
  int t;
  int live_acc = milc_startup();
  link_acc = 0.0;
  milc_ph_seed(5);
  for (t = 0; t < n; t = t + 1) {
    load_links(t * 131 + 17);
    su3_mult();
    milc_ph_run();
    link_acc = link_acc + re_trace();
    live_acc = live_acc + milc_step(t);
  }
  if (link_acc < -1.0e18) { return milc_cold_dispatch(0, 1); }
  return link_acc * 1000.0 + (live_acc & 7);
}
|}

let milc =
  {
    name = "433.milc";
    domain = Scientific;
    sources =
      [
        ("m_mat_nn.c", milc_kernel);
        ("setup.c", Gen.int_helper_family ~prefix:"milc_cold" ~count:55);
        ("modes.c", Gen.mode_family ~app:"milc" ~live:60 ~cfg:20 ~dead:45);
        ( "congrad.c",
          Gen.phase_family ~prefix:"milc_ph" ~phases:14 ~width:48
            ~float_ops:true );
      ];
    datasets =
      [ { label = "train"; n = 220 }; { label = "large"; n = 480 } ];
    description = "SU(3) complex matrix-matrix products (433.milc)";
  }

(* ------------------------------------------------------------------ *)
(* 444.namd: pairwise nonbonded forces with a switching function.      *)
(* ------------------------------------------------------------------ *)

let namd_kernel =
  {|
double px[192];
double py[192];
double pz[192];
double charge[192];
double fx[192];
double fy[192];
double fz[192];
double pair_energy;

void init_particles(int seed) {
  int i;
  int acc = seed;
  for (i = 0; i < 192; i = i + 1) {
    acc = acc * 1103515245 + 12345;
    px[i] = ((acc >> 9) & 511) / 32.0;
    acc = acc * 1103515245 + 12345;
    py[i] = ((acc >> 9) & 511) / 32.0;
    acc = acc * 1103515245 + 12345;
    pz[i] = ((acc >> 9) & 511) / 32.0;
    charge[i] = 0.1 + 0.01 * (i & 7);
    fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0;
  }
}

void compute_electrostatics() {
  int i;
  int j;
  for (i = 0; i < 192; i = i + 1) {
    for (j = i + 1; j < 192; j = j + 1) {
      double dx = px[i] - px[j];
      double dy = py[i] - py[j];
      double dz = pz[i] - pz[j];
      double r2 = dx * dx + dy * dy + dz * dz + 0.01;
      if (r2 < 64.0) {
        double r = sqrt(r2);
        double sw = 1.0 - r2 / 64.0;
        double e = charge[i] * charge[j] / r * sw * sw;
        double g = e / r2;
        fx[i] = fx[i] + g * dx;
        fy[i] = fy[i] + g * dy;
        fz[i] = fz[i] + g * dz;
        fx[j] = fx[j] - g * dx;
        fy[j] = fy[j] - g * dy;
        fz[j] = fz[j] - g * dz;
        pair_energy = pair_energy + e;
      }
    }
  }
}

void compute_lennard_jones() {
  int i;
  int j;
  for (i = 0; i < 192; i = i + 1) {
    for (j = i + 1; j < 192; j = j + 1) {
      double dx = px[i] - px[j];
      double dy = py[i] - py[j];
      double dz = pz[i] - pz[j];
      double r2 = dx * dx + dy * dy + dz * dz + 0.01;
      if (r2 < 36.0) {
        double inv2 = 1.0 / r2;
        double inv6 = inv2 * inv2 * inv2;
        double g = inv6 * (12.0 * inv6 - 6.0) * inv2;
        fx[i] = fx[i] + g * dx;
        fy[i] = fy[i] + g * dy;
        fz[i] = fz[i] + g * dz;
        fx[j] = fx[j] - g * dx;
        fy[j] = fy[j] - g * dy;
        fz[j] = fz[j] - g * dz;
        pair_energy = pair_energy + inv6 * (inv6 - 1.0);
      }
    }
  }
}

int main(int n) {
  int t;
  pair_energy = 0.0;
  int live_acc = namd_startup();
  for (t = 0; t < n; t = t + 1) {
    init_particles(t * 211 + 3);
    compute_electrostatics();
    compute_lennard_jones();
    live_acc = live_acc + namd_step(t);
  }
  if (pair_energy < -1.0e18) { return namd_dead_dispatch(7, 2); }
  return pair_energy * 10.0 + (live_acc & 7);
}
|}

let namd =
  {
    name = "444.namd";
    domain = Scientific;
    sources =
      [
        ("compute_nonbonded.c", namd_kernel);
        ("lattice.c", Gen.float_helper_family ~prefix:"namd_lat" ~count:55);
        ("modes.c", Gen.mode_family ~app:"namd" ~live:70 ~cfg:24 ~dead:50);
      ];
    datasets = [ { label = "train"; n = 14 }; { label = "large"; n = 30 } ];
    description = "pairwise nonbonded molecular forces (444.namd)";
  }

(* ------------------------------------------------------------------ *)
(* 458.sjeng: bitboard move scoring — wide integer logic, everything   *)
(* executes (the paper reports a 100 % kernel for sjeng).              *)
(* ------------------------------------------------------------------ *)

let sjeng_kernel =
  {|
long occupied[64];
int piece_score[64];
int history[1024];

void setup_board(int seed) {
  int i;
  int acc = seed;
  for (i = 0; i < 64; i = i + 1) {
    acc = acc * 1103515245 + 12345;
    long lo = acc & 65535;
    acc = acc * 1103515245 + 12345;
    long hi = acc & 65535;
    occupied[i] = (hi << 16) | lo;
    piece_score[i] = ((acc >> 8) & 63) - 32;
  }
}

int popcount(long b) {
  // SWAR parallel bit count, as real chess engines use.
  long x = b - ((b >> 1) & 0x5555555555555555);
  x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333);
  x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0F;
  return (x * 0x0101010101010101) >> 56;
}

int attacks_from(int sq) {
  long b = occupied[sq];
  long n = ((b << 17) & -256) | ((b >> 17) & 255)
         | ((b << 15) & -512) | ((b >> 15) & 511)
         | ((b << 10) & -64) | ((b >> 10) & 63);
  return popcount(n & ~b);
}

int evaluate() {
  int sq;
  int score = 0;
  for (sq = 0; sq < 64; sq = sq + 1) {
    int mob = attacks_from(sq);
    int ps = piece_score[sq];
    score = score + ps * 4 + mob * 3 - ((ps ^ mob) & 7);
    history[(sq * 16 + mob) & 1023] = score;
  }
  return score;
}

int search(int depth, int alpha) {
  if (depth == 0) { return evaluate(); }
  int best = alpha;
  int m;
  for (m = 0; m < 4; m = m + 1) {
    setup_board(depth * 131 + m * 17);
    int v = 0 - search(depth - 1, 0 - best);
    if (v > best) { best = v; }
  }
  return best;
}

int main(int n) {
  int g;
  int total = 0;
  int live_acc = sj_startup();
  sj_ph_seed(9);
  for (g = 0; g < n; g = g + 1) {
    setup_board(g * 7 + 1);
    total = total + search(3, -30000);
    sj_ph_run();
    live_acc = live_acc + sj_step(g);
  }
  return (total & 65535) + (live_acc & 7);
}
|}

let sjeng =
  {
    name = "458.sjeng";
    domain = Scientific;
    sources =
      [
        ("attacks.c", sjeng_kernel);
        ("proof.c", Gen.int_helper_family ~prefix:"sj_cold" ~count:55);
        ("modes.c", Gen.mode_family ~app:"sj" ~live:60 ~cfg:20 ~dead:40);
        ( "evalmat.c",
          Gen.phase_family ~prefix:"sj_ph" ~phases:14 ~width:512
            ~float_ops:false );
      ];
    datasets = [ { label = "train"; n = 70 }; { label = "large"; n = 160 } ];
    description = "bitboard mobility evaluation and search (458.sjeng)";
  }

(* ------------------------------------------------------------------ *)
(* 470.lbm: D2Q9 lattice Boltzmann stream-and-collide; one huge        *)
(* straight-line float block per cell (the paper's biggest candidates).*)
(* ------------------------------------------------------------------ *)

let lbm_kernel =
  {|
double f0[1024]; double f1[1024]; double f2[1024];
double f3[1024]; double f4[1024]; double f5[1024];
double f6[1024]; double f7[1024]; double f8[1024];

void init_cells() {
  int i;
  for (i = 0; i < 1024; i = i + 1) {
    f0[i] = 0.4444; f1[i] = 0.1111; f2[i] = 0.1111;
    f3[i] = 0.1111; f4[i] = 0.1111; f5[i] = 0.0278;
    f6[i] = 0.0278; f7[i] = 0.0278; f8[i] = 0.0278 + 0.0001 * (i & 15);
  }
}

void collide_stream() {
  int i;
  for (i = 1; i < 1023; i = i + 1) {
    double rho = f0[i] + f1[i] + f2[i] + f3[i] + f4[i]
               + f5[i] + f6[i] + f7[i] + f8[i];
    double ux = (f1[i] - f3[i] + f5[i] - f6[i] - f7[i] + f8[i]) / rho;
    double uy = (f2[i] - f4[i] + f5[i] + f6[i] - f7[i] - f8[i]) / rho;
    double u2 = 1.0 - 1.5 * (ux * ux + uy * uy);
    double w1 = rho * 0.1111;
    double w2 = rho * 0.0278;
    double omega = 1.85;
    f0[i] = f0[i] + omega * (rho * 0.4444 * u2 - f0[i]);
    f1[i] = f1[i] + omega * (w1 * (u2 + 3.0 * ux + 4.5 * ux * ux) - f1[i]);
    f2[i] = f2[i] + omega * (w1 * (u2 + 3.0 * uy + 4.5 * uy * uy) - f2[i]);
    f3[i] = f3[i] + omega * (w1 * (u2 - 3.0 * ux + 4.5 * ux * ux) - f3[i]);
    f4[i] = f4[i] + omega * (w1 * (u2 - 3.0 * uy + 4.5 * uy * uy) - f4[i]);
    double uxy = ux + uy;
    double uxmy = ux - uy;
    f5[i] = f5[i] + omega * (w2 * (u2 + 3.0 * uxy + 4.5 * uxy * uxy) - f5[i]);
    f6[i] = f6[i] + omega * (w2 * (u2 - 3.0 * uxmy + 4.5 * uxmy * uxmy) - f6[i]);
    f7[i] = f7[i] + omega * (w2 * (u2 - 3.0 * uxy + 4.5 * uxy * uxy) - f7[i]);
    f8[i] = f8[i] + omega * (w2 * (u2 + 3.0 * uxmy + 4.5 * uxmy * uxmy) - f8[i]);
  }
  for (i = 1023; i > 0; i = i - 1) { f1[i] = f1[i - 1]; f5[i] = f5[i - 1]; }
  for (i = 0; i < 1023; i = i + 1) { f3[i] = f3[i + 1]; f7[i] = f7[i + 1]; }
}

int main(int n) {
  int t;
  int live_acc = lbm_startup();
  init_cells();
  for (t = 0; t < n; t = t + 1) {
    collide_stream();
    live_acc = live_acc + lbm_step(t);
  }
  double mass = 0.0;
  int i;
  for (i = 0; i < 1024; i = i + 1) { mass = mass + f0[i] + f5[i]; }
  if (mass < 0.0) { return lbm_cold_dispatch(4, 4); }
  return mass * 100.0 + (live_acc & 7);
}
|}

let lbm =
  {
    name = "470.lbm";
    domain = Scientific;
    sources =
      [
        ("lbm.c", lbm_kernel);
        ("main_aux.c", Gen.int_helper_family ~prefix:"lbm_cold" ~count:16);
        ("modes.c", Gen.mode_family ~app:"lbm" ~live:26 ~cfg:10 ~dead:16);
      ];
    datasets = [ { label = "train"; n = 120 }; { label = "large"; n = 260 } ];
    description = "D2Q9 lattice-Boltzmann collide/stream (470.lbm)";
  }

(* ------------------------------------------------------------------ *)
(* 473.astar: grid path search with open-list scanning (integer).      *)
(* ------------------------------------------------------------------ *)

let astar_kernel =
  {|
int gcost[4096];
int open_flag[4096];
int closed_flag[4096];
int terrain[4096];
int heur[4096];

void build_map(int seed, int goal) {
  int i;
  int acc = seed;
  for (i = 0; i < 4096; i = i + 1) {
    acc = acc * 1103515245 + 12345;
    terrain[i] = 1 + ((acc >> 20) & 7);
    gcost[i] = 1000000;
    open_flag[i] = 0;
    closed_flag[i] = 0;
    heur[i] = heuristic(i, goal);
  }
}

int heuristic(int cell, int goal) {
  int cx = cell & 63;
  int cy = cell >> 6;
  int gx = goal & 63;
  int gy = goal >> 6;
  int dx = cx - gx;
  int dy = cy - gy;
  if (dx < 0) { dx = 0 - dx; }
  if (dy < 0) { dy = 0 - dy; }
  return (dx + dy) * 3;
}

int pick_best() {
  int i;
  int best = -1;
  int best_f = 1000000000;
  for (i = 0; i < 4096; i = i + 1) {
    int f = gcost[i] * 2 + heur[i] * 3 + (open_flag[i] - 1) * 1000000000;
    if (f < best_f && open_flag[i] == 1) { best_f = f; best = i; }
  }
  return best;
}

void relax(int cell, int next) {
  if (next >= 0 && next < 4096 && closed_flag[next] == 0) {
    int cand = gcost[cell] + terrain[next];
    if (cand < gcost[next]) {
      gcost[next] = cand;
      open_flag[next] = 1;
    }
  }
}

int path_search(int start, int goal) {
  int expansions = 0;
  gcost[start] = 0;
  open_flag[start] = 1;
  while (expansions < 800) {
    int cell = pick_best();
    if (cell < 0) { return expansions; }
    if (cell == goal) { return expansions; }
    open_flag[cell] = 0;
    closed_flag[cell] = 1;
    relax(cell, cell - 1);
    relax(cell, cell + 1);
    relax(cell, cell - 64);
    relax(cell, cell + 64);
    expansions = expansions + 1;
  }
  return expansions;
}

int main(int n) {
  int q;
  int work = 0;
  int live_acc = as_startup();
  for (q = 0; q < n; q = q + 1) {
    build_map(q * 57 + 11, 4030);
    work = work + path_search(65, 4030);
    live_acc = live_acc + as_step(q);
  }
  if (work < 0) { return as_cold_dispatch(6, work); }
  return work + (live_acc & 7);
}
|}

let astar =
  {
    name = "473.astar";
    domain = Scientific;
    sources =
      [
        ("way.c", astar_kernel);
        ("regway.c", Gen.int_helper_family ~prefix:"as_cold" ~count:34);
        ("modes.c", Gen.mode_family ~app:"as" ~live:46 ~cfg:16 ~dead:28);
      ];
    datasets = [ { label = "train"; n = 3 }; { label = "large"; n = 6 } ];
    description = "grid A* path search with open-list scan (473.astar)";
  }

let all =
  [ gzip; art; equake; ammp; mcf; milc; namd; sjeng; lbm; astar ]
