(** All workloads, in the row order of the paper's tables. *)

let scientific = Scientific.all
let embedded = Embedded.all

(** Table order: scientific first (as in Tables I and II), then
    embedded. *)
let all = scientific @ embedded

(** Look up a workload by its table name (e.g. ["470.lbm"] or
    ["whetstone"]). *)
let find name =
  List.find_opt (fun w -> w.Workload.name = name) all

let names = List.map (fun w -> w.Workload.name) all
