lib/workloads/gen.ml: Buffer Printf
