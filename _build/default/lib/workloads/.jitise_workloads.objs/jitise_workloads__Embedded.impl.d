lib/workloads/embedded.ml: Workload
