lib/workloads/workload.ml: Int64 Jitise_frontend Jitise_ir Jitise_vm List
