lib/workloads/registry.ml: Embedded List Scientific Workload
