lib/workloads/scientific.ml: Gen Workload
