lib/analysis/cache_model.ml: Array Breakeven Float Fun Hashtbl Jitise_util List
