lib/analysis/breakeven.ml: Coverage Format Int64 Jitise_ir Jitise_ise Jitise_util Jitise_vm List
