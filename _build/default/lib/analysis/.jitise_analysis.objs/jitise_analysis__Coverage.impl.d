lib/analysis/coverage.ml: Jitise_ir Jitise_vm List
