lib/analysis/kernel.ml: Int64 Jitise_ir Jitise_vm List
