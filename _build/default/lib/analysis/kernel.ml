(** Kernel-size analysis (Section IV-C, last two columns of Table I).

    The kernel of an application is the smallest set of basic blocks
    responsible for at least [threshold] (default 90 %) of execution
    time.  Blocks are ranked by their profiled total cycle cost and
    accumulated until the threshold is crossed; the kernel size is the
    static instruction count of those blocks, also expressed as a
    percentage of the whole program. *)

module Ir = Jitise_ir
module Vm = Jitise_vm

type t = {
  threshold_percent : float;
  blocks : (string * Ir.Instr.label) list;  (** kernel blocks, hottest first *)
  kernel_instrs : int;       (** static instructions in the kernel *)
  total_instrs : int;        (** static instructions in the program *)
  size_percent : float;      (** kernel_instrs / total_instrs *)
  time_percent : float;      (** share of execution time actually covered *)
}

let block_instrs (m : Ir.Irmod.t) (fname, label) =
  match Ir.Irmod.find_func m fname with
  | None -> 0
  | Some f -> Ir.Block.size (Ir.Func.block f label)

(** Compute the kernel of a profiled module. *)
let compute ?(threshold_percent = 90.0) (m : Ir.Irmod.t)
    (profile : Vm.Profile.t) : t =
  let costs = Vm.Profile.block_costs profile m in
  let total_cycles =
    List.fold_left (fun acc (_, c) -> Int64.add acc c) 0L costs
  in
  let target =
    Int64.of_float (threshold_percent /. 100.0 *. Int64.to_float total_cycles)
  in
  let rec take acc covered = function
    | [] -> (List.rev acc, covered)
    | (key, c) :: rest ->
        if covered >= target then (List.rev acc, covered)
        else take (key :: acc) (Int64.add covered c) rest
  in
  let blocks, covered = take [] 0L costs in
  let kernel_instrs =
    List.fold_left (fun acc key -> acc + block_instrs m key) 0 blocks
  in
  let total_instrs = Ir.Irmod.num_instrs m in
  {
    threshold_percent;
    blocks;
    kernel_instrs;
    total_instrs;
    size_percent =
      (if total_instrs = 0 then 0.0
       else 100.0 *. float_of_int kernel_instrs /. float_of_int total_instrs);
    time_percent =
      (if total_cycles = 0L then 0.0
       else 100.0 *. Int64.to_float covered /. Int64.to_float total_cycles);
  }
