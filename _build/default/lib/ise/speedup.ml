(** Application-level ASIP speedup accounting.

    [asip_ratio] is the paper's "ASIP ratio": the factor by which the
    whole application accelerates when a set of candidates executes on
    custom functional units instead of the CPU pipeline.  Total cycles
    come from a profiled run; savings are per-candidate
    frequency-weighted cycle deltas. *)

type t = {
  total_cycles : float;   (** native software cycles of the whole run *)
  saved_cycles : float;   (** cycles removed by the custom instructions *)
  ratio : float;          (** total / (total - saved) *)
}

(** Speedup of a run of [total_cycles] when the given selected
    candidates are offloaded to hardware. *)
let of_selection ~total_cycles (selection : Select.scored list) : t =
  let saved =
    List.fold_left (fun acc s -> acc +. s.Select.saved_cycles) 0.0 selection
  in
  (* Savings can never exceed the cycles actually spent. *)
  let saved = Float.min saved (0.999 *. total_cycles) in
  {
    total_cycles;
    saved_cycles = saved;
    ratio = (if total_cycles <= 0.0 then 1.0 else total_cycles /. (total_cycles -. saved));
  }

let pp ppf t =
  Format.fprintf ppf "%.2fx (saved %.0f of %.0f cycles)" t.ratio t.saved_cycles
    t.total_cycles
