(** Input-constrained MISO decomposition.

    Architectures with hard limits on register-file read ports cannot
    encode candidates with many inputs.  Instead of rejecting a large
    MAXMISO outright, this pass decomposes it into sub-MISOs that each
    respect the input bound: the cone is traversed bottom-up and every
    node is greedily merged with its in-cone operand subtrees as long as
    the merged input count stays within [max_inputs]; operand subtrees
    that do not fit are emitted as candidates of their own and count as
    one input to their consumer.

    Woolcano itself tolerates wide candidates through multi-word APU
    operand transfer (see {!Jitise_pivpav.Estimator.transfer_cycles}),
    so the default flow does not split — the pass exists for the
    port-constrained ablation and for users targeting stricter
    interfaces. *)

module Ir = Jitise_ir

(* For each node of the cone (in instruction order, which is
   topological), compute the greedy group assignment. *)
let decompose (dfg : Ir.Dfg.t) ~max_inputs (candidate : Candidate.t) :
    Candidate.t list =
  let nodes = candidate.Candidate.nodes in
  if candidate.Candidate.num_inputs <= max_inputs then [ candidate ]
  else begin
    let inset = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace inset n ()) nodes;
    (* group id of each cone node; groups are represented by their root
       node id *)
    let group_of : (int, int) Hashtbl.t = Hashtbl.create 16 in
    (* external register inputs of each group *)
    let inputs_of : (int, (Ir.Instr.reg, unit) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 16
    in
    (* members of each group *)
    let members_of : (int, int list) Hashtbl.t = Hashtbl.create 16 in
    let reg_inputs n =
      (* register operands of node n that are not produced inside the
         cone: either block-external or produced by another group *)
      List.filter_map
        (function
          | Ir.Instr.Const _ -> None
          | Ir.Instr.Reg r -> Some r)
        (Ir.Instr.operands dfg.Ir.Dfg.nodes.(n).Ir.Dfg.instr.Ir.Instr.kind)
    in
    List.iter
      (fun n ->
        (* start a fresh group holding n and its direct external reads *)
        let inputs = Hashtbl.create 4 in
        let members = ref [ n ] in
        List.iter
          (fun r ->
            match Hashtbl.find_opt dfg.Ir.Dfg.by_reg r with
            | Some p when Hashtbl.mem inset p -> ()
            | _ -> Hashtbl.replace inputs r ())
          (reg_inputs n);
        (* classify in-cone operand subtrees: every subtree root's
           output initially counts as one input of n's group (pre-
           charged, so the bound is invariant); a successful merge
           swaps that output for the subtree's own inputs *)
        let in_cone_preds =
          List.filter (fun p -> Hashtbl.mem inset p)
            dfg.Ir.Dfg.nodes.(n).Ir.Dfg.preds
        in
        let absorbable =
          List.filter
            (fun p ->
              let pgroup = Hashtbl.find group_of p in
              let proot_node = dfg.Ir.Dfg.nodes.(pgroup) in
              (not proot_node.Ir.Dfg.external_uses)
              && proot_node.Ir.Dfg.succs = [ n ])
            in_cone_preds
        in
        List.iter
          (fun p ->
            let pgroup = Hashtbl.find group_of p in
            Hashtbl.replace inputs
              dfg.Ir.Dfg.nodes.(pgroup).Ir.Dfg.instr.Ir.Instr.id ())
          in_cone_preds;
        List.iter
          (fun p ->
            let pgroup = Hashtbl.find group_of p in
            let proot_out = dfg.Ir.Dfg.nodes.(pgroup).Ir.Dfg.instr.Ir.Instr.id in
            (* skip if this subtree was already merged via another
               operand edge *)
            if Hashtbl.mem inputs_of pgroup && Hashtbl.mem inputs proot_out
            then begin
              let pinputs = Hashtbl.find inputs_of pgroup in
              let merged = Hashtbl.copy inputs in
              Hashtbl.remove merged proot_out;
              Hashtbl.iter (fun r () -> Hashtbl.replace merged r ()) pinputs;
              if Hashtbl.length merged <= max_inputs then begin
                (* merge pgroup into n's group *)
                Hashtbl.reset inputs;
                Hashtbl.iter (fun r () -> Hashtbl.replace inputs r ()) merged;
                let pmembers = Hashtbl.find members_of pgroup in
                members := pmembers @ !members;
                List.iter (fun m -> Hashtbl.replace group_of m n) pmembers;
                Hashtbl.remove inputs_of pgroup;
                Hashtbl.remove members_of pgroup
              end
            end)
          absorbable;
        Hashtbl.replace group_of n n;
        Hashtbl.replace inputs_of n inputs;
        Hashtbl.replace members_of n !members)
      nodes;
    (* materialize groups as candidates, instruction order preserved *)
    Hashtbl.fold (fun root members acc -> (root, members) :: acc) members_of []
    |> List.sort compare
    |> List.map (fun (_, members) ->
           Candidate.make dfg ~func:candidate.Candidate.func members)
  end

(** Decompose every candidate of a list under [max_inputs]; candidates
    already within the bound pass through unchanged.  [min_size] drops
    fragments smaller than the given size (default 2), and fragments
    that still exceed the bound (a single instruction can have more
    register operands than the architecture offers read ports) are
    dropped as unimplementable. *)
let constrain ?(min_size = 2) (dfg_of : Candidate.t -> Ir.Dfg.t) ~max_inputs
    candidates =
  List.concat_map
    (fun c ->
      decompose (dfg_of c) ~max_inputs c
      |> List.filter (fun c ->
             c.Candidate.size >= min_size
             && c.Candidate.num_inputs <= max_inputs))
    candidates
