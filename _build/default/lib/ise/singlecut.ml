(** Exact single-output convex-cut enumeration — the exponential
    state-of-the-art baseline.

    This is the Atasu/Pozzi-style exact search the paper contrasts
    MAXMISO against: enumerate every convex, hardware-feasible subgraph
    with at most [max_inputs] register inputs and one output, keeping
    the best by estimated hardware speedup.  Worst-case exponential in
    the block size, which is exactly why it is unusable for
    just-in-time customization — the ablation bench demonstrates the
    blow-up. *)

module Ir = Jitise_ir

type config = {
  max_inputs : int;   (** register-file read ports, 4 on Woolcano *)
  max_nodes : int;    (** give up on blocks larger than this *)
  step_budget : int;  (** hard cap on explored subsets *)
}

let default_config = { max_inputs = 4; max_nodes = 24; step_budget = 2_000_000 }

type result = {
  best : Candidate.t option;
  explored : int;     (** number of subsets visited *)
  exhausted : bool;   (** search ended by budget, not completion *)
}

(* Enumerate by deciding include/exclude for feasible nodes in reverse
   topological order, growing connected sets downward from each seed. *)
let of_block ?(config = default_config) (db : Jitise_pivpav.Database.t)
    (dfg : Ir.Dfg.t) ~func : result =
  let n = Ir.Dfg.node_count dfg in
  let feasible = Array.init n (fun i -> Ir.Dfg.feasible dfg.Ir.Dfg.nodes.(i)) in
  let nfeasible = Array.fold_left (fun a b -> if b then a + 1 else a) 0 feasible in
  if nfeasible = 0 || nfeasible > config.max_nodes then
    { best = None; explored = 0; exhausted = nfeasible > config.max_nodes }
  else begin
    let explored = ref 0 in
    let exhausted = ref false in
    let best = ref None in
    let best_gain = ref 0.0 in
    let consider nodes =
      incr explored;
      if !explored >= config.step_budget then exhausted := true;
      if Candidate.is_convex dfg nodes then begin
        match Candidate.output_nodes dfg nodes with
        | [ _ ] when List.length (Candidate.external_input_regs dfg nodes)
                     <= config.max_inputs -> (
            match Jitise_pivpav.Estimator.estimate db dfg nodes with
            | Some est ->
                let gain =
                  float_of_int (est.Jitise_pivpav.Estimator.sw_cycles
                                - est.Jitise_pivpav.Estimator.hw_cycles)
                in
                if gain > !best_gain then begin
                  best_gain := gain;
                  best := Some (Candidate.make dfg ~func nodes)
                end
            | None -> ())
        | _ -> ()
      end
    in
    (* Depth-first enumeration of connected feasible subsets: each seed
       node starts a set; extension adds any feasible neighbour
       (pred or succ) of the current set with index greater than the
       seed to avoid duplicates. *)
    let neighbours nodes =
      let inset = Hashtbl.create 16 in
      List.iter (fun x -> Hashtbl.replace inset x ()) nodes;
      let out = ref [] in
      List.iter
        (fun x ->
          let node = dfg.Ir.Dfg.nodes.(x) in
          List.iter
            (fun y ->
              if feasible.(y) && (not (Hashtbl.mem inset y))
                 && not (List.mem y !out)
              then out := y :: !out)
            (node.Ir.Dfg.preds @ node.Ir.Dfg.succs))
        nodes;
      !out
    in
    (* Binary include/exclude branching over the connectivity frontier
       enumerates every connected subset exactly once (each set's
       smallest node is its seed; larger-index nodes join through the
       frontier). *)
    let rec extend seed nodes frontier forbidden =
      if (not !exhausted) && List.length nodes < config.max_nodes then
        match frontier with
        | [] -> ()
        | y :: rest ->
            (* Branch 1: y stays excluded below this branch. *)
            extend seed nodes rest (y :: forbidden);
            (* Branch 2: include y. *)
            if not !exhausted then begin
              let nodes' = y :: nodes in
              consider nodes';
              let fresh =
                List.filter
                  (fun z ->
                    z > seed
                    && (not (List.mem z nodes'))
                    && (not (List.mem z rest))
                    && not (List.mem z forbidden))
                  (neighbours [ y ])
              in
              extend seed nodes' (rest @ fresh) forbidden
            end
    in
    for seed = 0 to n - 1 do
      if feasible.(seed) && not !exhausted then begin
        consider [ seed ];
        let frontier = List.filter (fun z -> z > seed) (neighbours [ seed ]) in
        extend seed [ seed ] frontier []
      end
    done;
    { best = !best; explored = !explored; exhausted = !exhausted }
  end
