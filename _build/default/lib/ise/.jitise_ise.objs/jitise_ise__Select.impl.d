lib/ise/select.ml: Candidate Int64 Jitise_ir Jitise_pivpav Jitise_vm List Split
