lib/ise/singlecut.ml: Array Candidate Hashtbl Jitise_ir Jitise_pivpav List
