lib/ise/speedup.ml: Float Format List Select
