lib/ise/maxmiso.ml: Array Candidate Hashtbl Jitise_ir List Queue
