lib/ise/candidate.ml: Array Buffer Format Hashtbl Jitise_ir Jitise_util List Printf String
