lib/ise/split.ml: Array Candidate Hashtbl Jitise_ir List
