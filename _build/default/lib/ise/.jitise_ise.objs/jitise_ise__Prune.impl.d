lib/ise/prune.ml: Int64 Jitise_ir Jitise_vm List Printf Scanf
