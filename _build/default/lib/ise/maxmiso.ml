(** The MAXMISO custom-instruction identification algorithm.

    A MISO is a connected subgraph with a single output; a MAXMISO is a
    maximal one.  MAXMISOs of a DFG are disjoint and can be enumerated
    in time linear in the graph size [Alippi et al.], which is why the
    paper chose the algorithm for just-in-time operation: the
    state-of-the-art exact algorithms are exponential (see
    {!Singlecut}).

    Enumeration: feasible nodes whose value escapes the candidate space
    (used outside the block, unconsumed, or consumed by an infeasible
    instruction) root the first cones; each cone greedily absorbs
    predecessors whose consumers all lie inside it, claiming them.
    Feasible nodes left unassigned — their consumers are split across
    different cones — then root cones of their own.  The result is a
    partition: no instruction belongs to two candidates, which the
    downstream savings accounting and binary adaptation rely on. *)

module Ir = Jitise_ir

(** Escape roots: feasible nodes whose value leaves the feasible
    candidate space. *)
let escape_roots (dfg : Ir.Dfg.t) =
  Array.to_list dfg.Ir.Dfg.nodes
  |> List.filter_map (fun (node : Ir.Dfg.node) ->
         if not (Ir.Dfg.feasible node) then None
         else
           let escapes =
             node.Ir.Dfg.external_uses
             || node.Ir.Dfg.succs = []
             || List.exists
                  (fun s -> not (Ir.Dfg.feasible dfg.Ir.Dfg.nodes.(s)))
                  node.Ir.Dfg.succs
           in
           if escapes then Some node.Ir.Dfg.index else None)

(* Grow the maximal cone above [root] over unassigned feasible nodes:
   fixpoint inclusion of predecessors whose consumers are all inside the
   cone.  Claims every included node in [assigned]. *)
let grow (dfg : Ir.Dfg.t) (assigned : bool array) root =
  let inset = Hashtbl.create 16 in
  Hashtbl.replace inset root ();
  assigned.(root) <- true;
  let queue = Queue.create () in
  Queue.add root queue;
  (* A rejected predecessor is reconsidered each time another of its
     consumers joins the cone (it is a predecessor of that consumer),
     so the worklist converges to the maximal cone. *)
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    List.iter
      (fun p ->
        if not (Hashtbl.mem inset p) then begin
          let pnode = dfg.Ir.Dfg.nodes.(p) in
          let absorbable =
            Ir.Dfg.feasible pnode
            && (not assigned.(p))
            && (not pnode.Ir.Dfg.external_uses)
            && pnode.Ir.Dfg.succs <> []
            && List.for_all (fun s -> Hashtbl.mem inset s) pnode.Ir.Dfg.succs
          in
          if absorbable then begin
            Hashtbl.replace inset p ();
            assigned.(p) <- true;
            Queue.add p queue
          end
        end)
      dfg.Ir.Dfg.nodes.(n).Ir.Dfg.preds
  done;
  Hashtbl.fold (fun n () acc -> n :: acc) inset []

(** The MAXMISO partition of one block's feasible nodes, as candidates.
    [min_size] drops trivial single-instruction cones (default 2,
    matching the paper's observation that one-op custom instructions
    never amortize the CI interface overhead). *)
let of_block ?(min_size = 2) (dfg : Ir.Dfg.t) ~func : Candidate.t list =
  let n = Ir.Dfg.node_count dfg in
  let assigned = Array.make n false in
  let cones = ref [] in
  List.iter
    (fun root -> cones := grow dfg assigned root :: !cones)
    (escape_roots dfg);
  (* Leftovers whose consumers were split across cones: highest index
     first, so downstream leftovers root before their producers. *)
  for i = n - 1 downto 0 do
    if (not assigned.(i)) && Ir.Dfg.feasible dfg.Ir.Dfg.nodes.(i) then
      cones := grow dfg assigned i :: !cones
  done;
  List.rev !cones
  |> List.filter (fun nodes -> List.length nodes >= min_size)
  |> List.map (fun nodes -> Candidate.make dfg ~func nodes)

(** MAXMISOs of every block of a function. *)
let of_func ?min_size (f : Ir.Func.t) : Candidate.t list =
  Ir.Func.fold_blocks
    (fun acc b ->
      let dfg = Ir.Dfg.of_block f b in
      acc @ of_block ?min_size dfg ~func:f.Ir.Func.name)
    [] f

(** MAXMISOs of a whole module. *)
let of_module ?min_size (m : Ir.Irmod.t) : Candidate.t list =
  List.concat_map (fun f -> of_func ?min_size f) m.Ir.Irmod.funcs
