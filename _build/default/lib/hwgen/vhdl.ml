(** Structural VHDL generation — PivPav's data-path generator.

    Walks a candidate's data-flow subgraph in topological order,
    instantiates one library component per instruction, and wires them
    with intermediate signals.  The output is a self-contained entity
    whose ports are the candidate's external inputs and its single
    output, exactly the artifact the FPGA CAD flow consumes. *)

module Ir = Jitise_ir
module Ise = Jitise_ise
module Pp = Jitise_pivpav

type t = {
  entity_name : string;
  source : string;            (** full VHDL text *)
  components : Pp.Component.t list;  (** instantiated library cores *)
  num_ports : int;
  lines : int;
}

let width_of_ty ty = max 1 (Ir.Ty.bits ty)

let signal_name n = Printf.sprintf "s%d" n

(* Ports for candidate inputs are named by their source register. *)
let port_name r = Printf.sprintf "in_r%d" r

let literal_bits width (c : Ir.Instr.const) =
  let v =
    match c with
    | Ir.Instr.Cint (v, _) -> v
    | Ir.Instr.Cfloat (f, ty) ->
        if ty = Ir.Ty.F32 then Int64.of_int32 (Int32.bits_of_float f)
        else Int64.bits_of_float f
  in
  let b = Buffer.create width in
  for bit = width - 1 downto 0 do
    Buffer.add_char b
      (if Int64.logand (Int64.shift_right_logical v bit) 1L = 1L then '1'
       else '0')
  done;
  Buffer.contents b

(** Generate VHDL for [candidate] within its home DFG.  The paper
    reports this as a constant-time (~0.2 s) per-candidate step. *)
let generate (dfg : Ir.Dfg.t) (candidate : Ise.Candidate.t) : t =
  let nodes = candidate.Ise.Candidate.nodes in
  let inset = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace inset n ()) nodes;
  let entity_name = candidate.Ise.Candidate.signature in
  let inputs = Ise.Candidate.external_input_regs dfg nodes in
  let root = candidate.Ise.Candidate.root in
  let root_instr = dfg.Ir.Dfg.nodes.(root).Ir.Dfg.instr in
  let out_width = width_of_ty root_instr.Ir.Instr.ty in
  let buf = Buffer.create 2048 in
  let components = ref [] in
  Printf.bprintf buf "library ieee;\nuse ieee.std_logic_1164.all;\n";
  Printf.bprintf buf "use ieee.numeric_std.all;\n\n";
  Printf.bprintf buf "entity %s is\n  port (\n" entity_name;
  List.iter
    (fun r ->
      (* Input width is unknown here without the register's type; the
         data-path generator queries it from the defining instruction
         when in-block, else defaults to the machine word. *)
      let width =
        match Hashtbl.find_opt dfg.Ir.Dfg.by_reg r with
        | Some p when not (Hashtbl.mem inset p) ->
            width_of_ty dfg.Ir.Dfg.nodes.(p).Ir.Dfg.instr.Ir.Instr.ty
        | _ -> 32
      in
      Printf.bprintf buf "    %s : in  std_logic_vector(%d downto 0);\n"
        (port_name r) (width - 1))
    inputs;
  Printf.bprintf buf "    q : out std_logic_vector(%d downto 0)\n  );\n"
    (out_width - 1);
  Printf.bprintf buf "end entity %s;\n\n" entity_name;
  Printf.bprintf buf "architecture structural of %s is\n" entity_name;
  (* Signals for every interior node. *)
  List.iter
    (fun n ->
      let w = width_of_ty dfg.Ir.Dfg.nodes.(n).Ir.Dfg.instr.Ir.Instr.ty in
      Printf.bprintf buf "  signal %s : std_logic_vector(%d downto 0);\n"
        (signal_name n) (w - 1))
    nodes;
  Printf.bprintf buf "begin\n";
  let operand_text op =
    match op with
    | Ir.Instr.Const c ->
        let w =
          width_of_ty (Ir.Instr.const_ty c)
        in
        Printf.sprintf "\"%s\"" (literal_bits w c)
    | Ir.Instr.Reg r -> (
        match Hashtbl.find_opt dfg.Ir.Dfg.by_reg r with
        | Some p when Hashtbl.mem inset p -> signal_name p
        | _ -> port_name r)
  in
  List.iter
    (fun n ->
      let instr = dfg.Ir.Dfg.nodes.(n).Ir.Dfg.instr in
      match Pp.Component.of_instr instr with
      | None ->
          invalid_arg
            (Printf.sprintf "Vhdl.generate: infeasible instruction %s"
               (Ir.Instr.opcode_name instr.Ir.Instr.kind))
      | Some comp ->
          components := comp :: !components;
          let ports =
            List.mapi
              (fun k op ->
                let formal =
                  match k with 0 -> "a" | 1 -> "b" | _ -> "sel"
                in
                Printf.sprintf "%s => %s" formal (operand_text op))
              (Ir.Instr.operands instr.Ir.Instr.kind)
          in
          Printf.bprintf buf "  u%d : entity work.%s port map (%s, q => %s);\n"
            n (Pp.Component.name comp)
            (String.concat ", " ports)
            (signal_name n))
    nodes;
  Printf.bprintf buf "  q <= %s;\nend architecture structural;\n"
    (signal_name root);
  let source = Buffer.contents buf in
  {
    entity_name;
    source;
    components = List.rev !components;
    num_ports = List.length inputs + 1;
    lines =
      String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 source;
  }

(** Structural well-formedness check used by the CAD flow's
    "Check Syntax" stage: entity/architecture bracketing, one
    instantiation per candidate node, and no dangling signal
    references.  Returns problems found (empty = clean). *)
let check_syntax (v : t) : string list =
  let problems = ref [] in
  let need substring what =
    let contains =
      let n = String.length v.source and m = String.length substring in
      let rec go i =
        i + m <= n && (String.sub v.source i m = substring || go (i + 1))
      in
      go 0
    in
    if not contains then problems := what :: !problems
  in
  need ("entity " ^ v.entity_name) "missing entity declaration";
  need ("end entity " ^ v.entity_name) "unterminated entity";
  need "architecture structural" "missing architecture";
  need "end architecture structural" "unterminated architecture";
  need "q <= " "output not driven";
  if v.components = [] then problems := "no component instantiations" :: !problems;
  List.rev !problems
