lib/hwgen/project.ml: Jitise_ir Jitise_ise Jitise_pivpav List Option Vhdl
