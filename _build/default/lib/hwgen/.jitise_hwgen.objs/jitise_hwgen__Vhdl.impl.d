lib/hwgen/vhdl.ml: Array Buffer Hashtbl Int32 Int64 Jitise_ir Jitise_ise Jitise_pivpav List Printf String
