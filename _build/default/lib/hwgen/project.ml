(** FPGA CAD project assembly — the "Create Project" task of the
    Netlist Generation phase.

    A project bundles everything Xilinx ISE would need for one custom
    instruction: the generated VHDL, the component netlists pulled from
    the PivPav database (the netlist cache that spares re-synthesis of
    the cores), and the target-device parameters. *)

module Ise = Jitise_ise
module Pp = Jitise_pivpav

type device = {
  part : string;        (** e.g. ["xc4vfx100-10ff1517"] *)
  luts_available : int;
  dsp_available : int;
  reconfig_frame_bytes : int;
      (** partial-reconfiguration granularity; fixes bitstream size *)
}

(** The paper's target: the large Virtex-4 FX100 of the Woolcano
    platform. *)
let virtex4_fx100 =
  {
    part = "xc4vfx100-10ff1517";
    luts_available = 84_352;
    dsp_available = 160;
    reconfig_frame_bytes = 164 * 4;
  }

type t = {
  name : string;                     (** candidate signature *)
  candidate : Ise.Candidate.t;
  vhdl : Vhdl.t;
  netlists : (string * string) list;  (** component name -> netlist blob *)
  device : device;
  netlist_cache_hits : int;
  netlist_cache_misses : int;
}

(** Build the CAD project for [candidate], fetching every instantiated
    component's netlist through the database cache. *)
let create ?(device = virtex4_fx100) (db : Pp.Database.t)
    (dfg : Jitise_ir.Dfg.t) (candidate : Ise.Candidate.t) : t =
  let vhdl = Vhdl.generate dfg candidate in
  let before = Pp.Database.stats db in
  let netlists =
    List.filter_map
      (fun comp ->
        Option.map
          (fun blob -> (Pp.Component.name comp, blob))
          (Pp.Database.fetch_netlist db comp))
      (List.sort_uniq Pp.Component.compare vhdl.Vhdl.components)
  in
  let after = Pp.Database.stats db in
  {
    name = candidate.Ise.Candidate.signature;
    candidate;
    vhdl;
    netlists;
    device;
    netlist_cache_hits =
      after.Pp.Database.netlist_hits - before.Pp.Database.netlist_hits;
    netlist_cache_misses =
      after.Pp.Database.netlist_misses - before.Pp.Database.netlist_misses;
  }

(** Aggregate area of the candidate's data path, from the database. *)
let area (db : Pp.Database.t) (t : t) =
  List.fold_left
    (fun (luts, ffs, dsp) comp ->
      match Pp.Database.lookup db comp with
      | Some e ->
          ( luts + e.Pp.Database.metrics.Pp.Metrics.luts,
            ffs + e.Pp.Database.metrics.Pp.Metrics.flip_flops,
            dsp + e.Pp.Database.metrics.Pp.Metrics.dsp48 )
      | None -> (luts, ffs, dsp))
    (0, 0, 0) t.vhdl.Vhdl.components

(** Does the data path fit the device? *)
let fits (db : Pp.Database.t) (t : t) =
  let luts, _, dsp = area db t in
  luts <= t.device.luts_available && dsp <= t.device.dsp_available
