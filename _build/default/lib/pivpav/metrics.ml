(** Per-component hardware metrics.

    The paper's PivPav tool [Grad & Plessl, ERSA'10] keeps a database of
    pre-synthesized IP cores with "more than 90 different metrics" per
    core, measured on the Virtex-4 target.  We model the metrics that
    the JIT-ISE flow actually consumes (timing, area, power, pipeline
    shape) as typed fields, and carry the remaining synthesis-report
    counters in [extra] so a database entry round-trips a realistic
    report. *)

type t = {
  (* Timing *)
  latency_ns : float;      (** combinational critical path through the core *)
  fmax_mhz : float;        (** maximum clock when registered *)
  pipeline_depth : int;    (** register stages in the pipelined variant *)
  (* Area *)
  luts : int;
  flip_flops : int;
  slices : int;
  dsp48 : int;
  bram : int;
  (* Power *)
  static_power_mw : float;
  dynamic_power_mw_per_mhz : float;
  (* Interface *)
  input_width_bits : int;
  output_width_bits : int;
  num_inputs : int;
  (* Synthesis-report counters (IO buffers, nets, fanout, ...) *)
  extra : (string * float) list;
}

(** Number of metrics an entry carries (typed fields plus [extra]);
    the generated database keeps this above 90 per component to match
    the PivPav description. *)
let count t = 14 + List.length t.extra

let pp ppf t =
  Format.fprintf ppf
    "latency=%.2fns fmax=%.0fMHz depth=%d luts=%d ff=%d slices=%d dsp=%d \
     bram=%d"
    t.latency_ns t.fmax_mhz t.pipeline_depth t.luts t.flip_flops t.slices
    t.dsp48 t.bram
