(** Hardware component identities.

    A component is one pre-synthesized IP core: an operator at a given
    bit width, e.g. [add_i32] or [fmul_f64].  Component keys are derived
    from IR instructions so the data-path generator and the estimator
    agree on the mapping. *)

module Ir = Jitise_ir

type t = {
  opcode : string;  (** IR mnemonic: ["add"], ["fmul"], ["icmp.slt"], ... *)
  width : int;      (** operand width in bits *)
}

let name t = Printf.sprintf "%s_w%d" t.opcode t.width

let compare = compare

(** Component implementing an IR instruction, or [None] when the
    instruction cannot be mapped to hardware (memory access, call,
    phi). *)
let of_instr (i : Ir.Instr.t) : t option =
  if not (Ir.Instr.hw_feasible i.Ir.Instr.kind) then None
  else
    let width =
      match i.Ir.Instr.kind with
      | Ir.Instr.Icmp _ | Ir.Instr.Fcmp _ -> (
          (* Sized by the operands, not the i1 result.  Without a type
             environment the constant operand decides; otherwise the
             machine word is assumed. *)
          match Ir.Instr.operands i.Ir.Instr.kind with
          | Ir.Instr.Const c :: _ | [ _; Ir.Instr.Const c ] ->
              Ir.Ty.bits (Ir.Instr.const_ty c)
          | _ -> 32)
      | _ -> Ir.Ty.bits i.Ir.Instr.ty
    in
    let width = if width <= 1 then 32 else width in
    Some { opcode = Ir.Instr.opcode_name i.Ir.Instr.kind; width }

let pp ppf t = Format.pp_print_string ppf (name t)
