(** Software-vs-hardware performance estimation.

    For a candidate subgraph of a block DFG, the estimator computes:

    - the software cost: the sum of PowerPC cycle costs of its
      instructions (they execute sequentially on the core);
    - the hardware cost: the combinational critical path through the
      data-path built from database components (ASAP schedule), plus the
      fixed custom-instruction issue overhead, rounded up to CPU cycles.

    The difference, weighted by block execution frequency, is the
    selection metric of the Candidate Search phase. *)

module Ir = Jitise_ir

(** Cycles charged for issuing a custom instruction. *)
let ci_issue_overhead_cycles = 1

(** Operand-transfer model of the Virtex-4 APU interface: two register
    words move to the fabric per cycle, so candidates with more than
    two inputs pay extra transfer cycles instead of being rejected.
    This is how Woolcano supports the ~7-input candidates the paper
    reports despite the narrow processor-fabric interface. *)
let transfer_cycles ~num_inputs = (max 0 (num_inputs - 2) + 1) / 2

type estimate = {
  sw_cycles : int;        (** software execution cost per invocation *)
  hw_latency_ns : float;  (** data-path critical path *)
  hw_cycles : int;        (** hardware cost per invocation, incl. issue
                              and operand transfer *)
  num_inputs : int;       (** distinct register inputs *)
  luts : int;
  flip_flops : int;
  dsp48 : int;
  speedup : float;        (** sw_cycles / hw_cycles *)
}

(** Estimate a candidate given as a set of node indices of [dfg].  Nodes
    not mappable to hardware make the estimate [None] (the caller never
    passes them — MAXMISO only grows over feasible nodes). *)
let estimate (db : Database.t) (dfg : Ir.Dfg.t) (nodes : int list) :
    estimate option =
  let node_set = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace node_set n ()) nodes;
  let exception Infeasible in
  try
    (* Distinct register inputs produced outside the candidate. *)
    let inputs = Hashtbl.create 8 in
    List.iter
      (fun n ->
        List.iter
          (function
            | Ir.Instr.Const _ -> ()
            | Ir.Instr.Reg r -> (
                match Hashtbl.find_opt dfg.Ir.Dfg.by_reg r with
                | Some p when Hashtbl.mem node_set p -> ()
                | _ -> Hashtbl.replace inputs r ()))
          (Ir.Instr.operands dfg.Ir.Dfg.nodes.(n).Ir.Dfg.instr.Ir.Instr.kind))
      nodes;
    let num_inputs = Hashtbl.length inputs in
    let sw = ref 0 in
    let luts = ref 0 and ffs = ref 0 and dsp = ref 0 in
    (* ASAP arrival times over the sub-DFG, in instruction order (which
       is topological). *)
    let arrival : (int, float) Hashtbl.t = Hashtbl.create 16 in
    let critical = ref 0.0 in
    List.iter
      (fun n ->
        let node = dfg.Ir.Dfg.nodes.(n) in
        let i = node.Ir.Dfg.instr in
        sw := !sw + Ir.Cost.cycles i.Ir.Instr.kind;
        let m =
          match Database.metrics_for_instr db i with
          | Some m -> m
          | None -> raise Infeasible
        in
        luts := !luts + m.Metrics.luts;
        ffs := !ffs + m.Metrics.flip_flops;
        dsp := !dsp + m.Metrics.dsp48;
        let input_arrival =
          List.fold_left
            (fun acc p ->
              if Hashtbl.mem node_set p then
                max acc (Option.value ~default:0.0 (Hashtbl.find_opt arrival p))
              else acc)
            0.0 node.Ir.Dfg.preds
        in
        let out = input_arrival +. m.Metrics.latency_ns in
        Hashtbl.replace arrival n out;
        if out > !critical then critical := out)
      (List.sort compare nodes);
    let hw_cycles =
      ci_issue_overhead_cycles
      + transfer_cycles ~num_inputs
      + max 1 (int_of_float (ceil (!critical /. (Ir.Cost.cycle_time *. 1e9))))
    in
    Some
      {
        sw_cycles = !sw;
        hw_latency_ns = !critical;
        hw_cycles;
        num_inputs;
        luts = !luts;
        flip_flops = !ffs;
        dsp48 = !dsp;
        speedup = float_of_int !sw /. float_of_int hw_cycles;
      }
  with Infeasible -> None
