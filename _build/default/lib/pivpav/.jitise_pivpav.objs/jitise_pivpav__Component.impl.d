lib/pivpav/component.ml: Format Jitise_ir Printf
