lib/pivpav/database.ml: Buffer Component Hashtbl Jitise_ir Jitise_util Lazy List Metrics Option Printf String
