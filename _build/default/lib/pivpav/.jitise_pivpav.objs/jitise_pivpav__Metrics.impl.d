lib/pivpav/metrics.ml: Format List
