lib/pivpav/estimator.ml: Array Database Hashtbl Jitise_ir List Metrics Option
