(** Aligned plain-text tables.

    The experiment drivers print reproductions of the paper's Tables
    I-IV; this module handles column sizing and alignment so every
    driver renders consistently. *)

type align = Left | Right | Center

type t
(** A table under construction. *)

val create : headers:string list -> t
(** [create ~headers] starts a table whose column count is fixed by
    [headers]. *)

val set_aligns : t -> align list -> unit
(** Overrides per-column alignment (default: first column [Left],
    others [Right]).  @raise Invalid_argument on column-count
    mismatch. *)

val add_row : t -> string list -> unit
(** Appends a data row.  @raise Invalid_argument on column-count
    mismatch. *)

val add_separator : t -> unit
(** Appends a horizontal rule, used to offset the paper's AVG/RATIO
    summary rows. *)

val render : t -> string
(** Renders the table with a header rule, column padding, and any
    separators, terminated by a newline. *)

val print : t -> unit
(** [render] to stdout. *)
