let sum xs = List.fold_left ( +. ) 0.0 xs

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let mean_arr a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stdev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. (n -. 1.0))

let geomean = function
  | [] -> 0.0
  | xs ->
      let logs =
        List.map
          (fun x ->
            if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value"
            else log x)
          xs
      in
      exp (mean logs)

let sorted xs = List.sort compare xs

let median = function
  | [] -> 0.0
  | xs ->
      let a = Array.of_list (sorted xs) in
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
      let a = Array.of_list (sorted xs) in
      let n = Array.length a in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left max x xs

let weighted_mean wxs =
  let wsum = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 wxs in
  if wsum = 0.0 then 0.0
  else List.fold_left (fun acc (w, x) -> acc +. (w *. x)) 0.0 wxs /. wsum

type summary = {
  n : int;
  mean : float;
  stdev : float;
  min : float;
  max : float;
  median : float;
}

let summarize = function
  | [] -> { n = 0; mean = 0.0; stdev = 0.0; min = 0.0; max = 0.0; median = 0.0 }
  | xs ->
      {
        n = List.length xs;
        mean = mean xs;
        stdev = stdev xs;
        min = minimum xs;
        max = maximum xs;
        median = median xs;
      }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" s.n
    s.mean s.stdev s.min s.median s.max
