type align = Left | Right | Center

type row = Data of string list | Separator

type t = {
  headers : string list;
  ncols : int;
  mutable aligns : align list;
  mutable rows : row list; (* reversed *)
}

let default_aligns n = List.init n (fun i -> if i = 0 then Left else Right)

let create ~headers =
  let n = List.length headers in
  { headers; ncols = n; aligns = default_aligns n; rows = [] }

let set_aligns t aligns =
  if List.length aligns <> t.ncols then
    invalid_arg "Texttable.set_aligns: column count mismatch";
  t.aligns <- aligns

let add_row t cells =
  if List.length cells <> t.ncols then
    invalid_arg
      (Printf.sprintf "Texttable.add_row: expected %d cells, got %d" t.ncols
         (List.length cells));
  t.rows <- Data cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - len) ' '
    | Right -> String.make (width - len) ' ' ^ s
    | Center ->
        let left = (width - len) / 2 in
        String.make left ' ' ^ s ^ String.make (width - len - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Separator -> ()
      | Data cells ->
          List.iteri
            (fun i c -> widths.(i) <- max widths.(i) (String.length c))
            cells)
    rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (String.make w '-');
        if i < t.ncols - 1 then Buffer.add_string buf "-+-")
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) c);
        if i < t.ncols - 1 then Buffer.add_string buf " | ")
      cells;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  rule ();
  List.iter (function Separator -> rule () | Data cells -> emit_cells cells) rows;
  Buffer.contents buf

let print t = print_string (render t)
