(** Deterministic pseudo-random number generation.

    All stochastic components of the simulator (CAD runtime jitter, cache
    population, dataset synthesis) draw from an explicitly seeded
    [Prng.t] so that every experiment is reproducible bit-for-bit.  The
    generator is SplitMix64, which is small, fast, and has no shared
    global state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same
    future stream as [t]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the continuation of [t]'s stream.
    Used to hand sub-seeds to sub-components without coupling their
    consumption order. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** [gaussian t ~mu ~sigma] draws from a normal distribution via
    Box-Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)

val hash_string : string -> int
(** [hash_string s] is a stable 62-bit FNV-1a hash of [s], suitable for
    deriving per-object seeds that do not depend on OCaml's randomized
    [Hashtbl.hash]. *)
