type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 step: advance by the golden gamma and mix. *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = int64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's native int without wrapping
     negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits scaled to [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let hash_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  Int64.to_int (Int64.shift_right_logical !h 2)
