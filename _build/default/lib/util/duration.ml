type t = float

let seconds s = s
let minutes m = m *. 60.0
let hours h = h *. 3600.0
let days d = d *. 86400.0

let check_non_negative name t =
  if t < 0.0 then invalid_arg (Printf.sprintf "Duration.%s: negative duration" name)

let to_ms_string t = Printf.sprintf "%.2f" (t *. 1000.0)

(* Round to whole seconds first so that e.g. 59.7 s prints as 1:00, not
   0:59 with a lost fraction. *)
let whole_seconds t = int_of_float (Float.round t)

let to_min_sec t =
  check_non_negative "to_min_sec" t;
  let s = whole_seconds t in
  Printf.sprintf "%d:%02d" (s / 60) (s mod 60)

let to_hms t =
  check_non_negative "to_hms" t;
  let s = whole_seconds t in
  Printf.sprintf "%02d:%02d:%02d" (s / 3600) (s mod 3600 / 60) (s mod 60)

let to_dhms t =
  check_non_negative "to_dhms" t;
  let s = whole_seconds t in
  Printf.sprintf "%d:%02d:%02d:%02d" (s / 86400) (s mod 86400 / 3600)
    (s mod 3600 / 60) (s mod 60)

let parse_fields name n s =
  let parts = String.split_on_char ':' s in
  if List.length parts <> n then
    invalid_arg (Printf.sprintf "Duration.%s: expected %d fields in %S" name n s);
  List.map
    (fun p ->
      match int_of_string_opt (String.trim p) with
      | Some v when v >= 0 -> v
      | _ -> invalid_arg (Printf.sprintf "Duration.%s: bad field %S" name p))
    parts

let of_min_sec s =
  match parse_fields "of_min_sec" 2 s with
  | [ m; sec ] -> float_of_int ((m * 60) + sec)
  | _ -> assert false

let of_hms s =
  match parse_fields "of_hms" 3 s with
  | [ h; m; sec ] -> float_of_int ((h * 3600) + (m * 60) + sec)
  | _ -> assert false

let of_dhms s =
  match parse_fields "of_dhms" 4 s with
  | [ d; h; m; sec ] ->
      float_of_int ((d * 86400) + (h * 3600) + (m * 60) + sec)
  | _ -> assert false
