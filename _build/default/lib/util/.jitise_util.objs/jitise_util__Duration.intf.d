lib/util/duration.mli:
