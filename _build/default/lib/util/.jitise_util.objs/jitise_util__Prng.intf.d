lib/util/prng.mli:
