lib/util/prng.ml: Array Char Float Int64 String
