lib/util/texttable.ml: Array Buffer List Printf String
