lib/util/duration.ml: Float List Printf String
