lib/util/texttable.mli:
