(** Small descriptive-statistics helpers used by the experiment drivers
    when aggregating per-candidate and per-application measurements
    (means, standard deviations, percentiles, geometric means). *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val mean_arr : float array -> float
(** Arithmetic mean of an array; 0 for the empty array. *)

val stdev : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than two
    samples. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 for the empty list.
    @raise Invalid_argument if any value is not positive. *)

val median : float list -> float
(** Median; 0 for the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank method.
    @raise Invalid_argument if [p] is out of range or [xs] is empty. *)

val minimum : float list -> float
(** Smallest element.  @raise Invalid_argument on empty list. *)

val maximum : float list -> float
(** Largest element.  @raise Invalid_argument on empty list. *)

val sum : float list -> float
(** Total of the list; 0 for the empty list. *)

val weighted_mean : (float * float) list -> float
(** [weighted_mean \[(w, x); ...\]] is [sum w*x / sum w]; 0 when the
    total weight is 0. *)

type summary = {
  n : int;
  mean : float;
  stdev : float;
  min : float;
  max : float;
  median : float;
}
(** One-shot description of a sample. *)

val summarize : float list -> summary
(** Computes all [summary] fields in one pass over a non-empty list;
    zeros with [n = 0] for the empty list. *)

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable rendering, e.g. ["n=12 mean=3.22 sd=0.10 ..."]. *)
