(** Simulated-time durations and the paper's time formats.

    All tool-flow runtimes in this reproduction are simulated seconds
    carried as [float].  The paper prints them in several fixed formats
    ([m:s] in Table II, [d:h:m:s] for break-even times, [h:m:s] in
    Table IV); this module renders and parses those formats so our table
    output is directly comparable with the published tables. *)

type t = float
(** A duration in (simulated) seconds.  Negative durations are invalid
    inputs for the formatters. *)

val seconds : float -> t
(** Identity, for readability at call sites. *)

val minutes : float -> t
(** [minutes m] is [m *. 60.]. *)

val hours : float -> t
(** [hours h] is [h *. 3600.]. *)

val days : float -> t
(** [days d] is [d *. 86400.]. *)

val to_ms_string : t -> string
(** Milliseconds with two decimals, e.g. ["1.44"] for 1.44 ms input
    given in seconds (0.00144). *)

val to_min_sec : t -> string
(** The paper's [m:s] format with zero-padded seconds, e.g. ["56:22"]
    for 56 min 22 s.  Minutes may exceed 59 (["1021:22"]).
    @raise Invalid_argument on negative input. *)

val to_hms : t -> string
(** [h:m:s] with zero padding, e.g. ["01:59:55"].
    @raise Invalid_argument on negative input. *)

val to_dhms : t -> string
(** [d:h:m:s], e.g. ["206:22:15:50"] meaning 206 days 22 h 15 m 50 s.
    @raise Invalid_argument on negative input. *)

val of_min_sec : string -> t
(** Parses the [m:s] format.  @raise Invalid_argument on malformed
    input. *)

val of_hms : string -> t
(** Parses [h:m:s].  @raise Invalid_argument on malformed input. *)

val of_dhms : string -> t
(** Parses [d:h:m:s].  @raise Invalid_argument on malformed input. *)
