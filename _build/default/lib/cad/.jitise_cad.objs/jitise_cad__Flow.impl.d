lib/cad/flow.ml: Bitstream Float Jitise_hwgen Jitise_ir Jitise_pivpav Jitise_util List
