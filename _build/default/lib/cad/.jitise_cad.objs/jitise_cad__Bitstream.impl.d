lib/cad/bitstream.ml: Format
