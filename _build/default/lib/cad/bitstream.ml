(** Partial-reconfiguration bitstreams.

    The terminal artifact of the CAD flow: an opaque configuration
    image, keyed by the candidate's structural signature so the
    bitstream cache of Section VI-A can reuse it across invocations and
    even across applications. *)

type t = {
  signature : string;   (** candidate structural signature (cache key) *)
  size_bytes : int;
  frames : int;         (** partial-reconfiguration frames covered *)
  luts : int;           (** area of the implemented data path *)
  generation_seconds : float;
      (** simulated CAD time that produced this bitstream (sum of all
          stages); what a cache hit saves *)
}

let pp ppf t =
  Format.fprintf ppf "%s: %d bytes, %d frames, %d LUTs (%.1f s to build)"
    t.signature t.size_bytes t.frames t.luts t.generation_seconds
