(** The ASIP Specialization Process (Figure 2 of the paper).

    Three phases, run concurrently with application execution in the
    real system:

    + {b Candidate Search} — prune the profiled bitcode with a
      [@{p}pS{k}L] filter, identify candidates with MAXMISO, estimate
      them against the PivPav database and select the profitable ones.
      Wall-clock measured (milliseconds — the paper's "real" column).
    + {b Netlist Generation} — data-path VHDL, netlist extraction
      through the PivPav cache, CAD project creation (simulated
      seconds, the "C2V" constant).
    + {b Instruction Implementation} — the CAD flow proper: syntax
      check, synthesis, translate, map, place-and-route, bitstream
      generation (simulated seconds, calibrated to Tables II/III).

    The report aggregates exactly the quantities Table II prints. *)

module Ir = Jitise_ir
module Vm = Jitise_vm
module Ise = Jitise_ise
module Pp = Jitise_pivpav
module Hw = Jitise_hwgen
module Cad = Jitise_cad

type candidate_result = {
  scored : Ise.Select.scored;
  vhdl_lines : int;
  c2v_seconds : float;
  run : Cad.Flow.run;
  cache_hit : bool;
      (** an identical data path was already built in this run (same
          structural signature), so its bitstream is reused and no CAD
          time is paid — the Section VI-A cache working within one
          application *)
  total_seconds : float;  (** c2v + all CAD stages; 0 on a cache hit *)
}

type report = {
  (* Candidate search *)
  search_wall_seconds : float;      (** measured, the "real" column *)
  search_wall_seconds_nopruning : float;
  pruning : Ise.Prune.selection;
  pruning_efficiency : float;       (** paper's "pruner effic" column *)
  searched_blocks : int;            (** blk column of Table II *)
  searched_instrs : int;            (** ins column of Table II *)
  (* Selection *)
  selection : Ise.Select.scored list;
  all_candidates : int;  (** identified before profitability filtering *)
  (* Hardware generation *)
  candidates : candidate_result list;
  const_seconds : float;   (** sum of constant-time stages (incl. C2V) *)
  map_seconds : float;
  par_seconds : float;
  sum_seconds : float;     (** total ASIP-SP overhead *)
  (* Speedups *)
  asip_ratio : Ise.Speedup.t;          (** with pruning + selection *)
  asip_ratio_max : Ise.Speedup.t;      (** all MAXMISOs, no pruning *)
}

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Identification + estimation + selection over a list of blocks. *)
let search_blocks (db : Pp.Database.t) (m : Ir.Irmod.t)
    (profile : Vm.Profile.t) ~select_config blocks =
  let candidates =
    List.concat_map
      (fun (fname, label) ->
        match Ir.Irmod.find_func m fname with
        | None -> []
        | Some f ->
            let dfg = Ir.Dfg.of_block f (Ir.Func.block f label) in
            Ise.Maxmiso.of_block dfg ~func:fname)
      blocks
  in
  let selection =
    Ise.Select.select ~config:select_config db m profile candidates
  in
  (candidates, selection)

(** Run the complete specialization process on a profiled module.

    @param prune the block filter (default the paper's [@50pS3L])
    @param select_config candidate-selection constraints
    @param cad_config CAD flow configuration (speedup, EAPR)
    @param total_cycles native cycles of the profiling run, for the
    application-level speedup accounting *)
let run ?(prune = Ise.Prune.at_50p_s3l)
    ?(select_config = Ise.Select.default_config)
    ?(cad_config = Cad.Flow.default_config) (db : Pp.Database.t)
    (m : Ir.Irmod.t) (profile : Vm.Profile.t) ~total_cycles : report =
  (* Phase 1a: reference search without pruning (for the efficiency
     metric and the ASIP-ratio upper bound of Table I). *)
  let all_blocks =
    List.concat_map
      (fun (f : Ir.Func.t) ->
        List.init (Ir.Func.num_blocks f) (fun l -> (f.Ir.Func.name, l)))
      m.Ir.Irmod.funcs
  in
  let (_, selection_nopruning), nopruning_wall =
    wall (fun () ->
        search_blocks db m profile ~select_config:Ise.Select.default_config
          all_blocks)
  in
  (* Phase 1b: the pruned search the JIT flow actually uses. *)
  let (pruning, all_candidates, selection), search_wall =
    wall (fun () ->
        let pruning = Ise.Prune.apply prune m profile in
        let candidates, selection =
          search_blocks db m profile ~select_config pruning.Ise.Prune.blocks
        in
        (pruning, candidates, selection))
  in
  let asip_ratio = Ise.Speedup.of_selection ~total_cycles selection in
  let asip_ratio_max =
    Ise.Speedup.of_selection ~total_cycles selection_nopruning
  in
  let pruning_efficiency =
    let safe x = Float.max x 1e-9 in
    asip_ratio.Ise.Speedup.ratio /. safe search_wall
    /. (asip_ratio_max.Ise.Speedup.ratio /. safe nopruning_wall)
  in
  (* Phases 2 and 3 for every selected candidate.  Bitstreams are keyed
     by structural signature, so a candidate whose data path was already
     built in this run is a cache hit and pays no CAD time. *)
  let built : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let candidates =
    List.map
      (fun (s : Ise.Select.scored) ->
        let c = s.Ise.Select.candidate in
        let f = Option.get (Ir.Irmod.find_func m c.Ise.Candidate.func) in
        let dfg = Ir.Dfg.of_block f (Ir.Func.block f c.Ise.Candidate.block) in
        let project = Hw.Project.create db dfg c in
        let c2v = Cad.Flow.c2v_seconds project in
        let run = Cad.Flow.implement ~config:cad_config db project in
        let scale = 1.0 -. cad_config.Cad.Flow.speedup_factor in
        let c2v = c2v *. scale in
        let cache_hit = Hashtbl.mem built c.Ise.Candidate.signature in
        Hashtbl.replace built c.Ise.Candidate.signature ();
        {
          scored = s;
          vhdl_lines = project.Hw.Project.vhdl.Hw.Vhdl.lines;
          c2v_seconds = (if cache_hit then 0.0 else c2v);
          run;
          cache_hit;
          total_seconds =
            (if cache_hit then 0.0 else c2v +. run.Cad.Flow.total_seconds);
        })
      selection
  in
  let sum get =
    List.fold_left
      (fun acc c -> if c.cache_hit then acc else acc +. get c)
      0.0 candidates
  in
  let const_seconds =
    sum (fun c -> c.c2v_seconds +. Cad.Flow.constant_seconds c.run)
  in
  let map_seconds = sum (fun c -> Cad.Flow.stage_seconds c.run Cad.Flow.Map) in
  let par_seconds =
    sum (fun c -> Cad.Flow.stage_seconds c.run Cad.Flow.Place_and_route)
  in
  {
    search_wall_seconds = search_wall;
    search_wall_seconds_nopruning = nopruning_wall;
    pruning;
    pruning_efficiency;
    searched_blocks = List.length pruning.Ise.Prune.blocks;
    searched_instrs = pruning.Ise.Prune.selected_instrs;
    selection;
    all_candidates = List.length all_candidates;
    candidates;
    const_seconds;
    map_seconds;
    par_seconds;
    sum_seconds = const_seconds +. map_seconds +. par_seconds;
    asip_ratio;
    asip_ratio_max;
  }

(** Per-candidate cache cost records for the Table IV extrapolation. *)
let candidate_costs (r : report) : Jitise_analysis.Cache_model.candidate_cost list =
  List.map
    (fun c ->
      {
        Jitise_analysis.Cache_model.signature =
          c.scored.Ise.Select.candidate.Ise.Candidate.signature;
        generation_seconds = c.total_seconds;
      })
    r.candidates
