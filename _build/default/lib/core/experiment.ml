(** Per-application experiment execution.

    One [app_result] bundles everything the four tables need for one
    benchmark: compilation statistics, the per-dataset VM outcomes
    (profiles + both clocks), the coverage classification, the kernel
    analysis, the full ASIP-SP report and the break-even result.  The
    table drivers share these records so each workload is compiled and
    executed once. *)

module Ir = Jitise_ir
module F = Jitise_frontend
module Vm = Jitise_vm
module W = Jitise_workloads
module Ise = Jitise_ise
module Pp = Jitise_pivpav
module An = Jitise_analysis

type app_result = {
  workload : W.Workload.t;
  compiled : F.Compiler.result;
  outcomes : (W.Workload.dataset * Vm.Machine.outcome) list;
      (** in dataset order; the first ("train") run feeds the ASIP-SP *)
  coverage : An.Coverage.t;
  kernel : An.Kernel.t;
  report : Asip_sp.report;
  split : An.Breakeven.split;
  break_even : An.Breakeven.result;
}

(** The train-dataset outcome (first dataset). *)
let train_outcome r = snd (List.hd r.outcomes)

(** Run the full experiment pipeline for one workload. *)
let run_app ?prune ?cad_config (db : Pp.Database.t) (w : W.Workload.t) :
    app_result =
  let compiled = W.Workload.compile w in
  let outcomes = W.Workload.run_all compiled w in
  let modul = compiled.F.Compiler.modul in
  let profiles = List.map (fun (_, o) -> o.Vm.Machine.profile) outcomes in
  let coverage = An.Coverage.classify modul profiles in
  let train = snd (List.hd outcomes) in
  let kernel = An.Kernel.compute modul train.Vm.Machine.profile in
  let report =
    Asip_sp.run ?prune ?cad_config db modul train.Vm.Machine.profile
      ~total_cycles:train.Vm.Machine.native_cycles
  in
  let split =
    An.Breakeven.split_costs modul train.Vm.Machine.profile coverage
      report.Asip_sp.selection
  in
  let break_even =
    An.Breakeven.of_split split ~overhead_seconds:report.Asip_sp.sum_seconds
  in
  { workload = w; compiled; outcomes; coverage; kernel; report; split; break_even }

(** Run every registered workload.  [verbose] logs progress to stderr
    (a full sweep interprets ~10^8 simulated instructions). *)
let run_all ?(verbose = false) ?prune ?cad_config (db : Pp.Database.t) :
    app_result list =
  List.map
    (fun w ->
      if verbose then
        Printf.eprintf "[experiment] %s...\n%!" w.W.Workload.name;
      run_app ?prune ?cad_config db w)
    W.Registry.all

let is_scientific r = r.workload.W.Workload.domain = W.Workload.Scientific
let is_embedded r = r.workload.W.Workload.domain = W.Workload.Embedded
