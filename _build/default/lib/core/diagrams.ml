(** ASCII renderings of the paper's two figures.

    Figures 1 and 2 are conceptual diagrams (tool-flow overview and the
    ASIP specialization phases); they carry no measured data, so their
    reproduction is the stage structure itself, rendered from the same
    stage lists the orchestration code executes. *)

(** The stages of the just-in-time flow (Figure 1, right-hand path). *)
let toolflow_stages =
  [
    ("source code", "application written in MiniC (stand-in for C)");
    ("bitcode (IR)", "llvm-gcc -O3 equivalent: Jitise_frontend.Compiler");
    ("virtual machine", "profiled interpretation + JIT: Jitise_vm.Machine");
    ("ASIP specialization", "Jitise_core.Asip_sp: candidate search -> hw");
    ("binary adaptation", "Jitise_core.Adapt: rewrite to Ci_call");
    ("Woolcano execution", "PowerPC 405 + custom instruction units");
  ]

(** The three phases of the ASIP specialization process (Figure 2). *)
let asip_sp_phases =
  [
    ( "Candidate Search",
      [
        "Pruner            (@50pS3L block filter)      Jitise_ise.Prune";
        "Identification    (MAXMISO ISE algorithm)     Jitise_ise.Maxmiso";
        "Estimation        (PivPav metrics database)   Jitise_pivpav.Estimator";
        "Selection         (profitable candidates)     Jitise_ise.Select";
      ] );
    ( "Netlist Generation",
      [
        "Generate VHDL     (data-path generator)       Jitise_hwgen.Vhdl";
        "Extract Netlists  (PivPav netlist cache)      Jitise_pivpav.Database";
        "Create Project    (FPGA CAD project)          Jitise_hwgen.Project";
      ] );
    ( "Instruction Implementation",
      [
        "Check Syntax      ( 4.22 s avg)               Jitise_cad.Flow";
        "Synthesis / XST   (10.60 s avg)               Jitise_cad.Flow";
        "Translate         ( 8.99 s avg)               Jitise_cad.Flow";
        "Map               (40-456 s, size-dependent)  Jitise_cad.Flow";
        "Place & Route     (56-728 s, size-dependent)  Jitise_cad.Flow";
        "Bitstream (EAPR)  (151 s avg, 85% of const)   Jitise_cad.Flow";
      ] );
  ]

let box width text =
  let pad = width - String.length text in
  let left = pad / 2 in
  "| " ^ String.make left ' ' ^ text ^ String.make (pad - left) ' ' ^ " |"

let figure1 () =
  let width =
    List.fold_left (fun acc (s, _) -> max acc (String.length s)) 0 toolflow_stages
  in
  let rule = "+" ^ String.make (width + 2) '-' ^ "+" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Figure 1: just-in-time ISE tool flow\n\n";
  List.iteri
    (fun i (stage, impl) ->
      if i > 0 then
        Buffer.add_string buf
          (String.make ((width + 4) / 2) ' ' ^ "|\n"
          ^ String.make ((width + 4) / 2) ' '
          ^ "v\n");
      Buffer.add_string buf (rule ^ "\n");
      Buffer.add_string buf (box width stage ^ "  <- " ^ impl ^ "\n");
      Buffer.add_string buf (rule ^ "\n"))
    toolflow_stages;
  Buffer.contents buf

let figure2 () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Figure 2: ASIP specialization process\n";
  List.iteri
    (fun i (phase, steps) ->
      Buffer.add_string buf (Printf.sprintf "\nPhase %d: %s\n" (i + 1) phase);
      List.iter
        (fun s -> Buffer.add_string buf ("  - " ^ s ^ "\n"))
        steps)
    asip_sp_phases;
  Buffer.contents buf
