lib/core/jit_manager.ml: Asip_sp Float Format Jitise_cad Jitise_ir Jitise_ise Jitise_pivpav Jitise_util Jitise_vm Jitise_woolcano List Printf
