lib/core/asip_sp.ml: Float Hashtbl Jitise_analysis Jitise_cad Jitise_hwgen Jitise_ir Jitise_ise Jitise_pivpav Jitise_vm List Option Unix
