lib/core/tables.ml: Asip_sp Experiment Float Jitise_analysis Jitise_cad Jitise_frontend Jitise_ir Jitise_ise Jitise_util Jitise_vm Jitise_workloads List Printf
