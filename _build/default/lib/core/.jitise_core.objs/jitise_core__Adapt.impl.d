lib/core/adapt.ml: Array Hashtbl Jitise_ir Jitise_ise Jitise_pivpav Jitise_vm List Option
