lib/core/diagrams.ml: Buffer List Printf String
