lib/core/experiment.ml: Asip_sp Jitise_analysis Jitise_frontend Jitise_ir Jitise_ise Jitise_pivpav Jitise_vm Jitise_workloads List Printf
