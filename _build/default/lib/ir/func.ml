(** Functions.

    A function owns an array of basic blocks; block 0 is the entry.
    Register ids are unique within the function: ids [0 .. nparams-1]
    name the parameters, instruction-defined ids follow. *)

type t = {
  name : string;
  params : (Instr.reg * Ty.t) list;
  ret_ty : Ty.t;
  mutable blocks : Block.t array;
  mutable next_reg : int;  (** first unused register id *)
}

let create ~name ~params ~ret_ty =
  {
    name;
    params;
    ret_ty;
    blocks = [||];
    next_reg = List.length params;
  }

let entry_label = 0

let block t label =
  if label < 0 || label >= Array.length t.blocks then
    invalid_arg (Printf.sprintf "Func.block: no block %d in %s" label t.name)
  else t.blocks.(label)

let num_blocks t = Array.length t.blocks

(** Total number of non-terminator instructions across all blocks. *)
let num_instrs t =
  Array.fold_left (fun acc b -> acc + Block.size b) 0 t.blocks

let iter_blocks f t = Array.iter f t.blocks

let fold_blocks f acc t = Array.fold_left f acc t.blocks

let iter_instrs f t =
  iter_blocks (fun b -> List.iter (fun i -> f b i) b.Block.instrs) t

(** Allocate a fresh register id. *)
let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

(** Fetch the type of a register: parameter or instruction result.
    @raise Not_found if the register is not defined in [t]. *)
let reg_ty t r =
  match List.assoc_opt r t.params with
  | Some ty -> ty
  | None ->
      let found = ref None in
      iter_instrs (fun _ (i : Instr.t) -> if i.id = r then found := Some i.ty) t;
      (match !found with Some ty -> ty | None -> raise Not_found)

(** Find the defining instruction of a register, if any (parameters have
    no defining instruction). *)
let def_of t r =
  let found = ref None in
  iter_instrs (fun b (i : Instr.t) -> if i.id = r then found := Some (b, i)) t;
  !found
