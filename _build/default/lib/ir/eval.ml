(** Operational semantics of scalar IR operations.

    One shared evaluator gives the constant folder and the virtual
    machine identical arithmetic: integers are carried sign-extended in
    [int64] and renormalized to their type width after every operation;
    [F32] results are rounded through 32-bit floats. *)

type value =
  | VInt of int64   (** any integer type, sign-extended to 64 bits *)
  | VFloat of float (** F32 or F64; F32 is kept rounded *)
  | VPtr of int     (** cell address in VM memory *)

exception Division_by_zero
exception Type_error of string

let type_error fmt = Printf.ksprintf (fun m -> raise (Type_error m)) fmt

(* Sign-extend [v] to 64 bits from the width of [ty].  [I1] is the
   exception: booleans are canonically 0 or 1, never -1. *)
let normalize (ty : Ty.t) v =
  let bits = Ty.bits ty in
  if ty = Ty.I1 then Int64.logand v 1L
  else if bits >= 64 then v
  else
    let shift = 64 - bits in
    Int64.shift_right (Int64.shift_left v shift) shift

(* Zero-extended (unsigned) view of [v] at the width of [ty]. *)
let umask (ty : Ty.t) v =
  let bits = Ty.bits ty in
  if bits >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L bits) 1L)

let round_float (ty : Ty.t) v =
  if ty = Ty.F32 then Int32.float_of_bits (Int32.bits_of_float v) else v

let of_const = function
  | Instr.Cint (v, ty) -> VInt (normalize ty v)
  | Instr.Cfloat (v, ty) -> VFloat (round_float ty v)

let as_int = function
  | VInt v -> v
  | VPtr p -> Int64.of_int p
  | VFloat _ -> type_error "expected an integer value"

let as_float = function
  | VFloat v -> v
  | VInt _ | VPtr _ -> type_error "expected a float value"

let as_ptr = function
  | VPtr p -> p
  | VInt v -> Int64.to_int v
  | VFloat _ -> type_error "expected an address"

let is_true = function
  | VInt v -> v <> 0L
  | VFloat v -> v <> 0.0
  | VPtr p -> p <> 0

(* Shift amounts follow hardware practice: masked by the operand
   width. *)
let shift_amount ty b =
  let w = Ty.bits ty in
  let w = if w <= 0 then 64 else w in
  Int64.to_int b land (if w >= 64 then 63 else w - 1)

let eval_binop (ty : Ty.t) (op : Instr.binop) (a : value) (b : value) : value =
  match op with
  | Instr.Fadd -> VFloat (round_float ty (as_float a +. as_float b))
  | Instr.Fsub -> VFloat (round_float ty (as_float a -. as_float b))
  | Instr.Fmul -> VFloat (round_float ty (as_float a *. as_float b))
  | Instr.Fdiv -> VFloat (round_float ty (as_float a /. as_float b))
  | _ ->
      let x = as_int a and y = as_int b in
      let n v = VInt (normalize ty v) in
      (match op with
      | Instr.Add -> n (Int64.add x y)
      | Instr.Sub -> n (Int64.sub x y)
      | Instr.Mul -> n (Int64.mul x y)
      | Instr.Sdiv ->
          if y = 0L then raise Division_by_zero else n (Int64.div x y)
      | Instr.Srem ->
          if y = 0L then raise Division_by_zero else n (Int64.rem x y)
      | Instr.Udiv ->
          let y' = umask ty y in
          if y' = 0L then raise Division_by_zero
          else n (Int64.unsigned_div (umask ty x) y')
      | Instr.Urem ->
          let y' = umask ty y in
          if y' = 0L then raise Division_by_zero
          else n (Int64.unsigned_rem (umask ty x) y')
      | Instr.And -> n (Int64.logand x y)
      | Instr.Or -> n (Int64.logor x y)
      | Instr.Xor -> n (Int64.logxor x y)
      | Instr.Shl -> n (Int64.shift_left x (shift_amount ty y))
      | Instr.Lshr ->
          n (Int64.shift_right_logical (umask ty x) (shift_amount ty y))
      | Instr.Ashr -> n (Int64.shift_right x (shift_amount ty y))
      | Instr.Fadd | Instr.Fsub | Instr.Fmul | Instr.Fdiv -> assert false)

let eval_icmp (p : Instr.icmp_pred) (a : value) (b : value) : value =
  let x = as_int a and y = as_int b in
  (* Unsigned predicates compare the raw two's-complement bits, which
     for sign-extended operands of equal original width is exactly
     [Int64.unsigned_compare]. *)
  let u = Int64.unsigned_compare x y in
  let s = Int64.compare x y in
  let r =
    match p with
    | Instr.Ieq -> s = 0
    | Instr.Ine -> s <> 0
    | Instr.Islt -> s < 0
    | Instr.Isle -> s <= 0
    | Instr.Isgt -> s > 0
    | Instr.Isge -> s >= 0
    | Instr.Iult -> u < 0
    | Instr.Iule -> u <= 0
    | Instr.Iugt -> u > 0
    | Instr.Iuge -> u >= 0
  in
  VInt (if r then 1L else 0L)

let eval_fcmp (p : Instr.fcmp_pred) (a : value) (b : value) : value =
  let x = as_float a and y = as_float b in
  let ordered = not (Float.is_nan x || Float.is_nan y) in
  let r =
    ordered
    &&
    match p with
    | Instr.Foeq -> x = y
    | Instr.Fone -> x <> y
    | Instr.Folt -> x < y
    | Instr.Fole -> x <= y
    | Instr.Fogt -> x > y
    | Instr.Foge -> x >= y
  in
  VInt (if r then 1L else 0L)

let eval_cast (c : Instr.cast) ~(from_ : Ty.t) ~(to_ : Ty.t) (a : value) : value
    =
  match c with
  | Instr.Trunc | Instr.Sext -> VInt (normalize to_ (as_int a))
  | Instr.Zext ->
      (* Recover the unsigned bits at the source width, then renormalize
         at the destination width. *)
      VInt (normalize to_ (umask from_ (as_int a)))
  | Instr.Fptosi ->
      let f = as_float a in
      if Float.is_nan f then VInt 0L else VInt (normalize to_ (Int64.of_float f))
  | Instr.Sitofp -> VFloat (round_float to_ (Int64.to_float (as_int a)))
  | Instr.Fpext -> VFloat (as_float a)
  | Instr.Fptrunc -> VFloat (round_float to_ (as_float a))
  | Instr.Bitcast -> (
      match (a, to_) with
      | VInt v, Ty.F32 -> VFloat (Int32.float_of_bits (Int64.to_int32 v))
      | VInt v, Ty.F64 -> VFloat (Int64.float_of_bits v)
      | VFloat f, Ty.F64 -> VFloat f
      | VFloat f, ty when Ty.is_int ty && Ty.bits ty = 32 ->
          VInt (normalize ty (Int64.of_int32 (Int32.bits_of_float f)))
      | VFloat f, ty when Ty.is_int ty -> VInt (normalize ty (Int64.bits_of_float f))
      | v, _ -> v)

let eval_select (c : value) (a : value) (b : value) = if is_true c then a else b

let pp_value ppf = function
  | VInt v -> Format.fprintf ppf "%Ld" v
  | VFloat v -> Format.fprintf ppf "%g" v
  | VPtr p -> Format.fprintf ppf "&%d" p

let equal_value a b =
  match (a, b) with
  | VInt x, VInt y -> Int64.equal x y
  | VFloat x, VFloat y -> x = y || (Float.is_nan x && Float.is_nan y)
  | VPtr x, VPtr y -> x = y
  | _ -> false
