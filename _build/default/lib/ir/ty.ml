(** Bitcode types.

    The IR is a compact LLVM-like typed SSA language.  Pointer types are
    untyped addresses into the VM's cell-addressed memory (one cell per
    scalar, see {!Jitise_vm.Memory}); this keeps address arithmetic
    simple without changing anything the ISE algorithms observe. *)

type t =
  | I1   (** booleans, produced by comparisons *)
  | I8
  | I16
  | I32
  | I64
  | F32
  | F64
  | Ptr  (** address of a memory cell *)
  | Void (** only valid as a function return type *)

let equal (a : t) (b : t) = a = b

(** Nominal width in bits; [Ptr] counts as the machine word (32, as on
    the PowerPC 405), [Void] as 0. *)
let bits = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 64
  | F32 -> 32
  | F64 -> 64
  | Ptr -> 32
  | Void -> 0

let is_int = function I1 | I8 | I16 | I32 | I64 -> true | _ -> false
let is_float = function F32 | F64 -> true | _ -> false
let is_scalar = function Void -> false | _ -> true

let to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"
  | Ptr -> "ptr"
  | Void -> "void"

let of_string = function
  | "i1" -> Some I1
  | "i8" -> Some I8
  | "i16" -> Some I16
  | "i32" -> Some I32
  | "i64" -> Some I64
  | "f32" -> Some F32
  | "f64" -> Some F64
  | "ptr" -> Some Ptr
  | "void" -> Some Void
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
