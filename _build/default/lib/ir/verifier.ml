(** IR well-formedness checks.

    The verifier enforces the structural invariants the rest of the
    system assumes: unique SSA definitions, no use of undefined
    registers, type agreement on operands, phi/predecessor consistency,
    and in-range branch targets.  It is run by tests after every
    frontend compilation and after every optimizer pass. *)

type error = { func : string; block : int option; message : string }

let pp_error ppf e =
  match e.block with
  | None -> Format.fprintf ppf "%s: %s" e.func e.message
  | Some b -> Format.fprintf ppf "%s/bb%d: %s" e.func b e.message

exception Invalid of error list

(* Collect the type environment: register -> type for params and all
   instruction results.  Duplicate definitions are reported. *)
let type_env (f : Func.t) errors =
  let env = Hashtbl.create 64 in
  List.iter (fun (r, ty) -> Hashtbl.replace env r ty) f.Func.params;
  Func.iter_instrs
    (fun b (i : Instr.t) ->
      if i.ty <> Ty.Void then begin
        if Hashtbl.mem env i.id then
          errors :=
            {
              func = f.Func.name;
              block = Some b.Block.label;
              message = Printf.sprintf "register %%%d defined twice" i.id;
            }
            :: !errors;
        Hashtbl.replace env i.id i.ty
      end)
    f;
  env

let operand_ty env = function
  | Instr.Const c -> Some (Instr.const_ty c)
  | Instr.Reg r -> Hashtbl.find_opt env r

let check_func (f : Func.t) =
  let errors = ref [] in
  let err block fmt =
    Printf.ksprintf
      (fun message ->
        errors := { func = f.Func.name; block; message } :: !errors)
      fmt
  in
  let nblocks = Func.num_blocks f in
  if nblocks = 0 then err None "function has no blocks";
  let env = type_env f errors in
  let check_label b l =
    if l < 0 || l >= nblocks then err (Some b) "branch to missing block bb%d" l
  in
  let cfg = if nblocks > 0 then Some (Cfg.of_func f) else None in
  Func.iter_blocks
    (fun blk ->
      let bl = Some blk.Block.label in
      let check_operand ctx op =
        match operand_ty env op with
        | Some _ -> ()
        | None -> (
            match op with
            | Instr.Reg r -> err bl "%s uses undefined register %%%d" ctx r
            | Instr.Const _ -> ())
      in
      let expect_ty ctx op ty =
        match operand_ty env op with
        | Some ty' when not (Ty.equal ty ty') ->
            err bl "%s: operand has type %s, expected %s" ctx
              (Ty.to_string ty') (Ty.to_string ty)
        | _ -> ()
      in
      (* Phis must be a prefix of the block. *)
      let seen_non_phi = ref false in
      List.iter
        (fun (i : Instr.t) ->
          let ctx = Instr.opcode_name i.kind in
          List.iter (check_operand ctx) (Instr.operands i.kind);
          (match i.kind with
          | Instr.Phi incoming ->
              if !seen_non_phi then err bl "phi %%%d after non-phi" i.id;
              (match cfg with
              | Some cfg ->
                  let preds =
                    List.sort_uniq compare (Cfg.preds cfg blk.Block.label)
                  in
                  let froms =
                    List.sort_uniq compare (List.map fst incoming)
                  in
                  if preds <> froms then
                    err bl "phi %%%d incoming labels do not match predecessors"
                      i.id
              | None -> ());
              List.iter (fun (_, op) -> expect_ty ctx op i.ty) incoming
          | Instr.Binop (op, a, b) ->
              seen_non_phi := true;
              let is_float_op =
                match op with
                | Instr.Fadd | Instr.Fsub | Instr.Fmul | Instr.Fdiv -> true
                | _ -> false
              in
              if is_float_op && not (Ty.is_float i.ty) then
                err bl "float binop %%%d has integer result type" i.id;
              if (not is_float_op) && not (Ty.is_int i.ty) then
                err bl "integer binop %%%d has non-integer result type" i.id;
              expect_ty ctx a i.ty;
              expect_ty ctx b i.ty
          | Instr.Icmp (_, a, b) | Instr.Fcmp (_, a, b) ->
              seen_non_phi := true;
              if i.ty <> Ty.I1 then err bl "comparison %%%d must produce i1" i.id;
              (match (operand_ty env a, operand_ty env b) with
              | Some ta, Some tb when not (Ty.equal ta tb) ->
                  err bl "%s: operand types %s vs %s differ" ctx
                    (Ty.to_string ta) (Ty.to_string tb)
              | _ -> ())
          | Instr.Select (c, a, b) ->
              seen_non_phi := true;
              expect_ty ctx c Ty.I1;
              expect_ty ctx a i.ty;
              expect_ty ctx b i.ty
          | Instr.Store (_, addr) | Instr.Load addr ->
              seen_non_phi := true;
              expect_ty ctx addr Ty.Ptr;
              if (match i.kind with Instr.Store _ -> false | _ -> true)
                 && i.ty = Ty.Void
              then err bl "load %%%d has void type" i.id
          | Instr.Gep (base, _) ->
              seen_non_phi := true;
              expect_ty ctx base Ty.Ptr;
              if i.ty <> Ty.Ptr then err bl "gep %%%d must produce ptr" i.id
          | Instr.Alloca (_, n) ->
              seen_non_phi := true;
              if n <= 0 then err bl "alloca %%%d with non-positive size" i.id;
              if i.ty <> Ty.Ptr then err bl "alloca %%%d must produce ptr" i.id
          | Instr.Gaddr _ ->
              seen_non_phi := true;
              if i.ty <> Ty.Ptr then err bl "gaddr %%%d must produce ptr" i.id
          | Instr.Cast (_, _) | Instr.Call (_, _) | Instr.Ci_call (_, _) ->
              seen_non_phi := true))
        blk.Block.instrs;
      (* Terminator *)
      (match blk.Block.term with
      | Instr.Ret None ->
          if f.Func.ret_ty <> Ty.Void then
            err bl "ret void in non-void function"
      | Instr.Ret (Some op) ->
          if f.Func.ret_ty = Ty.Void then err bl "ret value in void function"
          else expect_ty "ret" op f.Func.ret_ty
      | Instr.Br l -> check_label blk.Block.label l
      | Instr.Cond_br (c, a, b) ->
          expect_ty "condbr" c Ty.I1;
          check_label blk.Block.label a;
          check_label blk.Block.label b
      | Instr.Switch (s, d, cases) ->
          check_operand "switch" s;
          check_label blk.Block.label d;
          List.iter (fun (_, l) -> check_label blk.Block.label l) cases))
    f;
  List.rev !errors

let check_module (m : Irmod.t) =
  List.concat_map check_func m.Irmod.funcs

(** Raise {!Invalid} when the module has verification errors. *)
let check_module_exn m =
  match check_module m with [] -> () | errors -> raise (Invalid errors)

let errors_to_string errors =
  String.concat "\n" (List.map (Format.asprintf "%a" pp_error) errors)
