(** Bitcode instructions.

    Instructions are in SSA form: each instruction with a non-[Void]
    type defines exactly one virtual register, named by its [id].
    Operands are registers or immediate constants.  Control flow lives
    in block terminators, not in the instruction list. *)

type reg = int
(** SSA value id.  Function parameters and instructions share one id
    space per function. *)

type label = int
(** Basic-block index within its function. *)

(** Immediate constants.  Integer constants carry their type so width
    semantics (wrapping, comparisons) are unambiguous. *)
type const =
  | Cint of int64 * Ty.t
  | Cfloat of float * Ty.t

type operand =
  | Reg of reg
  | Const of const

(** Integer and floating binary operators. *)
type binop =
  | Add | Sub | Mul | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Fadd | Fsub | Fmul | Fdiv

(** Integer comparison predicates (signed and unsigned). *)
type icmp_pred = Ieq | Ine | Islt | Isle | Isgt | Isge | Iult | Iule | Iugt | Iuge

(** Ordered floating comparison predicates. *)
type fcmp_pred = Foeq | Fone | Folt | Fole | Fogt | Foge

(** Value conversions. *)
type cast =
  | Trunc   (** int -> narrower int *)
  | Zext    (** int -> wider int, zero-extended *)
  | Sext    (** int -> wider int, sign-extended *)
  | Fptosi  (** float -> signed int *)
  | Sitofp  (** signed int -> float *)
  | Fpext   (** f32 -> f64 *)
  | Fptrunc (** f64 -> f32 *)
  | Bitcast (** same-width reinterpretation *)

type kind =
  | Binop of binop * operand * operand
  | Icmp of icmp_pred * operand * operand
  | Fcmp of fcmp_pred * operand * operand
  | Cast of cast * operand
  | Select of operand * operand * operand
      (** [Select (cond, if_true, if_false)] *)
  | Alloca of Ty.t * int
      (** [Alloca (elem_ty, count)] reserves [count] cells in the frame
          and yields their base address. *)
  | Load of operand  (** [Load addr]; result type is the instr type *)
  | Store of operand * operand  (** [Store (value, addr)]; type [Void] *)
  | Gep of operand * operand
      (** [Gep (base, index)]: cell-addressed pointer arithmetic,
          [base + index]. *)
  | Gaddr of string
      (** Address of a module global; resolved by the VM loader. *)
  | Call of string * operand list
      (** Direct call by symbol name (IR function or VM intrinsic). *)
  | Phi of (label * operand) list
      (** SSA merge; one entry per predecessor block. *)
  | Ci_call of int * operand list
      (** Invocation of custom instruction [#id] after binary
          adaptation; the JIT rewriter introduces these, the frontend
          never emits them. *)

type t = {
  id : reg;       (** register defined by this instruction *)
  ty : Ty.t;      (** type of the defined value; [Void] for stores *)
  kind : kind;
}

type terminator =
  | Ret of operand option
  | Br of label
  | Cond_br of operand * label * label
      (** [Cond_br (cond, if_true, if_false)] *)
  | Switch of operand * label * (int64 * label) list
      (** [Switch (scrutinee, default, cases)] *)

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

(** [accesses_memory k] holds for loads, stores and allocas. *)
let accesses_memory = function
  | Load _ | Store _ | Alloca _ -> true
  | _ -> false

(** [has_side_effect k] holds for instructions that may not be removed
    even when their result is unused. *)
let has_side_effect = function
  | Store _ | Call _ | Ci_call _ | Alloca _ -> true
  | _ -> false

(** [hw_feasible k] decides whether an instruction may be absorbed into
    a hardware custom instruction.  Memory accesses, address
    arithmetic, calls and SSA merges are infeasible — the same
    restriction the paper identifies as the root cause of small
    candidates in imperative code. *)
let hw_feasible = function
  | Binop _ | Icmp _ | Fcmp _ | Cast _ | Select _ -> true
  | Alloca _ | Load _ | Store _ | Gep _ | Gaddr _ | Call _ | Phi _
  | Ci_call _ ->
      false

(** Operands read by an instruction, in syntactic order. *)
let operands = function
  | Binop (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b) | Gep (a, b) -> [ a; b ]
  | Cast (_, a) | Load a -> [ a ]
  | Select (c, a, b) -> [ c; a; b ]
  | Store (v, addr) -> [ v; addr ]
  | Alloca _ | Gaddr _ -> []
  | Call (_, args) | Ci_call (_, args) -> args
  | Phi incoming -> List.map snd incoming

(** Registers read by an instruction (constants filtered out). *)
let used_regs kind =
  List.filter_map (function Reg r -> Some r | Const _ -> None) (operands kind)

let terminator_operands = function
  | Ret (Some op) -> [ op ]
  | Ret None | Br _ -> []
  | Cond_br (c, _, _) -> [ c ]
  | Switch (s, _, _) -> [ s ]

let terminator_used_regs t =
  List.filter_map
    (function Reg r -> Some r | Const _ -> None)
    (terminator_operands t)

(** Successor labels of a terminator, in syntactic order, without
    duplicates removed. *)
let successors = function
  | Ret _ -> []
  | Br l -> [ l ]
  | Cond_br (_, a, b) -> [ a; b ]
  | Switch (_, d, cases) -> d :: List.map snd cases

(* ------------------------------------------------------------------ *)
(* Names (shared by the printer and parser)                            *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Udiv -> "udiv" | Srem -> "srem" | Urem -> "urem" | And -> "and"
  | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Lshr -> "lshr"
  | Ashr -> "ashr" | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let binop_of_name = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul
  | "sdiv" -> Some Sdiv | "udiv" -> Some Udiv | "srem" -> Some Srem
  | "urem" -> Some Urem | "and" -> Some And | "or" -> Some Or
  | "xor" -> Some Xor | "shl" -> Some Shl | "lshr" -> Some Lshr
  | "ashr" -> Some Ashr | "fadd" -> Some Fadd | "fsub" -> Some Fsub
  | "fmul" -> Some Fmul | "fdiv" -> Some Fdiv | _ -> None

let icmp_name = function
  | Ieq -> "eq" | Ine -> "ne" | Islt -> "slt" | Isle -> "sle"
  | Isgt -> "sgt" | Isge -> "sge" | Iult -> "ult" | Iule -> "ule"
  | Iugt -> "ugt" | Iuge -> "uge"

let icmp_of_name = function
  | "eq" -> Some Ieq | "ne" -> Some Ine | "slt" -> Some Islt
  | "sle" -> Some Isle | "sgt" -> Some Isgt | "sge" -> Some Isge
  | "ult" -> Some Iult | "ule" -> Some Iule | "ugt" -> Some Iugt
  | "uge" -> Some Iuge | _ -> None

let fcmp_name = function
  | Foeq -> "oeq" | Fone -> "one" | Folt -> "olt" | Fole -> "ole"
  | Fogt -> "ogt" | Foge -> "oge"

let fcmp_of_name = function
  | "oeq" -> Some Foeq | "one" -> Some Fone | "olt" -> Some Folt
  | "ole" -> Some Fole | "ogt" -> Some Fogt | "oge" -> Some Foge
  | _ -> None

let cast_name = function
  | Trunc -> "trunc" | Zext -> "zext" | Sext -> "sext"
  | Fptosi -> "fptosi" | Sitofp -> "sitofp" | Fpext -> "fpext"
  | Fptrunc -> "fptrunc" | Bitcast -> "bitcast"

let cast_of_name = function
  | "trunc" -> Some Trunc | "zext" -> Some Zext | "sext" -> Some Sext
  | "fptosi" -> Some Fptosi | "sitofp" -> Some Sitofp
  | "fpext" -> Some Fpext | "fptrunc" -> Some Fptrunc
  | "bitcast" -> Some Bitcast | _ -> None

(** Short mnemonic used in DFG dumps and PivPav component lookups. *)
let opcode_name = function
  | Binop (op, _, _) -> binop_name op
  | Icmp (p, _, _) -> "icmp." ^ icmp_name p
  | Fcmp (p, _, _) -> "fcmp." ^ fcmp_name p
  | Cast (c, _) -> cast_name c
  | Select _ -> "select"
  | Alloca _ -> "alloca"
  | Load _ -> "load"
  | Store _ -> "store"
  | Gep _ -> "gep"
  | Gaddr g -> "gaddr." ^ g
  | Call (f, _) -> "call." ^ f
  | Phi _ -> "phi"
  | Ci_call (i, _) -> Printf.sprintf "ci.%d" i

let const_ty = function Cint (_, ty) -> ty | Cfloat (_, ty) -> ty

let pp_const ppf = function
  | Cint (v, ty) -> Format.fprintf ppf "%Ld:%s" v (Ty.to_string ty)
  | Cfloat (v, ty) -> Format.fprintf ppf "%h:%s" v (Ty.to_string ty)

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "%%%d" r
  | Const c -> pp_const ppf c
