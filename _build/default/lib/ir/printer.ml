(** Textual rendering of IR modules, LLVM-flavoured.

    The format round-trips through {!Parser}; tests rely on
    [parse (print m)] being structurally equal to [m]. *)

open Format

let pp_operand = Instr.pp_operand

let pp_args ppf args =
  pp_print_list
    ~pp_sep:(fun ppf () -> fprintf ppf ", ")
    pp_operand ppf args

let pp_kind ppf (i : Instr.t) =
  match i.kind with
  | Instr.Binop (op, a, b) ->
      fprintf ppf "%s %a %a, %a" (Instr.binop_name op) Ty.pp i.ty pp_operand a
        pp_operand b
  | Instr.Icmp (p, a, b) ->
      fprintf ppf "icmp %s %a, %a" (Instr.icmp_name p) pp_operand a pp_operand b
  | Instr.Fcmp (p, a, b) ->
      fprintf ppf "fcmp %s %a, %a" (Instr.fcmp_name p) pp_operand a pp_operand b
  | Instr.Cast (c, a) ->
      fprintf ppf "%s %a to %a" (Instr.cast_name c) pp_operand a Ty.pp i.ty
  | Instr.Select (c, a, b) ->
      fprintf ppf "select %a %a, %a, %a" Ty.pp i.ty pp_operand c pp_operand a
        pp_operand b
  | Instr.Alloca (ty, n) -> fprintf ppf "alloca %a, %d" Ty.pp ty n
  | Instr.Load a -> fprintf ppf "load %a %a" Ty.pp i.ty pp_operand a
  | Instr.Store (v, a) -> fprintf ppf "store %a, %a" pp_operand v pp_operand a
  | Instr.Gep (b, idx) -> fprintf ppf "gep %a, %a" pp_operand b pp_operand idx
  | Instr.Gaddr g -> fprintf ppf "gaddr @%s" g
  | Instr.Call (f, args) ->
      fprintf ppf "call %a @%s(%a)" Ty.pp i.ty f pp_args args
  | Instr.Phi incoming ->
      fprintf ppf "phi %a %a" Ty.pp i.ty
        (pp_print_list
           ~pp_sep:(fun ppf () -> fprintf ppf ", ")
           (fun ppf (l, op) -> fprintf ppf "[bb%d: %a]" l pp_operand op))
        incoming
  | Instr.Ci_call (ci, args) -> fprintf ppf "ci %d (%a)" ci pp_args args

let pp_instr ppf (i : Instr.t) =
  if i.ty = Ty.Void then fprintf ppf "  %a" pp_kind i
  else fprintf ppf "  %%%d = %a" i.id pp_kind i

let pp_term ppf = function
  | Instr.Ret None -> fprintf ppf "  ret void"
  | Instr.Ret (Some op) -> fprintf ppf "  ret %a" pp_operand op
  | Instr.Br l -> fprintf ppf "  br bb%d" l
  | Instr.Cond_br (c, a, b) ->
      fprintf ppf "  condbr %a, bb%d, bb%d" pp_operand c a b
  | Instr.Switch (s, d, cases) ->
      fprintf ppf "  switch %a, bb%d [%a]" pp_operand s d
        (pp_print_list
           ~pp_sep:(fun ppf () -> fprintf ppf ", ")
           (fun ppf (v, l) -> fprintf ppf "%Ld: bb%d" v l))
        cases

let pp_block ppf (b : Block.t) =
  fprintf ppf "bb%d: ; %s@\n" b.Block.label b.Block.name;
  List.iter (fun i -> fprintf ppf "%a@\n" pp_instr i) b.Block.instrs;
  fprintf ppf "%a@\n" pp_term b.Block.term

let pp_func ppf (f : Func.t) =
  fprintf ppf "func %a @%s(%a) {@\n" Ty.pp f.Func.ret_ty f.Func.name
    (pp_print_list
       ~pp_sep:(fun ppf () -> fprintf ppf ", ")
       (fun ppf (r, ty) -> fprintf ppf "%%%d: %a" r Ty.pp ty))
    f.Func.params;
  Func.iter_blocks (fun b -> pp_block ppf b) f;
  fprintf ppf "}@\n"

let pp_global ppf (g : Irmod.global) =
  match g.Irmod.ginit with
  | Irmod.Zero ->
      fprintf ppf "global @%s : %a[%d] = zero@\n" g.Irmod.gname Ty.pp
        g.Irmod.gty g.Irmod.gsize
  | Irmod.Ints a ->
      fprintf ppf "global @%s : %a[%d] = ints {%a}@\n" g.Irmod.gname Ty.pp
        g.Irmod.gty g.Irmod.gsize
        (pp_print_list
           ~pp_sep:(fun ppf () -> fprintf ppf ", ")
           (fun ppf v -> fprintf ppf "%Ld" v))
        (Array.to_list a)
  | Irmod.Floats a ->
      fprintf ppf "global @%s : %a[%d] = floats {%a}@\n" g.Irmod.gname Ty.pp
        g.Irmod.gty g.Irmod.gsize
        (pp_print_list
           ~pp_sep:(fun ppf () -> fprintf ppf ", ")
           (fun ppf v -> fprintf ppf "%h" v))
        (Array.to_list a)

let pp_module ppf (m : Irmod.t) =
  fprintf ppf "module %s@\n" m.Irmod.mname;
  List.iter (pp_global ppf) m.Irmod.globals;
  List.iter (fun f -> fprintf ppf "@\n%a" pp_func f) m.Irmod.funcs

let module_to_string m = Format.asprintf "%a" pp_module m
let func_to_string f = Format.asprintf "%a" pp_func f
let instr_to_string i = Format.asprintf "%a" pp_instr i
