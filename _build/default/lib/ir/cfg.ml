(** Control-flow graph queries over a function's block array. *)

type t = {
  succs : Instr.label list array;
  preds : Instr.label list array;
}

(** Build successor and predecessor adjacency from block terminators.
    Duplicate edges (e.g. both switch cases to one target) are kept
    single; out-of-range targets are ignored (the verifier reports them
    separately). *)
let of_func (f : Func.t) =
  let n = Func.num_blocks f in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Func.iter_blocks
    (fun b ->
      let ss =
        List.sort_uniq compare (Instr.successors b.Block.term)
        |> List.filter (fun l -> l >= 0 && l < n)
      in
      succs.(b.Block.label) <- ss;
      List.iter (fun s -> preds.(s) <- b.Block.label :: preds.(s)) ss)
    f;
  Array.iteri (fun i ps -> preds.(i) <- List.rev ps) preds;
  { succs; preds }

let succs t l = t.succs.(l)
let preds t l = t.preds.(l)
let num_blocks t = Array.length t.succs

(** Blocks reachable from the entry, as a boolean mask. *)
let reachable t =
  let n = num_blocks t in
  let seen = Array.make n false in
  let rec go l =
    if not seen.(l) then begin
      seen.(l) <- true;
      List.iter go t.succs.(l)
    end
  in
  if n > 0 then go Func.entry_label;
  seen

(** Reverse postorder over reachable blocks, starting at the entry.
    This is the iteration order used by the dominator computation. *)
let reverse_postorder t =
  let n = num_blocks t in
  let seen = Array.make n false in
  let order = ref [] in
  let rec go l =
    if not seen.(l) then begin
      seen.(l) <- true;
      List.iter go t.succs.(l);
      order := l :: !order
    end
  in
  if n > 0 then go Func.entry_label;
  !order
