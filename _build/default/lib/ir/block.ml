(** Basic blocks.

    A block is a straight-line instruction sequence ended by exactly one
    terminator.  Blocks are identified within their function by their
    index ([Instr.label]); [name] is only for printing. *)

type t = {
  label : Instr.label;
  name : string;
  mutable instrs : Instr.t list;  (** in execution order *)
  mutable term : Instr.terminator;
}

let create ~label ~name ~term = { label; name; instrs = []; term }

(** Number of non-terminator instructions. *)
let size b = List.length b.instrs

(** Instructions satisfying {!Instr.hw_feasible}. *)
let feasible_instrs b =
  List.filter (fun (i : Instr.t) -> Instr.hw_feasible i.kind) b.instrs

(** Phi instructions (always a prefix of a well-formed block). *)
let phis b =
  List.filter
    (fun (i : Instr.t) -> match i.kind with Instr.Phi _ -> true | _ -> false)
    b.instrs

let iter f b = List.iter f b.instrs
let fold f acc b = List.fold_left f acc b.instrs

(** Replace the instruction list (used by optimizer passes). *)
let set_instrs b instrs = b.instrs <- instrs

let append b instr = b.instrs <- b.instrs @ [ instr ]
