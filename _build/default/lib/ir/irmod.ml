(** Modules: the unit of compilation and execution.

    A module bundles global arrays/scalars and functions.  Globals are
    cell-addressed: each global occupies [size] contiguous memory cells
    laid out by the VM loader in declaration order. *)

type initializer_ =
  | Zero
  | Ints of int64 array    (** cell-by-cell integer image *)
  | Floats of float array  (** cell-by-cell float image *)

type global = {
  gname : string;
  gty : Ty.t;        (** element type *)
  gsize : int;       (** number of cells; 1 for scalars *)
  ginit : initializer_;
}

type t = {
  mname : string;
  mutable globals : global list;  (** in declaration order *)
  mutable funcs : Func.t list;
}

let create ~name = { mname = name; globals = []; funcs = [] }

let add_global t g =
  if List.exists (fun g' -> g'.gname = g.gname) t.globals then
    invalid_arg (Printf.sprintf "Irmod.add_global: duplicate %s" g.gname);
  t.globals <- t.globals @ [ g ]

let add_func t f =
  if List.exists (fun (f' : Func.t) -> f'.Func.name = f.Func.name) t.funcs then
    invalid_arg (Printf.sprintf "Irmod.add_func: duplicate %s" f.Func.name);
  t.funcs <- t.funcs @ [ f ]

let find_func t name =
  List.find_opt (fun (f : Func.t) -> f.Func.name = name) t.funcs

let find_global t name = List.find_opt (fun g -> g.gname = name) t.globals

(** Total non-terminator instructions across all functions — the paper's
    "ins" column of Table I. *)
let num_instrs t =
  List.fold_left (fun acc f -> acc + Func.num_instrs f) 0 t.funcs

(** Total basic blocks across all functions — the paper's "blk" column. *)
let num_blocks t =
  List.fold_left (fun acc f -> acc + Func.num_blocks f) 0 t.funcs
