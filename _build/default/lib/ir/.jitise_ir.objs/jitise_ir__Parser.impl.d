lib/ir/parser.ml: Array Block Func Instr Int64 Irmod List Option Printf String Ty
