lib/ir/verifier.ml: Block Cfg Format Func Hashtbl Instr Irmod List Printf String Ty
