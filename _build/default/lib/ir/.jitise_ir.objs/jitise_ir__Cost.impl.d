lib/ir/cost.ml: Block Instr List
