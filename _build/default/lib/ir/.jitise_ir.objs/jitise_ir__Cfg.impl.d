lib/ir/cfg.ml: Array Block Func Instr List
