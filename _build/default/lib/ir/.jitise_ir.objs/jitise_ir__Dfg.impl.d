lib/ir/dfg.ml: Array Block Fun Func Hashtbl Instr List Ty
