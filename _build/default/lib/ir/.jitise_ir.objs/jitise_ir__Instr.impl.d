lib/ir/instr.ml: Format List Printf Ty
