lib/ir/builder.ml: Array Block Func Instr Int64 List Ty
