lib/ir/eval.ml: Float Format Instr Int32 Int64 Printf Ty
