lib/ir/block.ml: Instr List
