lib/ir/irmod.ml: Func List Printf Ty
