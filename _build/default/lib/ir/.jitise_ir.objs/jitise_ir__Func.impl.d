lib/ir/func.ml: Array Block Instr List Printf Ty
