lib/ir/printer.ml: Array Block Format Func Instr Irmod List Ty
