lib/ir/dom.ml: Array Cfg Func Instr List
