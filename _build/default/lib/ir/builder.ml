(** Imperative IR construction.

    The builder keeps a current function and insertion block and hands
    out fresh registers, in the style of LLVM's IRBuilder.  Used by the
    MiniC lowering pass and by tests that synthesize IR directly. *)

type t = {
  func : Func.t;
  mutable blocks : Block.t list;  (** reversed *)
  mutable cur : Block.t option;
  mutable nlabels : int;
}

let create func = { func; blocks = []; cur = None; nlabels = 0 }

(** Create (but do not select) a new block; terminator defaults to
    [Ret None] until [set_term] replaces it. *)
let new_block t ~name =
  let label = t.nlabels in
  t.nlabels <- label + 1;
  let b = Block.create ~label ~name ~term:(Instr.Ret None) in
  t.blocks <- b :: t.blocks;
  b

(** Select the insertion block. *)
let position_at t b = t.cur <- Some b

let current t =
  match t.cur with
  | Some b -> b
  | None -> invalid_arg "Builder: no insertion block selected"

(** Append a raw instruction with a fresh result register; returns the
    register. *)
let add t ty kind =
  let id = Func.fresh_reg t.func in
  Block.append (current t) { Instr.id; ty; kind };
  id

(** Append a void instruction (store). *)
let add_void t kind =
  let id = Func.fresh_reg t.func in
  Block.append (current t) { Instr.id; ty = Ty.Void; kind }

let set_term t term = (current t).Block.term <- term

(* Convenience wrappers ------------------------------------------------ *)

let binop t op ty a b = add t ty (Instr.Binop (op, a, b))
let icmp t p a b = add t Ty.I1 (Instr.Icmp (p, a, b))
let fcmp t p a b = add t Ty.I1 (Instr.Fcmp (p, a, b))
let cast t c ty a = add t ty (Instr.Cast (c, a))
let select t ty c a b = add t ty (Instr.Select (c, a, b))
let alloca t ty n = add t Ty.Ptr (Instr.Alloca (ty, n))
let load t ty addr = add t ty (Instr.Load addr)
let store t v addr = add_void t (Instr.Store (v, addr))
let gep t base index = add t Ty.Ptr (Instr.Gep (base, index))
let call t ty name args = add t ty (Instr.Call (name, args))
let phi t ty incoming = add t ty (Instr.Phi incoming)

let ret t op = set_term t (Instr.Ret op)
let br t l = set_term t (Instr.Br l)
let cond_br t c l1 l2 = set_term t (Instr.Cond_br (c, l1, l2))

(** Finalize: install the accumulated blocks into the function in
    creation order and return it.  @raise Invalid_argument if no block
    was created. *)
let finish t =
  if t.nlabels = 0 then invalid_arg "Builder.finish: function has no blocks";
  t.func.Func.blocks <- Array.of_list (List.rev t.blocks);
  t.func

(* Constant helpers ----------------------------------------------------- *)

let ci32 v = Instr.Const (Instr.Cint (Int64.of_int v, Ty.I32))
let ci64 v = Instr.Const (Instr.Cint (v, Ty.I64))
let cf64 v = Instr.Const (Instr.Cfloat (v, Ty.F64))
let cf32 v = Instr.Const (Instr.Cfloat (v, Ty.F32))
let cbool b = Instr.Const (Instr.Cint ((if b then 1L else 0L), Ty.I1))
let reg r = Instr.Reg r
