(** Dominator tree and dominance frontiers.

    Implements the Cooper-Harvey-Kennedy iterative algorithm.  Used by
    the mem2reg pass in the frontend optimizer to place phi nodes, which
    is what puts arithmetic chains into registers and thereby exposes
    them to the ISE algorithms. *)

type t = {
  idom : int array;
      (** immediate dominator per block; [idom.(entry) = entry];
          [-1] for unreachable blocks *)
  rpo_index : int array;  (** position of each block in reverse postorder *)
  order : Instr.label list;  (** reverse postorder of reachable blocks *)
}

let compute (cfg : Cfg.t) =
  let n = Cfg.num_blocks cfg in
  let order = Cfg.reverse_postorder cfg in
  let rpo_index = Array.make n max_int in
  List.iteri (fun i l -> rpo_index.(l) <- i) order;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(Func.entry_label) <- Func.entry_label;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_index.(!f1) > rpo_index.(!f2) do
        f1 := idom.(!f1)
      done;
      while rpo_index.(!f2) > rpo_index.(!f1) do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> Func.entry_label then begin
          let processed_preds =
            List.filter (fun p -> idom.(p) <> -1) (Cfg.preds cfg b)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      order
  done;
  { idom; rpo_index; order }

(** [dominates t a b]: does block [a] dominate block [b]?  Every block
    dominates itself.  Unreachable blocks dominate nothing and are
    dominated by nothing. *)
let dominates t a b =
  if t.idom.(b) = -1 || t.idom.(a) = -1 then false
  else
    let rec climb x = if x = a then true else if x = t.idom.(x) then false else climb t.idom.(x) in
    climb b

(** Dominance frontier of every block (Cytron et al. via the CHK
    formulation): [frontier.(b)] lists the blocks where [b]'s dominance
    ends. *)
let frontiers t (cfg : Cfg.t) =
  let n = Cfg.num_blocks cfg in
  let frontier = Array.make n [] in
  for b = 0 to n - 1 do
    let preds = Cfg.preds cfg b in
    if List.length preds >= 2 && t.idom.(b) <> -1 then
      List.iter
        (fun p ->
          if t.idom.(p) <> -1 then begin
            let runner = ref p in
            while !runner <> t.idom.(b) do
              if not (List.mem b frontier.(!runner)) then
                frontier.(!runner) <- b :: frontier.(!runner);
              runner := t.idom.(!runner)
            done
          end)
        preds
  done;
  frontier
