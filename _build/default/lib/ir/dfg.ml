(** Per-block data-flow graphs.

    The ISE algorithms operate on the DFG of a single basic block: nodes
    are the block's instructions, and there is an edge from the producer
    of a value to each consumer inside the same block.  Values defined
    outside the block (parameters, other blocks, constants) are the
    graph's {e inputs}; values consumed outside the block (or by the
    terminator) make their producer an {e output} node. *)

type node = {
  index : int;            (** position within the block, 0-based *)
  instr : Instr.t;
  mutable preds : int list;  (** in-block producers this node reads *)
  mutable succs : int list;  (** in-block consumers of this node *)
  mutable external_uses : bool;
      (** value escapes the block (used by another block, the
          terminator, or a phi elsewhere) *)
}

type t = {
  block : Block.t;
  nodes : node array;
  by_reg : (Instr.reg, int) Hashtbl.t;  (** defining node of a register *)
}

let node_count t = Array.length t.nodes

(** Does this node's instruction qualify for inclusion in a hardware
    custom instruction? *)
let feasible (n : node) = Instr.hw_feasible n.instr.Instr.kind

(** Build the DFG of [block] within [func].  [external_uses] is computed
    by scanning every other block of the function. *)
let of_block (func : Func.t) (block : Block.t) =
  let instrs = Array.of_list block.Block.instrs in
  let by_reg = Hashtbl.create 64 in
  Array.iteri
    (fun idx (i : Instr.t) ->
      if i.ty <> Ty.Void then Hashtbl.replace by_reg i.Instr.id idx)
    instrs;
  let nodes =
    Array.mapi
      (fun index instr ->
        { index; instr; preds = []; succs = []; external_uses = false })
      instrs
  in
  (* In-block edges. *)
  Array.iter
    (fun n ->
      let producers =
        List.filter_map
          (fun r -> Hashtbl.find_opt by_reg r)
          (Instr.used_regs n.instr.Instr.kind)
      in
      let producers = List.sort_uniq compare producers in
      n.preds <- producers;
      List.iter
        (fun p -> nodes.(p).succs <- n.index :: nodes.(p).succs)
        producers)
    nodes;
  Array.iter (fun n -> n.succs <- List.sort_uniq compare n.succs) nodes;
  (* External uses: any use of a register outside this block, or by this
     block's own terminator. *)
  let mark_reg r =
    match Hashtbl.find_opt by_reg r with
    | Some idx -> nodes.(idx).external_uses <- true
    | None -> ()
  in
  List.iter mark_reg (Instr.terminator_used_regs block.Block.term);
  Func.iter_blocks
    (fun other ->
      if other.Block.label <> block.Block.label then begin
        List.iter
          (fun (i : Instr.t) ->
            List.iter mark_reg (Instr.used_regs i.Instr.kind))
          other.Block.instrs;
        List.iter mark_reg (Instr.terminator_used_regs other.Block.term)
      end)
    func;
  { block; nodes; by_reg }

(** Inputs of a node: operands produced outside the block or constant.
    Returned as the raw operands. *)
let external_inputs t n =
  List.filter
    (fun op ->
      match op with
      | Instr.Const _ -> false (* constants are free inputs, not counted *)
      | Instr.Reg r -> not (Hashtbl.mem t.by_reg r))
    (Instr.operands t.nodes.(n).instr.Instr.kind)

(** Is node [n] an output of the block (its value is observable outside
    the node set of the whole block)? *)
let is_block_output t n =
  let node = t.nodes.(n) in
  node.external_uses

(** Topological order of node indices (instruction order is already
    topological for SSA within a block, so this is just 0..n-1; exposed
    for documentation value and future reordering passes). *)
let topological_order t = List.init (node_count t) Fun.id
