(** Execution profiles.

    The VM records how often every basic block executes.  Profiles
    drive everything downstream: the pruning filter ranks blocks by
    dynamic cost, the coverage analysis classifies code as
    live/dead/constant across datasets, and the break-even model weighs
    candidate savings by block frequency. *)

module Ir = Jitise_ir

type key = string * Ir.Instr.label  (** function name, block label *)

type t = {
  counts : (key, int64) Hashtbl.t;
  mutable executed_instrs : int64;  (** dynamic IR instruction count *)
}

let create () = { counts = Hashtbl.create 256; executed_instrs = 0L }

let bump t ~func ~label ~instrs =
  let key = (func, label) in
  let prev = Option.value ~default:0L (Hashtbl.find_opt t.counts key) in
  Hashtbl.replace t.counts key (Int64.add prev 1L);
  t.executed_instrs <- Int64.add t.executed_instrs (Int64.of_int instrs)

(** Add [count] executions of a block at once (bulk import from the
    VM's run-local counters). *)
let record t ~func ~label ~count ~instrs =
  let key = (func, label) in
  let prev = Option.value ~default:0L (Hashtbl.find_opt t.counts key) in
  Hashtbl.replace t.counts key (Int64.add prev count);
  t.executed_instrs <-
    Int64.add t.executed_instrs (Int64.mul count (Int64.of_int instrs))

let count t ~func ~label =
  Option.value ~default:0L (Hashtbl.find_opt t.counts (func, label))

let iter f t = Hashtbl.iter (fun (fn, l) c -> f ~func:fn ~label:l ~count:c) t.counts

(** All profiled (function, label, count) triples, sorted for
    determinism. *)
let to_list t =
  Hashtbl.fold (fun (fn, l) c acc -> (fn, l, c) :: acc) t.counts []
  |> List.sort compare

(** Merge [src] into [dst] (summing counts). *)
let merge ~into:dst src =
  Hashtbl.iter
    (fun key c ->
      let prev = Option.value ~default:0L (Hashtbl.find_opt dst.counts key) in
      Hashtbl.replace dst.counts key (Int64.add prev c))
    src.counts;
  dst.executed_instrs <- Int64.add dst.executed_instrs src.executed_instrs

(** Total software cycles attributed to each block of [m] under this
    profile: [freq * block_cycles].  Returns a sorted association list
    from (func, label) to cycles, heaviest first. *)
let block_costs t (m : Ir.Irmod.t) =
  let costs = ref [] in
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_blocks
        (fun b ->
          let freq = count t ~func:f.Ir.Func.name ~label:b.Ir.Block.label in
          if freq > 0L then
            let cycles =
              Int64.mul freq (Int64.of_int (Ir.Cost.block_cycles b))
            in
            costs := ((f.Ir.Func.name, b.Ir.Block.label), cycles) :: !costs)
        f)
    m.Ir.Irmod.funcs;
  List.sort (fun (_, a) (_, b) -> Int64.compare b a) !costs
