lib/vm/profile.ml: Hashtbl Int64 Jitise_ir List Option
