lib/vm/machine.ml: Array Float Hashtbl Int64 Jit_model Jitise_ir List Memory Option Printf Profile
