lib/vm/jit_model.ml: Jitise_ir
