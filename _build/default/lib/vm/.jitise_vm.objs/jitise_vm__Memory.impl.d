lib/vm/memory.ml: Array Hashtbl Int64 Jitise_ir List Printf
