(** The Woolcano reconfigurable ASIP architecture.

    Woolcano [Grad & Plessl, ERSA'09] couples the PowerPC 405 hard core
    of a Xilinx Virtex-4 FX with user-defined instruction (UDI) slots
    implemented in the FPGA fabric and connected through the Auxiliary
    Processor Unit (APU).  Slots are runtime-replaceable via partial
    reconfiguration over the ICAP port.  This module captures the
    architectural constants the simulation depends on. *)

type t = {
  core_clock_hz : float;        (** PowerPC 405 clock *)
  udi_slots : int;              (** concurrently loadable instructions *)
  max_ci_inputs : int;          (** register operands per UDI (via multi-word APU transfer) *)
  slot_lut_capacity : int;      (** area ceiling of one slot *)
  icap_bytes_per_second : float; (** partial-reconfiguration bandwidth *)
  reconfig_setup_seconds : float; (** driver + ICAP setup per load *)
}

(** The platform evaluated in the paper: Virtex-4 FX100, 300 MHz 405
    core, APU-attached UDIs. *)
let default =
  {
    core_clock_hz = Jitise_ir.Cost.clock_hz;
    udi_slots = 8;
    max_ci_inputs = 16;
    slot_lut_capacity = 8_192;
    icap_bytes_per_second = 66.0e6;  (* ICAP at 66 MHz, 8-bit on V4 *)
    reconfig_setup_seconds = 0.002;
  }

(** Seconds to load one partial bitstream into a slot. *)
let reconfiguration_seconds t (b : Jitise_cad.Bitstream.t) =
  t.reconfig_setup_seconds
  +. (float_of_int b.Jitise_cad.Bitstream.size_bytes /. t.icap_bytes_per_second)
