lib/woolcano/asip.ml: Arch Array Jitise_cad Jitise_ise List Option Printf
