lib/woolcano/arch.ml: Jitise_cad Jitise_ir
