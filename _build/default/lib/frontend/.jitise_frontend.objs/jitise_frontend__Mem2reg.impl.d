lib/frontend/mem2reg.ml: Array Hashtbl Int Jitise_ir List Map Option Queue
