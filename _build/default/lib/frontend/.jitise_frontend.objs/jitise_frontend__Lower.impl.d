lib/frontend/lower.ml: Array Ast Hashtbl Int64 Jitise_ir List Printf Typecheck
