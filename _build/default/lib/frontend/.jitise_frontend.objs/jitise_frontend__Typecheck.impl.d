lib/frontend/typecheck.ml: Ast Hashtbl List Printf
