lib/frontend/ast.ml: Jitise_ir
