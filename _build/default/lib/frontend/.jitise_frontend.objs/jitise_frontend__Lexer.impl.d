lib/frontend/lexer.ml: Buffer Int64 List Printf String Token
