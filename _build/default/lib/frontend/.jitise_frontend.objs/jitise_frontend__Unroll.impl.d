lib/frontend/unroll.ml: Ast Int64 List Option
