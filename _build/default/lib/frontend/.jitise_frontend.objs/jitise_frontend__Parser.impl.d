lib/frontend/parser.ml: Array Ast Int64 Lexer List Option Printf Token
