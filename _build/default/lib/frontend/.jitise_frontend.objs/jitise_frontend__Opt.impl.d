lib/frontend/opt.ml: Array Hashtbl Int64 Jitise_ir List Mem2reg Option
