lib/frontend/compiler.ml: Jitise_ir Lexer List Lower Mem2reg Opt Parser Printf Typecheck Unix Unroll
