(** Type checking and inference for MiniC.

    The checker validates a parsed program and exposes the inference
    functions the lowering pass reuses, so both stages agree on operand
    promotion ([int < long < float < double], as in C). *)

exception Error of { line : int; message : string }

let error line fmt =
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

type array_info = { elem : Ast.base_ty; adims : int list }

type func_sig = { ret : Ast.base_ty option; params : Ast.base_ty list }

type env = {
  globals : (string, Ast.base_ty) Hashtbl.t;  (** scalars *)
  arrays : (string, array_info) Hashtbl.t;
  funcs : (string, func_sig) Hashtbl.t;
  mutable locals : (string * Ast.base_ty) list;  (** innermost first *)
}

(** Built-in math intrinsics available to MiniC programs; the VM
    implements them and the cost model prices them as software libm
    calls. *)
let intrinsics : (string * func_sig) list =
  let d = Ast.Tdouble and i = Ast.Tint in
  [
    ("sqrt", { ret = Some d; params = [ d ] });
    ("sin", { ret = Some d; params = [ d ] });
    ("cos", { ret = Some d; params = [ d ] });
    ("atan", { ret = Some d; params = [ d ] });
    ("exp", { ret = Some d; params = [ d ] });
    ("log", { ret = Some d; params = [ d ] });
    ("fabs", { ret = Some d; params = [ d ] });
    ("floor", { ret = Some d; params = [ d ] });
    ("pow", { ret = Some d; params = [ d; d ] });
    ("abs", { ret = Some i; params = [ i ] });
    ("min", { ret = Some i; params = [ i; i ] });
    ("max", { ret = Some i; params = [ i; i ] });
  ]

let is_intrinsic name = List.mem_assoc name intrinsics

let rank = function
  | Ast.Tint -> 0
  | Ast.Tlong -> 1
  | Ast.Tfloat -> 2
  | Ast.Tdouble -> 3

(** C-style usual arithmetic conversion: the common type of two
    operands. *)
let promote a b = if rank a >= rank b then a else b

let is_integer = function Ast.Tint | Ast.Tlong -> true | _ -> false

let lookup_var env line name =
  match List.assoc_opt name env.locals with
  | Some ty -> ty
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some ty -> ty
      | None -> error line "unknown variable %s" name)

let lookup_array env line name =
  match Hashtbl.find_opt env.arrays name with
  | Some info -> info
  | None -> error line "unknown array %s" name

let lookup_func env line name =
  match List.assoc_opt name intrinsics with
  | Some s -> s
  | None -> (
      match Hashtbl.find_opt env.funcs name with
      | Some s -> s
      | None -> error line "unknown function %s" name)

(** Does an integer literal fit in a 32-bit [int], or must it be
    [long]? *)
let int_lit_ty v =
  if v >= -2147483648L && v <= 2147483647L then Ast.Tint else Ast.Tlong

(* Infer the type of an expression; checks subexpressions on the way. *)
let rec infer env (e : Ast.expr) : Ast.base_ty =
  match e.Ast.desc with
  | Ast.Int_lit v -> int_lit_ty v
  | Ast.Float_lit _ -> Ast.Tdouble
  | Ast.Var name -> lookup_var env e.Ast.line name
  | Ast.Index (name, idxs) ->
      let info = lookup_array env e.Ast.line name in
      if List.length idxs <> List.length info.adims then
        error e.Ast.line "array %s expects %d indices, got %d" name
          (List.length info.adims) (List.length idxs);
      List.iter
        (fun idx ->
          if not (is_integer (infer env idx)) then
            error idx.Ast.line "array index must be an integer")
        idxs;
      info.elem
  | Ast.Unop (op, a) -> (
      let ta = infer env a in
      match op with
      | Ast.Neg -> ta
      | Ast.Not -> Ast.Tint
      | Ast.Bnot ->
          if is_integer ta then ta
          else error e.Ast.line "operator ~ requires an integer operand")
  | Ast.Binop (op, a, b) -> (
      let ta = infer env a and tb = infer env b in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> promote ta tb
      | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr ->
          if is_integer ta && is_integer tb then promote ta tb
          else error e.Ast.line "bitwise/modulo operators require integers"
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> Ast.Tint
      | Ast.Land | Ast.Lor -> Ast.Tint)
  | Ast.Call (name, args) ->
      let s = lookup_func env e.Ast.line name in
      if List.length args <> List.length s.params then
        error e.Ast.line "function %s expects %d arguments, got %d" name
          (List.length s.params) (List.length args);
      List.iter (fun a -> ignore (infer env a)) args;
      (match s.ret with
      | Some ty -> ty
      | None -> error e.Ast.line "void function %s used as a value" name)

let rec check_stmt env ~in_loop ~ret (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Decl (ty, name, init) ->
      (match init with Some e -> ignore (infer env e) | None -> ());
      env.locals <- (name, ty) :: env.locals
  | Ast.Assign (lv, e) ->
      ignore (infer env e);
      (match lv with
      | Ast.Lvar name -> ignore (lookup_var env s.Ast.sline name)
      | Ast.Lindex (name, idxs) ->
          ignore
            (infer env { Ast.desc = Ast.Index (name, idxs); line = s.Ast.sline }))
  | Ast.Expr e -> (
      (* allow void calls as statements *)
      match e.Ast.desc with
      | Ast.Call (name, args) ->
          let si = lookup_func env e.Ast.line name in
          if List.length args <> List.length si.params then
            error e.Ast.line "function %s expects %d arguments" name
              (List.length si.params);
          List.iter (fun a -> ignore (infer env a)) args
      | _ -> ignore (infer env e))
  | Ast.If (c, t, f) ->
      ignore (infer env c);
      check_block env ~in_loop ~ret t;
      check_block env ~in_loop ~ret f
  | Ast.While (c, body) ->
      ignore (infer env c);
      check_block env ~in_loop:true ~ret body
  | Ast.For (init, cond, step, body) ->
      let saved = env.locals in
      (match init with Some s -> check_stmt env ~in_loop ~ret s | None -> ());
      (match cond with Some c -> ignore (infer env c) | None -> ());
      (match step with Some s -> check_stmt env ~in_loop:true ~ret s | None -> ());
      check_block env ~in_loop:true ~ret body;
      env.locals <- saved
  | Ast.Return e -> (
      match (e, ret) with
      | None, None -> ()
      | Some e, Some _ -> ignore (infer env e)
      | Some _, None -> error s.Ast.sline "returning a value from a void function"
      | None, Some _ -> error s.Ast.sline "missing return value")
  | Ast.Break | Ast.Continue ->
      if not in_loop then error s.Ast.sline "break/continue outside a loop"

and check_block env ~in_loop ~ret stmts =
  let saved = env.locals in
  List.iter (check_stmt env ~in_loop ~ret) stmts;
  env.locals <- saved

let build_env (prog : Ast.program) =
  let env =
    {
      globals = Hashtbl.create 16;
      arrays = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      locals = [];
    }
  in
  List.iter
    (function
      | Ast.Dglobal g ->
          if
            Hashtbl.mem env.globals g.Ast.gname
            || Hashtbl.mem env.arrays g.Ast.gname
          then error g.Ast.gline "duplicate global %s" g.Ast.gname;
          if g.Ast.dims = [] then
            Hashtbl.replace env.globals g.Ast.gname g.Ast.gty
          else
            Hashtbl.replace env.arrays g.Ast.gname
              { elem = g.Ast.gty; adims = g.Ast.dims }
      | Ast.Dfunc f ->
          if Hashtbl.mem env.funcs f.Ast.fname || is_intrinsic f.Ast.fname then
            error f.Ast.fline "duplicate function %s" f.Ast.fname;
          Hashtbl.replace env.funcs f.Ast.fname
            {
              ret = f.Ast.fret;
              params = List.map (fun p -> p.Ast.pty) f.Ast.fparams;
            })
    prog;
  env

(** Check a whole program and return its environment for the lowering
    pass.  @raise Error on ill-typed programs. *)
let check_program (prog : Ast.program) =
  let env = build_env prog in
  List.iter
    (function
      | Ast.Dglobal g -> (
          match g.Ast.ginit with
          | None -> ()
          | Some (Ast.Scalar_init e) ->
              if g.Ast.dims <> [] then
                error g.Ast.gline "array %s needs a braced initializer"
                  g.Ast.gname;
              ignore (infer env e)
          | Some (Ast.Array_init es) ->
              if g.Ast.dims = [] then
                error g.Ast.gline "scalar %s cannot take a braced initializer"
                  g.Ast.gname;
              let size = List.fold_left ( * ) 1 g.Ast.dims in
              if List.length es > size then
                error g.Ast.gline "too many initializers for %s" g.Ast.gname;
              List.iter (fun e -> ignore (infer env e)) es)
      | Ast.Dfunc f ->
          env.locals <- List.map (fun p -> (p.Ast.pname, p.Ast.pty)) f.Ast.fparams;
          check_block env ~in_loop:false ~ret:f.Ast.fret f.Ast.fbody;
          env.locals <- [])
    prog;
  env
