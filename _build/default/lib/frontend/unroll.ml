(** Source-level unrolling of innermost counted loops.

    Part of the -O3 pipeline.  This pass is what gives the bitcode the
    large basic blocks the paper observes after llvm-gcc -O3 — the
    pruned blocks it passes to identification average hundreds of
    instructions — and it directly scales how many MAXMISO candidates a
    hot block yields.

    A loop is unrolled by [factor] when it has the shape

    {v  for (init; i < bound; i = i + c) body  v}

    with a literal positive step [c], a loop variable [i] that the body
    never reassigns, a [bound] expression the body does not modify, and
    a body that is straight-line-safe to replicate (no [break],
    [continue], [return], or nested loop — only innermost loops are
    unrolled).  The transformed code is the standard main-loop plus
    epilogue:

    {v
      for (init; i + (factor-1)*c < bound; i = i + factor*c) {
        body[i := i]      body[i := i+c]   ...   body[i := i+(f-1)c]
      }
      for (; i < bound; i = i + c) body
    v} *)

let default_factor = 4

(* Substitute [Var name] by [Var name + delta] in an expression. *)
let rec shift_expr name delta (e : Ast.expr) : Ast.expr =
  if delta = 0 then e
  else
    let desc =
      match e.Ast.desc with
      | Ast.Var v when v = name ->
          Ast.Binop
            ( Ast.Add,
              { e with Ast.desc = Ast.Var v },
              { e with Ast.desc = Ast.Int_lit (Int64.of_int delta) } )
      | (Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _) as d -> d
      | Ast.Index (a, idxs) -> Ast.Index (a, List.map (shift_expr name delta) idxs)
      | Ast.Unop (op, x) -> Ast.Unop (op, shift_expr name delta x)
      | Ast.Binop (op, x, y) ->
          Ast.Binop (op, shift_expr name delta x, shift_expr name delta y)
      | Ast.Call (f, args) -> Ast.Call (f, List.map (shift_expr name delta) args)
    in
    { e with Ast.desc = desc }

let rec shift_stmt name delta (s : Ast.stmt) : Ast.stmt =
  let sh = shift_expr name delta in
  let desc =
    match s.Ast.sdesc with
    | Ast.Decl (ty, v, init) -> Ast.Decl (ty, v, Option.map sh init)
    | Ast.Assign (lv, e) ->
        let lv' =
          match lv with
          | Ast.Lvar v -> Ast.Lvar v
          | Ast.Lindex (a, idxs) -> Ast.Lindex (a, List.map sh idxs)
        in
        Ast.Assign (lv', sh e)
    | Ast.Expr e -> Ast.Expr (sh e)
    | Ast.If (c, t, f) ->
        Ast.If (sh c, List.map (shift_stmt name delta) t,
                List.map (shift_stmt name delta) f)
    | Ast.While (c, b) -> Ast.While (sh c, List.map (shift_stmt name delta) b)
    | Ast.For (i, c, st, b) ->
        Ast.For
          ( Option.map (shift_stmt name delta) i,
            Option.map sh c,
            Option.map (shift_stmt name delta) st,
            List.map (shift_stmt name delta) b )
    | (Ast.Return _ | Ast.Break | Ast.Continue) as d -> d
  in
  { s with Ast.sdesc = desc }

(* Names assigned (or re-declared) anywhere in a statement list. *)
let rec assigned_names stmts =
  List.concat_map
    (fun (s : Ast.stmt) ->
      match s.Ast.sdesc with
      | Ast.Decl (_, v, _) -> [ v ]
      | Ast.Assign (Ast.Lvar v, _) -> [ v ]
      | Ast.Assign (Ast.Lindex _, _) | Ast.Expr _ -> []
      | Ast.If (_, t, f) -> assigned_names t @ assigned_names f
      | Ast.While (_, b) -> assigned_names b
      | Ast.For (i, _, st, b) ->
          assigned_names (Option.to_list i)
          @ assigned_names (Option.to_list st)
          @ assigned_names b
      | Ast.Return _ | Ast.Break | Ast.Continue -> [])
    stmts

let rec vars_of_expr (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int_lit _ | Ast.Float_lit _ -> []
  | Ast.Var v -> [ v ]
  | Ast.Index (_, idxs) -> List.concat_map vars_of_expr idxs
  | Ast.Unop (_, x) -> vars_of_expr x
  | Ast.Binop (_, x, y) -> vars_of_expr x @ vars_of_expr y
  | Ast.Call (_, args) -> List.concat_map vars_of_expr args

let rec is_replicable stmts =
  List.for_all
    (fun (s : Ast.stmt) ->
      match s.Ast.sdesc with
      | Ast.Break | Ast.Continue | Ast.Return _ -> false
      | Ast.While _ | Ast.For _ -> false (* only innermost loops unroll *)
      | Ast.If (_, t, f) -> is_replicable t && is_replicable f
      | Ast.Decl _ | Ast.Assign _ | Ast.Expr _ -> true)
    stmts

(* Match the unrollable for-shape; returns (i, c, bound). *)
let match_counted_for cond step body =
  match (cond, step) with
  | ( Some { Ast.desc = Ast.Binop (Ast.Lt, { Ast.desc = Ast.Var i; _ }, bound); _ },
      Some
        {
          Ast.sdesc =
            Ast.Assign
              ( Ast.Lvar i',
                {
                  Ast.desc =
                    Ast.Binop
                      ( Ast.Add,
                        { Ast.desc = Ast.Var i''; _ },
                        { Ast.desc = Ast.Int_lit c; _ } );
                  _;
                } );
          _;
        } )
    when i = i' && i = i'' && c > 0L && c < 1024L ->
      let written = assigned_names body in
      let bound_vars = vars_of_expr bound in
      if
        (not (List.mem i written))
        && (not (List.exists (fun v -> List.mem v written) bound_vars))
        && is_replicable body
      then Some (i, Int64.to_int c, bound)
      else None
  | _ -> None

let rec unroll_stmt factor (s : Ast.stmt) : Ast.stmt =
  match s.Ast.sdesc with
  | Ast.For (init, cond, step, body) -> (
      let body = List.map (unroll_stmt factor) body in
      let init_is_decl =
        match init with
        | Some { Ast.sdesc = Ast.Decl _; _ } -> true
        | _ -> false
      in
      match match_counted_for cond step body with
      | Some (i, c, bound) when factor > 1 && not init_is_decl ->
          let line = s.Ast.sline in
          let var = { Ast.desc = Ast.Var i; line } in
          let lit v = { Ast.desc = Ast.Int_lit (Int64.of_int v); line } in
          let main_cond =
            {
              Ast.desc =
                Ast.Binop
                  ( Ast.Lt,
                    { Ast.desc = Ast.Binop (Ast.Add, var, lit ((factor - 1) * c)); line },
                    bound );
              line;
            }
          in
          let main_step =
            {
              Ast.sdesc =
                Ast.Assign
                  ( Ast.Lvar i,
                    { Ast.desc = Ast.Binop (Ast.Add, var, lit (factor * c)); line } );
              sline = line;
            }
          in
          let unrolled_body =
            List.concat
              (List.init factor (fun k ->
                   List.map (shift_stmt i (k * c)) body))
          in
          let epilogue =
            {
              Ast.sdesc =
                Ast.For
                  ( None,
                    Some
                      { Ast.desc = Ast.Binop (Ast.Lt, var, bound); line },
                    step,
                    body );
              sline = line;
            }
          in
          (* The main loop keeps the original init; the epilogue reuses
             the loop variable where the main loop left it.  Both loops
             are wrapped so the construct stays one statement. *)
          {
            s with
            Ast.sdesc =
              Ast.If
                ( { Ast.desc = Ast.Int_lit 1L; line },
                  [
                    {
                      Ast.sdesc = Ast.For (init, Some main_cond, Some main_step, unrolled_body);
                      sline = line;
                    };
                    epilogue;
                  ],
                  [] );
          }
      | _ -> { s with Ast.sdesc = Ast.For (init, cond, step, body) })
  | Ast.If (c, t, f) ->
      {
        s with
        Ast.sdesc =
          Ast.If (c, List.map (unroll_stmt factor) t, List.map (unroll_stmt factor) f);
      }
  | Ast.While (c, b) ->
      { s with Ast.sdesc = Ast.While (c, List.map (unroll_stmt factor) b) }
  | _ -> s

(** Unroll innermost counted loops throughout a program. *)
let program ?(factor = default_factor) (prog : Ast.program) : Ast.program =
  List.map
    (function
      | Ast.Dglobal _ as d -> d
      | Ast.Dfunc f ->
          Ast.Dfunc
            { f with Ast.fbody = List.map (unroll_stmt factor) f.Ast.fbody })
    prog
