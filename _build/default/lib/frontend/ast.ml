(** Abstract syntax of MiniC.

    MiniC is the C subset the benchmark kernels are written in: [int],
    [long], [float], [double] scalars; fixed-size global arrays (1-D and
    2-D); functions; [if]/[while]/[for] control flow; the usual C
    operators with short-circuit [&&]/[||].  Pointers, structs and
    local arrays are intentionally absent. *)

module Ty = Jitise_ir.Ty

type base_ty = Tint | Tlong | Tfloat | Tdouble

type unop = Neg | Not | Bnot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor  (** short-circuit *)

type expr = { desc : expr_desc; line : int }

and expr_desc =
  | Int_lit of int64
  | Float_lit of float
  | Var of string
  | Index of string * expr list  (** [a\[i\]] or [m\[i\]\[j\]] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type lvalue =
  | Lvar of string
  | Lindex of string * expr list

type stmt = { sdesc : stmt_desc; sline : int }

and stmt_desc =
  | Decl of base_ty * string * expr option
  | Assign of lvalue * expr
  | Expr of expr  (** expression for side effects, e.g. a bare call *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Break
  | Continue

type param = { pty : base_ty; pname : string }

type func = {
  fname : string;
  fret : base_ty option;  (** [None] = void *)
  fparams : param list;
  fbody : stmt list;
  fline : int;
}

(** A global scalar or array declaration.  [dims = []] for scalars. *)
type global = {
  gname : string;
  gty : base_ty;
  dims : int list;  (** at most two dimensions *)
  ginit : init option;
  gline : int;
}

and init = Scalar_init of expr | Array_init of expr list

type decl = Dglobal of global | Dfunc of func

type program = decl list

let base_ty_to_string = function
  | Tint -> "int"
  | Tlong -> "long"
  | Tfloat -> "float"
  | Tdouble -> "double"

(** IR type of a MiniC base type. *)
let ir_ty = function
  | Tint -> Ty.I32
  | Tlong -> Ty.I64
  | Tfloat -> Ty.F32
  | Tdouble -> Ty.F64
