(** Promotion of scalar allocas to SSA registers (mem2reg).

    The classic Cytron et al. construction: phi nodes are placed at the
    iterated dominance frontier of each alloca's store blocks, then a
    dominator-tree walk renames loads to the reaching definition.  This
    pass is what turns the frontend's load/store soup into the register
    data-flow the ISE algorithms mine for candidates.

    Expects an IR function without unreachable blocks
    (run {!Opt.remove_unreachable} first). *)

module Ir = Jitise_ir

type alloca_info = {
  areg : Ir.Instr.reg;  (** register holding the alloca address *)
  aty : Ir.Ty.t;        (** element type *)
}

(* An alloca is promotable when it is a single cell and its address is
   only ever used directly as the address of loads and stores (never
   stored itself, passed to a call, offset by gep, ...). *)
let promotable_allocas (f : Ir.Func.t) =
  let candidates = Hashtbl.create 16 in
  Ir.Func.iter_instrs
    (fun _ (i : Ir.Instr.t) ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Alloca (ty, 1) ->
          Hashtbl.replace candidates i.Ir.Instr.id { areg = i.Ir.Instr.id; aty = ty }
      | _ -> ())
    f;
  let disqualify r = Hashtbl.remove candidates r in
  Ir.Func.iter_instrs
    (fun _ (i : Ir.Instr.t) ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Load _ -> ()
      | Ir.Instr.Store (v, _) -> (
          (* storing the address itself escapes it *)
          match v with Ir.Instr.Reg r -> disqualify r | _ -> ())
      | kind ->
          List.iter
            (function Ir.Instr.Reg r -> disqualify r | _ -> ())
            (Ir.Instr.operands kind))
    f;
  (* Terminator uses of the address also disqualify. *)
  Ir.Func.iter_blocks
    (fun b ->
      List.iter disqualify (Ir.Instr.terminator_used_regs b.Ir.Block.term))
    f;
  candidates

let zero_const (ty : Ir.Ty.t) =
  if Ir.Ty.is_float ty then Ir.Instr.Const (Ir.Instr.Cfloat (0.0, ty))
  else Ir.Instr.Const (Ir.Instr.Cint (0L, ty))

(** Run mem2reg on [f] in place.  Returns the number of promoted
    allocas. *)
let run (f : Ir.Func.t) =
  let allocas = promotable_allocas f in
  if Hashtbl.length allocas = 0 then 0
  else begin
    let cfg = Ir.Cfg.of_func f in
    let dom = Ir.Dom.compute cfg in
    let frontier = Ir.Dom.frontiers dom cfg in
    let nblocks = Ir.Func.num_blocks f in
    (* Blocks containing a store to each alloca. *)
    let def_blocks = Hashtbl.create 16 in
    Ir.Func.iter_blocks
      (fun b ->
        List.iter
          (fun (i : Ir.Instr.t) ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Store (_, Ir.Instr.Reg addr)
              when Hashtbl.mem allocas addr ->
                let existing =
                  Option.value ~default:[] (Hashtbl.find_opt def_blocks addr)
                in
                if not (List.mem b.Ir.Block.label existing) then
                  Hashtbl.replace def_blocks addr (b.Ir.Block.label :: existing)
            | _ -> ())
          b.Ir.Block.instrs)
      f;
    (* Phi placement at iterated dominance frontiers.
       phi_for.(block) : (alloca reg -> phi instr) *)
    let phi_for = Array.init nblocks (fun _ -> Hashtbl.create 4) in
    Hashtbl.iter
      (fun areg info ->
        let placed = Array.make nblocks false in
        let work = Queue.create () in
        List.iter
          (fun b -> Queue.add b work)
          (Option.value ~default:[] (Hashtbl.find_opt def_blocks areg));
        while not (Queue.is_empty work) do
          let b = Queue.pop work in
          List.iter
            (fun fb ->
              if not placed.(fb) then begin
                placed.(fb) <- true;
                let phi_reg = Ir.Func.fresh_reg f in
                let phi =
                  {
                    Ir.Instr.id = phi_reg;
                    ty = info.aty;
                    kind = Ir.Instr.Phi [];
                  }
                in
                Hashtbl.replace phi_for.(fb) areg phi;
                Queue.add fb work
              end)
            frontier.(b)
        done)
      allocas;
    (* Renaming walk over the dominator tree. *)
    let children = Array.make nblocks [] in
    Array.iteri
      (fun b idom ->
        if idom >= 0 && b <> Ir.Func.entry_label then
          children.(idom) <- b :: children.(idom))
      dom.Ir.Dom.idom;
    (* Substitution for load results, resolved transitively at the end. *)
    let subst : (Ir.Instr.reg, Ir.Instr.operand) Hashtbl.t =
      Hashtbl.create 64
    in
    let rec resolve op =
      match op with
      | Ir.Instr.Reg r -> (
          match Hashtbl.find_opt subst r with
          | Some op' -> resolve op'
          | None -> op)
      | _ -> op
    in
    (* Incoming value per alloca, per renaming path: persistent map
       threaded through the DFS. *)
    let module Rmap = Map.Make (Int) in
    let initial =
      Hashtbl.fold
        (fun areg info acc -> Rmap.add areg (zero_const info.aty) acc)
        allocas Rmap.empty
    in
    let rec walk label reaching =
      let blk = Ir.Func.block f label in
      (* Phis placed in this block define new reaching values. *)
      let reaching = ref reaching in
      Hashtbl.iter
        (fun areg (phi : Ir.Instr.t) ->
          reaching := Rmap.add areg (Ir.Instr.Reg phi.Ir.Instr.id) !reaching)
        phi_for.(label);
      (* Rewrite the straight-line body. *)
      let kept =
        List.filter
          (fun (i : Ir.Instr.t) ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Alloca _ when Hashtbl.mem allocas i.Ir.Instr.id -> false
            | Ir.Instr.Load (Ir.Instr.Reg addr) when Hashtbl.mem allocas addr ->
                Hashtbl.replace subst i.Ir.Instr.id (Rmap.find addr !reaching);
                false
            | Ir.Instr.Store (v, Ir.Instr.Reg addr)
              when Hashtbl.mem allocas addr ->
                reaching := Rmap.add addr v !reaching;
                false
            | _ -> true)
          blk.Ir.Block.instrs
      in
      Ir.Block.set_instrs blk kept;
      (* Feed phi inputs of successors. *)
      List.iter
        (fun succ ->
          Hashtbl.iter
            (fun areg (phi : Ir.Instr.t) ->
              let v = Rmap.find areg !reaching in
              match phi.Ir.Instr.kind with
              | Ir.Instr.Phi incoming ->
                  Hashtbl.replace phi_for.(succ) areg
                    {
                      phi with
                      Ir.Instr.kind = Ir.Instr.Phi ((label, v) :: incoming);
                    }
              | _ -> assert false)
            phi_for.(succ))
        (Ir.Cfg.succs cfg label);
      List.iter (fun c -> walk c !reaching) children.(label)
    in
    if nblocks > 0 then walk Ir.Func.entry_label initial;
    (* Install phis as block prefixes. *)
    Ir.Func.iter_blocks
      (fun b ->
        let phis =
          Hashtbl.fold (fun _ phi acc -> phi :: acc) phi_for.(b.Ir.Block.label) []
        in
        (* Stable order: by defining register, for determinism. *)
        let phis =
          List.sort
            (fun (a : Ir.Instr.t) b -> compare a.Ir.Instr.id b.Ir.Instr.id)
            phis
        in
        if phis <> [] then Ir.Block.set_instrs b (phis @ b.Ir.Block.instrs))
      f;
    (* Apply the load substitution everywhere. *)
    let rewrite_kind kind =
      let rw = resolve in
      match kind with
      | Ir.Instr.Binop (op, a, b) -> Ir.Instr.Binop (op, rw a, rw b)
      | Ir.Instr.Icmp (p, a, b) -> Ir.Instr.Icmp (p, rw a, rw b)
      | Ir.Instr.Fcmp (p, a, b) -> Ir.Instr.Fcmp (p, rw a, rw b)
      | Ir.Instr.Cast (c, a) -> Ir.Instr.Cast (c, rw a)
      | Ir.Instr.Select (c, a, b) -> Ir.Instr.Select (rw c, rw a, rw b)
      | Ir.Instr.Alloca _ as k -> k
      | Ir.Instr.Load a -> Ir.Instr.Load (rw a)
      | Ir.Instr.Store (v, a) -> Ir.Instr.Store (rw v, rw a)
      | Ir.Instr.Gep (b, i) -> Ir.Instr.Gep (rw b, rw i)
      | Ir.Instr.Gaddr _ as k -> k
      | Ir.Instr.Call (f, args) -> Ir.Instr.Call (f, List.map rw args)
      | Ir.Instr.Phi incoming ->
          Ir.Instr.Phi (List.map (fun (l, v) -> (l, rw v)) incoming)
      | Ir.Instr.Ci_call (ci, args) -> Ir.Instr.Ci_call (ci, List.map rw args)
    in
    Ir.Func.iter_blocks
      (fun b ->
        Ir.Block.set_instrs b
          (List.map
             (fun (i : Ir.Instr.t) ->
               { i with Ir.Instr.kind = rewrite_kind i.Ir.Instr.kind })
             b.Ir.Block.instrs);
        b.Ir.Block.term <-
          (match b.Ir.Block.term with
          | Ir.Instr.Ret (Some op) -> Ir.Instr.Ret (Some (resolve op))
          | Ir.Instr.Ret None as t -> t
          | Ir.Instr.Br _ as t -> t
          | Ir.Instr.Cond_br (c, x, y) -> Ir.Instr.Cond_br (resolve c, x, y)
          | Ir.Instr.Switch (s, d, cases) ->
              Ir.Instr.Switch (resolve s, d, cases)))
      f;
    Hashtbl.length allocas
  end

(** Promote every function of a module; returns total promoted
    allocas. *)
let run_module (m : Ir.Irmod.t) =
  List.fold_left (fun acc f -> acc + run f) 0 m.Ir.Irmod.funcs
