(** The MiniC-to-bitcode compiler entry point.

    Mirrors the paper's "Compilation to Bitcode" stage (llvm-gcc -O3):
    one or more source files are parsed, type-checked, lowered and
    optimized into a single IR module, and the statistics reported in
    Table I (files, LOC, compile seconds, blocks, instructions) are
    collected on the way. *)

module Ir = Jitise_ir

type stats = {
  files : int;
  loc : int;            (** non-blank non-comment source lines *)
  compile_seconds : float;  (** wall-clock time of the full pipeline *)
  blocks : int;         (** basic blocks in the optimized module *)
  instrs : int;         (** IR instructions in the optimized module *)
  opt_report : Opt.report;
}

type result = { modul : Ir.Irmod.t; stats : stats }

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(** Compile source files (given as [(filename, contents)] pairs) into
    one optimized, verified IR module.

    @param optimize run the -O3 pipeline (default true)
    @param unroll_factor innermost-loop unrolling factor under -O3
    (default {!Unroll.default_factor}; 1 disables unrolling)
    @raise Error with a located message on any lexical, syntactic, type
    or verification failure. *)
let compile ?(optimize = true) ?(unroll_factor = Unroll.default_factor)
    ~module_name (sources : (string * string) list) : result =
  if sources = [] then fail "no source files";
  let t0 = Unix.gettimeofday () in
  let loc =
    List.fold_left (fun acc (_, src) -> acc + Lexer.count_loc src) 0 sources
  in
  let program =
    List.concat_map
      (fun (file, src) ->
        try Parser.parse_program src with
        | Lexer.Error { line; message } ->
            fail "%s:%d: lexical error: %s" file line message
        | Parser.Error { line; message } ->
            fail "%s:%d: syntax error: %s" file line message)
      sources
  in
  let program =
    if optimize && unroll_factor > 1 then
      Unroll.program ~factor:unroll_factor program
    else program
  in
  let env =
    try Typecheck.check_program program
    with Typecheck.Error { line; message } ->
      fail "line %d: type error: %s" line message
  in
  let modul =
    try Lower.lower_program env ~module_name program
    with Lower.Error { line; message } ->
      fail "line %d: lowering error: %s" line message
  in
  let opt_report =
    if optimize then Opt.optimize_module modul
    else begin
      (* mem2reg is part of -O0 too: the VM interprets SSA form. *)
      List.iter (fun f -> ignore (Opt.remove_unreachable f)) modul.Ir.Irmod.funcs;
      let promoted = Mem2reg.run_module modul in
      {
        Opt.promoted_allocas = promoted;
        folded = 0;
        cse_eliminated = 0;
        dce_removed = 0;
        unreachable_removed = 0;
        blocks_merged = 0;
      }
    end
  in
  (match Ir.Verifier.check_module modul with
  | [] -> ()
  | errors ->
      fail "internal error: compiler produced invalid IR:\n%s"
        (Ir.Verifier.errors_to_string errors));
  let compile_seconds = Unix.gettimeofday () -. t0 in
  {
    modul;
    stats =
      {
        files = List.length sources;
        loc;
        compile_seconds;
        blocks = Ir.Irmod.num_blocks modul;
        instrs = Ir.Irmod.num_instrs modul;
        opt_report;
      };
  }

(** [compile_string ~name src] compiles a single in-memory source. *)
let compile_string ?optimize ?unroll_factor ~name src =
  compile ?optimize ?unroll_factor ~module_name:name [ (name ^ ".c", src) ]
