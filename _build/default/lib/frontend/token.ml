(** Lexical tokens of MiniC, the C subset the benchmark kernels are
    written in.  Each token carries the 1-based source line it starts
    on, used in diagnostics. *)

type kind =
  | Int_lit of int64
  | Float_lit of float
  | Ident of string
  | Kw_int | Kw_long | Kw_float | Kw_double | Kw_void
  | Kw_if | Kw_else | Kw_while | Kw_for | Kw_return
  | Kw_break | Kw_continue
  | Lparen | Rparen | Lbrace | Rbrace | Lbracket | Rbracket
  | Semi | Comma
  | Assign                     (* = *)
  | Plus | Minus | Star | Slash | Percent
  | Amp | Pipe | Caret | Tilde | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Andand | Oror | Bang
  | Eof

type t = { kind : kind; line : int }

let keyword_of_string = function
  | "int" -> Some Kw_int
  | "long" -> Some Kw_long
  | "float" -> Some Kw_float
  | "double" -> Some Kw_double
  | "void" -> Some Kw_void
  | "if" -> Some Kw_if
  | "else" -> Some Kw_else
  | "while" -> Some Kw_while
  | "for" -> Some Kw_for
  | "return" -> Some Kw_return
  | "break" -> Some Kw_break
  | "continue" -> Some Kw_continue
  | _ -> None

let kind_to_string = function
  | Int_lit v -> Printf.sprintf "integer literal %Ld" v
  | Float_lit v -> Printf.sprintf "float literal %g" v
  | Ident s -> Printf.sprintf "identifier %s" s
  | Kw_int -> "'int'" | Kw_long -> "'long'" | Kw_float -> "'float'"
  | Kw_double -> "'double'" | Kw_void -> "'void'" | Kw_if -> "'if'"
  | Kw_else -> "'else'" | Kw_while -> "'while'" | Kw_for -> "'for'"
  | Kw_return -> "'return'" | Kw_break -> "'break'"
  | Kw_continue -> "'continue'"
  | Lparen -> "'('" | Rparen -> "')'" | Lbrace -> "'{'" | Rbrace -> "'}'"
  | Lbracket -> "'['" | Rbracket -> "']'" | Semi -> "';'" | Comma -> "','"
  | Assign -> "'='" | Plus -> "'+'" | Minus -> "'-'" | Star -> "'*'"
  | Slash -> "'/'" | Percent -> "'%'" | Amp -> "'&'" | Pipe -> "'|'"
  | Caret -> "'^'" | Tilde -> "'~'" | Shl -> "'<<'" | Shr -> "'>>'"
  | Lt -> "'<'" | Le -> "'<='" | Gt -> "'>'" | Ge -> "'>='" | Eq -> "'=='"
  | Ne -> "'!='" | Andand -> "'&&'" | Oror -> "'||'" | Bang -> "'!'"
  | Eof -> "end of input"
