(** Hand-written lexer for MiniC.

    Supports decimal and hex integer literals, floating literals with
    optional exponent, [//] line comments and [/* */] block comments. *)

exception Error of { line : int; message : string }

let error line fmt =
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

type state = { src : string; mutable pos : int; mutable line : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with Some '\n' -> st.line <- st.line + 1 | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      let start_line = st.line in
      advance st;
      advance st;
      let rec eat () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            eat ()
        | None, _ -> error start_line "unterminated block comment"
      in
      eat ();
      skip_trivia st
  | _ -> ()

let lex_number st =
  let line = st.line in
  let start = st.pos in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    match Int64.of_string_opt text with
    | Some v -> Token.Int_lit v
    | None -> error line "bad hex literal %s" text
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let is_float = ref false in
    (if peek st = Some '.' then begin
       is_float := true;
       advance st;
       while (match peek st with Some c -> is_digit c | None -> false) do
         advance st
       done
     end);
    (match peek st with
    | Some ('e' | 'E') ->
        is_float := true;
        advance st;
        (match peek st with Some ('+' | '-') -> advance st | _ -> ());
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done
    | _ -> ());
    let text = String.sub st.src start (st.pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some v -> Token.Float_lit v
      | None -> error line "bad float literal %s" text
    else
      match Int64.of_string_opt text with
      | Some v -> Token.Int_lit v
      | None -> error line "bad integer literal %s" text
  end

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match Token.keyword_of_string text with
  | Some kw -> kw
  | None -> Token.Ident text

let next_kind st =
  let two kind = advance st; advance st; kind in
  let one kind = advance st; kind in
  match peek st with
  | None -> Token.Eof
  | Some c when is_digit c -> lex_number st
  | Some c when is_ident_start c -> lex_ident st
  | Some '(' -> one Token.Lparen
  | Some ')' -> one Token.Rparen
  | Some '{' -> one Token.Lbrace
  | Some '}' -> one Token.Rbrace
  | Some '[' -> one Token.Lbracket
  | Some ']' -> one Token.Rbracket
  | Some ';' -> one Token.Semi
  | Some ',' -> one Token.Comma
  | Some '+' -> one Token.Plus
  | Some '-' -> one Token.Minus
  | Some '*' -> one Token.Star
  | Some '/' -> one Token.Slash
  | Some '%' -> one Token.Percent
  | Some '~' -> one Token.Tilde
  | Some '^' -> one Token.Caret
  | Some '&' -> if peek2 st = Some '&' then two Token.Andand else one Token.Amp
  | Some '|' -> if peek2 st = Some '|' then two Token.Oror else one Token.Pipe
  | Some '<' ->
      if peek2 st = Some '<' then two Token.Shl
      else if peek2 st = Some '=' then two Token.Le
      else one Token.Lt
  | Some '>' ->
      if peek2 st = Some '>' then two Token.Shr
      else if peek2 st = Some '=' then two Token.Ge
      else one Token.Gt
  | Some '=' -> if peek2 st = Some '=' then two Token.Eq else one Token.Assign
  | Some '!' -> if peek2 st = Some '=' then two Token.Ne else one Token.Bang
  | Some c -> error st.line "unexpected character %C" c

(** Tokenize a whole source string.  The result always ends with an
    [Eof] token.  @raise Error on malformed input. *)
let tokenize src =
  let st = { src; pos = 0; line = 1 } in
  let rec go acc =
    skip_trivia st;
    let line = st.line in
    let kind = next_kind st in
    let tok = { Token.kind; line } in
    match kind with
    | Token.Eof -> List.rev (tok :: acc)
    | _ -> go (tok :: acc)
  in
  go []

(** Number of non-blank, non-comment-only source lines — the paper's
    LOC metric for Table I. *)
let count_loc src =
  let lines = String.split_on_char '\n' src in
  let in_block = ref false in
  let count = ref 0 in
  List.iter
    (fun line ->
      (* Strip block-comment regions conservatively, line by line. *)
      let buf = Buffer.create (String.length line) in
      let i = ref 0 in
      let n = String.length line in
      while !i < n do
        if !in_block then begin
          if !i + 1 < n && line.[!i] = '*' && line.[!i + 1] = '/' then begin
            in_block := false;
            i := !i + 2
          end
          else incr i
        end
        else if !i + 1 < n && line.[!i] = '/' && line.[!i + 1] = '*' then begin
          in_block := true;
          i := !i + 2
        end
        else if !i + 1 < n && line.[!i] = '/' && line.[!i + 1] = '/' then
          i := n
        else begin
          Buffer.add_char buf line.[!i];
          incr i
        end
      done;
      if String.trim (Buffer.contents buf) <> "" then incr count)
    lines;
  !count
