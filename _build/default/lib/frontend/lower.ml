(** Lowering: typed MiniC AST -> IR module.

    Local scalars (and parameters) are lowered to entry-block allocas
    with explicit loads/stores; the {!Mem2reg} pass then promotes them
    to SSA registers.  Global arrays become module globals addressed via
    [gaddr]/[gep].  Short-circuit [&&]/[||] lower to control flow. *)

module Ir = Jitise_ir

exception Error of { line : int; message : string }

let error line fmt =
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Constant evaluation for global initializers                         *)
(* ------------------------------------------------------------------ *)

type cvalue = Cint of int64 | Cfloat of float

let rec const_eval (e : Ast.expr) : cvalue =
  match e.Ast.desc with
  | Ast.Int_lit v -> Cint v
  | Ast.Float_lit v -> Cfloat v
  | Ast.Unop (Ast.Neg, a) -> (
      match const_eval a with
      | Cint v -> Cint (Int64.neg v)
      | Cfloat v -> Cfloat (-.v))
  | Ast.Binop (op, a, b) -> (
      let ca = const_eval a and cb = const_eval b in
      match (op, ca, cb) with
      | Ast.Add, Cint x, Cint y -> Cint (Int64.add x y)
      | Ast.Sub, Cint x, Cint y -> Cint (Int64.sub x y)
      | Ast.Mul, Cint x, Cint y -> Cint (Int64.mul x y)
      | Ast.Div, Cint x, Cint y when y <> 0L -> Cint (Int64.div x y)
      | Ast.Add, Cfloat x, Cfloat y -> Cfloat (x +. y)
      | Ast.Sub, Cfloat x, Cfloat y -> Cfloat (x -. y)
      | Ast.Mul, Cfloat x, Cfloat y -> Cfloat (x *. y)
      | Ast.Div, Cfloat x, Cfloat y -> Cfloat (x /. y)
      | _ -> error e.Ast.line "global initializer is not a constant")
  | _ -> error e.Ast.line "global initializer is not a constant"

let cvalue_as_int = function Cint v -> v | Cfloat v -> Int64.of_float v
let cvalue_as_float = function Cint v -> Int64.to_float v | Cfloat v -> v

(* ------------------------------------------------------------------ *)
(* Lowering context                                                    *)
(* ------------------------------------------------------------------ *)

type slot =
  | Local of Ir.Instr.reg * Ast.base_ty   (** alloca address *)
  | Global_scalar of string * Ast.base_ty

type ctx = {
  env : Typecheck.env;
  bld : Ir.Builder.t;
  mutable slots : (string * slot) list;
  mutable loop_stack : (Ir.Instr.label * Ir.Instr.label) list;
      (** (continue target, break target) *)
  mutable terminated : bool;
      (** current block already has its real terminator *)
  fret : Ast.base_ty option;
}

let ir_ty = Ast.ir_ty

let zero_of = function
  | Ast.Tint -> Ir.Builder.ci32 0
  | Ast.Tlong -> Ir.Builder.ci64 0L
  | Ast.Tfloat -> Ir.Builder.cf32 0.0
  | Ast.Tdouble -> Ir.Builder.cf64 0.0

(* Insert a conversion from [from_ty] to [to_ty] when needed. *)
let coerce ctx (op, from_ty) to_ty =
  if from_ty = to_ty then op
  else
    let cast c = Ir.Builder.reg (Ir.Builder.cast ctx.bld c (ir_ty to_ty) op) in
    match (from_ty, to_ty) with
    | Ast.Tint, Ast.Tlong -> cast Ir.Instr.Sext
    | Ast.Tlong, Ast.Tint -> cast Ir.Instr.Trunc
    | (Ast.Tint | Ast.Tlong), (Ast.Tfloat | Ast.Tdouble) ->
        cast Ir.Instr.Sitofp
    | (Ast.Tfloat | Ast.Tdouble), (Ast.Tint | Ast.Tlong) ->
        cast Ir.Instr.Fptosi
    | Ast.Tfloat, Ast.Tdouble -> cast Ir.Instr.Fpext
    | Ast.Tdouble, Ast.Tfloat -> cast Ir.Instr.Fptrunc
    | _ -> assert false

let find_slot ctx line name =
  match List.assoc_opt name ctx.slots with
  | Some s -> s
  | None -> (
      match Hashtbl.find_opt ctx.env.Typecheck.globals name with
      | Some ty -> Global_scalar (name, ty)
      | None -> error line "unknown variable %s" name)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let int_binop = function
  | Ast.Add -> Ir.Instr.Add
  | Ast.Sub -> Ir.Instr.Sub
  | Ast.Mul -> Ir.Instr.Mul
  | Ast.Div -> Ir.Instr.Sdiv
  | Ast.Mod -> Ir.Instr.Srem
  | Ast.Band -> Ir.Instr.And
  | Ast.Bor -> Ir.Instr.Or
  | Ast.Bxor -> Ir.Instr.Xor
  | Ast.Shl -> Ir.Instr.Shl
  | Ast.Shr -> Ir.Instr.Ashr
  | _ -> assert false

let float_binop = function
  | Ast.Add -> Ir.Instr.Fadd
  | Ast.Sub -> Ir.Instr.Fsub
  | Ast.Mul -> Ir.Instr.Fmul
  | Ast.Div -> Ir.Instr.Fdiv
  | _ -> assert false

let icmp_of = function
  | Ast.Lt -> Ir.Instr.Islt
  | Ast.Le -> Ir.Instr.Isle
  | Ast.Gt -> Ir.Instr.Isgt
  | Ast.Ge -> Ir.Instr.Isge
  | Ast.Eq -> Ir.Instr.Ieq
  | Ast.Ne -> Ir.Instr.Ine
  | _ -> assert false

let fcmp_of = function
  | Ast.Lt -> Ir.Instr.Folt
  | Ast.Le -> Ir.Instr.Fole
  | Ast.Gt -> Ir.Instr.Fogt
  | Ast.Ge -> Ir.Instr.Foge
  | Ast.Eq -> Ir.Instr.Foeq
  | Ast.Ne -> Ir.Instr.Fone
  | _ -> assert false

let is_cmp = function
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> true
  | _ -> false

(* Lower an array element address. *)
let rec lower_elem_addr ctx line name idxs =
  let info =
    match Hashtbl.find_opt ctx.env.Typecheck.arrays name with
    | Some info -> info
    | None -> error line "unknown array %s" name
  in
  let base = Ir.Builder.add ctx.bld Ir.Ty.Ptr (Ir.Instr.Gaddr name) in
  let lower_index idx =
    let op, ty = lower_expr ctx idx in
    coerce ctx (op, ty) Ast.Tint
  in
  let linear =
    match (idxs, info.Typecheck.adims) with
    | [ i ], [ _ ] -> lower_index i
    | [ i; j ], [ _; ncols ] ->
        let i' = lower_index i in
        let j' = lower_index j in
        let scaled =
          Ir.Builder.binop ctx.bld Ir.Instr.Mul Ir.Ty.I32 i'
            (Ir.Builder.ci32 ncols)
        in
        Ir.Builder.reg
          (Ir.Builder.binop ctx.bld Ir.Instr.Add Ir.Ty.I32
             (Ir.Builder.reg scaled) j')
    | _ ->
        error line "array %s used with wrong number of indices" name
  in
  (Ir.Builder.reg (Ir.Builder.gep ctx.bld (Ir.Builder.reg base) linear), info)

(* Lower an expression to (operand, base type). *)
and lower_expr ctx (e : Ast.expr) : Ir.Instr.operand * Ast.base_ty =
  match e.Ast.desc with
  | Ast.Int_lit v ->
      let ty = Typecheck.int_lit_ty v in
      (Ir.Instr.Const (Ir.Instr.Cint (v, Ast.ir_ty ty)), ty)
  | Ast.Float_lit v ->
      (Ir.Instr.Const (Ir.Instr.Cfloat (v, Ir.Ty.F64)), Ast.Tdouble)
  | Ast.Var name -> (
      match find_slot ctx e.Ast.line name with
      | Local (addr, ty) ->
          let r = Ir.Builder.load ctx.bld (ir_ty ty) (Ir.Builder.reg addr) in
          (Ir.Builder.reg r, ty)
      | Global_scalar (g, ty) ->
          let base = Ir.Builder.add ctx.bld Ir.Ty.Ptr (Ir.Instr.Gaddr g) in
          let r = Ir.Builder.load ctx.bld (ir_ty ty) (Ir.Builder.reg base) in
          (Ir.Builder.reg r, ty))
  | Ast.Index (name, idxs) ->
      let addr, info = lower_elem_addr ctx e.Ast.line name idxs in
      let elem = info.Typecheck.elem in
      let r = Ir.Builder.load ctx.bld (ir_ty elem) addr in
      (Ir.Builder.reg r, elem)
  | Ast.Unop (Ast.Neg, a) ->
      let op, ty = lower_expr ctx a in
      let r =
        if Typecheck.is_integer ty then
          Ir.Builder.binop ctx.bld Ir.Instr.Sub (ir_ty ty) (zero_of ty) op
        else Ir.Builder.binop ctx.bld Ir.Instr.Fsub (ir_ty ty) (zero_of ty) op
      in
      (Ir.Builder.reg r, ty)
  | Ast.Unop (Ast.Bnot, a) ->
      let op, ty = lower_expr ctx a in
      let minus_one =
        match ty with
        | Ast.Tint -> Ir.Builder.ci32 (-1)
        | Ast.Tlong -> Ir.Builder.ci64 (-1L)
        | _ -> error e.Ast.line "operator ~ requires an integer"
      in
      let r = Ir.Builder.binop ctx.bld Ir.Instr.Xor (ir_ty ty) op minus_one in
      (Ir.Builder.reg r, ty)
  | Ast.Unop (Ast.Not, a) ->
      (* !x = (x == 0), producing int 0/1 *)
      let op, ty = lower_expr ctx a in
      let c =
        if Typecheck.is_integer ty then
          Ir.Builder.icmp ctx.bld Ir.Instr.Ieq op (zero_of ty)
        else Ir.Builder.fcmp ctx.bld Ir.Instr.Foeq op (zero_of ty)
      in
      let r =
        Ir.Builder.cast ctx.bld Ir.Instr.Zext Ir.Ty.I32 (Ir.Builder.reg c)
      in
      (Ir.Builder.reg r, Ast.Tint)
  | Ast.Binop ((Ast.Land | Ast.Lor), _, _) ->
      (* Value context: materialize through a temporary slot so the
         short-circuit control flow stays correct; mem2reg cleans it. *)
      let tmp = Ir.Builder.alloca ctx.bld Ir.Ty.I32 1 in
      let ltrue = Ir.Builder.new_block ctx.bld ~name:"sc.true" in
      let lfalse = Ir.Builder.new_block ctx.bld ~name:"sc.false" in
      let ljoin = Ir.Builder.new_block ctx.bld ~name:"sc.join" in
      lower_branch ctx e ltrue.Ir.Block.label lfalse.Ir.Block.label;
      Ir.Builder.position_at ctx.bld ltrue;
      Ir.Builder.store ctx.bld (Ir.Builder.ci32 1) (Ir.Builder.reg tmp);
      Ir.Builder.br ctx.bld ljoin.Ir.Block.label;
      Ir.Builder.position_at ctx.bld lfalse;
      Ir.Builder.store ctx.bld (Ir.Builder.ci32 0) (Ir.Builder.reg tmp);
      Ir.Builder.br ctx.bld ljoin.Ir.Block.label;
      Ir.Builder.position_at ctx.bld ljoin;
      let r = Ir.Builder.load ctx.bld Ir.Ty.I32 (Ir.Builder.reg tmp) in
      (Ir.Builder.reg r, Ast.Tint)
  | Ast.Binop (op, a, b) when is_cmp op ->
      let oa, ta = lower_expr ctx a in
      let ob, tb = lower_expr ctx b in
      let common = Typecheck.promote ta tb in
      let oa = coerce ctx (oa, ta) common in
      let ob = coerce ctx (ob, tb) common in
      let c =
        if Typecheck.is_integer common then
          Ir.Builder.icmp ctx.bld (icmp_of op) oa ob
        else Ir.Builder.fcmp ctx.bld (fcmp_of op) oa ob
      in
      let r =
        Ir.Builder.cast ctx.bld Ir.Instr.Zext Ir.Ty.I32 (Ir.Builder.reg c)
      in
      (Ir.Builder.reg r, Ast.Tint)
  | Ast.Binop (op, a, b) ->
      let oa, ta = lower_expr ctx a in
      let ob, tb = lower_expr ctx b in
      let common = Typecheck.promote ta tb in
      let oa = coerce ctx (oa, ta) common in
      let ob = coerce ctx (ob, tb) common in
      let r =
        if Typecheck.is_integer common then
          Ir.Builder.binop ctx.bld (int_binop op) (ir_ty common) oa ob
        else Ir.Builder.binop ctx.bld (float_binop op) (ir_ty common) oa ob
      in
      (Ir.Builder.reg r, common)
  | Ast.Call (name, args) ->
      let s = Typecheck.lookup_func ctx.env e.Ast.line name in
      let ret_ty =
        match s.Typecheck.ret with
        | Some ty -> ty
        | None -> error e.Ast.line "void function %s used as a value" name
      in
      let ops =
        List.map2
          (fun arg pty ->
            let op, ty = lower_expr ctx arg in
            coerce ctx (op, ty) pty)
          args s.Typecheck.params
      in
      let r = Ir.Builder.call ctx.bld (ir_ty ret_ty) name ops in
      (Ir.Builder.reg r, ret_ty)

(* Lower a boolean expression directly into a conditional branch. *)
and lower_branch ctx (e : Ast.expr) ltrue lfalse =
  match e.Ast.desc with
  | Ast.Binop (Ast.Land, a, b) ->
      let mid = Ir.Builder.new_block ctx.bld ~name:"and.rhs" in
      lower_branch ctx a mid.Ir.Block.label lfalse;
      Ir.Builder.position_at ctx.bld mid;
      lower_branch ctx b ltrue lfalse
  | Ast.Binop (Ast.Lor, a, b) ->
      let mid = Ir.Builder.new_block ctx.bld ~name:"or.rhs" in
      lower_branch ctx a ltrue mid.Ir.Block.label;
      Ir.Builder.position_at ctx.bld mid;
      lower_branch ctx b ltrue lfalse
  | Ast.Unop (Ast.Not, a) -> lower_branch ctx a lfalse ltrue
  | Ast.Binop (op, a, b) when is_cmp op ->
      let oa, ta = lower_expr ctx a in
      let ob, tb = lower_expr ctx b in
      let common = Typecheck.promote ta tb in
      let oa = coerce ctx (oa, ta) common in
      let ob = coerce ctx (ob, tb) common in
      let c =
        if Typecheck.is_integer common then
          Ir.Builder.icmp ctx.bld (icmp_of op) oa ob
        else Ir.Builder.fcmp ctx.bld (fcmp_of op) oa ob
      in
      Ir.Builder.cond_br ctx.bld (Ir.Builder.reg c) ltrue lfalse
  | _ ->
      let op, ty = lower_expr ctx e in
      let c =
        if Typecheck.is_integer ty then
          Ir.Builder.icmp ctx.bld Ir.Instr.Ine op (zero_of ty)
        else Ir.Builder.fcmp ctx.bld Ir.Instr.Fone op (zero_of ty)
      in
      Ir.Builder.cond_br ctx.bld (Ir.Builder.reg c) ltrue lfalse

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let store_to ctx line lv (op, ty) =
  match lv with
  | Ast.Lvar name -> (
      match find_slot ctx line name with
      | Local (addr, vty) ->
          let op = coerce ctx (op, ty) vty in
          Ir.Builder.store ctx.bld op (Ir.Builder.reg addr)
      | Global_scalar (g, vty) ->
          let op = coerce ctx (op, ty) vty in
          let base = Ir.Builder.add ctx.bld Ir.Ty.Ptr (Ir.Instr.Gaddr g) in
          Ir.Builder.store ctx.bld op (Ir.Builder.reg base))
  | Ast.Lindex (name, idxs) ->
      let addr, info = lower_elem_addr ctx line name idxs in
      let op = coerce ctx (op, ty) info.Typecheck.elem in
      Ir.Builder.store ctx.bld op addr

let rec lower_stmt ctx (s : Ast.stmt) =
  if ctx.terminated then begin
    (* Unreachable code after return/break: park it in a fresh dead
       block so lowering stays structurally simple. *)
    let dead = Ir.Builder.new_block ctx.bld ~name:"dead" in
    Ir.Builder.position_at ctx.bld dead;
    ctx.terminated <- false
  end;
  match s.Ast.sdesc with
  | Ast.Decl (ty, name, init) ->
      let addr = Ir.Builder.alloca ctx.bld (ir_ty ty) 1 in
      ctx.slots <- (name, Local (addr, ty)) :: ctx.slots;
      let value =
        match init with
        | Some e ->
            let op, ety = lower_expr ctx e in
            coerce ctx (op, ety) ty
        | None -> zero_of ty
      in
      Ir.Builder.store ctx.bld value (Ir.Builder.reg addr)
  | Ast.Assign (lv, e) ->
      let v = lower_expr ctx e in
      store_to ctx s.Ast.sline lv v
  | Ast.Expr e -> (
      match e.Ast.desc with
      | Ast.Call (name, args) -> (
          let si = Typecheck.lookup_func ctx.env e.Ast.line name in
          match si.Typecheck.ret with
          | None ->
              let ops =
                List.map2
                  (fun arg pty ->
                    let op, ty = lower_expr ctx arg in
                    coerce ctx (op, ty) pty)
                  args si.Typecheck.params
              in
              ignore (Ir.Builder.call ctx.bld Ir.Ty.Void name ops)
          | Some _ -> ignore (lower_expr ctx e))
      | _ -> ignore (lower_expr ctx e))
  | Ast.If (cond, then_, else_) ->
      let bthen = Ir.Builder.new_block ctx.bld ~name:"if.then" in
      let belse = Ir.Builder.new_block ctx.bld ~name:"if.else" in
      let bjoin = Ir.Builder.new_block ctx.bld ~name:"if.join" in
      lower_branch ctx cond bthen.Ir.Block.label belse.Ir.Block.label;
      Ir.Builder.position_at ctx.bld bthen;
      ctx.terminated <- false;
      lower_block ctx then_;
      if not ctx.terminated then Ir.Builder.br ctx.bld bjoin.Ir.Block.label;
      Ir.Builder.position_at ctx.bld belse;
      ctx.terminated <- false;
      lower_block ctx else_;
      if not ctx.terminated then Ir.Builder.br ctx.bld bjoin.Ir.Block.label;
      Ir.Builder.position_at ctx.bld bjoin;
      ctx.terminated <- false
  | Ast.While (cond, body) ->
      let bcond = Ir.Builder.new_block ctx.bld ~name:"while.cond" in
      let bbody = Ir.Builder.new_block ctx.bld ~name:"while.body" in
      let bexit = Ir.Builder.new_block ctx.bld ~name:"while.exit" in
      Ir.Builder.br ctx.bld bcond.Ir.Block.label;
      Ir.Builder.position_at ctx.bld bcond;
      lower_branch ctx cond bbody.Ir.Block.label bexit.Ir.Block.label;
      Ir.Builder.position_at ctx.bld bbody;
      ctx.terminated <- false;
      ctx.loop_stack <-
        (bcond.Ir.Block.label, bexit.Ir.Block.label) :: ctx.loop_stack;
      lower_block ctx body;
      ctx.loop_stack <- List.tl ctx.loop_stack;
      if not ctx.terminated then Ir.Builder.br ctx.bld bcond.Ir.Block.label;
      Ir.Builder.position_at ctx.bld bexit;
      ctx.terminated <- false
  | Ast.For (init, cond, step, body) ->
      let saved_slots = ctx.slots in
      (match init with Some s -> lower_stmt ctx s | None -> ());
      let bcond = Ir.Builder.new_block ctx.bld ~name:"for.cond" in
      let bbody = Ir.Builder.new_block ctx.bld ~name:"for.body" in
      let bstep = Ir.Builder.new_block ctx.bld ~name:"for.step" in
      let bexit = Ir.Builder.new_block ctx.bld ~name:"for.exit" in
      Ir.Builder.br ctx.bld bcond.Ir.Block.label;
      Ir.Builder.position_at ctx.bld bcond;
      (match cond with
      | Some c -> lower_branch ctx c bbody.Ir.Block.label bexit.Ir.Block.label
      | None -> Ir.Builder.br ctx.bld bbody.Ir.Block.label);
      Ir.Builder.position_at ctx.bld bbody;
      ctx.terminated <- false;
      ctx.loop_stack <-
        (bstep.Ir.Block.label, bexit.Ir.Block.label) :: ctx.loop_stack;
      lower_block ctx body;
      ctx.loop_stack <- List.tl ctx.loop_stack;
      if not ctx.terminated then Ir.Builder.br ctx.bld bstep.Ir.Block.label;
      Ir.Builder.position_at ctx.bld bstep;
      ctx.terminated <- false;
      (match step with Some s -> lower_stmt ctx s | None -> ());
      Ir.Builder.br ctx.bld bcond.Ir.Block.label;
      Ir.Builder.position_at ctx.bld bexit;
      ctx.terminated <- false;
      ctx.slots <- saved_slots
  | Ast.Return e ->
      (match (e, ctx.fret) with
      | None, _ -> Ir.Builder.ret ctx.bld None
      | Some e, Some rty ->
          let op, ty = lower_expr ctx e in
          Ir.Builder.ret ctx.bld (Some (coerce ctx (op, ty) rty))
      | Some _, None -> error s.Ast.sline "return value in void function");
      ctx.terminated <- true
  | Ast.Break -> (
      match ctx.loop_stack with
      | (_, bexit) :: _ ->
          Ir.Builder.br ctx.bld bexit;
          ctx.terminated <- true
      | [] -> error s.Ast.sline "break outside a loop")
  | Ast.Continue -> (
      match ctx.loop_stack with
      | (bcont, _) :: _ ->
          Ir.Builder.br ctx.bld bcont;
          ctx.terminated <- true
      | [] -> error s.Ast.sline "continue outside a loop")

and lower_block ctx stmts =
  let saved = ctx.slots in
  List.iter (lower_stmt ctx) stmts;
  ctx.slots <- saved

(* ------------------------------------------------------------------ *)
(* Functions and modules                                               *)
(* ------------------------------------------------------------------ *)

let lower_func env (f : Ast.func) : Ir.Func.t =
  let params =
    List.mapi (fun i p -> (i, ir_ty p.Ast.pty)) f.Ast.fparams
  in
  let ret_ty =
    match f.Ast.fret with Some ty -> ir_ty ty | None -> Ir.Ty.Void
  in
  let func = Ir.Func.create ~name:f.Ast.fname ~params ~ret_ty in
  let bld = Ir.Builder.create func in
  let entry = Ir.Builder.new_block bld ~name:"entry" in
  Ir.Builder.position_at bld entry;
  let ctx =
    {
      env;
      bld;
      slots = [];
      loop_stack = [];
      terminated = false;
      fret = f.Ast.fret;
    }
  in
  (* Spill parameters to allocas so they are assignable; mem2reg
     promotes them straight back. *)
  List.iteri
    (fun i p ->
      let addr = Ir.Builder.alloca bld (ir_ty p.Ast.pty) 1 in
      Ir.Builder.store bld (Ir.Builder.reg i) (Ir.Builder.reg addr);
      ctx.slots <- (p.Ast.pname, Local (addr, p.Ast.pty)) :: ctx.slots)
    f.Ast.fparams;
  lower_block ctx f.Ast.fbody;
  if not ctx.terminated then begin
    match f.Ast.fret with
    | None -> Ir.Builder.ret bld None
    | Some rty -> Ir.Builder.ret bld (Some (zero_of rty))
  end;
  Ir.Builder.finish bld

let lower_global (g : Ast.global) : Ir.Irmod.global =
  let size = List.fold_left ( * ) 1 (if g.Ast.dims = [] then [ 1 ] else g.Ast.dims) in
  let is_float_ty =
    match g.Ast.gty with Ast.Tfloat | Ast.Tdouble -> true | _ -> false
  in
  let ginit =
    match g.Ast.ginit with
    | None -> Ir.Irmod.Zero
    | Some (Ast.Scalar_init e) ->
        let c = const_eval e in
        if is_float_ty then Ir.Irmod.Floats [| cvalue_as_float c |]
        else Ir.Irmod.Ints [| cvalue_as_int c |]
    | Some (Ast.Array_init es) ->
        let cs = List.map const_eval es in
        if is_float_ty then begin
          let a = Array.make size 0.0 in
          List.iteri (fun i c -> a.(i) <- cvalue_as_float c) cs;
          Ir.Irmod.Floats a
        end
        else begin
          let a = Array.make size 0L in
          List.iteri (fun i c -> a.(i) <- cvalue_as_int c) cs;
          Ir.Irmod.Ints a
        end
  in
  { Ir.Irmod.gname = g.Ast.gname; gty = ir_ty g.Ast.gty; gsize = size; ginit }

(** Lower a checked program to an IR module.  [Typecheck.check_program]
    must have succeeded on [prog] with the same [env]. *)
let lower_program env ~module_name (prog : Ast.program) : Ir.Irmod.t =
  let m = Ir.Irmod.create ~name:module_name in
  List.iter
    (function
      | Ast.Dglobal g -> Ir.Irmod.add_global m (lower_global g)
      | Ast.Dfunc f -> Ir.Irmod.add_func m (lower_func env f))
    prog;
  m
