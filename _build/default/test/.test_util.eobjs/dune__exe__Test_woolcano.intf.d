test/test_woolcano.mli:
