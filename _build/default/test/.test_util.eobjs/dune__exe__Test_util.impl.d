test/test_util.ml: Alcotest Array Gen Jitise_util List QCheck QCheck_alcotest String
