test/test_woolcano.ml: Alcotest Jitise_cad Jitise_woolcano List
