test/test_ise.mli:
