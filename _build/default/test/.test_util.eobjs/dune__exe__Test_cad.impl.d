test/test_cad.ml: Alcotest Jitise_cad Jitise_frontend Jitise_hwgen Jitise_ir Jitise_ise Jitise_pivpav Jitise_util Lazy List Option
