test/test_frontend.ml: Alcotest Int64 Jitise_frontend Jitise_ir Jitise_vm List Option Printf QCheck QCheck_alcotest
