test/test_hwgen.ml: Alcotest Jitise_frontend Jitise_hwgen Jitise_ir Jitise_ise Jitise_pivpav List Option String
