test/test_analysis.ml: Alcotest Int64 Jitise_analysis Jitise_frontend Jitise_ir Jitise_ise Jitise_pivpav Jitise_vm List
