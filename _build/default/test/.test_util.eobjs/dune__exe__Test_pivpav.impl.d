test/test_pivpav.ml: Alcotest Array Fun Jitise_frontend Jitise_ir Jitise_pivpav List Option String
