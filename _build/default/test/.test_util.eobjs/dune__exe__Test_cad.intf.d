test/test_cad.mli:
