test/test_ise.ml: Alcotest Array Hashtbl Int64 Jitise_frontend Jitise_ir Jitise_ise Jitise_pivpav Jitise_vm Jitise_workloads List Option Printf QCheck QCheck_alcotest String
