test/test_workloads.ml: Alcotest Format Jitise_frontend Jitise_ir Jitise_vm Jitise_workloads Lazy List Option
