test/test_vm.ml: Alcotest Array Hashtbl Int64 Jitise_frontend Jitise_ir Jitise_vm
