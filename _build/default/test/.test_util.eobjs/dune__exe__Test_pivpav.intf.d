test/test_pivpav.mli:
