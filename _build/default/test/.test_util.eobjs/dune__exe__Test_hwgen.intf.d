test/test_hwgen.mli:
