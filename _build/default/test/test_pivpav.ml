(* Tests for Jitise_pivpav: components, metrics database, estimator. *)

module Ir = Jitise_ir
module Pp = Jitise_pivpav
module F = Jitise_frontend

let db = Pp.Database.create ()

(* ------------------------------------------------------------------ *)
(* Component                                                           *)
(* ------------------------------------------------------------------ *)

let test_component_naming () =
  Alcotest.(check string) "name" "fmul_w64"
    (Pp.Component.name { Pp.Component.opcode = "fmul"; width = 64 })

let test_component_of_instr () =
  let add =
    { Ir.Instr.id = 0; ty = Ir.Ty.I32;
      kind = Ir.Instr.Binop (Ir.Instr.Add, Ir.Builder.ci32 1, Ir.Builder.ci32 2) }
  in
  (match Pp.Component.of_instr add with
  | Some { Pp.Component.opcode = "add"; width = 32 } -> ()
  | _ -> Alcotest.fail "add_w32 expected");
  let load =
    { Ir.Instr.id = 0; ty = Ir.Ty.I32; kind = Ir.Instr.Load (Ir.Builder.reg 1) }
  in
  Alcotest.(check bool) "load unmappable" true (Pp.Component.of_instr load = None);
  (* comparisons are sized by the operand, never by the i1 result *)
  let cmp =
    { Ir.Instr.id = 0; ty = Ir.Ty.I1;
      kind = Ir.Instr.Icmp (Ir.Instr.Islt, Ir.Builder.reg 1, Ir.Builder.ci64 2L) }
  in
  match Pp.Component.of_instr cmp with
  | Some { Pp.Component.width = 64; _ } -> ()
  | _ -> Alcotest.fail "icmp width from operand"

(* ------------------------------------------------------------------ *)
(* Database                                                            *)
(* ------------------------------------------------------------------ *)

let test_database_size () =
  Alcotest.(check bool) "full library" true (Pp.Database.size db > 100)

let test_database_metric_count () =
  Alcotest.(check bool) "more than 90 metrics per core" true
    (Pp.Database.metrics_per_entry db > 90)

let test_database_lookup () =
  Alcotest.(check bool) "exact hit" true
    (Pp.Database.lookup db { Pp.Component.opcode = "add"; width = 32 } <> None);
  (* odd widths snap up *)
  (match Pp.Database.lookup db { Pp.Component.opcode = "add"; width = 20 } with
  | Some e -> Alcotest.(check int) "snapped to 32" 32 e.Pp.Database.component.Pp.Component.width
  | None -> Alcotest.fail "snap failed");
  Alcotest.(check bool) "unknown opcode" true
    (Pp.Database.lookup db { Pp.Component.opcode = "frobnicate"; width = 32 } = None)

let test_database_latency_sanity () =
  let lat op w =
    match Pp.Database.lookup db { Pp.Component.opcode = op; width = w } with
    | Some e -> e.Pp.Database.metrics.Pp.Metrics.latency_ns
    | None -> Alcotest.failf "missing %s_w%d" op w
  in
  Alcotest.(check bool) "and < add" true (lat "and" 32 < lat "add" 32);
  Alcotest.(check bool) "add < mul" true (lat "add" 32 < lat "mul" 32);
  Alcotest.(check bool) "mul < div" true (lat "mul" 32 < lat "sdiv" 32);
  Alcotest.(check bool) "fadd < fdiv" true (lat "fadd" 64 < lat "fdiv" 64);
  Alcotest.(check bool) "wider adders are slower" true (lat "add" 8 < lat "add" 64)

let test_database_area_sanity () =
  let luts op w =
    match Pp.Database.lookup db { Pp.Component.opcode = op; width = w } with
    | Some e -> e.Pp.Database.metrics.Pp.Metrics.luts
    | None -> Alcotest.failf "missing %s" op
  in
  Alcotest.(check bool) "float adder is big" true (luts "fadd" 64 > luts "add" 64);
  Alcotest.(check bool) "fdiv is the biggest" true (luts "fdiv" 64 > luts "fadd" 64);
  (match Pp.Database.lookup db { Pp.Component.opcode = "mul"; width = 16 } with
  | Some e -> Alcotest.(check bool) "small mul on DSP" true (e.Pp.Database.metrics.Pp.Metrics.dsp48 > 0)
  | None -> Alcotest.fail "mul missing")

let test_database_netlist_cache () =
  let db = Pp.Database.create () in
  let c = { Pp.Component.opcode = "fadd"; width = 64 } in
  let first = Pp.Database.fetch_netlist db c in
  Alcotest.(check bool) "blob produced" true
    (match first with Some s -> String.length s > 50 | None -> false);
  let stats1 = Pp.Database.stats db in
  Alcotest.(check int) "first fetch misses" 1 stats1.Pp.Database.netlist_misses;
  ignore (Pp.Database.fetch_netlist db c);
  let stats2 = Pp.Database.stats db in
  Alcotest.(check int) "second fetch hits" 1 stats2.Pp.Database.netlist_hits;
  Alcotest.(check int) "no new miss" 1 stats2.Pp.Database.netlist_misses

let test_database_metrics_deterministic () =
  let a = Pp.Database.create () and b = Pp.Database.create () in
  let c = { Pp.Component.opcode = "mul"; width = 32 } in
  match (Pp.Database.lookup a c, Pp.Database.lookup b c) with
  | Some ea, Some eb ->
      Alcotest.(check bool) "same metrics" true
        (ea.Pp.Database.metrics = eb.Pp.Database.metrics)
  | _ -> Alcotest.fail "lookup failed"

(* ------------------------------------------------------------------ *)
(* Estimator                                                           *)
(* ------------------------------------------------------------------ *)

let dfg_of src =
  let m = (F.Compiler.compile_string ~name:"t" src).F.Compiler.modul in
  let f = Option.get (Ir.Irmod.find_func m "main") in
  Ir.Dfg.of_block f (Ir.Func.block f 0)

let feasible_nodes dfg =
  Array.to_list dfg.Ir.Dfg.nodes
  |> List.filter Ir.Dfg.feasible
  |> List.map (fun n -> n.Ir.Dfg.index)

let test_estimator_float_chain_profitable () =
  let dfg = dfg_of "double g; int main(int n) { double x = n * 1.0; g = (x * 2.5 + 1.5) * (x - 0.5); return 0; }" in
  let nodes = feasible_nodes dfg in
  match Pp.Estimator.estimate db dfg nodes with
  | Some e ->
      Alcotest.(check bool) "sw > hw for float chains" true
        (e.Pp.Estimator.sw_cycles > e.Pp.Estimator.hw_cycles);
      Alcotest.(check bool) "speedup > 2" true (e.Pp.Estimator.speedup > 2.0);
      Alcotest.(check bool) "positive latency" true (e.Pp.Estimator.hw_latency_ns > 0.0);
      Alcotest.(check bool) "area accounted" true (e.Pp.Estimator.luts > 0)
  | None -> Alcotest.fail "estimate failed"

let test_estimator_single_int_op_unprofitable () =
  let dfg = dfg_of "int main(int n) { return n + 1; }" in
  match Pp.Estimator.estimate db dfg (feasible_nodes dfg) with
  | Some e ->
      Alcotest.(check bool) "1-cycle ops do not win" true
        (e.Pp.Estimator.hw_cycles >= e.Pp.Estimator.sw_cycles)
  | None -> Alcotest.fail "estimate failed"

let test_estimator_rejects_infeasible () =
  let dfg = dfg_of "int g; int main(int n) { g = n; return g + 1; }" in
  (* include every node, including the store/gaddr/load *)
  let all = List.init (Ir.Dfg.node_count dfg) Fun.id in
  Alcotest.(check bool) "infeasible nodes estimate to None" true
    (Pp.Estimator.estimate db dfg all = None)

let test_estimator_transfer_cycles () =
  Alcotest.(check int) "2 inputs free" 0 (Pp.Estimator.transfer_cycles ~num_inputs:2);
  Alcotest.(check int) "3 inputs: 1 extra cycle" 1
    (Pp.Estimator.transfer_cycles ~num_inputs:3);
  Alcotest.(check int) "4 inputs: 1 extra cycle" 1
    (Pp.Estimator.transfer_cycles ~num_inputs:4);
  Alcotest.(check int) "8 inputs: 3 extra cycles" 3
    (Pp.Estimator.transfer_cycles ~num_inputs:8)

let test_estimator_critical_path_vs_sum () =
  (* A wide expression tree's critical path is far below the latency sum. *)
  let dfg =
    dfg_of
      "double g; int main(int n) { double a = n * 1.0; g = (a + 1.0) * (a + 2.0) + (a + 3.0) * (a + 4.0); return 0; }"
  in
  let nodes = feasible_nodes dfg in
  match Pp.Estimator.estimate db dfg nodes with
  | Some e ->
      let sum_latency =
        List.fold_left
          (fun acc n ->
            match Pp.Component.of_instr dfg.Ir.Dfg.nodes.(n).Ir.Dfg.instr with
            | Some c -> (
                match Pp.Database.lookup db c with
                | Some entry -> acc +. entry.Pp.Database.metrics.Pp.Metrics.latency_ns
                | None -> acc)
            | None -> acc)
          0.0 nodes
      in
      Alcotest.(check bool) "parallelism exploited" true
        (e.Pp.Estimator.hw_latency_ns < 0.75 *. sum_latency)
  | None -> Alcotest.fail "estimate failed"

let () =
  Alcotest.run "pivpav"
    [
      ( "component",
        [
          Alcotest.test_case "naming" `Quick test_component_naming;
          Alcotest.test_case "of_instr" `Quick test_component_of_instr;
        ] );
      ( "database",
        [
          Alcotest.test_case "size" `Quick test_database_size;
          Alcotest.test_case "90+ metrics" `Quick test_database_metric_count;
          Alcotest.test_case "lookup" `Quick test_database_lookup;
          Alcotest.test_case "latency sanity" `Quick test_database_latency_sanity;
          Alcotest.test_case "area sanity" `Quick test_database_area_sanity;
          Alcotest.test_case "netlist cache" `Quick test_database_netlist_cache;
          Alcotest.test_case "deterministic" `Quick test_database_metrics_deterministic;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "float chain profitable" `Quick
            test_estimator_float_chain_profitable;
          Alcotest.test_case "single int op unprofitable" `Quick
            test_estimator_single_int_op_unprofitable;
          Alcotest.test_case "rejects infeasible" `Quick
            test_estimator_rejects_infeasible;
          Alcotest.test_case "transfer cycles" `Quick test_estimator_transfer_cycles;
          Alcotest.test_case "critical path" `Quick test_estimator_critical_path_vs_sum;
        ] );
    ]
