(* Tests for Jitise_vm: memory, profile, JIT cost model, interpreter. *)

module Ir = Jitise_ir
module Vm = Jitise_vm
module F = Jitise_frontend

let compile src = (F.Compiler.compile_string ~name:"t" src).F.Compiler.modul

let run ?fuel ?jit ?cis ?(n = 0) m =
  Vm.Machine.run ?fuel ?jit ?cis m ~entry:"main"
    ~args:[ Ir.Eval.VInt (Int64.of_int n) ]

let ret_int out =
  match out.Vm.Machine.ret with
  | Some (Ir.Eval.VInt v) -> Int64.to_int v
  | _ -> Alcotest.fail "expected int"

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let test_memory_alloc_store_load () =
  let m = Vm.Memory.create () in
  let base = Vm.Memory.alloc m 4 in
  Vm.Memory.store m (base + 2) (Ir.Eval.VInt 42L);
  (match Vm.Memory.load m (base + 2) with
  | Ir.Eval.VInt 42L -> ()
  | _ -> Alcotest.fail "roundtrip");
  Alcotest.(check bool) "fresh cells are zero" true
    (match Vm.Memory.load m base with Ir.Eval.VInt 0L -> true | _ -> false)

let test_memory_bad_address () =
  let m = Vm.Memory.create () in
  let _ = Vm.Memory.alloc m 2 in
  Alcotest.(check bool) "null deref" true
    (try
       ignore (Vm.Memory.load m 0);
       false
     with Vm.Memory.Bad_address 0 -> true);
  Alcotest.(check bool) "past the stack" true
    (try
       ignore (Vm.Memory.load m 1000);
       false
     with Vm.Memory.Bad_address _ -> true)

let test_memory_frames () =
  let m = Vm.Memory.create () in
  let mark = Vm.Memory.mark m in
  let base = Vm.Memory.alloc m 8 in
  Vm.Memory.release m mark;
  Alcotest.(check bool) "released frame unreadable" true
    (try
       ignore (Vm.Memory.load m base);
       false
     with Vm.Memory.Bad_address _ -> true)

let test_memory_globals () =
  let modul = Ir.Irmod.create ~name:"g" in
  Ir.Irmod.add_global modul
    { Ir.Irmod.gname = "ints"; gty = Ir.Ty.I32; gsize = 3;
      ginit = Ir.Irmod.Ints [| 1L; 2L; 3L |] };
  Ir.Irmod.add_global modul
    { Ir.Irmod.gname = "floats"; gty = Ir.Ty.F64; gsize = 2;
      ginit = Ir.Irmod.Floats [| 1.5; -2.5 |] };
  Ir.Irmod.add_global modul
    { Ir.Irmod.gname = "zeros"; gty = Ir.Ty.F32; gsize = 2; ginit = Ir.Irmod.Zero };
  let m = Vm.Memory.create () in
  Vm.Memory.load_globals m modul;
  Alcotest.(check (array int64)) "ints" [| 1L; 2L; 3L |]
    (Vm.Memory.read_global_ints m "ints" 3);
  Alcotest.(check (array (float 1e-9))) "floats" [| 1.5; -2.5 |]
    (Vm.Memory.read_global_floats m "floats" 2);
  Alcotest.(check (array (float 1e-9))) "zeros" [| 0.0; 0.0 |]
    (Vm.Memory.read_global_floats m "zeros" 2);
  Vm.Memory.write_global_ints m "ints" [| 9L; 8L; 7L |];
  Alcotest.(check (array int64)) "overwritten" [| 9L; 8L; 7L |]
    (Vm.Memory.read_global_ints m "ints" 3);
  Alcotest.(check bool) "unknown global" true
    (try
       ignore (Vm.Memory.global_base m "nope");
       false
     with Invalid_argument _ -> true)

let test_memory_limit () =
  let m = Vm.Memory.create ~limit:128 () in
  Alcotest.(check bool) "out of memory" true
    (try
       ignore (Vm.Memory.alloc m 1024);
       false
     with Vm.Memory.Out_of_memory -> true)

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

let test_profile_counts () =
  let p = Vm.Profile.create () in
  Vm.Profile.bump p ~func:"f" ~label:0 ~instrs:3;
  Vm.Profile.bump p ~func:"f" ~label:0 ~instrs:3;
  Vm.Profile.record p ~func:"f" ~label:1 ~count:5L ~instrs:2;
  Alcotest.(check int64) "bumped twice" 2L (Vm.Profile.count p ~func:"f" ~label:0);
  Alcotest.(check int64) "recorded" 5L (Vm.Profile.count p ~func:"f" ~label:1);
  Alcotest.(check int64) "missing is zero" 0L (Vm.Profile.count p ~func:"g" ~label:0);
  Alcotest.(check int64) "instr total" 16L p.Vm.Profile.executed_instrs

let test_profile_merge () =
  let a = Vm.Profile.create () and b = Vm.Profile.create () in
  Vm.Profile.record a ~func:"f" ~label:0 ~count:2L ~instrs:1;
  Vm.Profile.record b ~func:"f" ~label:0 ~count:3L ~instrs:1;
  Vm.Profile.merge ~into:a b;
  Alcotest.(check int64) "merged" 5L (Vm.Profile.count a ~func:"f" ~label:0)

let test_profile_block_costs_ordering () =
  let m =
    compile
      "int main(int n) { int s = 0; int i; for (i = 0; i < n; i = i + 1) { s = s + i; } return s; }"
  in
  let out = run ~n:50 m in
  let costs = Vm.Profile.block_costs out.Vm.Machine.profile m in
  Alcotest.(check bool) "non-empty" true (costs <> []);
  let rec descending = function
    | a :: b :: rest -> snd a >= snd b && descending (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "sorted by cost" true (descending costs)

(* ------------------------------------------------------------------ *)
(* Machine                                                             *)
(* ------------------------------------------------------------------ *)

let test_machine_phi_swap () =
  (* Parallel phi semantics: swapping two values through a loop must not
     serialize.  After n iterations of (a, b) <- (b, a), with n even the
     original order is restored. *)
  let m =
    compile
      "int main(int n) { int a = 1; int b = 2; int i; for (i = 0; i < n; i = i + 1) { int t = a; a = b; b = t; } return a * 10 + b; }"
  in
  Alcotest.(check int) "even swaps" 12 (ret_int (run ~n:4 m));
  Alcotest.(check int) "odd swaps" 21 (ret_int (run ~n:5 m))

let test_machine_faults () =
  let m = compile "int main(int n) { return 10 / n; }" in
  Alcotest.(check bool) "division fault" true
    (try
       ignore (run ~n:0 m);
       false
     with Vm.Machine.Fault _ -> true);
  let m = compile "int a[4]; int main(int n) { return a[n]; }" in
  Alcotest.(check bool) "wild index" true
    (try
       ignore (run ~n:5000 m);
       false
     with Vm.Machine.Fault _ -> true)

let test_machine_missing_entry () =
  let m = compile "int main(int n) { return 0; }" in
  Alcotest.(check bool) "unknown entry" true
    (try
       ignore (Vm.Machine.run m ~entry:"nope" ~args:[]);
       false
     with Vm.Machine.Fault _ -> true)

let test_machine_fuel () =
  let m = compile "int main(int n) { while (1 == 1) { n = n + 1; } return n; }" in
  Alcotest.(check bool) "infinite loop stopped" true
    (try
       ignore (run ~fuel:10_000L m);
       false
     with Vm.Machine.Fault _ -> true)

let test_machine_clocks () =
  let m =
    compile
      "double v[64]; int main(int n) { int i; double s = 0.0; for (i = 0; i < 64; i = i + 1) { v[i] = i * 0.5; } for (i = 0; i < n; i = i + 1) { s = s + v[i & 63] * v[(i + 1) & 63]; } return s; }"
  in
  let out = run ~n:5000 m in
  Alcotest.(check bool) "native positive" true (out.Vm.Machine.native_cycles > 0.0);
  Alcotest.(check bool) "vm >= 0" true (out.Vm.Machine.vm_cycles > 0.0);
  (* native-model run reports identical clocks *)
  let native = run ~n:5000 ~jit:Vm.Jit_model.native m in
  Alcotest.(check (float 1e-6)) "native model has no overhead"
    native.Vm.Machine.native_cycles native.Vm.Machine.vm_cycles

let test_machine_hot_loop_amortizes () =
  let src =
    "int main(int n) { int s = 0; int i; for (i = 0; i < n; i = i + 1) { s = s + i * 3; } return s; }"
  in
  let m = compile src in
  let small = run ~n:50 m in
  let large = run ~n:1_000_000 m in
  let ratio o = o.Vm.Machine.vm_cycles /. o.Vm.Machine.native_cycles in
  Alcotest.(check bool) "warm-up dominates small runs" true
    (ratio small > ratio large);
  Alcotest.(check bool) "hot loop converges near 1" true (ratio large < 1.05)

let test_machine_deterministic () =
  let m = compile "int main(int n) { return n * 3 + 1; }" in
  let a = run ~n:4 m and b = run ~n:4 m in
  Alcotest.(check int) "same result" (ret_int a) (ret_int b);
  Alcotest.(check (float 1e-9)) "same cycles" a.Vm.Machine.native_cycles
    b.Vm.Machine.native_cycles

let test_machine_ci_call () =
  (* Hand-build a module with a Ci_call and check the registry path:
     main(n) = ci0(n, 7) where ci0(a, b) = a * b, at 2 cycles. *)
  let f = Ir.Func.create ~name:"main" ~params:[ (0, Ir.Ty.I32) ] ~ret_ty:Ir.Ty.I32 in
  let b = Ir.Builder.create f in
  let bb = Ir.Builder.new_block b ~name:"entry" in
  Ir.Builder.position_at b bb;
  let r =
    Ir.Builder.add b Ir.Ty.I32
      (Ir.Instr.Ci_call (0, [ Ir.Builder.reg 0; Ir.Builder.ci32 7 ]))
  in
  Ir.Builder.ret b (Some (Ir.Builder.reg r));
  let f = Ir.Builder.finish b in
  let m = Ir.Irmod.create ~name:"ci" in
  Ir.Irmod.add_func m f;
  let cis = Vm.Machine.empty_cis () in
  Hashtbl.replace cis 0
    {
      Vm.Machine.ci_eval =
        (fun args ->
          Ir.Eval.VInt
            (Int64.mul (Ir.Eval.as_int args.(0)) (Ir.Eval.as_int args.(1))));
      ci_cycles = 2;
    };
  Alcotest.(check int) "ci computes" 42 (ret_int (run ~cis ~n:6 m));
  (* without the registry the call faults *)
  Alcotest.(check bool) "unconfigured ci faults" true
    (try
       ignore (run ~n:6 m);
       false
     with Vm.Machine.Fault _ -> true)

let test_jit_model_translation () =
  Alcotest.(check (float 1e-9)) "native model translates for free" 0.0
    (Vm.Jit_model.module_translation_cycles Vm.Jit_model.native
       ~module_instrs:1000);
  Alcotest.(check bool) "default model charges translation" true
    (Vm.Jit_model.module_translation_cycles Vm.Jit_model.default
       ~module_instrs:1000
    > 0.0)

let test_jit_model_block_cycles () =
  let jit = Vm.Jit_model.default in
  let cold =
    Vm.Jit_model.block_execution_cycles jit ~prior:0L ~ninstrs:10
      ~native_cycles:20
  in
  let hot =
    Vm.Jit_model.block_execution_cycles jit ~prior:1_000L ~ninstrs:10
      ~native_cycles:20
  in
  Alcotest.(check bool) "cold interp is slower" true (cold > 20.0);
  Alcotest.(check bool) "hot is native-or-better" true (hot <= 20.0)

let test_seconds_of_cycles () =
  Alcotest.(check (float 1e-12)) "300 MHz" 1.0
    (Vm.Machine.seconds_of_cycles Ir.Cost.clock_hz)

let () =
  Alcotest.run "vm"
    [
      ( "memory",
        [
          Alcotest.test_case "alloc/store/load" `Quick test_memory_alloc_store_load;
          Alcotest.test_case "bad address" `Quick test_memory_bad_address;
          Alcotest.test_case "frames" `Quick test_memory_frames;
          Alcotest.test_case "globals" `Quick test_memory_globals;
          Alcotest.test_case "limit" `Quick test_memory_limit;
        ] );
      ( "profile",
        [
          Alcotest.test_case "counts" `Quick test_profile_counts;
          Alcotest.test_case "merge" `Quick test_profile_merge;
          Alcotest.test_case "block costs" `Quick test_profile_block_costs_ordering;
        ] );
      ( "machine",
        [
          Alcotest.test_case "phi swap" `Quick test_machine_phi_swap;
          Alcotest.test_case "faults" `Quick test_machine_faults;
          Alcotest.test_case "missing entry" `Quick test_machine_missing_entry;
          Alcotest.test_case "fuel" `Quick test_machine_fuel;
          Alcotest.test_case "clocks" `Quick test_machine_clocks;
          Alcotest.test_case "hot loop amortizes" `Quick test_machine_hot_loop_amortizes;
          Alcotest.test_case "deterministic" `Quick test_machine_deterministic;
          Alcotest.test_case "ci call" `Quick test_machine_ci_call;
        ] );
      ( "jit model",
        [
          Alcotest.test_case "translation" `Quick test_jit_model_translation;
          Alcotest.test_case "block cycles" `Quick test_jit_model_block_cycles;
          Alcotest.test_case "clock" `Quick test_seconds_of_cycles;
        ] );
    ]
