(* Tests for Jitise_hwgen: VHDL generation and CAD project assembly. *)

module Ir = Jitise_ir
module F = Jitise_frontend
module Ise = Jitise_ise
module Pp = Jitise_pivpav
module Hw = Jitise_hwgen

let db = Pp.Database.create ()

(* First MAXMISO candidate of a float-heavy kernel, with its DFG. *)
let candidate_of src =
  let m = (F.Compiler.compile_string ~name:"t" src).F.Compiler.modul in
  let cands = Ise.Maxmiso.of_module m in
  match cands with
  | c :: _ ->
      let f = Option.get (Ir.Irmod.find_func m c.Ise.Candidate.func) in
      let dfg = Ir.Dfg.of_block f (Ir.Func.block f c.Ise.Candidate.block) in
      (dfg, c)
  | [] -> Alcotest.fail "no candidate found"

let float_src =
  "double g; int main(int n) { double x = n * 1.0; g = (x * 2.5 + 1.5) * (x - 0.5) + x * 0.125; return 0; }"

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_vhdl_structure () =
  let dfg, c = candidate_of float_src in
  let v = Hw.Vhdl.generate dfg c in
  Alcotest.(check bool) "entity named by signature" true
    (v.Hw.Vhdl.entity_name = c.Ise.Candidate.signature);
  Alcotest.(check bool) "library clause" true
    (contains v.Hw.Vhdl.source "library ieee;");
  Alcotest.(check bool) "entity declared" true
    (contains v.Hw.Vhdl.source ("entity " ^ v.Hw.Vhdl.entity_name));
  Alcotest.(check bool) "architecture" true
    (contains v.Hw.Vhdl.source "architecture structural");
  Alcotest.(check bool) "output port" true (contains v.Hw.Vhdl.source "q : out");
  Alcotest.(check int) "one component per instruction"
    c.Ise.Candidate.size
    (List.length v.Hw.Vhdl.components);
  Alcotest.(check int) "ports = inputs + output"
    (c.Ise.Candidate.num_inputs + 1)
    v.Hw.Vhdl.num_ports;
  Alcotest.(check bool) "line count plausible" true
    (v.Hw.Vhdl.lines > 10)

let test_vhdl_syntax_check_clean () =
  let dfg, c = candidate_of float_src in
  let v = Hw.Vhdl.generate dfg c in
  Alcotest.(check (list string)) "no syntax problems" [] (Hw.Vhdl.check_syntax v)

let test_vhdl_syntax_check_detects () =
  let dfg, c = candidate_of float_src in
  let v = Hw.Vhdl.generate dfg c in
  let broken = { v with Hw.Vhdl.source = "garbage" } in
  Alcotest.(check bool) "problems reported" true
    (Hw.Vhdl.check_syntax broken <> [])

let test_vhdl_deterministic () =
  let dfg, c = candidate_of float_src in
  let a = Hw.Vhdl.generate dfg c and b = Hw.Vhdl.generate dfg c in
  Alcotest.(check string) "same source" a.Hw.Vhdl.source b.Hw.Vhdl.source

let test_project_creation () =
  let dfg, c = candidate_of float_src in
  let p = Hw.Project.create db dfg c in
  Alcotest.(check string) "named by signature" c.Ise.Candidate.signature
    p.Hw.Project.name;
  Alcotest.(check bool) "netlists fetched" true (p.Hw.Project.netlists <> []);
  Alcotest.(check string) "virtex-4 FX100 target" "xc4vfx100-10ff1517"
    p.Hw.Project.device.Hw.Project.part;
  let luts, ffs, _dsp = Hw.Project.area db p in
  Alcotest.(check bool) "area positive" true (luts > 0 && ffs >= 0);
  Alcotest.(check bool) "fits the device" true (Hw.Project.fits db p)

let test_project_netlist_cache_counting () =
  let fresh_db = Pp.Database.create () in
  let dfg, c = candidate_of float_src in
  let p1 = Hw.Project.create fresh_db dfg c in
  (* duplicate components inside one candidate are deduplicated before
     fetching, so hits + misses = distinct components *)
  Alcotest.(check int) "fetches = distinct components"
    (List.length p1.Hw.Project.netlists)
    (p1.Hw.Project.netlist_cache_hits + p1.Hw.Project.netlist_cache_misses);
  let p2 = Hw.Project.create fresh_db dfg c in
  Alcotest.(check int) "second build hits every netlist"
    (List.length p2.Hw.Project.netlists)
    p2.Hw.Project.netlist_cache_hits

let test_project_over_capacity () =
  let dfg, c = candidate_of float_src in
  let tiny =
    { Hw.Project.virtex4_fx100 with Hw.Project.luts_available = 1 }
  in
  let p = Hw.Project.create ~device:tiny db dfg c in
  Alcotest.(check bool) "does not fit a 1-LUT device" false
    (Hw.Project.fits db p)

let () =
  Alcotest.run "hwgen"
    [
      ( "vhdl",
        [
          Alcotest.test_case "structure" `Quick test_vhdl_structure;
          Alcotest.test_case "syntax clean" `Quick test_vhdl_syntax_check_clean;
          Alcotest.test_case "syntax detects damage" `Quick
            test_vhdl_syntax_check_detects;
          Alcotest.test_case "deterministic" `Quick test_vhdl_deterministic;
        ] );
      ( "project",
        [
          Alcotest.test_case "creation" `Quick test_project_creation;
          Alcotest.test_case "netlist cache" `Quick
            test_project_netlist_cache_counting;
          Alcotest.test_case "capacity" `Quick test_project_over_capacity;
        ] );
    ]
