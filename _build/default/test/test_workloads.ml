(* Tests for Jitise_workloads: every benchmark compiles, verifies, runs
   deterministically, and exhibits the structural properties the
   paper's evaluation depends on. *)

module Ir = Jitise_ir
module F = Jitise_frontend
module Vm = Jitise_vm
module W = Jitise_workloads

(* Compiled workloads are shared across tests (compilation is cheap but
   not free). *)
let compiled =
  lazy
    (List.map (fun w -> (w, W.Workload.compile w)) W.Registry.all)

let small_run (w : W.Workload.t) compiled_result =
  (* a scaled-down dataset keeps the suite fast *)
  let d = List.hd w.W.Workload.datasets in
  let n = max 1 (d.W.Workload.n / 10) in
  W.Workload.run compiled_result { d with W.Workload.n }

let test_registry () =
  Alcotest.(check int) "14 workloads" 14 (List.length W.Registry.all);
  Alcotest.(check int) "10 scientific" 10 (List.length W.Registry.scientific);
  Alcotest.(check int) "4 embedded" 4 (List.length W.Registry.embedded);
  Alcotest.(check bool) "find" true (W.Registry.find "470.lbm" <> None);
  Alcotest.(check bool) "find missing" true (W.Registry.find "999.zz" = None);
  Alcotest.(check int) "names" 14 (List.length W.Registry.names)

let test_all_compile_and_verify () =
  List.iter
    (fun ((w : W.Workload.t), (r : F.Compiler.result)) ->
      Alcotest.(check (list string))
        (w.W.Workload.name ^ " verifies")
        []
        (List.map
           (Format.asprintf "%a" Ir.Verifier.pp_error)
           (Ir.Verifier.check_module r.F.Compiler.modul)))
    (Lazy.force compiled)

let test_all_have_two_datasets () =
  List.iter
    (fun (w : W.Workload.t) ->
      Alcotest.(check bool)
        (w.W.Workload.name ^ " has >= 2 datasets")
        true
        (List.length w.W.Workload.datasets >= 2))
    W.Registry.all

let test_all_run_without_faults () =
  List.iter
    (fun (w, r) ->
      match small_run w r with
      | exception Vm.Machine.Fault m ->
          Alcotest.failf "%s faulted: %s" w.W.Workload.name m
      | out ->
          Alcotest.(check bool)
            (w.W.Workload.name ^ " returns int")
            true
            (match out.Vm.Machine.ret with
            | Some (Ir.Eval.VInt _) -> true
            | _ -> false))
    (Lazy.force compiled)

let test_runs_deterministic () =
  List.iter
    (fun (w, r) ->
      let a = small_run w r and b = small_run w r in
      Alcotest.(check bool)
        (w.W.Workload.name ^ " deterministic")
        true
        (a.Vm.Machine.ret = b.Vm.Machine.ret
        && a.Vm.Machine.native_cycles = b.Vm.Machine.native_cycles))
    (Lazy.force compiled)

let test_datasets_change_profiles () =
  (* the coverage analysis depends on frequency differences between
     datasets; check on one embedded and one scientific app *)
  List.iter
    (fun name ->
      let w = Option.get (W.Registry.find name) in
      let r = List.assq w (Lazy.force compiled) in
      match w.W.Workload.datasets with
      | d1 :: d2 :: _ ->
          let d1 = { d1 with W.Workload.n = max 1 (d1.W.Workload.n / 10) } in
          let d2 = { d2 with W.Workload.n = max 2 (d2.W.Workload.n / 10) } in
          let o1 = W.Workload.run r d1 and o2 = W.Workload.run r d2 in
          Alcotest.(check bool)
            (name ^ " profiles differ")
            true
            (Vm.Profile.to_list o1.Vm.Machine.profile
            <> Vm.Profile.to_list o2.Vm.Machine.profile)
      | _ -> Alcotest.fail "needs two datasets")
    [ "sor"; "429.mcf" ]

let test_scale_contrast () =
  (* the paper's central scale contrast: scientific programs are larger
     than embedded ones in LOC, blocks and instructions *)
  let avg f xs =
    List.fold_left (fun a x -> a +. f x) 0.0 xs /. float_of_int (List.length xs)
  in
  let stats domain =
    Lazy.force compiled
    |> List.filter (fun ((w : W.Workload.t), _) -> w.W.Workload.domain = domain)
    |> List.map (fun (_, (r : F.Compiler.result)) -> r.F.Compiler.stats)
  in
  let s = stats W.Workload.Scientific and e = stats W.Workload.Embedded in
  let loc st = float_of_int st.F.Compiler.loc in
  let blk st = float_of_int st.F.Compiler.blocks in
  let ins st = float_of_int st.F.Compiler.instrs in
  Alcotest.(check bool) "LOC ratio > 5" true (avg loc s > 5.0 *. avg loc e);
  Alcotest.(check bool) "block ratio > 4" true (avg blk s > 4.0 *. avg blk e);
  Alcotest.(check bool) "instr ratio > 2" true (avg ins s > 2.0 *. avg ins e)

let test_embedded_sources_are_single_file () =
  List.iter
    (fun (w : W.Workload.t) ->
      Alcotest.(check int)
        (w.W.Workload.name ^ " single source")
        1
        (List.length w.W.Workload.sources))
    W.Registry.embedded

let test_scientific_sources_are_multi_file () =
  List.iter
    (fun (w : W.Workload.t) ->
      Alcotest.(check bool)
        (w.W.Workload.name ^ " multiple sources")
        true
        (List.length w.W.Workload.sources >= 2))
    W.Registry.scientific

let test_unoptimized_equivalence () =
  (* -O0 and -O3 must agree on the checksum for a fast subset *)
  List.iter
    (fun name ->
      let w = Option.get (W.Registry.find name) in
      let o3 = List.assq w (Lazy.force compiled) in
      let o0 = W.Workload.compile ~optimize:false w in
      let a = small_run w o3 and b = small_run w o0 in
      Alcotest.(check bool) (name ^ ": -O0 = -O3") true
        (a.Vm.Machine.ret = b.Vm.Machine.ret))
    [ "sor"; "fft"; "adpcm"; "whetstone"; "433.milc"; "473.astar" ]

let () =
  Alcotest.run "workloads"
    [
      ( "registry",
        [
          Alcotest.test_case "contents" `Quick test_registry;
          Alcotest.test_case "datasets" `Quick test_all_have_two_datasets;
          Alcotest.test_case "single-file embedded" `Quick
            test_embedded_sources_are_single_file;
          Alcotest.test_case "multi-file scientific" `Quick
            test_scientific_sources_are_multi_file;
        ] );
      ( "execution",
        [
          Alcotest.test_case "compile and verify" `Quick test_all_compile_and_verify;
          Alcotest.test_case "run without faults" `Slow test_all_run_without_faults;
          Alcotest.test_case "deterministic" `Slow test_runs_deterministic;
          Alcotest.test_case "profiles vary with dataset" `Slow
            test_datasets_change_profiles;
          Alcotest.test_case "-O0 = -O3" `Slow test_unoptimized_equivalence;
        ] );
      ( "shape",
        [ Alcotest.test_case "scale contrast" `Quick test_scale_contrast ] );
    ]
