(* Tests for Jitise_ise: candidates, MAXMISO, SingleCut, pruning,
   selection, speedup accounting. *)

module Ir = Jitise_ir
module Vm = Jitise_vm
module F = Jitise_frontend
module Ise = Jitise_ise
module Pp = Jitise_pivpav

let db = Pp.Database.create ()

let compile src = (F.Compiler.compile_string ~name:"t" src).F.Compiler.modul

(* A float-heavy straight-line function: rich candidate material. *)
let float_chain_src =
  "double a[64]; double b[64]; int main(int n) { int i; for (i = 0; i < 64; i = i + 1) { a[i] = i * 0.5; b[i] = i * 0.25; } double s = 0.0; for (i = 0; i < n; i = i + 1) { int k = i & 63; s = s + (a[k] * 1.5 + b[k] * 2.5) * (a[k] - b[k]) + 0.125; } return s; }"

(* ------------------------------------------------------------------ *)
(* MAXMISO partition properties                                        *)
(* ------------------------------------------------------------------ *)

(* All MAXMISO properties checked over every block of a module. *)
let check_maxmiso_properties m =
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_blocks
        (fun blk ->
          let dfg = Ir.Dfg.of_block f blk in
          let cands = Ise.Maxmiso.of_block ~min_size:1 dfg ~func:f.Ir.Func.name in
          (* 1. disjoint *)
          let seen = Hashtbl.create 16 in
          List.iter
            (fun (c : Ise.Candidate.t) ->
              List.iter
                (fun n ->
                  if Hashtbl.mem seen n then
                    Alcotest.failf "node %d in two candidates (%s/bb%d)" n
                      f.Ir.Func.name blk.Ir.Block.label;
                  Hashtbl.replace seen n ())
                c.Ise.Candidate.nodes)
            cands;
          (* 2. cover all feasible nodes *)
          Array.iter
            (fun (node : Ir.Dfg.node) ->
              if Ir.Dfg.feasible node && not (Hashtbl.mem seen node.Ir.Dfg.index)
              then
                Alcotest.failf "feasible node %d uncovered (%s/bb%d)"
                  node.Ir.Dfg.index f.Ir.Func.name blk.Ir.Block.label)
            dfg.Ir.Dfg.nodes;
          (* 3. single output and convex *)
          List.iter
            (fun (c : Ise.Candidate.t) ->
              (match Ise.Candidate.output_nodes dfg c.Ise.Candidate.nodes with
              | [] | [ _ ] -> ()
              | outs ->
                  Alcotest.failf "%d outputs in candidate" (List.length outs));
              if not (Ise.Candidate.is_convex dfg c.Ise.Candidate.nodes) then
                Alcotest.fail "non-convex MAXMISO")
            cands)
        f)
    m.Ir.Irmod.funcs

let test_maxmiso_properties_float () =
  check_maxmiso_properties (compile float_chain_src)

let test_maxmiso_properties_workload () =
  let w = Option.get (Jitise_workloads.Registry.find "sor") in
  check_maxmiso_properties
    (Jitise_workloads.Workload.compile w).Jitise_frontend.Compiler.modul

let test_maxmiso_finds_float_chain () =
  let m = compile float_chain_src in
  let cands = Ise.Maxmiso.of_module m in
  Alcotest.(check bool) "some candidates" true (cands <> []);
  let big = List.filter (fun c -> c.Ise.Candidate.size >= 4) cands in
  Alcotest.(check bool) "a multi-op float chain exists" true (big <> [])

let test_maxmiso_excludes_infeasible () =
  let m = compile float_chain_src in
  List.iter
    (fun (c : Ise.Candidate.t) ->
      List.iter
        (fun op ->
          match op with
          | "load" | "store" | "gep" | "phi" | "alloca" ->
              Alcotest.failf "infeasible op %s in candidate" op
          | _ -> ())
        c.Ise.Candidate.opcodes)
    (Ise.Maxmiso.of_module m)

let test_maxmiso_min_size () =
  let m = compile float_chain_src in
  List.iter
    (fun (c : Ise.Candidate.t) ->
      Alcotest.(check bool) "respects min_size" true (c.Ise.Candidate.size >= 3))
    (Ise.Maxmiso.of_module ~min_size:3 m)

(* ------------------------------------------------------------------ *)
(* Candidate utilities                                                 *)
(* ------------------------------------------------------------------ *)

let test_candidate_signature_stability () =
  (* the same source compiled twice gives identical signatures *)
  let sigs src =
    Ise.Maxmiso.of_module (compile src)
    |> List.map (fun c -> c.Ise.Candidate.signature)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "deterministic" (sigs float_chain_src)
    (sigs float_chain_src)

let test_candidate_signature_distinguishes () =
  let src_a = "int main(int n) { return (n + 1) * 3 - (n >> 2); }" in
  let src_b = "int main(int n) { return (n - 1) * 3 + (n >> 2); }" in
  let sigs src =
    Ise.Maxmiso.of_module (compile src)
    |> List.map (fun c -> c.Ise.Candidate.signature)
  in
  Alcotest.(check bool) "different shapes, different signatures" true
    (sigs src_a <> sigs src_b)

let test_candidate_signature_shared_across_duplicates () =
  (* two identical statements produce structurally identical candidates
     in different blocks with equal signatures *)
  let src =
    "double x[8]; double y[8]; int main(int n) { if (n > 0) { x[0] = x[1] * 2.5 + x[2] * 1.5; } else { y[0] = y[1] * 2.5 + y[2] * 1.5; } return 0; }"
  in
  let sigs =
    Ise.Maxmiso.of_module (compile src)
    |> List.map (fun c -> c.Ise.Candidate.signature)
  in
  match sigs with
  | [ a; b ] -> Alcotest.(check string) "same shape same signature" a b
  | _ -> Alcotest.failf "expected 2 candidates, got %d" (List.length sigs)

let test_candidate_make_rejects () =
  let m = compile float_chain_src in
  let f = Option.get (Ir.Irmod.find_func m "main") in
  let blk = Ir.Func.block f 0 in
  let dfg = Ir.Dfg.of_block f blk in
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Ise.Candidate.make dfg ~func:"main" []);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* SingleCut                                                           *)
(* ------------------------------------------------------------------ *)

let test_singlecut_beats_or_matches_maxmiso () =
  let m = compile "int main(int n) { return ((n * 3 + 7) ^ (n >> 2)) * (n + 1); }" in
  let f = Option.get (Ir.Irmod.find_func m "main") in
  let dfg = Ir.Dfg.of_block f (Ir.Func.block f 0) in
  let result = Ise.Singlecut.of_block db dfg ~func:"main" in
  Alcotest.(check bool) "explores" true (result.Ise.Singlecut.explored > 0);
  Alcotest.(check bool) "finds something" true (result.Ise.Singlecut.best <> None);
  (* the exact search must be at least as good as the best MAXMISO under
     the same input constraint *)
  let gain nodes =
    match Pp.Estimator.estimate db dfg nodes with
    | Some e -> e.Pp.Estimator.sw_cycles - e.Pp.Estimator.hw_cycles
    | None -> 0
  in
  let best_exact =
    match result.Ise.Singlecut.best with
    | Some c -> gain c.Ise.Candidate.nodes
    | None -> 0
  in
  let best_miso =
    List.fold_left
      (fun acc (c : Ise.Candidate.t) ->
        if
          List.length
            (Ise.Candidate.external_input_regs dfg c.Ise.Candidate.nodes)
          <= Ise.Singlecut.default_config.Ise.Singlecut.max_inputs
        then max acc (gain c.Ise.Candidate.nodes)
        else acc)
      0
      (Ise.Maxmiso.of_block ~min_size:1 dfg ~func:"main")
  in
  Alcotest.(check bool) "exact >= maxmiso" true (best_exact >= best_miso)

let test_singlecut_respects_budget () =
  let m = compile float_chain_src in
  let f = Option.get (Ir.Irmod.find_func m "main") in
  (* hot loop block *)
  let blk = Ir.Func.block f (Ir.Func.num_blocks f - 2) in
  let dfg = Ir.Dfg.of_block f blk in
  let config = { Ise.Singlecut.default_config with Ise.Singlecut.step_budget = 50 } in
  let r = Ise.Singlecut.of_block ~config db dfg ~func:"main" in
  Alcotest.(check bool) "stops at budget" true (r.Ise.Singlecut.explored <= 51)

let test_singlecut_gives_up_on_big_blocks () =
  let m = compile float_chain_src in
  let f = Option.get (Ir.Irmod.find_func m "main") in
  let blk = Ir.Func.block f 0 in
  let dfg = Ir.Dfg.of_block f blk in
  let config = { Ise.Singlecut.default_config with Ise.Singlecut.max_nodes = 1 } in
  let r = Ise.Singlecut.of_block ~config db dfg ~func:"main" in
  Alcotest.(check bool) "flagged exhausted" true
    (r.Ise.Singlecut.exhausted || r.Ise.Singlecut.explored = 0)

(* ------------------------------------------------------------------ *)
(* Pruning                                                             *)
(* ------------------------------------------------------------------ *)

let test_prune_name_roundtrip () =
  Alcotest.(check string) "paper's filter" "@50pS3L"
    (Ise.Prune.name Ise.Prune.at_50p_s3l);
  let p = Ise.Prune.of_name "@50pS3L" in
  Alcotest.(check (float 1e-9)) "coverage" 50.0 p.Ise.Prune.coverage_percent;
  Alcotest.(check int) "top blocks" 3 p.Ise.Prune.top_blocks;
  Alcotest.(check bool) "bad name" true
    (try
       ignore (Ise.Prune.of_name "junk");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Ise.Prune.of_name "@150pS3L");
       false
     with Invalid_argument _ -> true)

let test_prune_selects_hottest () =
  let m = compile float_chain_src in
  let out = Vm.Machine.run m ~entry:"main" ~args:[ Ir.Eval.VInt 5000L ] in
  let sel = Ise.Prune.apply Ise.Prune.at_50p_s3l m out.Vm.Machine.profile in
  Alcotest.(check bool) "at most 3 blocks" true
    (List.length sel.Ise.Prune.blocks <= 3);
  Alcotest.(check bool) "non-empty" true (sel.Ise.Prune.blocks <> []);
  (* the single hottest block must be in the selection: it is needed to
     reach 50 % coverage *)
  let hottest = fst (List.hd (Vm.Profile.block_costs out.Vm.Machine.profile m)) in
  Alcotest.(check bool) "hottest kept" true
    (List.mem hottest sel.Ise.Prune.blocks);
  Alcotest.(check bool) "fewer than total" true
    (List.length sel.Ise.Prune.blocks < sel.Ise.Prune.total_blocks)

let test_prune_none_keeps_everything () =
  let m = compile float_chain_src in
  let out = Vm.Machine.run m ~entry:"main" ~args:[ Ir.Eval.VInt 100L ] in
  let sel = Ise.Prune.apply Ise.Prune.none m out.Vm.Machine.profile in
  Alcotest.(check int) "all profiled blocks" sel.Ise.Prune.total_blocks
    (List.length sel.Ise.Prune.blocks)

(* ------------------------------------------------------------------ *)
(* Selection + speedup                                                 *)
(* ------------------------------------------------------------------ *)

let selection_of src n =
  let m = compile src in
  let out = Vm.Machine.run m ~entry:"main" ~args:[ Ir.Eval.VInt (Int64.of_int n) ] in
  let cands = Ise.Maxmiso.of_module m in
  (m, out, Ise.Select.select db m out.Vm.Machine.profile cands)

let test_select_ranks_by_savings () =
  let _, _, sel = selection_of float_chain_src 5000 in
  Alcotest.(check bool) "selected something" true (sel <> []);
  let rec descending = function
    | a :: b :: rest ->
        a.Ise.Select.saved_cycles >= b.Ise.Select.saved_cycles
        && descending (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "ranked" true (descending sel);
  List.iter
    (fun s ->
      Alcotest.(check bool) "non-negative gain" true
        (s.Ise.Select.estimate.Pp.Estimator.sw_cycles
         >= s.Ise.Select.estimate.Pp.Estimator.hw_cycles);
      Alcotest.(check bool) "executed" true (s.Ise.Select.frequency > 0L))
    sel

let test_select_max_candidates () =
  let m = compile float_chain_src in
  let out = Vm.Machine.run m ~entry:"main" ~args:[ Ir.Eval.VInt 5000L ] in
  let cands = Ise.Maxmiso.of_module m in
  let config =
    { Ise.Select.default_config with Ise.Select.max_candidates = Some 1 }
  in
  let sel = Ise.Select.select ~config db m out.Vm.Machine.profile cands in
  Alcotest.(check bool) "capped" true (List.length sel <= 1)

let test_select_lut_budget () =
  let m = compile float_chain_src in
  let out = Vm.Machine.run m ~entry:"main" ~args:[ Ir.Eval.VInt 5000L ] in
  let cands = Ise.Maxmiso.of_module m in
  let config = { Ise.Select.default_config with Ise.Select.lut_budget = Some 0 } in
  let sel = Ise.Select.select ~config db m out.Vm.Machine.profile cands in
  Alcotest.(check int) "zero budget selects nothing" 0 (List.length sel)

let test_select_input_limit () =
  let m = compile float_chain_src in
  let out = Vm.Machine.run m ~entry:"main" ~args:[ Ir.Eval.VInt 5000L ] in
  let cands = Ise.Maxmiso.of_module m in
  let config = { Ise.Select.default_config with Ise.Select.max_inputs = 0 } in
  let sel = Ise.Select.select ~config db m out.Vm.Machine.profile cands in
  List.iter
    (fun s ->
      Alcotest.(check int) "no inputs allowed" 0
        s.Ise.Select.candidate.Ise.Candidate.num_inputs)
    sel

let test_speedup_accounting () =
  let _, out, sel = selection_of float_chain_src 5000 in
  let sp =
    Ise.Speedup.of_selection ~total_cycles:out.Vm.Machine.native_cycles sel
  in
  Alcotest.(check bool) "ratio >= 1" true (sp.Ise.Speedup.ratio >= 1.0);
  Alcotest.(check bool) "saved <= total" true
    (sp.Ise.Speedup.saved_cycles <= sp.Ise.Speedup.total_cycles);
  let none = Ise.Speedup.of_selection ~total_cycles:1000.0 [] in
  Alcotest.(check (float 1e-9)) "no selection, no speedup" 1.0
    none.Ise.Speedup.ratio

let test_covered_instrs () =
  let _, _, sel = selection_of float_chain_src 5000 in
  Alcotest.(check bool) "coverage counts instructions" true
    (Ise.Select.covered_instrs sel
    = List.fold_left (fun a s -> a + s.Ise.Select.candidate.Ise.Candidate.size) 0 sel)

(* ------------------------------------------------------------------ *)
(* Split (input-constrained decomposition)                             *)
(* ------------------------------------------------------------------ *)

(* a 12-input float expression: one big MAXMISO that cannot fit 4 read
   ports *)
let wide_src =
  "double g; double v[16]; int main(int n) { int i; for (i = 0; i < 16; i = i + 1) { v[i] = i * 0.5 + 1.0; } g = v[0] * v[1] + v[2] * v[3] + v[4] * v[5] + v[6] * v[7] + v[8] * v[9] + v[10] * v[11]; return g; }"

let wide_candidate () =
  let m = compile wide_src in
  let cands = Ise.Maxmiso.of_module m in
  let big =
    List.fold_left
      (fun acc (c : Ise.Candidate.t) ->
        match acc with
        | Some (b : Ise.Candidate.t) ->
            if c.Ise.Candidate.size > b.Ise.Candidate.size then Some c else acc
        | None -> Some c)
      None cands
  in
  match big with
  | Some c ->
      let f = Option.get (Ir.Irmod.find_func m c.Ise.Candidate.func) in
      (Ir.Dfg.of_block f (Ir.Func.block f c.Ise.Candidate.block), c)
  | None -> Alcotest.fail "no candidate"

let test_split_respects_bound () =
  let dfg, c = wide_candidate () in
  Alcotest.(check bool) "candidate is wide" true (c.Ise.Candidate.num_inputs > 4);
  let parts = Ise.Split.decompose dfg ~max_inputs:4 c in
  Alcotest.(check bool) "split into several" true (List.length parts > 1);
  List.iter
    (fun (p : Ise.Candidate.t) ->
      Alcotest.(check bool) "each part within bound" true
        (p.Ise.Candidate.num_inputs <= 4))
    parts

let test_split_partitions_nodes () =
  let dfg, c = wide_candidate () in
  let parts = Ise.Split.decompose dfg ~max_inputs:4 c in
  let all = List.concat_map (fun p -> p.Ise.Candidate.nodes) parts in
  Alcotest.(check (list int)) "nodes preserved exactly"
    (List.sort compare c.Ise.Candidate.nodes)
    (List.sort compare all);
  (* every part is a valid single-output convex subgraph (Candidate.make
     would have raised otherwise), and is convex *)
  List.iter
    (fun (p : Ise.Candidate.t) ->
      Alcotest.(check bool) "convex" true
        (Ise.Candidate.is_convex dfg p.Ise.Candidate.nodes))
    parts

let test_split_passthrough_when_narrow () =
  let dfg, c = wide_candidate () in
  let parts = Ise.Split.decompose dfg ~max_inputs:64 c in
  Alcotest.(check int) "unsplit" 1 (List.length parts)

let test_split_constrain_filters_fragments () =
  let dfg, c = wide_candidate () in
  let parts = Ise.Split.constrain (fun _ -> dfg) ~max_inputs:2 [ c ] in
  List.iter
    (fun (p : Ise.Candidate.t) ->
      Alcotest.(check bool) "fragment size >= 2" true (p.Ise.Candidate.size >= 2);
      Alcotest.(check bool) "inputs <= 2" true (p.Ise.Candidate.num_inputs <= 2))
    parts

let test_select_split_wide () =
  let m = compile wide_src in
  let out = Vm.Machine.run m ~entry:"main" ~args:[ Ir.Eval.VInt 1L ] in
  let cands = Ise.Maxmiso.of_module m in
  let strict = { Ise.Select.default_config with Ise.Select.max_inputs = 4 } in
  let splitting = { strict with Ise.Select.split_wide = true } in
  let sel_strict = Ise.Select.select ~config:strict db m out.Vm.Machine.profile cands in
  let sel_split =
    Ise.Select.select ~config:splitting db m out.Vm.Machine.profile cands
  in
  (* splitting recovers candidates a strict port limit would drop *)
  Alcotest.(check bool) "split recovers candidates" true
    (List.length sel_split >= List.length sel_strict);
  List.iter
    (fun s ->
      Alcotest.(check bool) "within port limit" true
        (s.Ise.Select.candidate.Ise.Candidate.num_inputs <= 4))
    sel_split

(* Property: over random small integer programs the MAXMISO partition
   invariants hold. *)
let gen_program =
  let open QCheck.Gen in
  let expr_leaf = oneof [ map string_of_int (int_range 0 20); return "n"; return "i" ] in
  let stmt =
    map2
      (fun op (a, b) -> Printf.sprintf "s = s %s (%s %s %s);" "+" a op b)
      (oneofl [ "+"; "*"; "^"; "&"; ">>" ])
      (pair expr_leaf expr_leaf)
  in
  map
    (fun stmts ->
      Printf.sprintf
        "int main(int n) { int s = 0; int i; for (i = 0; i < n; i = i + 1) { %s } return s; }"
        (String.concat " " stmts))
    (list_size (int_range 1 8) stmt)

let prop_maxmiso_partition_random =
  QCheck.Test.make ~name:"maxmiso partitions random programs" ~count:50
    (QCheck.make gen_program)
    (fun src ->
      check_maxmiso_properties (compile src);
      true)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ise"
    [
      ( "maxmiso",
        [
          Alcotest.test_case "partition (float chain)" `Quick
            test_maxmiso_properties_float;
          Alcotest.test_case "partition (sor workload)" `Quick
            test_maxmiso_properties_workload;
          Alcotest.test_case "finds float chains" `Quick
            test_maxmiso_finds_float_chain;
          Alcotest.test_case "excludes infeasible" `Quick
            test_maxmiso_excludes_infeasible;
          Alcotest.test_case "min size" `Quick test_maxmiso_min_size;
        ]
        @ qsuite [ prop_maxmiso_partition_random ] );
      ( "candidate",
        [
          Alcotest.test_case "signature stable" `Quick
            test_candidate_signature_stability;
          Alcotest.test_case "signature distinguishes" `Quick
            test_candidate_signature_distinguishes;
          Alcotest.test_case "signature shared" `Quick
            test_candidate_signature_shared_across_duplicates;
          Alcotest.test_case "make rejects" `Quick test_candidate_make_rejects;
        ] );
      ( "singlecut",
        [
          Alcotest.test_case "exact >= maxmiso" `Quick
            test_singlecut_beats_or_matches_maxmiso;
          Alcotest.test_case "budget" `Quick test_singlecut_respects_budget;
          Alcotest.test_case "big blocks skipped" `Quick
            test_singlecut_gives_up_on_big_blocks;
        ] );
      ( "prune",
        [
          Alcotest.test_case "name roundtrip" `Quick test_prune_name_roundtrip;
          Alcotest.test_case "selects hottest" `Quick test_prune_selects_hottest;
          Alcotest.test_case "no filter" `Quick test_prune_none_keeps_everything;
        ] );
      ( "split",
        [
          Alcotest.test_case "respects bound" `Quick test_split_respects_bound;
          Alcotest.test_case "partitions nodes" `Quick test_split_partitions_nodes;
          Alcotest.test_case "passthrough" `Quick test_split_passthrough_when_narrow;
          Alcotest.test_case "constrain filters" `Quick
            test_split_constrain_filters_fragments;
        ] );
      ( "select",
        [
          Alcotest.test_case "ranking" `Quick test_select_ranks_by_savings;
          Alcotest.test_case "max candidates" `Quick test_select_max_candidates;
          Alcotest.test_case "lut budget" `Quick test_select_lut_budget;
          Alcotest.test_case "input limit" `Quick test_select_input_limit;
          Alcotest.test_case "split wide" `Quick test_select_split_wide;
          Alcotest.test_case "speedup" `Quick test_speedup_accounting;
          Alcotest.test_case "covered instrs" `Quick test_covered_instrs;
        ] );
    ]
