(* Tests for Jitise_ir: types, instructions, eval semantics, builder,
   verifier, CFG, dominators, DFG, cost model, printer. *)

module Ir = Jitise_ir
open Ir

(* A hand-built function used by several suites:

   int f(x) {            bb0: cmp = x < 10 ? bb1 : bb2
     if (x < 10)          bb1: a = x + 1        -> bb3
       return (x+1)*2     bb2: b = x * 3        -> bb3
     else return x*3      bb3: p = phi [bb1: a2, bb2: b]; ret p
   } *)
let diamond_func () =
  let f = Func.create ~name:"diamond" ~params:[ (0, Ty.I32) ] ~ret_ty:Ty.I32 in
  let b = Builder.create f in
  let bb0 = Builder.new_block b ~name:"entry" in
  let bb1 = Builder.new_block b ~name:"then" in
  let bb2 = Builder.new_block b ~name:"else" in
  let bb3 = Builder.new_block b ~name:"join" in
  Builder.position_at b bb0;
  let cmp = Builder.icmp b Instr.Islt (Builder.reg 0) (Builder.ci32 10) in
  Builder.cond_br b (Builder.reg cmp) bb1.Block.label bb2.Block.label;
  Builder.position_at b bb1;
  let a = Builder.binop b Instr.Add Ty.I32 (Builder.reg 0) (Builder.ci32 1) in
  let a2 = Builder.binop b Instr.Mul Ty.I32 (Builder.reg a) (Builder.ci32 2) in
  Builder.br b bb3.Block.label;
  Builder.position_at b bb2;
  let c = Builder.binop b Instr.Mul Ty.I32 (Builder.reg 0) (Builder.ci32 3) in
  Builder.br b bb3.Block.label;
  Builder.position_at b bb3;
  let p =
    Builder.phi b Ty.I32
      [ (bb1.Block.label, Builder.reg a2); (bb2.Block.label, Builder.reg c) ]
  in
  Builder.ret b (Some (Builder.reg p));
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* Ty                                                                  *)
(* ------------------------------------------------------------------ *)

let test_ty_bits () =
  Alcotest.(check int) "i1" 1 (Ty.bits Ty.I1);
  Alcotest.(check int) "i32" 32 (Ty.bits Ty.I32);
  Alcotest.(check int) "f64" 64 (Ty.bits Ty.F64);
  Alcotest.(check int) "ptr is machine word" 32 (Ty.bits Ty.Ptr);
  Alcotest.(check int) "void" 0 (Ty.bits Ty.Void)

let test_ty_roundtrip () =
  List.iter
    (fun ty ->
      Alcotest.(check bool) "roundtrip" true
        (Ty.of_string (Ty.to_string ty) = Some ty))
    [ Ty.I1; Ty.I8; Ty.I16; Ty.I32; Ty.I64; Ty.F32; Ty.F64; Ty.Ptr; Ty.Void ];
  Alcotest.(check bool) "unknown" true (Ty.of_string "bogus" = None)

let test_ty_classes () =
  Alcotest.(check bool) "int" true (Ty.is_int Ty.I8);
  Alcotest.(check bool) "not int" false (Ty.is_int Ty.F32);
  Alcotest.(check bool) "float" true (Ty.is_float Ty.F64);
  Alcotest.(check bool) "scalar" true (Ty.is_scalar Ty.Ptr);
  Alcotest.(check bool) "void not scalar" false (Ty.is_scalar Ty.Void)

(* ------------------------------------------------------------------ *)
(* Instr classification                                                *)
(* ------------------------------------------------------------------ *)

let test_instr_classification () =
  let add = Instr.Binop (Instr.Add, Builder.ci32 1, Builder.ci32 2) in
  let load = Instr.Load (Builder.reg 0) in
  let store = Instr.Store (Builder.ci32 1, Builder.reg 0) in
  let call = Instr.Call ("f", []) in
  Alcotest.(check bool) "add feasible" true (Instr.hw_feasible add);
  Alcotest.(check bool) "load infeasible" false (Instr.hw_feasible load);
  Alcotest.(check bool) "store infeasible" false (Instr.hw_feasible store);
  Alcotest.(check bool) "call infeasible" false (Instr.hw_feasible call);
  Alcotest.(check bool) "store memory" true (Instr.accesses_memory store);
  Alcotest.(check bool) "add pure" false (Instr.has_side_effect add);
  Alcotest.(check bool) "call effectful" true (Instr.has_side_effect call)

let test_instr_operands () =
  let sel = Instr.Select (Builder.reg 1, Builder.reg 2, Builder.ci32 0) in
  Alcotest.(check int) "select arity" 3 (List.length (Instr.operands sel));
  Alcotest.(check (list int)) "used regs" [ 1; 2 ] (Instr.used_regs sel);
  Alcotest.(check (list int)) "successors" [ 4; 7 ]
    (Instr.successors (Instr.Cond_br (Builder.reg 0, 4, 7)))

let test_instr_names () =
  Alcotest.(check string) "binop name" "fmul" (Instr.binop_name Instr.Fmul);
  Alcotest.(check bool) "binop roundtrip" true
    (Instr.binop_of_name "ashr" = Some Instr.Ashr);
  Alcotest.(check bool) "icmp roundtrip" true
    (Instr.icmp_of_name (Instr.icmp_name Instr.Iuge) = Some Instr.Iuge);
  Alcotest.(check bool) "cast roundtrip" true
    (Instr.cast_of_name (Instr.cast_name Instr.Fptosi) = Some Instr.Fptosi);
  Alcotest.(check string) "opcode of icmp" "icmp.slt"
    (Instr.opcode_name (Instr.Icmp (Instr.Islt, Builder.ci32 0, Builder.ci32 1)))

(* ------------------------------------------------------------------ *)
(* Eval                                                                *)
(* ------------------------------------------------------------------ *)

let vint = function Eval.VInt v -> v | _ -> Alcotest.fail "expected int"
let vfloat = function Eval.VFloat v -> v | _ -> Alcotest.fail "expected float"

let test_eval_wrapping () =
  let v =
    Eval.eval_binop Ty.I32 Instr.Add (Eval.VInt 2147483647L) (Eval.VInt 1L)
  in
  Alcotest.(check int64) "i32 wraps" (-2147483648L) (vint v);
  let v = Eval.eval_binop Ty.I8 Instr.Mul (Eval.VInt 100L) (Eval.VInt 3L) in
  Alcotest.(check int64) "i8 wraps" 44L (vint v)

let test_eval_division () =
  Alcotest.(check int64) "sdiv" (-3L)
    (vint (Eval.eval_binop Ty.I32 Instr.Sdiv (Eval.VInt (-7L)) (Eval.VInt 2L)));
  Alcotest.(check int64) "udiv treats bits unsigned" 2147483644L
    (vint (Eval.eval_binop Ty.I32 Instr.Udiv (Eval.VInt (-7L)) (Eval.VInt 2L)));
  Alcotest.(check bool) "division by zero" true
    (try
       ignore (Eval.eval_binop Ty.I32 Instr.Sdiv (Eval.VInt 1L) (Eval.VInt 0L));
       false
     with Eval.Division_by_zero -> true)

let test_eval_shifts () =
  Alcotest.(check int64) "shl" 8L
    (vint (Eval.eval_binop Ty.I32 Instr.Shl (Eval.VInt 1L) (Eval.VInt 3L)));
  Alcotest.(check int64) "lshr of negative i32" 2147483644L
    (vint (Eval.eval_binop Ty.I32 Instr.Lshr (Eval.VInt (-7L)) (Eval.VInt 1L)));
  Alcotest.(check int64) "ashr keeps sign" (-4L)
    (vint (Eval.eval_binop Ty.I32 Instr.Ashr (Eval.VInt (-7L)) (Eval.VInt 1L)));
  Alcotest.(check int64) "shift amount masked" 2L
    (vint (Eval.eval_binop Ty.I32 Instr.Shl (Eval.VInt 1L) (Eval.VInt 33L)))

let test_eval_icmp () =
  let t p a b = vint (Eval.eval_icmp p (Eval.VInt a) (Eval.VInt b)) = 1L in
  Alcotest.(check bool) "slt" true (t Instr.Islt (-1L) 0L);
  Alcotest.(check bool) "ult sees -1 as max" false (t Instr.Iult (-1L) 0L);
  Alcotest.(check bool) "eq" true (t Instr.Ieq 5L 5L);
  Alcotest.(check bool) "uge" true (t Instr.Iuge (-1L) 1L)

let test_eval_fcmp_nan () =
  let nan_cmp p =
    vint (Eval.eval_fcmp p (Eval.VFloat Float.nan) (Eval.VFloat 1.0))
  in
  Alcotest.(check int64) "nan unordered oeq" 0L (nan_cmp Instr.Foeq);
  Alcotest.(check int64) "nan unordered one" 0L (nan_cmp Instr.Fone);
  Alcotest.(check int64) "olt" 1L
    (vint (Eval.eval_fcmp Instr.Folt (Eval.VFloat 1.0) (Eval.VFloat 2.0)))

let test_eval_casts () =
  Alcotest.(check int64) "trunc" (-1L)
    (vint (Eval.eval_cast Instr.Trunc ~from_:Ty.I32 ~to_:Ty.I8 (Eval.VInt 255L)));
  Alcotest.(check int64) "zext i8" 255L
    (vint (Eval.eval_cast Instr.Zext ~from_:Ty.I8 ~to_:Ty.I32 (Eval.VInt (-1L))));
  Alcotest.(check int64) "sext i8" (-1L)
    (vint (Eval.eval_cast Instr.Sext ~from_:Ty.I8 ~to_:Ty.I32 (Eval.VInt (-1L))));
  Alcotest.(check int64) "fptosi" 3L
    (vint (Eval.eval_cast Instr.Fptosi ~from_:Ty.F64 ~to_:Ty.I32 (Eval.VFloat 3.7)));
  Alcotest.(check (float 1e-9)) "sitofp" 4.0
    (vfloat (Eval.eval_cast Instr.Sitofp ~from_:Ty.I32 ~to_:Ty.F64 (Eval.VInt 4L)));
  Alcotest.(check int64) "fptosi of nan" 0L
    (vint
       (Eval.eval_cast Instr.Fptosi ~from_:Ty.F64 ~to_:Ty.I32
          (Eval.VFloat Float.nan)))

let test_eval_f32_rounding () =
  let v =
    Eval.eval_binop Ty.F32 Instr.Fadd (Eval.VFloat 0.1) (Eval.VFloat 0.2)
  in
  let f64 = 0.1 +. 0.2 in
  Alcotest.(check bool) "f32 differs from f64 sum" true (vfloat v <> f64)

let test_eval_i1_normalization () =
  Alcotest.(check int64) "i1 const true is 1" 1L
    (vint (Eval.of_const (Instr.Cint (1L, Ty.I1))));
  Alcotest.(check int64) "i1 wraps to 0/1" 1L
    (vint (Eval.of_const (Instr.Cint (3L, Ty.I1))))

let test_eval_select_is_true () =
  Alcotest.(check bool) "zero false" false (Eval.is_true (Eval.VInt 0L));
  Alcotest.(check bool) "float true" true (Eval.is_true (Eval.VFloat 0.5));
  Alcotest.(check int64) "select picks" 7L
    (vint (Eval.eval_select (Eval.VInt 1L) (Eval.VInt 7L) (Eval.VInt 9L)))

let prop_i32_add_matches_int32 =
  QCheck.Test.make ~name:"i32 add matches Int32 semantics" ~count:1000
    QCheck.(pair int32 int32)
    (fun (a, b) ->
      let v =
        Eval.eval_binop Ty.I32 Instr.Add
          (Eval.VInt (Int64.of_int32 a))
          (Eval.VInt (Int64.of_int32 b))
      in
      vint v = Int64.of_int32 (Int32.add a b))

let prop_i32_mul_matches_int32 =
  QCheck.Test.make ~name:"i32 mul matches Int32 semantics" ~count:1000
    QCheck.(pair int32 int32)
    (fun (a, b) ->
      let v =
        Eval.eval_binop Ty.I32 Instr.Mul
          (Eval.VInt (Int64.of_int32 a))
          (Eval.VInt (Int64.of_int32 b))
      in
      vint v = Int64.of_int32 (Int32.mul a b))

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize idempotent" ~count:1000
    QCheck.(pair (oneofl [ Ty.I1; Ty.I8; Ty.I16; Ty.I32; Ty.I64 ]) int64)
    (fun (ty, v) ->
      let n = Eval.normalize ty v in
      Eval.normalize ty n = n)

(* ------------------------------------------------------------------ *)
(* Builder + Verifier                                                  *)
(* ------------------------------------------------------------------ *)

let test_builder_diamond_valid () =
  let f = diamond_func () in
  Alcotest.(check (list string)) "verifies" []
    (List.map
       (Format.asprintf "%a" Verifier.pp_error)
       (Verifier.check_func f));
  Alcotest.(check int) "blocks" 4 (Func.num_blocks f);
  Alcotest.(check int) "instrs" 5 (Func.num_instrs f)

let test_verifier_catches_undefined_reg () =
  let f = Func.create ~name:"bad" ~params:[] ~ret_ty:Ty.I32 in
  let b = Builder.create f in
  let bb = Builder.new_block b ~name:"entry" in
  Builder.position_at b bb;
  let r = Builder.binop b Instr.Add Ty.I32 (Builder.reg 99) (Builder.ci32 1) in
  Builder.ret b (Some (Builder.reg r));
  let f = Builder.finish b in
  Alcotest.(check bool) "error reported" true (Verifier.check_func f <> [])

let test_verifier_catches_bad_branch () =
  let f = Func.create ~name:"bad" ~params:[] ~ret_ty:Ty.Void in
  let b = Builder.create f in
  let bb = Builder.new_block b ~name:"entry" in
  Builder.position_at b bb;
  Builder.br b 5;
  let f = Builder.finish b in
  Alcotest.(check bool) "bad target" true (Verifier.check_func f <> [])

let test_verifier_catches_type_mismatch () =
  let f = Func.create ~name:"bad" ~params:[ (0, Ty.F64) ] ~ret_ty:Ty.I32 in
  let b = Builder.create f in
  let bb = Builder.new_block b ~name:"entry" in
  Builder.position_at b bb;
  (* integer add on a float-typed operand *)
  let r = Builder.binop b Instr.Add Ty.I32 (Builder.reg 0) (Builder.ci32 1) in
  Builder.ret b (Some (Builder.reg r));
  let f = Builder.finish b in
  Alcotest.(check bool) "type error found" true (Verifier.check_func f <> [])

let test_verifier_catches_ret_mismatch () =
  let f = Func.create ~name:"bad" ~params:[] ~ret_ty:Ty.Void in
  let b = Builder.create f in
  let bb = Builder.new_block b ~name:"entry" in
  Builder.position_at b bb;
  Builder.ret b (Some (Builder.ci32 1));
  let f = Builder.finish b in
  Alcotest.(check bool) "ret in void" true (Verifier.check_func f <> [])

let test_verifier_module () =
  let m = Irmod.create ~name:"m" in
  Irmod.add_func m (diamond_func ());
  Alcotest.(check bool) "module clean" true (Verifier.check_module m = []);
  Verifier.check_module_exn m

(* ------------------------------------------------------------------ *)
(* Irmod                                                               *)
(* ------------------------------------------------------------------ *)

let test_irmod_duplicates () =
  let m = Irmod.create ~name:"m" in
  Irmod.add_func m (diamond_func ());
  Alcotest.(check bool) "dup func rejected" true
    (try
       Irmod.add_func m (diamond_func ());
       false
     with Invalid_argument _ -> true);
  Irmod.add_global m
    { Irmod.gname = "g"; gty = Ty.I32; gsize = 4; ginit = Irmod.Zero };
  Alcotest.(check bool) "dup global rejected" true
    (try
       Irmod.add_global m
         { Irmod.gname = "g"; gty = Ty.I32; gsize = 1; ginit = Irmod.Zero };
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "find" true (Irmod.find_func m "diamond" <> None);
  Alcotest.(check bool) "find missing" true (Irmod.find_func m "nope" = None)

(* ------------------------------------------------------------------ *)
(* Cfg / Dom                                                           *)
(* ------------------------------------------------------------------ *)

let test_cfg_diamond () =
  let f = diamond_func () in
  let cfg = Cfg.of_func f in
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ] (Cfg.succs cfg 0);
  Alcotest.(check (list int)) "join preds" [ 1; 2 ]
    (List.sort compare (Cfg.preds cfg 3));
  let rpo = Cfg.reverse_postorder cfg in
  Alcotest.(check int) "rpo covers all" 4 (List.length rpo);
  Alcotest.(check int) "rpo starts at entry" 0 (List.hd rpo)

let test_cfg_unreachable () =
  let f = Func.create ~name:"u" ~params:[] ~ret_ty:Ty.Void in
  let b = Builder.create f in
  let bb0 = Builder.new_block b ~name:"entry" in
  let _bb1 = Builder.new_block b ~name:"island" in
  Builder.position_at b bb0;
  Builder.ret b None;
  let f = Builder.finish b in
  let reach = Cfg.reachable (Cfg.of_func f) in
  Alcotest.(check bool) "entry reachable" true reach.(0);
  Alcotest.(check bool) "island unreachable" false reach.(1)

let test_dom_diamond () =
  let f = diamond_func () in
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  Alcotest.(check int) "idom of then" 0 dom.Dom.idom.(1);
  Alcotest.(check int) "idom of else" 0 dom.Dom.idom.(2);
  Alcotest.(check int) "idom of join" 0 dom.Dom.idom.(3);
  Alcotest.(check bool) "entry dominates all" true (Dom.dominates dom 0 3);
  Alcotest.(check bool) "then does not dominate join" false
    (Dom.dominates dom 1 3);
  let fr = Dom.frontiers dom cfg in
  Alcotest.(check (list int)) "frontier of then" [ 3 ] fr.(1);
  Alcotest.(check (list int)) "frontier of else" [ 3 ] fr.(2)

(* ------------------------------------------------------------------ *)
(* Dfg                                                                 *)
(* ------------------------------------------------------------------ *)

let straightline_block () =
  (* bb0: t1 = x + 1; t2 = t1 * 2; t3 = load p; t4 = t2 + x; ret t4
     t1 feeds only t2; t2 feeds t4 (single consumers) *)
  let f =
    Func.create ~name:"s" ~params:[ (0, Ty.I32); (1, Ty.Ptr) ] ~ret_ty:Ty.I32
  in
  let b = Builder.create f in
  let bb = Builder.new_block b ~name:"entry" in
  Builder.position_at b bb;
  let t1 = Builder.binop b Instr.Add Ty.I32 (Builder.reg 0) (Builder.ci32 1) in
  let t2 = Builder.binop b Instr.Mul Ty.I32 (Builder.reg t1) (Builder.ci32 2) in
  let _t3 = Builder.load b Ty.I32 (Builder.reg 1) in
  let t4 = Builder.binop b Instr.Add Ty.I32 (Builder.reg t2) (Builder.reg 0) in
  Builder.ret b (Some (Builder.reg t4));
  let f = Builder.finish b in
  (f, Ir.Func.block f 0)

let test_dfg_edges () =
  let f, blk = straightline_block () in
  let dfg = Dfg.of_block f blk in
  Alcotest.(check int) "nodes" 4 (Dfg.node_count dfg);
  (* t1 (node 0) feeds t2 (node 1) *)
  Alcotest.(check (list int)) "t1 succs" [ 1 ] dfg.Dfg.nodes.(0).Dfg.succs;
  Alcotest.(check (list int)) "t4 preds" [ 1 ] dfg.Dfg.nodes.(3).Dfg.preds;
  Alcotest.(check bool) "t4 escapes (terminator)" true
    dfg.Dfg.nodes.(3).Dfg.external_uses;
  Alcotest.(check bool) "load infeasible" false (Dfg.feasible dfg.Dfg.nodes.(2))

let test_dfg_external_inputs () =
  let f, blk = straightline_block () in
  let dfg = Dfg.of_block f blk in
  (* node 0 reads param %0 (external) and a constant *)
  Alcotest.(check int) "one external reg input" 1
    (List.length (Dfg.external_inputs dfg 0));
  Alcotest.(check bool) "is block output" true (Dfg.is_block_output dfg 3)

let test_dfg_topological () =
  let f, blk = straightline_block () in
  let dfg = Dfg.of_block f blk in
  Alcotest.(check (list int)) "topo order" [ 0; 1; 2; 3 ]
    (Dfg.topological_order dfg)

(* ------------------------------------------------------------------ *)
(* Cost                                                                *)
(* ------------------------------------------------------------------ *)

let test_cost_ordering () =
  let c k = Cost.cycles k in
  let add = Instr.Binop (Instr.Add, Builder.ci32 1, Builder.ci32 1) in
  let mul = Instr.Binop (Instr.Mul, Builder.ci32 1, Builder.ci32 1) in
  let div = Instr.Binop (Instr.Sdiv, Builder.ci32 1, Builder.ci32 1) in
  let fadd = Instr.Binop (Instr.Fadd, Builder.cf64 1., Builder.cf64 1.) in
  let fdiv = Instr.Binop (Instr.Fdiv, Builder.cf64 1., Builder.cf64 1.) in
  Alcotest.(check bool) "add < mul" true (c add < c mul);
  Alcotest.(check bool) "mul < div" true (c mul < c div);
  Alcotest.(check bool) "int add << soft-float add" true (c add * 10 <= c fadd);
  Alcotest.(check bool) "fadd < fdiv" true (c fadd < c fdiv)

let test_cost_block () =
  let f, blk = straightline_block () in
  ignore f;
  Alcotest.(check bool) "block cost positive" true (Cost.block_cycles blk > 0)

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let test_printer_output () =
  let m = Irmod.create ~name:"m" in
  Irmod.add_global m
    { Irmod.gname = "tbl"; gty = Ty.F64; gsize = 2; ginit = Irmod.Floats [| 1.5; 2.5 |] };
  Irmod.add_func m (diamond_func ());
  let s = Printer.module_to_string m in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module header" true (contains "module m");
  Alcotest.(check bool) "global" true (contains "global @tbl");
  Alcotest.(check bool) "function" true (contains "func i32 @diamond");
  Alcotest.(check bool) "phi" true (contains "phi i32");
  Alcotest.(check bool) "condbr" true (contains "condbr")

(* ------------------------------------------------------------------ *)
(* Parser round trip                                                   *)
(* ------------------------------------------------------------------ *)

let roundtrip m =
  let printed = Printer.module_to_string m in
  let reparsed = Parser.parse_module printed in
  Alcotest.(check string) "round trip is a fixpoint" printed
    (Printer.module_to_string reparsed);
  Alcotest.(check bool) "reparsed module verifies" true
    (Verifier.check_module reparsed = [])

let test_parser_roundtrip_diamond () =
  let m = Irmod.create ~name:"m" in
  Irmod.add_global m
    { Irmod.gname = "tbl"; gty = Ty.F64; gsize = 2;
      ginit = Irmod.Floats [| 1.5; -2.5 |] };
  Irmod.add_global m
    { Irmod.gname = "z"; gty = Ty.I32; gsize = 4; ginit = Irmod.Zero };
  Irmod.add_global m
    { Irmod.gname = "iv"; gty = Ty.I64; gsize = 2; ginit = Irmod.Ints [| -7L; 9L |] };
  Irmod.add_func m (diamond_func ());
  roundtrip m

let test_parser_roundtrip_all_instr_kinds () =
  let f =
    Func.create ~name:"kinds" ~params:[ (0, Ty.I32); (1, Ty.F64) ]
      ~ret_ty:Ty.I32
  in
  let b = Builder.create f in
  let bb0 = Builder.new_block b ~name:"entry" in
  let bb1 = Builder.new_block b ~name:"next" in
  let bb2 = Builder.new_block b ~name:"exit" in
  Builder.position_at b bb0;
  let add = Builder.binop b Instr.Add Ty.I32 (Builder.reg 0) (Builder.ci32 7) in
  let fm = Builder.binop b Instr.Fmul Ty.F64 (Builder.reg 1) (Builder.cf64 2.5) in
  let ic = Builder.icmp b Instr.Iult (Builder.reg add) (Builder.ci32 100) in
  let _fc = Builder.fcmp b Instr.Foge (Builder.reg fm) (Builder.cf64 0.0) in
  let sel = Builder.select b Ty.I32 (Builder.reg ic) (Builder.reg add) (Builder.ci32 0) in
  let al = Builder.alloca b Ty.I32 4 in
  let _st = Builder.store b (Builder.reg sel) (Builder.reg al) in
  let ld = Builder.load b Ty.I32 (Builder.reg al) in
  let _gep = Builder.gep b (Builder.reg al) (Builder.reg ld) in
  let _ga = Builder.add b Ty.Ptr (Instr.Gaddr "glob") in
  let cl = Builder.call b Ty.F64 "sqrt" [ Builder.reg fm ] in
  let tr = Builder.cast b Instr.Fptosi Ty.I32 (Builder.reg cl) in
  Builder.set_term b
    (Instr.Switch (Builder.reg tr, bb1.Block.label, [ (3L, bb2.Block.label) ]));
  Builder.position_at b bb1;
  Builder.cond_br b (Builder.reg ic) bb2.Block.label bb2.Block.label;
  Builder.position_at b bb2;
  let p =
    Builder.phi b Ty.I32
      [ (bb0.Block.label, Builder.reg sel); (bb1.Block.label, Builder.ci32 1) ]
  in
  Builder.ret b (Some (Builder.reg p));
  let f = Builder.finish b in
  let m = Irmod.create ~name:"kinds" in
  Irmod.add_global m
    { Irmod.gname = "glob"; gty = Ty.I32; gsize = 1; ginit = Irmod.Zero };
  Irmod.add_func m f;
  let printed = Printer.module_to_string m in
  let reparsed = Parser.parse_module printed in
  Alcotest.(check string) "fixpoint" printed (Printer.module_to_string reparsed)

let test_parser_roundtrip_workloads () =
  List.iter
    (fun (w : Jitise_workloads.Workload.t) ->
      let r = Jitise_workloads.Workload.compile w in
      let m = r.Jitise_frontend.Compiler.modul in
      let printed = Printer.module_to_string m in
      let reparsed = Parser.parse_module printed in
      Alcotest.(check string)
        (w.Jitise_workloads.Workload.name ^ " round trips")
        printed
        (Printer.module_to_string reparsed))
    Jitise_workloads.Registry.all

let test_parser_errors () =
  let bad input =
    try
      ignore (Parser.parse_module input);
      false
    with Parser.Error _ -> true
  in
  Alcotest.(check bool) "garbage" true (bad "module m\nwat");
  Alcotest.(check bool) "bad operand" true
    (bad "module m\nfunc i32 @f() {\nbb0:\n  %1 = add i32 oops, 1:i32\n  ret %1\n}");
  Alcotest.(check bool) "unterminated func" true
    (bad "module m\nfunc i32 @f() {\nbb0:\n  ret 0:i32");
  Alcotest.(check bool) "unknown instr" true
    (bad "module m\nfunc i32 @f() {\nbb0:\n  %1 = frobnicate i32 1:i32, 2:i32\n  ret %1\n}")

let test_parser_executes_same () =
  (* parse(print(m)) runs identically *)
  let w = Option.get (Jitise_workloads.Registry.find "sor") in
  let r = Jitise_workloads.Workload.compile w in
  let m = r.Jitise_frontend.Compiler.modul in
  let reparsed = Parser.parse_module (Printer.module_to_string m) in
  let run m =
    (Jitise_vm.Machine.run m ~entry:"main" ~args:[ Eval.VInt 5L ]).Jitise_vm.Machine.ret
  in
  Alcotest.(check bool) "same results" true (run m = run reparsed)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ir"
    [
      ( "ty",
        [
          Alcotest.test_case "bits" `Quick test_ty_bits;
          Alcotest.test_case "roundtrip" `Quick test_ty_roundtrip;
          Alcotest.test_case "classes" `Quick test_ty_classes;
        ] );
      ( "instr",
        [
          Alcotest.test_case "classification" `Quick test_instr_classification;
          Alcotest.test_case "operands" `Quick test_instr_operands;
          Alcotest.test_case "names" `Quick test_instr_names;
        ] );
      ( "eval",
        [
          Alcotest.test_case "wrapping" `Quick test_eval_wrapping;
          Alcotest.test_case "division" `Quick test_eval_division;
          Alcotest.test_case "shifts" `Quick test_eval_shifts;
          Alcotest.test_case "icmp" `Quick test_eval_icmp;
          Alcotest.test_case "fcmp nan" `Quick test_eval_fcmp_nan;
          Alcotest.test_case "casts" `Quick test_eval_casts;
          Alcotest.test_case "f32 rounding" `Quick test_eval_f32_rounding;
          Alcotest.test_case "i1 normalization" `Quick test_eval_i1_normalization;
          Alcotest.test_case "select/is_true" `Quick test_eval_select_is_true;
        ]
        @ qsuite
            [
              prop_i32_add_matches_int32;
              prop_i32_mul_matches_int32;
              prop_normalize_idempotent;
            ] );
      ( "builder-verifier",
        [
          Alcotest.test_case "diamond valid" `Quick test_builder_diamond_valid;
          Alcotest.test_case "undefined reg" `Quick test_verifier_catches_undefined_reg;
          Alcotest.test_case "bad branch" `Quick test_verifier_catches_bad_branch;
          Alcotest.test_case "type mismatch" `Quick test_verifier_catches_type_mismatch;
          Alcotest.test_case "ret mismatch" `Quick test_verifier_catches_ret_mismatch;
          Alcotest.test_case "module check" `Quick test_verifier_module;
          Alcotest.test_case "module duplicates" `Quick test_irmod_duplicates;
        ] );
      ( "cfg-dom",
        [
          Alcotest.test_case "diamond cfg" `Quick test_cfg_diamond;
          Alcotest.test_case "unreachable" `Quick test_cfg_unreachable;
          Alcotest.test_case "dominators" `Quick test_dom_diamond;
        ] );
      ( "dfg",
        [
          Alcotest.test_case "edges" `Quick test_dfg_edges;
          Alcotest.test_case "external inputs" `Quick test_dfg_external_inputs;
          Alcotest.test_case "topological" `Quick test_dfg_topological;
        ] );
      ( "cost",
        [
          Alcotest.test_case "ordering" `Quick test_cost_ordering;
          Alcotest.test_case "block" `Quick test_cost_block;
        ] );
      ("printer", [ Alcotest.test_case "output" `Quick test_printer_output ]);
      ( "parser",
        [
          Alcotest.test_case "diamond round trip" `Quick
            test_parser_roundtrip_diamond;
          Alcotest.test_case "all instruction kinds" `Quick
            test_parser_roundtrip_all_instr_kinds;
          Alcotest.test_case "workload round trips" `Slow
            test_parser_roundtrip_workloads;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "executes identically" `Quick
            test_parser_executes_same;
        ] );
    ]
