(** The Woolcano reconfigurable ASIP architecture.

    Architectural constants of the platform the paper evaluates: a
    Xilinx Virtex-4 FX with the PowerPC 405 hard core, user-defined
    instruction (UDI) slots in the fabric attached through the APU, and
    partial reconfiguration over the ICAP port. *)

type t = {
  core_clock_hz : float;  (** PowerPC 405 clock *)
  udi_slots : int;  (** concurrently loadable instructions *)
  max_ci_inputs : int;
      (** register operands per UDI (via multi-word APU transfer) *)
  slot_lut_capacity : int;  (** area ceiling of one slot *)
  icap_bytes_per_second : float;  (** partial-reconfiguration bandwidth *)
  reconfig_setup_seconds : float;  (** driver + ICAP setup per load *)
}

val default : t
(** Virtex-4 FX100, 300 MHz 405 core, APU-attached UDIs. *)

val reconfiguration_seconds : t -> Jitise_cad.Bitstream.t -> float
(** Seconds to load one partial bitstream into a slot: setup plus
    size over ICAP bandwidth. *)
