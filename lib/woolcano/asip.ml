(** Runtime state of the reconfigurable ASIP.

    Tracks which custom instructions currently occupy the UDI slots,
    performs (simulated) partial reconfiguration with LRU eviction, and
    accumulates the reconfiguration time — part of the adaptation cost
    in the end-to-end overhead accounting. *)

module Ise = Jitise_ise
module Cad = Jitise_cad

type slot = {
  mutable occupant : Cad.Bitstream.t option;
  mutable last_use : int;  (** logical clock for LRU *)
}

type t = {
  arch : Arch.t;
  slots : slot array;
  mutable clock : int;
  mutable reconfig_seconds : float;  (** cumulative reconfiguration time *)
  mutable reconfigurations : int;
  mutable evictions : int;
}

let create ?(arch = Arch.default) () =
  {
    arch;
    slots =
      Array.init arch.Arch.udi_slots (fun _ -> { occupant = None; last_use = 0 });
    clock = 0;
    reconfig_seconds = 0.0;
    reconfigurations = 0;
    evictions = 0;
  }

exception Corrupt_bitstream of string
(** Raised by {!load} when a bitstream fails its integrity check
    (checksum mismatch — see [Cad.Bitstream.well_formed]).  The
    reconfiguration controller refuses to configure fabric from a
    corrupt image; the JIT manager treats this like any other CAD
    failure and falls back to software execution. *)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(** Slot index currently holding [signature], if loaded. *)
let find t signature =
  let found = ref None in
  Array.iteri
    (fun idx s ->
      match s.occupant with
      | Some b when b.Cad.Bitstream.signature = signature -> found := Some idx
      | _ -> ())
    t.slots;
  !found

(** Ensure [bitstream] is loaded; reconfigures (evicting the LRU slot if
    full) unless it is already resident.  Returns the slot index and
    whether a reconfiguration happened.
    @raise Corrupt_bitstream when the image fails its checksum check
    @raise Invalid_argument when the image exceeds the slot capacity *)
let load t (bitstream : Cad.Bitstream.t) =
  if not (Cad.Bitstream.well_formed bitstream) then
    raise (Corrupt_bitstream bitstream.Cad.Bitstream.signature);
  let now = tick t in
  match find t bitstream.Cad.Bitstream.signature with
  | Some idx ->
      t.slots.(idx).last_use <- now;
      (idx, false)
  | None ->
      if bitstream.Cad.Bitstream.luts > t.arch.Arch.slot_lut_capacity then
        invalid_arg
          (Printf.sprintf "Asip.load: %s (%d LUTs) exceeds slot capacity %d"
             bitstream.Cad.Bitstream.signature bitstream.Cad.Bitstream.luts
             t.arch.Arch.slot_lut_capacity);
      (* Free slot, else LRU victim. *)
      let victim = ref 0 in
      let best = ref max_int in
      Array.iteri
        (fun idx s ->
          let score = match s.occupant with None -> -1 | Some _ -> s.last_use in
          if score < !best then begin
            best := score;
            victim := idx
          end)
        t.slots;
      if t.slots.(!victim).occupant <> None then t.evictions <- t.evictions + 1;
      t.slots.(!victim).occupant <- Some bitstream;
      t.slots.(!victim).last_use <- now;
      t.reconfigurations <- t.reconfigurations + 1;
      t.reconfig_seconds <-
        t.reconfig_seconds +. Arch.reconfiguration_seconds t.arch bitstream;
      (!victim, true)

(** Signatures currently resident. *)
let resident t =
  Array.to_list t.slots
  |> List.filter_map (fun s ->
         Option.map (fun b -> b.Cad.Bitstream.signature) s.occupant)

let occupancy t =
  Array.fold_left
    (fun acc s -> match s.occupant with Some _ -> acc + 1 | None -> acc)
    0 t.slots
