(** Runtime state of the reconfigurable ASIP.

    Tracks which custom instructions currently occupy the UDI slots,
    performs (simulated) partial reconfiguration with a pluggable
    eviction policy, and accumulates the reconfiguration time — part of
    the adaptation cost in the end-to-end overhead accounting.

    Two usage modes share the same slot store:

    - The batch mode ({!load}) reconfigures instantaneously on a
      logical clock; it is what the offline sweep and
      [Jit_manager.timeline] use.
    - The online mode ({!begin_load} / {!dispatch_ready} /
      {!state_of}) models a slot state machine on the simulated
      seconds axis the VM runs on: a slot whose reconfiguration is
      still in flight ([Loading]) refuses CI dispatch until its
      [ready_at] deadline has passed. *)

module Ise = Jitise_ise
module Cad = Jitise_cad

type policy =
  | Lru  (** evict the least-recently-used occupant *)
  | Beneficial
      (** evict the occupant with the lowest recorded benefit (see
          {!set_benefit}); ties break on the lexicographically smallest
          signature so the choice is invariant under load order *)

let policy_name = function Lru -> "lru" | Beneficial -> "beneficial"

let policy_of_string = function
  | "lru" -> Some Lru
  | "beneficial" -> Some Beneficial
  | _ -> None

type slot = {
  mutable occupant : Cad.Bitstream.t option;
  mutable last_use : int;  (** logical clock for LRU *)
  mutable ready_at : float;
      (** simulated second at which the occupant becomes dispatchable;
          [neg_infinity] for batch-mode loads *)
}

type ci_state =
  | Absent  (** not resident in any slot *)
  | Loading of float
      (** resident but reconfiguring until the given second *)
  | Loaded  (** resident and dispatchable *)

type t = {
  arch : Arch.t;
  policy : policy;
  slots : slot array;
  benefit : (string, float) Hashtbl.t;
      (** signature -> most recent benefit estimate (saved seconds per
          second of execution); consulted by the [Beneficial] policy *)
  mutable clock : int;
  mutable reconfig_seconds : float;  (** cumulative reconfiguration time *)
  mutable reconfigurations : int;
  mutable evictions : int;
}

let create ?(arch = Arch.default) ?slots ?(policy = Lru) () =
  let n = match slots with Some n -> n | None -> arch.Arch.udi_slots in
  if n < 1 then invalid_arg "Asip.create: slot count must be >= 1";
  {
    arch;
    policy;
    slots =
      Array.init n (fun _ ->
          { occupant = None; last_use = 0; ready_at = neg_infinity });
    benefit = Hashtbl.create 16;
    clock = 0;
    reconfig_seconds = 0.0;
    reconfigurations = 0;
    evictions = 0;
  }

exception Corrupt_bitstream of string
(** Raised by {!load} and {!begin_load} when a bitstream fails its
    integrity check (checksum mismatch — see
    [Cad.Bitstream.well_formed]).  The reconfiguration controller
    refuses to configure fabric from a corrupt image; the JIT manager
    treats this like any other CAD failure and falls back to software
    execution. *)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(** Slot index currently holding [signature], if loaded. *)
let find t signature =
  let found = ref None in
  Array.iteri
    (fun idx s ->
      match s.occupant with
      | Some b when b.Cad.Bitstream.signature = signature -> found := Some idx
      | _ -> ())
    t.slots;
  !found

let set_benefit t signature v = Hashtbl.replace t.benefit signature v

let benefit_of t signature =
  Option.value ~default:0.0 (Hashtbl.find_opt t.benefit signature)

(* Slot the next load will claim: a free slot when one exists (lowest
   index — free slots score -1 in the LRU scan, matching the original
   batch loader byte for byte), else the policy's victim. *)
let victim_slot t =
  match t.policy with
  | Lru ->
      let victim = ref 0 in
      let best = ref max_int in
      Array.iteri
        (fun idx s ->
          let score = match s.occupant with None -> -1 | Some _ -> s.last_use in
          if score < !best then begin
            best := score;
            victim := idx
          end)
        t.slots;
      !victim
  | Beneficial ->
      let free = ref None in
      Array.iteri
        (fun idx s -> if s.occupant = None && !free = None then free := Some idx)
        t.slots;
      (match !free with
      | Some idx -> idx
      | None ->
          let victim = ref 0 in
          let best = ref None in
          Array.iteri
            (fun idx s ->
              match s.occupant with
              | None -> ()
              | Some b ->
                  let key =
                    ( benefit_of t b.Cad.Bitstream.signature,
                      b.Cad.Bitstream.signature )
                  in
                  (match !best with
                  | None ->
                      best := Some key;
                      victim := idx
                  | Some k ->
                      if key < k then begin
                        best := Some key;
                        victim := idx
                      end))
            t.slots;
          !victim)

(** Signature the next load would displace, or [None] when a free slot
    is available.  Lets the controller apply hysteresis before
    committing to an eviction. *)
let peek_victim t =
  if Array.exists (fun s -> s.occupant = None) t.slots then None
  else
    Option.map
      (fun b -> b.Cad.Bitstream.signature)
      t.slots.(victim_slot t).occupant

let check_image t (bitstream : Cad.Bitstream.t) =
  if not (Cad.Bitstream.well_formed bitstream) then
    raise (Corrupt_bitstream bitstream.Cad.Bitstream.signature);
  if bitstream.Cad.Bitstream.luts > t.arch.Arch.slot_lut_capacity then
    invalid_arg
      (Printf.sprintf "Asip.load: %s (%d LUTs) exceeds slot capacity %d"
         bitstream.Cad.Bitstream.signature bitstream.Cad.Bitstream.luts
         t.arch.Arch.slot_lut_capacity)

(* Shared reconfiguration path: claim a slot, bill the load, stamp the
   dispatchable deadline. *)
let reconfigure t (bitstream : Cad.Bitstream.t) ~ready_at =
  let now = tick t in
  let victim = victim_slot t in
  if t.slots.(victim).occupant <> None then t.evictions <- t.evictions + 1;
  t.slots.(victim).occupant <- Some bitstream;
  t.slots.(victim).last_use <- now;
  t.slots.(victim).ready_at <- ready_at;
  t.reconfigurations <- t.reconfigurations + 1;
  t.reconfig_seconds <-
    t.reconfig_seconds +. Arch.reconfiguration_seconds t.arch bitstream;
  victim

(** Ensure [bitstream] is loaded; reconfigures (evicting per the
    eviction policy if full) unless it is already resident.  Returns the
    slot index and whether a reconfiguration happened.  Batch mode: the
    load completes instantaneously, so the slot is immediately
    dispatchable.
    @raise Corrupt_bitstream when the image fails its checksum check
    @raise Invalid_argument when the image exceeds the slot capacity *)
let load t (bitstream : Cad.Bitstream.t) =
  check_image t bitstream;
  match find t bitstream.Cad.Bitstream.signature with
  | Some idx ->
      t.slots.(idx).last_use <- tick t;
      (idx, false)
  | None -> (reconfigure t bitstream ~ready_at:neg_infinity, true)

(** Start loading [bitstream] at simulated second [now_seconds].  The
    claimed slot refuses dispatch until [now_seconds + load latency]
    (per [Arch.reconfiguration_seconds]).  Returns
    [(slot, reconfigured, ready_at)]; a resident image is left alone
    and reports its existing deadline.
    @raise Corrupt_bitstream when the image fails its checksum check
    @raise Invalid_argument when the image exceeds the slot capacity *)
let begin_load t ~now_seconds (bitstream : Cad.Bitstream.t) =
  check_image t bitstream;
  match find t bitstream.Cad.Bitstream.signature with
  | Some idx ->
      t.slots.(idx).last_use <- tick t;
      (idx, false, t.slots.(idx).ready_at)
  | None ->
      let ready_at =
        now_seconds +. Arch.reconfiguration_seconds t.arch bitstream
      in
      (reconfigure t bitstream ~ready_at, true, ready_at)

(** Bump the LRU clock for a resident signature (a dispatch). *)
let touch t signature =
  match find t signature with
  | None -> ()
  | Some idx -> t.slots.(idx).last_use <- tick t

(** Slot state machine view of one signature at [now_seconds]. *)
let state_of t ~now_seconds signature =
  match find t signature with
  | None -> Absent
  | Some idx ->
      let ready = t.slots.(idx).ready_at in
      if ready <= now_seconds then Loaded else Loading ready

(** [true] iff [signature] is resident AND its reconfiguration has
    completed — the fabric refuses CI dispatch mid-reconfiguration. *)
let dispatch_ready t ~now_seconds signature =
  match find t signature with
  | None -> false
  | Some idx -> t.slots.(idx).ready_at <= now_seconds

(** Signatures currently resident. *)
let resident t =
  Array.to_list t.slots
  |> List.filter_map (fun s ->
         Option.map (fun b -> b.Cad.Bitstream.signature) s.occupant)

let occupancy t =
  Array.fold_left
    (fun acc s -> match s.occupant with Some _ -> acc + 1 | None -> acc)
    0 t.slots
