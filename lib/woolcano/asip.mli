(** Runtime state of the reconfigurable ASIP fabric.

    N partial-reconfiguration slots holding CAD bitstreams, with a
    pluggable eviction policy and two loading modes: the instantaneous
    batch mode used by the offline sweep ({!load}) and the latency-aware
    online mode ({!begin_load}) in which a slot refuses CI dispatch
    until its reconfiguration deadline has passed. *)

module Cad = Jitise_cad

(** Eviction policy applied when every slot is occupied. *)
type policy =
  | Lru  (** evict the least-recently-used occupant *)
  | Beneficial
      (** evict the occupant with the lowest recorded benefit
          ({!set_benefit}); ties break on the lexicographically
          smallest signature, so the choice is invariant under the
          order equal-benefit occupants were loaded in *)

val policy_name : policy -> string
val policy_of_string : string -> policy option

type slot = {
  mutable occupant : Cad.Bitstream.t option;
  mutable last_use : int;
  mutable ready_at : float;
}

(** State-machine view of one custom instruction on the fabric. *)
type ci_state =
  | Absent
  | Loading of float  (** reconfiguring until the given simulated second *)
  | Loaded

type t = {
  arch : Arch.t;
  policy : policy;
  slots : slot array;
  benefit : (string, float) Hashtbl.t;
  mutable clock : int;
  mutable reconfig_seconds : float;
  mutable reconfigurations : int;
  mutable evictions : int;
}

exception Corrupt_bitstream of string

(** [create ?arch ?slots ?policy ()] — [slots] defaults to
    [arch.udi_slots]; raises [Invalid_argument] when < 1. *)
val create : ?arch:Arch.t -> ?slots:int -> ?policy:policy -> unit -> t

val find : t -> string -> int option
(** Slot index currently holding the signature, if resident. *)

val load : t -> Cad.Bitstream.t -> int * bool
(** Batch-mode load: instantaneous, immediately dispatchable.  Returns
    the slot index and whether a reconfiguration happened.
    @raise Corrupt_bitstream on a checksum mismatch
    @raise Invalid_argument when the image exceeds the slot capacity *)

val begin_load : t -> now_seconds:float -> Cad.Bitstream.t -> int * bool * float
(** Online-mode load started at [now_seconds]: the slot refuses
    dispatch until the returned [ready_at] deadline.  A resident image
    is left alone and reports its existing deadline.  Same exceptions
    as {!load}. *)

val touch : t -> string -> unit
(** Bump the LRU clock for a resident signature (a dispatch). *)

val state_of : t -> now_seconds:float -> string -> ci_state
val dispatch_ready : t -> now_seconds:float -> string -> bool

val set_benefit : t -> string -> float -> unit
val benefit_of : t -> string -> float

val peek_victim : t -> string option
(** Signature the next load would displace; [None] when a free slot is
    available.  Lets the controller apply hysteresis before committing
    to an eviction. *)

val resident : t -> string list
val occupancy : t -> int
