(** All workloads, in the row order of the paper's tables. *)

let scientific = Scientific.all
let embedded = Embedded.all

(** Table order: scientific first (as in Tables I and II), then
    embedded. *)
let all = scientific @ embedded

(** Phase-shifting workloads for the online controller.  Deliberately
    NOT part of {!all}: the paper's tables, the sweep commands and
    their golden outputs iterate [all], which must stay byte-identical
    with the online loop disabled. *)
let phased = Phased.all

(** Look up a workload by its table name (e.g. ["470.lbm"],
    ["whetstone"] or ["phased.blend"]). *)
let find name =
  List.find_opt (fun w -> w.Workload.name = name) (all @ phased)

let names = List.map (fun w -> w.Workload.name) all

let phased_names = List.map (fun w -> w.Workload.name) phased
