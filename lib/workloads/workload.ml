(** Benchmark workloads.

    The paper evaluates ten scientific applications (SPEC2000/2006) and
    four embedded kernels (MiBench/SciMark2).  The original suites are
    proprietary or need a C toolchain, so each row of Table I is
    represented here by a MiniC program that reproduces the relevant
    *structure* of the original: its computational kernel, its rough
    scale contrast (scientific programs are much larger, with bigger
    but colder code), and its input-dependence (live/const/dead mix).
    Datasets are synthetic, sized so the hot kernels dominate — the
    same property the paper required of its train inputs.

    Every program has the entry point [int main(int n)] where [n]
    scales the input, at least two datasets (the coverage analysis
    needs to compare runs), plus unexercised code paths so the
    dead/const/live classification is non-trivial. *)

module Ir = Jitise_ir
module F = Jitise_frontend
module Vm = Jitise_vm

type domain = Scientific | Embedded

type dataset = {
  label : string;
  n : int;  (** the input-size argument passed to [main] *)
}

type t = {
  name : string;           (** the paper's benchmark name, e.g. "470.lbm" *)
  domain : domain;
  sources : (string * string) list;  (** (filename, MiniC source) *)
  datasets : dataset list;  (** ordered; first is the "train" set *)
  description : string;
}

let domain_to_string = function
  | Scientific -> "scientific"
  | Embedded -> "embedded"

(** Compile a workload to bitcode with the -O3 pipeline. *)
let compile ?optimize (w : t) : F.Compiler.result =
  F.Compiler.compile ?optimize ~module_name:w.name w.sources

(** Run one dataset on the VM and return the outcome. *)
let run ?fuel ?jit ?cis ?engine ?tuning (compiled : F.Compiler.result)
    (d : dataset) =
  Vm.Machine.run ?fuel ?jit ?cis ?engine ?tuning compiled.F.Compiler.modul
    ~entry:"main"
    ~args:[ Ir.Eval.VInt (Int64.of_int d.n) ]

(** Profiles for every dataset of a workload (used by the coverage
    classifier); returns [(dataset, outcome)] pairs. *)
let run_all ?fuel ?jit ?engine ?tuning (compiled : F.Compiler.result) (w : t) =
  List.map (fun d -> (d, run ?fuel ?jit ?engine ?tuning compiled d)) w.datasets
