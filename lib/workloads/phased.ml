(** Phase-shifting workloads for the online adaptive controller.

    The table workloads execute every kernel phase each outer iteration,
    so a whole-run profile is also the profile of every moment — offline
    specialization is optimal by construction.  These programs break
    that: the hot basic block {e moves} over the run (recurring bursts,
    one phase at a time), which rewards a controller that tracks the
    current phase and punishes eager whole-run specialization on a
    fabric with fewer slots than phases.

    All three share the {!Gen.shifting_phase_family} kernel shape and an
    [int main(int n)] whose [n] scales the burst length:

    - {b phased.blend}: 4 phases, long recurring bursts — the friendly
      case: each phase is hot long enough to amortize CAD on first
      visit and a reconfiguration on revisits.
    - {b phased.sweep}: 6 phases over a 2-slot-friendly burst length
      that sits near the launch threshold, so in-flight CAD is
      routinely overtaken by the phase exit — exercising cancellation.
    - {b phased.flash}: the same phases interleaved per iteration; no
      phase is ever locally dominant, so eager per-phase loading would
      thrash the slots while a break-even controller settles on a
      stable working set.

    Return values fold a per-iteration guard counter, not the float
    arrays, so outcomes are identical whichever CI binding is active —
    the cross-check the online report relies on. *)

open Workload

let blend_kernel = Gen.shifting_phase_family ~prefix:"pb" ~phases:4 ~width:96

let blend_main =
  {|
int main(int n) {
  int rep;
  int ph;
  int r;
  int guard = 0;
  pb_seed(3);
  for (rep = 0; rep < 3; rep = rep + 1) {
    for (ph = 0; ph < 4; ph = ph + 1) {
      for (r = 0; r < n; r = r + 1) {
        pb_select(ph);
        guard = guard + ph + 1;
      }
    }
  }
  return guard & 1023;
}
|}

let blend =
  {
    name = "phased.blend";
    domain = Embedded;
    sources =
      [ ("pb_kernel.c", blend_kernel); ("pb_main.c", blend_main) ];
    datasets = [ { label = "train"; n = 80 }; { label = "ref"; n = 400 } ];
    description =
      "four-phase float pipeline in long recurring bursts; each phase's \
       kernel block is hot for a sustained stretch, then yields";
  }

let sweep_kernel = Gen.shifting_phase_family ~prefix:"ps" ~phases:6 ~width:96

let sweep_main =
  {|
int main(int n) {
  int rep;
  int ph;
  int r;
  int guard = 0;
  ps_seed(5);
  for (rep = 0; rep < 3; rep = rep + 1) {
    for (ph = 0; ph < 6; ph = ph + 1) {
      for (r = 0; r < n; r = r + 1) {
        ps_select(ph);
        guard = guard + ph;
      }
    }
  }
  return guard & 1023;
}
|}

let sweep =
  {
    name = "phased.sweep";
    domain = Embedded;
    sources =
      [ ("ps_kernel.c", sweep_kernel); ("ps_main.c", sweep_main) ];
    datasets = [ { label = "train"; n = 40 }; { label = "ref"; n = 150 } ];
    description =
      "six phases rotating over bursts sized near the controller's \
       launch threshold: phases often end while CAD is still in flight";
  }

let flash_kernel = Gen.shifting_phase_family ~prefix:"pf" ~phases:4 ~width:96

let flash_main =
  {|
int main(int n) {
  int rep;
  int r;
  int guard = 0;
  pf_seed(7);
  for (rep = 0; rep < 3; rep = rep + 1) {
    for (r = 0; r < n; r = r + 1) {
      pf_select(r & 3);
      guard = guard + (r & 3);
    }
  }
  return guard & 1023;
}
|}

let flash =
  {
    name = "phased.flash";
    domain = Embedded;
    sources =
      [ ("pf_kernel.c", flash_kernel); ("pf_main.c", flash_main) ];
    datasets = [ { label = "train"; n = 320 }; { label = "ref"; n = 1600 } ];
    description =
      "four phases interleaved every iteration: no phase dominates any \
       window, so eager loading thrashes a small fabric";
  }

let all = [ blend; sweep; flash ]
