(** Source-text generators for the cold bulk of the scientific
    workloads.

    Real SPEC programs are tens of thousands of lines, most of which
    execute rarely (option parsing, error paths, alternative modes).
    Reproducing that *shape* matters: it is what drives the paper's
    dead/constant code percentages, the VM warm-up overhead and the
    small relative kernel size of the scientific programs.  These
    helpers emit families of well-typed MiniC functions — each
    syntactically distinct, most never called at runtime — that the
    scientific workloads append to their hot kernels. *)

(** A family of [count] small integer helper functions named
    [prefix_0 .. prefix_{count-1}], each with a distinct expression
    tree, plus a dispatcher [prefix_dispatch(sel, x)] that calls one of
    them via an if-chain.  When the program only ever calls the
    dispatcher with a fixed [sel], exactly one helper is constant code
    and the rest are dead. *)
let int_helper_family ~prefix ~count =
  let buf = Buffer.create 4096 in
  for i = 0 to count - 1 do
    let a = 3 + (i mod 7) and b = 1 + (i mod 5) and c = i mod 3 in
    Printf.bprintf buf
      "int %s_%d(int x) {\n\
      \  int t = x * %d + %d;\n\
      \  if (t > %d) { t = t - (x >> %d); } else { t = t + (x << %d); }\n\
      \  return t ^ %d;\n\
       }\n"
      prefix i a b (100 + (17 * i)) (1 + c) (c + 1) (i * 31)
  done;
  Printf.bprintf buf "int %s_dispatch(int sel, int x) {\n" prefix;
  for i = 0 to count - 1 do
    Printf.bprintf buf "  if (sel == %d) { return %s_%d(x); }\n" i prefix i
  done;
  Printf.bprintf buf "  return 0;\n}\n";
  Buffer.contents buf

(** A family of float helper functions (dead analytics/reporting code in
    the original programs). *)
let float_helper_family ~prefix ~count =
  let buf = Buffer.create 4096 in
  for i = 0 to count - 1 do
    let k = 1.0 +. (0.25 *. float_of_int (i mod 9)) in
    Printf.bprintf buf
      "double %s_%d(double x) {\n\
      \  double u = x * %.2f + %.2f;\n\
      \  if (u < 0.0) { u = 0.0 - u; }\n\
      \  double v = u * u - x * %.2f;\n\
      \  if (v > 1000.0) { v = v / %.2f; }\n\
      \  return v + u;\n\
       }\n"
      prefix i k
      (0.5 +. float_of_int (i mod 4))
      (0.125 *. float_of_int (1 + (i mod 8)))
      (2.0 +. float_of_int (i mod 6))
  done;
  Printf.bprintf buf "double %s_eval(int sel, double x) {\n" prefix;
  for i = 0 to count - 1 do
    Printf.bprintf buf "  if (sel == %d) { return %s_%d(x); }\n" i prefix i
  done;
  Printf.bprintf buf "  return x;\n}\n";
  Buffer.contents buf

(** A complete "program modes" module for a scientific workload: three
    helper families with the coverage classes real SPEC codes show.

    - The {e live} family is dispatched once per outer iteration of the
      main loop ([<app>_step]), so every helper's frequency scales with
      the input — the paper's "live" class;
    - the {e config} family runs exactly once at startup
      ([<app>_startup]) — the "constant" class;
    - the {e dead} family sits behind a guard no input can satisfy —
      the "dead" class.

    The volume ratio of the three families reproduces the paper's
    scientific-code averages (roughly half live, a third dead, the rest
    constant, by static size). *)
let mode_family ~app ~live ~cfg ~dead =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf (int_helper_family ~prefix:(app ^ "_live") ~count:live);
  Buffer.add_string buf (int_helper_family ~prefix:(app ^ "_cfg") ~count:cfg);
  Buffer.add_string buf (int_helper_family ~prefix:(app ^ "_dead") ~count:dead);
  Printf.bprintf buf
    "int %s_startup() {\n\
    \  int s;\n\
    \  int acc = 0;\n\
    \  for (s = 0; s < %d; s = s + 1) {\n\
    \    acc = acc + %s_cfg_dispatch(s, s * 7 + 3);\n\
    \  }\n\
    \  return acc & 1023;\n\
     }\n"
    app cfg app;
  Printf.bprintf buf
    "int %s_step(int t) {\n\
    \  int v = %s_live_dispatch(t %% %d, t & 255);\n\
    \  if (t < -2000000000) {\n\
    \    v = v + %s_dead_dispatch(0, v);\n\
    \  }\n\
    \  return v & 255;\n\
     }\n"
    app app live app;
  Buffer.contents buf

(** A wide computational kernel: [phases] distinct loops of comparable
    cost over shared arrays, all called once per outer iteration by
    [<prefix>_run()].

    This reproduces the decisive property of the paper's scientific
    codes: the kernel (90 % of time) spans {e many} medium basic blocks
    (~1960 instructions on average), so the three blocks the @50pS3L
    filter keeps cover only a small fraction of it and the pruned ASIP
    ratio collapses toward 1.0 even though individual candidates are
    fast — Section V-D's central finding. *)
let phase_family ~prefix ~phases ~width ~float_ops =
  let buf = Buffer.create 16384 in
  if float_ops then
    Printf.bprintf buf "double %s_a[%d];\ndouble %s_b[%d];\n" prefix width
      prefix width
  else
    Printf.bprintf buf "int %s_a[%d];\nint %s_b[%d];\n" prefix width prefix
      width;
  Printf.bprintf buf
    "void %s_seed(int s) {\n\
    \  int i;\n\
    \  for (i = 0; i < %d; i = i + 1) {\n"
    prefix width;
  if float_ops then
    Printf.bprintf buf
      "    %s_a[i] = 0.5 + 0.001 * ((i * 13 + s) & 255);\n\
      \    %s_b[i] = 0.25 + 0.002 * ((i * 7 + s) & 127);\n"
      prefix prefix
  else
    Printf.bprintf buf
      "    %s_a[i] = (i * 13 + s) & 1023;\n\
      \    %s_b[i] = (i * 7 + s * 3) & 511;\n"
      prefix prefix;
  Buffer.add_string buf "  }\n}\n";
  for k = 0 to phases - 1 do
    let c1 = 0.5 +. (0.0625 *. float_of_int (k mod 8)) in
    let c2 = 0.25 +. (0.03125 *. float_of_int (k mod 6)) in
    Printf.bprintf buf "void %s_phase%d() {\n  int i;\n" prefix k;
    Printf.bprintf buf "  for (i = 0; i < %d; i = i + 1) {\n" width;
    if float_ops then begin
      (* Rotate among a few medium float expressions so each phase's
         block has a distinct data path. *)
      match k mod 4 with
      | 0 ->
          Printf.bprintf buf
            "    %s_a[i] = (%s_a[i] * %.4f + %s_b[i] * %.4f) * (%s_a[i] - \
             %s_b[i]) + %.4f;\n"
            prefix prefix c1 prefix c2 prefix prefix (c1 *. c2)
      | 1 ->
          Printf.bprintf buf
            "    %s_b[i] = %s_b[i] + %s_a[i] * (%.4f + %s_a[i] * (%.4f + \
             %s_a[i] * %.4f));\n"
            prefix prefix prefix c1 prefix c2 prefix (c1 -. c2)
      | 2 ->
          Printf.bprintf buf
            "    %s_a[i] = (%s_a[i] + %s_b[i]) * (%s_a[i] - %s_b[i]) * %.4f \
             + %s_b[i] * %.4f;\n"
            prefix prefix prefix prefix prefix c1 prefix c2
      | _ ->
          Printf.bprintf buf
            "    %s_b[i] = %s_a[i] * %s_b[i] * %.4f - (%s_a[i] - %.4f) * \
             (%s_b[i] + %.4f);\n"
            prefix prefix prefix c1 prefix c2 prefix (c1 +. c2)
    end
    else begin
      let m1 = 3 + (k mod 5) and m2 = 1 + (k mod 3) in
      match k mod 4 with
      | 0 ->
          Printf.bprintf buf
            "    %s_a[i] = ((%s_a[i] * %d + %s_b[i] * %d) >> %d) ^ (%s_a[i] \
             & %d);\n"
            prefix prefix m1 prefix m2 (1 + (k mod 3)) prefix (63 + k)
      | 1 ->
          Printf.bprintf buf
            "    %s_b[i] = (%s_b[i] + (%s_a[i] << %d) - (%s_a[i] >> %d)) & \
             %d;\n"
            prefix prefix prefix m2 prefix m1 (1023 + k)
      | 2 ->
          Printf.bprintf buf
            "    %s_a[i] = (%s_a[i] ^ (%s_b[i] * %d)) + ((%s_a[i] >> %d) | \
             (%s_b[i] & %d));\n"
            prefix prefix prefix m1 prefix m2 prefix (255 + k)
      | _ ->
          Printf.bprintf buf
            "    %s_b[i] = %s_a[i] * %d - %s_b[i] * %d + ((%s_a[i] + \
             %s_b[i]) >> %d);\n"
            prefix prefix m1 prefix m2 prefix prefix (1 + (k mod 4))
    end;
    Buffer.add_string buf "  }\n}\n"
  done;
  Printf.bprintf buf "void %s_run() {\n" prefix;
  for k = 0 to phases - 1 do
    Printf.bprintf buf "  %s_phase%d();\n" prefix k
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** A phase family for the {e phase-shifting} workloads: like
    {!phase_family} the kernel spans [phases] distinct loops over
    shared arrays, but instead of a [<prefix>_run()] that executes all
    phases each outer iteration, it emits a [<prefix>_select(ph)]
    dispatcher that runs exactly {e one} phase.  The caller's main loop
    decides which phase is hot {e when} — the property the online
    controller adapts to and an offline whole-run profile averages
    away.

    Every phase body is one fat float expression (many multiplies and
    adds over two array loads), so each phase contributes a distinct,
    clearly profitable MAXMISO candidate rooted in its own basic
    block. *)
let shifting_phase_family ~prefix ~phases ~width =
  let buf = Buffer.create 16384 in
  Printf.bprintf buf "double %s_a[%d];\ndouble %s_b[%d];\n" prefix width prefix
    width;
  Printf.bprintf buf
    "void %s_seed(int s) {\n\
    \  int i;\n\
    \  for (i = 0; i < %d; i = i + 1) {\n\
    \    %s_a[i] = 0.5 + 0.001 * ((i * 13 + s) & 255);\n\
    \    %s_b[i] = 0.25 + 0.002 * ((i * 7 + s) & 127);\n\
    \  }\n\
     }\n"
    prefix width prefix prefix;
  for k = 0 to phases - 1 do
    let c1 = 0.5 +. (0.0625 *. float_of_int (k mod 8)) in
    let c2 = 0.25 +. (0.03125 *. float_of_int (k mod 6)) in
    let c3 = 1.0 +. (0.125 *. float_of_int (k mod 4)) in
    Printf.bprintf buf "void %s_phase%d() {\n  int i;\n" prefix k;
    Printf.bprintf buf "  for (i = 0; i < %d; i = i + 1) {\n" width;
    (match k mod 3 with
    | 0 ->
        Printf.bprintf buf
          "    %s_a[i] = (%s_a[i] * %.4f + %s_b[i] * %.4f) * (%s_a[i] - \
           %s_b[i]) + (%s_b[i] * %.4f - %s_a[i] * %.4f);\n"
          prefix prefix c1 prefix c2 prefix prefix prefix c3 prefix (c1 *. c2)
    | 1 ->
        Printf.bprintf buf
          "    %s_b[i] = %s_b[i] * (%.4f + %s_a[i] * (%.4f + %s_a[i] * \
           %.4f)) - %s_a[i] * (%s_b[i] + %.4f) * %.4f;\n"
          prefix prefix c1 prefix c2 prefix c3 prefix prefix (c2 +. c3)
          (c1 -. c2)
    | _ ->
        Printf.bprintf buf
          "    %s_a[i] = (%s_a[i] + %s_b[i]) * (%s_a[i] - %.4f) * %.4f + \
           (%s_b[i] * %s_b[i] - %s_a[i] * %.4f) * %.4f;\n"
          prefix prefix prefix prefix c1 c2 prefix prefix prefix c3
          (c1 +. c2));
    Buffer.add_string buf "  }\n}\n"
  done;
  Printf.bprintf buf "void %s_select(int ph) {\n" prefix;
  for k = 0 to phases - 1 do
    Printf.bprintf buf "  if (ph == %d) { %s_phase%d(); return; }\n" k prefix k
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Fixed-size initialization code: a table-setup function whose loop
    bounds never depend on the input — classified as {e constant}
    coverage when called once per run. *)
let const_init ~name ~array ~size =
  Printf.sprintf
    "void %s() {\n\
    \  int i;\n\
    \  for (i = 0; i < %d; i = i + 1) {\n\
    \    %s[i] = (i * 73 + 41) %% 256 - 128;\n\
    \  }\n\
     }\n"
    name size array

(** Same, for float tables. *)
let const_init_float ~name ~array ~size =
  Printf.sprintf
    "void %s() {\n\
    \  int i;\n\
    \  for (i = 0; i < %d; i = i + 1) {\n\
    \    %s[i] = 0.001 * i - 0.5 + 1.0 / (i + 2);\n\
    \  }\n\
     }\n"
    name size array
