(** Cost model of the virtual machine's just-in-time compilation.

    The paper's VM (LLVM's JIT) shows ~14 % average slowdown on large
    scientific codes, ~1 % on small embedded kernels, and occasionally
    beats static compilation (179.art, 473.astar).  This model captures
    that behaviour at block granularity:

    - the first [warmup_threshold] executions of a block are
      interpreted, paying {!Jitise_ir.Cost.block_dispatch_cycles} per
      execution on top of the native cost;
    - once hot, a block runs at [hot_factor] of native cost — slightly
      below 1.0, reflecting the profile-guided optimizations a VM can do
      that a static compiler cannot.

    Small kernels execute few distinct blocks millions of times, so the
    warm-up vanishes and the VM ratio converges to [hot_factor] (about
    1.0 or marginally below).  Large codes spread execution across
    thousands of blocks, re-paying warm-up and translation, which lands
    them in the 10-30 % overhead range. *)

type t = {
  warmup_threshold : int64;
      (** executions a block spends in the interpreter before its
          compiled form takes over *)
  translation_cycles_per_instr : int;
      (** one-time whole-module translation cost, charged at load *)
  hot_factor : float;  (** relative cost of a compiled block, ~0.99 *)
}

(** The calibrated model: 16-execution warm-up, 6 500 translation
    cycles per instruction, 0.985 hot factor. *)
val default : t

(** A model with no VM overhead at all — used to measure the "Native"
    column of Table I. *)
val native : t

(** One-time cost of translating the whole module at load (the VM's
    dynamic translation step in Figure 1), proportional to the static
    module size. *)
val module_translation_cycles : t -> module_instrs:int -> float

(** Cycles charged for one execution of a block, given how many times
    it has executed before ([prior]), its instruction count and its
    native cycle cost.  Blocks below the warm-up threshold run
    interpreted, paying {!Jitise_ir.Cost.block_dispatch_cycles}
    (exactly once per block execution, however the host engine batches
    the work); beyond it they run compiled at [hot_factor]. *)
val block_execution_cycles :
  t -> prior:int64 -> ninstrs:int -> native_cycles:int -> float
