(** Execution profiles.

    The VM records how often every basic block executes.  Profiles
    drive everything downstream: the pruning filter ranks blocks by
    dynamic cost, the coverage analysis classifies code as
    live/dead/constant across datasets, and the break-even model weighs
    candidate savings by block frequency. *)

module Ir = Jitise_ir

type key = string * Ir.Instr.label  (** function name, block label *)

type t = {
  counts : (key, int64) Hashtbl.t;
  mutable executed_instrs : int64;  (** dynamic IR instruction count *)
}

val create : unit -> t

(** Add one execution of block [label] of [func], containing [instrs]
    instructions. *)
val bump : t -> func:string -> label:Ir.Instr.label -> instrs:int -> unit

(** Add [count] executions of a block at once (bulk import from the
    VM's run-local counters). *)
val record :
  t -> func:string -> label:Ir.Instr.label -> count:int64 -> instrs:int -> unit

val count : t -> func:string -> label:Ir.Instr.label -> int64

val iter :
  (func:string -> label:Ir.Instr.label -> count:int64 -> unit) -> t -> unit

(** All profiled (function, label, count) triples, sorted for
    determinism. *)
val to_list : t -> (string * Ir.Instr.label * int64) list

(** Merge [src] into [dst] (summing counts). *)
val merge : into:t -> t -> unit

(** Total software cycles attributed to each block of [m] under this
    profile: [freq * block_cycles].  Returns a sorted association list
    from (func, label) to cycles, heaviest first. *)
val block_costs : t -> Ir.Irmod.t -> ((string * Ir.Instr.label) * int64) list

(** Sliding-window phase profiles for the online controller: block
    executions are counted into fixed-size windows; closed windows fold
    into a decayed history so what-is-hot-now dominates what-was-hot.
    Deterministic: rates depend only on the observation sequence. *)
module Window : sig
  type w

  (** [create ?size ?decay ()] — [size] block executions per window
      (>= 1, default 4096); [decay] history weight in [0, 1) (default
      0.5). *)
  val create : ?size:int -> ?decay:float -> unit -> w

  (** Record one block execution; [true] when the window just filled
      (caller should {!advance}). *)
  val observe : w -> func:string -> label:Ir.Instr.label -> bool

  (** Close the open window: decay history, fold the window in, start
      fresh. *)
  val advance : w -> unit

  (** Decayed executions-per-window rate of a block. *)
  val rate : w -> func:string -> label:Ir.Instr.label -> float

  (** Raw count of a block in the last closed window. *)
  val last : w -> func:string -> label:Ir.Instr.label -> int

  (** Windows closed so far. *)
  val windows : w -> int

  (** The [n] hottest blocks by decayed rate (ties broken by key). *)
  val hottest : w -> int -> ((string * Ir.Instr.label) * float) list
end
