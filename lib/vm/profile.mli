(** Execution profiles.

    The VM records how often every basic block executes.  Profiles
    drive everything downstream: the pruning filter ranks blocks by
    dynamic cost, the coverage analysis classifies code as
    live/dead/constant across datasets, and the break-even model weighs
    candidate savings by block frequency. *)

module Ir = Jitise_ir

type key = string * Ir.Instr.label  (** function name, block label *)

type t = {
  counts : (key, int64) Hashtbl.t;
  mutable executed_instrs : int64;  (** dynamic IR instruction count *)
}

val create : unit -> t

(** Add one execution of block [label] of [func], containing [instrs]
    instructions. *)
val bump : t -> func:string -> label:Ir.Instr.label -> instrs:int -> unit

(** Add [count] executions of a block at once (bulk import from the
    VM's run-local counters). *)
val record :
  t -> func:string -> label:Ir.Instr.label -> count:int64 -> instrs:int -> unit

val count : t -> func:string -> label:Ir.Instr.label -> int64

val iter :
  (func:string -> label:Ir.Instr.label -> count:int64 -> unit) -> t -> unit

(** All profiled (function, label, count) triples, sorted for
    determinism. *)
val to_list : t -> (string * Ir.Instr.label * int64) list

(** Merge [src] into [dst] (summing counts). *)
val merge : into:t -> t -> unit

(** Total software cycles attributed to each block of [m] under this
    profile: [freq * block_cycles].  Returns a sorted association list
    from (func, label) to cycles, heaviest first. *)
val block_costs : t -> Ir.Irmod.t -> ((string * Ir.Instr.label) * int64) list
