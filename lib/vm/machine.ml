(** The bitcode virtual machine.

    An SSA interpreter with cycle accounting.  One run simultaneously
    accumulates two clocks:

    - [native_cycles]: the cost of the program under static compilation
      (the paper's "Native" column), from {!Jitise_ir.Cost};
    - [vm_cycles]: the cost under the VM's JIT execution model
      ({!Jit_model}), the paper's "VM" column.

    The machine also records the block-frequency {!Profile} and executes
    custom-instruction calls ([Ci_call]) through a registry that charges
    the hardware latency of the reconfigurable functional unit instead
    of the software cycles — which is how adapted binaries are timed on
    the Woolcano model.

    Two execution engines produce byte-identical outcomes:

    - {!Reference} walks the instruction AST, re-matching every
      [Ir.Instr.kind] and re-resolving every operand on each dynamic
      instruction — the semantics baseline;
    - {!Threaded} (the default) compiles each basic block once, at
      prepare time, into an array of pre-decoded operation closures:
      operands are resolved to register slots or immediate values,
      operators to specialized {!Jitise_ir.Eval} closures, callees /
      custom instructions / intrinsics are bound ahead of time, and
      terminators (including [Switch] case tables) are pre-resolved to
      block indices.  The hot loop is then an array walk of closure
      calls with no AST dispatch.

    Cycle accounting, fuel, profiles and fault messages are identical
    across engines (pinned by the differential suite in test_vm). *)

module Ir = Jitise_ir

exception Fault of string

let fault fmt = Printf.ksprintf (fun m -> raise (Fault m)) fmt

(* ------------------------------------------------------------------ *)
(* Custom instruction registry                                         *)
(* ------------------------------------------------------------------ *)

type ci_impl = {
  ci_eval : Ir.Eval.value array -> Ir.Eval.value;
      (** functional semantics of the custom instruction *)
  ci_cycles : int;
      (** CPU cycles one invocation takes on the custom functional
          unit, including the instruction-interface overhead *)
}

type ci_registry = (int, ci_impl) Hashtbl.t

let empty_cis () : ci_registry = Hashtbl.create 8

(* ------------------------------------------------------------------ *)
(* Intrinsics                                                          *)
(* ------------------------------------------------------------------ *)

(* One table holds every intrinsic: the name list and the dispatcher
   cannot drift apart (they used to be separate [intrinsic] /
   [is_intrinsic] matches), and the threaded engine binds the
   implementation closure directly at block-compile time. *)
let intrinsic_table : (string, Ir.Eval.value array -> Ir.Eval.value) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let f1 name op =
    Hashtbl.replace tbl name (fun args ->
        if Array.length args <> 1 then fault "intrinsic %s: arity" name
        else Ir.Eval.VFloat (op (Ir.Eval.as_float args.(0))))
  in
  let i1 name op =
    Hashtbl.replace tbl name (fun args ->
        if Array.length args <> 1 then fault "intrinsic %s: arity" name
        else Ir.Eval.VInt (op (Ir.Eval.as_int args.(0))))
  in
  let i2 name op =
    Hashtbl.replace tbl name (fun args ->
        if Array.length args <> 2 then fault "intrinsic %s: arity" name
        else
          Ir.Eval.VInt
            (op (Ir.Eval.as_int args.(0)) (Ir.Eval.as_int args.(1))))
  in
  f1 "sqrt" sqrt;
  f1 "sin" sin;
  f1 "cos" cos;
  f1 "atan" atan;
  f1 "exp" exp;
  f1 "log" log;
  f1 "fabs" abs_float;
  f1 "floor" floor;
  Hashtbl.replace tbl "pow" (fun args ->
      if Array.length args <> 2 then fault "intrinsic pow: arity"
      else
        Ir.Eval.VFloat
          (Float.pow (Ir.Eval.as_float args.(0)) (Ir.Eval.as_float args.(1))));
  i1 "abs" Int64.abs;
  i2 "min" min;
  i2 "max" max;
  tbl

let find_intrinsic name = Hashtbl.find_opt intrinsic_table name
let is_intrinsic name = Hashtbl.mem intrinsic_table name

let intrinsic name (args : Ir.Eval.value array) : Ir.Eval.value =
  match find_intrinsic name with
  | Some impl -> impl args
  | None -> fault "unknown function @%s" name

(* ------------------------------------------------------------------ *)
(* Execution engines                                                   *)
(* ------------------------------------------------------------------ *)

type engine =
  | Reference  (** AST-walking interpreter (the semantics baseline) *)
  | Threaded  (** per-block closure compilation with pre-decoded operands *)

let default_engine = Threaded
let engines = [ Reference; Threaded ]

let engine_name = function Reference -> "reference" | Threaded -> "threaded"

let engine_of_string = function
  | "reference" -> Some Reference
  | "threaded" -> Some Threaded
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Prepared module                                                     *)
(* ------------------------------------------------------------------ *)

(* A pre-decoded operand: either an immediate already converted to an
   {!Ir.Eval.value} or a register slot index.  The threaded engine's
   closures fetch through this, never through [Ir.Instr.operand]. *)
type src = Imm of Ir.Eval.value | Slot of int

let fetch regs = function Imm v -> v | Slot r -> regs.(r)

(* A pre-decoded phi source: like [src option] but flat, so the phi
   prologue — which runs for every phi on every dynamic iteration of a
   loop header — does a single match instead of an [Option] match
   followed by a [src] match. *)
type psrc = P_slot of int | P_imm of Ir.Eval.value | P_missing

(* Per-block static data, computed once per run.  [exec_count] is the
   run-local profile counter (folded into a Profile at the end — much
   cheaper than a hashtable update per block execution).  The phi
   prologue is pre-resolved: [phi_incoming.(k).(pred)] is the operand
   phi [k] takes when entered from block [pred], so the hot loop does
   two array reads per phi instead of scanning an association list on
   every block execution.  [switch_cases] pre-resolves a [Switch]
   terminator's case list into a hashtable (first entry wins for
   duplicate case values, like [List.assoc_opt] did), shared by both
   engines. *)
type block_info = {
  instrs : Ir.Instr.t array;
  term : Ir.Instr.terminator;
  ninstrs : int;
  static_cycles : int;  (* excludes user-call callees and CI latencies *)
  phi_count : int;  (* leading phis; a phi past them still faults *)
  phi_dests : int array;  (* destination register of each leading phi *)
  phi_incoming : Ir.Instr.operand option array array;
      (* per leading phi, indexed by predecessor block label *)
  switch_cases : (int64, Ir.Instr.label) Hashtbl.t option;
      (* case value -> target, when [term] is a [Switch] *)
  mutable exec_count : int;
      (* an immediate int, not an int64: incrementing it must not
         allocate (it happens once per dynamic block).  Fuel bounds the
         total far below [max_int]. *)
}

(* A pre-decoded terminator: targets are block indices, scrutinees and
   return operands are [src]s, switch tables are shared with
   [block_info.switch_cases]. *)
type tterm =
  | T_halt  (** [ret] of void *)
  | T_ret of src
  | T_br of int
  | T_cond of src * int * int
  | T_cond_s of int * int * int
      (** the common slot-scrutinee conditional, pre-split so the hot
          loop skips the [src] match *)
  | T_switch of src * int * (int64, Ir.Instr.label) Hashtbl.t

type func_info = {
  func : Ir.Func.t;
  blocks : block_info array;
  reg_tys : Ir.Ty.t array;  (* type of each register, Void if undefined *)
  mutable tblocks : tblock array;
      (* threaded code, [||] until {!compile_func} runs for this
         function (the reference engine never compiles) *)
}

(* One compiled block of the threaded engine.  Blocks are compiled per
   run, after the run's [state] exists, so op closures capture the
   state (and the memory, the CI registry, callee [func_info]s, ...)
   directly instead of receiving them as arguments.  The cycle charges
   of {!Jit_model.block_execution_cycles} only depend on whether the
   block is past warm-up, so both branches are precomputed here — the
   identical float operations, performed once. *)
and tblock = {
  t_info : block_info;  (* shared counters and static cycle data *)
  t_ops : (Ir.Eval.value array -> unit) array;
      (* non-phi body, one pre-decoded closure per instruction *)
  t_phi_dests : int array;
  t_phi_srcs : psrc array array;
  t_phi_scratch : Ir.Eval.value array;
      (* staging buffer for the parallel phi assignment; safe to reuse
         because the phi prologue cannot re-enter this function *)
  t_term : tterm;
  t_sync : bool;
      (* block contains a resolved user call or custom instruction, so
         the interpreter's local fuel / clock accumulators must be
         written back to the shared [state] before the body runs and
         re-read after *)
  t_fuel : int;  (* ninstrs + 1 *)
  t_native : float;  (* float_of_int static_cycles *)
  t_hot : float;  (* post-warm-up VM charge per execution *)
  t_cold : float;  (* interpreted VM charge per execution *)
}

and state = {
  funcs : (string, func_info) Hashtbl.t;
  memory : Memory.t;
  jit : Jit_model.t;
  cis : ci_registry;
  swap : (int, float ref) Hashtbl.t option;
      (* online hot-swap: per-CI cycle-charge cells read at dispatch
         instead of the statically bound charge; [None] (no monitor)
         keeps the compiled fast path untouched *)
  mutable mon : (func:string -> label:int -> ninstrs:int -> unit) option;
  mutable native : float;
  mutable vm : float;
  mutable fuel : int64;  (* remaining dynamic instructions; negative = out *)
}

let prepare_func (m : Ir.Irmod.t) (f : Ir.Func.t) : func_info =
  let is_user_func name = Ir.Irmod.find_func m name <> None in
  let reg_tys = Array.make (max 1 f.Ir.Func.next_reg) Ir.Ty.Void in
  List.iter (fun (r, ty) -> reg_tys.(r) <- ty) f.Ir.Func.params;
  Ir.Func.iter_instrs
    (fun _ (i : Ir.Instr.t) ->
      if i.Ir.Instr.id < Array.length reg_tys then
        reg_tys.(i.Ir.Instr.id) <- i.Ir.Instr.ty)
    f;
  let nblocks = Array.length f.Ir.Func.blocks in
  let blocks =
    Array.map
      (fun (b : Ir.Block.t) ->
        let instrs = Array.of_list b.Ir.Block.instrs in
        let static_cycles =
          Array.fold_left
            (fun acc (i : Ir.Instr.t) ->
              acc
              +
              match i.Ir.Instr.kind with
              | Ir.Instr.Call (name, _) when is_user_func name ->
                  Ir.Cost.call_linkage_cycles
              | kind -> Ir.Cost.cycles kind)
            0 instrs
          + Ir.Cost.terminator_cycles b.Ir.Block.term
        in
        let n = Array.length instrs in
        let phi_count =
          let rec go k =
            if
              k < n
              &&
              match instrs.(k).Ir.Instr.kind with
              | Ir.Instr.Phi _ -> true
              | _ -> false
            then go (k + 1)
            else k
          in
          go 0
        in
        let phi_dests =
          Array.init phi_count (fun k -> instrs.(k).Ir.Instr.id)
        in
        let phi_incoming =
          Array.init phi_count (fun k ->
              match instrs.(k).Ir.Instr.kind with
              | Ir.Instr.Phi incoming ->
                  let row = Array.make nblocks None in
                  (* first match wins, like List.assoc_opt did; labels
                     outside the function are unreachable dead entries *)
                  List.iter
                    (fun (pred, op) ->
                      if pred >= 0 && pred < nblocks then
                        match row.(pred) with
                        | None -> row.(pred) <- Some op
                        | Some _ -> ())
                    incoming;
                  row
              | _ -> assert false)
        in
        let switch_cases =
          match b.Ir.Block.term with
          | Ir.Instr.Switch (_, _, cases) ->
              let tbl = Hashtbl.create (max 4 (List.length cases)) in
              (* first match wins, like List.assoc_opt did *)
              List.iter
                (fun (v, l) -> if not (Hashtbl.mem tbl v) then Hashtbl.add tbl v l)
                cases;
              Some tbl
          | _ -> None
        in
        {
          instrs;
          term = b.Ir.Block.term;
          ninstrs = n;
          static_cycles;
          phi_count;
          phi_dests;
          phi_incoming;
          switch_cases;
          exec_count = 0;
        })
      f.Ir.Func.blocks
  in
  { func = f; blocks; reg_tys; tblocks = [||] }

(* ------------------------------------------------------------------ *)
(* Reference engine                                                    *)
(* ------------------------------------------------------------------ *)

type outcome = {
  ret : Ir.Eval.value option;
  native_cycles : float;
  vm_cycles : float;
  profile : Profile.t;
  memory : Memory.t;
}

(** Simulated seconds for a cycle count, at the PowerPC 405 clock. *)
let seconds_of_cycles c = c *. Ir.Cost.cycle_time

(** Handle an online controller uses to observe and steer a run from
    inside the monitor callback.  Only valid during the callback: the
    threaded engine flushes its local accumulators to the shared state
    before invoking the monitor and reloads them after, so the clocks
    read consistently and stalls/rebinds land between blocks without
    disturbing the fused closures. *)
type control = {
  ctl_native : unit -> float;  (** native clock, cycles *)
  ctl_vm : unit -> float;  (** VM clock, cycles *)
  ctl_stall : float -> unit;
      (** charge a stall (e.g. a reconfiguration wait) to both clocks *)
  ctl_bind : int -> float -> unit;
      (** set the per-dispatch cycle charge of a CI — the hot-swap
          point: software-mode and hardware-mode cost per call *)
  ctl_charge : int -> float option;  (** current per-dispatch charge *)
}

(** A monitor receives the {!control} handle at run start (before any
    block executes) and returns a callback invoked once per dynamic
    basic block, after that block's clock charge.  When absent, the run
    takes exactly the unmonitored code path — byte-identical clocks. *)
type monitor = control -> func:string -> label:int -> ninstrs:int -> unit

let value_of_operand regs = function
  | Ir.Instr.Const c -> Ir.Eval.of_const c
  | Ir.Instr.Reg r -> regs.(r)

let rec exec_func (st : state) (fi : func_info) (args : Ir.Eval.value array) :
    Ir.Eval.value option =
  let f = fi.func in
  if Array.length args <> List.length f.Ir.Func.params then
    fault "@%s: expected %d arguments, got %d" f.Ir.Func.name
      (List.length f.Ir.Func.params)
      (Array.length args);
  let regs = Array.make (max 1 f.Ir.Func.next_reg) (Ir.Eval.VInt 0L) in
  Array.iteri (fun i v -> regs.(i) <- v) args;
  let frame_mark = Memory.mark st.memory in
  let finish v =
    Memory.release st.memory frame_mark;
    v
  in
  let cur = ref Ir.Func.entry_label in
  let prev = ref (-1) in
  let result = ref None in
  let running = ref true in
  while !running do
    let bi = fi.blocks.(!cur) in
    (* Fuel. *)
    st.fuel <- Int64.sub st.fuel (Int64.of_int (bi.ninstrs + 1));
    if st.fuel < 0L then fault "execution budget exhausted in @%s" f.Ir.Func.name;
    (* Profile and clocks.  [prior] is the pre-increment count used by
       the JIT warm-up model. *)
    let prior = bi.exec_count in
    bi.exec_count <- prior + 1;
    st.native <- st.native +. float_of_int bi.static_cycles;
    st.vm <-
      st.vm
      +. Jit_model.block_execution_cycles st.jit ~prior:(Int64.of_int prior)
           ~ninstrs:bi.ninstrs ~native_cycles:bi.static_cycles;
    (match st.mon with
    | None -> ()
    | Some mon -> mon ~func:f.Ir.Func.name ~label:!cur ~ninstrs:bi.ninstrs);
    (* Phis first, read atomically: the incoming operand per
       predecessor was pre-resolved into an array in [prepare_func]. *)
    let n = bi.ninstrs in
    let nphi = bi.phi_count in
    if nphi > 0 then begin
      let staged = Array.make nphi (Ir.Eval.VInt 0L) in
      for k = 0 to nphi - 1 do
        let row = bi.phi_incoming.(k) in
        match
          if !prev >= 0 && !prev < Array.length row then row.(!prev) else None
        with
        | Some op -> staged.(k) <- value_of_operand regs op
        | None ->
            fault "@%s/bb%d: phi has no entry for predecessor bb%d"
              f.Ir.Func.name !cur !prev
      done;
      for k = 0 to nphi - 1 do
        regs.(bi.phi_dests.(k)) <- staged.(k)
      done
    end;
    (* Straight-line body. *)
    for k = nphi to n - 1 do
      let i = bi.instrs.(k) in
      let v op = value_of_operand regs op in
      let set x = regs.(i.Ir.Instr.id) <- x in
      try
        match i.Ir.Instr.kind with
        | Ir.Instr.Phi _ ->
            fault "@%s/bb%d: phi after non-phi" f.Ir.Func.name !cur
        | Ir.Instr.Binop (op, a, b) ->
            set (Ir.Eval.eval_binop i.Ir.Instr.ty op (v a) (v b))
        | Ir.Instr.Icmp (p, a, b) -> set (Ir.Eval.eval_icmp p (v a) (v b))
        | Ir.Instr.Fcmp (p, a, b) -> set (Ir.Eval.eval_fcmp p (v a) (v b))
        | Ir.Instr.Cast (c, a) ->
            let from_ =
              match a with
              | Ir.Instr.Const cst -> Ir.Instr.const_ty cst
              | Ir.Instr.Reg r -> fi.reg_tys.(r)
            in
            set (Ir.Eval.eval_cast c ~from_ ~to_:i.Ir.Instr.ty (v a))
        | Ir.Instr.Select (c, a, b) ->
            set (Ir.Eval.eval_select (v c) (v a) (v b))
        | Ir.Instr.Alloca (_, count) ->
            set (Ir.Eval.VPtr (Memory.alloc st.memory count))
        | Ir.Instr.Load a -> set (Memory.load st.memory (Ir.Eval.as_ptr (v a)))
        | Ir.Instr.Store (x, a) ->
            Memory.store st.memory (Ir.Eval.as_ptr (v a)) (v x)
        | Ir.Instr.Gep (base, idx) ->
            set
              (Ir.Eval.VPtr
                 (Ir.Eval.as_ptr (v base) + Int64.to_int (Ir.Eval.as_int (v idx))))
        | Ir.Instr.Gaddr g -> set (Ir.Eval.VPtr (Memory.global_base st.memory g))
        | Ir.Instr.Call (name, argops) -> (
            let argv = Array.of_list (List.map v argops) in
            match Hashtbl.find_opt st.funcs name with
            | Some callee -> (
                match exec_func st callee argv with
                | Some r -> set r
                | None -> ())
            | None ->
                if is_intrinsic name then set (intrinsic name argv)
                else fault "call to unknown function @%s" name)
        | Ir.Instr.Ci_call (ci, argops) -> (
            match Hashtbl.find_opt st.cis ci with
            | Some impl ->
                let argv = Array.of_list (List.map v argops) in
                set (impl.ci_eval argv);
                let cyc =
                  match st.swap with
                  | None -> float_of_int impl.ci_cycles
                  | Some cells -> (
                      match Hashtbl.find_opt cells ci with
                      | Some c -> !c
                      | None -> float_of_int impl.ci_cycles)
                in
                st.native <- st.native +. cyc;
                st.vm <- st.vm +. cyc
            | None -> fault "custom instruction #%d is not configured" ci)
      with
      | Ir.Eval.Division_by_zero ->
          fault "@%s/bb%d: division by zero" f.Ir.Func.name !cur
      | Ir.Eval.Type_error m -> fault "@%s/bb%d: %s" f.Ir.Func.name !cur m
      | Memory.Bad_address a ->
          fault "@%s/bb%d: bad address %d" f.Ir.Func.name !cur a
      | Memory.Out_of_memory -> fault "@%s: out of memory" f.Ir.Func.name
    done;
    (* Terminator. *)
    (match bi.term with
    | Ir.Instr.Ret op ->
        result := Option.map (value_of_operand regs) op;
        running := false
    | Ir.Instr.Br l ->
        prev := !cur;
        cur := l
    | Ir.Instr.Cond_br (c, a, b) ->
        prev := !cur;
        cur := (if Ir.Eval.is_true (value_of_operand regs c) then a else b)
    | Ir.Instr.Switch (s, default, _) ->
        let sv = Ir.Eval.as_int (value_of_operand regs s) in
        let tbl =
          match bi.switch_cases with Some tbl -> tbl | None -> assert false
        in
        prev := !cur;
        cur := (match Hashtbl.find_opt tbl sv with Some l -> l | None -> default))
  done;
  finish !result

(* ------------------------------------------------------------------ *)
(* Threaded engine                                                     *)
(* ------------------------------------------------------------------ *)

(* Closure-shape helpers: specialize the four slot/immediate operand
   combinations so the hot path never matches a [src] constructor.
   Every function call executes on a fresh register file of [nregs]
   slots, so slot indices can be bounds-checked once at compile time
   and the hot path can use unchecked accesses.  A block that somehow
   references an out-of-range slot (the builder and verifier exclude
   this) falls back to checked accesses, which raise the same
   [Invalid_argument] the reference engine's [regs.(r)] would. *)
let slot_ok nregs = function
  | Slot r -> r >= 0 && r < nregs
  | Imm _ -> true

let bin_closure ~nregs (f : Ir.Eval.value -> Ir.Eval.value -> Ir.Eval.value) d
    sa sb : Ir.Eval.value array -> unit =
  if d >= 0 && d < nregs && slot_ok nregs sa && slot_ok nregs sb then
    match (sa, sb) with
    | Slot ra, Slot rb ->
        fun regs ->
          Array.unsafe_set regs d
            (f (Array.unsafe_get regs ra) (Array.unsafe_get regs rb))
    | Slot ra, Imm vb ->
        fun regs -> Array.unsafe_set regs d (f (Array.unsafe_get regs ra) vb)
    | Imm va, Slot rb ->
        fun regs -> Array.unsafe_set regs d (f va (Array.unsafe_get regs rb))
    | Imm va, Imm vb -> fun regs -> Array.unsafe_set regs d (f va vb)
  else
    match (sa, sb) with
    | Slot ra, Slot rb -> fun regs -> regs.(d) <- f regs.(ra) regs.(rb)
    | Slot ra, Imm vb -> fun regs -> regs.(d) <- f regs.(ra) vb
    | Imm va, Slot rb -> fun regs -> regs.(d) <- f va regs.(rb)
    | Imm va, Imm vb -> fun regs -> regs.(d) <- f va vb

(* [f] is applied per execution even for immediates: evaluating it at
   compile time would move a fault (a [Type_error] on a malformed
   constant, say) from execution to compilation — and compilation also
   covers blocks that never execute. *)
let un_closure ~nregs (f : Ir.Eval.value -> Ir.Eval.value) d sa :
    Ir.Eval.value array -> unit =
  if d >= 0 && d < nregs && slot_ok nregs sa then
    match sa with
    | Slot ra ->
        fun regs -> Array.unsafe_set regs d (f (Array.unsafe_get regs ra))
    | Imm va -> fun regs -> Array.unsafe_set regs d (f va)
  else
    match sa with
    | Slot ra -> fun regs -> regs.(d) <- f regs.(ra)
    | Imm va -> fun regs -> regs.(d) <- f va

let decode_operand : Ir.Instr.operand -> src = function
  | Ir.Instr.Const c -> Imm (Ir.Eval.of_const c)
  | Ir.Instr.Reg r -> Slot r

(* ------------------------------------------------------------------ *)
(* Fused fast paths                                                    *)
(* ------------------------------------------------------------------ *)

(* For the hottest operator x operand-shape combinations the op closure
   embeds the scalar semantics directly instead of calling the closure
   {!Ir.Eval.binop_fn} & co. would build, so the hot path makes one
   closure call instead of two.  The bodies are the same expressions
   the [Ir.Eval.*_fn] arms evaluate, composed from the same inlined
   Eval primitives ([as_int], [renorm], [umask], ...), with per-type
   constants ([norm_shift], shift and width masks) resolved at compile
   time.  Each fast path is gated on compile-time-validated slots and
   immediates whose conversion cannot fault; every other combination
   falls back to the generic closures, which keep the exact
   per-execution fault behavior.  The differential suite pins both
   engines to identical outcomes, so a semantic drift here cannot land
   silently. *)

module E = Ir.Eval

let[@inline] geti regs r = E.as_int (Array.unsafe_get regs r)
let[@inline] getf regs r = E.as_float (Array.unsafe_get regs r)
let[@inline] seti regs d (v : int64) = Array.unsafe_set regs d (E.VInt v)
let[@inline] setf regs d (v : float) = Array.unsafe_set regs d (E.VFloat v)

(* Comparison results are shared preallocated values (they are
   immutable and compared structurally everywhere), so a fused compare
   does not allocate at all. *)
let vtrue = E.VInt 1L
let vfalse = E.VInt 0L
let[@inline] setb regs d b = Array.unsafe_set regs d (if b then vtrue else vfalse)

let compile_binop ~nregs (ty : Ir.Ty.t) (op : Ir.Instr.binop) d sa sb :
    E.value array -> unit =
  let generic () = bin_closure ~nregs (E.binop_fn ty op) d sa sb in
  let ok r = r >= 0 && r < nregs in
  if not (ok d) then generic ()
  else
    let sh = E.norm_shift ty in
    (* [shift_amount]'s and [umask]'s masks, recovered by feeding them
       all-ones — keeps Eval the single source of the bit arithmetic. *)
    let sm = E.shift_amount ty (-1L) in
    let um = E.umask ty (-1L) in
    match (op, sa, sb) with
    | Ir.Instr.Add, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d (E.renorm sh (Int64.add (geti regs a) (geti regs b)))
    | Ir.Instr.Add, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> seti regs d (E.renorm sh (Int64.add (geti regs a) ib))
    | Ir.Instr.Sub, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d (E.renorm sh (Int64.sub (geti regs a) (geti regs b)))
    | Ir.Instr.Sub, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> seti regs d (E.renorm sh (Int64.sub (geti regs a) ib))
    | Ir.Instr.Mul, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d (E.renorm sh (Int64.mul (geti regs a) (geti regs b)))
    | Ir.Instr.Mul, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> seti regs d (E.renorm sh (Int64.mul (geti regs a) ib))
    | Ir.Instr.And, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d (E.renorm sh (Int64.logand (geti regs a) (geti regs b)))
    | Ir.Instr.And, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> seti regs d (E.renorm sh (Int64.logand (geti regs a) ib))
    | Ir.Instr.Or, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d (E.renorm sh (Int64.logor (geti regs a) (geti regs b)))
    | Ir.Instr.Or, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> seti regs d (E.renorm sh (Int64.logor (geti regs a) ib))
    | Ir.Instr.Xor, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d (E.renorm sh (Int64.logxor (geti regs a) (geti regs b)))
    | Ir.Instr.Xor, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> seti regs d (E.renorm sh (Int64.logxor (geti regs a) ib))
    | Ir.Instr.Shl, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d
            (E.renorm sh
               (Int64.shift_left (geti regs a)
                  (Int64.to_int (geti regs b) land sm)))
    | Ir.Instr.Shl, Slot a, Imm (E.VInt ib) when ok a ->
        let n = E.shift_amount ty ib in
        fun regs -> seti regs d (E.renorm sh (Int64.shift_left (geti regs a) n))
    | Ir.Instr.Lshr, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d
            (E.renorm sh
               (Int64.shift_right_logical
                  (Int64.logand (geti regs a) um)
                  (Int64.to_int (geti regs b) land sm)))
    | Ir.Instr.Lshr, Slot a, Imm (E.VInt ib) when ok a ->
        let n = E.shift_amount ty ib in
        fun regs ->
          seti regs d
            (E.renorm sh
               (Int64.shift_right_logical (Int64.logand (geti regs a) um) n))
    | Ir.Instr.Ashr, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d
            (E.renorm sh
               (Int64.shift_right (geti regs a)
                  (Int64.to_int (geti regs b) land sm)))
    | Ir.Instr.Ashr, Slot a, Imm (E.VInt ib) when ok a ->
        let n = E.shift_amount ty ib in
        fun regs ->
          seti regs d (E.renorm sh (Int64.shift_right (geti regs a) n))
    | Ir.Instr.Fadd, Slot a, Slot b when ty <> Ir.Ty.F32 && ok a && ok b ->
        fun regs -> setf regs d (getf regs a +. getf regs b)
    | Ir.Instr.Fadd, Slot a, Imm (E.VFloat fb) when ty <> Ir.Ty.F32 && ok a ->
        fun regs -> setf regs d (getf regs a +. fb)
    | Ir.Instr.Fsub, Slot a, Slot b when ty <> Ir.Ty.F32 && ok a && ok b ->
        fun regs -> setf regs d (getf regs a -. getf regs b)
    | Ir.Instr.Fsub, Slot a, Imm (E.VFloat fb) when ty <> Ir.Ty.F32 && ok a ->
        fun regs -> setf regs d (getf regs a -. fb)
    | Ir.Instr.Fmul, Slot a, Slot b when ty <> Ir.Ty.F32 && ok a && ok b ->
        fun regs -> setf regs d (getf regs a *. getf regs b)
    | Ir.Instr.Fmul, Slot a, Imm (E.VFloat fb) when ty <> Ir.Ty.F32 && ok a ->
        fun regs -> setf regs d (getf regs a *. fb)
    | Ir.Instr.Fdiv, Slot a, Slot b when ty <> Ir.Ty.F32 && ok a && ok b ->
        fun regs -> setf regs d (getf regs a /. getf regs b)
    | Ir.Instr.Fdiv, Slot a, Imm (E.VFloat fb) when ty <> Ir.Ty.F32 && ok a ->
        fun regs -> setf regs d (getf regs a /. fb)
    | _ -> generic ()

let compile_icmp ~nregs (p : Ir.Instr.icmp_pred) d sa sb :
    E.value array -> unit =
  let generic () = bin_closure ~nregs (E.icmp_fn p) d sa sb in
  let ok r = r >= 0 && r < nregs in
  if not (ok d) then generic ()
  else
    match (p, sa, sb) with
    | Ir.Instr.Ieq, Slot a, Slot b when ok a && ok b ->
        fun regs -> setb regs d (Int64.equal (geti regs a) (geti regs b))
    | Ir.Instr.Ieq, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.equal (geti regs a) ib)
    | Ir.Instr.Ine, Slot a, Slot b when ok a && ok b ->
        fun regs -> setb regs d (not (Int64.equal (geti regs a) (geti regs b)))
    | Ir.Instr.Ine, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (not (Int64.equal (geti regs a) ib))
    | Ir.Instr.Islt, Slot a, Slot b when ok a && ok b ->
        fun regs -> setb regs d (Int64.compare (geti regs a) (geti regs b) < 0)
    | Ir.Instr.Islt, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.compare (geti regs a) ib < 0)
    | Ir.Instr.Isle, Slot a, Slot b when ok a && ok b ->
        fun regs -> setb regs d (Int64.compare (geti regs a) (geti regs b) <= 0)
    | Ir.Instr.Isle, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.compare (geti regs a) ib <= 0)
    | Ir.Instr.Isgt, Slot a, Slot b when ok a && ok b ->
        fun regs -> setb regs d (Int64.compare (geti regs a) (geti regs b) > 0)
    | Ir.Instr.Isgt, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.compare (geti regs a) ib > 0)
    | Ir.Instr.Isge, Slot a, Slot b when ok a && ok b ->
        fun regs -> setb regs d (Int64.compare (geti regs a) (geti regs b) >= 0)
    | Ir.Instr.Isge, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.compare (geti regs a) ib >= 0)
    | Ir.Instr.Iult, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          setb regs d (Int64.unsigned_compare (geti regs a) (geti regs b) < 0)
    | Ir.Instr.Iult, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.unsigned_compare (geti regs a) ib < 0)
    | Ir.Instr.Iule, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          setb regs d (Int64.unsigned_compare (geti regs a) (geti regs b) <= 0)
    | Ir.Instr.Iule, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.unsigned_compare (geti regs a) ib <= 0)
    | Ir.Instr.Iugt, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          setb regs d (Int64.unsigned_compare (geti regs a) (geti regs b) > 0)
    | Ir.Instr.Iugt, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.unsigned_compare (geti regs a) ib > 0)
    | Ir.Instr.Iuge, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          setb regs d (Int64.unsigned_compare (geti regs a) (geti regs b) >= 0)
    | Ir.Instr.Iuge, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.unsigned_compare (geti regs a) ib >= 0)
    | _ -> generic ()

let compile_fcmp ~nregs (p : Ir.Instr.fcmp_pred) d sa sb :
    E.value array -> unit =
  let generic () = bin_closure ~nregs (E.fcmp_fn p) d sa sb in
  let ok r = r >= 0 && r < nregs in
  let[@inline] ord x y = not (Float.is_nan x || Float.is_nan y) in
  if not (ok d) then generic ()
  else
    match (p, sa, sb) with
    | Ir.Instr.Foeq, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          let x = getf regs a and y = getf regs b in
          setb regs d (ord x y && x = y)
    | Ir.Instr.Foeq, Slot a, Imm (E.VFloat fb) when ok a ->
        fun regs ->
          let x = getf regs a in
          setb regs d (ord x fb && x = fb)
    | Ir.Instr.Fone, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          let x = getf regs a and y = getf regs b in
          setb regs d (ord x y && x <> y)
    | Ir.Instr.Fone, Slot a, Imm (E.VFloat fb) when ok a ->
        fun regs ->
          let x = getf regs a in
          setb regs d (ord x fb && x <> fb)
    | Ir.Instr.Folt, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          let x = getf regs a and y = getf regs b in
          setb regs d (ord x y && x < y)
    | Ir.Instr.Folt, Slot a, Imm (E.VFloat fb) when ok a ->
        fun regs ->
          let x = getf regs a in
          setb regs d (ord x fb && x < fb)
    | Ir.Instr.Fole, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          let x = getf regs a and y = getf regs b in
          setb regs d (ord x y && x <= y)
    | Ir.Instr.Fole, Slot a, Imm (E.VFloat fb) when ok a ->
        fun regs ->
          let x = getf regs a in
          setb regs d (ord x fb && x <= fb)
    | Ir.Instr.Fogt, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          let x = getf regs a and y = getf regs b in
          setb regs d (ord x y && x > y)
    | Ir.Instr.Fogt, Slot a, Imm (E.VFloat fb) when ok a ->
        fun regs ->
          let x = getf regs a in
          setb regs d (ord x fb && x > fb)
    | Ir.Instr.Foge, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          let x = getf regs a and y = getf regs b in
          setb regs d (ord x y && x >= y)
    | Ir.Instr.Foge, Slot a, Imm (E.VFloat fb) when ok a ->
        fun regs ->
          let x = getf regs a in
          setb regs d (ord x fb && x >= fb)
    | _ -> generic ()

(* Argument evaluation for calls and custom instructions, specialized
   by arity: the generic [Array.map] version allocates a fresh
   intermediate closure on every dynamic call. *)
let args_fn (srcs : src array) : E.value array -> E.value array =
  match srcs with
  | [||] -> fun _ -> [||]
  | [| s0 |] -> fun regs -> [| fetch regs s0 |]
  | [| s0; s1 |] -> fun regs -> [| fetch regs s0; fetch regs s1 |]
  | [| s0; s1; s2 |] ->
      fun regs -> [| fetch regs s0; fetch regs s1; fetch regs s2 |]
  | [| s0; s1; s2; s3 |] ->
      fun regs ->
        [| fetch regs s0; fetch regs s1; fetch regs s2; fetch regs s3 |]
  | srcs -> fun regs -> Array.map (fun s -> fetch regs s) srcs

let compile_cast ~nregs (c : Ir.Instr.cast) ~from_ ~to_ d sa :
    E.value array -> unit =
  let generic () = un_closure ~nregs (E.cast_fn c ~from_ ~to_) d sa in
  let ok r = r >= 0 && r < nregs in
  if not (ok d) then generic ()
  else
    match (c, sa) with
    | (Ir.Instr.Trunc | Ir.Instr.Sext), Slot a when ok a ->
        let sh = E.norm_shift to_ in
        fun regs -> seti regs d (E.renorm sh (geti regs a))
    | Ir.Instr.Zext, Slot a when ok a ->
        let sh = E.norm_shift to_ in
        let um = E.umask from_ (-1L) in
        fun regs -> seti regs d (E.renorm sh (Int64.logand (geti regs a) um))
    | Ir.Instr.Fptosi, Slot a when ok a ->
        let sh = E.norm_shift to_ in
        fun regs ->
          let f = getf regs a in
          Array.unsafe_set regs d
            (if Float.is_nan f then E.VInt 0L
             else E.VInt (E.renorm sh (Int64.of_float f)))
    | Ir.Instr.Sitofp, Slot a when ok a && to_ <> Ir.Ty.F32 ->
        fun regs -> setf regs d (Int64.to_float (geti regs a))
    | Ir.Instr.Fpext, Slot a when ok a ->
        fun regs -> setf regs d (getf regs a)
    | _ -> generic ()

(* Clamp an int64 to the native int range.  Fuel budgets and the
   warm-up threshold are kept as immediate ints inside the threaded
   interpreter so the per-block bookkeeping never allocates; a budget
   beyond [max_int] (4.6e18 dynamic instructions — centuries of
   simulated execution) is indistinguishable from unlimited. *)
let int_of_int64_clamped v =
  if Int64.compare v (Int64.of_int max_int) > 0 then max_int
  else if Int64.compare v (Int64.of_int min_int) < 0 then min_int
  else Int64.to_int v

(* [exec_threaded] runs a function's compiled blocks; [compile_func] /
   [compile_block] build them.  They are mutually recursive because a
   pre-bound [Call] closure invokes [exec_threaded] on the captured
   callee's [func_info]. *)
let rec exec_threaded (st : state) (fi : func_info) (args : Ir.Eval.value array)
    :
    Ir.Eval.value option =
  let f = fi.func in
  if Array.length args <> List.length f.Ir.Func.params then
    fault "@%s: expected %d arguments, got %d" f.Ir.Func.name
      (List.length f.Ir.Func.params)
      (Array.length args);
  let regs = Array.make (max 1 f.Ir.Func.next_reg) (Ir.Eval.VInt 0L) in
  Array.iteri (fun i v -> regs.(i) <- v) args;
  let frame_mark = Memory.mark st.memory in
  let tblocks = fi.tblocks in
  let warmup = int_of_int64_clamped st.jit.Jit_model.warmup_threshold in
  (* Per-block bookkeeping lives in non-allocating locals: an immediate
     int counts fuel spent by this invocation against an immediate-int
     limit, and a flat float array holds the two clocks (a float-array
     store is an unboxed write; a mutable record field store boxes).
     They are synced with the shared [state] only around blocks that
     contain resolved calls ([t_sync]) and at function exit.  The
     arithmetic and its order are unchanged from the reference engine,
     so results stay byte-identical — only the boxed per-block stores
     into [st] are gone. *)
  let spent = ref 0 in
  let limit = ref (int_of_int64_clamped st.fuel) in
  let clocks = [| st.native; st.vm |] in
  let cur = ref Ir.Func.entry_label in
  let prev = ref (-1) in
  let result = ref None in
  let running = ref true in
  while !running do
    let tb = tblocks.(!cur) in
    let bi = tb.t_info in
    (* Fuel, profile and clocks: same arithmetic, in the same order, as
       the reference engine — the clocks are float sums, so the order
       of additions must match for byte-identical outcomes.  The two
       possible {!Jit_model.block_execution_cycles} charges were
       precomputed at compile time. *)
    spent := !spent + tb.t_fuel;
    if !spent > !limit then
      fault "execution budget exhausted in @%s" f.Ir.Func.name;
    let prior = bi.exec_count in
    bi.exec_count <- prior + 1;
    Array.unsafe_set clocks 0 (Array.unsafe_get clocks 0 +. tb.t_native);
    Array.unsafe_set clocks 1
      (Array.unsafe_get clocks 1
      +. (if prior >= warmup then tb.t_hot else tb.t_cold));
    (* Monitor hook: flush the local accumulators so the callback sees
       consistent clocks/fuel, then reload — the same flush/reload
       protocol as [t_sync] blocks, so clock additions keep their order
       and loop-off runs stay byte-identical (the branch is never taken
       without a monitor). *)
    (match st.mon with
    | None -> ()
    | Some mon ->
        st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
        spent := 0;
        st.native <- Array.unsafe_get clocks 0;
        st.vm <- Array.unsafe_get clocks 1;
        mon ~func:f.Ir.Func.name ~label:!cur ~ninstrs:bi.ninstrs;
        limit := int_of_int64_clamped st.fuel;
        Array.unsafe_set clocks 0 st.native;
        Array.unsafe_set clocks 1 st.vm);
    (* Phi prologue over pre-decoded sources.  A single phi needs no
       staging (parallel-assignment semantics are trivial); multiple
       phis stage into the scratch buffer first. *)
    let nphi = Array.length tb.t_phi_dests in
    if nphi > 0 then begin
      let srcs = tb.t_phi_srcs and p = !prev in
      if nphi = 1 then (
        let row = srcs.(0) in
        match if p >= 0 && p < Array.length row then row.(p) else P_missing with
        | P_slot r -> regs.(tb.t_phi_dests.(0)) <- regs.(r)
        | P_imm v -> regs.(tb.t_phi_dests.(0)) <- v
        | P_missing ->
            fault "@%s/bb%d: phi has no entry for predecessor bb%d"
              f.Ir.Func.name !cur p)
      else begin
        let staged = tb.t_phi_scratch in
        for k = 0 to nphi - 1 do
          let row = srcs.(k) in
          match
            if p >= 0 && p < Array.length row then row.(p) else P_missing
          with
          | P_slot r -> staged.(k) <- regs.(r)
          | P_imm v -> staged.(k) <- v
          | P_missing ->
              fault "@%s/bb%d: phi has no entry for predecessor bb%d"
                f.Ir.Func.name !cur p
        done;
        for k = 0 to nphi - 1 do
          regs.(tb.t_phi_dests.(k)) <- staged.(k)
        done
      end
    end;
    (* Straight-line body: an array walk of pre-decoded closures.  The
       runtime faults an instruction can raise carry the same context
       the reference engine attaches per instruction.  Around a block
       with resolved calls, the local fuel/clock accumulators are
       flushed to [st] (the callee continues from them) and re-read
       after the body. *)
    (try
       let ops = tb.t_ops in
       if tb.t_sync then begin
         st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
         spent := 0;
         st.native <- Array.unsafe_get clocks 0;
         st.vm <- Array.unsafe_get clocks 1;
         for k = 0 to Array.length ops - 1 do
           (Array.unsafe_get ops k) regs
         done;
         limit := int_of_int64_clamped st.fuel;
         Array.unsafe_set clocks 0 st.native;
         Array.unsafe_set clocks 1 st.vm
       end
       else
         for k = 0 to Array.length ops - 1 do
           (Array.unsafe_get ops k) regs
         done
     with
    | Ir.Eval.Division_by_zero ->
        fault "@%s/bb%d: division by zero" f.Ir.Func.name !cur
    | Ir.Eval.Type_error m -> fault "@%s/bb%d: %s" f.Ir.Func.name !cur m
    | Memory.Bad_address a ->
        fault "@%s/bb%d: bad address %d" f.Ir.Func.name !cur a
    | Memory.Out_of_memory -> fault "@%s: out of memory" f.Ir.Func.name);
    (* Terminator, pre-resolved. *)
    match tb.t_term with
    | T_halt -> running := false
    | T_ret s ->
        result := Some (fetch regs s);
        running := false
    | T_br l ->
        prev := !cur;
        cur := l
    | T_cond (c, a, b) ->
        prev := !cur;
        cur := (if Ir.Eval.is_true (fetch regs c) then a else b)
    | T_cond_s (r, a, b) ->
        prev := !cur;
        cur := (if Ir.Eval.is_true regs.(r) then a else b)
    | T_switch (s, default, tbl) ->
        let sv = Ir.Eval.as_int (fetch regs s) in
        prev := !cur;
        cur := (match Hashtbl.find_opt tbl sv with Some l -> l | None -> default)
  done;
  st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
  st.native <- Array.unsafe_get clocks 0;
  st.vm <- Array.unsafe_get clocks 1;
  Memory.release st.memory frame_mark;
  !result

(** Compile one function's blocks to threaded code.  All of the
    module's functions must already be prepared in [st.funcs] so callee
    [func_info]s can be captured; their own [tblocks] may be compiled
    later (the closure reads them at call time). *)
and compile_func (st : state) (fi : func_info) : tblock array =
  Array.mapi (fun bnum bi -> compile_block st fi bnum bi) fi.blocks

and compile_block (st : state) (fi : func_info) (bnum : int) (bi : block_info) :
    tblock =
  let fname = fi.func.Ir.Func.name in
  let nphi = bi.phi_count in
  let t_phi_srcs =
    Array.init nphi (fun k ->
        Array.map
          (function
            | None -> P_missing
            | Some op -> (
                match decode_operand op with
                | Slot r -> P_slot r
                | Imm v -> P_imm v))
          bi.phi_incoming.(k))
  in
  let mem = st.memory in
  let nregs = max 1 fi.func.Ir.Func.next_reg in
  let compile_instr (i : Ir.Instr.t) : Ir.Eval.value array -> unit =
    let d = i.Ir.Instr.id in
    let ty = i.Ir.Instr.ty in
    match i.Ir.Instr.kind with
    | Ir.Instr.Phi _ ->
        (* Mirrors the reference engine: a phi after a non-phi is a
           runtime fault of the block, not a compile error. *)
        fun _ -> fault "@%s/bb%d: phi after non-phi" fname bnum
    | Ir.Instr.Binop (op, a, b) ->
        compile_binop ~nregs ty op d (decode_operand a) (decode_operand b)
    | Ir.Instr.Icmp (p, a, b) ->
        compile_icmp ~nregs p d (decode_operand a) (decode_operand b)
    | Ir.Instr.Fcmp (p, a, b) ->
        compile_fcmp ~nregs p d (decode_operand a) (decode_operand b)
    | Ir.Instr.Cast (c, a) ->
        let from_ =
          match a with
          | Ir.Instr.Const cst -> Ir.Instr.const_ty cst
          | Ir.Instr.Reg r -> fi.reg_tys.(r)
        in
        compile_cast ~nregs c ~from_ ~to_:ty d (decode_operand a)
    | Ir.Instr.Select (c, a, b) -> (
        let sc = decode_operand c
        and sa = decode_operand a
        and sb = decode_operand b in
        let ok r = r >= 0 && r < nregs in
        match (sc, sa, sb) with
        | Slot rc, Slot ra, Slot rb when ok d && ok rc && ok ra && ok rb ->
            fun regs ->
              Array.unsafe_set regs d
                (if Ir.Eval.is_true (Array.unsafe_get regs rc) then
                   Array.unsafe_get regs ra
                 else Array.unsafe_get regs rb)
        | _ ->
            (* all three operands are read strictly, like the reference
               engine's [eval_select] call *)
            fun regs ->
              let vc = fetch regs sc
              and va = fetch regs sa
              and vb = fetch regs sb in
              regs.(d) <- (if Ir.Eval.is_true vc then va else vb))
    | Ir.Instr.Alloca (_, count) ->
        fun regs -> regs.(d) <- Ir.Eval.VPtr (Memory.alloc mem count)
    | Ir.Instr.Load a -> (
        match decode_operand a with
        | Slot ra when d >= 0 && d < nregs && ra >= 0 && ra < nregs ->
            fun regs ->
              Array.unsafe_set regs d
                (Memory.load mem (Ir.Eval.as_ptr (Array.unsafe_get regs ra)))
        | Slot ra ->
            fun regs -> regs.(d) <- Memory.load mem (Ir.Eval.as_ptr regs.(ra))
        | Imm va -> fun regs -> regs.(d) <- Memory.load mem (Ir.Eval.as_ptr va)
        )
    | Ir.Instr.Store (x, a) -> (
        match (decode_operand x, decode_operand a) with
        | Slot rx, Slot ra when rx < nregs && ra < nregs && rx >= 0 && ra >= 0
          ->
            fun regs ->
              Memory.store mem
                (Ir.Eval.as_ptr (Array.unsafe_get regs ra))
                (Array.unsafe_get regs rx)
        | sx, sa ->
            fun regs ->
              Memory.store mem (Ir.Eval.as_ptr (fetch regs sa)) (fetch regs sx)
        )
    | Ir.Instr.Gep (base, idx) -> (
        let sb = decode_operand base and si = decode_operand idx in
        let ok r = r >= 0 && r < nregs in
        match (sb, si) with
        | Slot a, Slot b when ok d && ok a && ok b ->
            fun regs ->
              Array.unsafe_set regs d
                (Ir.Eval.VPtr
                   (Ir.Eval.as_ptr (Array.unsafe_get regs a)
                   + Int64.to_int (Ir.Eval.as_int (Array.unsafe_get regs b))))
        | Slot a, Imm (Ir.Eval.VInt ib) when ok d && ok a ->
            let n = Int64.to_int ib in
            fun regs ->
              Array.unsafe_set regs d
                (Ir.Eval.VPtr (Ir.Eval.as_ptr (Array.unsafe_get regs a) + n))
        | _ ->
            bin_closure ~nregs
              (fun vb vi ->
                Ir.Eval.VPtr
                  (Ir.Eval.as_ptr vb + Int64.to_int (Ir.Eval.as_int vi)))
              d sb si)
    | Ir.Instr.Gaddr g ->
        (* Left as a per-execution lookup on purpose: resolving at
           compile time would turn an unknown global in never-executed
           code into an eager error the reference engine doesn't raise. *)
        fun regs -> regs.(d) <- Ir.Eval.VPtr (Memory.global_base mem g)
    | Ir.Instr.Call (name, argops) -> (
        let srcs = Array.of_list (List.map decode_operand argops) in
        let eval_args = args_fn srcs in
        match Hashtbl.find_opt st.funcs name with
        | Some callee -> (
            fun regs ->
              match exec_threaded st callee (eval_args regs) with
              | Some r -> regs.(d) <- r
              | None -> ())
        | None -> (
            match find_intrinsic name with
            | Some impl -> fun regs -> regs.(d) <- impl (eval_args regs)
            | None -> fun _ -> fault "call to unknown function @%s" name))
    | Ir.Instr.Ci_call (ci, argops) -> (
        let srcs = Array.of_list (List.map decode_operand argops) in
        let eval_args = args_fn srcs in
        match Hashtbl.find_opt st.cis ci with
        | Some impl -> (
            match st.swap with
            | None ->
                let cyc = float_of_int impl.ci_cycles in
                fun regs ->
                  regs.(d) <- impl.ci_eval (eval_args regs);
                  st.native <- st.native +. cyc;
                  st.vm <- st.vm +. cyc
            | Some cells ->
                (* Hot-swappable binding: the charge is read from the
                   CI's swap cell at dispatch so the controller can
                   rebind software/hardware cost between blocks without
                   recompiling the fused closures. *)
                let cell =
                  match Hashtbl.find_opt cells ci with
                  | Some c -> c
                  | None ->
                      let c = ref (float_of_int impl.ci_cycles) in
                      Hashtbl.replace cells ci c;
                      c
                in
                fun regs ->
                  regs.(d) <- impl.ci_eval (eval_args regs);
                  let cyc = !cell in
                  st.native <- st.native +. cyc;
                  st.vm <- st.vm +. cyc)
        | None -> fun _ -> fault "custom instruction #%d is not configured" ci)
  in
  let t_ops =
    Array.init (bi.ninstrs - nphi) (fun j -> compile_instr bi.instrs.(nphi + j))
  in
  let t_term =
    match bi.term with
    | Ir.Instr.Ret None -> T_halt
    | Ir.Instr.Ret (Some op) -> T_ret (decode_operand op)
    | Ir.Instr.Br l -> T_br l
    | Ir.Instr.Cond_br (c, a, b) -> (
        match decode_operand c with
        | Slot r -> T_cond_s (r, a, b)
        | s -> T_cond (s, a, b))
    | Ir.Instr.Switch (s, default, _) ->
        let tbl =
          match bi.switch_cases with Some tbl -> tbl | None -> assert false
        in
        T_switch (decode_operand s, default, tbl)
  in
  (* A block needs fuel/clock synchronization only when its body can
     reach the shared [state]: a call that resolves to a user function
     (the callee runs on [st]) or a configured custom instruction
     (charges [st] clocks).  Intrinsic calls and the fault closures for
     unresolved names touch only the register file. *)
  let t_sync =
    Array.exists
      (fun (i : Ir.Instr.t) ->
        match i.Ir.Instr.kind with
        | Ir.Instr.Call (name, _) -> Hashtbl.mem st.funcs name
        | Ir.Instr.Ci_call (ci, _) -> Hashtbl.mem st.cis ci
        | _ -> false)
      bi.instrs
  in
  {
    t_info = bi;
    t_ops;
    t_phi_dests = bi.phi_dests;
    t_phi_srcs;
    t_phi_scratch = Array.make (max 1 nphi) (Ir.Eval.VInt 0L);
    t_term;
    t_sync;
    t_fuel = bi.ninstrs + 1;
    t_native = float_of_int bi.static_cycles;
    (* The exact float expressions [Jit_model.block_execution_cycles]
       evaluates on each branch, performed once. *)
    t_hot = st.jit.Jit_model.hot_factor *. float_of_int bi.static_cycles;
    t_cold =
      float_of_int
        (bi.static_cycles + (Ir.Cost.vm_dispatch_cycles * bi.ninstrs));
  }

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Run [entry] with scalar [args].

    @param fuel maximum dynamic instructions (default 4e9)
    @param jit VM cost model (default {!Jit_model.default})
    @param cis configured custom instructions (default none)
    @param engine execution engine (default {!Threaded}); outcomes are
      identical across engines
    @param monitor online controller hook: receives the {!control}
      handle before any block executes, returns a per-dynamic-block
      callback.  Absent means the exact unmonitored code path —
      byte-identical clocks.
    @raise Fault on any runtime error. *)
let run ?(fuel = 4_000_000_000L) ?(jit = Jit_model.default)
    ?(cis = empty_cis ()) ?(engine = default_engine) ?monitor (m : Ir.Irmod.t)
    ~entry ~(args : Ir.Eval.value list) : outcome =
  let memory = Memory.create () in
  Memory.load_globals memory m;
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.Func.t) ->
      Hashtbl.replace funcs f.Ir.Func.name (prepare_func m f))
    m.Ir.Irmod.funcs;
  let swap =
    match monitor with None -> None | Some _ -> Some (Hashtbl.create 16)
  in
  let st =
    { funcs; memory; jit; cis; swap; mon = None; native = 0.0; vm = 0.0; fuel }
  in
  (match (monitor, swap) with
  | None, _ | _, None -> ()
  | Some mk, Some cells ->
      (* Every configured CI gets a swap cell up front so the monitor
         can rebind charges before the CI first executes. *)
      Hashtbl.iter
        (fun ci impl ->
          Hashtbl.replace cells ci (ref (float_of_int impl.ci_cycles)))
        cis;
      let control =
        {
          ctl_native = (fun () -> st.native);
          ctl_vm = (fun () -> st.vm);
          ctl_stall =
            (fun c ->
              st.native <- st.native +. c;
              st.vm <- st.vm +. c);
          ctl_bind =
            (fun ci c ->
              match Hashtbl.find_opt cells ci with
              | Some cell -> cell := c
              | None -> Hashtbl.replace cells ci (ref c));
          ctl_charge =
            (fun ci -> Option.map ( ! ) (Hashtbl.find_opt cells ci));
        }
      in
      st.mon <- Some (mk control));
  (* Whole-module dynamic translation at load time. *)
  st.vm <-
    st.vm
    +. Jit_model.module_translation_cycles jit
         ~module_instrs:(Ir.Irmod.num_instrs m);
  let fi =
    match Hashtbl.find_opt funcs entry with
    | Some fi -> fi
    | None -> fault "entry function @%s not found" entry
  in
  let ret =
    match engine with
    | Reference -> exec_func st fi (Array.of_list args)
    | Threaded ->
        Hashtbl.iter (fun _ fi -> fi.tblocks <- compile_func st fi) funcs;
        exec_threaded st fi (Array.of_list args)
  in
  (* Fold the run-local counters into a profile. *)
  let profile = Profile.create () in
  Hashtbl.iter
    (fun name (fi : func_info) ->
      Array.iteri
        (fun label bi ->
          if bi.exec_count > 0 then
            Profile.record profile ~func:name ~label
              ~count:(Int64.of_int bi.exec_count) ~instrs:bi.ninstrs)
        fi.blocks)
    funcs;
  { ret; native_cycles = st.native; vm_cycles = st.vm; profile; memory }
