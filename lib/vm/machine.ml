(** The bitcode virtual machine.

    An SSA interpreter with cycle accounting.  One run simultaneously
    accumulates two clocks:

    - [native_cycles]: the cost of the program under static compilation
      (the paper's "Native" column), from {!Jitise_ir.Cost};
    - [vm_cycles]: the cost under the VM's JIT execution model
      ({!Jit_model}), the paper's "VM" column.

    The machine also records the block-frequency {!Profile} and executes
    custom-instruction calls ([Ci_call]) through a registry that charges
    the hardware latency of the reconfigurable functional unit instead
    of the software cycles — which is how adapted binaries are timed on
    the Woolcano model.

    Two execution engines produce byte-identical outcomes:

    - {!Reference} walks the instruction AST, re-matching every
      [Ir.Instr.kind] and re-resolving every operand on each dynamic
      instruction — the semantics baseline;
    - {!Threaded} (the default) compiles each basic block once, at
      prepare time, into an array of pre-decoded operation closures:
      operands are resolved to register slots or immediate values,
      operators to specialized {!Jitise_ir.Eval} closures, callees /
      custom instructions / intrinsics are bound ahead of time, and
      terminators (including [Switch] case tables) are pre-resolved to
      block indices.  The hot loop is then an array walk of closure
      calls with no AST dispatch.

    Cycle accounting, fuel, profiles and fault messages are identical
    across engines (pinned by the differential suite in test_vm). *)

module Ir = Jitise_ir

exception Fault of string

let fault fmt = Printf.ksprintf (fun m -> raise (Fault m)) fmt

(* ------------------------------------------------------------------ *)
(* Custom instruction registry                                         *)
(* ------------------------------------------------------------------ *)

type ci_impl = {
  ci_eval : Ir.Eval.value array -> Ir.Eval.value;
      (** functional semantics of the custom instruction *)
  ci_cycles : int;
      (** CPU cycles one invocation takes on the custom functional
          unit, including the instruction-interface overhead *)
  ci_native : (Ir.Eval.value array -> Ir.Eval.value) option;
      (** fused closure compiled ahead of time from the CI's MISO
          subgraph: one dispatch, no per-node interpretation.  Must be
          functionally identical to [ci_eval] — the threaded engine
          dispatches it when the [ci_native] tuning knob is on, the
          reference engine never does, and the differential suite pins
          the two paths to identical outcomes. *)
}

type ci_registry = (int, ci_impl) Hashtbl.t

let empty_cis () : ci_registry = Hashtbl.create 8

(* ------------------------------------------------------------------ *)
(* Intrinsics                                                          *)
(* ------------------------------------------------------------------ *)

(* One table holds every intrinsic: the name list and the dispatcher
   cannot drift apart (they used to be separate [intrinsic] /
   [is_intrinsic] matches), and the threaded engine binds the
   implementation closure directly at block-compile time. *)
let intrinsic_table : (string, Ir.Eval.value array -> Ir.Eval.value) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let f1 name op =
    Hashtbl.replace tbl name (fun args ->
        if Array.length args <> 1 then fault "intrinsic %s: arity" name
        else Ir.Eval.VFloat (op (Ir.Eval.as_float args.(0))))
  in
  let i1 name op =
    Hashtbl.replace tbl name (fun args ->
        if Array.length args <> 1 then fault "intrinsic %s: arity" name
        else Ir.Eval.VInt (op (Ir.Eval.as_int args.(0))))
  in
  let i2 name op =
    Hashtbl.replace tbl name (fun args ->
        if Array.length args <> 2 then fault "intrinsic %s: arity" name
        else
          Ir.Eval.VInt
            (op (Ir.Eval.as_int args.(0)) (Ir.Eval.as_int args.(1))))
  in
  f1 "sqrt" sqrt;
  f1 "sin" sin;
  f1 "cos" cos;
  f1 "atan" atan;
  f1 "exp" exp;
  f1 "log" log;
  f1 "fabs" abs_float;
  f1 "floor" floor;
  Hashtbl.replace tbl "pow" (fun args ->
      if Array.length args <> 2 then fault "intrinsic pow: arity"
      else
        Ir.Eval.VFloat
          (Float.pow (Ir.Eval.as_float args.(0)) (Ir.Eval.as_float args.(1))));
  i1 "abs" Int64.abs;
  i2 "min" min;
  i2 "max" max;
  tbl

let find_intrinsic name = Hashtbl.find_opt intrinsic_table name
let is_intrinsic name = Hashtbl.mem intrinsic_table name

let intrinsic name (args : Ir.Eval.value array) : Ir.Eval.value =
  match find_intrinsic name with
  | Some impl -> impl args
  | None -> fault "unknown function @%s" name

(* ------------------------------------------------------------------ *)
(* Execution engines                                                   *)
(* ------------------------------------------------------------------ *)

type engine =
  | Reference  (** AST-walking interpreter (the semantics baseline) *)
  | Threaded  (** per-block closure compilation with pre-decoded operands *)

let default_engine = Threaded
let engines = [ Reference; Threaded ]

let engine_name = function Reference -> "reference" | Threaded -> "threaded"

let engine_of_string = function
  | "reference" -> Some Reference
  | "threaded" -> Some Threaded
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Engine tuning                                                       *)
(* ------------------------------------------------------------------ *)

(** Optimization knobs of the {!Threaded} engine.  Every knob is
    semantics-preserving by construction — outcomes (including clocks,
    fuel, profiles and fault messages) are byte-identical across all
    combinations, pinned by the differential suite — so the knobs exist
    for isolation benchmarking and differential testing, not for
    trading accuracy against speed. *)
type tuning = {
  link : bool;
      (** block linking: terminators transfer to the successor's
          compiled block directly instead of returning to the indexed
          dispatch loop *)
  fuse : bool;
      (** superinstructions: peephole-fuse hot multi-op sequences into
          single non-allocating closures *)
  ci_native : bool;
      (** dispatch a loaded CI's pre-compiled fused closure
          ({!ci_impl.ci_native}) instead of interpreting its MISO
          subgraph op by op *)
  regalloc : bool;
      (** typed register files: partition each function's virtual
          registers by their declared types into unboxed slot arrays
          ([int64]/[float]/[int] address slots), so hot int/float
          arithmetic, compares, casts, address computation and
          load/store addressing read and write machine scalars instead
          of boxed {!Jitise_ir.Eval.value}s.  Boxing happens only at
          the seams: call arguments and returns, intrinsics, custom
          instructions and memory cells (which stay untyped).  Off =
          the boxed compiled blocks, exactly (DESIGN.md §14). *)
  max_linked_blocks : int;
      (** linked-transfer budget: after this many consecutive direct
          block-to-block transfers the engine takes one trip through
          the indexed dispatch path (the escape hatch), so linking
          cannot starve it.  Fuel, clocks and the monitor hook run at
          every block boundary regardless. *)
}

let default_tuning =
  {
    link = true;
    fuse = true;
    ci_native = true;
    regalloc = true;
    max_linked_blocks = 64;
  }

(** The PR 4 threaded engine: every optimization layer off. *)
let untuned =
  {
    link = false;
    fuse = false;
    ci_native = false;
    regalloc = false;
    max_linked_blocks = 64;
  }

(* Per-pattern superinstruction hit counters (compile-time events, one
   bump per fused window per block compilation).  Guarded by a mutex:
   parallel sweeps compile modules from several domains. *)
let fusion_mu = Mutex.create ()
let fusion_counters : (string, int) Hashtbl.t = Hashtbl.create 32

let bump_fusion name =
  Mutex.lock fusion_mu;
  Hashtbl.replace fusion_counters name
    (1 + Option.value ~default:0 (Hashtbl.find_opt fusion_counters name));
  Mutex.unlock fusion_mu

(** Per-pattern fusion counts since start (or the last
    {!reset_fusion_stats}), sorted by pattern name. *)
let fusion_stats () =
  Mutex.lock fusion_mu;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) fusion_counters [] in
  Mutex.unlock fusion_mu;
  List.sort compare l

let reset_fusion_stats () =
  Mutex.lock fusion_mu;
  Hashtbl.reset fusion_counters;
  Mutex.unlock fusion_mu

(* ------------------------------------------------------------------ *)
(* Prepared module                                                     *)
(* ------------------------------------------------------------------ *)

(* A pre-decoded operand: either an immediate already converted to an
   {!Ir.Eval.value} or a register slot index.  The threaded engine's
   closures fetch through this, never through [Ir.Instr.operand]. *)
type src = Imm of Ir.Eval.value | Slot of int

let fetch regs = function Imm v -> v | Slot r -> regs.(r)

(* A pre-decoded phi source: like [src option] but flat, so the phi
   prologue — which runs for every phi on every dynamic iteration of a
   loop header — does a single match instead of an [Option] match
   followed by a [src] match. *)
type psrc = P_slot of int | P_imm of Ir.Eval.value | P_missing

(* Per-block static data, computed once per run.  [exec_count] is the
   run-local profile counter (folded into a Profile at the end — much
   cheaper than a hashtable update per block execution).  The phi
   prologue is pre-resolved: [phi_incoming.(k).(pred)] is the operand
   phi [k] takes when entered from block [pred], so the hot loop does
   two array reads per phi instead of scanning an association list on
   every block execution.  [switch_cases] pre-resolves a [Switch]
   terminator's case list into a hashtable (first entry wins for
   duplicate case values, like [List.assoc_opt] did), shared by both
   engines. *)
type block_info = {
  instrs : Ir.Instr.t array;
  term : Ir.Instr.terminator;
  ninstrs : int;
  static_cycles : int;  (* excludes user-call callees and CI latencies *)
  phi_count : int;  (* leading phis; a phi past them still faults *)
  phi_dests : int array;  (* destination register of each leading phi *)
  phi_incoming : Ir.Instr.operand option array array;
      (* per leading phi, indexed by predecessor block label *)
  switch_cases : (int64, Ir.Instr.label) Hashtbl.t option;
      (* case value -> target, when [term] is a [Switch] *)
  mutable exec_count : int;
      (* an immediate int, not an int64: incrementing it must not
         allocate (it happens once per dynamic block).  Fuel bounds the
         total far below [max_int]. *)
}

(* A pre-decoded terminator: targets are block indices, scrutinees and
   return operands are [src]s, switch tables are shared with
   [block_info.switch_cases]. *)
type tterm =
  | T_halt  (** [ret] of void *)
  | T_ret of src
  | T_br of int
  | T_cond of src * int * int
  | T_cond_s of int * int * int
      (** the common slot-scrutinee conditional, pre-split so the hot
          loop skips the [src] match *)
  | T_cmp_br of (Ir.Eval.value array -> bool) * int * int
      (** a compare-and-branch superinstruction: the block's trailing
          compare (whose result fed only this terminator) fused into
          the branch decision, skipping the boolean's materialization *)
  | T_switch of src * int * (int64, Ir.Instr.label) Hashtbl.t

(* Register class under the typed-register-file knob ([tuning.regalloc]),
   from the declared register type.  Every register of a function lives
   in exactly one unboxed slot array of its {!frame}; [C_boxed] covers
   registers with no declared type ([Void]), which keep the boxed
   representation. *)
type rclass = C_int | C_float | C_ptr | C_boxed

(* A typed register file: one invocation's registers, partitioned by
   {!rclass} into parallel unboxed slot arrays.  Registers are
   renumbered per class at compile time ({!func_info.rslots}), so a
   frame allocates one word per register — the same footprint as the
   boxed file — and int/float traffic reads and writes machine scalars
   with no constructor matching and no allocation. *)
type frame = {
  fr_i : int64 array;
  fr_f : float array;
  fr_p : int array;
  fr_v : Ir.Eval.value array;
}

type func_info = {
  func : Ir.Func.t;
  blocks : block_info array;
  reg_tys : Ir.Ty.t array;  (* type of each register, Void if undefined *)
  use_counts : int array;
      (* static use count of each register over the whole function
         (operands and terminators, phis included).  The fusion pass
         may skip writing an intermediate register only when its count
         is exactly 1: the register file is not part of the outcome,
         and nothing else reads the slot. *)
  mutable tblocks : tblock array;
      (* threaded code, [||] until {!compile_func} runs for this
         function (the reference engine never compiles) *)
  mutable rclasses : rclass array;
      (* per-register class, [||] until {!compile_rfunc} runs (only
         under the [regalloc] knob) *)
  mutable rslots : int array;
      (* per-register index inside its class's frame array — the
         per-class renumbering; [||] until {!compile_rfunc} runs *)
  mutable rcounts : int array;
      (* frame-array lengths, indexed [C_int; C_float; C_ptr; C_boxed];
         [||] until {!compile_rfunc} runs *)
  mutable rtblocks : rtblock array;
      (* typed-register-file threaded code, [||] until
         {!compile_rfunc} runs (only under the [regalloc] knob) *)
}

(* One compiled block of the threaded engine.  Blocks are compiled per
   run, after the run's [state] exists, so op closures capture the
   state (and the memory, the CI registry, callee [func_info]s, ...)
   directly instead of receiving them as arguments.  The cycle charges
   of {!Jit_model.block_execution_cycles} only depend on whether the
   block is past warm-up, so both branches are precomputed here — the
   identical float operations, performed once. *)
and tblock = {
  t_info : block_info;  (* shared counters and static cycle data *)
  t_label : int;  (* this block's label, for linked re-dispatch *)
  t_ops : (Ir.Eval.value array -> unit) array;
      (* non-phi body, one pre-decoded closure per fused window (one
         per instruction when fusion is off) *)
  t_phi_dests : int array;
  t_phi_srcs : psrc array array;
  t_phi_scratch : Ir.Eval.value array;
      (* staging buffer for the parallel phi assignment; safe to reuse
         because the phi prologue cannot re-enter this function *)
  t_term : tterm;
  mutable t_link : linkterm;
      (* the linked form of [t_term]: successor labels resolved to the
         successor [tblock]s themselves.  [L_none] until {!link_func}
         patches the function (and permanently for terminators whose
         labels fall outside the function — those keep faulting through
         the indexed path, like the unlinked engine). *)
  t_sync : bool;
      (* block contains a resolved user call or custom instruction, so
         the interpreter's local fuel / clock accumulators must be
         written back to the shared [state] before the body runs and
         re-read after *)
  t_fuel : int;  (* ninstrs + 1 *)
  t_native : float;  (* float_of_int static_cycles *)
  t_hot : float;  (* post-warm-up VM charge per execution *)
  t_cold : float;  (* interpreted VM charge per execution *)
}

(* A linked terminator: control transfers to the successor's compiled
   block directly, without going back through the indexed dispatch of
   the interpreter loop. *)
and linkterm =
  | L_none
  | L_halt
  | L_ret of src
  | L_br of tblock
  | L_cond of src * tblock * tblock
  | L_cond_s of int * tblock * tblock
  | L_cmp_br of (Ir.Eval.value array -> bool) * tblock * tblock
  | L_switch of src * tblock * (int64, tblock) Hashtbl.t

(* One compiled block of the typed-register-file engine
   ([tuning.regalloc]).  Same shape as {!tblock}, but every op closure
   works over a {!frame} — int/float/address traffic reads and writes
   the unboxed slot arrays directly, and boxed [Ir.Eval.value]s appear
   only at the seams (call/return, CI dispatch, intrinsics, memory
   cells, [C_boxed] registers). *)
and rtblock = {
  r_info : block_info;  (* shared counters and static cycle data *)
  r_label : int;
  r_ops : (frame -> unit) array;
  r_phi_rows : (frame -> unit) array;
      (* the whole phi prologue, pre-compiled per predecessor label:
         [r_phi_rows.(pred)] stages every phi's incoming value into
         per-class scratch and then commits — [||] when the block has
         no phis.  Staging buffers are safe to reuse because the phi
         prologue cannot re-enter this function. *)
  r_term : rterm;
  mutable r_link : rlinkterm;
  r_sync : bool;
  r_fuel : int;
  r_native : float;
  r_hot : float;
  r_cold : float;
}

(* A pre-decoded terminator over typed register files.  Scrutinees and
   return operands are compiled accessors rather than [src]s: the class
   dispatch happens at compile time, not per execution. *)
and rterm =
  | R_halt
  | R_ret of (frame -> Ir.Eval.value)
  | R_br of int
  | R_cond of (frame -> bool) * int * int
  | R_cmp_br of (frame -> bool) * int * int
      (** fused compare-and-branch, like {!T_cmp_br}: faults inside the
          condition are re-wrapped by the executor *)
  | R_switch of (frame -> int64) * int * (int64, Ir.Instr.label) Hashtbl.t

and rlinkterm =
  | RL_none
  | RL_halt
  | RL_ret of (frame -> Ir.Eval.value)
  | RL_br of rtblock
  | RL_cond of (frame -> bool) * rtblock * rtblock
  | RL_cmp_br of (frame -> bool) * rtblock * rtblock
  | RL_switch of (frame -> int64) * rtblock * (int64, rtblock) Hashtbl.t

and state = {
  funcs : (string, func_info) Hashtbl.t;
  memory : Memory.t;
  jit : Jit_model.t;
  cis : ci_registry;
  swap : (int, float ref) Hashtbl.t option;
      (* online hot-swap: per-CI cycle-charge cells read at dispatch
         instead of the statically bound charge; [None] (no monitor)
         keeps the compiled fast path untouched *)
  tuning : tuning;
      (* threaded-engine optimization knobs; ignored by the reference
         engine *)
  mutable mon : (func:string -> label:int -> ninstrs:int -> unit) option;
  mutable native : float;
  mutable vm : float;
  mutable fuel : int64;  (* remaining dynamic instructions; negative = out *)
}

let prepare_func (m : Ir.Irmod.t) (f : Ir.Func.t) : func_info =
  let is_user_func name = Ir.Irmod.find_func m name <> None in
  let reg_tys = Array.make (max 1 f.Ir.Func.next_reg) Ir.Ty.Void in
  List.iter (fun (r, ty) -> reg_tys.(r) <- ty) f.Ir.Func.params;
  Ir.Func.iter_instrs
    (fun _ (i : Ir.Instr.t) ->
      if i.Ir.Instr.id < Array.length reg_tys then
        reg_tys.(i.Ir.Instr.id) <- i.Ir.Instr.ty)
    f;
  let nblocks = Array.length f.Ir.Func.blocks in
  let blocks =
    Array.map
      (fun (b : Ir.Block.t) ->
        let instrs = Array.of_list b.Ir.Block.instrs in
        let static_cycles =
          Array.fold_left
            (fun acc (i : Ir.Instr.t) ->
              acc
              +
              match i.Ir.Instr.kind with
              | Ir.Instr.Call (name, _) when is_user_func name ->
                  Ir.Cost.call_linkage_cycles
              | kind -> Ir.Cost.cycles kind)
            0 instrs
          + Ir.Cost.terminator_cycles b.Ir.Block.term
        in
        let n = Array.length instrs in
        let phi_count =
          let rec go k =
            if
              k < n
              &&
              match instrs.(k).Ir.Instr.kind with
              | Ir.Instr.Phi _ -> true
              | _ -> false
            then go (k + 1)
            else k
          in
          go 0
        in
        let phi_dests =
          Array.init phi_count (fun k -> instrs.(k).Ir.Instr.id)
        in
        let phi_incoming =
          Array.init phi_count (fun k ->
              match instrs.(k).Ir.Instr.kind with
              | Ir.Instr.Phi incoming ->
                  let row = Array.make nblocks None in
                  (* first match wins, like List.assoc_opt did; labels
                     outside the function are unreachable dead entries *)
                  List.iter
                    (fun (pred, op) ->
                      if pred >= 0 && pred < nblocks then
                        match row.(pred) with
                        | None -> row.(pred) <- Some op
                        | Some _ -> ())
                    incoming;
                  row
              | _ -> assert false)
        in
        let switch_cases =
          match b.Ir.Block.term with
          | Ir.Instr.Switch (_, _, cases) ->
              let tbl = Hashtbl.create (max 4 (List.length cases)) in
              (* first match wins, like List.assoc_opt did *)
              List.iter
                (fun (v, l) -> if not (Hashtbl.mem tbl v) then Hashtbl.add tbl v l)
                cases;
              Some tbl
          | _ -> None
        in
        {
          instrs;
          term = b.Ir.Block.term;
          ninstrs = n;
          static_cycles;
          phi_count;
          phi_dests;
          phi_incoming;
          switch_cases;
          exec_count = 0;
        })
      f.Ir.Func.blocks
  in
  let use_counts = Array.make (max 1 f.Ir.Func.next_reg) 0 in
  let count_op = function
    | Ir.Instr.Reg r when r >= 0 && r < Array.length use_counts ->
        use_counts.(r) <- use_counts.(r) + 1
    | _ -> ()
  in
  Ir.Func.iter_instrs
    (fun _ (i : Ir.Instr.t) ->
      List.iter count_op (Ir.Instr.operands i.Ir.Instr.kind))
    f;
  Array.iter
    (fun (b : Ir.Block.t) ->
      List.iter count_op (Ir.Instr.terminator_operands b.Ir.Block.term))
    f.Ir.Func.blocks;
  {
    func = f;
    blocks;
    reg_tys;
    use_counts;
    tblocks = [||];
    rclasses = [||];
    rslots = [||];
    rcounts = [||];
    rtblocks = [||];
  }

(* ------------------------------------------------------------------ *)
(* Reference engine                                                    *)
(* ------------------------------------------------------------------ *)

type outcome = {
  ret : Ir.Eval.value option;
  native_cycles : float;
  vm_cycles : float;
  profile : Profile.t;
  memory : Memory.t;
}

(** Simulated seconds for a cycle count, at the PowerPC 405 clock. *)
let seconds_of_cycles c = c *. Ir.Cost.cycle_time

(** Handle an online controller uses to observe and steer a run from
    inside the monitor callback.  Only valid during the callback: the
    threaded engine flushes its local accumulators to the shared state
    before invoking the monitor and reloads them after, so the clocks
    read consistently and stalls/rebinds land between blocks without
    disturbing the fused closures. *)
type control = {
  ctl_native : unit -> float;  (** native clock, cycles *)
  ctl_vm : unit -> float;  (** VM clock, cycles *)
  ctl_stall : float -> unit;
      (** charge a stall (e.g. a reconfiguration wait) to both clocks *)
  ctl_bind : int -> float -> unit;
      (** set the per-dispatch cycle charge of a CI — the hot-swap
          point: software-mode and hardware-mode cost per call *)
  ctl_charge : int -> float option;  (** current per-dispatch charge *)
}

(** A monitor receives the {!control} handle at run start (before any
    block executes) and returns a callback invoked once per dynamic
    basic block, after that block's clock charge.  When absent, the run
    takes exactly the unmonitored code path — byte-identical clocks. *)
type monitor = control -> func:string -> label:int -> ninstrs:int -> unit

let value_of_operand regs = function
  | Ir.Instr.Const c -> Ir.Eval.of_const c
  | Ir.Instr.Reg r -> regs.(r)

let rec exec_func (st : state) (fi : func_info) (args : Ir.Eval.value array) :
    Ir.Eval.value option =
  let f = fi.func in
  if Array.length args <> List.length f.Ir.Func.params then
    fault "@%s: expected %d arguments, got %d" f.Ir.Func.name
      (List.length f.Ir.Func.params)
      (Array.length args);
  let regs = Array.make (max 1 f.Ir.Func.next_reg) (Ir.Eval.VInt 0L) in
  Array.iteri (fun i v -> regs.(i) <- v) args;
  let frame_mark = Memory.mark st.memory in
  let finish v =
    Memory.release st.memory frame_mark;
    v
  in
  let cur = ref Ir.Func.entry_label in
  let prev = ref (-1) in
  let result = ref None in
  let running = ref true in
  while !running do
    let bi = fi.blocks.(!cur) in
    (* Fuel. *)
    st.fuel <- Int64.sub st.fuel (Int64.of_int (bi.ninstrs + 1));
    if st.fuel < 0L then fault "execution budget exhausted in @%s" f.Ir.Func.name;
    (* Profile and clocks.  [prior] is the pre-increment count used by
       the JIT warm-up model. *)
    let prior = bi.exec_count in
    bi.exec_count <- prior + 1;
    st.native <- st.native +. float_of_int bi.static_cycles;
    st.vm <-
      st.vm
      +. Jit_model.block_execution_cycles st.jit ~prior:(Int64.of_int prior)
           ~ninstrs:bi.ninstrs ~native_cycles:bi.static_cycles;
    (match st.mon with
    | None -> ()
    | Some mon -> mon ~func:f.Ir.Func.name ~label:!cur ~ninstrs:bi.ninstrs);
    (* Phis first, read atomically: the incoming operand per
       predecessor was pre-resolved into an array in [prepare_func]. *)
    let n = bi.ninstrs in
    let nphi = bi.phi_count in
    if nphi > 0 then begin
      let staged = Array.make nphi (Ir.Eval.VInt 0L) in
      for k = 0 to nphi - 1 do
        let row = bi.phi_incoming.(k) in
        match
          if !prev >= 0 && !prev < Array.length row then row.(!prev) else None
        with
        | Some op -> staged.(k) <- value_of_operand regs op
        | None ->
            fault "@%s/bb%d: phi has no entry for predecessor bb%d"
              f.Ir.Func.name !cur !prev
      done;
      for k = 0 to nphi - 1 do
        regs.(bi.phi_dests.(k)) <- staged.(k)
      done
    end;
    (* Straight-line body. *)
    for k = nphi to n - 1 do
      let i = bi.instrs.(k) in
      let v op = value_of_operand regs op in
      let set x = regs.(i.Ir.Instr.id) <- x in
      try
        match i.Ir.Instr.kind with
        | Ir.Instr.Phi _ ->
            fault "@%s/bb%d: phi after non-phi" f.Ir.Func.name !cur
        | Ir.Instr.Binop (op, a, b) ->
            set (Ir.Eval.eval_binop i.Ir.Instr.ty op (v a) (v b))
        | Ir.Instr.Icmp (p, a, b) -> set (Ir.Eval.eval_icmp p (v a) (v b))
        | Ir.Instr.Fcmp (p, a, b) -> set (Ir.Eval.eval_fcmp p (v a) (v b))
        | Ir.Instr.Cast (c, a) ->
            let from_ =
              match a with
              | Ir.Instr.Const cst -> Ir.Instr.const_ty cst
              | Ir.Instr.Reg r -> fi.reg_tys.(r)
            in
            set (Ir.Eval.eval_cast c ~from_ ~to_:i.Ir.Instr.ty (v a))
        | Ir.Instr.Select (c, a, b) ->
            set (Ir.Eval.eval_select (v c) (v a) (v b))
        | Ir.Instr.Alloca (_, count) ->
            set (Ir.Eval.VPtr (Memory.alloc st.memory count))
        | Ir.Instr.Load a -> set (Memory.load st.memory (Ir.Eval.as_ptr (v a)))
        | Ir.Instr.Store (x, a) ->
            Memory.store st.memory (Ir.Eval.as_ptr (v a)) (v x)
        | Ir.Instr.Gep (base, idx) ->
            set
              (Ir.Eval.VPtr
                 (Ir.Eval.as_ptr (v base) + Int64.to_int (Ir.Eval.as_int (v idx))))
        | Ir.Instr.Gaddr g -> set (Ir.Eval.VPtr (Memory.global_base st.memory g))
        | Ir.Instr.Call (name, argops) -> (
            let argv = Array.of_list (List.map v argops) in
            match Hashtbl.find_opt st.funcs name with
            | Some callee -> (
                match exec_func st callee argv with
                | Some r -> set r
                | None -> ())
            | None ->
                if is_intrinsic name then set (intrinsic name argv)
                else fault "call to unknown function @%s" name)
        | Ir.Instr.Ci_call (ci, argops) -> (
            match Hashtbl.find_opt st.cis ci with
            | Some impl ->
                let argv = Array.of_list (List.map v argops) in
                set (impl.ci_eval argv);
                let cyc =
                  match st.swap with
                  | None -> float_of_int impl.ci_cycles
                  | Some cells -> (
                      match Hashtbl.find_opt cells ci with
                      | Some c -> !c
                      | None -> float_of_int impl.ci_cycles)
                in
                st.native <- st.native +. cyc;
                st.vm <- st.vm +. cyc
            | None -> fault "custom instruction #%d is not configured" ci)
      with
      | Ir.Eval.Division_by_zero ->
          fault "@%s/bb%d: division by zero" f.Ir.Func.name !cur
      | Ir.Eval.Type_error m -> fault "@%s/bb%d: %s" f.Ir.Func.name !cur m
      | Memory.Bad_address a ->
          fault "@%s/bb%d: bad address %d" f.Ir.Func.name !cur a
      | Memory.Out_of_memory -> fault "@%s: out of memory" f.Ir.Func.name
    done;
    (* Terminator. *)
    (match bi.term with
    | Ir.Instr.Ret op ->
        result := Option.map (value_of_operand regs) op;
        running := false
    | Ir.Instr.Br l ->
        prev := !cur;
        cur := l
    | Ir.Instr.Cond_br (c, a, b) ->
        prev := !cur;
        cur := (if Ir.Eval.is_true (value_of_operand regs c) then a else b)
    | Ir.Instr.Switch (s, default, _) ->
        let sv = Ir.Eval.as_int (value_of_operand regs s) in
        let tbl =
          match bi.switch_cases with Some tbl -> tbl | None -> assert false
        in
        prev := !cur;
        cur := (match Hashtbl.find_opt tbl sv with Some l -> l | None -> default))
  done;
  finish !result

(* ------------------------------------------------------------------ *)
(* Threaded engine                                                     *)
(* ------------------------------------------------------------------ *)

(* Closure-shape helpers: specialize the four slot/immediate operand
   combinations so the hot path never matches a [src] constructor.
   Every function call executes on a fresh register file of [nregs]
   slots, so slot indices can be bounds-checked once at compile time
   and the hot path can use unchecked accesses.  A block that somehow
   references an out-of-range slot (the builder and verifier exclude
   this) falls back to checked accesses, which raise the same
   [Invalid_argument] the reference engine's [regs.(r)] would. *)
let slot_ok nregs = function
  | Slot r -> r >= 0 && r < nregs
  | Imm _ -> true

let bin_closure ~nregs (f : Ir.Eval.value -> Ir.Eval.value -> Ir.Eval.value) d
    sa sb : Ir.Eval.value array -> unit =
  if d >= 0 && d < nregs && slot_ok nregs sa && slot_ok nregs sb then
    match (sa, sb) with
    | Slot ra, Slot rb ->
        fun regs ->
          Array.unsafe_set regs d
            (f (Array.unsafe_get regs ra) (Array.unsafe_get regs rb))
    | Slot ra, Imm vb ->
        fun regs -> Array.unsafe_set regs d (f (Array.unsafe_get regs ra) vb)
    | Imm va, Slot rb ->
        fun regs -> Array.unsafe_set regs d (f va (Array.unsafe_get regs rb))
    | Imm va, Imm vb -> fun regs -> Array.unsafe_set regs d (f va vb)
  else
    match (sa, sb) with
    | Slot ra, Slot rb -> fun regs -> regs.(d) <- f regs.(ra) regs.(rb)
    | Slot ra, Imm vb -> fun regs -> regs.(d) <- f regs.(ra) vb
    | Imm va, Slot rb -> fun regs -> regs.(d) <- f va regs.(rb)
    | Imm va, Imm vb -> fun regs -> regs.(d) <- f va vb

(* [f] is applied per execution even for immediates: evaluating it at
   compile time would move a fault (a [Type_error] on a malformed
   constant, say) from execution to compilation — and compilation also
   covers blocks that never execute. *)
let un_closure ~nregs (f : Ir.Eval.value -> Ir.Eval.value) d sa :
    Ir.Eval.value array -> unit =
  if d >= 0 && d < nregs && slot_ok nregs sa then
    match sa with
    | Slot ra ->
        fun regs -> Array.unsafe_set regs d (f (Array.unsafe_get regs ra))
    | Imm va -> fun regs -> Array.unsafe_set regs d (f va)
  else
    match sa with
    | Slot ra -> fun regs -> regs.(d) <- f regs.(ra)
    | Imm va -> fun regs -> regs.(d) <- f va

let decode_operand : Ir.Instr.operand -> src = function
  | Ir.Instr.Const c -> Imm (Ir.Eval.of_const c)
  | Ir.Instr.Reg r -> Slot r

(* ------------------------------------------------------------------ *)
(* Fused fast paths                                                    *)
(* ------------------------------------------------------------------ *)

(* For the hottest operator x operand-shape combinations the op closure
   embeds the scalar semantics directly instead of calling the closure
   {!Ir.Eval.binop_fn} & co. would build, so the hot path makes one
   closure call instead of two.  The bodies are the same expressions
   the [Ir.Eval.*_fn] arms evaluate, composed from the same inlined
   Eval primitives ([as_int], [renorm], [umask], ...), with per-type
   constants ([norm_shift], shift and width masks) resolved at compile
   time.  Each fast path is gated on compile-time-validated slots and
   immediates whose conversion cannot fault; every other combination
   falls back to the generic closures, which keep the exact
   per-execution fault behavior.  The differential suite pins both
   engines to identical outcomes, so a semantic drift here cannot land
   silently. *)

module E = Ir.Eval

let[@inline] geti regs r = E.as_int (Array.unsafe_get regs r)
let[@inline] getf regs r = E.as_float (Array.unsafe_get regs r)
let[@inline] seti regs d (v : int64) = Array.unsafe_set regs d (E.VInt v)
let[@inline] setf regs d (v : float) = Array.unsafe_set regs d (E.VFloat v)

(* Comparison results are shared preallocated values (they are
   immutable and compared structurally everywhere), so a fused compare
   does not allocate at all. *)
let vtrue = E.VInt 1L
let vfalse = E.VInt 0L
let[@inline] setb regs d b = Array.unsafe_set regs d (if b then vtrue else vfalse)

let compile_binop ~nregs (ty : Ir.Ty.t) (op : Ir.Instr.binop) d sa sb :
    E.value array -> unit =
  let generic () = bin_closure ~nregs (E.binop_fn ty op) d sa sb in
  let ok r = r >= 0 && r < nregs in
  if not (ok d) then generic ()
  else
    let sh = E.norm_shift ty in
    (* [shift_amount]'s and [umask]'s masks, recovered by feeding them
       all-ones — keeps Eval the single source of the bit arithmetic. *)
    let sm = E.shift_amount ty (-1L) in
    let um = E.umask ty (-1L) in
    match (op, sa, sb) with
    | Ir.Instr.Add, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d (E.renorm sh (Int64.add (geti regs a) (geti regs b)))
    | Ir.Instr.Add, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> seti regs d (E.renorm sh (Int64.add (geti regs a) ib))
    | Ir.Instr.Sub, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d (E.renorm sh (Int64.sub (geti regs a) (geti regs b)))
    | Ir.Instr.Sub, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> seti regs d (E.renorm sh (Int64.sub (geti regs a) ib))
    | Ir.Instr.Mul, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d (E.renorm sh (Int64.mul (geti regs a) (geti regs b)))
    | Ir.Instr.Mul, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> seti regs d (E.renorm sh (Int64.mul (geti regs a) ib))
    | Ir.Instr.And, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d (E.renorm sh (Int64.logand (geti regs a) (geti regs b)))
    | Ir.Instr.And, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> seti regs d (E.renorm sh (Int64.logand (geti regs a) ib))
    | Ir.Instr.Or, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d (E.renorm sh (Int64.logor (geti regs a) (geti regs b)))
    | Ir.Instr.Or, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> seti regs d (E.renorm sh (Int64.logor (geti regs a) ib))
    | Ir.Instr.Xor, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d (E.renorm sh (Int64.logxor (geti regs a) (geti regs b)))
    | Ir.Instr.Xor, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> seti regs d (E.renorm sh (Int64.logxor (geti regs a) ib))
    | Ir.Instr.Shl, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d
            (E.renorm sh
               (Int64.shift_left (geti regs a)
                  (Int64.to_int (geti regs b) land sm)))
    | Ir.Instr.Shl, Slot a, Imm (E.VInt ib) when ok a ->
        let n = E.shift_amount ty ib in
        fun regs -> seti regs d (E.renorm sh (Int64.shift_left (geti regs a) n))
    | Ir.Instr.Lshr, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d
            (E.renorm sh
               (Int64.shift_right_logical
                  (Int64.logand (geti regs a) um)
                  (Int64.to_int (geti regs b) land sm)))
    | Ir.Instr.Lshr, Slot a, Imm (E.VInt ib) when ok a ->
        let n = E.shift_amount ty ib in
        fun regs ->
          seti regs d
            (E.renorm sh
               (Int64.shift_right_logical (Int64.logand (geti regs a) um) n))
    | Ir.Instr.Ashr, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          seti regs d
            (E.renorm sh
               (Int64.shift_right (geti regs a)
                  (Int64.to_int (geti regs b) land sm)))
    | Ir.Instr.Ashr, Slot a, Imm (E.VInt ib) when ok a ->
        let n = E.shift_amount ty ib in
        fun regs ->
          seti regs d (E.renorm sh (Int64.shift_right (geti regs a) n))
    | Ir.Instr.Fadd, Slot a, Slot b when ty <> Ir.Ty.F32 && ok a && ok b ->
        fun regs -> setf regs d (getf regs a +. getf regs b)
    | Ir.Instr.Fadd, Slot a, Imm (E.VFloat fb) when ty <> Ir.Ty.F32 && ok a ->
        fun regs -> setf regs d (getf regs a +. fb)
    | Ir.Instr.Fsub, Slot a, Slot b when ty <> Ir.Ty.F32 && ok a && ok b ->
        fun regs -> setf regs d (getf regs a -. getf regs b)
    | Ir.Instr.Fsub, Slot a, Imm (E.VFloat fb) when ty <> Ir.Ty.F32 && ok a ->
        fun regs -> setf regs d (getf regs a -. fb)
    | Ir.Instr.Fmul, Slot a, Slot b when ty <> Ir.Ty.F32 && ok a && ok b ->
        fun regs -> setf regs d (getf regs a *. getf regs b)
    | Ir.Instr.Fmul, Slot a, Imm (E.VFloat fb) when ty <> Ir.Ty.F32 && ok a ->
        fun regs -> setf regs d (getf regs a *. fb)
    | Ir.Instr.Fdiv, Slot a, Slot b when ty <> Ir.Ty.F32 && ok a && ok b ->
        fun regs -> setf regs d (getf regs a /. getf regs b)
    | Ir.Instr.Fdiv, Slot a, Imm (E.VFloat fb) when ty <> Ir.Ty.F32 && ok a ->
        fun regs -> setf regs d (getf regs a /. fb)
    | _ -> generic ()

let compile_icmp ~nregs (p : Ir.Instr.icmp_pred) d sa sb :
    E.value array -> unit =
  let generic () = bin_closure ~nregs (E.icmp_fn p) d sa sb in
  let ok r = r >= 0 && r < nregs in
  if not (ok d) then generic ()
  else
    match (p, sa, sb) with
    | Ir.Instr.Ieq, Slot a, Slot b when ok a && ok b ->
        fun regs -> setb regs d (Int64.equal (geti regs a) (geti regs b))
    | Ir.Instr.Ieq, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.equal (geti regs a) ib)
    | Ir.Instr.Ine, Slot a, Slot b when ok a && ok b ->
        fun regs -> setb regs d (not (Int64.equal (geti regs a) (geti regs b)))
    | Ir.Instr.Ine, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (not (Int64.equal (geti regs a) ib))
    | Ir.Instr.Islt, Slot a, Slot b when ok a && ok b ->
        fun regs -> setb regs d (Int64.compare (geti regs a) (geti regs b) < 0)
    | Ir.Instr.Islt, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.compare (geti regs a) ib < 0)
    | Ir.Instr.Isle, Slot a, Slot b when ok a && ok b ->
        fun regs -> setb regs d (Int64.compare (geti regs a) (geti regs b) <= 0)
    | Ir.Instr.Isle, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.compare (geti regs a) ib <= 0)
    | Ir.Instr.Isgt, Slot a, Slot b when ok a && ok b ->
        fun regs -> setb regs d (Int64.compare (geti regs a) (geti regs b) > 0)
    | Ir.Instr.Isgt, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.compare (geti regs a) ib > 0)
    | Ir.Instr.Isge, Slot a, Slot b when ok a && ok b ->
        fun regs -> setb regs d (Int64.compare (geti regs a) (geti regs b) >= 0)
    | Ir.Instr.Isge, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.compare (geti regs a) ib >= 0)
    | Ir.Instr.Iult, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          setb regs d (Int64.unsigned_compare (geti regs a) (geti regs b) < 0)
    | Ir.Instr.Iult, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.unsigned_compare (geti regs a) ib < 0)
    | Ir.Instr.Iule, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          setb regs d (Int64.unsigned_compare (geti regs a) (geti regs b) <= 0)
    | Ir.Instr.Iule, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.unsigned_compare (geti regs a) ib <= 0)
    | Ir.Instr.Iugt, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          setb regs d (Int64.unsigned_compare (geti regs a) (geti regs b) > 0)
    | Ir.Instr.Iugt, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.unsigned_compare (geti regs a) ib > 0)
    | Ir.Instr.Iuge, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          setb regs d (Int64.unsigned_compare (geti regs a) (geti regs b) >= 0)
    | Ir.Instr.Iuge, Slot a, Imm (E.VInt ib) when ok a ->
        fun regs -> setb regs d (Int64.unsigned_compare (geti regs a) ib >= 0)
    | _ -> generic ()

let compile_fcmp ~nregs (p : Ir.Instr.fcmp_pred) d sa sb :
    E.value array -> unit =
  let generic () = bin_closure ~nregs (E.fcmp_fn p) d sa sb in
  let ok r = r >= 0 && r < nregs in
  let[@inline] ord x y = not (Float.is_nan x || Float.is_nan y) in
  if not (ok d) then generic ()
  else
    match (p, sa, sb) with
    | Ir.Instr.Foeq, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          let x = getf regs a and y = getf regs b in
          setb regs d (ord x y && x = y)
    | Ir.Instr.Foeq, Slot a, Imm (E.VFloat fb) when ok a ->
        fun regs ->
          let x = getf regs a in
          setb regs d (ord x fb && x = fb)
    | Ir.Instr.Fone, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          let x = getf regs a and y = getf regs b in
          setb regs d (ord x y && x <> y)
    | Ir.Instr.Fone, Slot a, Imm (E.VFloat fb) when ok a ->
        fun regs ->
          let x = getf regs a in
          setb regs d (ord x fb && x <> fb)
    | Ir.Instr.Folt, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          let x = getf regs a and y = getf regs b in
          setb regs d (ord x y && x < y)
    | Ir.Instr.Folt, Slot a, Imm (E.VFloat fb) when ok a ->
        fun regs ->
          let x = getf regs a in
          setb regs d (ord x fb && x < fb)
    | Ir.Instr.Fole, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          let x = getf regs a and y = getf regs b in
          setb regs d (ord x y && x <= y)
    | Ir.Instr.Fole, Slot a, Imm (E.VFloat fb) when ok a ->
        fun regs ->
          let x = getf regs a in
          setb regs d (ord x fb && x <= fb)
    | Ir.Instr.Fogt, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          let x = getf regs a and y = getf regs b in
          setb regs d (ord x y && x > y)
    | Ir.Instr.Fogt, Slot a, Imm (E.VFloat fb) when ok a ->
        fun regs ->
          let x = getf regs a in
          setb regs d (ord x fb && x > fb)
    | Ir.Instr.Foge, Slot a, Slot b when ok a && ok b ->
        fun regs ->
          let x = getf regs a and y = getf regs b in
          setb regs d (ord x y && x >= y)
    | Ir.Instr.Foge, Slot a, Imm (E.VFloat fb) when ok a ->
        fun regs ->
          let x = getf regs a in
          setb regs d (ord x fb && x >= fb)
    | _ -> generic ()

(* Argument evaluation for calls and custom instructions, specialized
   by arity: the generic [Array.map] version allocates a fresh
   intermediate closure on every dynamic call. *)
let args_fn (srcs : src array) : E.value array -> E.value array =
  match srcs with
  | [||] -> fun _ -> [||]
  | [| s0 |] -> fun regs -> [| fetch regs s0 |]
  | [| s0; s1 |] -> fun regs -> [| fetch regs s0; fetch regs s1 |]
  | [| s0; s1; s2 |] ->
      fun regs -> [| fetch regs s0; fetch regs s1; fetch regs s2 |]
  | [| s0; s1; s2; s3 |] ->
      fun regs ->
        [| fetch regs s0; fetch regs s1; fetch regs s2; fetch regs s3 |]
  | srcs -> fun regs -> Array.map (fun s -> fetch regs s) srcs

let compile_cast ~nregs (c : Ir.Instr.cast) ~from_ ~to_ d sa :
    E.value array -> unit =
  let generic () = un_closure ~nregs (E.cast_fn c ~from_ ~to_) d sa in
  let ok r = r >= 0 && r < nregs in
  if not (ok d) then generic ()
  else
    match (c, sa) with
    | (Ir.Instr.Trunc | Ir.Instr.Sext), Slot a when ok a ->
        let sh = E.norm_shift to_ in
        fun regs -> seti regs d (E.renorm sh (geti regs a))
    | Ir.Instr.Zext, Slot a when ok a ->
        let sh = E.norm_shift to_ in
        let um = E.umask from_ (-1L) in
        fun regs -> seti regs d (E.renorm sh (Int64.logand (geti regs a) um))
    | Ir.Instr.Fptosi, Slot a when ok a ->
        let sh = E.norm_shift to_ in
        fun regs ->
          let f = getf regs a in
          Array.unsafe_set regs d
            (if Float.is_nan f then E.VInt 0L
             else E.VInt (E.renorm sh (Int64.of_float f)))
    | Ir.Instr.Sitofp, Slot a when ok a && to_ <> Ir.Ty.F32 ->
        fun regs -> setf regs d (Int64.to_float (geti regs a))
    | Ir.Instr.Fpext, Slot a when ok a ->
        fun regs -> setf regs d (getf regs a)
    | _ -> generic ()

(* ------------------------------------------------------------------ *)
(* Superinstruction fusion                                             *)
(* ------------------------------------------------------------------ *)

(* Sink-tree fusion over a block's body.  A {e pure} producer whose
   destination register has a static use count of exactly 1
   ({!func_info.use_counts}) and whose single use is a later
   instruction of the same block is compiled {e into} its consumer's
   closure; its standalone dispatch and its boxed register write (a
   [caml_modify] barrier) disappear.  Absorption is recursive, so whole
   address-computation and arithmetic chains collapse into the
   instructions that anchor them — loads, stores, divisions, multi-use
   definitions and the block terminator — even when an optimizing
   frontend interleaved the chains in the schedule (adjacency is not
   required, unlike a peephole window).

   Sinkable producer kinds: non-dividing [Binop], [Icmp], [Fcmp],
   [Cast], [Select], [Gep] and [Gaddr].  Everything else is an anchor
   and keeps its body position: loads read memory (deferring one past
   a store would change the value), divisions and allocations fault,
   calls and CI calls touch the shared machine state, and a multi-use
   definition must still materialize its register.

   Why this is byte-identical to the unfused engines:

   - register files are per-invocation and SSA-shaped: within one
     execution of the block each register is written at most once, and
     a producer's operands are defined before it, so the slots a sunk
     producer reads hold the same values at the consumer's position as
     they did at its own;
   - no sinkable kind reads memory, so stores between the producer's
     and the consumer's positions are unobservable to the moved code;
   - sinkable kinds cannot fault on executions where the operand's
     runtime type matches its declared register type — the only
     programs that could observe a fault {e reordering} are
     runtime-type-confused ones (memory cells are untyped), and the
     determinism contract (DESIGN.md §13–§14) pins outcomes for type-sound
     executions; the fault {e set} and messages are unchanged either
     way;
   - modeled cycles, fuel and profiles are computed from the original
     instruction counts, never from the closure count — fusion changes
     how many host closures run, not the simulated machine;
   - skipping the absorbed producer's register write is unobservable:
     the register file is not part of the VM outcome and no other
     instruction reads the slot (static use count 1).

   Within a fused closure, operands are evaluated left-to-right in
   operand order (explicit [let]s), each subtree fully before the
   consumer's own conversions.  Per-anchor hit counters
   ({!fusion_stats}, surfaced by [--stage-stats]) make the pass
   auditable. *)

let binop_name : Ir.Instr.binop -> string = function
  | Ir.Instr.Add -> "add"
  | Ir.Instr.Sub -> "sub"
  | Ir.Instr.Mul -> "mul"
  | Ir.Instr.Sdiv -> "sdiv"
  | Ir.Instr.Udiv -> "udiv"
  | Ir.Instr.Srem -> "srem"
  | Ir.Instr.Urem -> "urem"
  | Ir.Instr.And -> "and"
  | Ir.Instr.Or -> "or"
  | Ir.Instr.Xor -> "xor"
  | Ir.Instr.Shl -> "shl"
  | Ir.Instr.Lshr -> "lshr"
  | Ir.Instr.Ashr -> "ashr"
  | Ir.Instr.Fadd -> "fadd"
  | Ir.Instr.Fsub -> "fsub"
  | Ir.Instr.Fmul -> "fmul"
  | Ir.Instr.Fdiv -> "fdiv"

(* Unboxed comparison predicates for the tree compiler — one arm per
   predicate like {!Ir.Eval.icmp_fn}/{!Ir.Eval.fcmp_fn}, over already
   converted scalars. *)
let icmp_bool : Ir.Instr.icmp_pred -> int64 -> int64 -> bool = function
  | Ir.Instr.Ieq -> Int64.equal
  | Ir.Instr.Ine -> fun x y -> not (Int64.equal x y)
  | Ir.Instr.Islt -> fun x y -> Int64.compare x y < 0
  | Ir.Instr.Isle -> fun x y -> Int64.compare x y <= 0
  | Ir.Instr.Isgt -> fun x y -> Int64.compare x y > 0
  | Ir.Instr.Isge -> fun x y -> Int64.compare x y >= 0
  | Ir.Instr.Iult -> fun x y -> Int64.unsigned_compare x y < 0
  | Ir.Instr.Iule -> fun x y -> Int64.unsigned_compare x y <= 0
  | Ir.Instr.Iugt -> fun x y -> Int64.unsigned_compare x y > 0
  | Ir.Instr.Iuge -> fun x y -> Int64.unsigned_compare x y >= 0

let fcmp_bool : Ir.Instr.fcmp_pred -> float -> float -> bool =
  let[@inline] ord x y = not (Float.is_nan x || Float.is_nan y) in
  function
  | Ir.Instr.Foeq -> fun x y -> ord x y && x = y
  | Ir.Instr.Fone -> fun x y -> ord x y && x <> y
  | Ir.Instr.Folt -> fun x y -> ord x y && x < y
  | Ir.Instr.Fole -> fun x y -> ord x y && x <= y
  | Ir.Instr.Fogt -> fun x y -> ord x y && x > y
  | Ir.Instr.Foge -> fun x y -> ord x y && x >= y

(* Leaf-resolved typed operands for the tree compiler.  A slot or
   constant leaf is inlined into the consuming node's closure body by
   the per-operator combination arms; only a nested tree ([IFun] & co.)
   costs a closure call.  The [int] of [parg] and the [bool] of a
   compare tree are immediates, so address and test chains run
   allocation-free end to end. *)
type iarg = ISlot of int | IConst of int64 | IFun of (E.value array -> int64)
type farg = FSlot of int | FConst of float | FFun of (E.value array -> float)
type parg = PSlot of int | PConst of int | PFun of (E.value array -> int)

let ifn : iarg -> E.value array -> int64 = function
  | ISlot r -> fun regs -> geti regs r
  | IConst k -> fun _ -> k
  | IFun f -> f

let ffn : farg -> E.value array -> float = function
  | FSlot r -> fun regs -> getf regs r
  | FConst k -> fun _ -> k
  | FFun f -> f

let pfn : parg -> E.value array -> int = function
  | PSlot r -> fun regs -> E.as_ptr (Array.unsafe_get regs r)
  | PConst p -> fun _ -> p
  | PFun f -> f

(* Boolean form of a compile-time-safe compare — the flat fast path of
   the compare-and-branch terminator fusion (no intermediate [value]
   is materialized at all).  Same shapes and conversion order as
   [compile_icmp]/[compile_fcmp]. *)
let bool_cmp ~nregs (i : Ir.Instr.t) : (E.value array -> bool) option =
  let ok r = r >= 0 && r < nregs in
  let[@inline] ord x y = not (Float.is_nan x || Float.is_nan y) in
  match i.Ir.Instr.kind with
  | Ir.Instr.Icmp (p, a, b) -> (
      match (p, decode_operand a, decode_operand b) with
      | Ir.Instr.Ieq, Slot a, Slot b when ok a && ok b ->
          Some (fun regs -> Int64.equal (geti regs a) (geti regs b))
      | Ir.Instr.Ieq, Slot a, Imm (E.VInt ib) when ok a ->
          Some (fun regs -> Int64.equal (geti regs a) ib)
      | Ir.Instr.Ine, Slot a, Slot b when ok a && ok b ->
          Some (fun regs -> not (Int64.equal (geti regs a) (geti regs b)))
      | Ir.Instr.Ine, Slot a, Imm (E.VInt ib) when ok a ->
          Some (fun regs -> not (Int64.equal (geti regs a) ib))
      | Ir.Instr.Islt, Slot a, Slot b when ok a && ok b ->
          Some (fun regs -> Int64.compare (geti regs a) (geti regs b) < 0)
      | Ir.Instr.Islt, Slot a, Imm (E.VInt ib) when ok a ->
          Some (fun regs -> Int64.compare (geti regs a) ib < 0)
      | Ir.Instr.Isle, Slot a, Slot b when ok a && ok b ->
          Some (fun regs -> Int64.compare (geti regs a) (geti regs b) <= 0)
      | Ir.Instr.Isle, Slot a, Imm (E.VInt ib) when ok a ->
          Some (fun regs -> Int64.compare (geti regs a) ib <= 0)
      | Ir.Instr.Isgt, Slot a, Slot b when ok a && ok b ->
          Some (fun regs -> Int64.compare (geti regs a) (geti regs b) > 0)
      | Ir.Instr.Isgt, Slot a, Imm (E.VInt ib) when ok a ->
          Some (fun regs -> Int64.compare (geti regs a) ib > 0)
      | Ir.Instr.Isge, Slot a, Slot b when ok a && ok b ->
          Some (fun regs -> Int64.compare (geti regs a) (geti regs b) >= 0)
      | Ir.Instr.Isge, Slot a, Imm (E.VInt ib) when ok a ->
          Some (fun regs -> Int64.compare (geti regs a) ib >= 0)
      | Ir.Instr.Iult, Slot a, Slot b when ok a && ok b ->
          Some
            (fun regs -> Int64.unsigned_compare (geti regs a) (geti regs b) < 0)
      | Ir.Instr.Iult, Slot a, Imm (E.VInt ib) when ok a ->
          Some (fun regs -> Int64.unsigned_compare (geti regs a) ib < 0)
      | Ir.Instr.Iule, Slot a, Slot b when ok a && ok b ->
          Some
            (fun regs ->
              Int64.unsigned_compare (geti regs a) (geti regs b) <= 0)
      | Ir.Instr.Iule, Slot a, Imm (E.VInt ib) when ok a ->
          Some (fun regs -> Int64.unsigned_compare (geti regs a) ib <= 0)
      | Ir.Instr.Iugt, Slot a, Slot b when ok a && ok b ->
          Some
            (fun regs -> Int64.unsigned_compare (geti regs a) (geti regs b) > 0)
      | Ir.Instr.Iugt, Slot a, Imm (E.VInt ib) when ok a ->
          Some (fun regs -> Int64.unsigned_compare (geti regs a) ib > 0)
      | Ir.Instr.Iuge, Slot a, Slot b when ok a && ok b ->
          Some
            (fun regs ->
              Int64.unsigned_compare (geti regs a) (geti regs b) >= 0)
      | Ir.Instr.Iuge, Slot a, Imm (E.VInt ib) when ok a ->
          Some (fun regs -> Int64.unsigned_compare (geti regs a) ib >= 0)
      | _ -> None)
  | Ir.Instr.Fcmp (p, a, b) -> (
      match (p, decode_operand a, decode_operand b) with
      | Ir.Instr.Foeq, Slot a, Slot b when ok a && ok b ->
          Some
            (fun regs ->
              let x = getf regs a and y = getf regs b in
              ord x y && x = y)
      | Ir.Instr.Foeq, Slot a, Imm (E.VFloat fb) when ok a ->
          Some
            (fun regs ->
              let x = getf regs a in
              ord x fb && x = fb)
      | Ir.Instr.Fone, Slot a, Slot b when ok a && ok b ->
          Some
            (fun regs ->
              let x = getf regs a and y = getf regs b in
              ord x y && x <> y)
      | Ir.Instr.Fone, Slot a, Imm (E.VFloat fb) when ok a ->
          Some
            (fun regs ->
              let x = getf regs a in
              ord x fb && x <> fb)
      | Ir.Instr.Folt, Slot a, Slot b when ok a && ok b ->
          Some
            (fun regs ->
              let x = getf regs a and y = getf regs b in
              ord x y && x < y)
      | Ir.Instr.Folt, Slot a, Imm (E.VFloat fb) when ok a ->
          Some
            (fun regs ->
              let x = getf regs a in
              ord x fb && x < fb)
      | Ir.Instr.Fole, Slot a, Slot b when ok a && ok b ->
          Some
            (fun regs ->
              let x = getf regs a and y = getf regs b in
              ord x y && x <= y)
      | Ir.Instr.Fole, Slot a, Imm (E.VFloat fb) when ok a ->
          Some
            (fun regs ->
              let x = getf regs a in
              ord x fb && x <= fb)
      | Ir.Instr.Fogt, Slot a, Slot b when ok a && ok b ->
          Some
            (fun regs ->
              let x = getf regs a and y = getf regs b in
              ord x y && x > y)
      | Ir.Instr.Fogt, Slot a, Imm (E.VFloat fb) when ok a ->
          Some
            (fun regs ->
              let x = getf regs a in
              ord x fb && x > fb)
      | Ir.Instr.Foge, Slot a, Slot b when ok a && ok b ->
          Some
            (fun regs ->
              let x = getf regs a and y = getf regs b in
              ord x y && x >= y)
      | Ir.Instr.Foge, Slot a, Imm (E.VFloat fb) when ok a ->
          Some
            (fun regs ->
              let x = getf regs a in
              ord x fb && x >= fb)
      | _ -> None)
  | _ -> None

(* Clamp an int64 to the native int range.  Fuel budgets and the
   warm-up threshold are kept as immediate ints inside the threaded
   interpreter so the per-block bookkeeping never allocates; a budget
   beyond [max_int] (4.6e18 dynamic instructions — centuries of
   simulated execution) is indistinguishable from unlimited. *)
let int_of_int64_clamped v =
  if Int64.compare v (Int64.of_int max_int) > 0 then max_int
  else if Int64.compare v (Int64.of_int min_int) < 0 then min_int
  else Int64.to_int v

(* ------------------------------------------------------------------ *)
(* Typed register files ([tuning.regalloc])                            *)
(* ------------------------------------------------------------------ *)

(* The typed-register-file compiler partitions a function's registers
   by declared type ({!rclass}) and compiles every operation into a
   closure over the {!frame}'s unboxed slot arrays.  The box/unbox
   seams are exactly: call arguments and returns, intrinsics, CI
   dispatch, [Memory] cells (which stay untyped boxed values) and
   [C_boxed] registers.  Everything else — int/float binops, compares,
   casts, geps, load/store address arithmetic, phi staging, branch
   tests — moves machine scalars between unboxed arrays and allocates
   nothing.

   Conversion discipline: reading a slot in a class other than its own
   goes through the same conversions {!Ir.Eval.as_int} & co. perform on
   the boxed representation ([C_ptr] read as int is [Int64.of_int],
   [C_int] read as address is [Int64.to_int], float/integer crossings
   raise the same constant-message [Type_error]s), so type-sound
   executions are byte-identical to the boxed engines.  The one
   documented divergence (DESIGN.md §14): a type-{e confused} execution
   — a declared register type contradicting the runtime value, only
   reachable through untyped memory cells or call seams — may observe a
   conversion fault at the defining seam instead of at a later use, and
   pointer/integer values are canonicalized by the destination's class.
   The differential and tuning suites only assert type-sound
   programs. *)

let rclass_of_ty : Ir.Ty.t -> rclass = function
  | Ir.Ty.I1 | Ir.Ty.I8 | Ir.Ty.I16 | Ir.Ty.I32 | Ir.Ty.I64 -> C_int
  | Ir.Ty.F32 | Ir.Ty.F64 -> C_float
  | Ir.Ty.Ptr -> C_ptr
  | Ir.Ty.Void -> C_boxed

(* Slot readers, one per consuming class.  [slots.(r)] is register
   [r]'s index inside its class's frame array (the per-class
   renumbering).  An out-of-range register falls back to a checked
   read of the boxed lane, so malformed IR raises the same
   [Invalid_argument] the boxed engines' [regs.(r)] would. *)

let rrd_box (classes : rclass array) (slots : int array) (r : int) :
    frame -> E.value =
  if r >= 0 && r < Array.length classes then
    let s = slots.(r) in
    match classes.(r) with
    | C_int -> fun fr -> E.VInt (Array.unsafe_get fr.fr_i s)
    | C_float -> fun fr -> E.VFloat (Array.unsafe_get fr.fr_f s)
    | C_ptr -> fun fr -> E.VPtr (Array.unsafe_get fr.fr_p s)
    | C_boxed -> fun fr -> Array.unsafe_get fr.fr_v s
  else fun fr -> fr.fr_v.(r)

let rrd_i (classes : rclass array) (slots : int array) (r : int) :
    frame -> int64 =
  if r >= 0 && r < Array.length classes then
    let s = slots.(r) in
    match classes.(r) with
    | C_int -> fun fr -> Array.unsafe_get fr.fr_i s
    | C_ptr -> fun fr -> Int64.of_int (Array.unsafe_get fr.fr_p s)
    | C_float -> fun _ -> raise (E.Type_error "expected an integer value")
    | C_boxed -> fun fr -> E.as_int (Array.unsafe_get fr.fr_v s)
  else fun fr -> E.as_int fr.fr_v.(r)

let rrd_f (classes : rclass array) (slots : int array) (r : int) :
    frame -> float =
  if r >= 0 && r < Array.length classes then
    let s = slots.(r) in
    match classes.(r) with
    | C_float -> fun fr -> Array.unsafe_get fr.fr_f s
    | C_int | C_ptr -> fun _ -> raise (E.Type_error "expected a float value")
    | C_boxed -> fun fr -> E.as_float (Array.unsafe_get fr.fr_v s)
  else fun fr -> E.as_float fr.fr_v.(r)

let rrd_p (classes : rclass array) (slots : int array) (r : int) :
    frame -> int =
  if r >= 0 && r < Array.length classes then
    let s = slots.(r) in
    match classes.(r) with
    | C_ptr -> fun fr -> Array.unsafe_get fr.fr_p s
    | C_int -> fun fr -> Int64.to_int (Array.unsafe_get fr.fr_i s)
    | C_float -> fun _ -> raise (E.Type_error "expected an address")
    | C_boxed -> fun fr -> E.as_ptr (Array.unsafe_get fr.fr_v s)
  else fun fr -> E.as_ptr fr.fr_v.(r)

(* Compile-time operand shapes.  A same-class register collapses to
   its frame-slot index ([RiS] & co.) so the consuming closure's body
   reads the unboxed array directly: a nested closure call would box
   its int64/float result on return (the generic calling convention
   has no unboxed returns), which is exactly the allocation the typed
   register file exists to remove.  Immediates whose conversion cannot
   fault are pre-resolved to scalar constants; everything else —
   cross-class and boxed registers, mismatched immediates — resolves
   to a residual closure with the standard conversions, faulting per
   execution like the boxed generic closures. *)
type ri = RiS of int | RiK of int64 | RiG of (frame -> int64)
type rf = RfS of int | RfK of float | RfG of (frame -> float)
type rp = RpS of int | RpK of int | RpG of (frame -> int)

let rarg_i (classes : rclass array) (slots : int array) : src -> ri = function
  | Slot r when r >= 0 && r < Array.length classes && classes.(r) = C_int ->
      RiS slots.(r)
  | Slot r -> RiG (rrd_i classes slots r)
  | Imm (E.VInt k) -> RiK k
  | Imm (E.VPtr p) -> RiK (Int64.of_int p)
  | Imm (E.VFloat _ as v) -> RiG (fun _ -> E.as_int v)

let rarg_f (classes : rclass array) (slots : int array) : src -> rf = function
  | Slot r when r >= 0 && r < Array.length classes && classes.(r) = C_float ->
      RfS slots.(r)
  | Slot r -> RfG (rrd_f classes slots r)
  | Imm (E.VFloat k) -> RfK k
  | Imm ((E.VInt _ | E.VPtr _) as v) -> RfG (fun _ -> E.as_float v)

let rarg_p (classes : rclass array) (slots : int array) : src -> rp = function
  | Slot r when r >= 0 && r < Array.length classes && classes.(r) = C_ptr ->
      RpS slots.(r)
  | Slot r -> RpG (rrd_p classes slots r)
  | Imm (E.VPtr p) -> RpK p
  | Imm (E.VInt k) -> RpK (Int64.to_int k)
  | Imm (E.VFloat _ as v) -> RpG (fun _ -> E.as_ptr v)

(* Closure form of a shape, for residual arms and class-generic
   consumers (phi staging of rare shapes, switch scrutinees, seams). *)
let ri_fn : ri -> frame -> int64 = function
  | RiS s -> fun fr -> Array.unsafe_get fr.fr_i s
  | RiK k -> fun _ -> k
  | RiG g -> g

let rf_fn : rf -> frame -> float = function
  | RfS s -> fun fr -> Array.unsafe_get fr.fr_f s
  | RfK k -> fun _ -> k
  | RfG g -> g

let rp_fn : rp -> frame -> int = function
  | RpS s -> fun fr -> Array.unsafe_get fr.fr_p s
  | RpK p -> fun _ -> p
  | RpG g -> g

let rget_i classes slots (s : src) : frame -> int64 =
  ri_fn (rarg_i classes slots s)

let rget_p classes slots (s : src) : frame -> int =
  rp_fn (rarg_p classes slots s)

let rget_box (classes : rclass array) (slots : int array) :
    src -> frame -> E.value = function
  | Slot r -> rrd_box classes slots r
  | Imm v -> fun _ -> v

(* Boxed write to a typed destination: the value is converted into the
   destination's class with the standard conversions.  This is the
   seam where call/intrinsic/CI results and loaded cells enter the
   typed register file. *)
let rwr_box (classes : rclass array) (slots : int array) (d : int) :
    frame -> E.value -> unit =
  if d >= 0 && d < Array.length classes then
    let s = slots.(d) in
    match classes.(d) with
    | C_int -> fun fr v -> Array.unsafe_set fr.fr_i s (E.as_int v)
    | C_float -> fun fr v -> Array.unsafe_set fr.fr_f s (E.as_float v)
    | C_ptr -> fun fr v -> Array.unsafe_set fr.fr_p s (E.as_ptr v)
    | C_boxed -> fun fr v -> Array.unsafe_set fr.fr_v s v
  else fun fr v -> fr.fr_v.(d) <- v

(* Truth test of an operand, per class — the same zero tests
   {!Ir.Eval.is_true} performs on the boxed representation ([is_true]
   never faults, so immediates are pre-evaluated). *)
let rtest (classes : rclass array) (slots : int array) :
    src -> frame -> bool = function
  | Slot r ->
      if r >= 0 && r < Array.length classes then (
        let s = slots.(r) in
        match classes.(r) with
        | C_int -> fun fr -> Array.unsafe_get fr.fr_i s <> 0L
        | C_float -> fun fr -> Array.unsafe_get fr.fr_f s <> 0.0
        | C_ptr -> fun fr -> Array.unsafe_get fr.fr_p s <> 0
        | C_boxed -> fun fr -> E.is_true (Array.unsafe_get fr.fr_v s))
      else fun fr -> E.is_true fr.fr_v.(r)
  | Imm v ->
      let b = E.is_true v in
      fun _ -> b

(* Boxed argument vectors for calls/CIs, arity-specialized like
   {!args_fn} — the boxing here IS the call seam. *)
let rargs_fn (classes : rclass array) (slots : int array) (srcs : src array) :
    frame -> E.value array =
  let g = rget_box classes slots in
  match srcs with
  | [||] -> fun _ -> [||]
  | [| s0 |] ->
      let g0 = g s0 in
      fun fr -> [| g0 fr |]
  | [| s0; s1 |] ->
      let g0 = g s0 and g1 = g s1 in
      fun fr -> [| g0 fr; g1 fr |]
  | [| s0; s1; s2 |] ->
      let g0 = g s0 and g1 = g s1 and g2 = g s2 in
      fun fr -> [| g0 fr; g1 fr; g2 fr |]
  | [| s0; s1; s2; s3 |] ->
      let g0 = g s0 and g1 = g s1 and g2 = g s2 and g3 = g s3 in
      fun fr -> [| g0 fr; g1 fr; g2 fr; g3 fr |]
  | srcs ->
      let gs = Array.map g srcs in
      fun fr -> Array.map (fun gk -> gk fr) gs

(* Typed binop compiler.  The scalar expressions are the
   [Ir.Eval.binop_fn] arm bodies over unboxed operands (same
   renormalization, shift masking and F32 rounding), with the hottest
   operator x shape combinations reading their slots directly inside
   the closure body — no allocation, no nested call.  Shapes with a
   residual operand keep the closure form; divisions and non-scalar
   destinations fall back to the boxed closure, which keeps
   [Division_by_zero] and its operand-conversion order exactly. *)
let compile_rbinop (classes : rclass array) (slots : int array)
    (ty : Ir.Ty.t) (op : Ir.Instr.binop) (d : int) (sa : src) (sb : src) :
    frame -> unit =
  let generic () =
    let f = E.binop_fn ty op in
    let ga = rget_box classes slots sa and gb = rget_box classes slots sb in
    let w = rwr_box classes slots d in
    fun fr -> w fr (f (ga fr) (gb fr))
  in
  let ok r = r >= 0 && r < Array.length classes in
  if not (ok d) then generic ()
  else
    match (op, classes.(d)) with
    | ( ( Ir.Instr.Add | Ir.Instr.Sub | Ir.Instr.Mul | Ir.Instr.And
        | Ir.Instr.Or | Ir.Instr.Xor | Ir.Instr.Shl | Ir.Instr.Lshr
        | Ir.Instr.Ashr ),
        C_int ) -> (
        let sh = E.norm_shift ty in
        let sm = E.shift_amount ty (-1L) in
        let um = E.umask ty (-1L) in
        let sd = slots.(d) in
        let aa = rarg_i classes slots sa and bb = rarg_i classes slots sb in
        match (op, aa, bb) with
        | Ir.Instr.Add, RiS a, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh
                   (Int64.add
                      (Array.unsafe_get fr.fr_i a)
                      (Array.unsafe_get fr.fr_i b)))
        | Ir.Instr.Add, RiS a, RiK kb ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.add (Array.unsafe_get fr.fr_i a) kb))
        | Ir.Instr.Add, RiK ka, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.add ka (Array.unsafe_get fr.fr_i b)))
        | Ir.Instr.Sub, RiS a, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh
                   (Int64.sub
                      (Array.unsafe_get fr.fr_i a)
                      (Array.unsafe_get fr.fr_i b)))
        | Ir.Instr.Sub, RiS a, RiK kb ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.sub (Array.unsafe_get fr.fr_i a) kb))
        | Ir.Instr.Sub, RiK ka, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.sub ka (Array.unsafe_get fr.fr_i b)))
        | Ir.Instr.Mul, RiS a, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh
                   (Int64.mul
                      (Array.unsafe_get fr.fr_i a)
                      (Array.unsafe_get fr.fr_i b)))
        | Ir.Instr.Mul, RiS a, RiK kb ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.mul (Array.unsafe_get fr.fr_i a) kb))
        | Ir.Instr.Mul, RiK ka, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.mul ka (Array.unsafe_get fr.fr_i b)))
        | Ir.Instr.And, RiS a, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh
                   (Int64.logand
                      (Array.unsafe_get fr.fr_i a)
                      (Array.unsafe_get fr.fr_i b)))
        | Ir.Instr.And, RiS a, RiK kb ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.logand (Array.unsafe_get fr.fr_i a) kb))
        | Ir.Instr.And, RiK ka, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.logand ka (Array.unsafe_get fr.fr_i b)))
        | Ir.Instr.Or, RiS a, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh
                   (Int64.logor
                      (Array.unsafe_get fr.fr_i a)
                      (Array.unsafe_get fr.fr_i b)))
        | Ir.Instr.Or, RiS a, RiK kb ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.logor (Array.unsafe_get fr.fr_i a) kb))
        | Ir.Instr.Or, RiK ka, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.logor ka (Array.unsafe_get fr.fr_i b)))
        | Ir.Instr.Xor, RiS a, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh
                   (Int64.logxor
                      (Array.unsafe_get fr.fr_i a)
                      (Array.unsafe_get fr.fr_i b)))
        | Ir.Instr.Xor, RiS a, RiK kb ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.logxor (Array.unsafe_get fr.fr_i a) kb))
        | Ir.Instr.Xor, RiK ka, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.logxor ka (Array.unsafe_get fr.fr_i b)))
        | Ir.Instr.Shl, RiS a, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh
                   (Int64.shift_left
                      (Array.unsafe_get fr.fr_i a)
                      (Int64.to_int (Array.unsafe_get fr.fr_i b) land sm)))
        | Ir.Instr.Shl, RiS a, RiK kb ->
            let n = E.shift_amount ty kb in
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.shift_left (Array.unsafe_get fr.fr_i a) n))
        | Ir.Instr.Lshr, RiS a, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh
                   (Int64.shift_right_logical
                      (Int64.logand (Array.unsafe_get fr.fr_i a) um)
                      (Int64.to_int (Array.unsafe_get fr.fr_i b) land sm)))
        | Ir.Instr.Lshr, RiS a, RiK kb ->
            let n = E.shift_amount ty kb in
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh
                   (Int64.shift_right_logical
                      (Int64.logand (Array.unsafe_get fr.fr_i a) um)
                      n))
        | Ir.Instr.Ashr, RiS a, RiS b ->
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh
                   (Int64.shift_right
                      (Array.unsafe_get fr.fr_i a)
                      (Int64.to_int (Array.unsafe_get fr.fr_i b) land sm)))
        | Ir.Instr.Ashr, RiS a, RiK kb ->
            let n = E.shift_amount ty kb in
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh
                   (Int64.shift_right (Array.unsafe_get fr.fr_i a) n))
        | _ -> (
            let ga = ri_fn aa and gb = ri_fn bb in
            match op with
            | Ir.Instr.Add ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (E.renorm sh (Int64.add (ga fr) (gb fr)))
            | Ir.Instr.Sub ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (E.renorm sh (Int64.sub (ga fr) (gb fr)))
            | Ir.Instr.Mul ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (E.renorm sh (Int64.mul (ga fr) (gb fr)))
            | Ir.Instr.And ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (E.renorm sh (Int64.logand (ga fr) (gb fr)))
            | Ir.Instr.Or ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (E.renorm sh (Int64.logor (ga fr) (gb fr)))
            | Ir.Instr.Xor ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (E.renorm sh (Int64.logxor (ga fr) (gb fr)))
            | Ir.Instr.Shl ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (E.renorm sh
                       (Int64.shift_left (ga fr)
                          (Int64.to_int (gb fr) land sm)))
            | Ir.Instr.Lshr ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (E.renorm sh
                       (Int64.shift_right_logical
                          (Int64.logand (ga fr) um)
                          (Int64.to_int (gb fr) land sm)))
            | Ir.Instr.Ashr ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (E.renorm sh
                       (Int64.shift_right (ga fr)
                          (Int64.to_int (gb fr) land sm)))
            | _ -> generic ()))
    | ( (Ir.Instr.Fadd | Ir.Instr.Fsub | Ir.Instr.Fmul | Ir.Instr.Fdiv),
        C_float ) -> (
        let sd = slots.(d) in
        let aa = rarg_f classes slots sa and bb = rarg_f classes slots sb in
        if ty = Ir.Ty.F32 then
          match (op, aa, bb) with
          | Ir.Instr.Fadd, RfS a, RfS b ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd
                  (E.round_f32
                     (Array.unsafe_get fr.fr_f a +. Array.unsafe_get fr.fr_f b))
          | Ir.Instr.Fsub, RfS a, RfS b ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd
                  (E.round_f32
                     (Array.unsafe_get fr.fr_f a -. Array.unsafe_get fr.fr_f b))
          | Ir.Instr.Fmul, RfS a, RfS b ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd
                  (E.round_f32
                     (Array.unsafe_get fr.fr_f a *. Array.unsafe_get fr.fr_f b))
          | Ir.Instr.Fdiv, RfS a, RfS b ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd
                  (E.round_f32
                     (Array.unsafe_get fr.fr_f a /. Array.unsafe_get fr.fr_f b))
          | _ -> (
              let ga = rf_fn aa and gb = rf_fn bb in
              match op with
              | Ir.Instr.Fadd ->
                  fun fr ->
                    Array.unsafe_set fr.fr_f sd (E.round_f32 (ga fr +. gb fr))
              | Ir.Instr.Fsub ->
                  fun fr ->
                    Array.unsafe_set fr.fr_f sd (E.round_f32 (ga fr -. gb fr))
              | Ir.Instr.Fmul ->
                  fun fr ->
                    Array.unsafe_set fr.fr_f sd (E.round_f32 (ga fr *. gb fr))
              | Ir.Instr.Fdiv ->
                  fun fr ->
                    Array.unsafe_set fr.fr_f sd (E.round_f32 (ga fr /. gb fr))
              | _ -> generic ())
        else
          match (op, aa, bb) with
          | Ir.Instr.Fadd, RfS a, RfS b ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd
                  (Array.unsafe_get fr.fr_f a +. Array.unsafe_get fr.fr_f b)
          | Ir.Instr.Fadd, RfS a, RfK kb ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd (Array.unsafe_get fr.fr_f a +. kb)
          | Ir.Instr.Fadd, RfK ka, RfS b ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd (ka +. Array.unsafe_get fr.fr_f b)
          | Ir.Instr.Fsub, RfS a, RfS b ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd
                  (Array.unsafe_get fr.fr_f a -. Array.unsafe_get fr.fr_f b)
          | Ir.Instr.Fsub, RfS a, RfK kb ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd (Array.unsafe_get fr.fr_f a -. kb)
          | Ir.Instr.Fsub, RfK ka, RfS b ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd (ka -. Array.unsafe_get fr.fr_f b)
          | Ir.Instr.Fmul, RfS a, RfS b ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd
                  (Array.unsafe_get fr.fr_f a *. Array.unsafe_get fr.fr_f b)
          | Ir.Instr.Fmul, RfS a, RfK kb ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd (Array.unsafe_get fr.fr_f a *. kb)
          | Ir.Instr.Fmul, RfK ka, RfS b ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd (ka *. Array.unsafe_get fr.fr_f b)
          | Ir.Instr.Fdiv, RfS a, RfS b ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd
                  (Array.unsafe_get fr.fr_f a /. Array.unsafe_get fr.fr_f b)
          | Ir.Instr.Fdiv, RfS a, RfK kb ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd (Array.unsafe_get fr.fr_f a /. kb)
          | Ir.Instr.Fdiv, RfK ka, RfS b ->
              fun fr ->
                Array.unsafe_set fr.fr_f sd (ka /. Array.unsafe_get fr.fr_f b)
          | _ -> (
              let ga = rf_fn aa and gb = rf_fn bb in
              match op with
              | Ir.Instr.Fadd ->
                  fun fr -> Array.unsafe_set fr.fr_f sd (ga fr +. gb fr)
              | Ir.Instr.Fsub ->
                  fun fr -> Array.unsafe_set fr.fr_f sd (ga fr -. gb fr)
              | Ir.Instr.Fmul ->
                  fun fr -> Array.unsafe_set fr.fr_f sd (ga fr *. gb fr)
              | Ir.Instr.Fdiv ->
                  fun fr -> Array.unsafe_set fr.fr_f sd (ga fr /. gb fr)
              | _ -> generic ()))
    | _ -> generic ()

(* Typed compare compilers.  The boolean is materialized as 1L/0L in
   the destination's int slot; an odd destination class falls back to
   the boxed closure.  The direct arms inline both slot reads — the
   shared [icmp_bool]/[fcmp_bool] predicates stay the residual path
   (an indirect predicate call would box both scalars). *)
let compile_ricmp (classes : rclass array) (slots : int array)
    (p : Ir.Instr.icmp_pred) (d : int) (sa : src) (sb : src) : frame -> unit =
  let ok r = r >= 0 && r < Array.length classes in
  if ok d && classes.(d) = C_int then (
    let sd = slots.(d) in
    let aa = rarg_i classes slots sa and bb = rarg_i classes slots sb in
    match (p, aa, bb) with
    | Ir.Instr.Ieq, RiS a, RiS b ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if
               Int64.equal
                 (Array.unsafe_get fr.fr_i a)
                 (Array.unsafe_get fr.fr_i b)
             then 1L
             else 0L)
    | Ir.Instr.Ieq, RiS a, RiK kb ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if Int64.equal (Array.unsafe_get fr.fr_i a) kb then 1L else 0L)
    | Ir.Instr.Ine, RiS a, RiS b ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if
               Int64.equal
                 (Array.unsafe_get fr.fr_i a)
                 (Array.unsafe_get fr.fr_i b)
             then 0L
             else 1L)
    | Ir.Instr.Ine, RiS a, RiK kb ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if Int64.equal (Array.unsafe_get fr.fr_i a) kb then 0L else 1L)
    | Ir.Instr.Islt, RiS a, RiS b ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if
               Int64.compare
                 (Array.unsafe_get fr.fr_i a)
                 (Array.unsafe_get fr.fr_i b)
               < 0
             then 1L
             else 0L)
    | Ir.Instr.Islt, RiS a, RiK kb ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if Int64.compare (Array.unsafe_get fr.fr_i a) kb < 0 then 1L
             else 0L)
    | Ir.Instr.Isle, RiS a, RiS b ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if
               Int64.compare
                 (Array.unsafe_get fr.fr_i a)
                 (Array.unsafe_get fr.fr_i b)
               <= 0
             then 1L
             else 0L)
    | Ir.Instr.Isle, RiS a, RiK kb ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if Int64.compare (Array.unsafe_get fr.fr_i a) kb <= 0 then 1L
             else 0L)
    | Ir.Instr.Isgt, RiS a, RiS b ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if
               Int64.compare
                 (Array.unsafe_get fr.fr_i a)
                 (Array.unsafe_get fr.fr_i b)
               > 0
             then 1L
             else 0L)
    | Ir.Instr.Isgt, RiS a, RiK kb ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if Int64.compare (Array.unsafe_get fr.fr_i a) kb > 0 then 1L
             else 0L)
    | Ir.Instr.Isge, RiS a, RiS b ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if
               Int64.compare
                 (Array.unsafe_get fr.fr_i a)
                 (Array.unsafe_get fr.fr_i b)
               >= 0
             then 1L
             else 0L)
    | Ir.Instr.Isge, RiS a, RiK kb ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if Int64.compare (Array.unsafe_get fr.fr_i a) kb >= 0 then 1L
             else 0L)
    | Ir.Instr.Iult, RiS a, RiS b ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if
               Int64.unsigned_compare
                 (Array.unsafe_get fr.fr_i a)
                 (Array.unsafe_get fr.fr_i b)
               < 0
             then 1L
             else 0L)
    | Ir.Instr.Iult, RiS a, RiK kb ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if Int64.unsigned_compare (Array.unsafe_get fr.fr_i a) kb < 0
             then 1L
             else 0L)
    | Ir.Instr.Iule, RiS a, RiS b ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if
               Int64.unsigned_compare
                 (Array.unsafe_get fr.fr_i a)
                 (Array.unsafe_get fr.fr_i b)
               <= 0
             then 1L
             else 0L)
    | Ir.Instr.Iule, RiS a, RiK kb ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if Int64.unsigned_compare (Array.unsafe_get fr.fr_i a) kb <= 0
             then 1L
             else 0L)
    | Ir.Instr.Iugt, RiS a, RiS b ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if
               Int64.unsigned_compare
                 (Array.unsafe_get fr.fr_i a)
                 (Array.unsafe_get fr.fr_i b)
               > 0
             then 1L
             else 0L)
    | Ir.Instr.Iugt, RiS a, RiK kb ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if Int64.unsigned_compare (Array.unsafe_get fr.fr_i a) kb > 0
             then 1L
             else 0L)
    | Ir.Instr.Iuge, RiS a, RiS b ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if
               Int64.unsigned_compare
                 (Array.unsafe_get fr.fr_i a)
                 (Array.unsafe_get fr.fr_i b)
               >= 0
             then 1L
             else 0L)
    | Ir.Instr.Iuge, RiS a, RiK kb ->
        fun fr ->
          Array.unsafe_set fr.fr_i sd
            (if Int64.unsigned_compare (Array.unsafe_get fr.fr_i a) kb >= 0
             then 1L
             else 0L)
    | _ ->
        let t = icmp_bool p in
        let ga = ri_fn aa and gb = ri_fn bb in
        fun fr ->
          Array.unsafe_set fr.fr_i sd (if t (ga fr) (gb fr) then 1L else 0L))
  else
    let f = E.icmp_fn p in
    let ga = rget_box classes slots sa and gb = rget_box classes slots sb in
    let w = rwr_box classes slots d in
    fun fr -> w fr (f (ga fr) (gb fr))

let compile_rfcmp (classes : rclass array) (slots : int array)
    (p : Ir.Instr.fcmp_pred) (d : int) (sa : src) (sb : src) : frame -> unit =
  let ok r = r >= 0 && r < Array.length classes in
  let[@inline] ord x y = not (Float.is_nan x || Float.is_nan y) in
  if ok d && classes.(d) = C_int then (
    let sd = slots.(d) in
    let aa = rarg_f classes slots sa and bb = rarg_f classes slots sb in
    match (p, aa, bb) with
    | Ir.Instr.Foeq, RfS a, RfS b ->
        fun fr ->
          let x = Array.unsafe_get fr.fr_f a
          and y = Array.unsafe_get fr.fr_f b in
          Array.unsafe_set fr.fr_i sd (if ord x y && x = y then 1L else 0L)
    | Ir.Instr.Foeq, RfS a, RfK kb ->
        fun fr ->
          let x = Array.unsafe_get fr.fr_f a in
          Array.unsafe_set fr.fr_i sd (if ord x kb && x = kb then 1L else 0L)
    | Ir.Instr.Fone, RfS a, RfS b ->
        fun fr ->
          let x = Array.unsafe_get fr.fr_f a
          and y = Array.unsafe_get fr.fr_f b in
          Array.unsafe_set fr.fr_i sd (if ord x y && x <> y then 1L else 0L)
    | Ir.Instr.Fone, RfS a, RfK kb ->
        fun fr ->
          let x = Array.unsafe_get fr.fr_f a in
          Array.unsafe_set fr.fr_i sd (if ord x kb && x <> kb then 1L else 0L)
    | Ir.Instr.Folt, RfS a, RfS b ->
        fun fr ->
          let x = Array.unsafe_get fr.fr_f a
          and y = Array.unsafe_get fr.fr_f b in
          Array.unsafe_set fr.fr_i sd (if ord x y && x < y then 1L else 0L)
    | Ir.Instr.Folt, RfS a, RfK kb ->
        fun fr ->
          let x = Array.unsafe_get fr.fr_f a in
          Array.unsafe_set fr.fr_i sd (if ord x kb && x < kb then 1L else 0L)
    | Ir.Instr.Fole, RfS a, RfS b ->
        fun fr ->
          let x = Array.unsafe_get fr.fr_f a
          and y = Array.unsafe_get fr.fr_f b in
          Array.unsafe_set fr.fr_i sd (if ord x y && x <= y then 1L else 0L)
    | Ir.Instr.Fole, RfS a, RfK kb ->
        fun fr ->
          let x = Array.unsafe_get fr.fr_f a in
          Array.unsafe_set fr.fr_i sd (if ord x kb && x <= kb then 1L else 0L)
    | Ir.Instr.Fogt, RfS a, RfS b ->
        fun fr ->
          let x = Array.unsafe_get fr.fr_f a
          and y = Array.unsafe_get fr.fr_f b in
          Array.unsafe_set fr.fr_i sd (if ord x y && x > y then 1L else 0L)
    | Ir.Instr.Fogt, RfS a, RfK kb ->
        fun fr ->
          let x = Array.unsafe_get fr.fr_f a in
          Array.unsafe_set fr.fr_i sd (if ord x kb && x > kb then 1L else 0L)
    | Ir.Instr.Foge, RfS a, RfS b ->
        fun fr ->
          let x = Array.unsafe_get fr.fr_f a
          and y = Array.unsafe_get fr.fr_f b in
          Array.unsafe_set fr.fr_i sd (if ord x y && x >= y then 1L else 0L)
    | Ir.Instr.Foge, RfS a, RfK kb ->
        fun fr ->
          let x = Array.unsafe_get fr.fr_f a in
          Array.unsafe_set fr.fr_i sd (if ord x kb && x >= kb then 1L else 0L)
    | _ ->
        let t = fcmp_bool p in
        let ga = rf_fn aa and gb = rf_fn bb in
        fun fr ->
          Array.unsafe_set fr.fr_i sd (if t (ga fr) (gb fr) then 1L else 0L))
  else
    let f = E.fcmp_fn p in
    let ga = rget_box classes slots sa and gb = rget_box classes slots sb in
    let w = rwr_box classes slots d in
    fun fr -> w fr (f (ga fr) (gb fr))

(* Boolean compile of a trailing single-use compare, for the typed
   compare-and-branch terminator fusion — no flag is materialized at
   all on the direct shapes. *)
let rbool_icmp (classes : rclass array) (slots : int array)
    (p : Ir.Instr.icmp_pred) (sa : src) (sb : src) : frame -> bool =
  let aa = rarg_i classes slots sa and bb = rarg_i classes slots sb in
  match (p, aa, bb) with
  | Ir.Instr.Ieq, RiS a, RiS b ->
      fun fr ->
        Int64.equal (Array.unsafe_get fr.fr_i a) (Array.unsafe_get fr.fr_i b)
  | Ir.Instr.Ieq, RiS a, RiK kb ->
      fun fr -> Int64.equal (Array.unsafe_get fr.fr_i a) kb
  | Ir.Instr.Ine, RiS a, RiS b ->
      fun fr ->
        not
          (Int64.equal
             (Array.unsafe_get fr.fr_i a)
             (Array.unsafe_get fr.fr_i b))
  | Ir.Instr.Ine, RiS a, RiK kb ->
      fun fr -> not (Int64.equal (Array.unsafe_get fr.fr_i a) kb)
  | Ir.Instr.Islt, RiS a, RiS b ->
      fun fr ->
        Int64.compare (Array.unsafe_get fr.fr_i a) (Array.unsafe_get fr.fr_i b)
        < 0
  | Ir.Instr.Islt, RiS a, RiK kb ->
      fun fr -> Int64.compare (Array.unsafe_get fr.fr_i a) kb < 0
  | Ir.Instr.Isle, RiS a, RiS b ->
      fun fr ->
        Int64.compare (Array.unsafe_get fr.fr_i a) (Array.unsafe_get fr.fr_i b)
        <= 0
  | Ir.Instr.Isle, RiS a, RiK kb ->
      fun fr -> Int64.compare (Array.unsafe_get fr.fr_i a) kb <= 0
  | Ir.Instr.Isgt, RiS a, RiS b ->
      fun fr ->
        Int64.compare (Array.unsafe_get fr.fr_i a) (Array.unsafe_get fr.fr_i b)
        > 0
  | Ir.Instr.Isgt, RiS a, RiK kb ->
      fun fr -> Int64.compare (Array.unsafe_get fr.fr_i a) kb > 0
  | Ir.Instr.Isge, RiS a, RiS b ->
      fun fr ->
        Int64.compare (Array.unsafe_get fr.fr_i a) (Array.unsafe_get fr.fr_i b)
        >= 0
  | Ir.Instr.Isge, RiS a, RiK kb ->
      fun fr -> Int64.compare (Array.unsafe_get fr.fr_i a) kb >= 0
  | Ir.Instr.Iult, RiS a, RiS b ->
      fun fr ->
        Int64.unsigned_compare
          (Array.unsafe_get fr.fr_i a)
          (Array.unsafe_get fr.fr_i b)
        < 0
  | Ir.Instr.Iult, RiS a, RiK kb ->
      fun fr -> Int64.unsigned_compare (Array.unsafe_get fr.fr_i a) kb < 0
  | Ir.Instr.Iule, RiS a, RiS b ->
      fun fr ->
        Int64.unsigned_compare
          (Array.unsafe_get fr.fr_i a)
          (Array.unsafe_get fr.fr_i b)
        <= 0
  | Ir.Instr.Iule, RiS a, RiK kb ->
      fun fr -> Int64.unsigned_compare (Array.unsafe_get fr.fr_i a) kb <= 0
  | Ir.Instr.Iugt, RiS a, RiS b ->
      fun fr ->
        Int64.unsigned_compare
          (Array.unsafe_get fr.fr_i a)
          (Array.unsafe_get fr.fr_i b)
        > 0
  | Ir.Instr.Iugt, RiS a, RiK kb ->
      fun fr -> Int64.unsigned_compare (Array.unsafe_get fr.fr_i a) kb > 0
  | Ir.Instr.Iuge, RiS a, RiS b ->
      fun fr ->
        Int64.unsigned_compare
          (Array.unsafe_get fr.fr_i a)
          (Array.unsafe_get fr.fr_i b)
        >= 0
  | Ir.Instr.Iuge, RiS a, RiK kb ->
      fun fr -> Int64.unsigned_compare (Array.unsafe_get fr.fr_i a) kb >= 0
  | _ ->
      let t = icmp_bool p in
      let ga = ri_fn aa and gb = ri_fn bb in
      fun fr -> t (ga fr) (gb fr)

let rbool_fcmp (classes : rclass array) (slots : int array)
    (p : Ir.Instr.fcmp_pred) (sa : src) (sb : src) : frame -> bool =
  let[@inline] ord x y = not (Float.is_nan x || Float.is_nan y) in
  let aa = rarg_f classes slots sa and bb = rarg_f classes slots sb in
  match (p, aa, bb) with
  | Ir.Instr.Foeq, RfS a, RfS b ->
      fun fr ->
        let x = Array.unsafe_get fr.fr_f a
        and y = Array.unsafe_get fr.fr_f b in
        ord x y && x = y
  | Ir.Instr.Foeq, RfS a, RfK kb ->
      fun fr ->
        let x = Array.unsafe_get fr.fr_f a in
        ord x kb && x = kb
  | Ir.Instr.Fone, RfS a, RfS b ->
      fun fr ->
        let x = Array.unsafe_get fr.fr_f a
        and y = Array.unsafe_get fr.fr_f b in
        ord x y && x <> y
  | Ir.Instr.Fone, RfS a, RfK kb ->
      fun fr ->
        let x = Array.unsafe_get fr.fr_f a in
        ord x kb && x <> kb
  | Ir.Instr.Folt, RfS a, RfS b ->
      fun fr ->
        let x = Array.unsafe_get fr.fr_f a
        and y = Array.unsafe_get fr.fr_f b in
        ord x y && x < y
  | Ir.Instr.Folt, RfS a, RfK kb ->
      fun fr ->
        let x = Array.unsafe_get fr.fr_f a in
        ord x kb && x < kb
  | Ir.Instr.Fole, RfS a, RfS b ->
      fun fr ->
        let x = Array.unsafe_get fr.fr_f a
        and y = Array.unsafe_get fr.fr_f b in
        ord x y && x <= y
  | Ir.Instr.Fole, RfS a, RfK kb ->
      fun fr ->
        let x = Array.unsafe_get fr.fr_f a in
        ord x kb && x <= kb
  | Ir.Instr.Fogt, RfS a, RfS b ->
      fun fr ->
        let x = Array.unsafe_get fr.fr_f a
        and y = Array.unsafe_get fr.fr_f b in
        ord x y && x > y
  | Ir.Instr.Fogt, RfS a, RfK kb ->
      fun fr ->
        let x = Array.unsafe_get fr.fr_f a in
        ord x kb && x > kb
  | Ir.Instr.Foge, RfS a, RfS b ->
      fun fr ->
        let x = Array.unsafe_get fr.fr_f a
        and y = Array.unsafe_get fr.fr_f b in
        ord x y && x >= y
  | Ir.Instr.Foge, RfS a, RfK kb ->
      fun fr ->
        let x = Array.unsafe_get fr.fr_f a in
        ord x kb && x >= kb
  | _ ->
      let t = fcmp_bool p in
      let ga = rf_fn aa and gb = rf_fn bb in
      fun fr -> t (ga fr) (gb fr)

let compile_rcast (classes : rclass array) (slots : int array)
    (c : Ir.Instr.cast) ~from_ ~to_ (d : int) (sa : src) : frame -> unit =
  let generic () =
    let f = E.cast_fn c ~from_ ~to_ in
    let ga = rget_box classes slots sa in
    let w = rwr_box classes slots d in
    fun fr -> w fr (f (ga fr))
  in
  let ok r = r >= 0 && r < Array.length classes in
  if not (ok d) then generic ()
  else
    match (c, classes.(d)) with
    | (Ir.Instr.Trunc | Ir.Instr.Sext), C_int -> (
        let sh = E.norm_shift to_ in
        match rarg_i classes slots sa with
        | RiS a ->
            fun fr ->
              Array.unsafe_set fr.fr_i slots.(d)
                (E.renorm sh (Array.unsafe_get fr.fr_i a))
        | aa ->
            let ga = ri_fn aa in
            let sd = slots.(d) in
            fun fr -> Array.unsafe_set fr.fr_i sd (E.renorm sh (ga fr)))
    | Ir.Instr.Zext, C_int -> (
        let sh = E.norm_shift to_ in
        let um = E.umask from_ (-1L) in
        match rarg_i classes slots sa with
        | RiS a ->
            let sd = slots.(d) in
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.logand (Array.unsafe_get fr.fr_i a) um))
        | aa ->
            let ga = ri_fn aa in
            let sd = slots.(d) in
            fun fr ->
              Array.unsafe_set fr.fr_i sd
                (E.renorm sh (Int64.logand (ga fr) um)))
    | Ir.Instr.Fptosi, C_int -> (
        let sh = E.norm_shift to_ in
        match rarg_f classes slots sa with
        | RfS a ->
            let sd = slots.(d) in
            fun fr ->
              let f = Array.unsafe_get fr.fr_f a in
              Array.unsafe_set fr.fr_i sd
                (if Float.is_nan f then 0L else E.renorm sh (Int64.of_float f))
        | aa ->
            let ga = rf_fn aa in
            let sd = slots.(d) in
            fun fr ->
              let f = ga fr in
              Array.unsafe_set fr.fr_i sd
                (if Float.is_nan f then 0L else E.renorm sh (Int64.of_float f))
        )
    | Ir.Instr.Sitofp, C_float -> (
        let sd = slots.(d) in
        match rarg_i classes slots sa with
        | RiS a ->
            if to_ = Ir.Ty.F32 then fun fr ->
              Array.unsafe_set fr.fr_f sd
                (E.round_f32 (Int64.to_float (Array.unsafe_get fr.fr_i a)))
            else fun fr ->
              Array.unsafe_set fr.fr_f sd
                (Int64.to_float (Array.unsafe_get fr.fr_i a))
        | aa ->
            let ga = ri_fn aa in
            if to_ = Ir.Ty.F32 then fun fr ->
              Array.unsafe_set fr.fr_f sd
                (E.round_f32 (Int64.to_float (ga fr)))
            else fun fr ->
              Array.unsafe_set fr.fr_f sd (Int64.to_float (ga fr)))
    | Ir.Instr.Fpext, C_float -> (
        let sd = slots.(d) in
        match rarg_f classes slots sa with
        | RfS a ->
            fun fr -> Array.unsafe_set fr.fr_f sd (Array.unsafe_get fr.fr_f a)
        | aa ->
            let ga = rf_fn aa in
            fun fr -> Array.unsafe_set fr.fr_f sd (ga fr))
    | Ir.Instr.Fptrunc, C_float -> (
        let sd = slots.(d) in
        match rarg_f classes slots sa with
        | RfS a ->
            if to_ = Ir.Ty.F32 then fun fr ->
              Array.unsafe_set fr.fr_f sd
                (E.round_f32 (Array.unsafe_get fr.fr_f a))
            else fun fr ->
              Array.unsafe_set fr.fr_f sd (Array.unsafe_get fr.fr_f a)
        | aa ->
            let ga = rf_fn aa in
            if to_ = Ir.Ty.F32 then fun fr ->
              Array.unsafe_set fr.fr_f sd (E.round_f32 (ga fr))
            else fun fr -> Array.unsafe_set fr.fr_f sd (ga fr))
    | _ -> generic ()

(* [exec_threaded] runs a function's compiled blocks; [compile_func] /
   [compile_block] build them.  They are mutually recursive because a
   pre-bound [Call] closure invokes [exec_threaded] on the captured
   callee's [func_info]. *)
let rec exec_threaded (st : state) (fi : func_info) (args : Ir.Eval.value array)
    :
    Ir.Eval.value option =
  let f = fi.func in
  if Array.length args <> List.length f.Ir.Func.params then
    fault "@%s: expected %d arguments, got %d" f.Ir.Func.name
      (List.length f.Ir.Func.params)
      (Array.length args);
  let regs = Array.make (max 1 f.Ir.Func.next_reg) (Ir.Eval.VInt 0L) in
  Array.iteri (fun i v -> regs.(i) <- v) args;
  let frame_mark = Memory.mark st.memory in
  let tblocks = fi.tblocks in
  let warmup = int_of_int64_clamped st.jit.Jit_model.warmup_threshold in
  (* Per-block bookkeeping lives in non-allocating locals: an immediate
     int counts fuel spent by this invocation against an immediate-int
     limit, and a flat float array holds the two clocks (a float-array
     store is an unboxed write; a mutable record field store boxes).
     They are synced with the shared [state] only around blocks that
     contain resolved calls ([t_sync]) and at function exit.  The
     arithmetic and its order are unchanged from the reference engine,
     so results stay byte-identical — only the boxed per-block stores
     into [st] are gone. *)
  let spent = ref 0 in
  let limit = ref (int_of_int64_clamped st.fuel) in
  let clocks = [| st.native; st.vm |] in
  let cur = ref Ir.Func.entry_label in
  let prev = ref (-1) in
  let result = ref None in
  let running = ref true in
  while !running do
    let tb = tblocks.(!cur) in
    let bi = tb.t_info in
    (* Fuel, profile and clocks: same arithmetic, in the same order, as
       the reference engine — the clocks are float sums, so the order
       of additions must match for byte-identical outcomes.  The two
       possible {!Jit_model.block_execution_cycles} charges were
       precomputed at compile time. *)
    spent := !spent + tb.t_fuel;
    if !spent > !limit then
      fault "execution budget exhausted in @%s" f.Ir.Func.name;
    let prior = bi.exec_count in
    bi.exec_count <- prior + 1;
    Array.unsafe_set clocks 0 (Array.unsafe_get clocks 0 +. tb.t_native);
    Array.unsafe_set clocks 1
      (Array.unsafe_get clocks 1
      +. (if prior >= warmup then tb.t_hot else tb.t_cold));
    (* Monitor hook: flush the local accumulators so the callback sees
       consistent clocks/fuel, then reload — the same flush/reload
       protocol as [t_sync] blocks, so clock additions keep their order
       and loop-off runs stay byte-identical (the branch is never taken
       without a monitor). *)
    (match st.mon with
    | None -> ()
    | Some mon ->
        st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
        spent := 0;
        st.native <- Array.unsafe_get clocks 0;
        st.vm <- Array.unsafe_get clocks 1;
        mon ~func:f.Ir.Func.name ~label:!cur ~ninstrs:bi.ninstrs;
        limit := int_of_int64_clamped st.fuel;
        Array.unsafe_set clocks 0 st.native;
        Array.unsafe_set clocks 1 st.vm);
    (* Phi prologue over pre-decoded sources.  A single phi needs no
       staging (parallel-assignment semantics are trivial); multiple
       phis stage into the scratch buffer first. *)
    let nphi = Array.length tb.t_phi_dests in
    if nphi > 0 then begin
      let srcs = tb.t_phi_srcs and p = !prev in
      if nphi = 1 then (
        let row = srcs.(0) in
        match if p >= 0 && p < Array.length row then row.(p) else P_missing with
        | P_slot r -> regs.(tb.t_phi_dests.(0)) <- regs.(r)
        | P_imm v -> regs.(tb.t_phi_dests.(0)) <- v
        | P_missing ->
            fault "@%s/bb%d: phi has no entry for predecessor bb%d"
              f.Ir.Func.name !cur p)
      else begin
        let staged = tb.t_phi_scratch in
        for k = 0 to nphi - 1 do
          let row = srcs.(k) in
          match
            if p >= 0 && p < Array.length row then row.(p) else P_missing
          with
          | P_slot r -> staged.(k) <- regs.(r)
          | P_imm v -> staged.(k) <- v
          | P_missing ->
              fault "@%s/bb%d: phi has no entry for predecessor bb%d"
                f.Ir.Func.name !cur p
        done;
        for k = 0 to nphi - 1 do
          regs.(tb.t_phi_dests.(k)) <- staged.(k)
        done
      end
    end;
    (* Straight-line body: an array walk of pre-decoded closures.  The
       runtime faults an instruction can raise carry the same context
       the reference engine attaches per instruction.  Around a block
       with resolved calls, the local fuel/clock accumulators are
       flushed to [st] (the callee continues from them) and re-read
       after the body. *)
    (try
       let ops = tb.t_ops in
       if tb.t_sync then begin
         st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
         spent := 0;
         st.native <- Array.unsafe_get clocks 0;
         st.vm <- Array.unsafe_get clocks 1;
         for k = 0 to Array.length ops - 1 do
           (Array.unsafe_get ops k) regs
         done;
         limit := int_of_int64_clamped st.fuel;
         Array.unsafe_set clocks 0 st.native;
         Array.unsafe_set clocks 1 st.vm
       end
       else
         for k = 0 to Array.length ops - 1 do
           (Array.unsafe_get ops k) regs
         done
     with
    | Ir.Eval.Division_by_zero ->
        fault "@%s/bb%d: division by zero" f.Ir.Func.name !cur
    | Ir.Eval.Type_error m -> fault "@%s/bb%d: %s" f.Ir.Func.name !cur m
    | Memory.Bad_address a ->
        fault "@%s/bb%d: bad address %d" f.Ir.Func.name !cur a
    | Memory.Out_of_memory -> fault "@%s: out of memory" f.Ir.Func.name);
    (* Terminator, pre-resolved. *)
    match tb.t_term with
    | T_halt -> running := false
    | T_ret s ->
        result := Some (fetch regs s);
        running := false
    | T_br l ->
        prev := !cur;
        cur := l
    | T_cond (c, a, b) ->
        prev := !cur;
        cur := (if Ir.Eval.is_true (fetch regs c) then a else b)
    | T_cond_s (r, a, b) ->
        prev := !cur;
        cur := (if Ir.Eval.is_true regs.(r) then a else b)
    | T_cmp_br (test, a, b) ->
        (* The fused test was body code before fusion, so its faults
           keep the body's block context: [Type_error] from the
           compare's conversions, [Bad_address]/[Out_of_memory] from a
           load sunk into the scrutinee tree. *)
        let c =
          try test regs with
          | Ir.Eval.Type_error m ->
              fault "@%s/bb%d: %s" f.Ir.Func.name !cur m
          | Memory.Bad_address a ->
              fault "@%s/bb%d: bad address %d" f.Ir.Func.name !cur a
          | Memory.Out_of_memory -> fault "@%s: out of memory" f.Ir.Func.name
        in
        prev := !cur;
        cur := (if c then a else b)
    | T_switch (s, default, tbl) ->
        let sv = Ir.Eval.as_int (fetch regs s) in
        prev := !cur;
        cur := (match Hashtbl.find_opt tbl sv with Some l -> l | None -> default)
  done;
  st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
  st.native <- Array.unsafe_get clocks 0;
  st.vm <- Array.unsafe_get clocks 1;
  Memory.release st.memory frame_mark;
  !result

(* The linked executor: the same per-block protocol as [exec_threaded]
   — fuel, profile, clocks, monitor, phis, body, in the same order with
   the same arithmetic — but control transfers follow the [t_link]
   references directly as mutually tail-recursive calls instead of
   re-indexing [tblocks] from a dispatch loop.  Every
   [max_linked_blocks] consecutive direct transfers the engine takes
   one trip through the indexed dispatch (the escape hatch) and resets
   the budget; both paths land on the same [tblock] record, and fuel,
   clocks and the monitor hook run at every block boundary on both, so
   the observable run is identical — the budget only bounds how long
   the engine may stay off the indexed path. *)
and exec_linked (st : state) (fi : func_info) (args : Ir.Eval.value array) :
    Ir.Eval.value option =
  let f = fi.func in
  if Array.length args <> List.length f.Ir.Func.params then
    fault "@%s: expected %d arguments, got %d" f.Ir.Func.name
      (List.length f.Ir.Func.params)
      (Array.length args);
  let regs = Array.make (max 1 f.Ir.Func.next_reg) (Ir.Eval.VInt 0L) in
  Array.iteri (fun i v -> regs.(i) <- v) args;
  let frame_mark = Memory.mark st.memory in
  let tblocks = fi.tblocks in
  let warmup = int_of_int64_clamped st.jit.Jit_model.warmup_threshold in
  let spent = ref 0 in
  let limit = ref (int_of_int64_clamped st.fuel) in
  let clocks = [| st.native; st.vm |] in
  let budget0 = st.tuning.max_linked_blocks in
  let rec goto (next : tblock) (prevl : int) (budget : int) =
    if budget > 0 then go next prevl (budget - 1)
    else go tblocks.(next.t_label) prevl budget0
  and go (tb : tblock) (prevl : int) (budget : int) : Ir.Eval.value option =
    let bi = tb.t_info in
    let curl = tb.t_label in
    spent := !spent + tb.t_fuel;
    if !spent > !limit then
      fault "execution budget exhausted in @%s" f.Ir.Func.name;
    let prior = bi.exec_count in
    bi.exec_count <- prior + 1;
    Array.unsafe_set clocks 0 (Array.unsafe_get clocks 0 +. tb.t_native);
    Array.unsafe_set clocks 1
      (Array.unsafe_get clocks 1
      +. (if prior >= warmup then tb.t_hot else tb.t_cold));
    (match st.mon with
    | None -> ()
    | Some mon ->
        st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
        spent := 0;
        st.native <- Array.unsafe_get clocks 0;
        st.vm <- Array.unsafe_get clocks 1;
        mon ~func:f.Ir.Func.name ~label:curl ~ninstrs:bi.ninstrs;
        limit := int_of_int64_clamped st.fuel;
        Array.unsafe_set clocks 0 st.native;
        Array.unsafe_set clocks 1 st.vm);
    let nphi = Array.length tb.t_phi_dests in
    if nphi > 0 then begin
      let srcs = tb.t_phi_srcs in
      if nphi = 1 then (
        let row = srcs.(0) in
        match
          if prevl >= 0 && prevl < Array.length row then row.(prevl)
          else P_missing
        with
        | P_slot r -> regs.(tb.t_phi_dests.(0)) <- regs.(r)
        | P_imm v -> regs.(tb.t_phi_dests.(0)) <- v
        | P_missing ->
            fault "@%s/bb%d: phi has no entry for predecessor bb%d"
              f.Ir.Func.name curl prevl)
      else begin
        let staged = tb.t_phi_scratch in
        for k = 0 to nphi - 1 do
          let row = srcs.(k) in
          match
            if prevl >= 0 && prevl < Array.length row then row.(prevl)
            else P_missing
          with
          | P_slot r -> staged.(k) <- regs.(r)
          | P_imm v -> staged.(k) <- v
          | P_missing ->
              fault "@%s/bb%d: phi has no entry for predecessor bb%d"
                f.Ir.Func.name curl prevl
        done;
        for k = 0 to nphi - 1 do
          regs.(tb.t_phi_dests.(k)) <- staged.(k)
        done
      end
    end;
    (try
       let ops = tb.t_ops in
       if tb.t_sync then begin
         st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
         spent := 0;
         st.native <- Array.unsafe_get clocks 0;
         st.vm <- Array.unsafe_get clocks 1;
         for k = 0 to Array.length ops - 1 do
           (Array.unsafe_get ops k) regs
         done;
         limit := int_of_int64_clamped st.fuel;
         Array.unsafe_set clocks 0 st.native;
         Array.unsafe_set clocks 1 st.vm
       end
       else
         for k = 0 to Array.length ops - 1 do
           (Array.unsafe_get ops k) regs
         done
     with
    | Ir.Eval.Division_by_zero ->
        fault "@%s/bb%d: division by zero" f.Ir.Func.name curl
    | Ir.Eval.Type_error m -> fault "@%s/bb%d: %s" f.Ir.Func.name curl m
    | Memory.Bad_address a ->
        fault "@%s/bb%d: bad address %d" f.Ir.Func.name curl a
    | Memory.Out_of_memory -> fault "@%s: out of memory" f.Ir.Func.name);
    match tb.t_link with
    | L_halt -> None
    | L_ret s -> Some (fetch regs s)
    | L_br nb -> goto nb curl budget
    | L_cond (c, x, y) ->
        goto (if Ir.Eval.is_true (fetch regs c) then x else y) curl budget
    | L_cond_s (r, x, y) ->
        goto (if Ir.Eval.is_true regs.(r) then x else y) curl budget
    | L_cmp_br (test, x, y) ->
        let c =
          try test regs with
          | Ir.Eval.Type_error m ->
              fault "@%s/bb%d: %s" f.Ir.Func.name curl m
          | Memory.Bad_address a ->
              fault "@%s/bb%d: bad address %d" f.Ir.Func.name curl a
          | Memory.Out_of_memory -> fault "@%s: out of memory" f.Ir.Func.name
        in
        goto (if c then x else y) curl budget
    | L_switch (s, dflt, tbl) ->
        let sv = Ir.Eval.as_int (fetch regs s) in
        goto
          (match Hashtbl.find_opt tbl sv with Some t -> t | None -> dflt)
          curl budget
    | L_none -> (
        (* unlinked terminator (out-of-range target labels, or
           [link_func] never ran): transfer through the indexed path,
           faulting exactly where the unlinked engine's
           [tblocks.(!cur)] would *)
        match tb.t_term with
        | T_halt -> None
        | T_ret s -> Some (fetch regs s)
        | T_br l -> go tblocks.(l) curl budget0
        | T_cond (c, x, y) ->
            go
              tblocks.(if Ir.Eval.is_true (fetch regs c) then x else y)
              curl budget0
        | T_cond_s (r, x, y) ->
            go tblocks.(if Ir.Eval.is_true regs.(r) then x else y) curl budget0
        | T_cmp_br (test, x, y) ->
            let c =
              try test regs with
              | Ir.Eval.Type_error m ->
                  fault "@%s/bb%d: %s" f.Ir.Func.name curl m
              | Memory.Bad_address a ->
                  fault "@%s/bb%d: bad address %d" f.Ir.Func.name curl a
              | Memory.Out_of_memory ->
                  fault "@%s: out of memory" f.Ir.Func.name
            in
            go tblocks.(if c then x else y) curl budget0
        | T_switch (s, dflt, tbl) ->
            let sv = Ir.Eval.as_int (fetch regs s) in
            go
              tblocks.(match Hashtbl.find_opt tbl sv with
                       | Some l -> l
                       | None -> dflt)
              curl budget0)
  in
  let result = go tblocks.(Ir.Func.entry_label) (-1) budget0 in
  st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
  st.native <- Array.unsafe_get clocks 0;
  st.vm <- Array.unsafe_get clocks 1;
  Memory.release st.memory frame_mark;
  result

(* The typed-register-file executors: the exact per-block protocol of
   [exec_threaded] / [exec_linked] — arity check, fuel, profile,
   clocks, monitor flush/reload, phi prologue, body with [r_sync]
   flush/reload, terminators — over a {!frame} instead of a boxed
   register array.  The bookkeeping arithmetic and its order are
   copied verbatim, so clocks, fuel, profiles and fault messages stay
   byte-identical to every other engine. *)
and exec_rthreaded (st : state) (fi : func_info)
    (args : Ir.Eval.value array) : Ir.Eval.value option =
  let f = fi.func in
  if Array.length args <> List.length f.Ir.Func.params then
    fault "@%s: expected %d arguments, got %d" f.Ir.Func.name
      (List.length f.Ir.Func.params)
      (Array.length args);
  let classes = fi.rclasses in
  let slots = fi.rslots in
  let counts = fi.rcounts in
  let fr =
    {
      fr_i = Array.make counts.(0) 0L;
      fr_f = Array.make counts.(1) 0.0;
      fr_p = Array.make counts.(2) 0;
      fr_v = Array.make (max 1 counts.(3)) (Ir.Eval.VInt 0L);
    }
  in
  (* Unbox the arguments into their parameter registers' classes — the
     callee-side half of the call seam.  Parameter registers are
     0..n-1, like the boxed engines' [Array.iteri] install. *)
  Array.iteri
    (fun i v ->
      if i >= 0 && i < Array.length classes then (
        let s = slots.(i) in
        match classes.(i) with
        | C_int -> fr.fr_i.(s) <- E.as_int v
        | C_float -> fr.fr_f.(s) <- E.as_float v
        | C_ptr -> fr.fr_p.(s) <- E.as_ptr v
        | C_boxed -> fr.fr_v.(s) <- v)
      else fr.fr_v.(i) <- v)
    args;
  let frame_mark = Memory.mark st.memory in
  let rtblocks = fi.rtblocks in
  let warmup = int_of_int64_clamped st.jit.Jit_model.warmup_threshold in
  let spent = ref 0 in
  let limit = ref (int_of_int64_clamped st.fuel) in
  let clocks = [| st.native; st.vm |] in
  let cur = ref Ir.Func.entry_label in
  let prev = ref (-1) in
  let result = ref None in
  let running = ref true in
  while !running do
    let tb = rtblocks.(!cur) in
    let bi = tb.r_info in
    spent := !spent + tb.r_fuel;
    if !spent > !limit then
      fault "execution budget exhausted in @%s" f.Ir.Func.name;
    let prior = bi.exec_count in
    bi.exec_count <- prior + 1;
    Array.unsafe_set clocks 0 (Array.unsafe_get clocks 0 +. tb.r_native);
    Array.unsafe_set clocks 1
      (Array.unsafe_get clocks 1
      +. (if prior >= warmup then tb.r_hot else tb.r_cold));
    (match st.mon with
    | None -> ()
    | Some mon ->
        st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
        spent := 0;
        st.native <- Array.unsafe_get clocks 0;
        st.vm <- Array.unsafe_get clocks 1;
        mon ~func:f.Ir.Func.name ~label:!cur ~ninstrs:bi.ninstrs;
        limit := int_of_int64_clamped st.fuel;
        Array.unsafe_set clocks 0 st.native;
        Array.unsafe_set clocks 1 st.vm);
    (* Phi prologue: the whole stage-then-commit pass was compiled per
       predecessor label. *)
    let rows = tb.r_phi_rows in
    if Array.length rows > 0 then begin
      let p = !prev in
      if p >= 0 && p < Array.length rows then (Array.unsafe_get rows p) fr
      else
        fault "@%s/bb%d: phi has no entry for predecessor bb%d"
          f.Ir.Func.name !cur p
    end;
    (try
       let ops = tb.r_ops in
       if tb.r_sync then begin
         st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
         spent := 0;
         st.native <- Array.unsafe_get clocks 0;
         st.vm <- Array.unsafe_get clocks 1;
         for k = 0 to Array.length ops - 1 do
           (Array.unsafe_get ops k) fr
         done;
         limit := int_of_int64_clamped st.fuel;
         Array.unsafe_set clocks 0 st.native;
         Array.unsafe_set clocks 1 st.vm
       end
       else
         for k = 0 to Array.length ops - 1 do
           (Array.unsafe_get ops k) fr
         done
     with
    | Ir.Eval.Division_by_zero ->
        fault "@%s/bb%d: division by zero" f.Ir.Func.name !cur
    | Ir.Eval.Type_error m -> fault "@%s/bb%d: %s" f.Ir.Func.name !cur m
    | Memory.Bad_address a ->
        fault "@%s/bb%d: bad address %d" f.Ir.Func.name !cur a
    | Memory.Out_of_memory -> fault "@%s: out of memory" f.Ir.Func.name);
    match tb.r_term with
    | R_halt -> running := false
    | R_ret g ->
        result := Some (g fr);
        running := false
    | R_br l ->
        prev := !cur;
        cur := l
    | R_cond (t, a, b) ->
        prev := !cur;
        cur := (if t fr then a else b)
    | R_cmp_br (test, a, b) ->
        let c =
          try test fr with
          | Ir.Eval.Type_error m ->
              fault "@%s/bb%d: %s" f.Ir.Func.name !cur m
          | Memory.Bad_address a ->
              fault "@%s/bb%d: bad address %d" f.Ir.Func.name !cur a
          | Memory.Out_of_memory -> fault "@%s: out of memory" f.Ir.Func.name
        in
        prev := !cur;
        cur := (if c then a else b)
    | R_switch (g, default, tbl) ->
        let sv = g fr in
        prev := !cur;
        cur :=
          (match Hashtbl.find_opt tbl sv with Some l -> l | None -> default)
  done;
  st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
  st.native <- Array.unsafe_get clocks 0;
  st.vm <- Array.unsafe_get clocks 1;
  Memory.release st.memory frame_mark;
  !result

and exec_rlinked (st : state) (fi : func_info) (args : Ir.Eval.value array) :
    Ir.Eval.value option =
  let f = fi.func in
  if Array.length args <> List.length f.Ir.Func.params then
    fault "@%s: expected %d arguments, got %d" f.Ir.Func.name
      (List.length f.Ir.Func.params)
      (Array.length args);
  let classes = fi.rclasses in
  let slots = fi.rslots in
  let counts = fi.rcounts in
  let fr =
    {
      fr_i = Array.make counts.(0) 0L;
      fr_f = Array.make counts.(1) 0.0;
      fr_p = Array.make counts.(2) 0;
      fr_v = Array.make (max 1 counts.(3)) (Ir.Eval.VInt 0L);
    }
  in
  Array.iteri
    (fun i v ->
      if i >= 0 && i < Array.length classes then (
        let s = slots.(i) in
        match classes.(i) with
        | C_int -> fr.fr_i.(s) <- E.as_int v
        | C_float -> fr.fr_f.(s) <- E.as_float v
        | C_ptr -> fr.fr_p.(s) <- E.as_ptr v
        | C_boxed -> fr.fr_v.(s) <- v)
      else fr.fr_v.(i) <- v)
    args;
  let frame_mark = Memory.mark st.memory in
  let rtblocks = fi.rtblocks in
  let warmup = int_of_int64_clamped st.jit.Jit_model.warmup_threshold in
  let spent = ref 0 in
  let limit = ref (int_of_int64_clamped st.fuel) in
  let clocks = [| st.native; st.vm |] in
  let budget0 = st.tuning.max_linked_blocks in
  let rec goto (next : rtblock) (prevl : int) (budget : int) =
    if budget > 0 then go next prevl (budget - 1)
    else go rtblocks.(next.r_label) prevl budget0
  and go (tb : rtblock) (prevl : int) (budget : int) : Ir.Eval.value option =
    let bi = tb.r_info in
    let curl = tb.r_label in
    spent := !spent + tb.r_fuel;
    if !spent > !limit then
      fault "execution budget exhausted in @%s" f.Ir.Func.name;
    let prior = bi.exec_count in
    bi.exec_count <- prior + 1;
    Array.unsafe_set clocks 0 (Array.unsafe_get clocks 0 +. tb.r_native);
    Array.unsafe_set clocks 1
      (Array.unsafe_get clocks 1
      +. (if prior >= warmup then tb.r_hot else tb.r_cold));
    (match st.mon with
    | None -> ()
    | Some mon ->
        st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
        spent := 0;
        st.native <- Array.unsafe_get clocks 0;
        st.vm <- Array.unsafe_get clocks 1;
        mon ~func:f.Ir.Func.name ~label:curl ~ninstrs:bi.ninstrs;
        limit := int_of_int64_clamped st.fuel;
        Array.unsafe_set clocks 0 st.native;
        Array.unsafe_set clocks 1 st.vm);
    let rows = tb.r_phi_rows in
    if Array.length rows > 0 then begin
      if prevl >= 0 && prevl < Array.length rows then
        (Array.unsafe_get rows prevl) fr
      else
        fault "@%s/bb%d: phi has no entry for predecessor bb%d"
          f.Ir.Func.name curl prevl
    end;
    (try
       let ops = tb.r_ops in
       if tb.r_sync then begin
         st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
         spent := 0;
         st.native <- Array.unsafe_get clocks 0;
         st.vm <- Array.unsafe_get clocks 1;
         for k = 0 to Array.length ops - 1 do
           (Array.unsafe_get ops k) fr
         done;
         limit := int_of_int64_clamped st.fuel;
         Array.unsafe_set clocks 0 st.native;
         Array.unsafe_set clocks 1 st.vm
       end
       else
         for k = 0 to Array.length ops - 1 do
           (Array.unsafe_get ops k) fr
         done
     with
    | Ir.Eval.Division_by_zero ->
        fault "@%s/bb%d: division by zero" f.Ir.Func.name curl
    | Ir.Eval.Type_error m -> fault "@%s/bb%d: %s" f.Ir.Func.name curl m
    | Memory.Bad_address a ->
        fault "@%s/bb%d: bad address %d" f.Ir.Func.name curl a
    | Memory.Out_of_memory -> fault "@%s: out of memory" f.Ir.Func.name);
    match tb.r_link with
    | RL_halt -> None
    | RL_ret g -> Some (g fr)
    | RL_br nb -> goto nb curl budget
    | RL_cond (t, x, y) -> goto (if t fr then x else y) curl budget
    | RL_cmp_br (test, x, y) ->
        let c =
          try test fr with
          | Ir.Eval.Type_error m ->
              fault "@%s/bb%d: %s" f.Ir.Func.name curl m
          | Memory.Bad_address a ->
              fault "@%s/bb%d: bad address %d" f.Ir.Func.name curl a
          | Memory.Out_of_memory -> fault "@%s: out of memory" f.Ir.Func.name
        in
        goto (if c then x else y) curl budget
    | RL_switch (g, dflt, tbl) ->
        let sv = g fr in
        goto
          (match Hashtbl.find_opt tbl sv with Some t -> t | None -> dflt)
          curl budget
    | RL_none -> (
        (* unlinked terminator: transfer through the indexed path,
           faulting exactly where the unlinked engine would *)
        match tb.r_term with
        | R_halt -> None
        | R_ret g -> Some (g fr)
        | R_br l -> go rtblocks.(l) curl budget0
        | R_cond (t, x, y) -> go rtblocks.(if t fr then x else y) curl budget0
        | R_cmp_br (test, x, y) ->
            let c =
              try test fr with
              | Ir.Eval.Type_error m ->
                  fault "@%s/bb%d: %s" f.Ir.Func.name curl m
              | Memory.Bad_address a ->
                  fault "@%s/bb%d: bad address %d" f.Ir.Func.name curl a
              | Memory.Out_of_memory ->
                  fault "@%s: out of memory" f.Ir.Func.name
            in
            go rtblocks.(if c then x else y) curl budget0
        | R_switch (g, dflt, tbl) ->
            let sv = g fr in
            go
              rtblocks.(match Hashtbl.find_opt tbl sv with
                        | Some l -> l
                        | None -> dflt)
              curl budget0)
  in
  let result = go rtblocks.(Ir.Func.entry_label) (-1) budget0 in
  st.fuel <- Int64.sub st.fuel (Int64.of_int !spent);
  st.native <- Array.unsafe_get clocks 0;
  st.vm <- Array.unsafe_get clocks 1;
  Memory.release st.memory frame_mark;
  result

(* Engine selection for resolved calls: compiled [Call] closures and
   the run entry point go through [enter], so the linking and typed
   register-file knobs apply to callees too. *)
and enter (st : state) (fi : func_info) (args : Ir.Eval.value array) :
    Ir.Eval.value option =
  if st.tuning.regalloc then
    if st.tuning.link then exec_rlinked st fi args else exec_rthreaded st fi args
  else if st.tuning.link then exec_linked st fi args
  else exec_threaded st fi args

(** Compile one function's blocks to threaded code.  All of the
    module's functions must already be prepared in [st.funcs] so callee
    [func_info]s can be captured; their own [tblocks] may be compiled
    later (the closure reads them at call time). *)
and compile_func (st : state) (fi : func_info) : tblock array =
  Array.mapi (fun bnum bi -> compile_block st fi bnum bi) fi.blocks

and compile_block (st : state) (fi : func_info) (bnum : int) (bi : block_info) :
    tblock =
  let fname = fi.func.Ir.Func.name in
  let nphi = bi.phi_count in
  let t_phi_srcs =
    Array.init nphi (fun k ->
        Array.map
          (function
            | None -> P_missing
            | Some op -> (
                match decode_operand op with
                | Slot r -> P_slot r
                | Imm v -> P_imm v))
          bi.phi_incoming.(k))
  in
  let mem = st.memory in
  let nregs = max 1 fi.func.Ir.Func.next_reg in
  let compile_instr (i : Ir.Instr.t) : Ir.Eval.value array -> unit =
    let d = i.Ir.Instr.id in
    let ty = i.Ir.Instr.ty in
    match i.Ir.Instr.kind with
    | Ir.Instr.Phi _ ->
        (* Mirrors the reference engine: a phi after a non-phi is a
           runtime fault of the block, not a compile error. *)
        fun _ -> fault "@%s/bb%d: phi after non-phi" fname bnum
    | Ir.Instr.Binop (op, a, b) ->
        compile_binop ~nregs ty op d (decode_operand a) (decode_operand b)
    | Ir.Instr.Icmp (p, a, b) ->
        compile_icmp ~nregs p d (decode_operand a) (decode_operand b)
    | Ir.Instr.Fcmp (p, a, b) ->
        compile_fcmp ~nregs p d (decode_operand a) (decode_operand b)
    | Ir.Instr.Cast (c, a) ->
        let from_ =
          match a with
          | Ir.Instr.Const cst -> Ir.Instr.const_ty cst
          | Ir.Instr.Reg r -> fi.reg_tys.(r)
        in
        compile_cast ~nregs c ~from_ ~to_:ty d (decode_operand a)
    | Ir.Instr.Select (c, a, b) -> (
        let sc = decode_operand c
        and sa = decode_operand a
        and sb = decode_operand b in
        let ok r = r >= 0 && r < nregs in
        match (sc, sa, sb) with
        | Slot rc, Slot ra, Slot rb when ok d && ok rc && ok ra && ok rb ->
            fun regs ->
              Array.unsafe_set regs d
                (if Ir.Eval.is_true (Array.unsafe_get regs rc) then
                   Array.unsafe_get regs ra
                 else Array.unsafe_get regs rb)
        | _ ->
            (* all three operands are read strictly, like the reference
               engine's [eval_select] call *)
            fun regs ->
              let vc = fetch regs sc
              and va = fetch regs sa
              and vb = fetch regs sb in
              regs.(d) <- (if Ir.Eval.is_true vc then va else vb))
    | Ir.Instr.Alloca (_, count) ->
        fun regs -> regs.(d) <- Ir.Eval.VPtr (Memory.alloc mem count)
    | Ir.Instr.Load a -> (
        match decode_operand a with
        | Slot ra when d >= 0 && d < nregs && ra >= 0 && ra < nregs ->
            fun regs ->
              Array.unsafe_set regs d
                (Memory.load mem (Ir.Eval.as_ptr (Array.unsafe_get regs ra)))
        | Slot ra ->
            fun regs -> regs.(d) <- Memory.load mem (Ir.Eval.as_ptr regs.(ra))
        | Imm va -> fun regs -> regs.(d) <- Memory.load mem (Ir.Eval.as_ptr va)
        )
    | Ir.Instr.Store (x, a) -> (
        match (decode_operand x, decode_operand a) with
        | Slot rx, Slot ra when rx < nregs && ra < nregs && rx >= 0 && ra >= 0
          ->
            fun regs ->
              Memory.store mem
                (Ir.Eval.as_ptr (Array.unsafe_get regs ra))
                (Array.unsafe_get regs rx)
        | sx, sa ->
            fun regs ->
              Memory.store mem (Ir.Eval.as_ptr (fetch regs sa)) (fetch regs sx)
        )
    | Ir.Instr.Gep (base, idx) -> (
        let sb = decode_operand base and si = decode_operand idx in
        let ok r = r >= 0 && r < nregs in
        match (sb, si) with
        | Slot a, Slot b when ok d && ok a && ok b ->
            fun regs ->
              Array.unsafe_set regs d
                (Ir.Eval.VPtr
                   (Ir.Eval.as_ptr (Array.unsafe_get regs a)
                   + Int64.to_int (Ir.Eval.as_int (Array.unsafe_get regs b))))
        | Slot a, Imm (Ir.Eval.VInt ib) when ok d && ok a ->
            let n = Int64.to_int ib in
            fun regs ->
              Array.unsafe_set regs d
                (Ir.Eval.VPtr (Ir.Eval.as_ptr (Array.unsafe_get regs a) + n))
        | _ ->
            bin_closure ~nregs
              (fun vb vi ->
                Ir.Eval.VPtr
                  (Ir.Eval.as_ptr vb + Int64.to_int (Ir.Eval.as_int vi)))
              d sb si)
    | Ir.Instr.Gaddr g ->
        (* Resolved lazily on first execution: resolving at compile time
           would turn an unknown global in never-executed code into an
           eager error the reference engine doesn't raise.  Within one
           run the layout is fixed after [load_globals], so the base is
           memoized; an unknown global re-raises the same
           [Invalid_argument] on every execution, like the reference. *)
        let cell = ref (-1) in
        fun regs ->
          let b = !cell in
          let b =
            if b >= 0 then b
            else begin
              let b = Memory.global_base mem g in
              cell := b;
              b
            end
          in
          regs.(d) <- Ir.Eval.VPtr b
    | Ir.Instr.Call (name, argops) -> (
        let srcs = Array.of_list (List.map decode_operand argops) in
        let eval_args = args_fn srcs in
        match Hashtbl.find_opt st.funcs name with
        | Some callee -> (
            fun regs ->
              match enter st callee (eval_args regs) with
              | Some r -> regs.(d) <- r
              | None -> ())
        | None -> (
            match find_intrinsic name with
            | Some impl -> fun regs -> regs.(d) <- impl (eval_args regs)
            | None -> fun _ -> fault "call to unknown function @%s" name))
    | Ir.Instr.Ci_call (ci, argops) -> (
        let srcs = Array.of_list (List.map decode_operand argops) in
        let eval_args = args_fn srcs in
        match Hashtbl.find_opt st.cis ci with
        | Some impl -> (
            (* CI-native dispatch: when the knob is on and the CI ships
               a fused closure compiled from its MISO subgraph, one
               dispatch executes the whole subgraph — functionally
               identical to [ci_eval] by construction (pinned by the
               differential suite).  The cycle charge is untouched:
               with a monitor it is still read from the swap cell at
               dispatch, so the controller's software/hardware rebinds
               land identically whichever body runs. *)
            let eval =
              if st.tuning.ci_native then
                match impl.ci_native with Some f -> f | None -> impl.ci_eval
              else impl.ci_eval
            in
            match st.swap with
            | None ->
                let cyc = float_of_int impl.ci_cycles in
                fun regs ->
                  regs.(d) <- eval (eval_args regs);
                  st.native <- st.native +. cyc;
                  st.vm <- st.vm +. cyc
            | Some cells ->
                (* Hot-swappable binding: the charge is read from the
                   CI's swap cell at dispatch so the controller can
                   rebind software/hardware cost between blocks without
                   recompiling the fused closures. *)
                let cell =
                  match Hashtbl.find_opt cells ci with
                  | Some c -> c
                  | None ->
                      let c = ref (float_of_int impl.ci_cycles) in
                      Hashtbl.replace cells ci c;
                      c
                in
                fun regs ->
                  regs.(d) <- eval (eval_args regs);
                  let cyc = !cell in
                  st.native <- st.native +. cyc;
                  st.vm <- st.vm +. cyc)
        | None -> fun _ -> fault "custom instruction #%d is not configured" ci)
  in
  (* --- sink-tree fusion: planning ------------------------------- *)
  let n = bi.ninstrs in
  let ok r = r >= 0 && r < nregs in
  (* A producer is sinkable when deferring it from its own body
     position to its consumer's is unobservable on type-sound
     executions.  The pure kinds neither read memory nor fault.  A
     [Load] may fault ([Bad_address]) and reads memory, so it is only a
     candidate here; a veto pass below keeps it anchored unless nothing
     observable sits inside its sink window.  Divisions fault on
     type-sound programs and stay anchored. *)
  let sinkable (i : Ir.Instr.t) =
    match i.Ir.Instr.kind with
    | Ir.Instr.Binop
        ((Ir.Instr.Sdiv | Ir.Instr.Udiv | Ir.Instr.Srem | Ir.Instr.Urem), _, _)
      ->
        false
    | Ir.Instr.Binop _ | Ir.Instr.Icmp _ | Ir.Instr.Fcmp _ | Ir.Instr.Cast _
    | Ir.Instr.Select _ | Ir.Instr.Gep _ | Ir.Instr.Gaddr _ | Ir.Instr.Load _
      ->
        true
    | _ -> false
  in
  (* [def_at.(r)] is the body index of the sinkable single-use
     definition of register [r] in this block, or -1.  Only in-range
     destinations qualify: an absorbed producer skips its register
     write, which must not swallow the [Invalid_argument] an
     out-of-range write would have raised. *)
  let def_at = Array.make nregs (-1) in
  let absorbed = Array.make (max 1 n) false in
  (* [consumer.(j)] is the body index of the instruction that absorbs
     producer [j] ([n] when it is the fused terminator scrutinee's
     tree); used to resolve the anchor position a sunk load would
     execute at. *)
  let consumer = Array.make (max 1 n) (-1) in
  if st.tuning.fuse then
    for j = nphi to n - 1 do
      let i = bi.instrs.(j) in
      let d = i.Ir.Instr.id in
      if
        sinkable i && ok d
        && d < Array.length fi.use_counts
        && fi.use_counts.(d) = 1
      then def_at.(d) <- j
    done;
  (* Mark the producers a tree-compiled instruction at body index [j]
     absorbs: every register operand whose sinkable single-use
     definition lies strictly earlier in this block's body.  The
     single static use is the operand being inspected, so no other
     reader can observe the skipped register write. *)
  let plan_operand j (op : Ir.Instr.operand) =
    match op with
    | Ir.Instr.Reg r when ok r && def_at.(r) >= 0 && def_at.(r) < j ->
        absorbed.(def_at.(r)) <- true;
        consumer.(def_at.(r)) <- j
    | _ -> ()
  in
  let plan_instr j (i : Ir.Instr.t) =
    match i.Ir.Instr.kind with
    | Ir.Instr.Binop (_, a, b)
    | Ir.Instr.Icmp (_, a, b)
    | Ir.Instr.Fcmp (_, a, b)
    | Ir.Instr.Gep (a, b)
    | Ir.Instr.Store (a, b) ->
        plan_operand j a;
        plan_operand j b
    | Ir.Instr.Cast (_, a) | Ir.Instr.Load a -> plan_operand j a
    | Ir.Instr.Select (c, a, b) ->
        plan_operand j c;
        plan_operand j a;
        plan_operand j b
    | Ir.Instr.Phi _ | Ir.Instr.Alloca _ | Ir.Instr.Gaddr _ | Ir.Instr.Call _
    | Ir.Instr.Ci_call _ ->
        (* calls keep their argument evaluation exactly as compiled;
           the others have no register operands *)
        ()
  in
  let op_absorbed (op : Ir.Instr.operand) =
    match op with
    | Ir.Instr.Reg r -> ok r && def_at.(r) >= 0 && absorbed.(def_at.(r))
    | Ir.Instr.Const _ -> false
  in
  let has_absorbed (i : Ir.Instr.t) =
    match i.Ir.Instr.kind with
    | Ir.Instr.Binop (_, a, b)
    | Ir.Instr.Icmp (_, a, b)
    | Ir.Instr.Fcmp (_, a, b)
    | Ir.Instr.Gep (a, b)
    | Ir.Instr.Store (a, b) ->
        op_absorbed a || op_absorbed b
    | Ir.Instr.Cast (_, a) | Ir.Instr.Load a -> op_absorbed a
    | Ir.Instr.Select (c, a, b) ->
        op_absorbed c || op_absorbed a || op_absorbed b
    | _ -> false
  in
  (* Compare-and-branch fusion: when the scrutinee of this block's
     conditional is the sinkable last body instruction and is used
     nowhere else, it folds into the terminator and its body position
     is skipped. *)
  let fused_scrutinee =
    if st.tuning.fuse && n > nphi then
      match bi.term with
      | Ir.Instr.Cond_br (Ir.Instr.Reg r, a, b)
        when bi.instrs.(n - 1).Ir.Instr.id = r
             && r >= 0
             && r < Array.length fi.use_counts
             && fi.use_counts.(r) = 1
             && sinkable bi.instrs.(n - 1) ->
          Some (bi.instrs.(n - 1), a, b)
      | _ -> None
    else None
  in
  let body_end = match fused_scrutinee with Some _ -> n - 1 | None -> n in
  if st.tuning.fuse then begin
    (match fused_scrutinee with
    | Some (ci, _, _) -> plan_instr n ci
    | None -> ());
    (* Anchors and absorbed producers alike absorb their own operands,
       so chains collapse transitively.  A single pass suffices: the
       marks depend only on [def_at] and static use counts. *)
    for j = nphi to body_end - 1 do
      let i = bi.instrs.(j) in
      match i.Ir.Instr.kind with
      | Ir.Instr.Phi _ | Ir.Instr.Alloca _ | Ir.Instr.Call _
      | Ir.Instr.Ci_call _ ->
          ()
      | _ -> plan_instr j i
    done;
    (* Load-sink veto.  A sunk load executes at its anchor's position,
       so its sink window — the body indices strictly between its own
       position and the anchor's — must contain nothing observable:
       no store, call, alloca, and no other load at its original
       position (two loads with bad addresses would otherwise swap
       which address the block's fault reports).  Pure sinkable
       producers in the window are fine: they cannot fault on
       type-sound executions.  This veto also caps each fused tree at
       one load, since a second absorbed load necessarily sits in the
       earlier one's window. *)
    let barrier (m : int) =
      match bi.instrs.(m).Ir.Instr.kind with
      | Ir.Instr.Load _ | Ir.Instr.Store _ | Ir.Instr.Alloca _
      | Ir.Instr.Call _ | Ir.Instr.Ci_call _ ->
          true
      | _ -> false
    in
    let rec anchor k =
      if k >= n then n else if absorbed.(k) then anchor consumer.(k) else k
    in
    for j = nphi to body_end - 1 do
      match bi.instrs.(j).Ir.Instr.kind with
      | Ir.Instr.Load _ when absorbed.(j) ->
          let k = anchor consumer.(j) in
          let m = ref (j + 1) in
          let blocked = ref false in
          while (not !blocked) && !m < k do
            if barrier !m then blocked := true;
            incr m
          done;
          if !blocked then absorbed.(j) <- false
      | _ -> ()
    done
  end;
  (* --- sink-tree fusion: emission ------------------------------- *)
  (* Typed tree compilers.  Each compiles the value of instruction [j]
     (or an operand) into an {e unboxed} closure for one of the scalar
     classes — the int64 an [as_int] of the boxed value would give
     ([iop]/[inode]), the float of [as_float] ([fop]/[fnode]), the
     address of [as_ptr] ([pop]/[pnode]), a comparison's boolean
     ([bnode]) — so a fused chain allocates no intermediate [value]s.
     [None] means the shape has no unboxed form in that class; the
     boxed compilers ([vop]/[vnode]/[gnode]) then take over, and any
     type conversion happens exactly where the unfused consumer's
     [Ir.Eval] closure would perform it.  The scalar expressions
     mirror the [Ir.Eval.*_fn] arms (same renormalization, shift
     masking, NaN and division-by-zero treatment); the differential
     suite pins both engines to identical outcomes.  Operands evaluate
     left-to-right in operand order, each subtree fully before the
     consumer's own conversions. *)
  let from_ty_of (a : Ir.Instr.operand) =
    match a with
    | Ir.Instr.Const cst -> Ir.Instr.const_ty cst
    | Ir.Instr.Reg r -> fi.reg_tys.(r)
  in
  let rec iop (op : Ir.Instr.operand) : iarg option =
    match op with
    | Ir.Instr.Const c -> (
        match E.of_const c with
        | E.VInt k -> Some (IConst k)
        | E.VPtr p -> Some (IConst (Int64.of_int p))
        | E.VFloat _ -> None)
    | Ir.Instr.Reg r ->
        if ok r then
          if def_at.(r) >= 0 && absorbed.(def_at.(r)) then
            match inode def_at.(r) with
            | Some f -> Some (IFun f)
            | None -> None
          else Some (ISlot r)
        else None
  and inode (j : int) : (Ir.Eval.value array -> int64) option =
    let i = bi.instrs.(j) in
    let ty = i.Ir.Instr.ty in
    match i.Ir.Instr.kind with
    | Ir.Instr.Binop (op, a, b) -> (
        let sh = E.norm_shift ty in
        let sm = E.shift_amount ty (-1L) in
        let um = E.umask ty (-1L) in
        (* Per-shape arms: slot and constant leaves are inlined into the
           node closure's body; mixed shapes fall through to the
           materialized generic arm.  Same scalar expression in every
           arm of an operator. *)
        match (op, iop a, iop b) with
        | Ir.Instr.Add, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | ISlot ra, ISlot rb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = geti regs rb in
                    E.renorm sh (Int64.add x y)
              | ISlot ra, IConst kb ->
                  fun regs -> E.renorm sh (Int64.add (geti regs ra) kb)
              | IConst ka, ISlot rb ->
                  fun regs -> E.renorm sh (Int64.add ka (geti regs rb))
              | IFun fa, ISlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = geti regs rb in
                    E.renorm sh (Int64.add x y)
              | ISlot ra, IFun fb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = fb regs in
                    E.renorm sh (Int64.add x y)
              | IFun fa, IConst kb ->
                  fun regs -> E.renorm sh (Int64.add (fa regs) kb)
              | IFun fa, IFun fb ->
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.add x y)
              | aa, bb ->
                  let fa = ifn aa and fb = ifn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.add x y))
        | Ir.Instr.Sub, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | ISlot ra, ISlot rb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = geti regs rb in
                    E.renorm sh (Int64.sub x y)
              | ISlot ra, IConst kb ->
                  fun regs -> E.renorm sh (Int64.sub (geti regs ra) kb)
              | IConst ka, ISlot rb ->
                  fun regs -> E.renorm sh (Int64.sub ka (geti regs rb))
              | IFun fa, ISlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = geti regs rb in
                    E.renorm sh (Int64.sub x y)
              | ISlot ra, IFun fb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = fb regs in
                    E.renorm sh (Int64.sub x y)
              | IFun fa, IConst kb ->
                  fun regs -> E.renorm sh (Int64.sub (fa regs) kb)
              | IFun fa, IFun fb ->
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.sub x y)
              | aa, bb ->
                  let fa = ifn aa and fb = ifn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.sub x y))
        | Ir.Instr.Mul, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | ISlot ra, ISlot rb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = geti regs rb in
                    E.renorm sh (Int64.mul x y)
              | ISlot ra, IConst kb ->
                  fun regs -> E.renorm sh (Int64.mul (geti regs ra) kb)
              | IConst ka, ISlot rb ->
                  fun regs -> E.renorm sh (Int64.mul ka (geti regs rb))
              | IFun fa, ISlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = geti regs rb in
                    E.renorm sh (Int64.mul x y)
              | ISlot ra, IFun fb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = fb regs in
                    E.renorm sh (Int64.mul x y)
              | IFun fa, IConst kb ->
                  fun regs -> E.renorm sh (Int64.mul (fa regs) kb)
              | IFun fa, IFun fb ->
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.mul x y)
              | aa, bb ->
                  let fa = ifn aa and fb = ifn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.mul x y))
        | Ir.Instr.And, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | ISlot ra, ISlot rb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = geti regs rb in
                    E.renorm sh (Int64.logand x y)
              | ISlot ra, IConst kb ->
                  fun regs -> E.renorm sh (Int64.logand (geti regs ra) kb)
              | IFun fa, ISlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = geti regs rb in
                    E.renorm sh (Int64.logand x y)
              | IFun fa, IConst kb ->
                  fun regs -> E.renorm sh (Int64.logand (fa regs) kb)
              | IFun fa, IFun fb ->
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.logand x y)
              | aa, bb ->
                  let fa = ifn aa and fb = ifn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.logand x y))
        | Ir.Instr.Or, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | ISlot ra, ISlot rb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = geti regs rb in
                    E.renorm sh (Int64.logor x y)
              | ISlot ra, IConst kb ->
                  fun regs -> E.renorm sh (Int64.logor (geti regs ra) kb)
              | IFun fa, ISlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = geti regs rb in
                    E.renorm sh (Int64.logor x y)
              | IFun fa, IConst kb ->
                  fun regs -> E.renorm sh (Int64.logor (fa regs) kb)
              | IFun fa, IFun fb ->
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.logor x y)
              | aa, bb ->
                  let fa = ifn aa and fb = ifn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.logor x y))
        | Ir.Instr.Xor, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | ISlot ra, ISlot rb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = geti regs rb in
                    E.renorm sh (Int64.logxor x y)
              | ISlot ra, IConst kb ->
                  fun regs -> E.renorm sh (Int64.logxor (geti regs ra) kb)
              | IFun fa, ISlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = geti regs rb in
                    E.renorm sh (Int64.logxor x y)
              | IFun fa, IConst kb ->
                  fun regs -> E.renorm sh (Int64.logxor (fa regs) kb)
              | IFun fa, IFun fb ->
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.logxor x y)
              | aa, bb ->
                  let fa = ifn aa and fb = ifn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.logxor x y))
        | Ir.Instr.Shl, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | ISlot ra, ISlot rb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = geti regs rb in
                    E.renorm sh (Int64.shift_left x (Int64.to_int y land sm))
              | ISlot ra, IConst kb ->
                  let n = Int64.to_int kb land sm in
                  fun regs -> E.renorm sh (Int64.shift_left (geti regs ra) n)
              | IFun fa, ISlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = geti regs rb in
                    E.renorm sh (Int64.shift_left x (Int64.to_int y land sm))
              | IFun fa, IConst kb ->
                  let n = Int64.to_int kb land sm in
                  fun regs -> E.renorm sh (Int64.shift_left (fa regs) n)
              | aa, bb ->
                  let fa = ifn aa and fb = ifn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.shift_left x (Int64.to_int y land sm)))
        | Ir.Instr.Lshr, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | ISlot ra, ISlot rb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = geti regs rb in
                    E.renorm sh
                      (Int64.shift_right_logical (Int64.logand x um)
                         (Int64.to_int y land sm))
              | ISlot ra, IConst kb ->
                  let n = Int64.to_int kb land sm in
                  fun regs ->
                    E.renorm sh
                      (Int64.shift_right_logical
                         (Int64.logand (geti regs ra) um)
                         n)
              | IFun fa, IConst kb ->
                  let n = Int64.to_int kb land sm in
                  fun regs ->
                    E.renorm sh
                      (Int64.shift_right_logical (Int64.logand (fa regs) um) n)
              | aa, bb ->
                  let fa = ifn aa and fb = ifn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh
                      (Int64.shift_right_logical (Int64.logand x um)
                         (Int64.to_int y land sm)))
        | Ir.Instr.Ashr, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | ISlot ra, ISlot rb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = geti regs rb in
                    E.renorm sh (Int64.shift_right x (Int64.to_int y land sm))
              | ISlot ra, IConst kb ->
                  let n = Int64.to_int kb land sm in
                  fun regs -> E.renorm sh (Int64.shift_right (geti regs ra) n)
              | IFun fa, IConst kb ->
                  let n = Int64.to_int kb land sm in
                  fun regs -> E.renorm sh (Int64.shift_right (fa regs) n)
              | aa, bb ->
                  let fa = ifn aa and fb = ifn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    E.renorm sh (Int64.shift_right x (Int64.to_int y land sm)))
        | Ir.Instr.Sdiv, Some aa, Some bb ->
            let fa = ifn aa and fb = ifn bb in
            Some
              (fun regs ->
                let x = fa regs in
                let y = fb regs in
                if y = 0L then raise E.Division_by_zero
                else E.renorm sh (Int64.div x y))
        | Ir.Instr.Srem, Some aa, Some bb ->
            let fa = ifn aa and fb = ifn bb in
            Some
              (fun regs ->
                let x = fa regs in
                let y = fb regs in
                if y = 0L then raise E.Division_by_zero
                else E.renorm sh (Int64.rem x y))
        | Ir.Instr.Udiv, Some aa, Some bb ->
            let fa = ifn aa and fb = ifn bb in
            Some
              (fun regs ->
                let x = fa regs in
                let y = fb regs in
                let y' = Int64.logand y um in
                if y' = 0L then raise E.Division_by_zero
                else E.renorm sh (Int64.unsigned_div (Int64.logand x um) y'))
        | Ir.Instr.Urem, Some aa, Some bb ->
            let fa = ifn aa and fb = ifn bb in
            Some
              (fun regs ->
                let x = fa regs in
                let y = fb regs in
                let y' = Int64.logand y um in
                if y' = 0L then raise E.Division_by_zero
                else E.renorm sh (Int64.unsigned_rem (Int64.logand x um) y'))
        | _ -> None)
    | Ir.Instr.Icmp _ | Ir.Instr.Fcmp _ -> (
        match bnode j with
        | Some bt -> Some (fun regs -> if bt regs then 1L else 0L)
        | None -> None)
    | Ir.Instr.Cast (c, a) -> (
        match c with
        | Ir.Instr.Trunc | Ir.Instr.Sext -> (
            let sh = E.norm_shift ty in
            match iop a with
            | Some (ISlot ra) ->
                Some (fun regs -> E.renorm sh (geti regs ra))
            | Some (IConst ka) ->
                let v = E.renorm sh ka in
                Some (fun _ -> v)
            | Some (IFun fa) -> Some (fun regs -> E.renorm sh (fa regs))
            | None -> None)
        | Ir.Instr.Zext -> (
            let sh = E.norm_shift ty in
            let um = E.umask (from_ty_of a) (-1L) in
            match iop a with
            | Some (ISlot ra) ->
                Some
                  (fun regs ->
                    E.renorm sh (Int64.logand (geti regs ra) um))
            | Some (IConst ka) ->
                let v = E.renorm sh (Int64.logand ka um) in
                Some (fun _ -> v)
            | Some (IFun fa) ->
                Some (fun regs -> E.renorm sh (Int64.logand (fa regs) um))
            | None -> None)
        | Ir.Instr.Fptosi -> (
            let sh = E.norm_shift ty in
            match fop a with
            | Some fa ->
                let fa = ffn fa in
                Some
                  (fun regs ->
                    let f = fa regs in
                    if Float.is_nan f then 0L
                    else E.renorm sh (Int64.of_float f))
            | None -> None)
        | _ -> None)
    | Ir.Instr.Gep _ | Ir.Instr.Gaddr _ -> (
        match pnode j with
        | Some pp -> Some (fun regs -> Int64.of_int (pp regs))
        | None -> None)
    | Ir.Instr.Load a -> (
        (* sunk load (the veto pass admitted it); the [as_int] is the
           conversion the unfused consumer would apply.  An absorbed
           [Gep] address is inlined here so the whole array read stays
           one closure. *)
        match gep_of a with
        | Some (base, idx) -> (
            match (pop base, iop idx) with
            | Some pb, Some pi ->
                Some
                  (match (pb, pi) with
                  | PSlot rb, ISlot ri ->
                      fun regs ->
                        let p = E.as_ptr (Array.unsafe_get regs rb) in
                        let x = geti regs ri in
                        E.as_int (Memory.load mem (p + Int64.to_int x))
                  | PSlot rb, IConst ki ->
                      let nn = Int64.to_int ki in
                      fun regs ->
                        E.as_int
                          (Memory.load mem
                             (E.as_ptr (Array.unsafe_get regs rb) + nn))
                  | PFun pf, ISlot ri ->
                      fun regs ->
                        let p = pf regs in
                        let x = geti regs ri in
                        E.as_int (Memory.load mem (p + Int64.to_int x))
                  | PFun pf, IConst ki ->
                      let nn = Int64.to_int ki in
                      fun regs ->
                        let p = pf regs in
                        E.as_int (Memory.load mem (p + nn))
                  | pb, pi ->
                      let fp = pfn pb and fx = ifn pi in
                      fun regs ->
                        let p = fp regs in
                        let x = fx regs in
                        E.as_int (Memory.load mem (p + Int64.to_int x)))
            | _ -> None)
        | None -> (
            match pop a with
            | Some pa ->
                let fp = pfn pa in
                Some (fun regs -> E.as_int (Memory.load mem (fp regs)))
            | None -> None))
    | _ -> None
  and gep_of (a : Ir.Instr.operand) :
      (Ir.Instr.operand * Ir.Instr.operand) option =
    (* the absorbed [Gep] behind operand [a], if that is what it is *)
    match a with
    | Ir.Instr.Reg r when ok r && def_at.(r) >= 0 && absorbed.(def_at.(r))
      -> (
        match bi.instrs.(def_at.(r)).Ir.Instr.kind with
        | Ir.Instr.Gep (base, idx) -> Some (base, idx)
        | _ -> None)
    | _ -> None
  and fop (op : Ir.Instr.operand) : farg option =
    match op with
    | Ir.Instr.Const c -> (
        match E.of_const c with
        | E.VFloat f -> Some (FConst f)
        | E.VInt _ | E.VPtr _ -> None)
    | Ir.Instr.Reg r ->
        if ok r then
          if def_at.(r) >= 0 && absorbed.(def_at.(r)) then
            match fnode def_at.(r) with
            | Some f -> Some (FFun f)
            | None -> None
          else Some (FSlot r)
        else None
  and fnode (j : int) : (Ir.Eval.value array -> float) option =
    let i = bi.instrs.(j) in
    let ty = i.Ir.Instr.ty in
    match i.Ir.Instr.kind with
    (* F32 rounds per operation; those nodes stay on the boxed
       [Ir.Eval.binop_fn] path *)
    | Ir.Instr.Binop (op, a, b) when ty <> Ir.Ty.F32 -> (
        match (op, fop a, fop b) with
        | Ir.Instr.Fadd, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | FSlot ra, FSlot rb ->
                  fun regs ->
                    let x = getf regs ra in
                    let y = getf regs rb in
                    x +. y
              | FSlot ra, FConst kb -> fun regs -> getf regs ra +. kb
              | FConst ka, FSlot rb -> fun regs -> ka +. getf regs rb
              | FFun fa, FSlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = getf regs rb in
                    x +. y
              | FSlot ra, FFun fb ->
                  fun regs ->
                    let x = getf regs ra in
                    let y = fb regs in
                    x +. y
              | FFun fa, FConst kb -> fun regs -> fa regs +. kb
              | FFun fa, FFun fb ->
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    x +. y
              | aa, bb ->
                  let fa = ffn aa and fb = ffn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    x +. y)
        | Ir.Instr.Fsub, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | FSlot ra, FSlot rb ->
                  fun regs ->
                    let x = getf regs ra in
                    let y = getf regs rb in
                    x -. y
              | FSlot ra, FConst kb -> fun regs -> getf regs ra -. kb
              | FConst ka, FSlot rb -> fun regs -> ka -. getf regs rb
              | FFun fa, FSlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = getf regs rb in
                    x -. y
              | FSlot ra, FFun fb ->
                  fun regs ->
                    let x = getf regs ra in
                    let y = fb regs in
                    x -. y
              | FFun fa, FConst kb -> fun regs -> fa regs -. kb
              | FFun fa, FFun fb ->
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    x -. y
              | aa, bb ->
                  let fa = ffn aa and fb = ffn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    x -. y)
        | Ir.Instr.Fmul, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | FSlot ra, FSlot rb ->
                  fun regs ->
                    let x = getf regs ra in
                    let y = getf regs rb in
                    x *. y
              | FSlot ra, FConst kb -> fun regs -> getf regs ra *. kb
              | FConst ka, FSlot rb -> fun regs -> ka *. getf regs rb
              | FFun fa, FSlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = getf regs rb in
                    x *. y
              | FSlot ra, FFun fb ->
                  fun regs ->
                    let x = getf regs ra in
                    let y = fb regs in
                    x *. y
              | FFun fa, FConst kb -> fun regs -> fa regs *. kb
              | FFun fa, FFun fb ->
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    x *. y
              | aa, bb ->
                  let fa = ffn aa and fb = ffn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    x *. y)
        | Ir.Instr.Fdiv, Some aa, Some bb ->
            Some
              (match (aa, bb) with
              | FSlot ra, FSlot rb ->
                  fun regs ->
                    let x = getf regs ra in
                    let y = getf regs rb in
                    x /. y
              | FSlot ra, FConst kb -> fun regs -> getf regs ra /. kb
              | FConst ka, FSlot rb -> fun regs -> ka /. getf regs rb
              | FFun fa, FSlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = getf regs rb in
                    x /. y
              | FSlot ra, FFun fb ->
                  fun regs ->
                    let x = getf regs ra in
                    let y = fb regs in
                    x /. y
              | FFun fa, FConst kb -> fun regs -> fa regs /. kb
              | FFun fa, FFun fb ->
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    x /. y
              | aa, bb ->
                  let fa = ffn aa and fb = ffn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    x /. y)
        | _ -> None)
    | Ir.Instr.Cast (c, a) -> (
        match c with
        | Ir.Instr.Sitofp when ty <> Ir.Ty.F32 -> (
            match iop a with
            | Some (ISlot ra) ->
                Some (fun regs -> Int64.to_float (geti regs ra))
            | Some (IConst ka) ->
                let v = Int64.to_float ka in
                Some (fun _ -> v)
            | Some (IFun fa) -> Some (fun regs -> Int64.to_float (fa regs))
            | None -> None)
        | Ir.Instr.Fpext -> (
            match fop a with Some fa -> Some (ffn fa) | None -> None)
        | Ir.Instr.Fptrunc when ty <> Ir.Ty.F32 -> (
            match fop a with Some fa -> Some (ffn fa) | None -> None)
        | _ -> None)
    | Ir.Instr.Load a -> (
        match gep_of a with
        | Some (base, idx) -> (
            match (pop base, iop idx) with
            | Some pb, Some pi ->
                Some
                  (match (pb, pi) with
                  | PSlot rb, ISlot ri ->
                      fun regs ->
                        let p = E.as_ptr (Array.unsafe_get regs rb) in
                        let x = geti regs ri in
                        E.as_float (Memory.load mem (p + Int64.to_int x))
                  | PSlot rb, IConst ki ->
                      let nn = Int64.to_int ki in
                      fun regs ->
                        E.as_float
                          (Memory.load mem
                             (E.as_ptr (Array.unsafe_get regs rb) + nn))
                  | PFun pf, ISlot ri ->
                      fun regs ->
                        let p = pf regs in
                        let x = geti regs ri in
                        E.as_float (Memory.load mem (p + Int64.to_int x))
                  | PFun pf, IConst ki ->
                      let nn = Int64.to_int ki in
                      fun regs ->
                        let p = pf regs in
                        E.as_float (Memory.load mem (p + nn))
                  | pb, pi ->
                      let fp = pfn pb and fx = ifn pi in
                      fun regs ->
                        let p = fp regs in
                        let x = fx regs in
                        E.as_float (Memory.load mem (p + Int64.to_int x)))
            | _ -> None)
        | None -> (
            match pop a with
            | Some pa ->
                let fp = pfn pa in
                Some (fun regs -> E.as_float (Memory.load mem (fp regs)))
            | None -> None))
    | _ -> None
  and pop (op : Ir.Instr.operand) : parg option =
    match op with
    | Ir.Instr.Const c -> (
        match E.of_const c with
        | E.VPtr p -> Some (PConst p)
        | E.VInt v -> Some (PConst (Int64.to_int v))
        | E.VFloat _ -> None)
    | Ir.Instr.Reg r ->
        if ok r then
          if def_at.(r) >= 0 && absorbed.(def_at.(r)) then
            match pnode def_at.(r) with
            | Some f -> Some (PFun f)
            | None -> None
          else Some (PSlot r)
        else None
  and pnode (j : int) : (Ir.Eval.value array -> int) option =
    let i = bi.instrs.(j) in
    match i.Ir.Instr.kind with
    | Ir.Instr.Gep (base, idx) -> (
        match (pop base, iop idx) with
        | Some pb, Some pi ->
            Some
              (match (pb, pi) with
              | PSlot rb, ISlot ri ->
                  fun regs ->
                    let p = E.as_ptr (Array.unsafe_get regs rb) in
                    let x = geti regs ri in
                    p + Int64.to_int x
              | PSlot rb, IConst ki ->
                  let n = Int64.to_int ki in
                  fun regs -> E.as_ptr (Array.unsafe_get regs rb) + n
              | PFun pf, ISlot ri ->
                  fun regs ->
                    let p = pf regs in
                    let x = geti regs ri in
                    p + Int64.to_int x
              | PFun pf, IConst ki ->
                  let n = Int64.to_int ki in
                  fun regs -> pf regs + n
              | PSlot rb, IFun fi' ->
                  fun regs ->
                    let p = E.as_ptr (Array.unsafe_get regs rb) in
                    let x = fi' regs in
                    p + Int64.to_int x
              | PFun pf, IFun fi' ->
                  fun regs ->
                    let p = pf regs in
                    let x = fi' regs in
                    p + Int64.to_int x
              | pb, pi ->
                  let fp = pfn pb and fx = ifn pi in
                  fun regs ->
                    let p = fp regs in
                    let x = fx regs in
                    p + Int64.to_int x)
        | _ -> None)
    | Ir.Instr.Gaddr g ->
        (* lazily memoized, like [compile_instr] *)
        let cell = ref (-1) in
        Some
          (fun _ ->
            let b = !cell in
            if b >= 0 then b
            else begin
              let b = Memory.global_base mem g in
              cell := b;
              b
            end)
    | Ir.Instr.Binop _ | Ir.Instr.Icmp _ | Ir.Instr.Fcmp _ | Ir.Instr.Cast _
      -> (
        (* [as_ptr] of an integer value is [Int64.to_int] *)
        match inode j with
        | Some ii -> Some (fun regs -> Int64.to_int (ii regs))
        | None -> None)
    | Ir.Instr.Load a -> (
        match gep_of a with
        | Some (base, idx) -> (
            match (pop base, iop idx) with
            | Some pb, Some pi ->
                Some
                  (match (pb, pi) with
                  | PSlot rb, ISlot ri ->
                      fun regs ->
                        let p = E.as_ptr (Array.unsafe_get regs rb) in
                        let x = geti regs ri in
                        E.as_ptr (Memory.load mem (p + Int64.to_int x))
                  | PSlot rb, IConst ki ->
                      let nn = Int64.to_int ki in
                      fun regs ->
                        E.as_ptr
                          (Memory.load mem
                             (E.as_ptr (Array.unsafe_get regs rb) + nn))
                  | PFun pf, ISlot ri ->
                      fun regs ->
                        let p = pf regs in
                        let x = geti regs ri in
                        E.as_ptr (Memory.load mem (p + Int64.to_int x))
                  | PFun pf, IConst ki ->
                      let nn = Int64.to_int ki in
                      fun regs ->
                        let p = pf regs in
                        E.as_ptr (Memory.load mem (p + nn))
                  | pb, pi ->
                      let fp = pfn pb and fx = ifn pi in
                      fun regs ->
                        let p = fp regs in
                        let x = fx regs in
                        E.as_ptr (Memory.load mem (p + Int64.to_int x)))
            | _ -> None)
        | None -> (
            match pop a with
            | Some pa ->
                let fp = pfn pa in
                Some (fun regs -> E.as_ptr (Memory.load mem (fp regs)))
            | None -> None))
    | _ -> None
  and bnode (j : int) : (Ir.Eval.value array -> bool) option =
    let i = bi.instrs.(j) in
    match i.Ir.Instr.kind with
    | Ir.Instr.Icmp (p, a, b) -> (
        match (iop a, iop b) with
        | Some aa, Some bb ->
            let ct = icmp_bool p in
            Some
              (match (aa, bb) with
              | ISlot ra, ISlot rb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = geti regs rb in
                    ct x y
              | ISlot ra, IConst kb ->
                  fun regs ->
                    let x = geti regs ra in
                    ct x kb
              | IConst ka, ISlot rb ->
                  fun regs ->
                    let y = geti regs rb in
                    ct ka y
              | IFun fa, ISlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = geti regs rb in
                    ct x y
              | ISlot ra, IFun fb ->
                  fun regs ->
                    let x = geti regs ra in
                    let y = fb regs in
                    ct x y
              | IFun fa, IConst kb ->
                  fun regs ->
                    let x = fa regs in
                    ct x kb
              | aa, bb ->
                  let fa = ifn aa and fb = ifn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    ct x y)
        | _ -> None)
    | Ir.Instr.Fcmp (p, a, b) -> (
        match (fop a, fop b) with
        | Some aa, Some bb ->
            let ct = fcmp_bool p in
            Some
              (match (aa, bb) with
              | FSlot ra, FSlot rb ->
                  fun regs ->
                    let x = getf regs ra in
                    let y = getf regs rb in
                    ct x y
              | FSlot ra, FConst kb ->
                  fun regs ->
                    let x = getf regs ra in
                    ct x kb
              | FConst ka, FSlot rb ->
                  fun regs ->
                    let y = getf regs rb in
                    ct ka y
              | FFun fa, FSlot rb ->
                  fun regs ->
                    let x = fa regs in
                    let y = getf regs rb in
                    ct x y
              | FSlot ra, FFun fb ->
                  fun regs ->
                    let x = getf regs ra in
                    let y = fb regs in
                    ct x y
              | FFun fa, FConst kb ->
                  fun regs ->
                    let x = fa regs in
                    ct x kb
              | aa, bb ->
                  let fa = ffn aa and fb = ffn bb in
                  fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    ct x y)
        | _ -> None)
    | _ -> None
  and vop (op : Ir.Instr.operand) : Ir.Eval.value array -> Ir.Eval.value =
    match op with
    | Ir.Instr.Const c ->
        let v = Ir.Eval.of_const c in
        fun _ -> v
    | Ir.Instr.Reg r ->
        if ok r then
          if def_at.(r) >= 0 && absorbed.(def_at.(r)) then vnode def_at.(r)
          else fun regs -> Array.unsafe_get regs r
        else fun regs -> regs.(r)
  and vnode (j : int) : Ir.Eval.value array -> Ir.Eval.value =
    (* boxed value of node [j]: an unboxed subtree wrapped in one
       constructor when the class is static, the generic [Ir.Eval]
       closure chain otherwise *)
    let i = bi.instrs.(j) in
    match i.Ir.Instr.kind with
    | Ir.Instr.Binop
        ((Ir.Instr.Fadd | Ir.Instr.Fsub | Ir.Instr.Fmul | Ir.Instr.Fdiv), _, _)
      -> (
        match fnode j with
        | Some ff -> fun regs -> Ir.Eval.VFloat (ff regs)
        | None -> gnode j)
    | Ir.Instr.Binop _ -> (
        match inode j with
        | Some ii -> fun regs -> Ir.Eval.VInt (ii regs)
        | None -> gnode j)
    | Ir.Instr.Icmp _ | Ir.Instr.Fcmp _ -> (
        match bnode j with
        | Some bt -> fun regs -> if bt regs then vtrue else vfalse
        | None -> gnode j)
    | Ir.Instr.Cast
        ((Ir.Instr.Trunc | Ir.Instr.Zext | Ir.Instr.Sext | Ir.Instr.Fptosi), _)
      -> (
        match inode j with
        | Some ii -> fun regs -> Ir.Eval.VInt (ii regs)
        | None -> gnode j)
    | Ir.Instr.Cast
        ((Ir.Instr.Sitofp | Ir.Instr.Fpext | Ir.Instr.Fptrunc), _) -> (
        match fnode j with
        | Some ff -> fun regs -> Ir.Eval.VFloat (ff regs)
        | None -> gnode j)
    | Ir.Instr.Gep _ | Ir.Instr.Gaddr _ -> (
        match pnode j with
        | Some pp -> fun regs -> Ir.Eval.VPtr (pp regs)
        | None -> gnode j)
    | Ir.Instr.Load a -> (
        (* a sunk load's boxed value needs no conversion at all *)
        match gep_of a with
        | Some (base, idx) -> (
            match (pop base, iop idx) with
            | Some pb, Some pi -> (
                match (pb, pi) with
                | PSlot rb, ISlot ri ->
                    fun regs ->
                      let p = E.as_ptr (Array.unsafe_get regs rb) in
                      let x = geti regs ri in
                      Memory.load mem (p + Int64.to_int x)
                | PSlot rb, IConst ki ->
                    let nn = Int64.to_int ki in
                    fun regs ->
                      Memory.load mem
                        (E.as_ptr (Array.unsafe_get regs rb) + nn)
                | PFun pf, ISlot ri ->
                    fun regs ->
                      let p = pf regs in
                      let x = geti regs ri in
                      Memory.load mem (p + Int64.to_int x)
                | PFun pf, IConst ki ->
                    let nn = Int64.to_int ki in
                    fun regs ->
                      let p = pf regs in
                      Memory.load mem (p + nn)
                | pb, pi ->
                    let fp = pfn pb and fx = ifn pi in
                    fun regs ->
                      let p = fp regs in
                      let x = fx regs in
                      Memory.load mem (p + Int64.to_int x))
            | _ -> gnode j)
        | None -> (
            match pop a with
            | Some pa ->
                let fp = pfn pa in
                fun regs -> Memory.load mem (fp regs)
            | None -> gnode j))
    | _ -> gnode j
  and gnode (j : int) : Ir.Eval.value array -> Ir.Eval.value =
    (* generic boxed node: delegates the scalar semantics to the
       [Ir.Eval] closures, which are the reference behavior by
       definition *)
    let i = bi.instrs.(j) in
    let ty = i.Ir.Instr.ty in
    match i.Ir.Instr.kind with
    | Ir.Instr.Binop (op, a, b) ->
        let fn = E.binop_fn ty op in
        let fa = vop a and fb = vop b in
        fun regs ->
          let va = fa regs in
          let vb = fb regs in
          fn va vb
    | Ir.Instr.Icmp (p, a, b) ->
        let fn = E.icmp_fn p in
        let fa = vop a and fb = vop b in
        fun regs ->
          let va = fa regs in
          let vb = fb regs in
          fn va vb
    | Ir.Instr.Fcmp (p, a, b) ->
        let fn = E.fcmp_fn p in
        let fa = vop a and fb = vop b in
        fun regs ->
          let va = fa regs in
          let vb = fb regs in
          fn va vb
    | Ir.Instr.Cast (c, a) ->
        let fn = E.cast_fn c ~from_:(from_ty_of a) ~to_:ty in
        let fa = vop a in
        fun regs -> fn (fa regs)
    | Ir.Instr.Select (c, a, b) ->
        (* strict, like the reference engine's [eval_select]; the
           branch values stay boxed so only the selected one is ever
           converted by the consumer *)
        let fc = vop c and fa = vop a and fb = vop b in
        fun regs ->
          let vc = fc regs in
          let va = fa regs in
          let vb = fb regs in
          if Ir.Eval.is_true vc then va else vb
    | Ir.Instr.Gep (base, idx) ->
        let fbase = vop base and fidx = vop idx in
        fun regs ->
          let vb = fbase regs in
          let vi = fidx regs in
          Ir.Eval.VPtr (Ir.Eval.as_ptr vb + Int64.to_int (Ir.Eval.as_int vi))
    | Ir.Instr.Gaddr g ->
        let cell = ref (-1) in
        fun _ ->
          let b = !cell in
          if b >= 0 then Ir.Eval.VPtr b
          else begin
            let b = Memory.global_base mem g in
            cell := b;
            Ir.Eval.VPtr b
          end
    | Ir.Instr.Load a ->
        let fa = vop a in
        fun regs -> Memory.load mem (Ir.Eval.as_ptr (fa regs))
    | _ -> assert false (* [sinkable] excludes every other kind *)
  in
  (* One anchor instruction with at least one absorbed operand, as a
     single fused closure.  Returns the closure and its counter name.
     Typed arms keep the whole chain unboxed up to the final register
     write; [boxed_anchor] covers the rest. *)
  let boxed_anchor (i : Ir.Instr.t) : (Ir.Eval.value array -> unit) * string =
    let d = i.Ir.Instr.id in
    let ty = i.Ir.Instr.ty in
    let emit2 fn fa fb name =
      ( (if ok d then fun regs ->
           let va = fa regs in
           let vb = fb regs in
           Array.unsafe_set regs d (fn va vb)
         else fun regs ->
           let va = fa regs in
           let vb = fb regs in
           regs.(d) <- fn va vb),
        name )
    in
    match i.Ir.Instr.kind with
    | Ir.Instr.Binop (op, a, b) ->
        emit2 (E.binop_fn ty op) (vop a) (vop b) ("tree:" ^ binop_name op)
    | Ir.Instr.Icmp (p, a, b) ->
        emit2 (E.icmp_fn p) (vop a) (vop b) "tree:icmp"
    | Ir.Instr.Fcmp (p, a, b) ->
        emit2 (E.fcmp_fn p) (vop a) (vop b) "tree:fcmp"
    | Ir.Instr.Cast (c, a) ->
        let fn = E.cast_fn c ~from_:(from_ty_of a) ~to_:ty in
        let fa = vop a in
        ( (if ok d then fun regs -> Array.unsafe_set regs d (fn (fa regs))
           else fun regs -> regs.(d) <- fn (fa regs)),
          "tree:cast" )
    | Ir.Instr.Select (c, a, b) ->
        let fc = vop c and fa = vop a and fb = vop b in
        ( (if ok d then fun regs ->
             let vc = fc regs in
             let va = fa regs in
             let vb = fb regs in
             Array.unsafe_set regs d (if Ir.Eval.is_true vc then va else vb)
           else fun regs ->
             let vc = fc regs in
             let va = fa regs in
             let vb = fb regs in
             regs.(d) <- (if Ir.Eval.is_true vc then va else vb)),
          "tree:select" )
    | Ir.Instr.Load a ->
        let fa = vop a in
        ( (if ok d then fun regs ->
             Array.unsafe_set regs d (Memory.load mem (Ir.Eval.as_ptr (fa regs)))
           else fun regs ->
             regs.(d) <- Memory.load mem (Ir.Eval.as_ptr (fa regs))),
          "tree:load" )
    | Ir.Instr.Store (x, a) ->
        let fx = vop x and fa = vop a in
        (* value before address — the order the unfused closure's
           right-to-left argument evaluation gives *)
        ( (fun regs ->
            let vx = fx regs in
            let va = fa regs in
            Memory.store mem (Ir.Eval.as_ptr va) vx),
          "tree:store" )
    | Ir.Instr.Gep (base, idx) ->
        emit2
          (fun vb vi ->
            Ir.Eval.VPtr (Ir.Eval.as_ptr vb + Int64.to_int (Ir.Eval.as_int vi)))
          (vop base) (vop idx) "tree:gep"
    | _ ->
        (* unreachable: [has_absorbed] is false for every other kind *)
        (compile_instr i, "tree:other")
  in
  let compile_anchor (j : int) : (Ir.Eval.value array -> unit) * string =
    let i = bi.instrs.(j) in
    let d = i.Ir.Instr.id in
    match i.Ir.Instr.kind with
    | Ir.Instr.Binop
        ( ((Ir.Instr.Fadd | Ir.Instr.Fsub | Ir.Instr.Fmul | Ir.Instr.Fdiv) as
           op),
          a,
          b )
      when ok d -> (
        let name = "tree:" ^ binop_name op in
        (* the top node inlines into the register write for the common
           shapes — an anchor always has at least one [FFun] side — and
           falls back to the value-form tree otherwise *)
        let direct =
          if i.Ir.Instr.ty = Ir.Ty.F32 then None
          else
            match (op, fop a, fop b) with
            | Ir.Instr.Fadd, Some (FFun fa), Some (FSlot rb) ->
                Some
                  (fun regs ->
                    let x = fa regs in
                    let y = getf regs rb in
                    setf regs d (x +. y))
            | Ir.Instr.Fadd, Some (FSlot ra), Some (FFun fb) ->
                Some
                  (fun regs ->
                    let x = getf regs ra in
                    let y = fb regs in
                    setf regs d (x +. y))
            | Ir.Instr.Fadd, Some (FFun fa), Some (FConst kb) ->
                Some (fun regs -> setf regs d (fa regs +. kb))
            | Ir.Instr.Fadd, Some (FConst ka), Some (FFun fb) ->
                Some (fun regs -> setf regs d (ka +. fb regs))
            | Ir.Instr.Fadd, Some (FFun fa), Some (FFun fb) ->
                Some
                  (fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    setf regs d (x +. y))
            | Ir.Instr.Fsub, Some (FFun fa), Some (FSlot rb) ->
                Some
                  (fun regs ->
                    let x = fa regs in
                    let y = getf regs rb in
                    setf regs d (x -. y))
            | Ir.Instr.Fsub, Some (FSlot ra), Some (FFun fb) ->
                Some
                  (fun regs ->
                    let x = getf regs ra in
                    let y = fb regs in
                    setf regs d (x -. y))
            | Ir.Instr.Fsub, Some (FFun fa), Some (FConst kb) ->
                Some (fun regs -> setf regs d (fa regs -. kb))
            | Ir.Instr.Fsub, Some (FConst ka), Some (FFun fb) ->
                Some (fun regs -> setf regs d (ka -. fb regs))
            | Ir.Instr.Fsub, Some (FFun fa), Some (FFun fb) ->
                Some
                  (fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    setf regs d (x -. y))
            | Ir.Instr.Fmul, Some (FFun fa), Some (FSlot rb) ->
                Some
                  (fun regs ->
                    let x = fa regs in
                    let y = getf regs rb in
                    setf regs d (x *. y))
            | Ir.Instr.Fmul, Some (FSlot ra), Some (FFun fb) ->
                Some
                  (fun regs ->
                    let x = getf regs ra in
                    let y = fb regs in
                    setf regs d (x *. y))
            | Ir.Instr.Fmul, Some (FFun fa), Some (FConst kb) ->
                Some (fun regs -> setf regs d (fa regs *. kb))
            | Ir.Instr.Fmul, Some (FConst ka), Some (FFun fb) ->
                Some (fun regs -> setf regs d (ka *. fb regs))
            | Ir.Instr.Fmul, Some (FFun fa), Some (FFun fb) ->
                Some
                  (fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    setf regs d (x *. y))
            | Ir.Instr.Fdiv, Some (FFun fa), Some (FSlot rb) ->
                Some
                  (fun regs ->
                    let x = fa regs in
                    let y = getf regs rb in
                    setf regs d (x /. y))
            | Ir.Instr.Fdiv, Some (FSlot ra), Some (FFun fb) ->
                Some
                  (fun regs ->
                    let x = getf regs ra in
                    let y = fb regs in
                    setf regs d (x /. y))
            | Ir.Instr.Fdiv, Some (FFun fa), Some (FConst kb) ->
                Some (fun regs -> setf regs d (fa regs /. kb))
            | Ir.Instr.Fdiv, Some (FConst ka), Some (FFun fb) ->
                Some (fun regs -> setf regs d (ka /. fb regs))
            | Ir.Instr.Fdiv, Some (FFun fa), Some (FFun fb) ->
                Some
                  (fun regs ->
                    let x = fa regs in
                    let y = fb regs in
                    setf regs d (x /. y))
            | _ -> None
        in
        match direct with
        | Some cl -> (cl, name)
        | None -> (
            match fnode j with
            | Some ff -> ((fun regs -> setf regs d (ff regs)), name)
            | None -> boxed_anchor i))
    | Ir.Instr.Binop (op, a, b) when ok d -> (
        let name = "tree:" ^ binop_name op in
        let ty = i.Ir.Instr.ty in
        let sh = E.norm_shift ty in
        let sm = E.shift_amount ty (-1L) in
        let um = E.umask ty (-1L) in
        let direct =
          match (op, iop a, iop b) with
          | Ir.Instr.Add, Some (IFun fa), Some (ISlot rb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = geti regs rb in
                  seti regs d (E.renorm sh (Int64.add x y)))
          | Ir.Instr.Add, Some (ISlot ra), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = geti regs ra in
                  let y = fb regs in
                  seti regs d (E.renorm sh (Int64.add x y)))
          | Ir.Instr.Add, Some (IFun fa), Some (IConst kb) ->
              Some
                (fun regs -> seti regs d (E.renorm sh (Int64.add (fa regs) kb)))
          | Ir.Instr.Add, Some (IConst ka), Some (IFun fb) ->
              Some
                (fun regs -> seti regs d (E.renorm sh (Int64.add ka (fb regs))))
          | Ir.Instr.Add, Some (IFun fa), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = fb regs in
                  seti regs d (E.renorm sh (Int64.add x y)))
          | Ir.Instr.Sub, Some (IFun fa), Some (ISlot rb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = geti regs rb in
                  seti regs d (E.renorm sh (Int64.sub x y)))
          | Ir.Instr.Sub, Some (ISlot ra), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = geti regs ra in
                  let y = fb regs in
                  seti regs d (E.renorm sh (Int64.sub x y)))
          | Ir.Instr.Sub, Some (IFun fa), Some (IConst kb) ->
              Some
                (fun regs -> seti regs d (E.renorm sh (Int64.sub (fa regs) kb)))
          | Ir.Instr.Sub, Some (IConst ka), Some (IFun fb) ->
              Some
                (fun regs -> seti regs d (E.renorm sh (Int64.sub ka (fb regs))))
          | Ir.Instr.Sub, Some (IFun fa), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = fb regs in
                  seti regs d (E.renorm sh (Int64.sub x y)))
          | Ir.Instr.Mul, Some (IFun fa), Some (ISlot rb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = geti regs rb in
                  seti regs d (E.renorm sh (Int64.mul x y)))
          | Ir.Instr.Mul, Some (ISlot ra), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = geti regs ra in
                  let y = fb regs in
                  seti regs d (E.renorm sh (Int64.mul x y)))
          | Ir.Instr.Mul, Some (IFun fa), Some (IConst kb) ->
              Some
                (fun regs -> seti regs d (E.renorm sh (Int64.mul (fa regs) kb)))
          | Ir.Instr.Mul, Some (IConst ka), Some (IFun fb) ->
              Some
                (fun regs -> seti regs d (E.renorm sh (Int64.mul ka (fb regs))))
          | Ir.Instr.Mul, Some (IFun fa), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = fb regs in
                  seti regs d (E.renorm sh (Int64.mul x y)))
          | Ir.Instr.And, Some (IFun fa), Some (ISlot rb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = geti regs rb in
                  seti regs d (E.renorm sh (Int64.logand x y)))
          | Ir.Instr.And, Some (ISlot ra), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = geti regs ra in
                  let y = fb regs in
                  seti regs d (E.renorm sh (Int64.logand x y)))
          | Ir.Instr.And, Some (IFun fa), Some (IConst kb) ->
              Some
                (fun regs ->
                  seti regs d (E.renorm sh (Int64.logand (fa regs) kb)))
          | Ir.Instr.And, Some (IConst ka), Some (IFun fb) ->
              Some
                (fun regs ->
                  seti regs d (E.renorm sh (Int64.logand ka (fb regs))))
          | Ir.Instr.And, Some (IFun fa), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = fb regs in
                  seti regs d (E.renorm sh (Int64.logand x y)))
          | Ir.Instr.Or, Some (IFun fa), Some (ISlot rb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = geti regs rb in
                  seti regs d (E.renorm sh (Int64.logor x y)))
          | Ir.Instr.Or, Some (ISlot ra), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = geti regs ra in
                  let y = fb regs in
                  seti regs d (E.renorm sh (Int64.logor x y)))
          | Ir.Instr.Or, Some (IFun fa), Some (IConst kb) ->
              Some
                (fun regs ->
                  seti regs d (E.renorm sh (Int64.logor (fa regs) kb)))
          | Ir.Instr.Or, Some (IConst ka), Some (IFun fb) ->
              Some
                (fun regs ->
                  seti regs d (E.renorm sh (Int64.logor ka (fb regs))))
          | Ir.Instr.Or, Some (IFun fa), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = fb regs in
                  seti regs d (E.renorm sh (Int64.logor x y)))
          | Ir.Instr.Xor, Some (IFun fa), Some (ISlot rb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = geti regs rb in
                  seti regs d (E.renorm sh (Int64.logxor x y)))
          | Ir.Instr.Xor, Some (ISlot ra), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = geti regs ra in
                  let y = fb regs in
                  seti regs d (E.renorm sh (Int64.logxor x y)))
          | Ir.Instr.Xor, Some (IFun fa), Some (IConst kb) ->
              Some
                (fun regs ->
                  seti regs d (E.renorm sh (Int64.logxor (fa regs) kb)))
          | Ir.Instr.Xor, Some (IConst ka), Some (IFun fb) ->
              Some
                (fun regs ->
                  seti regs d (E.renorm sh (Int64.logxor ka (fb regs))))
          | Ir.Instr.Xor, Some (IFun fa), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = fb regs in
                  seti regs d (E.renorm sh (Int64.logxor x y)))
          | Ir.Instr.Shl, Some (IFun fa), Some (IConst kb) ->
              let nn = Int64.to_int kb land sm in
              Some
                (fun regs ->
                  seti regs d (E.renorm sh (Int64.shift_left (fa regs) nn)))
          | Ir.Instr.Shl, Some (IFun fa), Some (ISlot rb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = geti regs rb in
                  seti regs d
                    (E.renorm sh (Int64.shift_left x (Int64.to_int y land sm))))
          | Ir.Instr.Shl, Some (IFun fa), Some (IFun fb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = fb regs in
                  seti regs d
                    (E.renorm sh (Int64.shift_left x (Int64.to_int y land sm))))
          | Ir.Instr.Lshr, Some (IFun fa), Some (IConst kb) ->
              let nn = Int64.to_int kb land sm in
              Some
                (fun regs ->
                  seti regs d
                    (E.renorm sh
                       (Int64.shift_right_logical
                          (Int64.logand (fa regs) um)
                          nn)))
          | Ir.Instr.Lshr, Some (IFun fa), Some (ISlot rb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = geti regs rb in
                  seti regs d
                    (E.renorm sh
                       (Int64.shift_right_logical (Int64.logand x um)
                          (Int64.to_int y land sm))))
          | Ir.Instr.Ashr, Some (IFun fa), Some (IConst kb) ->
              let nn = Int64.to_int kb land sm in
              Some
                (fun regs ->
                  seti regs d (E.renorm sh (Int64.shift_right (fa regs) nn)))
          | Ir.Instr.Ashr, Some (IFun fa), Some (ISlot rb) ->
              Some
                (fun regs ->
                  let x = fa regs in
                  let y = geti regs rb in
                  seti regs d
                    (E.renorm sh (Int64.shift_right x (Int64.to_int y land sm))))
          | _ -> None
        in
        match direct with
        | Some cl -> (cl, name)
        | None -> (
            match inode j with
            | Some ii -> ((fun regs -> seti regs d (ii regs)), name)
            | None -> boxed_anchor i))
    | Ir.Instr.Icmp _ when ok d -> (
        match bnode j with
        | Some bt -> ((fun regs -> setb regs d (bt regs)), "tree:icmp")
        | None -> boxed_anchor i)
    | Ir.Instr.Fcmp _ when ok d -> (
        match bnode j with
        | Some bt -> ((fun regs -> setb regs d (bt regs)), "tree:fcmp")
        | None -> boxed_anchor i)
    | Ir.Instr.Cast (c, a) when ok d -> (
        let ty = i.Ir.Instr.ty in
        let direct =
          match c with
          | Ir.Instr.Trunc | Ir.Instr.Sext -> (
              let sh = E.norm_shift ty in
              match iop a with
              | Some (IFun fa) ->
                  Some (fun regs -> seti regs d (E.renorm sh (fa regs)))
              | _ -> None)
          | Ir.Instr.Zext -> (
              let sh = E.norm_shift ty in
              let um = E.umask (from_ty_of a) (-1L) in
              match iop a with
              | Some (IFun fa) ->
                  Some
                    (fun regs ->
                      seti regs d (E.renorm sh (Int64.logand (fa regs) um)))
              | _ -> None)
          | Ir.Instr.Fptosi -> (
              let sh = E.norm_shift ty in
              match fop a with
              | Some (FFun fa) ->
                  Some
                    (fun regs ->
                      let f = fa regs in
                      seti regs d
                        (if Float.is_nan f then 0L
                         else E.renorm sh (Int64.of_float f)))
              | _ -> None)
          | Ir.Instr.Sitofp when ty <> Ir.Ty.F32 -> (
              match iop a with
              | Some (IFun fa) ->
                  Some (fun regs -> setf regs d (Int64.to_float (fa regs)))
              | _ -> None)
          | _ -> None
        in
        match direct with
        | Some cl -> (cl, "tree:cast")
        | None -> (
            match inode j with
            | Some ii -> ((fun regs -> seti regs d (ii regs)), "tree:cast")
            | None -> (
                match fnode j with
                | Some ff -> ((fun regs -> setf regs d (ff regs)), "tree:cast")
                | None -> boxed_anchor i)))
    | Ir.Instr.Load a when ok d -> (
        (* the hottest anchor shape is a load through an absorbed [Gep];
           inline the address combination into the load closure itself
           so the whole array read is a single call *)
        let gep_load =
          match a with
          | Ir.Instr.Reg r when ok r && def_at.(r) >= 0 && absorbed.(def_at.(r))
            -> (
              match bi.instrs.(def_at.(r)).Ir.Instr.kind with
              | Ir.Instr.Gep (base, idx) -> (
                  match (pop base, iop idx) with
                  | Some pb, Some pi ->
                      Some
                        (match (pb, pi) with
                        | PSlot rb, ISlot ri ->
                            fun regs ->
                              let p = E.as_ptr (Array.unsafe_get regs rb) in
                              let x = geti regs ri in
                              Array.unsafe_set regs d
                                (Memory.load mem (p + Int64.to_int x))
                        | PSlot rb, IConst ki ->
                            let n = Int64.to_int ki in
                            fun regs ->
                              Array.unsafe_set regs d
                                (Memory.load mem
                                   (E.as_ptr (Array.unsafe_get regs rb) + n))
                        | PFun pf, ISlot ri ->
                            fun regs ->
                              let p = pf regs in
                              let x = geti regs ri in
                              Array.unsafe_set regs d
                                (Memory.load mem (p + Int64.to_int x))
                        | PFun pf, IConst ki ->
                            let n = Int64.to_int ki in
                            fun regs ->
                              let p = pf regs in
                              Array.unsafe_set regs d (Memory.load mem (p + n))
                        | PFun pf, IFun fi' ->
                            fun regs ->
                              let p = pf regs in
                              let x = fi' regs in
                              Array.unsafe_set regs d
                                (Memory.load mem (p + Int64.to_int x))
                        | pb, pi ->
                            let fp = pfn pb and fx = ifn pi in
                            fun regs ->
                              let p = fp regs in
                              let x = fx regs in
                              Array.unsafe_set regs d
                                (Memory.load mem (p + Int64.to_int x)))
                  | _ -> None)
              | _ -> None)
          | _ -> None
        in
        match gep_load with
        | Some cl -> (cl, "tree:load")
        | None -> (
            match pop a with
            | Some pa ->
                let fp = pfn pa in
                ( (fun regs ->
                    Array.unsafe_set regs d (Memory.load mem (fp regs))),
                  "tree:load" )
            | None -> boxed_anchor i))
    | Ir.Instr.Store (x, a) -> (
        (* value before address — the order the unfused closure's
           right-to-left argument evaluation gives.  An absorbed [Gep]
           address inlines into the store closure like the load case. *)
        let gep_store =
          match gep_of a with
          | Some (base, idx) -> (
              match (pop base, iop idx) with
              | Some pb, Some pi ->
                  let fx = vop x in
                  Some
                    (match (pb, pi) with
                    | PSlot rb, ISlot ri ->
                        fun regs ->
                          let vx = fx regs in
                          let p = E.as_ptr (Array.unsafe_get regs rb) in
                          let xi = geti regs ri in
                          Memory.store mem (p + Int64.to_int xi) vx
                    | PSlot rb, IConst ki ->
                        let nn = Int64.to_int ki in
                        fun regs ->
                          let vx = fx regs in
                          Memory.store mem
                            (E.as_ptr (Array.unsafe_get regs rb) + nn)
                            vx
                    | PFun pf, ISlot ri ->
                        fun regs ->
                          let vx = fx regs in
                          let p = pf regs in
                          let xi = geti regs ri in
                          Memory.store mem (p + Int64.to_int xi) vx
                    | PFun pf, IConst ki ->
                        let nn = Int64.to_int ki in
                        fun regs ->
                          let vx = fx regs in
                          let p = pf regs in
                          Memory.store mem (p + nn) vx
                    | pb, pi ->
                        let fp = pfn pb and fi2 = ifn pi in
                        fun regs ->
                          let vx = fx regs in
                          let p = fp regs in
                          let xi = fi2 regs in
                          Memory.store mem (p + Int64.to_int xi) vx)
              | _ -> None)
          | None -> None
        in
        match gep_store with
        | Some cl -> (cl, "tree:store")
        | None -> (
            match pop a with
            | Some pa ->
                let fx = vop x in
                let fp = pfn pa in
                ( (fun regs ->
                    let vx = fx regs in
                    let p = fp regs in
                    Memory.store mem p vx),
                  "tree:store" )
            | None -> boxed_anchor i))
    | Ir.Instr.Gep (base, idx) when ok d -> (
        match (pop base, iop idx) with
        | Some pb, Some pi ->
            ( (match (pb, pi) with
              | PSlot rb, ISlot ri ->
                  fun regs ->
                    let p = E.as_ptr (Array.unsafe_get regs rb) in
                    let x = geti regs ri in
                    Array.unsafe_set regs d (Ir.Eval.VPtr (p + Int64.to_int x))
              | PSlot rb, IConst ki ->
                  let nn = Int64.to_int ki in
                  fun regs ->
                    Array.unsafe_set regs d
                      (Ir.Eval.VPtr (E.as_ptr (Array.unsafe_get regs rb) + nn))
              | PFun pf, ISlot ri ->
                  fun regs ->
                    let p = pf regs in
                    let x = geti regs ri in
                    Array.unsafe_set regs d (Ir.Eval.VPtr (p + Int64.to_int x))
              | PFun pf, IConst ki ->
                  let nn = Int64.to_int ki in
                  fun regs ->
                    let p = pf regs in
                    Array.unsafe_set regs d (Ir.Eval.VPtr (p + nn))
              | pb, pi ->
                  let fp = pfn pb and fx = ifn pi in
                  fun regs ->
                    let p = fp regs in
                    let x = fx regs in
                    Array.unsafe_set regs d (Ir.Eval.VPtr (p + Int64.to_int x))),
              "tree:gep" )
        | _ -> boxed_anchor i)
    | _ -> boxed_anchor i
  in
  let fused_term =
    match fused_scrutinee with
    | None -> None
    | Some (ci, a, b) ->
        let test =
          match bool_cmp ~nregs ci with
          | Some t when not (has_absorbed ci) ->
              bump_fusion
                (match ci.Ir.Instr.kind with
                | Ir.Instr.Icmp _ -> "icmp+br"
                | _ -> "fcmp+br");
              t
          | _ -> (
              (* a scrutinee with absorbed producers (or a shape the
                 flat compare does not cover): test its value tree
                 exactly like [T_cond_s] would *)
              bump_fusion "br:tree";
              match bnode (n - 1) with
              | Some bt -> bt
              | None ->
                  let tv = vnode (n - 1) in
                  fun regs -> Ir.Eval.is_true (tv regs))
        in
        Some (T_cmp_br (test, a, b))
  in
  let t_ops =
    if not st.tuning.fuse then
      Array.init (body_end - nphi) (fun j -> compile_instr bi.instrs.(nphi + j))
    else begin
      let acc = ref [] in
      for j = body_end - 1 downto nphi do
        if not absorbed.(j) then
          if has_absorbed bi.instrs.(j) then begin
            let cl, name = compile_anchor j in
            bump_fusion name;
            acc := cl :: !acc
          end
          else acc := compile_instr bi.instrs.(j) :: !acc
      done;
      Array.of_list !acc
    end
  in
  let t_term =
    match fused_term with
    | Some t -> t
    | None -> (
        match bi.term with
        | Ir.Instr.Ret None -> T_halt
        | Ir.Instr.Ret (Some op) -> T_ret (decode_operand op)
        | Ir.Instr.Br l -> T_br l
        | Ir.Instr.Cond_br (c, a, b) -> (
            match decode_operand c with
            | Slot r -> T_cond_s (r, a, b)
            | s -> T_cond (s, a, b))
        | Ir.Instr.Switch (s, default, _) ->
            let tbl =
              match bi.switch_cases with Some tbl -> tbl | None -> assert false
            in
            T_switch (decode_operand s, default, tbl))
  in
  (* A block needs fuel/clock synchronization only when its body can
     reach the shared [state]: a call that resolves to a user function
     (the callee runs on [st]) or a configured custom instruction
     (charges [st] clocks).  Intrinsic calls and the fault closures for
     unresolved names touch only the register file. *)
  let t_sync =
    Array.exists
      (fun (i : Ir.Instr.t) ->
        match i.Ir.Instr.kind with
        | Ir.Instr.Call (name, _) -> Hashtbl.mem st.funcs name
        | Ir.Instr.Ci_call (ci, _) -> Hashtbl.mem st.cis ci
        | _ -> false)
      bi.instrs
  in
  {
    t_info = bi;
    t_label = bnum;
    t_ops;
    t_phi_dests = bi.phi_dests;
    t_phi_srcs;
    t_phi_scratch = Array.make (max 1 nphi) (Ir.Eval.VInt 0L);
    t_term;
    t_link = L_none;
    t_sync;
    (* Fuel, native and VM charges come from the ORIGINAL instruction
       counts ([bi.ninstrs], [bi.static_cycles]), never from the fused
       closure count: the simulated machine dispatches one IR
       instruction at a time whatever the host engine batches. *)
    t_fuel = bi.ninstrs + 1;
    t_native = float_of_int bi.static_cycles;
    (* The exact float expressions [Jit_model.block_execution_cycles]
       evaluates on each branch, performed once. *)
    t_hot = st.jit.Jit_model.hot_factor *. float_of_int bi.static_cycles;
    t_cold =
      float_of_int
        (bi.static_cycles + Ir.Cost.block_dispatch_cycles ~ninstrs:bi.ninstrs);
  }

(** Compile one function's blocks to typed-register-file threaded
    code, recording the register classes and the per-class slot
    renumbering.  A register's slot is its index within its class's
    frame array, so a frame allocates one word per register total
    instead of one per register per class.  Like {!compile_func}, the
    whole module must already be prepared in [st.funcs]. *)
and compile_rfunc (st : state) (fi : func_info) : unit =
  let classes = Array.map rclass_of_ty fi.reg_tys in
  let n = Array.length classes in
  let slots = Array.make n 0 in
  let counts = Array.make 4 0 in
  let idx = function C_int -> 0 | C_float -> 1 | C_ptr -> 2 | C_boxed -> 3 in
  for r = 0 to n - 1 do
    let k = idx classes.(r) in
    slots.(r) <- counts.(k);
    counts.(k) <- counts.(k) + 1
  done;
  fi.rclasses <- classes;
  fi.rslots <- slots;
  fi.rcounts <- counts;
  fi.rtblocks <-
    Array.mapi
      (fun bnum bi -> compile_rblock st fi classes slots bnum bi)
      fi.blocks

and compile_rblock (st : state) (fi : func_info) (classes : rclass array)
    (slots : int array) (bnum : int) (bi : block_info) : rtblock =
  let fname = fi.func.Ir.Func.name in
  let nphi = bi.phi_count in
  let mem = st.memory in
  let nregs = Array.length classes in
  let ok r = r >= 0 && r < nregs in
  let compile_rinstr (i : Ir.Instr.t) : frame -> unit =
    let d = i.Ir.Instr.id in
    let ty = i.Ir.Instr.ty in
    match i.Ir.Instr.kind with
    | Ir.Instr.Phi _ -> fun _ -> fault "@%s/bb%d: phi after non-phi" fname bnum
    | Ir.Instr.Binop (op, a, b) ->
        compile_rbinop classes slots ty op d (decode_operand a)
          (decode_operand b)
    | Ir.Instr.Icmp (p, a, b) ->
        compile_ricmp classes slots p d (decode_operand a) (decode_operand b)
    | Ir.Instr.Fcmp (p, a, b) ->
        compile_rfcmp classes slots p d (decode_operand a) (decode_operand b)
    | Ir.Instr.Cast (c, a) ->
        let from_ =
          match a with
          | Ir.Instr.Const cst -> Ir.Instr.const_ty cst
          | Ir.Instr.Reg r -> fi.reg_tys.(r)
        in
        compile_rcast classes slots c ~from_ ~to_:ty d (decode_operand a)
    | Ir.Instr.Select (c, a, b) -> (
        let sc = decode_operand c
        and sa = decode_operand a
        and sb = decode_operand b in
        let tc = rtest classes slots sc in
        (* Both branch values are read strictly, like the reference
           engine's [eval_select] call; on direct (pure-read) shapes the
           strictness is unobservable, so only the taken side is read.
           A boxed destination falls back to moving boxed values. *)
        match (if ok d then classes.(d) else C_boxed) with
        | C_int when ok d -> (
            let sd = slots.(d) in
            match (rarg_i classes slots sa, rarg_i classes slots sb) with
            | RiS a, RiS b ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (if tc fr then Array.unsafe_get fr.fr_i a
                     else Array.unsafe_get fr.fr_i b)
            | RiS a, RiK kb ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (if tc fr then Array.unsafe_get fr.fr_i a else kb)
            | RiK ka, RiS b ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (if tc fr then ka else Array.unsafe_get fr.fr_i b)
            | RiK ka, RiK kb ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd (if tc fr then ka else kb)
            | aa, bb ->
                let ga = ri_fn aa and gb = ri_fn bb in
                fun fr ->
                  let vc = tc fr and va = ga fr and vb = gb fr in
                  Array.unsafe_set fr.fr_i sd (if vc then va else vb))
        | C_float when ok d -> (
            let sd = slots.(d) in
            match (rarg_f classes slots sa, rarg_f classes slots sb) with
            | RfS a, RfS b ->
                fun fr ->
                  Array.unsafe_set fr.fr_f sd
                    (if tc fr then Array.unsafe_get fr.fr_f a
                     else Array.unsafe_get fr.fr_f b)
            | RfS a, RfK kb ->
                fun fr ->
                  Array.unsafe_set fr.fr_f sd
                    (if tc fr then Array.unsafe_get fr.fr_f a else kb)
            | RfK ka, RfS b ->
                fun fr ->
                  Array.unsafe_set fr.fr_f sd
                    (if tc fr then ka else Array.unsafe_get fr.fr_f b)
            | RfK ka, RfK kb ->
                fun fr ->
                  Array.unsafe_set fr.fr_f sd (if tc fr then ka else kb)
            | aa, bb ->
                let ga = rf_fn aa and gb = rf_fn bb in
                fun fr ->
                  let vc = tc fr and va = ga fr and vb = gb fr in
                  Array.unsafe_set fr.fr_f sd (if vc then va else vb))
        | C_ptr when ok d ->
            let sd = slots.(d) in
            let ga = rget_p classes slots sa and gb = rget_p classes slots sb in
            fun fr ->
              let vc = tc fr and va = ga fr and vb = gb fr in
              Array.unsafe_set fr.fr_p sd (if vc then va else vb)
        | _ ->
            let ga = rget_box classes slots sa
            and gb = rget_box classes slots sb in
            let w = rwr_box classes slots d in
            fun fr ->
              let vc = tc fr and va = ga fr and vb = gb fr in
              w fr (if vc then va else vb))
    | Ir.Instr.Alloca (_, count) ->
        if ok d && classes.(d) = C_ptr then (
          let sd = slots.(d) in
          fun fr -> Array.unsafe_set fr.fr_p sd (Memory.alloc mem count))
        else
          let w = rwr_box classes slots d in
          fun fr -> w fr (Ir.Eval.VPtr (Memory.alloc mem count))
    | Ir.Instr.Load a -> (
        let aa = rarg_p classes slots (decode_operand a) in
        (* The load's unbox IS the memory seam: the cell keeps its
           boxed value, the destination takes the scalar.  No
           allocation on any class. *)
        match (if ok d then classes.(d) else C_boxed) with
        | C_int when ok d -> (
            let sd = slots.(d) in
            match aa with
            | RpS p ->
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (E.as_int (Memory.load mem (Array.unsafe_get fr.fr_p p)))
            | _ ->
                let ga = rp_fn aa in
                fun fr ->
                  Array.unsafe_set fr.fr_i sd
                    (E.as_int (Memory.load mem (ga fr))))
        | C_float when ok d -> (
            let sd = slots.(d) in
            match aa with
            | RpS p ->
                fun fr ->
                  Array.unsafe_set fr.fr_f sd
                    (E.as_float (Memory.load mem (Array.unsafe_get fr.fr_p p)))
            | _ ->
                let ga = rp_fn aa in
                fun fr ->
                  Array.unsafe_set fr.fr_f sd
                    (E.as_float (Memory.load mem (ga fr))))
        | C_ptr when ok d -> (
            let sd = slots.(d) in
            match aa with
            | RpS p ->
                fun fr ->
                  Array.unsafe_set fr.fr_p sd
                    (E.as_ptr (Memory.load mem (Array.unsafe_get fr.fr_p p)))
            | _ ->
                let ga = rp_fn aa in
                fun fr ->
                  Array.unsafe_set fr.fr_p sd
                    (E.as_ptr (Memory.load mem (ga fr))))
        | _ ->
            let ga = rp_fn aa in
            let w = rwr_box classes slots d in
            fun fr -> w fr (Memory.load mem (ga fr)))
    | Ir.Instr.Store (x, a) -> (
        let gx = rget_box classes slots (decode_operand x) in
        (* value before address, like the boxed engines (right-to-left
           application order made explicit) *)
        match rarg_p classes slots (decode_operand a) with
        | RpS p ->
            fun fr ->
              let v = gx fr in
              Memory.store mem (Array.unsafe_get fr.fr_p p) v
        | aa ->
            let ga = rp_fn aa in
            fun fr ->
              let v = gx fr in
              Memory.store mem (ga fr) v)
    | Ir.Instr.Gep (base, idx) ->
        let ab = rarg_p classes slots (decode_operand base) in
        let ai = rarg_i classes slots (decode_operand idx) in
        if ok d && classes.(d) = C_ptr then (
          let sd = slots.(d) in
          match (ab, ai) with
          | RpS pb, RiS ri ->
              fun fr ->
                Array.unsafe_set fr.fr_p sd
                  (Array.unsafe_get fr.fr_p pb
                  + Int64.to_int (Array.unsafe_get fr.fr_i ri))
          | RpS pb, RiK k ->
              let n = Int64.to_int k in
              fun fr ->
                Array.unsafe_set fr.fr_p sd (Array.unsafe_get fr.fr_p pb + n)
          | _ ->
              let gb = rp_fn ab and gi = ri_fn ai in
              fun fr ->
                Array.unsafe_set fr.fr_p sd (gb fr + Int64.to_int (gi fr)))
        else
          let gb = rp_fn ab and gi = ri_fn ai in
          let w = rwr_box classes slots d in
          fun fr -> w fr (Ir.Eval.VPtr (gb fr + Int64.to_int (gi fr)))
    | Ir.Instr.Gaddr g ->
        (* Lazily resolved and memoized, like the boxed compiler. *)
        let cell = ref (-1) in
        if ok d && classes.(d) = C_ptr then (
          let sd = slots.(d) in
          fun fr ->
            let b = !cell in
            let b =
              if b >= 0 then b
              else begin
                let b = Memory.global_base mem g in
                cell := b;
                b
              end
            in
            Array.unsafe_set fr.fr_p sd b)
        else
          let w = rwr_box classes slots d in
          fun fr ->
            let b = !cell in
            let b =
              if b >= 0 then b
              else begin
                let b = Memory.global_base mem g in
                cell := b;
                b
              end
            in
            w fr (Ir.Eval.VPtr b)
    | Ir.Instr.Call (name, argops) -> (
        let srcs = Array.of_list (List.map decode_operand argops) in
        let eval_args = rargs_fn classes slots srcs in
        let w = rwr_box classes slots d in
        match Hashtbl.find_opt st.funcs name with
        | Some callee -> (
            fun fr ->
              match enter st callee (eval_args fr) with
              | Some r -> w fr r
              | None -> ())
        | None -> (
            match find_intrinsic name with
            | Some impl -> fun fr -> w fr (impl (eval_args fr))
            | None -> fun _ -> fault "call to unknown function @%s" name))
    | Ir.Instr.Ci_call (ci, argops) -> (
        let srcs = Array.of_list (List.map decode_operand argops) in
        let eval_args = rargs_fn classes slots srcs in
        let w = rwr_box classes slots d in
        match Hashtbl.find_opt st.cis ci with
        | Some impl -> (
            let eval =
              if st.tuning.ci_native then
                match impl.ci_native with Some f -> f | None -> impl.ci_eval
              else impl.ci_eval
            in
            match st.swap with
            | None ->
                let cyc = float_of_int impl.ci_cycles in
                fun fr ->
                  w fr (eval (eval_args fr));
                  st.native <- st.native +. cyc;
                  st.vm <- st.vm +. cyc
            | Some cells ->
                let cell =
                  match Hashtbl.find_opt cells ci with
                  | Some c -> c
                  | None ->
                      let c = ref (float_of_int impl.ci_cycles) in
                      Hashtbl.replace cells ci c;
                      c
                in
                fun fr ->
                  w fr (eval (eval_args fr));
                  let cyc = !cell in
                  st.native <- st.native +. cyc;
                  st.vm <- st.vm +. cyc)
        | None -> fun _ -> fault "custom instruction #%d is not configured" ci)
  in
  let n = bi.ninstrs in
  (* Compare-and-branch fusion, the one superinstruction the typed
     compiler keeps: plain typed code is already allocation-free, so
     sink trees buy nothing here, but fusing the trailing single-use
     compare into the branch still skips a flag write and a dispatch.
     Same conditions as the boxed [fused_scrutinee], restricted to
     compare scrutinees (anything else compiles normally and the
     terminator tests its register — observably identical). *)
  let fused_scrutinee =
    if st.tuning.fuse && n > nphi then
      match bi.term with
      | Ir.Instr.Cond_br (Ir.Instr.Reg r, a, b)
        when bi.instrs.(n - 1).Ir.Instr.id = r
             && r >= 0
             && r < Array.length fi.use_counts
             && fi.use_counts.(r) = 1
             && (match bi.instrs.(n - 1).Ir.Instr.kind with
                | Ir.Instr.Icmp _ | Ir.Instr.Fcmp _ -> true
                | _ -> false) ->
          Some (bi.instrs.(n - 1), a, b)
      | _ -> None
    else None
  in
  let body_end = match fused_scrutinee with Some _ -> n - 1 | None -> n in
  let fused_term =
    match fused_scrutinee with
    | None -> None
    | Some (ci, a, b) ->
        let test =
          match ci.Ir.Instr.kind with
          | Ir.Instr.Icmp (p, x, y) ->
              bump_fusion "icmp+br";
              rbool_icmp classes slots p (decode_operand x) (decode_operand y)
          | Ir.Instr.Fcmp (p, x, y) ->
              bump_fusion "fcmp+br";
              rbool_fcmp classes slots p (decode_operand x) (decode_operand y)
          | _ -> assert false
        in
        Some (R_cmp_br (test, a, b))
  in
  let r_ops =
    Array.init (body_end - nphi) (fun j -> compile_rinstr bi.instrs.(nphi + j))
  in
  (* Phi prologue, compiled per predecessor label.  Staging goes into
     per-class scratch (parallel-assignment semantics); a single phi
     commits directly.  Scratch reuse is safe because the prologue
     cannot re-enter this function. *)
  let r_phi_rows =
    if nphi = 0 then [||]
    else begin
      let npred = Array.length bi.phi_incoming.(0) in
      let si = Array.make nphi 0L in
      let sf = Array.make nphi 0.0 in
      let sp = Array.make nphi 0 in
      let sv = Array.make nphi (Ir.Eval.VInt 0L) in
      let lane k =
        let dk = bi.phi_dests.(k) in
        if ok dk then classes.(dk) else C_boxed
      in
      (* stage phi [k]'s incoming value from predecessor [p] into its
         lane's scratch; [direct] writes the destination register
         instead (single-phi case, no staging needed) *)
      let stage ~direct p k : frame -> unit =
        let dk = bi.phi_dests.(k) in
        match bi.phi_incoming.(k).(p) with
        | None ->
            fun _ ->
              fault "@%s/bb%d: phi has no entry for predecessor bb%d" fname
                bnum p
        | Some op -> (
            let s = decode_operand op in
            match lane k with
            | C_int -> (
                let sdk = slots.(dk) in
                match rarg_i classes slots s with
                | RiS a ->
                    if direct then fun fr ->
                      Array.unsafe_set fr.fr_i sdk (Array.unsafe_get fr.fr_i a)
                    else fun fr ->
                      Array.unsafe_set si k (Array.unsafe_get fr.fr_i a)
                | RiK kv ->
                    if direct then fun fr -> Array.unsafe_set fr.fr_i sdk kv
                    else fun _ -> Array.unsafe_set si k kv
                | aa ->
                    let g = ri_fn aa in
                    if direct then fun fr ->
                      Array.unsafe_set fr.fr_i sdk (g fr)
                    else fun fr -> Array.unsafe_set si k (g fr))
            | C_float -> (
                let sdk = slots.(dk) in
                match rarg_f classes slots s with
                | RfS a ->
                    if direct then fun fr ->
                      Array.unsafe_set fr.fr_f sdk (Array.unsafe_get fr.fr_f a)
                    else fun fr ->
                      Array.unsafe_set sf k (Array.unsafe_get fr.fr_f a)
                | RfK kv ->
                    if direct then fun fr -> Array.unsafe_set fr.fr_f sdk kv
                    else fun _ -> Array.unsafe_set sf k kv
                | aa ->
                    let g = rf_fn aa in
                    if direct then fun fr ->
                      Array.unsafe_set fr.fr_f sdk (g fr)
                    else fun fr -> Array.unsafe_set sf k (g fr))
            | C_ptr ->
                let sdk = slots.(dk) in
                let g = rget_p classes slots s in
                if direct then fun fr -> Array.unsafe_set fr.fr_p sdk (g fr)
                else fun fr -> Array.unsafe_set sp k (g fr)
            | C_boxed ->
                let sdk = if ok dk then slots.(dk) else dk in
                let g = rget_box classes slots s in
                if direct then fun fr -> fr.fr_v.(sdk) <- g fr
                else fun fr -> Array.unsafe_set sv k (g fr))
      in
      let commits =
        Array.init nphi (fun k ->
            let dk = bi.phi_dests.(k) in
            match lane k with
            | C_int ->
                let sdk = slots.(dk) in
                fun fr -> Array.unsafe_set fr.fr_i sdk (Array.unsafe_get si k)
            | C_float ->
                let sdk = slots.(dk) in
                fun fr -> Array.unsafe_set fr.fr_f sdk (Array.unsafe_get sf k)
            | C_ptr ->
                let sdk = slots.(dk) in
                fun fr -> Array.unsafe_set fr.fr_p sdk (Array.unsafe_get sp k)
            | C_boxed ->
                let sdk = if ok dk then slots.(dk) else dk in
                fun fr -> fr.fr_v.(sdk) <- Array.unsafe_get sv k)
      in
      Array.init npred (fun p ->
          if nphi = 1 then stage ~direct:true p 0
          else
            let stages = Array.init nphi (fun k -> stage ~direct:false p k) in
            fun fr ->
              for k = 0 to nphi - 1 do
                (Array.unsafe_get stages k) fr
              done;
              for k = 0 to nphi - 1 do
                (Array.unsafe_get commits k) fr
              done)
    end
  in
  let r_term =
    match fused_term with
    | Some t -> t
    | None -> (
        match bi.term with
        | Ir.Instr.Ret None -> R_halt
        | Ir.Instr.Ret (Some op) ->
            (* the return seam: the result leaves as a boxed value *)
            R_ret (rget_box classes slots (decode_operand op))
        | Ir.Instr.Br l -> R_br l
        | Ir.Instr.Cond_br (c, a, b) ->
            R_cond (rtest classes slots (decode_operand c), a, b)
        | Ir.Instr.Switch (s, default, _) ->
            let tbl =
              match bi.switch_cases with Some tbl -> tbl | None -> assert false
            in
            (* the executors evaluate the scrutinee outside the body
               handlers, so [rget_i]'s raw [Type_error] propagates
               uncaught exactly like the boxed engines' [as_int] *)
            R_switch (rget_i classes slots (decode_operand s), default, tbl))
  in
  let r_sync =
    Array.exists
      (fun (i : Ir.Instr.t) ->
        match i.Ir.Instr.kind with
        | Ir.Instr.Call (name, _) -> Hashtbl.mem st.funcs name
        | Ir.Instr.Ci_call (ci, _) -> Hashtbl.mem st.cis ci
        | _ -> false)
      bi.instrs
  in
  {
    r_info = bi;
    r_label = bnum;
    r_ops;
    r_phi_rows;
    r_term;
    r_link = RL_none;
    r_sync;
    r_fuel = bi.ninstrs + 1;
    r_native = float_of_int bi.static_cycles;
    r_hot = st.jit.Jit_model.hot_factor *. float_of_int bi.static_cycles;
    r_cold =
      float_of_int
        (bi.static_cycles + Ir.Cost.block_dispatch_cycles ~ninstrs:bi.ninstrs);
  }

(* Patch every compiled terminator with direct references to the
   successor [tblock]s.  A terminator naming a label outside the
   function keeps [L_none]: the linked executor then transfers through
   the indexed path and faults exactly like the unlinked engine. *)
let link_func (fi : func_info) : unit =
  let tbs = fi.tblocks in
  let nb = Array.length tbs in
  let okl l = l >= 0 && l < nb in
  Array.iter
    (fun tb ->
      tb.t_link <-
        (match tb.t_term with
        | T_halt -> L_halt
        | T_ret s -> L_ret s
        | T_br l when okl l -> L_br tbs.(l)
        | T_cond (s, a, b) when okl a && okl b -> L_cond (s, tbs.(a), tbs.(b))
        | T_cond_s (r, a, b) when okl a && okl b ->
            L_cond_s (r, tbs.(a), tbs.(b))
        | T_cmp_br (t, a, b) when okl a && okl b ->
            L_cmp_br (t, tbs.(a), tbs.(b))
        | T_switch (s, d, tbl)
          when okl d && Hashtbl.fold (fun _ l acc -> acc && okl l) tbl true ->
            let ltbl = Hashtbl.create (max 4 (Hashtbl.length tbl)) in
            Hashtbl.iter (fun v l -> Hashtbl.replace ltbl v tbs.(l)) tbl;
            L_switch (s, tbs.(d), ltbl)
        | _ -> L_none))
    tbs

(* {!link_func} for the typed-register-file engine. *)
let link_rfunc (fi : func_info) : unit =
  let tbs = fi.rtblocks in
  let nb = Array.length tbs in
  let okl l = l >= 0 && l < nb in
  Array.iter
    (fun tb ->
      tb.r_link <-
        (match tb.r_term with
        | R_halt -> RL_halt
        | R_ret g -> RL_ret g
        | R_br l when okl l -> RL_br tbs.(l)
        | R_cond (t, a, b) when okl a && okl b -> RL_cond (t, tbs.(a), tbs.(b))
        | R_cmp_br (t, a, b) when okl a && okl b ->
            RL_cmp_br (t, tbs.(a), tbs.(b))
        | R_switch (g, d, tbl)
          when okl d && Hashtbl.fold (fun _ l acc -> acc && okl l) tbl true ->
            let ltbl = Hashtbl.create (max 4 (Hashtbl.length tbl)) in
            Hashtbl.iter (fun v l -> Hashtbl.replace ltbl v tbs.(l)) tbl;
            RL_switch (g, tbs.(d), ltbl)
        | _ -> RL_none))
    tbs

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Run [entry] with scalar [args].

    @param fuel maximum dynamic instructions (default 4e9)
    @param jit VM cost model (default {!Jit_model.default})
    @param cis configured custom instructions (default none)
    @param engine execution engine (default {!Threaded}); outcomes are
      identical across engines
    @param tuning threaded-engine optimization knobs (default
      {!default_tuning}: everything on); outcomes are identical across
      all combinations
    @param monitor online controller hook: receives the {!control}
      handle before any block executes, returns a per-dynamic-block
      callback.  Absent means the exact unmonitored code path —
      byte-identical clocks.
    @raise Fault on any runtime error. *)
let run ?(fuel = 4_000_000_000L) ?(jit = Jit_model.default)
    ?(cis = empty_cis ()) ?(engine = default_engine)
    ?(tuning = default_tuning) ?monitor (m : Ir.Irmod.t) ~entry
    ~(args : Ir.Eval.value list) : outcome =
  let memory = Memory.create () in
  Memory.load_globals memory m;
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.Func.t) ->
      Hashtbl.replace funcs f.Ir.Func.name (prepare_func m f))
    m.Ir.Irmod.funcs;
  let swap =
    match monitor with None -> None | Some _ -> Some (Hashtbl.create 16)
  in
  if tuning.max_linked_blocks < 1 then
    invalid_arg
      (Printf.sprintf "Machine.run: max_linked_blocks must be >= 1 (got %d)"
         tuning.max_linked_blocks);
  let st =
    {
      funcs;
      memory;
      jit;
      cis;
      swap;
      tuning;
      mon = None;
      native = 0.0;
      vm = 0.0;
      fuel;
    }
  in
  (match (monitor, swap) with
  | None, _ | _, None -> ()
  | Some mk, Some cells ->
      (* Every configured CI gets a swap cell up front so the monitor
         can rebind charges before the CI first executes. *)
      Hashtbl.iter
        (fun ci impl ->
          Hashtbl.replace cells ci (ref (float_of_int impl.ci_cycles)))
        cis;
      let control =
        {
          ctl_native = (fun () -> st.native);
          ctl_vm = (fun () -> st.vm);
          ctl_stall =
            (fun c ->
              st.native <- st.native +. c;
              st.vm <- st.vm +. c);
          ctl_bind =
            (fun ci c ->
              match Hashtbl.find_opt cells ci with
              | Some cell -> cell := c
              | None -> Hashtbl.replace cells ci (ref c));
          ctl_charge =
            (fun ci -> Option.map ( ! ) (Hashtbl.find_opt cells ci));
        }
      in
      st.mon <- Some (mk control));
  (* Whole-module dynamic translation at load time. *)
  st.vm <-
    st.vm
    +. Jit_model.module_translation_cycles jit
         ~module_instrs:(Ir.Irmod.num_instrs m);
  let fi =
    match Hashtbl.find_opt funcs entry with
    | Some fi -> fi
    | None -> fault "entry function @%s not found" entry
  in
  let ret =
    match engine with
    | Reference -> exec_func st fi (Array.of_list args)
    | Threaded ->
        if tuning.regalloc then begin
          Hashtbl.iter (fun _ fi -> compile_rfunc st fi) funcs;
          if tuning.link then Hashtbl.iter (fun _ fi -> link_rfunc fi) funcs
        end
        else begin
          Hashtbl.iter (fun _ fi -> fi.tblocks <- compile_func st fi) funcs;
          if tuning.link then Hashtbl.iter (fun _ fi -> link_func fi) funcs
        end;
        enter st fi (Array.of_list args)
  in
  (* Fold the run-local counters into a profile. *)
  let profile = Profile.create () in
  Hashtbl.iter
    (fun name (fi : func_info) ->
      Array.iteri
        (fun label bi ->
          if bi.exec_count > 0 then
            Profile.record profile ~func:name ~label
              ~count:(Int64.of_int bi.exec_count) ~instrs:bi.ninstrs)
        fi.blocks)
    funcs;
  { ret; native_cycles = st.native; vm_cycles = st.vm; profile; memory }
