(** The bitcode virtual machine.

    An SSA interpreter with cycle accounting.  One run simultaneously
    accumulates two clocks:

    - [native_cycles]: the cost of the program under static compilation
      (the paper's "Native" column), from {!Jitise_ir.Cost};
    - [vm_cycles]: the cost under the VM's JIT execution model
      ({!Jit_model}), the paper's "VM" column.

    The machine also records the block-frequency {!Profile} and executes
    custom-instruction calls ([Ci_call]) through a registry that charges
    the hardware latency of the reconfigurable functional unit instead
    of the software cycles — which is how adapted binaries are timed on
    the Woolcano model. *)

module Ir = Jitise_ir

exception Fault of string

let fault fmt = Printf.ksprintf (fun m -> raise (Fault m)) fmt

(* ------------------------------------------------------------------ *)
(* Custom instruction registry                                         *)
(* ------------------------------------------------------------------ *)

type ci_impl = {
  ci_eval : Ir.Eval.value array -> Ir.Eval.value;
      (** functional semantics of the custom instruction *)
  ci_cycles : int;
      (** CPU cycles one invocation takes on the custom functional
          unit, including the instruction-interface overhead *)
}

type ci_registry = (int, ci_impl) Hashtbl.t

let empty_cis () : ci_registry = Hashtbl.create 8

(* ------------------------------------------------------------------ *)
(* Intrinsics                                                          *)
(* ------------------------------------------------------------------ *)

let intrinsic name (args : Ir.Eval.value array) : Ir.Eval.value =
  let f1 op =
    if Array.length args <> 1 then fault "intrinsic %s: arity" name
    else Ir.Eval.VFloat (op (Ir.Eval.as_float args.(0)))
  in
  let i1 op =
    if Array.length args <> 1 then fault "intrinsic %s: arity" name
    else Ir.Eval.VInt (op (Ir.Eval.as_int args.(0)))
  in
  let i2 op =
    if Array.length args <> 2 then fault "intrinsic %s: arity" name
    else
      Ir.Eval.VInt (op (Ir.Eval.as_int args.(0)) (Ir.Eval.as_int args.(1)))
  in
  match name with
  | "sqrt" -> f1 sqrt
  | "sin" -> f1 sin
  | "cos" -> f1 cos
  | "atan" -> f1 atan
  | "exp" -> f1 exp
  | "log" -> f1 log
  | "fabs" -> f1 abs_float
  | "floor" -> f1 floor
  | "pow" ->
      if Array.length args <> 2 then fault "intrinsic pow: arity"
      else
        Ir.Eval.VFloat
          (Float.pow (Ir.Eval.as_float args.(0)) (Ir.Eval.as_float args.(1)))
  | "abs" -> i1 Int64.abs
  | "min" -> i2 min
  | "max" -> i2 max
  | _ -> fault "unknown function @%s" name

let is_intrinsic = function
  | "sqrt" | "sin" | "cos" | "atan" | "exp" | "log" | "fabs" | "floor"
  | "pow" | "abs" | "min" | "max" ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Prepared module                                                     *)
(* ------------------------------------------------------------------ *)

(* Per-block static data, computed once per run.  [exec_count] is the
   run-local profile counter (folded into a Profile at the end — much
   cheaper than a hashtable update per block execution).  The phi
   prologue is pre-resolved: [phi_incoming.(k).(pred)] is the operand
   phi [k] takes when entered from block [pred], so the hot loop does
   two array reads per phi instead of scanning an association list on
   every block execution. *)
type block_info = {
  instrs : Ir.Instr.t array;
  term : Ir.Instr.terminator;
  ninstrs : int;
  static_cycles : int;  (* excludes user-call callees and CI latencies *)
  phi_count : int;  (* leading phis; a phi past them still faults *)
  phi_dests : int array;  (* destination register of each leading phi *)
  phi_incoming : Ir.Instr.operand option array array;
      (* per leading phi, indexed by predecessor block label *)
  mutable exec_count : int64;
}

type func_info = {
  func : Ir.Func.t;
  blocks : block_info array;
  reg_tys : Ir.Ty.t array;  (* type of each register, Void if undefined *)
}

let prepare_func (m : Ir.Irmod.t) (f : Ir.Func.t) : func_info =
  let is_user_func name = Ir.Irmod.find_func m name <> None in
  let reg_tys = Array.make (max 1 f.Ir.Func.next_reg) Ir.Ty.Void in
  List.iter (fun (r, ty) -> reg_tys.(r) <- ty) f.Ir.Func.params;
  Ir.Func.iter_instrs
    (fun _ (i : Ir.Instr.t) ->
      if i.Ir.Instr.id < Array.length reg_tys then
        reg_tys.(i.Ir.Instr.id) <- i.Ir.Instr.ty)
    f;
  let nblocks = Array.length f.Ir.Func.blocks in
  let blocks =
    Array.map
      (fun (b : Ir.Block.t) ->
        let instrs = Array.of_list b.Ir.Block.instrs in
        let static_cycles =
          Array.fold_left
            (fun acc (i : Ir.Instr.t) ->
              acc
              +
              match i.Ir.Instr.kind with
              | Ir.Instr.Call (name, _) when is_user_func name ->
                  Ir.Cost.call_linkage_cycles
              | kind -> Ir.Cost.cycles kind)
            0 instrs
          + Ir.Cost.terminator_cycles b.Ir.Block.term
        in
        let n = Array.length instrs in
        let phi_count =
          let rec go k =
            if
              k < n
              &&
              match instrs.(k).Ir.Instr.kind with
              | Ir.Instr.Phi _ -> true
              | _ -> false
            then go (k + 1)
            else k
          in
          go 0
        in
        let phi_dests =
          Array.init phi_count (fun k -> instrs.(k).Ir.Instr.id)
        in
        let phi_incoming =
          Array.init phi_count (fun k ->
              match instrs.(k).Ir.Instr.kind with
              | Ir.Instr.Phi incoming ->
                  let row = Array.make nblocks None in
                  (* first match wins, like List.assoc_opt did; labels
                     outside the function are unreachable dead entries *)
                  List.iter
                    (fun (pred, op) ->
                      if pred >= 0 && pred < nblocks then
                        match row.(pred) with
                        | None -> row.(pred) <- Some op
                        | Some _ -> ())
                    incoming;
                  row
              | _ -> assert false)
        in
        {
          instrs;
          term = b.Ir.Block.term;
          ninstrs = n;
          static_cycles;
          phi_count;
          phi_dests;
          phi_incoming;
          exec_count = 0L;
        })
      f.Ir.Func.blocks
  in
  { func = f; blocks; reg_tys }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type outcome = {
  ret : Ir.Eval.value option;
  native_cycles : float;
  vm_cycles : float;
  profile : Profile.t;
  memory : Memory.t;
}

(** Simulated seconds for a cycle count, at the PowerPC 405 clock. *)
let seconds_of_cycles c = c *. Ir.Cost.cycle_time

type state = {
  funcs : (string, func_info) Hashtbl.t;
  memory : Memory.t;
  jit : Jit_model.t;
  cis : ci_registry;
  mutable native : float;
  mutable vm : float;
  mutable fuel : int64;  (* remaining dynamic instructions; negative = out *)
}

let value_of_operand regs = function
  | Ir.Instr.Const c -> Ir.Eval.of_const c
  | Ir.Instr.Reg r -> regs.(r)

let rec exec_func st (fi : func_info) (args : Ir.Eval.value array) :
    Ir.Eval.value option =
  let f = fi.func in
  if Array.length args <> List.length f.Ir.Func.params then
    fault "@%s: expected %d arguments, got %d" f.Ir.Func.name
      (List.length f.Ir.Func.params)
      (Array.length args);
  let regs = Array.make (max 1 f.Ir.Func.next_reg) (Ir.Eval.VInt 0L) in
  Array.iteri (fun i v -> regs.(i) <- v) args;
  let frame_mark = Memory.mark st.memory in
  let finish v =
    Memory.release st.memory frame_mark;
    v
  in
  let cur = ref Ir.Func.entry_label in
  let prev = ref (-1) in
  let result = ref None in
  let running = ref true in
  while !running do
    let bi = fi.blocks.(!cur) in
    (* Fuel. *)
    st.fuel <- Int64.sub st.fuel (Int64.of_int (bi.ninstrs + 1));
    if st.fuel < 0L then fault "execution budget exhausted in @%s" f.Ir.Func.name;
    (* Profile and clocks.  [prior] is the pre-increment count used by
       the JIT warm-up model. *)
    let prior = bi.exec_count in
    bi.exec_count <- Int64.add prior 1L;
    st.native <- st.native +. float_of_int bi.static_cycles;
    st.vm <-
      st.vm
      +. Jit_model.block_execution_cycles st.jit ~prior ~ninstrs:bi.ninstrs
           ~native_cycles:bi.static_cycles;
    (* Phis first, read atomically: the incoming operand per
       predecessor was pre-resolved into an array in [prepare_func]. *)
    let n = bi.ninstrs in
    let nphi = bi.phi_count in
    if nphi > 0 then begin
      let staged = Array.make nphi (Ir.Eval.VInt 0L) in
      for k = 0 to nphi - 1 do
        let row = bi.phi_incoming.(k) in
        match
          if !prev >= 0 && !prev < Array.length row then row.(!prev) else None
        with
        | Some op -> staged.(k) <- value_of_operand regs op
        | None ->
            fault "@%s/bb%d: phi has no entry for predecessor bb%d"
              f.Ir.Func.name !cur !prev
      done;
      for k = 0 to nphi - 1 do
        regs.(bi.phi_dests.(k)) <- staged.(k)
      done
    end;
    (* Straight-line body. *)
    for k = nphi to n - 1 do
      let i = bi.instrs.(k) in
      let v op = value_of_operand regs op in
      let set x = regs.(i.Ir.Instr.id) <- x in
      try
        match i.Ir.Instr.kind with
        | Ir.Instr.Phi _ ->
            fault "@%s/bb%d: phi after non-phi" f.Ir.Func.name !cur
        | Ir.Instr.Binop (op, a, b) ->
            set (Ir.Eval.eval_binop i.Ir.Instr.ty op (v a) (v b))
        | Ir.Instr.Icmp (p, a, b) -> set (Ir.Eval.eval_icmp p (v a) (v b))
        | Ir.Instr.Fcmp (p, a, b) -> set (Ir.Eval.eval_fcmp p (v a) (v b))
        | Ir.Instr.Cast (c, a) ->
            let from_ =
              match a with
              | Ir.Instr.Const cst -> Ir.Instr.const_ty cst
              | Ir.Instr.Reg r -> fi.reg_tys.(r)
            in
            set (Ir.Eval.eval_cast c ~from_ ~to_:i.Ir.Instr.ty (v a))
        | Ir.Instr.Select (c, a, b) ->
            set (Ir.Eval.eval_select (v c) (v a) (v b))
        | Ir.Instr.Alloca (_, count) ->
            set (Ir.Eval.VPtr (Memory.alloc st.memory count))
        | Ir.Instr.Load a -> set (Memory.load st.memory (Ir.Eval.as_ptr (v a)))
        | Ir.Instr.Store (x, a) ->
            Memory.store st.memory (Ir.Eval.as_ptr (v a)) (v x)
        | Ir.Instr.Gep (base, idx) ->
            set
              (Ir.Eval.VPtr
                 (Ir.Eval.as_ptr (v base) + Int64.to_int (Ir.Eval.as_int (v idx))))
        | Ir.Instr.Gaddr g -> set (Ir.Eval.VPtr (Memory.global_base st.memory g))
        | Ir.Instr.Call (name, argops) -> (
            let argv = Array.of_list (List.map v argops) in
            match Hashtbl.find_opt st.funcs name with
            | Some callee -> (
                match exec_func st callee argv with
                | Some r -> set r
                | None -> ())
            | None ->
                if is_intrinsic name then set (intrinsic name argv)
                else fault "call to unknown function @%s" name)
        | Ir.Instr.Ci_call (ci, argops) -> (
            match Hashtbl.find_opt st.cis ci with
            | Some impl ->
                let argv = Array.of_list (List.map v argops) in
                set (impl.ci_eval argv);
                st.native <- st.native +. float_of_int impl.ci_cycles;
                st.vm <- st.vm +. float_of_int impl.ci_cycles
            | None -> fault "custom instruction #%d is not configured" ci)
      with
      | Ir.Eval.Division_by_zero ->
          fault "@%s/bb%d: division by zero" f.Ir.Func.name !cur
      | Ir.Eval.Type_error m -> fault "@%s/bb%d: %s" f.Ir.Func.name !cur m
      | Memory.Bad_address a ->
          fault "@%s/bb%d: bad address %d" f.Ir.Func.name !cur a
      | Memory.Out_of_memory -> fault "@%s: out of memory" f.Ir.Func.name
    done;
    (* Terminator. *)
    (match bi.term with
    | Ir.Instr.Ret op ->
        result := Option.map (value_of_operand regs) op;
        running := false
    | Ir.Instr.Br l ->
        prev := !cur;
        cur := l
    | Ir.Instr.Cond_br (c, a, b) ->
        prev := !cur;
        cur := (if Ir.Eval.is_true (value_of_operand regs c) then a else b)
    | Ir.Instr.Switch (s, default, cases) ->
        let sv = Ir.Eval.as_int (value_of_operand regs s) in
        prev := !cur;
        cur :=
          (match List.assoc_opt sv cases with Some l -> l | None -> default))
  done;
  finish !result

(** Run [entry] with scalar [args].

    @param fuel maximum dynamic instructions (default 4e9)
    @param jit VM cost model (default {!Jit_model.default})
    @param cis configured custom instructions (default none)
    @raise Fault on any runtime error. *)
let run ?(fuel = 4_000_000_000L) ?(jit = Jit_model.default)
    ?(cis = empty_cis ()) (m : Ir.Irmod.t) ~entry
    ~(args : Ir.Eval.value list) : outcome =
  let memory = Memory.create () in
  Memory.load_globals memory m;
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.Func.t) ->
      Hashtbl.replace funcs f.Ir.Func.name (prepare_func m f))
    m.Ir.Irmod.funcs;
  let st = { funcs; memory; jit; cis; native = 0.0; vm = 0.0; fuel } in
  (* Whole-module dynamic translation at load time. *)
  st.vm <-
    st.vm
    +. Jit_model.module_translation_cycles jit
         ~module_instrs:(Ir.Irmod.num_instrs m);
  let fi =
    match Hashtbl.find_opt funcs entry with
    | Some fi -> fi
    | None -> fault "entry function @%s not found" entry
  in
  let ret = exec_func st fi (Array.of_list args) in
  (* Fold the run-local counters into a profile. *)
  let profile = Profile.create () in
  Hashtbl.iter
    (fun name (fi : func_info) ->
      Array.iteri
        (fun label bi ->
          if bi.exec_count > 0L then
            Profile.record profile ~func:name ~label ~count:bi.exec_count
              ~instrs:bi.ninstrs)
        fi.blocks)
    funcs;
  { ret; native_cycles = st.native; vm_cycles = st.vm; profile; memory }
