(** Cell-addressed VM memory.

    Memory is a flat, growable array of scalar cells.  The loader lays
    out module globals from address 1 upward (address 0 is reserved so
    that a null pointer never aliases a global); the stack for allocas
    grows above the globals.  One cell holds one scalar regardless of
    width — address arithmetic in the IR is in cells, which keeps the
    model simple without affecting anything the ISE study measures. *)

module Ir = Jitise_ir

type t = {
  mutable cells : Ir.Eval.value array;
  mutable stack_pointer : int;  (** next free cell *)
  globals : (string, int) Hashtbl.t;  (** global name -> base address *)
  limit : int;  (** hard cap on memory growth, in cells *)
}

exception Out_of_memory
exception Bad_address of int

let default_limit = 1 lsl 24  (* 16 M cells *)

let create ?(limit = default_limit) () =
  {
    cells = Array.make 1024 (Ir.Eval.VInt 0L);
    stack_pointer = 1;
    globals = Hashtbl.create 16;
    limit;
  }

let ensure t addr =
  if addr < 0 then raise (Bad_address addr);
  if addr >= Array.length t.cells then begin
    if addr >= t.limit then raise Out_of_memory;
    let new_len = min t.limit (max (addr + 1) (2 * Array.length t.cells)) in
    let cells = Array.make new_len (Ir.Eval.VInt 0L) in
    Array.blit t.cells 0 cells 0 (Array.length t.cells);
    t.cells <- cells
  end

(* [load] and [store] sit on the hottest interpreter path; the address
   has already been validated against [stack_pointer] (and 0), so the
   backing-array access can skip the second bounds check.  [alloc]
   always [ensure]s up to the stack pointer, so the slow store path only
   exists for robustness against future layout changes. *)

let[@inline] load t addr =
  if addr <= 0 || addr >= t.stack_pointer then raise (Bad_address addr);
  let cells = t.cells in
  if addr < Array.length cells then Array.unsafe_get cells addr
  else Ir.Eval.VInt 0L

let store_slow t addr v =
  ensure t addr;
  t.cells.(addr) <- v

let[@inline] store t addr v =
  if addr <= 0 || addr >= t.stack_pointer then raise (Bad_address addr);
  let cells = t.cells in
  if addr < Array.length cells then Array.unsafe_set cells addr v
  else store_slow t addr v

(** Reserve [n] cells and return their base address. *)
let alloc t n =
  if n <= 0 then invalid_arg "Memory.alloc: non-positive size";
  let base = t.stack_pointer in
  t.stack_pointer <- base + n;
  ensure t (t.stack_pointer - 1);
  base

(** Current stack mark, for frame save/restore. *)
let mark t = t.stack_pointer

(** Pop the stack back to a previous {!mark}. *)
let release t m = t.stack_pointer <- m

let zero_value (ty : Ir.Ty.t) =
  if Ir.Ty.is_float ty then Ir.Eval.VFloat 0.0 else Ir.Eval.VInt 0L

(** Lay out and initialize all globals of a module. *)
let load_globals t (m : Ir.Irmod.t) =
  List.iter
    (fun (g : Ir.Irmod.global) ->
      let base = alloc t g.Ir.Irmod.gsize in
      Hashtbl.replace t.globals g.Ir.Irmod.gname base;
      (match g.Ir.Irmod.ginit with
      | Ir.Irmod.Zero ->
          for i = 0 to g.Ir.Irmod.gsize - 1 do
            t.cells.(base + i) <- zero_value g.Ir.Irmod.gty
          done
      | Ir.Irmod.Ints a ->
          for i = 0 to g.Ir.Irmod.gsize - 1 do
            let v = if i < Array.length a then a.(i) else 0L in
            t.cells.(base + i) <-
              Ir.Eval.VInt (Ir.Eval.normalize g.Ir.Irmod.gty v)
          done
      | Ir.Irmod.Floats a ->
          for i = 0 to g.Ir.Irmod.gsize - 1 do
            let v = if i < Array.length a then a.(i) else 0.0 in
            t.cells.(base + i) <-
              Ir.Eval.VFloat (Ir.Eval.round_float g.Ir.Irmod.gty v)
          done))
    m.Ir.Irmod.globals

let global_base t name =
  match Hashtbl.find_opt t.globals name with
  | Some base -> base
  | None -> invalid_arg (Printf.sprintf "Memory.global_base: unknown global %s" name)

(** Read [len] cells of a global as floats (for checksumming results in
    tests and workload validation). *)
let read_global_floats t name len =
  let base = global_base t name in
  Array.init len (fun i ->
      match load t (base + i) with
      | Ir.Eval.VFloat v -> v
      | Ir.Eval.VInt v -> Int64.to_float v
      | Ir.Eval.VPtr p -> float_of_int p)

(** Read [len] cells of a global as ints. *)
let read_global_ints t name len =
  let base = global_base t name in
  Array.init len (fun i ->
      match load t (base + i) with
      | Ir.Eval.VInt v -> v
      | Ir.Eval.VFloat v -> Int64.of_float v
      | Ir.Eval.VPtr p -> Int64.of_int p)

(** Overwrite a global's cells with integer data (workload dataset
    injection). *)
let write_global_ints t name data =
  let base = global_base t name in
  Array.iteri (fun i v -> store t (base + i) (Ir.Eval.VInt v)) data

(** Overwrite a global's cells with float data. *)
let write_global_floats t name data =
  let base = global_base t name in
  Array.iteri (fun i v -> store t (base + i) (Ir.Eval.VFloat v)) data
