(** Cost model of the virtual machine's just-in-time compilation.

    The paper's VM (LLVM's JIT) shows ~14 % average slowdown on large
    scientific codes, ~1 % on small embedded kernels, and occasionally
    beats static compilation (179.art, 473.astar).  This model captures
    that behaviour at block granularity:

    - the first [warmup_threshold] executions of a block are
      interpreted, paying {!Jitise_ir.Cost.vm_dispatch_cycles} per
      instruction plus a per-block translation charge on the execution
      that triggers compilation;
    - once hot, a block runs at [hot_factor] of native cost — slightly
      below 1.0, reflecting the profile-guided optimizations a VM can do
      that a static compiler cannot.

    Small kernels execute few distinct blocks millions of times, so the
    warm-up vanishes and the VM ratio converges to [hot_factor] (about
    1.0 or marginally below).  Large codes spread execution across
    thousands of blocks, re-paying warm-up and translation, which lands
    them in the 10-30 % overhead range. *)

type t = {
  warmup_threshold : int64;
      (** executions a block spends in the interpreter before its
          compiled form takes over *)
  translation_cycles_per_instr : int;
      (** one-time whole-module translation cost, charged at load *)
  hot_factor : float;  (** relative cost of a compiled block, ~0.99 *)
}

let default =
  {
    warmup_threshold = 16L;
    translation_cycles_per_instr = 6_500;
    hot_factor = 0.985;
  }

(** A model with no VM overhead at all — used to measure the "Native"
    column of Table I. *)
let native = { warmup_threshold = 0L; translation_cycles_per_instr = 0; hot_factor = 1.0 }

(** One-time cost of translating the whole module at load (the VM's
    dynamic translation step in Figure 1).  Proportional to the static
    module size — the mechanism behind the paper's observation that the
    VM overhead is ~14 % on the large scientific codes but ~1 % on the
    small embedded kernels: big programs pay for translating a lot of
    code their hot loops never amortize. *)
let module_translation_cycles t ~module_instrs =
  float_of_int (t.translation_cycles_per_instr * module_instrs)

(** Cycles charged for one execution of a block, given how many times it
    has executed before ([prior]), its instruction count and its native
    cycle cost.  Blocks below the warm-up threshold run interpreted;
    beyond it they run compiled, marginally faster than static code
    thanks to profile-guided optimization (which is how the VM
    occasionally beats native execution, as the paper saw for 179.art
    and 473.astar). *)
let block_execution_cycles t ~prior ~ninstrs ~native_cycles =
  if prior >= t.warmup_threshold then t.hot_factor *. float_of_int native_cycles
  else
    float_of_int
      (native_cycles + Jitise_ir.Cost.block_dispatch_cycles ~ninstrs)
