(** Execution profiles.

    The VM records how often every basic block executes.  Profiles
    drive everything downstream: the pruning filter ranks blocks by
    dynamic cost, the coverage analysis classifies code as
    live/dead/constant across datasets, and the break-even model weighs
    candidate savings by block frequency. *)

module Ir = Jitise_ir

type key = string * Ir.Instr.label  (** function name, block label *)

type t = {
  counts : (key, int64) Hashtbl.t;
  mutable executed_instrs : int64;  (** dynamic IR instruction count *)
}

let create () = { counts = Hashtbl.create 256; executed_instrs = 0L }

let bump t ~func ~label ~instrs =
  let key = (func, label) in
  let prev = Option.value ~default:0L (Hashtbl.find_opt t.counts key) in
  Hashtbl.replace t.counts key (Int64.add prev 1L);
  t.executed_instrs <- Int64.add t.executed_instrs (Int64.of_int instrs)

(** Add [count] executions of a block at once (bulk import from the
    VM's run-local counters). *)
let record t ~func ~label ~count ~instrs =
  let key = (func, label) in
  let prev = Option.value ~default:0L (Hashtbl.find_opt t.counts key) in
  Hashtbl.replace t.counts key (Int64.add prev count);
  t.executed_instrs <-
    Int64.add t.executed_instrs (Int64.mul count (Int64.of_int instrs))

let count t ~func ~label =
  Option.value ~default:0L (Hashtbl.find_opt t.counts (func, label))

let iter f t = Hashtbl.iter (fun (fn, l) c -> f ~func:fn ~label:l ~count:c) t.counts

(** All profiled (function, label, count) triples, sorted for
    determinism. *)
let to_list t =
  Hashtbl.fold (fun (fn, l) c acc -> (fn, l, c) :: acc) t.counts []
  |> List.sort compare

(** Merge [src] into [dst] (summing counts). *)
let merge ~into:dst src =
  Hashtbl.iter
    (fun key c ->
      let prev = Option.value ~default:0L (Hashtbl.find_opt dst.counts key) in
      Hashtbl.replace dst.counts key (Int64.add prev c))
    src.counts;
  dst.executed_instrs <- Int64.add dst.executed_instrs src.executed_instrs

(** Sliding-window phase profiles.

    The online controller needs to know what is hot NOW, not what was
    hot over the whole run, so it observes block executions into
    fixed-size windows.  When a window fills it is folded into a
    decayed history ([rate]): old phases fade at a configurable rate
    while the just-closed window keeps full weight.  The raw counts of
    the last closed window ([last]) expose phase changes — a block that
    dominated the previous window and vanishes from the next one marks
    a phase exit.

    All state is per-window-close deterministic: the same observation
    sequence produces the same rates regardless of hash-table iteration
    order (per-key updates commute). *)
module Window = struct
  type w = {
    size : int;  (** block executions per window *)
    decay : float;  (** weight kept by history when a window closes *)
    mutable seen : int;  (** observations in the open window *)
    mutable closed : int;  (** windows closed so far *)
    cur : (key, int) Hashtbl.t;  (** open window counts *)
    prev : (key, int) Hashtbl.t;  (** last closed window counts *)
    hot : (key, float) Hashtbl.t;  (** decayed per-window rates *)
  }

  let create ?(size = 4096) ?(decay = 0.5) () =
    if size < 1 then invalid_arg "Profile.Window.create: size must be >= 1";
    if decay < 0.0 || decay >= 1.0 then
      invalid_arg "Profile.Window.create: decay must be in [0, 1)";
    {
      size;
      decay;
      seen = 0;
      closed = 0;
      cur = Hashtbl.create 64;
      prev = Hashtbl.create 64;
      hot = Hashtbl.create 64;
    }

  (** Record one block execution.  Returns [true] when the open window
      just filled — the caller should {!advance} and take a control
      decision. *)
  let observe w ~func ~label =
    let key = (func, label) in
    let c = Option.value ~default:0 (Hashtbl.find_opt w.cur key) in
    Hashtbl.replace w.cur key (c + 1);
    w.seen <- w.seen + 1;
    w.seen >= w.size

  (** Close the open window: decay the history, fold the window in,
      remember its raw counts, and start a fresh window. *)
  let advance w =
    (* Decay history; drop negligibly small entries so long runs with
       many dead phases do not accumulate unbounded keys. *)
    let stale =
      Hashtbl.fold
        (fun key r acc ->
          let r' = r *. w.decay in
          if r' < 1e-9 then key :: acc
          else begin
            Hashtbl.replace w.hot key r';
            acc
          end)
        w.hot []
    in
    List.iter (Hashtbl.remove w.hot) stale;
    Hashtbl.reset w.prev;
    Hashtbl.iter
      (fun key c ->
        Hashtbl.replace w.prev key c;
        let r = Option.value ~default:0.0 (Hashtbl.find_opt w.hot key) in
        Hashtbl.replace w.hot key (r +. float_of_int c))
      w.cur;
    Hashtbl.reset w.cur;
    w.seen <- 0;
    w.closed <- w.closed + 1

  (** Decayed rate of a block (executions per window, history-weighted). *)
  let rate w ~func ~label =
    Option.value ~default:0.0 (Hashtbl.find_opt w.hot (func, label))

  (** Raw count of a block in the last closed window. *)
  let last w ~func ~label =
    Option.value ~default:0 (Hashtbl.find_opt w.prev (func, label))

  let windows w = w.closed

  (** The [n] hottest blocks by decayed rate, ties broken by key for
      determinism. *)
  let hottest w n =
    let all = Hashtbl.fold (fun key r acc -> (key, r) :: acc) w.hot [] in
    let sorted =
      List.sort
        (fun (ka, ra) (kb, rb) ->
          let c = compare rb ra in
          if c <> 0 then c else compare ka kb)
        all
    in
    List.filteri (fun i _ -> i < n) sorted
end

(** Total software cycles attributed to each block of [m] under this
    profile: [freq * block_cycles].  Returns a sorted association list
    from (func, label) to cycles, heaviest first. *)
let block_costs t (m : Ir.Irmod.t) =
  let costs = ref [] in
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_blocks
        (fun b ->
          let freq = count t ~func:f.Ir.Func.name ~label:b.Ir.Block.label in
          if freq > 0L then
            let cycles =
              Int64.mul freq (Int64.of_int (Ir.Cost.block_cycles b))
            in
            costs := ((f.Ir.Func.name, b.Ir.Block.label), cycles) :: !costs)
        f)
    m.Ir.Irmod.funcs;
  List.sort (fun (_, a) (_, b) -> Int64.compare b a) !costs
