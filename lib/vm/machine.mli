(** The bitcode virtual machine.

    An SSA interpreter with cycle accounting.  One run simultaneously
    accumulates two clocks: [native_cycles], the cost of the program
    under static compilation, and [vm_cycles], the cost under the VM's
    JIT execution model ({!Jit_model}).  The machine also records the
    block-frequency {!Profile} and executes custom-instruction calls
    through a registry that charges the hardware latency of the
    reconfigurable functional unit.

    Two execution engines produce byte-identical outcomes: {!Reference}
    walks the instruction AST (the semantics baseline), {!Threaded}
    (the default) compiles each basic block once into an array of
    pre-decoded operation closures.  See DESIGN.md §9. *)

module Ir = Jitise_ir

(** Raised on any runtime error: type errors, division by zero, bad
    addresses, fuel exhaustion, calls to unknown functions or
    unconfigured custom instructions. *)
exception Fault of string

(* ------------------------------------------------------------------ *)
(* Custom instruction registry                                         *)
(* ------------------------------------------------------------------ *)

type ci_impl = {
  ci_eval : Ir.Eval.value array -> Ir.Eval.value;
      (** functional semantics of the custom instruction *)
  ci_cycles : int;
      (** CPU cycles one invocation takes on the custom functional
          unit, including the instruction-interface overhead *)
  ci_native : (Ir.Eval.value array -> Ir.Eval.value) option;
      (** fused closure compiled ahead of time from the CI's MISO
          subgraph: one dispatch, no per-node interpretation.  Must be
          functionally identical to [ci_eval]; the threaded engine
          dispatches it when {!tuning.ci_native} is on. *)
}

type ci_registry = (int, ci_impl) Hashtbl.t

val empty_cis : unit -> ci_registry

(* ------------------------------------------------------------------ *)
(* Intrinsics                                                          *)
(* ------------------------------------------------------------------ *)

(** Evaluate intrinsic [name] (sqrt, sin, pow, abs, min, ...).
    @raise Fault on an unknown name or wrong arity. *)
val intrinsic : string -> Ir.Eval.value array -> Ir.Eval.value

val find_intrinsic : string -> (Ir.Eval.value array -> Ir.Eval.value) option
val is_intrinsic : string -> bool

(* ------------------------------------------------------------------ *)
(* Execution engines                                                   *)
(* ------------------------------------------------------------------ *)

type engine =
  | Reference  (** AST-walking interpreter (the semantics baseline) *)
  | Threaded  (** per-block closure compilation with pre-decoded operands *)

val default_engine : engine
(** {!Threaded}. *)

val engines : engine list
val engine_name : engine -> string
val engine_of_string : string -> engine option

(* ------------------------------------------------------------------ *)
(* Engine tuning                                                       *)
(* ------------------------------------------------------------------ *)

(** Optimization knobs of the {!Threaded} engine.  Every knob is
    semantics-preserving: outcomes — clocks, fuel, profiles, fault
    messages — are byte-identical across all combinations (pinned by
    the differential suite), so the knobs exist for isolation
    benchmarking and differential testing, not for trading accuracy
    against speed.  See DESIGN.md §13–§14. *)
type tuning = {
  link : bool;
      (** block linking: terminators transfer to the successor's
          compiled block directly instead of returning to the indexed
          dispatch loop *)
  fuse : bool;
      (** superinstructions: peephole-fuse hot multi-op sequences into
          single non-allocating closures *)
  ci_native : bool;
      (** dispatch a loaded CI's pre-compiled fused closure
          ({!ci_impl.ci_native}) instead of interpreting its MISO
          subgraph op by op *)
  regalloc : bool;
      (** typed register files: partition each function's registers by
          declared type into unboxed int64/float/address slot arrays,
          boxing only at the call/return, intrinsic, CI and memory
          seams — hot int/float paths allocate nothing.  Off = the
          boxed compiled blocks, exactly (DESIGN.md §14). *)
  max_linked_blocks : int;
      (** linked-transfer budget: after this many consecutive direct
          block-to-block transfers the engine takes one trip through
          the indexed dispatch path (the escape hatch).  Fuel, clocks
          and the monitor hook run at every block boundary regardless.
          Must be >= 1. *)
}

(** Everything on, [max_linked_blocks = 64]. *)
val default_tuning : tuning

(** The PR 4 threaded engine: every optimization layer off. *)
val untuned : tuning

(** Per-pattern superinstruction hit counts since start (or the last
    {!reset_fusion_stats}), sorted by pattern name.  Counted at block
    compile time, one bump per fused window. *)
val fusion_stats : unit -> (string * int) list

val reset_fusion_stats : unit -> unit

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

type outcome = {
  ret : Ir.Eval.value option;
  native_cycles : float;
  vm_cycles : float;
  profile : Profile.t;
  memory : Memory.t;
}

(** Simulated seconds for a cycle count, at the PowerPC 405 clock. *)
val seconds_of_cycles : float -> float

(* ------------------------------------------------------------------ *)
(* Online monitoring and hot-swap                                      *)
(* ------------------------------------------------------------------ *)

(** Handle an online controller uses to observe and steer a run from
    inside the monitor callback.  Only valid during the callback: the
    threaded engine flushes its local accumulators before invoking the
    monitor and reloads them after, so the clocks read consistently and
    stalls/rebinds land between blocks without disturbing the fused
    closures. *)
type control = {
  ctl_native : unit -> float;  (** native clock, cycles *)
  ctl_vm : unit -> float;  (** VM clock, cycles *)
  ctl_stall : float -> unit;
      (** charge a stall (e.g. a reconfiguration wait) to both clocks *)
  ctl_bind : int -> float -> unit;
      (** set the per-dispatch cycle charge of a CI — the hot-swap
          point between software-mode and hardware-mode cost *)
  ctl_charge : int -> float option;  (** current per-dispatch charge *)
}

(** A monitor receives the {!control} handle at run start (before any
    block executes) and returns a callback invoked once per dynamic
    basic block, after that block's clock charge.  When absent, the run
    takes exactly the unmonitored code path — byte-identical clocks. *)
type monitor = control -> func:string -> label:int -> ninstrs:int -> unit

(** Run [entry] with scalar [args].

    @param fuel maximum dynamic instructions (default 4e9)
    @param jit VM cost model (default {!Jit_model.default})
    @param cis configured custom instructions (default none)
    @param engine execution engine (default {!default_engine});
      outcomes are identical across engines
    @param tuning threaded-engine optimization knobs (default
      {!default_tuning}); outcomes are identical across combinations
    @param monitor online controller hook (see {!monitor})
    @raise Fault on any runtime error.
    @raise Invalid_argument if [tuning.max_linked_blocks < 1]. *)
val run :
  ?fuel:int64 ->
  ?jit:Jit_model.t ->
  ?cis:ci_registry ->
  ?engine:engine ->
  ?tuning:tuning ->
  ?monitor:monitor ->
  Ir.Irmod.t ->
  entry:string ->
  args:Ir.Eval.value list ->
  outcome
