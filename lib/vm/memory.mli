(** Cell-addressed VM memory.

    Memory is a flat, growable array of scalar cells.  The loader lays
    out module globals from address 1 upward (address 0 is reserved so
    that a null pointer never aliases a global); the stack for allocas
    grows above the globals.  One cell holds one scalar regardless of
    width — address arithmetic in the IR is in cells, which keeps the
    model simple without affecting anything the ISE study measures.

    Every error is a named exception (or a named [Invalid_argument]
    message for programming errors), never a bare [failwith]:

    - {!Bad_address} — a load or store outside the live range
      [(0, stack_pointer)];
    - {!Out_of_memory} — growth past the [limit] cap;
    - [Invalid_argument _] — {!alloc} of a non-positive size, or
      {!global_base} of an unknown global. *)

(** The memory state.  The representation is concrete on purpose: the
    outcome codecs serialize and rebuild it field by field. *)
type t = {
  mutable cells : Jitise_ir.Eval.value array;
  mutable stack_pointer : int;  (** next free cell *)
  globals : (string, int) Hashtbl.t;  (** global name -> base address *)
  limit : int;  (** hard cap on memory growth, in cells *)
}

exception Out_of_memory
exception Bad_address of int

(** Fresh memory with an empty global table and the stack at address 1.
    @param limit growth cap in cells (default 16 M) *)
val create : ?limit:int -> unit -> t

(** Read one cell.
    @raise Bad_address outside [(0, stack_pointer)]. *)
val load : t -> int -> Jitise_ir.Eval.value

(** Write one cell.
    @raise Bad_address outside [(0, stack_pointer)].
    @raise Out_of_memory if backing growth would exceed the limit. *)
val store : t -> int -> Jitise_ir.Eval.value -> unit

(** Reserve [n] cells and return their base address.
    @raise Invalid_argument if [n <= 0].
    @raise Out_of_memory past the growth cap. *)
val alloc : t -> int -> int

(** Current stack mark, for frame save/restore. *)
val mark : t -> int

(** Pop the stack back to a previous {!mark}. *)
val release : t -> int -> unit

(** Lay out and initialize all globals of a module. *)
val load_globals : t -> Jitise_ir.Irmod.t -> unit

(** Base address of a named global.
    @raise Invalid_argument for an unknown global. *)
val global_base : t -> string -> int

(** Read [len] cells of a global as floats (for checksumming results in
    tests and workload validation). *)
val read_global_floats : t -> string -> int -> float array

(** Read [len] cells of a global as ints. *)
val read_global_ints : t -> string -> int -> int64 array

(** Overwrite a global's cells with integer data (workload dataset
    injection). *)
val write_global_ints : t -> string -> int64 array -> unit

(** Overwrite a global's cells with float data. *)
val write_global_floats : t -> string -> float array -> unit
