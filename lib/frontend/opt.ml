(** The -O3-style optimizer pipeline.

    Passes: unreachable-block elimination (with label renumbering),
    constant folding + branch simplification, jump threading through
    empty forwarding blocks, local common-subexpression elimination, and
    dead-code elimination.  [optimize_module] iterates them to a bounded
    fixpoint, mirroring the role of llvm-gcc's [-O3] in the paper's
    compilation-to-bitcode stage. *)

module Ir = Jitise_ir

(* ------------------------------------------------------------------ *)
(* Label remapping                                                     *)
(* ------------------------------------------------------------------ *)

let remap_term map = function
  | Ir.Instr.Ret _ as t -> t
  | Ir.Instr.Br l -> Ir.Instr.Br (map l)
  | Ir.Instr.Cond_br (c, a, b) -> Ir.Instr.Cond_br (c, map a, map b)
  | Ir.Instr.Switch (s, d, cases) ->
      Ir.Instr.Switch (s, map d, List.map (fun (v, l) -> (v, map l)) cases)

let remap_phis_in_block map (b : Ir.Block.t) =
  Ir.Block.set_instrs b
    (List.map
       (fun (i : Ir.Instr.t) ->
         match i.Ir.Instr.kind with
         | Ir.Instr.Phi incoming ->
             {
               i with
               Ir.Instr.kind =
                 Ir.Instr.Phi (List.map (fun (l, v) -> (map l, v)) incoming);
             }
         | _ -> i)
       b.Ir.Block.instrs)

(* ------------------------------------------------------------------ *)
(* Unreachable block elimination                                       *)
(* ------------------------------------------------------------------ *)

(** Drop blocks not reachable from the entry and renumber the remainder
    densely.  Phi entries referring to removed predecessors are pruned.
    Returns the number of removed blocks. *)
let remove_unreachable (f : Ir.Func.t) =
  let cfg = Ir.Cfg.of_func f in
  let reach = Ir.Cfg.reachable cfg in
  let n = Array.length reach in
  let removed = ref 0 in
  let new_label = Array.make n (-1) in
  let next = ref 0 in
  for l = 0 to n - 1 do
    if reach.(l) then begin
      new_label.(l) <- !next;
      incr next
    end
    else incr removed
  done;
  if !removed > 0 then begin
    let keep =
      Array.to_list f.Ir.Func.blocks
      |> List.filter (fun (b : Ir.Block.t) -> reach.(b.Ir.Block.label))
    in
    let map l = new_label.(l) in
    let blocks =
      List.map
        (fun (b : Ir.Block.t) ->
          (* prune phi entries from unreachable preds, then remap *)
          Ir.Block.set_instrs b
            (List.map
               (fun (i : Ir.Instr.t) ->
                 match i.Ir.Instr.kind with
                 | Ir.Instr.Phi incoming ->
                     {
                       i with
                       Ir.Instr.kind =
                         Ir.Instr.Phi
                           (List.filter (fun (l, _) -> reach.(l)) incoming);
                     }
                 | _ -> i)
               b.Ir.Block.instrs);
          remap_phis_in_block map b;
          b.Ir.Block.term <- remap_term map b.Ir.Block.term;
          { b with Ir.Block.label = map b.Ir.Block.label })
        keep
    in
    f.Ir.Func.blocks <- Array.of_list blocks
  end;
  !removed

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let const_of_value ty (v : Ir.Eval.value) =
  match v with
  | Ir.Eval.VInt x -> Some (Ir.Instr.Cint (x, ty))
  | Ir.Eval.VFloat x -> Some (Ir.Instr.Cfloat (x, ty))
  | Ir.Eval.VPtr _ -> None

(** Fold instructions whose operands are all constants, and propagate
    single-entry phis and trivial selects.  Folded instructions become
    substitutions applied throughout the function.  Conditional branches
    on constants are rewritten to unconditional ones.  Returns the
    number of simplifications performed. *)
let fold_constants (f : Ir.Func.t) =
  let changed = ref 0 in
  let subst : (Ir.Instr.reg, Ir.Instr.operand) Hashtbl.t = Hashtbl.create 32 in
  let rec resolve op =
    match op with
    | Ir.Instr.Reg r -> (
        match Hashtbl.find_opt subst r with
        | Some op' -> resolve op'
        | None -> op)
    | _ -> op
  in
  let const_operand op =
    match resolve op with Ir.Instr.Const c -> Some c | _ -> None
  in
  let try_fold (i : Ir.Instr.t) : Ir.Instr.operand option =
    let open Ir.Instr in
    try
      match i.kind with
      | Binop (op, a, b) -> (
          match (const_operand a, const_operand b) with
          | Some ca, Some cb ->
              let v =
                Ir.Eval.eval_binop i.ty op (Ir.Eval.of_const ca)
                  (Ir.Eval.of_const cb)
              in
              Option.map (fun c -> Const c) (const_of_value i.ty v)
          | _ -> None)
      | Icmp (p, a, b) -> (
          match (const_operand a, const_operand b) with
          | Some ca, Some cb ->
              let v =
                Ir.Eval.eval_icmp p (Ir.Eval.of_const ca) (Ir.Eval.of_const cb)
              in
              Option.map (fun c -> Const c) (const_of_value Ir.Ty.I1 v)
          | _ -> None)
      | Fcmp (p, a, b) -> (
          match (const_operand a, const_operand b) with
          | Some ca, Some cb ->
              let v =
                Ir.Eval.eval_fcmp p (Ir.Eval.of_const ca) (Ir.Eval.of_const cb)
              in
              Option.map (fun c -> Const c) (const_of_value Ir.Ty.I1 v)
          | _ -> None)
      | Cast (c, a) -> (
          match const_operand a with
          | Some ca ->
              let v =
                Ir.Eval.eval_cast c
                  ~from_:(Ir.Instr.const_ty ca)
                  ~to_:i.ty (Ir.Eval.of_const ca)
              in
              Option.map (fun cst -> Const cst) (const_of_value i.ty v)
          | None -> None)
      | Select (c, a, b) -> (
          match const_operand c with
          | Some cc ->
              if Ir.Eval.is_true (Ir.Eval.of_const cc) then Some (resolve a)
              else Some (resolve b)
          | None -> None)
      | Phi [ (_, v) ] -> Some (resolve v)
      | Phi incoming ->
          (* All inputs equal (and not self-referential): forward. *)
          let vs = List.map (fun (_, v) -> resolve v) incoming in
          let self = Reg i.id in
          let non_self = List.filter (fun v -> v <> self) vs in
          (match non_self with
          | v :: rest when List.for_all (fun v' -> v' = v) rest -> Some v
          | _ -> None)
      | _ -> None
    with Ir.Eval.Division_by_zero | Ir.Eval.Type_error _ -> None
  in
  (* Iterate within the function until no new folds appear (substitution
     chains can enable further folds). *)
  let progress = ref true in
  while !progress do
    progress := false;
    Ir.Func.iter_blocks
      (fun b ->
        List.iter
          (fun (i : Ir.Instr.t) ->
            if (not (Hashtbl.mem subst i.Ir.Instr.id)) && i.Ir.Instr.ty <> Ir.Ty.Void
            then
              match try_fold i with
              | Some op when op <> Ir.Instr.Reg i.Ir.Instr.id ->
                  Hashtbl.replace subst i.Ir.Instr.id op;
                  incr changed;
                  progress := true
              | _ -> ())
          b.Ir.Block.instrs)
      f
  done;
  (* Apply substitutions, drop folded instructions. *)
  if Hashtbl.length subst > 0 then begin
    let rw_kind kind =
      let rw = resolve in
      let open Ir.Instr in
      match kind with
      | Binop (op, a, b) -> Binop (op, rw a, rw b)
      | Icmp (p, a, b) -> Icmp (p, rw a, rw b)
      | Fcmp (p, a, b) -> Fcmp (p, rw a, rw b)
      | Cast (c, a) -> Cast (c, rw a)
      | Select (c, a, b) -> Select (rw c, rw a, rw b)
      | Alloca _ as k -> k
      | Load a -> Load (rw a)
      | Store (v, a) -> Store (rw v, rw a)
      | Gep (b, i) -> Gep (rw b, rw i)
      | Gaddr _ as k -> k
      | Call (f, args) -> Call (f, List.map rw args)
      | Phi incoming -> Phi (List.map (fun (l, v) -> (l, rw v)) incoming)
      | Ci_call (ci, args) -> Ci_call (ci, List.map rw args)
    in
    Ir.Func.iter_blocks
      (fun b ->
        Ir.Block.set_instrs b
          (List.filter_map
             (fun (i : Ir.Instr.t) ->
               if Hashtbl.mem subst i.Ir.Instr.id then None
               else Some { i with Ir.Instr.kind = rw_kind i.Ir.Instr.kind })
             b.Ir.Block.instrs);
        b.Ir.Block.term <-
          (match b.Ir.Block.term with
          | Ir.Instr.Ret (Some op) -> Ir.Instr.Ret (Some (resolve op))
          | Ir.Instr.Ret None as t -> t
          | Ir.Instr.Br _ as t -> t
          | Ir.Instr.Cond_br (c, x, y) -> Ir.Instr.Cond_br (resolve c, x, y)
          | Ir.Instr.Switch (s, d, cases) ->
              Ir.Instr.Switch (resolve s, d, cases)))
      f
  end;
  (* Branch simplification on constant conditions. *)
  Ir.Func.iter_blocks
    (fun b ->
      match b.Ir.Block.term with
      | Ir.Instr.Cond_br (Ir.Instr.Const c, x, y) ->
          let taken, dropped =
            if Ir.Eval.is_true (Ir.Eval.of_const c) then (x, y) else (y, x)
          in
          b.Ir.Block.term <- Ir.Instr.Br taken;
          incr changed;
          (* prune the dead phi edge in the dropped successor *)
          if dropped <> taken then begin
            let db = Ir.Func.block f dropped in
            Ir.Block.set_instrs db
              (List.map
                 (fun (i : Ir.Instr.t) ->
                   match i.Ir.Instr.kind with
                   | Ir.Instr.Phi incoming ->
                       {
                         i with
                         Ir.Instr.kind =
                           Ir.Instr.Phi
                             (List.filter
                                (fun (l, _) -> l <> b.Ir.Block.label)
                                incoming);
                       }
                   | _ -> i)
                 db.Ir.Block.instrs)
          end
      | Ir.Instr.Cond_br (c, x, y) when x = y ->
          ignore c;
          b.Ir.Block.term <- Ir.Instr.Br x;
          incr changed
      | _ -> ())
    f;
  !changed

(* ------------------------------------------------------------------ *)
(* Algebraic simplification                                            *)
(* ------------------------------------------------------------------ *)

(* Generic operand substitution over a function, shared by several
   passes. *)
let apply_subst (f : Ir.Func.t) (subst : (Ir.Instr.reg, Ir.Instr.operand) Hashtbl.t)
    ~drop =
  let rec resolve op =
    match op with
    | Ir.Instr.Reg r -> (
        match Hashtbl.find_opt subst r with
        | Some op' -> resolve op'
        | None -> op)
    | _ -> op
  in
  let rw_kind kind =
    let rw = resolve in
    let open Ir.Instr in
    match kind with
    | Binop (op, a, b) -> Binop (op, rw a, rw b)
    | Icmp (p, a, b) -> Icmp (p, rw a, rw b)
    | Fcmp (p, a, b) -> Fcmp (p, rw a, rw b)
    | Cast (c, a) -> Cast (c, rw a)
    | Select (c, a, b) -> Select (rw c, rw a, rw b)
    | Alloca _ as k -> k
    | Load a -> Load (rw a)
    | Store (v, a) -> Store (rw v, rw a)
    | Gep (b, i) -> Gep (rw b, rw i)
    | Gaddr _ as k -> k
    | Call (f, args) -> Call (f, List.map rw args)
    | Phi incoming -> Phi (List.map (fun (l, v) -> (l, rw v)) incoming)
    | Ci_call (ci, args) -> Ci_call (ci, List.map rw args)
  in
  Ir.Func.iter_blocks
    (fun b ->
      Ir.Block.set_instrs b
        (List.filter_map
           (fun (i : Ir.Instr.t) ->
             if drop && Hashtbl.mem subst i.Ir.Instr.id then None
             else Some { i with Ir.Instr.kind = rw_kind i.Ir.Instr.kind })
           b.Ir.Block.instrs);
      b.Ir.Block.term <-
        (match b.Ir.Block.term with
        | Ir.Instr.Ret (Some op) -> Ir.Instr.Ret (Some (resolve op))
        | Ir.Instr.Ret None as t -> t
        | Ir.Instr.Br _ as t -> t
        | Ir.Instr.Cond_br (c, x, y) -> Ir.Instr.Cond_br (resolve c, x, y)
        | Ir.Instr.Switch (s, d, cases) -> Ir.Instr.Switch (resolve s, d, cases)))
    f

let is_int_const v = function
  | Ir.Instr.Const (Ir.Instr.Cint (x, ty)) when Ir.Ty.is_int ty -> x = v
  | _ -> false

let is_float_const v = function
  | Ir.Instr.Const (Ir.Instr.Cfloat (x, _)) -> x = v
  | _ -> false

(* power of two -> shift amount *)
let log2_opt v =
  let rec go k x = if x = 1L then Some k else if Int64.rem x 2L <> 0L then None
    else go (k + 1) (Int64.div x 2L)
  in
  if v <= 0L then None else go 0 v

(** Identity/annihilator rewrites and strength reduction: [x+0], [x*1],
    [x*0], [x-x], [x^x], [x&x], [x|x], [x/1], shifts by 0, float
    [x*1.0]/[x+0.0] (fast-math style), and [x * 2^k -> x << k].
    Returns the number of rewrites. *)
let algebraic_simplify (f : Ir.Func.t) =
  let changed = ref 0 in
  let subst : (Ir.Instr.reg, Ir.Instr.operand) Hashtbl.t = Hashtbl.create 16 in
  let forward id op =
    Hashtbl.replace subst id op;
    incr changed
  in
  Ir.Func.iter_blocks
    (fun b ->
      Ir.Block.set_instrs b
        (List.map
           (fun (i : Ir.Instr.t) ->
             let open Ir.Instr in
             match i.kind with
             | Binop (Add, x, z) when is_int_const 0L z -> forward i.id x; i
             | Binop (Add, z, x) when is_int_const 0L z -> forward i.id x; i
             | Binop (Sub, x, z) when is_int_const 0L z -> forward i.id x; i
             | Binop (Sub, Reg a, Reg b) when a = b ->
                 forward i.id (Const (Cint (0L, i.ty))); i
             | Binop (Xor, Reg a, Reg b) when a = b ->
                 forward i.id (Const (Cint (0L, i.ty))); i
             | Binop ((And | Or), Reg a, Reg b) when a = b ->
                 forward i.id (Reg a); i
             | Binop (Mul, x, o) when is_int_const 1L o -> forward i.id x; i
             | Binop (Mul, o, x) when is_int_const 1L o -> forward i.id x; i
             | Binop (Mul, _, z) when is_int_const 0L z ->
                 forward i.id (Const (Cint (0L, i.ty))); i
             | Binop (Mul, z, _) when is_int_const 0L z ->
                 forward i.id (Const (Cint (0L, i.ty))); i
             | Binop (Sdiv, x, o) when is_int_const 1L o -> forward i.id x; i
             | Binop ((Shl | Lshr | Ashr), x, z) when is_int_const 0L z ->
                 forward i.id x; i
             | Binop (And, x, m) when is_int_const (-1L) m -> forward i.id x; i
             | Binop (And, m, x) when is_int_const (-1L) m -> forward i.id x; i
             | Binop (Or, x, z) when is_int_const 0L z -> forward i.id x; i
             | Binop (Or, z, x) when is_int_const 0L z -> forward i.id x; i
             | Binop (Xor, x, z) when is_int_const 0L z -> forward i.id x; i
             | Binop (Fmul, x, o) when is_float_const 1.0 o -> forward i.id x; i
             | Binop (Fmul, o, x) when is_float_const 1.0 o -> forward i.id x; i
             | Binop (Fadd, x, z) when is_float_const 0.0 z -> forward i.id x; i
             | Binop (Fadd, z, x) when is_float_const 0.0 z -> forward i.id x; i
             | Binop (Mul, x, Const (Cint (v, _)))
               when Ir.Ty.is_int i.ty && v > 1L -> (
                 (* strength reduction, kept as an instruction rewrite;
                    a single [match] so the power-of-two test and the
                    exponent come from the same [log2_opt] call *)
                 match log2_opt v with
                 | Some k ->
                     incr changed;
                     {
                       i with
                       kind =
                         Binop (Shl, x, Const (Cint (Int64.of_int k, i.ty)));
                     }
                 | None -> i)
             | _ -> i)
           b.Ir.Block.instrs))
    f;
  if Hashtbl.length subst > 0 then apply_subst f subst ~drop:true;
  !changed

(* ------------------------------------------------------------------ *)
(* Local load forwarding                                               *)
(* ------------------------------------------------------------------ *)

(** Within each block, forward memory values: a load from an address
    that was just stored to (or loaded from) with no intervening
    potentially-aliasing write reuses the known value.  Calls and any
    store to a *different* address conservatively invalidate the whole
    table (two register addresses may alias).  Returns the number of
    loads removed. *)
let load_forwarding (f : Ir.Func.t) =
  let removed = ref 0 in
  let subst : (Ir.Instr.reg, Ir.Instr.operand) Hashtbl.t = Hashtbl.create 16 in
  Ir.Func.iter_blocks
    (fun b ->
      let known : (Ir.Instr.operand, Ir.Instr.operand) Hashtbl.t =
        Hashtbl.create 8
      in
      let kept =
        List.filter
          (fun (i : Ir.Instr.t) ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Load addr -> (
                match Hashtbl.find_opt known addr with
                | Some v ->
                    Hashtbl.replace subst i.Ir.Instr.id v;
                    incr removed;
                    false
                | None ->
                    Hashtbl.replace known addr (Ir.Instr.Reg i.Ir.Instr.id);
                    true)
            | Ir.Instr.Store (v, addr) ->
                Hashtbl.reset known;
                Hashtbl.replace known addr v;
                true
            | Ir.Instr.Call _ | Ir.Instr.Ci_call _ ->
                Hashtbl.reset known;
                true
            | _ -> true)
          b.Ir.Block.instrs
      in
      Ir.Block.set_instrs b kept)
    f;
  if Hashtbl.length subst > 0 then apply_subst f subst ~drop:false;
  !removed

(* ------------------------------------------------------------------ *)
(* Block merging                                                       *)
(* ------------------------------------------------------------------ *)

(** Splice single-predecessor blocks into their predecessor: when block
    [B] ends with an unconditional branch to [T], [T]'s only
    predecessor is [B], and [T] starts with no phi, [T]'s body is
    appended to [B].  Combined with unrolling this is what produces the
    large straight-line blocks of an -O3 bitcode.  Returns the number
    of merges. *)
let merge_blocks (f : Ir.Func.t) =
  let merged = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let cfg = Ir.Cfg.of_func f in
    let n = Ir.Func.num_blocks f in
    (try
       for b = 0 to n - 1 do
         let blk = Ir.Func.block f b in
         match blk.Ir.Block.term with
         | Ir.Instr.Br t
           when t <> b
                && t <> Ir.Func.entry_label
                && Ir.Cfg.preds cfg t = [ b ]
                && Ir.Block.phis (Ir.Func.block f t) = [] ->
             let tb = Ir.Func.block f t in
             Ir.Block.set_instrs blk
               (blk.Ir.Block.instrs @ tb.Ir.Block.instrs);
             blk.Ir.Block.term <- tb.Ir.Block.term;
             (* successors of [t] now see [b] as their predecessor *)
             List.iter
               (fun s ->
                 let sb = Ir.Func.block f s in
                 Ir.Block.set_instrs sb
                   (List.map
                      (fun (i : Ir.Instr.t) ->
                        match i.Ir.Instr.kind with
                        | Ir.Instr.Phi incoming ->
                            {
                              i with
                              Ir.Instr.kind =
                                Ir.Instr.Phi
                                  (List.map
                                     (fun (l, v) ->
                                       ((if l = t then b else l), v))
                                     incoming);
                            }
                        | _ -> i)
                      sb.Ir.Block.instrs))
               (Ir.Cfg.succs cfg t);
             (* [t] becomes unreachable; drop it and restart (labels
                shift) *)
             Ir.Block.set_instrs tb [];
             tb.Ir.Block.term <- Ir.Instr.Ret None;
             incr merged;
             progress := true;
             raise Exit
         | _ -> ()
       done
     with Exit -> ());
    if !progress then ignore (remove_unreachable f)
  done;
  !merged

(* ------------------------------------------------------------------ *)
(* Local common subexpression elimination                              *)
(* ------------------------------------------------------------------ *)

(** Within each block, reuse the result of an earlier pure instruction
    with identical opcode and operands.  Loads are not CSE'd (stores may
    intervene).  Returns the number of eliminated instructions. *)
let local_cse (f : Ir.Func.t) =
  let changed = ref 0 in
  Ir.Func.iter_blocks
    (fun b ->
      let seen : (Ir.Instr.kind, Ir.Instr.reg) Hashtbl.t = Hashtbl.create 16 in
      let subst : (Ir.Instr.reg, Ir.Instr.reg) Hashtbl.t = Hashtbl.create 16 in
      let rec canon r =
        match Hashtbl.find_opt subst r with Some r' -> canon r' | None -> r
      in
      let rw_op = function
        | Ir.Instr.Reg r -> Ir.Instr.Reg (canon r)
        | c -> c
      in
      let rw_kind kind =
        let open Ir.Instr in
        match kind with
        | Binop (op, a, b) -> Binop (op, rw_op a, rw_op b)
        | Icmp (p, a, b) -> Icmp (p, rw_op a, rw_op b)
        | Fcmp (p, a, b) -> Fcmp (p, rw_op a, rw_op b)
        | Cast (c, a) -> Cast (c, rw_op a)
        | Select (c, a, b) -> Select (rw_op c, rw_op a, rw_op b)
        | Alloca _ as k -> k
        | Load a -> Load (rw_op a)
        | Store (v, a) -> Store (rw_op v, rw_op a)
        | Gep (base, i) -> Gep (rw_op base, rw_op i)
        | Gaddr _ as k -> k
        | Call (f, args) -> Call (f, List.map rw_op args)
        | Phi incoming -> Phi (List.map (fun (l, v) -> (l, rw_op v)) incoming)
        | Ci_call (ci, args) -> Ci_call (ci, List.map rw_op args)
      in
      let pure kind =
        match kind with
        | Ir.Instr.Binop _ | Ir.Instr.Icmp _ | Ir.Instr.Fcmp _
        | Ir.Instr.Cast _ | Ir.Instr.Select _ | Ir.Instr.Gep _
        | Ir.Instr.Gaddr _ ->
            true
        | _ -> false
      in
      let kept =
        List.filter_map
          (fun (i : Ir.Instr.t) ->
            let kind = rw_kind i.Ir.Instr.kind in
            if pure kind then
              match Hashtbl.find_opt seen kind with
              | Some earlier ->
                  Hashtbl.replace subst i.Ir.Instr.id earlier;
                  incr changed;
                  None
              | None ->
                  Hashtbl.replace seen kind i.Ir.Instr.id;
                  Some { i with Ir.Instr.kind = kind }
            else Some { i with Ir.Instr.kind = kind })
          b.Ir.Block.instrs
      in
      Ir.Block.set_instrs b kept;
      b.Ir.Block.term <-
        (match b.Ir.Block.term with
        | Ir.Instr.Ret (Some op) -> Ir.Instr.Ret (Some (rw_op op))
        | Ir.Instr.Ret None as t -> t
        | Ir.Instr.Br _ as t -> t
        | Ir.Instr.Cond_br (c, x, y) -> Ir.Instr.Cond_br (rw_op c, x, y)
        | Ir.Instr.Switch (s, d, cases) -> Ir.Instr.Switch (rw_op s, d, cases));
      (* CSE substitutions are block-local in creation but must be
         applied to later blocks too (dominance holds trivially since
         the definition precedes in the same block; uses in later blocks
         refer to the eliminated register). *)
      if Hashtbl.length subst > 0 then
        Ir.Func.iter_blocks
          (fun b' ->
            if b'.Ir.Block.label <> b.Ir.Block.label then begin
              Ir.Block.set_instrs b'
                (List.map
                   (fun (i : Ir.Instr.t) ->
                     { i with Ir.Instr.kind = rw_kind i.Ir.Instr.kind })
                   b'.Ir.Block.instrs);
              b'.Ir.Block.term <-
                (match b'.Ir.Block.term with
                | Ir.Instr.Ret (Some op) -> Ir.Instr.Ret (Some (rw_op op))
                | Ir.Instr.Ret None as t -> t
                | Ir.Instr.Br _ as t -> t
                | Ir.Instr.Cond_br (c, x, y) -> Ir.Instr.Cond_br (rw_op c, x, y)
                | Ir.Instr.Switch (s, d, cases) ->
                    Ir.Instr.Switch (rw_op s, d, cases))
            end)
          f)
    f;
  !changed

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)
(* ------------------------------------------------------------------ *)

(* Liveness of a single instruction given the use table. *)
let instr_is_live (i : Ir.Instr.t) used =
  Ir.Instr.has_side_effect i.Ir.Instr.kind
  || i.Ir.Instr.ty = Ir.Ty.Void
  || Hashtbl.mem used i.Ir.Instr.id

(** Remove side-effect-free instructions whose results are never used,
    iterating until stable within the function.  Returns the number of
    removed instructions. *)
let dead_code_elim (f : Ir.Func.t) =
  let removed = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let used = Hashtbl.create 64 in
    let mark op =
      match op with Ir.Instr.Reg r -> Hashtbl.replace used r () | _ -> ()
    in
    Ir.Func.iter_blocks
      (fun b ->
        List.iter
          (fun (i : Ir.Instr.t) ->
            List.iter mark (Ir.Instr.operands i.Ir.Instr.kind))
          b.Ir.Block.instrs;
        List.iter mark (Ir.Instr.terminator_operands b.Ir.Block.term))
      f;
    Ir.Func.iter_blocks
      (fun b ->
        let kept =
          List.filter
            (fun (i : Ir.Instr.t) ->
              let dead = not (instr_is_live i used) in
              if dead then begin
                incr removed;
                progress := true
              end;
              not dead)
            b.Ir.Block.instrs
        in
        Ir.Block.set_instrs b kept)
      f
  done;
  !removed

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

type report = {
  promoted_allocas : int;
  folded : int;
  cse_eliminated : int;
  dce_removed : int;
  unreachable_removed : int;
  blocks_merged : int;
}

(** Run the full -O3-style pipeline on a module, in place. *)
let optimize_module (m : Ir.Irmod.t) : report =
  let unreachable = ref 0 in
  List.iter
    (fun f -> unreachable := !unreachable + remove_unreachable f)
    m.Ir.Irmod.funcs;
  let promoted = Mem2reg.run_module m in
  let folded = ref 0 and cse = ref 0 and dce = ref 0 and merges = ref 0 in
  List.iter
    (fun f ->
      let rounds = ref 0 in
      let progress = ref true in
      while !progress && !rounds < 8 do
        incr rounds;
        let c1 = fold_constants f in
        let c2 = remove_unreachable f in
        let c5 = merge_blocks f in
        let c6 = algebraic_simplify f in
        let c3 = local_cse f in
        let c7 = load_forwarding f in
        let c4 = dead_code_elim f in
        folded := !folded + c1 + c6;
        unreachable := !unreachable + c2;
        merges := !merges + c5;
        cse := !cse + c3 + c7;
        dce := !dce + c4;
        progress := c1 + c2 + c3 + c4 + c5 + c6 + c7 > 0
      done)
    m.Ir.Irmod.funcs;
  {
    promoted_allocas = promoted;
    folded = !folded;
    cse_eliminated = !cse;
    dce_removed = !dce;
    unreachable_removed = !unreachable;
    blocks_merged = !merges;
  }
